#include "baselines/sync_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellaris::baselines {
namespace {

SyncConfig tiny_config(SyncVariant variant) {
  SyncConfig cfg;
  cfg.base.env_name = "Hopper";
  cfg.base.rounds = 6;
  cfg.base.num_actors = 4;
  cfg.base.horizon = 32;
  cfg.base.network_width = 8;
  cfg.base.eval_episodes = 1;
  cfg.base.seed = 11;
  cfg.variant = variant;
  cfg.num_learners = 2;
  return cfg;
}

class SyncVariants : public ::testing::TestWithParam<SyncVariant> {};

TEST_P(SyncVariants, RunsToCompletion) {
  auto result = run_sync_training(tiny_config(GetParam()));
  EXPECT_EQ(result.rounds.size(), 6u);
  EXPECT_GT(result.total_time_s, 0.0);
  EXPECT_GT(result.total_cost_usd, 0.0);
  EXPECT_TRUE(std::isfinite(result.final_reward));
  // Synchronous by construction: no staleness anywhere.
  for (const auto& r : result.rounds) EXPECT_EQ(r.mean_staleness, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, SyncVariants,
                         ::testing::Values(SyncVariant::kVanillaPpo,
                                           SyncVariant::kRllibLike,
                                           SyncVariant::kMinionsLike,
                                           SyncVariant::kParRl));

TEST(SyncTrainer, ServerfulBillingScalesWithWallClock) {
  auto cfg = tiny_config(SyncVariant::kVanillaPpo);
  auto short_run = run_sync_training(cfg);
  cfg.base.rounds = 12;
  auto long_run = run_sync_training(cfg);
  EXPECT_GT(long_run.total_time_s, short_run.total_time_s);
  EXPECT_GT(long_run.total_cost_usd, short_run.total_cost_usd);
  // Serverful: cost == fleet price × wall-clock (linear relation).
  EXPECT_NEAR(long_run.total_cost_usd / long_run.total_time_s,
              short_run.total_cost_usd / short_run.total_time_s, 1e-9);
}

TEST(SyncTrainer, MinionsUsesSingleCentralLearner) {
  auto cfg = tiny_config(SyncVariant::kMinionsLike);
  cfg.num_learners = 4;  // must be ignored
  auto result = run_sync_training(cfg);
  for (const auto& r : result.rounds) EXPECT_EQ(r.group_size, 1u);
}

TEST(SyncTrainer, MinionsActorBillingIsServerless) {
  // MinionsRL's actors bill busy-seconds, so its actor cost is far below
  // the serverful fleet bill for the same workload.
  auto serverful = run_sync_training(tiny_config(SyncVariant::kRllibLike));
  auto minions = run_sync_training(tiny_config(SyncVariant::kMinionsLike));
  EXPECT_LT(minions.actor_cost_usd, serverful.actor_cost_usd);
}

TEST(SyncTrainer, DeterministicPerSeed) {
  auto a = run_sync_training(tiny_config(SyncVariant::kVanillaPpo));
  auto b = run_sync_training(tiny_config(SyncVariant::kVanillaPpo));
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.final_reward, b.final_reward);
}

TEST(SyncTrainer, ImpactVariantRuns) {
  auto cfg = tiny_config(SyncVariant::kVanillaPpo);
  cfg.base.algorithm = core::Algorithm::kImpact;
  auto result = run_sync_training(cfg);
  EXPECT_EQ(result.rounds.size(), 6u);
}

TEST(SyncTrainer, ParRlOnHpcCluster) {
  auto cfg = tiny_config(SyncVariant::kParRl);
  cfg.base.cluster = serverless::ClusterSpec::hpc();
  cfg.num_learners = 8;
  auto result = run_sync_training(cfg);
  EXPECT_EQ(result.rounds.size(), 6u);
  EXPECT_GT(result.total_cost_usd, 0.0);
}

TEST(SyncTrainer, MoreLearnersShrinkLearnerPhase) {
  auto cfg = tiny_config(SyncVariant::kRllibLike);
  cfg.base.num_actors = 8;
  cfg.num_learners = 1;
  auto one = run_sync_training(cfg);
  cfg.num_learners = 4;
  auto four = run_sync_training(cfg);
  EXPECT_LT(four.total_time_s, one.total_time_s);
}

TEST(SyncTrainer, VariantNames) {
  EXPECT_STREQ(sync_variant_name(SyncVariant::kVanillaPpo), "vanilla");
  EXPECT_STREQ(sync_variant_name(SyncVariant::kRllibLike), "rllib-like");
  EXPECT_STREQ(sync_variant_name(SyncVariant::kMinionsLike),
               "minionsrl-like");
  EXPECT_STREQ(sync_variant_name(SyncVariant::kParRl), "par-rl-like");
}

}  // namespace
}  // namespace stellaris::baselines
