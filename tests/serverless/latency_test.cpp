#include "serverless/latency_model.hpp"

#include <gtest/gtest.h>

namespace stellaris::serverless {
namespace {

TEST(Latency, TierOrderingForSamePayload) {
  LatencyModel lat;
  const std::size_t bytes = 1 << 20;
  EXPECT_LT(lat.transfer_s(DataTier::kSharedMemory, bytes),
            lat.transfer_s(DataTier::kRpc, bytes));
  EXPECT_LT(lat.transfer_s(DataTier::kRpc, bytes),
            lat.transfer_s(DataTier::kCache, bytes));
}

TEST(Latency, TransferMonotoneInBytes) {
  LatencyModel lat;
  for (auto tier :
       {DataTier::kSharedMemory, DataTier::kRpc, DataTier::kCache}) {
    double prev = 0.0;
    for (std::size_t bytes : {0u, 1024u, 1u << 20, 16u << 20}) {
      const double t = lat.transfer_s(tier, bytes);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(Latency, ZeroBytesIsBaseLatencyOnly) {
  LatencyModel lat;
  EXPECT_DOUBLE_EQ(lat.transfer_s(DataTier::kRpc, 0), lat.rpc_base_s);
}

TEST(Latency, LearnerComputeScalesWithBatchAndParams) {
  LatencyModel lat;
  const double small = lat.learner_compute_s(128, 1000, 3.5);
  const double big_batch = lat.learner_compute_s(512, 1000, 3.5);
  const double big_model = lat.learner_compute_s(128, 4000, 3.5);
  EXPECT_GT(big_batch, small);
  EXPECT_GT(big_model, small);
  EXPECT_GE(small, lat.learner_base_s);
}

TEST(Latency, FasterSlotIsFaster) {
  LatencyModel lat;
  EXPECT_LT(lat.learner_compute_s(256, 5000, 14.0),
            lat.learner_compute_s(256, 5000, 3.5));
}

TEST(Latency, AggregateScalesWithGroup) {
  LatencyModel lat;
  EXPECT_GT(lat.aggregate_s(8, 5000), lat.aggregate_s(1, 5000));
  EXPECT_GE(lat.aggregate_s(1, 1), lat.param_fn_base_s);
}

TEST(Latency, ActorStepCostsDifferByEnvKind) {
  LatencyModel lat;
  EXPECT_GT(lat.actor_sample_s(100, /*image_env=*/true),
            lat.actor_sample_s(100, /*image_env=*/false));
  EXPECT_DOUBLE_EQ(lat.actor_sample_s(0, false), 0.0);
}

TEST(Latency, JitterIsBoundedAndCentered) {
  LatencyModel lat;
  Rng rng(1);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double j = lat.jittered(1.0, rng);
    EXPECT_GT(j, 0.0);  // clamped positive
    sum += j;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Latency, TierNames) {
  EXPECT_STREQ(data_tier_name(DataTier::kSharedMemory), "shared-memory");
  EXPECT_STREQ(data_tier_name(DataTier::kRpc), "rpc");
  EXPECT_STREQ(data_tier_name(DataTier::kCache), "cache");
}

}  // namespace
}  // namespace stellaris::serverless
