file(REMOVE_RECURSE
  "CMakeFiles/envs_tests.dir/envs/arcade_test.cpp.o"
  "CMakeFiles/envs_tests.dir/envs/arcade_test.cpp.o.d"
  "CMakeFiles/envs_tests.dir/envs/locomotion_test.cpp.o"
  "CMakeFiles/envs_tests.dir/envs/locomotion_test.cpp.o.d"
  "CMakeFiles/envs_tests.dir/envs/registry_test.cpp.o"
  "CMakeFiles/envs_tests.dir/envs/registry_test.cpp.o.d"
  "CMakeFiles/envs_tests.dir/envs/vec_env_test.cpp.o"
  "CMakeFiles/envs_tests.dir/envs/vec_env_test.cpp.o.d"
  "envs_tests"
  "envs_tests.pdb"
  "envs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
