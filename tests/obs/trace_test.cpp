#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/mini_json.hpp"
#include "obs/obs.hpp"

namespace stellaris::obs {
namespace {

std::string dump(const TraceRecorder& rec) {
  std::ostringstream os;
  rec.write_json(os);
  return os.str();
}

minijson::Value events_of(const TraceRecorder& rec) {
  minijson::Value root = minijson::parse(dump(rec));
  EXPECT_TRUE(root.is_object());
  const minijson::Value& evs = root.at("traceEvents");
  EXPECT_TRUE(evs.is_array());
  return evs;
}

TEST(Trace, EmptyRecorderIsValidJson) {
  TraceRecorder rec;
  const minijson::Value evs = events_of(rec);
  // Only the process_name metadata event.
  ASSERT_EQ(evs.arr.size(), 1u);
  EXPECT_EQ(evs.arr[0].at("ph").string(), "M");
}

TEST(Trace, TrackIsIdempotentAndNamed) {
  TraceRecorder rec;
  const TrackId a = rec.track("actors/0");
  const TrackId b = rec.track("learners/0");
  EXPECT_EQ(rec.track("actors/0"), a);
  EXPECT_NE(a, b);

  const minijson::Value evs = events_of(rec);
  std::size_t thread_names = 0;
  for (const auto& ev : evs.arr) {
    if (ev.at("ph").string() != "M" ||
        ev.at("name").string() != "thread_name")
      continue;
    ++thread_names;
    const std::string& label = ev.at("args").at("name").string();
    EXPECT_TRUE(label == "actors/0" || label == "learners/0");
  }
  EXPECT_EQ(thread_names, 2u);  // re-registration emits no duplicate
}

TEST(Trace, CompleteSpanCarriesMicrosecondTimes) {
  TraceRecorder rec;
  const TrackId t = rec.track("trainer");
  rec.complete(t, "round", "trainer", 1.25, 2.5,
               {{"round", 3}, {"kl", 0.0125}, {"env", "Hopper"}});
  const minijson::Value evs = events_of(rec);
  const minijson::Value* span = nullptr;
  for (const auto& ev : evs.arr)
    if (ev.at("ph").string() == "X") span = &ev;
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("name").string(), "round");
  EXPECT_EQ(span->at("cat").string(), "trainer");
  EXPECT_DOUBLE_EQ(span->at("ts").number(), 1.25e6);
  EXPECT_DOUBLE_EQ(span->at("dur").number(), 1.25e6);
  EXPECT_DOUBLE_EQ(span->at("args").at("round").number(), 3.0);
  EXPECT_NEAR(span->at("args").at("kl").number(), 0.0125, 1e-12);
  EXPECT_EQ(span->at("args").at("env").string(), "Hopper");
}

TEST(Trace, InstantAndCounterEvents) {
  TraceRecorder rec;
  const TrackId t = rec.track("trainer");
  rec.instant(t, "grad_enqueued", "trainer", 0.5, {{"learner_id", 7}});
  rec.counter("queue_depth", 0.5, 4.0);
  const minijson::Value evs = events_of(rec);
  bool saw_instant = false, saw_counter = false;
  for (const auto& ev : evs.arr) {
    if (ev.at("ph").string() == "i") {
      saw_instant = true;
      EXPECT_EQ(ev.at("s").string(), "t");
      EXPECT_EQ(ev.at("name").string(), "grad_enqueued");
    }
    if (ev.at("ph").string() == "C") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(ev.at("args").at("value").number(), 4.0);
    }
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(Trace, EscapesHostileStrings) {
  TraceRecorder rec;
  const std::string hostile = "quote\" slash\\ newline\n tab\t ctl\x01";
  const TrackId t = rec.track(hostile);
  rec.complete(t, hostile, "cat", 0.0, 1.0, {{"msg", hostile}});
  const minijson::Value evs = events_of(rec);  // parse must not throw
  bool found = false;
  for (const auto& ev : evs.arr)
    if (ev.at("ph").string() == "X") {
      found = true;
      EXPECT_EQ(ev.at("name").string(), hostile);
      EXPECT_EQ(ev.at("args").at("msg").string(), hostile);
    }
  EXPECT_TRUE(found);
}

TEST(Trace, NonFiniteArgsStayValidJson) {
  TraceRecorder rec;
  rec.complete(rec.track("t"), "span", "cat", 0.0, 1.0,
               {{"inf", std::numeric_limits<double>::infinity()},
                {"nan", std::numeric_limits<double>::quiet_NaN()}});
  const minijson::Value evs = events_of(rec);
  for (const auto& ev : evs.arr)
    if (ev.at("ph").string() == "X") {
      EXPECT_EQ(ev.at("args").at("inf").kind, minijson::Value::Kind::kNull);
      EXPECT_EQ(ev.at("args").at("nan").kind, minijson::Value::Kind::kNull);
    }
}

TEST(Trace, ConcurrentEmittersProduceValidJson) {
  TraceRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&rec, w] {
      const TrackId tid =
          rec.track("worker/" + std::to_string(w));
      for (int i = 0; i < kSpansPerThread; ++i) {
        const double t0 = static_cast<double>(i);
        rec.complete(tid, "span_" + std::to_string(i), "stress", t0,
                     t0 + 0.5, {{"worker", w}, {"i", i}});
        if (i % 16 == 0) rec.instant(tid, "mark", "stress", t0);
        if (i % 32 == 0)
          rec.counter("depth/" + std::to_string(w), t0,
                      static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  const minijson::Value evs = events_of(rec);  // parse IS the validity check
  std::size_t spans = 0;
  for (const auto& ev : evs.arr) {
    // Every event is complete: required keys present and typed.
    EXPECT_TRUE(ev.has("ph"));
    EXPECT_TRUE(ev.has("name"));
    if (ev.at("ph").string() == "X") {
      ++spans;
      EXPECT_GE(ev.at("dur").number(), 0.0);
      EXPECT_GE(ev.at("ts").number(), 0.0);
    }
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads * kSpansPerThread));
}

TEST(Trace, ScopedSpanEmitsOnDestruction) {
  TraceRecorder rec;
  double now = 1.0;
  {
    ScopedSpan span(&rec, rec.track("t"), "work", "cat",
                    [&now] { return now; });
    now = 3.5;
    span.arg({"result", 42});
  }
  const minijson::Value evs = events_of(rec);
  bool found = false;
  for (const auto& ev : evs.arr)
    if (ev.at("ph").string() == "X") {
      found = true;
      EXPECT_DOUBLE_EQ(ev.at("ts").number(), 1.0e6);
      EXPECT_DOUBLE_EQ(ev.at("dur").number(), 2.5e6);
      EXPECT_DOUBLE_EQ(ev.at("args").at("result").number(), 42.0);
    }
  EXPECT_TRUE(found);
}

TEST(Trace, ScopedSpanWithNullRecorderIsNoop) {
  ScopedSpan span(nullptr, 0, "work", "cat", [] { return 0.0; });
  span.arg({"k", 1});
  // Destruction must not crash; nothing to assert beyond that.
}

TEST(Trace, WriteFileRoundTrips) {
  TraceRecorder rec;
  rec.complete(rec.track("t"), "span", "cat", 0.0, 1.0);
  const std::string path = "trace_test_tmp.json";
  ASSERT_TRUE(rec.write_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  const minijson::Value root = minijson::parse(ss.str());
  EXPECT_TRUE(root.at("traceEvents").is_array());
}

TEST(Trace, RunTagsAreDistinct) {
  obs::begin_run();
  const std::string a = obs::run_tag();
  obs::begin_run();
  const std::string b = obs::run_tag();
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::run_track("x"), b + "/x");
}

TEST(Trace, InstallTraceTogglesGlobalPointer) {
  TraceRecorder rec;
  EXPECT_EQ(obs::trace(), nullptr);
  obs::install_trace(&rec);
  EXPECT_EQ(obs::trace(), &rec);
  obs::install_trace(nullptr);
  EXPECT_EQ(obs::trace(), nullptr);
}

}  // namespace
}  // namespace stellaris::obs
