#include "util/csv.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace stellaris {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  STELLARIS_CHECK_MSG(!columns_.empty(), "table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) {
    STELLARIS_CHECK_MSG(rows_.back().size() == columns_.size(),
                        "previous row incomplete: " << rows_.back().size()
                                                    << "/" << columns_.size());
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  STELLARIS_CHECK_MSG(!rows_.empty(), "call row() before add()");
  STELLARIS_CHECK_MSG(rows_.back().size() < columns_.size(),
                      "row already full");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(long long value) { return add(std::to_string(value)); }

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    os << (i ? "," : "") << csv_escape(columns_[i]);
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i)
      os << (i ? "," : "") << csv_escape(r[i]);
    os << '\n';
  }
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i)
    widths[i] = columns_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[i])) << c
         << ' ';
    }
    os << "|\n";
  };
  line(columns_);
  for (std::size_t i = 0; i < columns_.size(); ++i)
    os << "|" << std::string(widths[i] + 2, '-');
  os << "|\n";
  for (const auto& r : rows_) line(r);
}

void Table::emit(const std::string& title, const std::string& csv_path) const {
  std::cout << "\n== " << title << " ==\n";
  write_pretty(std::cout);
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (f) {
      write_csv(f);
      std::cout << "(csv written to " << csv_path << ")\n";
    } else {
      std::cout << "(warning: could not open " << csv_path << ")\n";
    }
  }
  std::cout.flush();
}

}  // namespace stellaris
