file(REMOVE_RECURSE
  "libstellaris_tensor.a"
)
