#include "fault/retry_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace stellaris::fault {

double RetryPolicy::backoff_s(std::size_t retry, Rng& rng) const {
  STELLARIS_CHECK_MSG(retry >= 1, "backoff is between attempts");
  const double base =
      base_backoff_s *
      std::pow(backoff_mult, static_cast<double>(retry - 1));
  double backoff = std::min(base, max_backoff_s);
  if (jitter_frac > 0.0)
    backoff *= 1.0 + rng.uniform(-jitter_frac, jitter_frac);
  return std::max(backoff, 0.0);
}

void RetryPolicy::validate() const {
  if (base_backoff_s < 0.0) throw ConfigError("base_backoff_s must be >= 0");
  if (backoff_mult < 1.0) throw ConfigError("backoff_mult must be >= 1");
  if (max_backoff_s < 0.0) throw ConfigError("max_backoff_s must be >= 0");
  if (jitter_frac < 0.0 || jitter_frac >= 1.0)
    throw ConfigError("jitter_frac must lie in [0, 1)");
  if (deadline_s < 0.0) throw ConfigError("deadline_s must be >= 0");
}

}  // namespace stellaris::fault
