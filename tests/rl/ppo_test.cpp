#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/distributions.hpp"
#include "rl/gae.hpp"
#include "util/rng.hpp"

namespace stellaris::rl {
namespace {

nn::ActorCritic make_model(std::uint64_t seed = 1) {
  return nn::ActorCritic(nn::ObsSpec::vector(4), nn::ActionKind::kContinuous,
                         2, nn::NetworkSpec::mujoco(8), seed);
}

SampleBatch make_batch(nn::ActorCritic& policy, Rng& rng, std::size_t n,
                       float advantage_sign) {
  SampleBatch b;
  b.action_kind = nn::ActionKind::kContinuous;
  b.obs = Tensor::randn({n, 4}, rng);
  Tensor mean = policy.policy_forward(b.obs);
  b.actions_cont = nn::gaussian_sample(mean, *policy.log_std(), rng);
  b.behaviour_log_probs =
      nn::gaussian_log_prob(mean, *policy.log_std(), b.actions_cont);
  b.rewards = Tensor({n});
  b.dones = Tensor({n});
  b.values = Tensor({n});
  b.bootstrap_value = 0.0f;
  b.advantages = Tensor::full({n}, advantage_sign);
  b.value_targets = Tensor({n});
  return b;
}

TEST(Ppo, RequiresAdvantages) {
  auto model = make_model();
  SampleBatch b;
  b.obs = Tensor({1, 4});
  EXPECT_THROW(ppo_compute_gradients(model, b, PpoConfig{}), Error);
}

TEST(Ppo, OnPolicyRatioIsOne) {
  auto model = make_model(3);
  Rng rng(3);
  auto batch = make_batch(model, rng, 32, 1.0f);
  model.zero_grad();
  PpoConfig cfg;
  auto stats = ppo_compute_gradients(model, batch, cfg);
  EXPECT_NEAR(stats.mean_ratio, 1.0, 1e-4);
  EXPECT_NEAR(stats.kl, 0.0, 1e-5);
  EXPECT_EQ(stats.clip_fraction, 0.0);
}

TEST(Ppo, PositiveAdvantageIncreasesActionLogProb) {
  auto model = make_model(5);
  Rng rng(5);
  auto batch = make_batch(model, rng, 64, 1.0f);
  model.zero_grad();
  PpoConfig cfg;
  cfg.kl_coeff = 0.0;
  (void)ppo_compute_gradients(model, batch, cfg);
  // Apply one small gradient-descent step by hand and check logp went up.
  auto params = model.flat_params();
  auto grads = model.flat_grads();
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] -= 0.001f * grads[i];
  const Tensor lp_before = nn::gaussian_log_prob(
      model.policy_forward(batch.obs), *model.log_std(), batch.actions_cont);
  model.set_flat_params(params);
  const Tensor lp_after = nn::gaussian_log_prob(
      model.policy_forward(batch.obs), *model.log_std(), batch.actions_cont);
  EXPECT_GT(lp_after.sum(), lp_before.sum());
}

TEST(Ppo, NegativeAdvantageDecreasesActionLogProb) {
  auto model = make_model(6);
  Rng rng(6);
  auto batch = make_batch(model, rng, 64, -1.0f);
  model.zero_grad();
  PpoConfig cfg;
  cfg.kl_coeff = 0.0;
  (void)ppo_compute_gradients(model, batch, cfg);
  auto params = model.flat_params();
  auto grads = model.flat_grads();
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] -= 0.001f * grads[i];
  const Tensor lp_before = nn::gaussian_log_prob(
      model.policy_forward(batch.obs), *model.log_std(), batch.actions_cont);
  model.set_flat_params(params);
  const Tensor lp_after = nn::gaussian_log_prob(
      model.policy_forward(batch.obs), *model.log_std(), batch.actions_cont);
  EXPECT_LT(lp_after.sum(), lp_before.sum());
}

TEST(Ppo, ValueGradientReducesValueLoss) {
  auto model = make_model(7);
  Rng rng(7);
  auto batch = make_batch(model, rng, 32, 0.0f);
  batch.value_targets = Tensor::full({32}, 10.0f);
  model.zero_grad();
  PpoConfig cfg;
  auto s0 = ppo_compute_gradients(model, batch, cfg);
  auto params = model.flat_params();
  auto grads = model.flat_grads();
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] -= 0.01f * grads[i];
  model.set_flat_params(params);
  model.zero_grad();
  auto s1 = ppo_compute_gradients(model, batch, cfg);
  EXPECT_LT(s1.value_loss, s0.value_loss);
}

TEST(Ppo, TruncationCapCountsAndKeepsGradients) {
  auto sampler = make_model(8);
  auto learner = make_model(9);  // different weights: ratios spread around 1
  Rng rng(8);
  auto batch = make_batch(sampler, rng, 128, 1.0f);
  learner.zero_grad();
  PpoConfig cfg;
  // With a cap below the min ratio, every sample is truncated; gradients
  // still flow with capped weight (V-trace-style truncated IS).
  auto stats = ppo_compute_gradients(learner, batch, cfg, 1e-6);
  EXPECT_EQ(stats.clip_fraction, 1.0);
  double norm = 0.0;
  for (float g : learner.flat_grads()) norm += std::abs(g);
  EXPECT_GT(norm, 0.0);
}

TEST(Ppo, OffPolicyRatiosSpread) {
  auto sampler = make_model(10);
  auto learner = make_model(11);
  Rng rng(10);
  auto batch = make_batch(sampler, rng, 128, 1.0f);
  learner.zero_grad();
  auto stats = ppo_compute_gradients(learner, batch, PpoConfig{});
  EXPECT_GT(stats.max_ratio, stats.min_ratio);
  EXPECT_GT(stats.kl, 0.0);
}

TEST(Ppo, StatsPolicyLossIsNegatedSurrogate) {
  auto model = make_model(12);
  Rng rng(12);
  auto batch = make_batch(model, rng, 16, 1.0f);
  model.zero_grad();
  auto stats = ppo_compute_gradients(model, batch, PpoConfig{});
  // On-policy, unit advantages: surrogate = mean(1·1) = 1 → loss = −1.
  EXPECT_NEAR(stats.policy_loss, -1.0, 1e-4);
}

TEST(AdaptKlCoeff, MovesTowardTarget) {
  EXPECT_GT(adapt_kl_coeff(0.2, 0.1, 0.01), 0.2);   // way over target
  EXPECT_LT(adapt_kl_coeff(0.2, 0.001, 0.01), 0.2); // way under target
  EXPECT_DOUBLE_EQ(adapt_kl_coeff(0.2, 0.01, 0.01), 0.2);
}

// Property: the gradient is finite for any ratio cap.
class PpoCapSweep : public ::testing::TestWithParam<double> {};

TEST_P(PpoCapSweep, GradientsFinite) {
  auto sampler = make_model(13);
  auto learner = make_model(14);
  Rng rng(13);
  auto batch = make_batch(sampler, rng, 64, 1.0f);
  learner.zero_grad();
  (void)ppo_compute_gradients(learner, batch, PpoConfig{}, GetParam());
  for (float g : learner.flat_grads()) EXPECT_TRUE(std::isfinite(g));
}

INSTANTIATE_TEST_SUITE_P(Caps, PpoCapSweep,
                         ::testing::Values(0.6, 0.8, 1.0, 1.2,
                                           std::numeric_limits<double>::infinity()));

}  // namespace
}  // namespace stellaris::rl
