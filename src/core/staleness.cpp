#include "core/staleness.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace stellaris::core {

StalenessSchedule::StalenessSchedule(double decay_d, double delta_max_floor,
                                     double threshold_floor)
    : decay_d_(decay_d),
      delta_max_(delta_max_floor),
      threshold_floor_(threshold_floor) {
  STELLARIS_CHECK_MSG(decay_d >= 0.0 && decay_d <= 1.0,
                      "decay d must lie in [0, 1]");
  STELLARIS_CHECK_MSG(delta_max_floor >= 0.0, "delta_max floor negative");
}

void StalenessSchedule::observe_round0(double staleness) {
  STELLARIS_CHECK_MSG(!calibrated_, "round 0 already finalized");
  delta_max_ = std::max(delta_max_, staleness);
}

void StalenessSchedule::finalize_round0() { calibrated_ = true; }

double StalenessSchedule::threshold(std::size_t round) const {
  if (decay_d_ == 0.0) return 0.0;  // forced synchronization
  return std::max(delta_max_ * std::pow(decay_d_, static_cast<double>(round)),
                  threshold_floor_);
}

double staleness_lr(double alpha0, double staleness, double smooth_v) {
  STELLARIS_CHECK_MSG(smooth_v > 0.0, "smooth_v must be positive");
  if (staleness <= 0.0) return alpha0;
  return alpha0 / std::pow(staleness, 1.0 / smooth_v);
}

void GradientQueue::push(GradientMsg msg, double now) {
  items_.push_back(Item{std::move(msg), now});
}

double GradientQueue::mean_staleness(std::uint64_t current_version) const {
  if (items_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& it : items_) {
    STELLARIS_DCHECK(current_version >= it.msg.pulled_version);
    sum += static_cast<double>(current_version - it.msg.pulled_version);
  }
  return sum / static_cast<double>(items_.size());
}

double GradientQueue::max_staleness(std::uint64_t current_version) const {
  double mx = 0.0;
  for (const auto& it : items_)
    mx = std::max(mx, static_cast<double>(current_version -
                                          it.msg.pulled_version));
  return mx;
}

bool GradientQueue::ready(std::uint64_t current_version,
                          double threshold) const {
  if (items_.empty()) return false;
  return mean_staleness(current_version) <= threshold;
}

std::vector<GradientQueue::Item> GradientQueue::drain() {
  std::vector<Item> out(items_.begin(), items_.end());
  items_.clear();
  return out;
}

}  // namespace stellaris::core
