#include "serverless/data_loader.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::serverless {
namespace {

LatencyModel no_jitter() {
  LatencyModel lat;
  lat.jitter_frac = 0.0;
  return lat;
}

TEST(DataLoader, PreloadCompletesBeforeSlowLearner) {
  GpuDataLoader loader(no_jitter(), 1);
  const auto id = loader.on_trajectory(0.0, 1 << 20);
  // A learner arriving long after the transfer finished waits nothing.
  EXPECT_DOUBLE_EQ(loader.learner_wait_s(id, 100.0), 0.0);
  EXPECT_EQ(loader.preload_hits(), 1u);
  EXPECT_EQ(loader.preload_misses(), 0u);
}

TEST(DataLoader, ImmediateLearnerPaysResidualWait) {
  LatencyModel lat = no_jitter();
  GpuDataLoader loader(lat, 1);
  const std::size_t bytes = 8 << 20;
  const double transfer = lat.transfer_s(DataTier::kCache, bytes);
  const auto id = loader.on_trajectory(0.0, bytes);
  const double wait = loader.learner_wait_s(id, transfer / 2.0);
  EXPECT_NEAR(wait, transfer / 2.0, 1e-9);
  EXPECT_EQ(loader.preload_misses(), 1u);
}

TEST(DataLoader, OverlapIsAccounted) {
  LatencyModel lat = no_jitter();
  GpuDataLoader loader(lat, 1);
  const std::size_t bytes = 4 << 20;
  const double transfer = lat.transfer_s(DataTier::kCache, bytes);
  const auto id = loader.on_trajectory(0.0, bytes);
  (void)loader.learner_wait_s(id, 2.0 * transfer);  // fully overlapped
  EXPECT_NEAR(loader.overlapped_s(), transfer, 1e-9);
}

TEST(DataLoader, TracksOutstandingBatches) {
  GpuDataLoader loader(no_jitter(), 1);
  const auto a = loader.on_trajectory(0.0, 1024);
  const auto b = loader.on_trajectory(0.0, 1024);
  EXPECT_EQ(loader.outstanding(), 2u);
  (void)loader.learner_wait_s(a, 10.0);
  EXPECT_EQ(loader.outstanding(), 1u);
  (void)b;
}

TEST(DataLoader, DoubleClaimThrows) {
  GpuDataLoader loader(no_jitter(), 1);
  const auto id = loader.on_trajectory(0.0, 1024);
  (void)loader.learner_wait_s(id, 10.0);
  EXPECT_THROW(loader.learner_wait_s(id, 11.0), Error);
}

TEST(DataLoader, UnknownIdThrows) {
  GpuDataLoader loader(no_jitter(), 1);
  EXPECT_THROW(loader.learner_wait_s(99, 0.0), Error);
}

TEST(DataLoader, LargerPayloadsTakeLonger) {
  GpuDataLoader loader(no_jitter(), 1);
  const auto small = loader.on_trajectory(0.0, 1024);
  const auto big = loader.on_trajectory(0.0, 64 << 20);
  const double w_small = loader.learner_wait_s(small, 0.0);
  const double w_big = loader.learner_wait_s(big, 0.0);
  EXPECT_GT(w_big, w_small);
}

}  // namespace
}  // namespace stellaris::serverless
