#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/mini_json.hpp"
#include "util/stats.hpp"

namespace stellaris::obs {
namespace {

TEST(Metrics, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter c;
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kAdds));
}

TEST(Metrics, HistogramTracksExactMoments) {
  FixedHistogram h(0.0, 10.0, 20);
  RunningStat ref;
  for (double x : {1.0, 2.0, 2.0, 3.5, 7.25, 9.9}) {
    h.observe(x);
    ref.add(x);
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.mean(), ref.mean());
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.9);
}

TEST(Metrics, HistogramClampsIntoEdgeBins) {
  FixedHistogram h(0.0, 10.0, 10);
  h.observe(-50.0);
  h.observe(999.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.count(), 2u);
  // min/max keep the exact (unclamped) values.
  EXPECT_DOUBLE_EQ(h.min(), -50.0);
  EXPECT_DOUBLE_EQ(h.max(), 999.0);
}

TEST(Metrics, HistogramQuantilesMatchPercentile) {
  // Fine bins so the bucket-interpolated quantile must land within one
  // bucket width of the exact sample percentile.
  const double lo = 0.0, hi = 100.0;
  const std::size_t bins = 1000;
  const double width = (hi - lo) / static_cast<double>(bins);
  FixedHistogram h(lo, hi, bins);
  std::vector<double> xs;
  // Deterministic skewed data (squares fold mass toward the low end), dense
  // enough that adjacent samples are closer than a bucket, so the bucket
  // interpolation must land within ~one width of the exact percentile.
  for (int i = 0; i < 5000; ++i) {
    const double u = static_cast<double>(i) / 4999.0;
    xs.push_back(100.0 * u * u);
  }
  for (double x : xs) h.observe(x);
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99})
    EXPECT_NEAR(h.quantile(q), percentile(xs, q), 2.0 * width)
        << "q=" << q;
  // Extremes clamp to the exact observed bounds.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(Metrics, EmptyHistogramIsZeroEverywhere) {
  FixedHistogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, RegistryReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits");
  Counter& b = reg.counter("hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Re-registering a histogram with different bounds keeps the original.
  FixedHistogram& h1 = reg.histogram("lat", 0.0, 1.0, 10);
  FixedHistogram& h2 = reg.histogram("lat", 0.0, 99.0, 5);
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.hi(), 1.0);
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  Gauge& g = reg.gauge("x");
  FixedHistogram& h = reg.histogram("h", 0.0, 1.0, 4);
  c.add(7);
  g.set(3.0);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // The same references keep working after the reset.
  c.add();
  h.observe(0.25);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Metrics, JsonSnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.counter("cache.hits").add(12);
  reg.counter("cache.misses").add(3);
  reg.gauge("queue.depth").set(4.5);
  FixedHistogram& h = reg.histogram("staleness", 0.0, 8.0, 8);
  for (double x : {0.0, 1.0, 1.0, 3.0, 7.5}) h.observe(x);

  std::ostringstream os;
  reg.write_json(os);
  const minijson::Value root = minijson::parse(os.str());

  EXPECT_DOUBLE_EQ(root.at("counters").at("cache.hits").number(), 12.0);
  EXPECT_DOUBLE_EQ(root.at("counters").at("cache.misses").number(), 3.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("queue.depth").number(), 4.5);

  const minijson::Value& hist = root.at("histograms").at("staleness");
  EXPECT_DOUBLE_EQ(hist.at("lo").number(), 0.0);
  EXPECT_DOUBLE_EQ(hist.at("hi").number(), 8.0);
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 5.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 12.5);
  EXPECT_DOUBLE_EQ(hist.at("min").number(), 0.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 7.5);
  const minijson::Value& buckets = hist.at("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.arr.size(), 8u);
  double total = 0.0;
  for (const auto& b : buckets.arr) total += b.number();
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Metrics, CsvSnapshotHasOneRowPerScalar) {
  MetricsRegistry reg;
  reg.counter("hits").add(2);
  reg.gauge("depth").set(1.0);
  reg.histogram("lat", 0.0, 1.0, 4).observe(0.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("counter,hits,value,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,depth,value,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p50,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p99,"), std::string::npos);
}

TEST(Metrics, WriteFilePicksFormatByExtension) {
  MetricsRegistry reg;
  reg.counter("n").add(1);
  const std::string json_path = "metrics_test_tmp.json";
  const std::string csv_path = "metrics_test_tmp.csv";
  ASSERT_TRUE(reg.write_file(json_path));
  ASSERT_TRUE(reg.write_file(csv_path));
  auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string json = slurp(json_path);
  const std::string csv = slurp(csv_path);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
  EXPECT_NO_THROW(minijson::parse(json));
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace stellaris::obs
