// Elementwise / activation / softmax-family kernels.
//
// Each kernel is a contiguous single-pass loop written for the
// autovectorizer, in a value-returning and a buffer-reusing `_into` form.
// Arithmetic per element is kept identical to the seed kernels (now under
// ops::reference) so the rewrite is bit-transparent to the learner.
// tanh_forward — the one transcendental-bound kernel — optionally fans out
// over the kernel pool in contiguous chunks (elementwise, so chunking can
// never change results).
#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace stellaris::ops {
namespace {

obs::Counter& eltwise_calls() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.eltwise_calls");
  return c;
}

obs::Counter& eltwise_elems() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.eltwise_elems");
  return c;
}

void count_eltwise(std::size_t n) {
  eltwise_calls().add(1);
  eltwise_elems().add(n);
}

// tanh costs ~100ns/element; below this the fork/join handshake dominates.
constexpr std::size_t kTanhParallelMinElems = 1 << 15;

}  // namespace

void add_bias_rows(Tensor& x, const Tensor& bias) {
  STELLARIS_CHECK_MSG(x.rank() == 2 && bias.rank() == 1 &&
                          bias.dim(0) == x.dim(1),
                      "bias shape mismatch");
  count_eltwise(x.numel());
  const std::size_t m = x.dim(0), n = x.dim(1);
  float* px = x.data().data();
  const float* pb = bias.data().data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
}

void sum_rows_into(Tensor& out, const Tensor& x) {
  STELLARIS_CHECK_MSG(x.rank() == 2, "sum_rows needs a 2-D tensor");
  STELLARIS_CHECK_MSG(&out != &x, "sum_rows_into: output aliases input");
  count_eltwise(x.numel());
  const std::size_t m = x.dim(0), n = x.dim(1);
  out.ensure_shape({n});
  float* po = out.data().data();
  std::fill(po, po + n, 0.0f);
  const float* px = x.data().data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) po[j] += px[i * n + j];
}

Tensor sum_rows(const Tensor& x) {
  Tensor out;
  sum_rows_into(out, x);
  return out;
}

void tanh_forward_into(Tensor& y, const Tensor& x) {
  count_eltwise(x.numel());
  y.ensure_shape(x.shape());
  const float* px = x.data().data();
  float* py = y.data().data();
  const std::size_t n = x.numel();
  const std::size_t threads = kernel_threads();
  if (threads > 1 && n >= kTanhParallelMinElems) {
    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t chunks = (n + chunk - 1) / chunk;
    detail::kernel_pool(threads).parallel_for(chunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk, hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) py[i] = std::tanh(px[i]);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) py[i] = std::tanh(px[i]);
  }
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y;
  tanh_forward_into(y, x);
  return y;
}

void tanh_backward_into(Tensor& dx, const Tensor& y, const Tensor& dy) {
  STELLARIS_CHECK_MSG(y.same_shape(dy), "tanh_backward shape mismatch");
  count_eltwise(y.numel());
  dx.ensure_shape(y.shape());
  const float* py = y.data().data();
  const float* pd = dy.data().data();
  float* px = dx.data().data();
  const std::size_t n = y.numel();
  for (std::size_t i = 0; i < n; ++i) px[i] = pd[i] * (1.0f - py[i] * py[i]);
}

Tensor tanh_backward(const Tensor& y, const Tensor& dy) {
  Tensor dx;
  tanh_backward_into(dx, y, dy);
  return dx;
}

void relu_forward_into(Tensor& y, const Tensor& x) {
  count_eltwise(x.numel());
  y.ensure_shape(x.shape());
  const float* px = x.data().data();
  float* py = y.data().data();
  const std::size_t n = x.numel();
  for (std::size_t i = 0; i < n; ++i) py[i] = std::max(px[i], 0.0f);
}

Tensor relu_forward(const Tensor& x) {
  Tensor y;
  relu_forward_into(y, x);
  return y;
}

void relu_backward_into(Tensor& dx, const Tensor& x, const Tensor& dy) {
  STELLARIS_CHECK_MSG(x.same_shape(dy), "relu_backward shape mismatch");
  count_eltwise(x.numel());
  dx.ensure_shape(x.shape());
  const float* px = x.data().data();
  const float* pd = dy.data().data();
  float* po = dx.data().data();
  const std::size_t n = x.numel();
  for (std::size_t i = 0; i < n; ++i) po[i] = px[i] <= 0.0f ? 0.0f : pd[i];
}

Tensor relu_backward(const Tensor& x, const Tensor& dy) {
  Tensor dx;
  relu_backward_into(dx, x, dy);
  return dx;
}

void softmax_rows_into(Tensor& p, const Tensor& logits) {
  STELLARIS_CHECK_MSG(logits.rank() == 2, "softmax_rows needs 2-D");
  count_eltwise(logits.numel());
  p.ensure_shape(logits.shape());
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  if (n == 0) return;
  const float* pl = logits.data().data();
  float* pp = p.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* l = pl + i * n;
    float* r = pp + i * n;
    float mx = l[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, l[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      r[j] = std::exp(l[j] - mx);
      sum += r[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j) r[j] *= inv;
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor p;
  softmax_rows_into(p, logits);
  return p;
}

void log_softmax_rows_into(Tensor& lp, const Tensor& logits) {
  STELLARIS_CHECK_MSG(logits.rank() == 2, "log_softmax_rows needs 2-D");
  count_eltwise(logits.numel());
  lp.ensure_shape(logits.shape());
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  if (n == 0) return;
  const float* pl = logits.data().data();
  float* pp = lp.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* l = pl + i * n;
    float* r = pp + i * n;
    float mx = l[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, l[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) sum += std::exp(l[j] - mx);
    const float lse = mx + std::log(sum);
    for (std::size_t j = 0; j < n; ++j) r[j] = l[j] - lse;
  }
}

Tensor log_softmax_rows(const Tensor& logits) {
  Tensor lp;
  log_softmax_rows_into(lp, logits);
  return lp;
}

// -- reference elementwise kernels (seed versions, test oracle) --------------

namespace reference {

Tensor sum_rows(const Tensor& x) {
  STELLARIS_CHECK_MSG(x.rank() == 2, "sum_rows needs a 2-D tensor");
  const std::size_t m = x.dim(0), n = x.dim(1);
  Tensor out({n});
  const float* px = x.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) po[j] += px[i * n + j];
  return out;
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.vec()) v = std::tanh(v);
  return y;
}

Tensor relu_forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.vec()) v = std::max(v, 0.0f);
  return y;
}

Tensor softmax_rows(const Tensor& logits) {
  STELLARIS_CHECK_MSG(logits.rank() == 2, "softmax_rows needs 2-D");
  Tensor out = logits;
  const std::size_t m = out.dim(0), n = out.dim(1);
  float* p = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    float* r = p + i * n;
    float mx = r[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j) r[j] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  STELLARIS_CHECK_MSG(logits.rank() == 2, "log_softmax_rows needs 2-D");
  Tensor out = logits;
  const std::size_t m = out.dim(0), n = out.dim(1);
  float* p = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    float* r = p + i * n;
    float mx = r[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) sum += std::exp(r[j] - mx);
    const float lse = mx + std::log(sum);
    for (std::size_t j = 0; j < n; ++j) r[j] -= lse;
  }
  return out;
}

}  // namespace reference
}  // namespace stellaris::ops
