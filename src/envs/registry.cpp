#include "envs/env.hpp"

#include <algorithm>

#include "envs/arcade.hpp"
#include "envs/locomotion.hpp"
#include "util/error.hpp"

namespace stellaris::envs {

StepResult Env::step(std::span<const float>) {
  throw Error(spec().name + " is not a continuous-action environment");
}

StepResult Env::step_discrete(std::size_t) {
  throw Error(spec().name + " is not a discrete-action environment");
}

namespace {
void copy_obs(const EnvSpec& spec, const std::vector<float>& src,
              std::span<float> dst) {
  STELLARIS_CHECK_MSG(dst.size() == spec.obs.flat_dim,
                      spec.name << ": obs buffer size " << dst.size()
                                << " != " << spec.obs.flat_dim);
  std::copy(src.begin(), src.end(), dst.begin());
}
}  // namespace

void Env::reset_into(std::uint64_t seed, std::span<float> obs) {
  copy_obs(spec(), reset(seed), obs);
}

StepOut Env::step_into(std::span<const float> action, std::span<float> obs) {
  StepResult r = step(action);
  copy_obs(spec(), r.obs, obs);
  return {r.reward, r.done};
}

StepOut Env::step_discrete_into(std::size_t action, std::span<float> obs) {
  StepResult r = step_discrete(action);
  copy_obs(spec(), r.obs, obs);
  return {r.reward, r.done};
}

std::unique_ptr<Env> make_env(const std::string& name) {
  if (name == "Hopper")
    return std::make_unique<LocomotionEnv>(LocomotionParams::hopper());
  if (name == "Walker2d")
    return std::make_unique<LocomotionEnv>(LocomotionParams::walker2d());
  if (name == "Humanoid")
    return std::make_unique<LocomotionEnv>(LocomotionParams::humanoid());
  if (name == "SpaceInvaders") return std::make_unique<SpaceInvadersEnv>();
  if (name == "Qbert") return std::make_unique<QbertEnv>();
  if (name == "Gravitar") return std::make_unique<GravitarEnv>();
  throw ConfigError("unknown environment: " + name);
}

EnvSpec env_spec(const std::string& name) { return make_env(name)->spec(); }

const std::vector<std::string>& benchmark_env_names() {
  static const std::vector<std::string> names = {
      "Hopper", "Humanoid", "Walker2d",
      "SpaceInvaders", "Qbert", "Gravitar"};
  return names;
}

}  // namespace stellaris::envs
