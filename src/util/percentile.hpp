// Nearest-rank percentiles — the quantile definition shared by the offline
// run-report analyzer (tools/report) and the serving tier's latency SLOs.
//
// Nearest-rank (rank = ceil(q·n), 1-indexed) always returns an element of
// the sample, so a reported p99 is a latency some request actually saw —
// the property SLO monitoring wants. This is deliberately DIFFERENT from
// util/stats.hpp's `percentile_sorted`, which linearly interpolates between
// order statistics for smooth training curves; do not mix the two.
//
// Edge cases are pinned by tests/util/percentile_test.cpp:
//   empty sample            → 0.0
//   q ≤ 0 (rank clamps to 1)→ the minimum
//   q = 1 (rank = n)        → the maximum
//   n = 1                   → that element, for every q
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace stellaris {

/// Nearest-rank quantile of an ascending-sorted sample (q in (0, 1]).
/// Returns 0.0 for an empty sample.
inline double nearest_rank_sorted(const std::vector<double>& sorted,
                                  double q) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  // Clamp in floating point BEFORE the integer cast: q < 0 would make the
  // double→size_t conversion of a negative rank undefined.
  const double rank = std::min(std::max(std::ceil(q * n), 1.0), n);
  return sorted[static_cast<std::size_t>(rank) - 1];
}

/// Nearest-rank quantile of an unsorted sample (copies and sorts).
/// Callers with a persistent sample should sort once and use the
/// `_sorted` variant for repeated quantiles.
inline double nearest_rank(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return nearest_rank_sorted(sample, q);
}

}  // namespace stellaris
