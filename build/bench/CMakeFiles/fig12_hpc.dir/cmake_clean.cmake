file(REMOVE_RECURSE
  "CMakeFiles/fig12_hpc.dir/fig12_hpc.cpp.o"
  "CMakeFiles/fig12_hpc.dir/fig12_hpc.cpp.o.d"
  "fig12_hpc"
  "fig12_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
