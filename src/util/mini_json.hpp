// Minimal recursive-descent JSON parser used by the observability tests and
// the kernel-perf harness to read JSON without adding a dependency. It
// accepts exactly standard JSON (objects, arrays, strings with escapes,
// numbers, booleans, null) and throws std::runtime_error on anything
// malformed — so a passing parse IS the well-formedness assertion.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace stellaris::minijson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& key) const {
    return kind == Kind::kObject && obj.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return obj.at(key);
  }
  double number() const {
    if (kind != Kind::kNumber) throw std::runtime_error("not a number");
    return num;
  }
  const std::string& string() const {
    if (kind != Kind::kString) throw std::runtime_error("not a string");
    return str;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", bool_value(true));
      case 'f': return keyword("false", bool_value(false));
      case 'n': return keyword("null", Value{});
      default: return number();
    }
  }

  static Value bool_value(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.b = b;
    return v;
  }

  Value keyword(const std::string& word, Value v) {
    if (s_.compare(pos_, word.size(), word) != 0)
      throw std::runtime_error("bad keyword at " + std::to_string(pos_));
    pos_ += word.size();
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      Value key = string_value();
      skip_ws();
      expect(':');
      v.obj[key.str] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    expect('"');
    Value v;
    v.kind = Value::Kind::kString;
    while (true) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20)
        throw std::runtime_error("raw control char in string");
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              throw std::runtime_error("bad \\u digit");
          }
          // The exporters only \u-escape control characters, so a one-byte
          // reconstruction is enough for round-trip checks.
          v.str.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) throw std::runtime_error("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) throw std::runtime_error("bad fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) throw std::runtime_error("bad exponent");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.num = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace stellaris::minijson
