#include "cache/distributed_cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"

namespace stellaris::cache {
namespace {

Bytes bytes_of(std::initializer_list<std::uint8_t> v) { return Bytes(v); }

TEST(Cache, PutGetRoundTrip) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2, 3}));
  auto v = cache.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->data, bytes_of({1, 2, 3}));
  EXPECT_EQ(v->version, 1u);
}

TEST(Cache, MissingKeyIsNullopt) {
  DistributedCache cache;
  EXPECT_FALSE(cache.get("nope").has_value());
  EXPECT_THROW(cache.get_or_throw("nope"), CacheError);
}

TEST(Cache, VersionsIncrementPerKey) {
  DistributedCache cache;
  EXPECT_EQ(cache.put("a", {}), 1u);
  EXPECT_EQ(cache.put("a", {}), 2u);
  EXPECT_EQ(cache.put("b", {}), 1u);
  EXPECT_EQ(cache.version("a"), 2u);
  EXPECT_EQ(cache.version("missing"), 0u);
}

TEST(Cache, OverwriteReplacesValue) {
  DistributedCache cache;
  cache.put("k", bytes_of({1}));
  cache.put("k", bytes_of({9, 9}));
  EXPECT_EQ(cache.get("k")->data, bytes_of({9, 9}));
  EXPECT_EQ(cache.resident_bytes(), 2u);
}

TEST(Cache, EraseRemoves) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2}));
  EXPECT_TRUE(cache.erase("k"));
  EXPECT_FALSE(cache.erase("k"));
  EXPECT_FALSE(cache.contains("k"));
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(Cache, PrefixScanIsSortedAndScoped) {
  DistributedCache cache;
  cache.put("traj/2", {});
  cache.put("traj/10", {});
  cache.put("grad/1", {});
  cache.put("traj/1", {});
  auto keys = cache.keys_with_prefix("traj/");
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "traj/1");   // lexicographic
  EXPECT_EQ(keys[1], "traj/10");
  EXPECT_EQ(keys[2], "traj/2");
}

TEST(Cache, ErasePrefixRemovesAllMatches) {
  DistributedCache cache;
  cache.put("traj/1", bytes_of({1}));
  cache.put("traj/2", bytes_of({2}));
  cache.put("grad/1", bytes_of({3}));
  EXPECT_EQ(cache.erase_prefix("traj/"), 2u);
  EXPECT_EQ(cache.num_keys(), 1u);
  EXPECT_TRUE(cache.contains("grad/1"));
}

TEST(Cache, StatsTrackTraffic) {
  DistributedCache cache;
  cache.put("k", bytes_of({1, 2, 3, 4}));
  (void)cache.get("k");
  (void)cache.get("absent");
  auto s = cache.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.bytes_written, 4u);
  EXPECT_EQ(s.bytes_read, 4u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().puts, 0u);
}

TEST(Cache, BlockingGetReturnsExistingNewValue) {
  DistributedCache cache;
  cache.put("k", bytes_of({5}));
  auto v = cache.get_blocking("k", 0, std::chrono::milliseconds(10));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
}

TEST(Cache, BlockingGetTimesOutOnStaleVersion) {
  DistributedCache cache;
  cache.put("k", bytes_of({5}));
  // Demand version > 1, nobody writes: timeout.
  auto v = cache.get_blocking("k", 1, std::chrono::milliseconds(20));
  EXPECT_FALSE(v.has_value());
}

TEST(Cache, BlockingGetWakesOnWrite) {
  DistributedCache cache;
  std::thread writer([&cache] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cache.put("k", bytes_of({7}));
  });
  auto v = cache.get_blocking("k", 0, std::chrono::seconds(5));
  writer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->data, bytes_of({7}));
}

TEST(Cache, ConcurrentWritersKeepCountsConsistent) {
  DistributedCache cache;
  constexpr int kThreads = 4;
  constexpr int kWrites = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kWrites; ++i)
        cache.put("key/" + std::to_string(t) + "/" + std::to_string(i),
                  Bytes(8, static_cast<std::uint8_t>(i)));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.num_keys(), kThreads * kWrites);
  EXPECT_EQ(cache.stats().puts, kThreads * kWrites);
  EXPECT_EQ(cache.resident_bytes(), kThreads * kWrites * 8u);
}

TEST(Cache, ConcurrentSameKeyVersionsAreDense) {
  DistributedCache cache;
  constexpr int kThreads = 4;
  constexpr int kWrites = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache] {
      for (int i = 0; i < kWrites; ++i) cache.put("hot", Bytes{1});
    });
  for (auto& th : threads) th.join();
  // Every write bumped the version exactly once.
  EXPECT_EQ(cache.version("hot"), kThreads * kWrites);
}

TEST(Cache, ClearEmptiesStore) {
  DistributedCache cache;
  cache.put("a", bytes_of({1}));
  cache.put("b", bytes_of({2}));
  cache.clear();
  EXPECT_EQ(cache.num_keys(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

// ---- Virtual-time reads (simulation-driven callers) ----

TEST(Cache, VirtualBlockingGetHitsImmediately) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", bytes_of({1, 2}));
  const auto v = cache.get_blocking("k", 0, engine, 5.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);  // no virtual time consumed
}

TEST(Cache, VirtualBlockingGetRespectsMinVersion) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", bytes_of({1}));
  // Version 1 is not > 1: deterministic miss, counted as a timeout.
  EXPECT_FALSE(cache.get_blocking("k", 1, engine, 5.0).has_value());
  cache.put("k", bytes_of({2}));
  const auto v = cache.get_blocking("k", 1, engine, 5.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 2u);
}

TEST(Cache, AsyncGetFiresWhenKeyIsPublished) {
  DistributedCache cache;
  sim::Engine engine;
  std::optional<CacheValue> got;
  double fired_at = -1.0;
  cache.get_async("k", 0, engine, 10.0, [&](auto v) {
    got = std::move(v);
    fired_at = engine.now();
  });
  EXPECT_EQ(cache.pending_waiters(), 1u);
  engine.schedule_at(2.0, [&] { cache.put("k", bytes_of({7})); });
  engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, bytes_of({7}));
  EXPECT_DOUBLE_EQ(fired_at, 2.0);  // same timestamp as the put
  EXPECT_EQ(cache.pending_waiters(), 0u);
}

TEST(Cache, AsyncGetAlreadySatisfiedFiresAtCurrentTime) {
  DistributedCache cache;
  sim::Engine engine;
  cache.put("k", bytes_of({1}));
  bool fired = false;
  cache.get_async("k", 0, engine, 10.0, [&](auto v) {
    fired = true;
    EXPECT_TRUE(v.has_value());
  });
  EXPECT_FALSE(fired);  // delivered via the engine, not inline
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Cache, AsyncGetTimesOutAtVirtualDeadline) {
  DistributedCache cache;
  sim::Engine engine;
  std::optional<CacheValue> got = CacheValue{};  // sentinel
  double fired_at = -1.0;
  cache.get_async("missing", 0, engine, 3.0, [&](auto v) {
    got = std::move(v);
    fired_at = engine.now();
  });
  engine.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
  EXPECT_EQ(cache.pending_waiters(), 0u);
}

TEST(Cache, AsyncGetPutCancelsTheDeadline) {
  DistributedCache cache;
  sim::Engine engine;
  int fires = 0;
  cache.get_async("k", 0, engine, 3.0, [&](auto) { ++fires; });
  engine.schedule_at(1.0, [&] { cache.put("k", bytes_of({1})); });
  engine.run();
  EXPECT_EQ(fires, 1);                  // deadline did not also fire
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);  // nor did it drag the clock to 3.0
}

TEST(Cache, PutWakesOnlyMatchingWaiters) {
  DistributedCache cache;
  sim::Engine engine;
  int a_fires = 0, b_fires = 0;
  cache.get_async("a", 0, engine, 0.0, [&](auto) { ++a_fires; });
  cache.get_async("b", 0, engine, 0.0, [&](auto) { ++b_fires; });
  cache.put("a", bytes_of({1}));
  engine.run();
  EXPECT_EQ(a_fires, 1);
  EXPECT_EQ(b_fires, 0);
  EXPECT_EQ(cache.pending_waiters(), 1u);
}

}  // namespace
}  // namespace stellaris::cache
