#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace stellaris {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, UniformIntStaysBelowBound) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_int(7), 7u);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng base(31);
  Rng a = base.split(0);
  Rng b = base.split(1);
  // Correlation of two supposedly independent uniform streams ~ 0.
  double sab = 0.0, sa = 0.0, sb = 0.0, saa = 0.0, sbb = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform(), y = b.uniform();
    sa += x;
    sb += y;
    sab += x * y;
    saa += x * x;
    sbb += y * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  EXPECT_LT(std::abs(cov / std::sqrt(var_a * var_b)), 0.03);
}

TEST(Rng, SplitSameStreamIsReproducible) {
  Rng base(37);
  Rng a = base.split(5);
  Rng b = base.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, CategoricalRespectsProbabilities) {
  Rng rng(41);
  std::vector<double> probs = {0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(probs)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.3, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / double(n), 0.25, 0.01);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(47);
  auto p = rng.permutation(100);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(53);
  EXPECT_TRUE(rng.permutation(0).empty());
  auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

// Property sweep: every seed gives in-range uniforms and valid categorical
// picks.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BasicInvariantsHoldForSeed) {
  Rng rng(GetParam());
  std::vector<double> probs = {0.25, 0.25, 0.5};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.uniform(), 1.0);
    EXPECT_LT(rng.uniform_int(13), 13u);
    EXPECT_LT(rng.categorical(probs), 3u);
    EXPECT_TRUE(std::isfinite(rng.normal()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xffffffffULL,
                                           0xdeadbeefcafef00dULL));

}  // namespace
}  // namespace stellaris
