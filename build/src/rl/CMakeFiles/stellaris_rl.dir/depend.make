# Empty dependencies file for stellaris_rl.
# This may be replaced when dependencies are built.
