// Trajectory containers — the training-data unit that flows from actors
// through the distributed cache to learner functions.
//
// Struct-of-arrays layout: a batch of T timesteps holds tensors for
// observations, actions, rewards, dones, behaviour log-probs (log μ(a|s)),
// and value estimates at sample time. After advantage estimation the batch
// also carries GAE advantages and value targets. Batches serialize to the
// cache wire format; the byte size drives the data-passing latency model.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/actor_critic.hpp"
#include "tensor/tensor.hpp"
#include "util/serialize.hpp"

namespace stellaris::rl {

struct SampleBatch {
  nn::ActionKind action_kind = nn::ActionKind::kContinuous;

  Tensor obs;                            ///< (T, obs_dim)
  Tensor actions_cont;                   ///< (T, act_dim) — continuous only
  std::vector<std::size_t> actions_disc; ///< (T) — discrete only
  Tensor rewards;                        ///< (T)
  Tensor dones;                          ///< (T), 1.0 at episode boundaries
  Tensor behaviour_log_probs;            ///< (T) log μ(a_t|s_t)
  Tensor values;                         ///< (T) V(s_t) at sample time

  /// Bootstrap value V(s_T) if the final transition was truncated (not a
  /// true terminal); ignored when the batch ends on done.
  float bootstrap_value = 0.0f;

  /// Independent trajectory segments inside this batch. Empty means one
  /// segment covering the whole batch with `bootstrap_value`. concat()
  /// fills this so that GAE / V-trace never bootstrap across the seam
  /// between two different actors' rollouts.
  struct Segment {
    std::size_t start = 0;
    float bootstrap = 0.0f;
  };
  std::vector<Segment> segments;

  /// Segments with explicit end indices (resolves the implicit layout).
  struct SegmentView {
    std::size_t start = 0;
    std::size_t end = 0;  ///< one past the last index
    float bootstrap = 0.0f;
  };
  std::vector<SegmentView> segment_views() const;

  /// Version of the actor policy μ that sampled this batch; the staleness
  /// bookkeeping and IS truncation key off this.
  std::uint64_t policy_version = 0;

  // Filled by compute_gae():
  Tensor advantages;  ///< (T)
  Tensor value_targets;  ///< (T)

  /// Episode returns completed while sampling this batch (for reward
  /// curves).
  std::vector<double> episode_returns;

  std::size_t size() const { return rewards.numel(); }
  bool has_advantages() const { return !advantages.empty(); }

  /// Wire round-trip (the "pickle" of the system).
  std::vector<std::uint8_t> serialize() const;
  static SampleBatch deserialize(ByteSpan bytes);
  /// Decode into an existing batch, reusing its tensor buffers (zero
  /// allocations once `out` has seen the incoming shapes).
  static void deserialize_into(ByteSpan bytes, SampleBatch& out);

  /// Concatenate batches (all must share layout and policy version rules
  /// don't apply — used by learners that merge several actor submissions).
  static SampleBatch concat(std::span<const SampleBatch> parts);
  static SampleBatch concat(const std::vector<SampleBatch>& parts) {
    return concat(std::span<const SampleBatch>(parts));
  }
  static SampleBatch concat(std::initializer_list<SampleBatch> parts) {
    return concat(std::span<const SampleBatch>(parts.begin(), parts.size()));
  }

  /// Rows `idx` as a new batch (for minibatch SGD).
  SampleBatch select(const std::vector<std::size_t>& idx) const;
};

}  // namespace stellaris::rl
