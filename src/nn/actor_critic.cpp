#include "nn/actor_critic.hpp"

#include "util/rng.hpp"

namespace stellaris::nn {

NetworkSpec NetworkSpec::mujoco(std::size_t width) {
  NetworkSpec spec;
  spec.use_cnn = false;
  spec.hidden = {width, width};
  return spec;
}

NetworkSpec NetworkSpec::atari() {
  NetworkSpec spec;
  spec.use_cnn = true;
  // Scaled from Table II's 16×8×8 / 32×4×4 stack to the 3×20×20 arcade
  // frames produced by src/envs/arcade.
  spec.convs = {{8, 5, 2}, {16, 3, 2}};
  spec.fc_hidden = 128;
  return spec;
}

ActorCritic::ActorCritic(const ObsSpec& obs, ActionKind kind,
                         std::size_t act_dim, const NetworkSpec& net,
                         std::uint64_t seed)
    : obs_(obs), kind_(kind), act_dim_(act_dim), net_spec_(net), seed_(seed) {
  STELLARIS_CHECK_MSG(obs.flat_dim > 0, "observation dim must be positive");
  STELLARIS_CHECK_MSG(act_dim > 0, "action dim must be positive");
  if (net.use_cnn)
    STELLARIS_CHECK_MSG(obs.image, "CNN spec requires image observations");

  Rng rng_policy(seed);
  Rng rng_value(seed ^ 0xabcdef1234567890ULL);
  policy_net_ = build_torso(act_dim_, rng_policy);
  value_net_ = build_torso(1, rng_value);

  if (kind_ == ActionKind::kContinuous) {
    // Start at σ ≈ e^{-0.5} ≈ 0.61: exploratory but not saturating the
    // torque-limited locomotion actuators.
    log_std_ = Tensor::full({act_dim_}, -0.5f);
    dlog_std_ = Tensor({act_dim_});
  }
}

Sequential ActorCritic::build_torso(std::size_t out_dim, Rng& rng) const {
  Sequential seq;
  if (!net_spec_.use_cnn) {
    std::size_t in = obs_.flat_dim;
    for (std::size_t h : net_spec_.hidden) {
      seq.add(std::make_unique<Linear>(in, h, rng));
      seq.add(std::make_unique<Tanh>());
      in = h;
    }
    seq.add(std::make_unique<Linear>(in, out_dim, rng));
  } else {
    std::size_t c = obs_.channels, h = obs_.height, w = obs_.width;
    for (const auto& cl : net_spec_.convs) {
      ops::Conv2dSpec spec;
      spec.in_channels = c;
      spec.out_channels = cl.out_channels;
      spec.in_h = h;
      spec.in_w = w;
      spec.kernel = cl.kernel;
      spec.stride = cl.stride;
      spec.padding = 0;
      STELLARIS_CHECK_MSG(h >= cl.kernel && w >= cl.kernel,
                          "conv kernel larger than feature map");
      auto conv = std::make_unique<Conv2d>(spec, rng);
      c = cl.out_channels;
      h = spec.out_h();
      w = spec.out_w();
      seq.add(std::move(conv));
      seq.add(std::make_unique<Relu>());
    }
    const std::size_t flat = c * h * w;
    seq.add(std::make_unique<Linear>(flat, net_spec_.fc_hidden, rng));
    seq.add(std::make_unique<Relu>());
    seq.add(std::make_unique<Linear>(net_spec_.fc_hidden, out_dim, rng));
  }
  return seq;
}

std::unique_ptr<ActorCritic> ActorCritic::clone() const {
  auto copy = std::make_unique<ActorCritic>(obs_, kind_, act_dim_, net_spec_,
                                            seed_);
  copy->set_flat_params(flat_params());
  return copy;
}

const Tensor& ActorCritic::policy_forward(const Tensor& obs) {
  STELLARIS_CHECK_MSG(obs.rank() == 2 && obs.dim(1) == obs_.flat_dim,
                      "policy_forward obs " << shape_str(obs.shape()));
  return policy_net_.forward(obs);
}

void ActorCritic::policy_backward(const Tensor& dout) {
  policy_net_.backward(dout);
}

const Tensor& ActorCritic::value_forward(const Tensor& obs) {
  value_out_ = value_net_.forward(obs);  // (batch, 1); copy reuses capacity
  value_out_.reshape({value_out_.dim(0)});
  return value_out_;
}

void ActorCritic::value_backward(const Tensor& dvalues) {
  STELLARIS_CHECK_MSG(dvalues.rank() == 1, "value_backward expects (batch)");
  dvalues_2d_ = dvalues;
  dvalues_2d_.reshape({dvalues.dim(0), 1});
  value_net_.backward(dvalues_2d_);
}

Tensor* ActorCritic::log_std() {
  return kind_ == ActionKind::kContinuous ? &log_std_ : nullptr;
}

const Tensor* ActorCritic::log_std() const {
  return kind_ == ActionKind::kContinuous ? &log_std_ : nullptr;
}

Tensor* ActorCritic::log_std_grad() {
  return kind_ == ActionKind::kContinuous ? &dlog_std_ : nullptr;
}

std::vector<Tensor*> ActorCritic::parameters() {
  std::vector<Tensor*> out = policy_net_.parameters();
  if (kind_ == ActionKind::kContinuous) out.push_back(&log_std_);
  for (Tensor* p : value_net_.parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> ActorCritic::gradients() {
  std::vector<Tensor*> out = policy_net_.gradients();
  if (kind_ == ActionKind::kContinuous) out.push_back(&dlog_std_);
  for (Tensor* g : value_net_.gradients()) out.push_back(g);
  return out;
}

void ActorCritic::zero_grad() {
  for (Tensor* g : gradients()) g->zero();
}

std::pair<std::size_t, std::size_t> ActorCritic::log_std_span() const {
  if (kind_ != ActionKind::kContinuous) return {0, 0};
  std::size_t offset = 0;
  for (const Tensor* p :
       const_cast<ActorCritic*>(this)->policy_net_.parameters())
    offset += p->numel();
  return {offset, act_dim_};
}

std::size_t ActorCritic::flat_size() const {
  std::size_t n = 0;
  for (const Tensor* p : const_cast<ActorCritic*>(this)->parameters())
    n += p->numel();
  return n;
}

std::vector<float> ActorCritic::flat_params() const {
  std::vector<float> out;
  out.reserve(flat_size());
  for (const Tensor* p : const_cast<ActorCritic*>(this)->parameters())
    out.insert(out.end(), p->vec().begin(), p->vec().end());
  return out;
}

void ActorCritic::set_flat_params(std::span<const float> flat) {
  STELLARIS_CHECK_MSG(flat.size() == flat_size(),
                      "flat params size " << flat.size() << " != "
                                          << flat_size());
  std::size_t off = 0;
  for (Tensor* p : parameters()) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + p->numel()),
              p->vec().begin());
    off += p->numel();
  }
}

std::vector<float> ActorCritic::flat_grads() const {
  std::vector<float> out;
  out.reserve(flat_size());
  for (const Tensor* g : const_cast<ActorCritic*>(this)->gradients())
    out.insert(out.end(), g->vec().begin(), g->vec().end());
  return out;
}

}  // namespace stellaris::nn
