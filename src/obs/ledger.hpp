// Run ledger — structured, causally-linked lifecycle events over the
// virtual clock, one JSON object per line (JSONL).
//
// Where the Chrome trace (obs/trace.hpp) is built for *visual* inspection,
// the ledger is built for *analysis*: every trajectory, gradient, and
// policy update carries propagated IDs (traj_id, learner_id, agg_id,
// policy_version, and the invocation ledger-id `lid` that produced it), so
// an offline tool can reconstruct the full causal path
//
//   actor rollout → cache put → learner claim → gradient → aggregation
//   gate decision → policy version bump
//
// and attribute virtual time and cost along it (tools/report/).
//
// Event schema (shared contract with tools/report/ledger_analysis.cpp and
// DESIGN.md §13). Every event has `ev` (type), `run` (run id, stamped from
// obs::current_run() at construction), and `t` (virtual seconds). Doubles
// are rendered with round-trip precision (%.17g) so offline sums reproduce
// the simulator's arithmetic exactly.
//
// Cost model: like tracing, the ledger is opt-in; when disabled the hot
// paths pay one relaxed atomic load + branch (see obs/obs.hpp), and an
// enabled ledger only observes — it draws no randomness and schedules no
// events, so results stay bit-identical with recording on or off.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace stellaris::obs {

/// Builder for one ledger line: `LedgerEvent("traj", t).field(...).finish()`.
/// Fields render eagerly into the line buffer; `finish()` closes the object.
class LedgerEvent {
 public:
  /// Starts `{"ev":"<ev>","run":<current run>,"t":<t_s>`.
  LedgerEvent(const char* ev, double t_s);

  LedgerEvent& field(std::string_view key, const std::string& v);
  LedgerEvent& field(std::string_view key, const char* v);
  LedgerEvent& field(std::string_view key, bool v);
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LedgerEvent& field(std::string_view key, T v) {
    if constexpr (std::is_integral_v<T>) {
      append_raw(key, std::to_string(v));
    } else {
      append_raw(key, render_number(static_cast<double>(v)));
    }
    return *this;
  }
  /// Pre-rendered JSON fragment (arrays, nested objects). The caller is
  /// responsible for its validity.
  LedgerEvent& raw(std::string_view key, std::string_view json);

  /// Close the object and return the finished line (no trailing newline).
  std::string finish();

  /// Round-trip double rendering (%.17g; null for non-finite values).
  static std::string render_number(double v);
  /// JSON string quoting/escaping (shared with the array helpers below).
  static std::string quote(std::string_view s);

 private:
  void append_raw(std::string_view key, std::string_view json);

  std::string line_;
};

/// Render a numeric array `[a,b,...]` with round-trip precision — for
/// per-gradient staleness lists and trajectory-id groups.
std::string render_number_array(const std::vector<double>& xs);
std::string render_id_array(const std::vector<std::uint64_t>& ids);

/// Appends finished lines in emission order behind one mutex (the sim
/// drivers are single-threaded; the mutex makes the recorder safe for the
/// real-concurrency drivers and the TSan hammer tests).
class LedgerRecorder {
 public:
  LedgerRecorder();
  LedgerRecorder(const LedgerRecorder&) = delete;
  LedgerRecorder& operator=(const LedgerRecorder&) = delete;

  void append(std::string line) EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);
  /// Snapshot of all lines in emission order (tests, in-process analysis).
  std::vector<std::string> lines() const EXCLUDES(mu_);

  /// One event per line, newline-terminated (JSONL).
  void write(std::ostream& os) const EXCLUDES(mu_);
  /// write() to `path`; false if the file cannot be opened or written.
  bool write_file(const std::string& path) const;

 private:
  mutable Mutex mu_{"obs/ledger", lock_rank::kLedger};
  std::vector<std::string> lines_ GUARDED_BY(mu_);
};

}  // namespace stellaris::obs
