#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace stellaris::ops {
namespace {

TEST(Matmul, HandComputed2x2) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, RectangularShapes) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 5.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), Error);
}

Tensor transpose(const Tensor& t) {
  Tensor out({t.dim(1), t.dim(0)});
  for (std::size_t i = 0; i < t.dim(0); ++i)
    for (std::size_t j = 0; j < t.dim(1); ++j) out.at(j, i) = t.at(i, j);
  return out;
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(1);
  Tensor a = Tensor::randn({5, 4}, rng);
  Tensor b = Tensor::randn({5, 3}, rng);
  Tensor fast = matmul_tn(a, b);
  Tensor ref = matmul(transpose(a), b);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.numel(); ++i)
    EXPECT_NEAR(fast[i], ref[i], 1e-4f);
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({3, 6}, rng);
  Tensor fast = matmul_nt(a, b);
  Tensor ref = matmul(a, transpose(b));
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.numel(); ++i)
    EXPECT_NEAR(fast[i], ref[i], 1e-4f);
}

TEST(Bias, AddBiasRows) {
  Tensor x({2, 3});
  Tensor b({3}, {1, 2, 3});
  add_bias_rows(x, b);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 2), 3.0f);
}

TEST(Bias, SumRowsIsColumnSum) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = sum_rows(x);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(s[1], 7.0f);
  EXPECT_FLOAT_EQ(s[2], 9.0f);
}

TEST(Activations, TanhForwardBackward) {
  Tensor x({2}, {0.5f, -1.0f});
  Tensor y = tanh_forward(x);
  EXPECT_NEAR(y[0], std::tanh(0.5f), 1e-6f);
  Tensor dy({2}, {1.0f, 1.0f});
  Tensor dx = tanh_backward(y, dy);
  EXPECT_NEAR(dx[0], 1.0f - y[0] * y[0], 1e-6f);
  EXPECT_NEAR(dx[1], 1.0f - y[1] * y[1], 1e-6f);
}

TEST(Activations, ReluForwardBackward) {
  Tensor x({3}, {-1.0f, 0.0f, 2.0f});
  Tensor y = relu_forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor dy({3}, {5.0f, 5.0f, 5.0f});
  Tensor dx = relu_backward(x, dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 0.0f);  // gradient convention: zero at the kink
  EXPECT_EQ(dx[2], 5.0f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(3);
  Tensor logits = Tensor::randn({4, 7}, rng, 3.0f);
  Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor logits({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor p = softmax_rows(logits);
  EXPECT_TRUE(p.all_finite());
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
}

TEST(Softmax, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(4);
  Tensor logits = Tensor::randn({3, 5}, rng, 2.0f);
  Tensor p = softmax_rows(logits);
  Tensor lp = log_softmax_rows(logits);
  for (std::size_t i = 0; i < lp.numel(); ++i)
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
}

Conv2dSpec make_spec(std::size_t c, std::size_t h, std::size_t w,
                     std::size_t k, std::size_t stride, std::size_t pad) {
  Conv2dSpec s;
  s.in_channels = c;
  s.in_h = h;
  s.in_w = w;
  s.kernel = k;
  s.stride = stride;
  s.padding = pad;
  s.out_channels = 1;
  return s;
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1x1 kernel stride 1: im2col is the identity up to layout.
  auto spec = make_spec(1, 3, 3, 1, 1, 0);
  Tensor x({1, 9}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{9, 1}));
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(cols[i], x[i]);
}

TEST(Im2col, ExtractsReceptiveFields) {
  auto spec = make_spec(1, 3, 3, 2, 1, 0);
  Tensor x({1, 9}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols = im2col(x, spec);
  ASSERT_EQ(cols.shape(), (Shape{4, 4}));
  // Top-left receptive field is [1, 2, 4, 5].
  EXPECT_FLOAT_EQ(cols.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 3), 5.0f);
  // Bottom-right receptive field is [5, 6, 8, 9].
  EXPECT_FLOAT_EQ(cols.at(3, 0), 5.0f);
  EXPECT_FLOAT_EQ(cols.at(3, 3), 9.0f);
}

TEST(Im2col, PaddingYieldsZeros) {
  auto spec = make_spec(1, 2, 2, 3, 1, 1);
  Tensor x({1, 4}, {1, 2, 3, 4});
  Tensor cols = im2col(x, spec);
  // First patch centered at (-1,-1).. top-left corner: first element padded.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0f);  // center of 3x3 patch at (0,0)
}

// Adjoint property: <im2col(x), y> == <x, col2im(y)> for all x, y. This is
// the exact condition for the conv backward pass to be the true gradient.
class Im2colAdjoint
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Im2colAdjoint, HoldsForGeometry) {
  const auto [kernel, stride, pad] = GetParam();
  auto spec = make_spec(2, 6, 5, kernel, stride, pad);
  Rng rng(99);
  const std::size_t batch = 3;
  Tensor x = Tensor::randn({batch, 2 * 6 * 5}, rng);
  Tensor cols = im2col(x, spec);
  Tensor y = Tensor::randn(cols.shape(), rng);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i)
    lhs += double(cols[i]) * y[i];
  Tensor back = col2im(y, spec, batch);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += double(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(std::make_tuple(3, 1, 0), std::make_tuple(3, 2, 0),
                      std::make_tuple(2, 1, 1), std::make_tuple(3, 2, 1),
                      std::make_tuple(5, 1, 2)));

TEST(Conv2dSpecTest, OutputGeometry) {
  auto spec = make_spec(3, 20, 20, 5, 2, 0);
  EXPECT_EQ(spec.out_h(), 8u);
  EXPECT_EQ(spec.out_w(), 8u);
}

}  // namespace
}  // namespace stellaris::ops
