#include "sim/engine.hpp"

#include "sim/driver.hpp"
#include "util/error.hpp"

namespace stellaris::sim {

Driver& Engine::driver() const {
  return driver_ ? *driver_ : inline_driver();
}

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  STELLARIS_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t
                                                                << " now="
                                                                << now_);
  queue_.push(Event{t, next_seq_++, std::move(fn), nullptr});
}

void Engine::schedule_after(SimTime delay, std::function<void()> fn) {
  STELLARIS_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  schedule_at(now_ + delay, std::move(fn));
}

Engine::CancelHandle Engine::schedule_cancellable_at(SimTime t,
                                                     std::function<void()> fn) {
  STELLARIS_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t
                                                                << " now="
                                                                << now_);
  auto handle = std::make_shared<std::atomic<bool>>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), handle});
  return handle;
}

Engine::CancelHandle Engine::schedule_cancellable_after(
    SimTime delay, std::function<void()> fn) {
  STELLARIS_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_cancellable_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the function handle (cheap: shared state inside std::function).
    Event ev = queue_.top();
    queue_.pop();
    // Cancelled events are dropped without touching the clock: a dead timer
    // must leave no trace in `now()` or `executed_events()`.
    if (ev.cancelled && *ev.cancelled) continue;
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.cancelled && *top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.t > deadline) break;
    step();
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
}

}  // namespace stellaris::sim
