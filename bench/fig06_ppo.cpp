// Fig. 6 — Stellaris accelerates PPO training: vanilla synchronous PPO vs
// PPO + Stellaris on all six benchmark environments, reward curves averaged
// over seeds. Also prints the Table II network architectures and Table III
// hyper-parameters actually used.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  // Tables II & III (configuration provenance).
  {
    Table t2({"task", "layers", "activation", "paper_size", "repro_size"});
    t2.row().add("MuJoCo").add("fully-connect").add("Tanh").add("2 x 256")
        .add("2 x 32 (width-scaled)");
    t2.row().add("Atari").add("convolutional").add("ReLU")
        .add("16@8x8 / 32@4x4 / 256@11x11")
        .add("8@5x5 / 16@3x3 / fc 128 (geometry-scaled)");
    t2.emit("Table II — policy network architectures");

    core::TrainConfig c;
    Table t3({"parameter", "paper_ppo", "repro_ppo"});
    t3.row().add("learning rate").add("0.00005").add(std::to_string(c.ppo.lr));
    t3.row().add("discount gamma").add("0.99").add("0.99");
    t3.row().add("clip param").add("0.3").add("0.3");
    t3.row().add("KL coeff").add("0.2").add("0.2");
    t3.row().add("KL target").add("0.01").add("0.01");
    t3.row().add("entropy coeff").add("0.0").add("0.0");
    t3.row().add("vf coeff").add("1.0").add("1.0");
    t3.emit("Table III — PPO hyper-parameters (lr rescaled, see "
            "EXPERIMENTS.md)");
  }

  Table summary({"env", "ppo_final", "stellaris_final", "reward_gain",
                 "ppo_time_s", "stellaris_time_s"});
  for (const auto& env : envs::benchmark_env_names()) {
    const std::size_t rounds = bench::default_rounds(env);
    const std::size_t seeds = bench::default_seeds(env);
    auto cfg = bench::base_config(env, rounds, 1);
    bench::apply_driver_args(cfg, argc, argv);

    baselines::SyncConfig sync_cfg;
    sync_cfg.base = cfg;
    sync_cfg.variant = baselines::SyncVariant::kVanillaPpo;
    sync_cfg.num_learners = 4;
    auto ppo_runs = bench::run_sync_seeds(sync_cfg, seeds);
    const double budget = bench::summarize(ppo_runs).time_s;
    auto stl_runs = bench::run_seeds_time_matched(cfg, seeds, budget);

    bench::emit_curve_comparison("Fig. 6 — " + env + ": PPO vs PPO+Stellaris",
                                 "ppo", ppo_runs, "stellaris", stl_runs,
                                 "fig06_" + env + ".csv");
    const auto sp = bench::summarize(ppo_runs);
    const auto ss = bench::summarize(stl_runs);
    summary.row()
        .add(env)
        .add(sp.final_reward, 1)
        .add(ss.final_reward, 1)
        .add(sp.final_reward != 0.0 ? ss.final_reward / sp.final_reward : 0.0,
             2)
        .add(sp.time_s, 1)
        .add(ss.time_s, 1);
  }
  summary.emit("Fig. 6 summary — final rewards (paper: Stellaris up to 2.2x)",
               "fig06_summary.csv");
  std::cout << "\nExpected shape: Stellaris' curve is above vanilla PPO in"
               " most environments and reaches it in far less virtual time.\n";
  return 0;
}
