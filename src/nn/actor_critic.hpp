// Actor–critic model: a policy network and a value network built to the
// paper's Table II architectures, plus the flat-vector parameter interface
// used to ship policies and gradients through the distributed cache.
//
// Table II (paper):           This repo (scaled for a single-core box):
//   MuJoCo: 2×256 FC, Tanh      2×H FC (H configurable, default 64), Tanh
//   Atari:  16 8×8 / 32 4×4 /   conv stack + FC head, configurable
//           256 11×11, ReLU
// The critic shares the policy architecture (separate weights), as in the
// paper.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace stellaris::nn {

/// Continuous (diagonal Gaussian) vs discrete (categorical) action space.
enum class ActionKind { kContinuous, kDiscrete };

/// Observation layout. Vector observations set only `flat_dim`; image
/// observations also carry the (C, H, W) geometry for the conv torso.
struct ObsSpec {
  std::size_t flat_dim = 0;
  bool image = false;
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;

  static ObsSpec vector(std::size_t dim) { return {dim, false, 0, 0, 0}; }
  static ObsSpec planes(std::size_t c, std::size_t h, std::size_t w) {
    return {c * h * w, true, c, h, w};
  }
};

/// Network topology. Either an MLP (hidden sizes + Tanh) or a conv stack
/// followed by one FC hidden layer (+ ReLU), mirroring Table II.
struct NetworkSpec {
  struct ConvLayer {
    std::size_t out_channels;
    std::size_t kernel;
    std::size_t stride;
  };

  bool use_cnn = false;
  std::vector<std::size_t> hidden = {64, 64};  // MLP path
  std::vector<ConvLayer> convs;                // CNN path
  std::size_t fc_hidden = 128;                 // CNN path final FC

  /// Table II MuJoCo row, width-scaled.
  static NetworkSpec mujoco(std::size_t width = 64);
  /// Table II Atari row, geometry-scaled to this repo's arcade frames.
  static NetworkSpec atari();
};

/// Policy + value networks with explicit backprop and flat (de)serialization.
class ActorCritic {
 public:
  ActorCritic(const ObsSpec& obs, ActionKind kind, std::size_t act_dim,
              const NetworkSpec& net, std::uint64_t seed);

  // Non-copyable (layers own big buffers); use clone() for explicit copies.
  ActorCritic(const ActorCritic&) = delete;
  ActorCritic& operator=(const ActorCritic&) = delete;
  ActorCritic(ActorCritic&&) = default;
  ActorCritic& operator=(ActorCritic&&) = default;

  /// Deep copy with identical parameters.
  std::unique_ptr<ActorCritic> clone() const;

  ActionKind kind() const { return kind_; }
  std::size_t act_dim() const { return act_dim_; }
  const ObsSpec& obs_spec() const { return obs_; }

  /// Policy head output: Gaussian means (batch, act_dim) or logits
  /// (batch, n_actions). The reference is owned by the policy net and stays
  /// valid until its next forward/backward call.
  const Tensor& policy_forward(const Tensor& obs);
  /// Push dL/d(policy output) back through the policy net.
  void policy_backward(const Tensor& dout);

  /// State values, shape (batch); reference valid until the next
  /// value_forward call.
  const Tensor& value_forward(const Tensor& obs);
  /// Push dL/d(values), shape (batch).
  void value_backward(const Tensor& dvalues);

  /// Learned log-std vector (continuous only; nullptr for discrete).
  Tensor* log_std();
  const Tensor* log_std() const;
  Tensor* log_std_grad();

  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();
  void zero_grad();

  // -- flat-vector interface (cache wire format) ---------------------------
  /// (offset, length) of the log-std segment inside the flat parameter
  /// vector, or (0, 0) for discrete policies. Optimizers clamp this segment
  /// to a sane range after each step: with small batches the log-std
  /// gradient is noise-dominated, and adaptive optimizers would otherwise
  /// random-walk σ into degenerate exploration.
  std::pair<std::size_t, std::size_t> log_std_span() const;
  std::size_t flat_size() const;
  std::vector<float> flat_params() const;
  void set_flat_params(std::span<const float> flat);
  std::vector<float> flat_grads() const;

 private:
  Sequential build_torso(std::size_t out_dim, Rng& rng) const;

  ObsSpec obs_;
  ActionKind kind_;
  std::size_t act_dim_;
  NetworkSpec net_spec_;
  std::uint64_t seed_;

  Sequential policy_net_;
  Sequential value_net_;
  Tensor log_std_;       // (act_dim) for continuous; empty for discrete
  Tensor dlog_std_;
  Tensor value_out_;     // value_forward result, reshaped to (batch)
  Tensor dvalues_2d_;    // value_backward input, reshaped to (batch, 1)
};

}  // namespace stellaris::nn
