// Retry policy: bounded retries with exponential backoff + jitter, in
// VIRTUAL time. Used by the serverless platform's retrying invoker and by
// the sync baseline's analytic fault model, so both systems recover from
// the same failures under the same policy.
#pragma once

#include <cstddef>

#include "util/rng.hpp"

namespace stellaris::fault {

struct RetryPolicy {
  std::size_t max_retries = 3;   ///< retries after the first attempt
  double base_backoff_s = 0.05;  ///< backoff before retry #1
  double backoff_mult = 2.0;     ///< exponential growth per retry
  double max_backoff_s = 2.0;    ///< cap on any single backoff
  double jitter_frac = 0.1;      ///< +/- uniform jitter on each backoff
  /// Per-invocation deadline measured from the FIRST submit; a retry whose
  /// backoff would start past the deadline is abandoned (ErrorKind::
  /// kDeadline). 0 disables the deadline.
  double deadline_s = 0.0;

  /// May attempt number `attempt` (0-based; 0 = first try) run at all?
  bool attempt_allowed(std::size_t attempt) const {
    return attempt <= max_retries;
  }

  /// Backoff before retry number `retry` (1-based), jittered from `rng`.
  /// Deterministic for a given RNG state.
  double backoff_s(std::size_t retry, Rng& rng) const;

  void validate() const;
};

}  // namespace stellaris::fault
