#include "rl/actor.hpp"

#include "nn/distributions.hpp"

namespace stellaris::rl {

Actor::Actor(std::unique_ptr<envs::Env> env, std::uint64_t seed)
    : env_(std::move(env)), rng_(seed) {}

void Actor::ensure_episode(Rng& rng) {
  if (!episode_active_) {
    current_obs_ = env_->reset(rng.next());
    episode_active_ = true;
    episode_return_ = 0.0;
    ++episode_counter_;
  }
}

SampleBatch Actor::sample(nn::ActorCritic& policy, std::size_t horizon,
                          std::uint64_t policy_version) {
  return sample(policy, horizon, policy_version, rng_);
}

SampleBatch Actor::sample(nn::ActorCritic& policy, std::size_t horizon,
                          std::uint64_t policy_version, Rng& rng) {
  STELLARIS_CHECK_MSG(horizon > 0, "sample horizon must be positive");
  const auto& spec = env_->spec();
  const std::size_t obs_dim = spec.obs.flat_dim;
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;

  SampleBatch batch;
  batch.action_kind = spec.action_kind;
  batch.policy_version = policy_version;
  batch.obs = Tensor({horizon, obs_dim});
  if (continuous) batch.actions_cont = Tensor({horizon, spec.act_dim});
  batch.rewards = Tensor({horizon});
  batch.dones = Tensor({horizon});
  batch.behaviour_log_probs = Tensor({horizon});
  batch.values = Tensor({horizon});

  for (std::size_t t = 0; t < horizon; ++t) {
    ensure_episode(rng);
    // Single-row forward; learner-side batching happens over whole batches.
    Tensor obs_row({1, obs_dim},
                   std::vector<float>(current_obs_.begin(),
                                      current_obs_.end()));
    Tensor pol_out = policy.policy_forward(obs_row);
    Tensor value = policy.value_forward(obs_row);

    std::copy(current_obs_.begin(), current_obs_.end(),
              batch.obs.row(t).begin());
    batch.values[t] = value[0];

    envs::StepResult result;
    if (continuous) {
      Tensor action = nn::gaussian_sample(pol_out, *policy.log_std(), rng);
      const Tensor logp =
          nn::gaussian_log_prob(pol_out, *policy.log_std(), action);
      batch.behaviour_log_probs[t] = logp[0];
      std::copy(action.vec().begin(), action.vec().end(),
                batch.actions_cont.row(t).begin());
      result = env_->step(action.row(0));
    } else {
      const auto actions = nn::categorical_sample(pol_out, rng);
      const Tensor logp = nn::categorical_log_prob(pol_out, actions);
      batch.behaviour_log_probs[t] = logp[0];
      batch.actions_disc.push_back(actions[0]);
      result = env_->step_discrete(actions[0]);
    }

    batch.rewards[t] = static_cast<float>(result.reward);
    episode_return_ += result.reward;
    batch.dones[t] = result.done ? 1.0f : 0.0f;
    if (result.done) {
      batch.episode_returns.push_back(episode_return_);
      episode_active_ = false;
    } else {
      current_obs_ = std::move(result.obs);
    }
  }

  // Bootstrap value for a truncated final transition.
  if (batch.dones[horizon - 1] < 0.5f) {
    Tensor obs_row({1, obs_dim},
                   std::vector<float>(current_obs_.begin(),
                                      current_obs_.end()));
    batch.bootstrap_value = policy.value_forward(obs_row)[0];
  }
  return batch;
}

double Actor::evaluate_episode(nn::ActorCritic& policy, std::uint64_t seed) {
  const auto& spec = env_->spec();
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;
  std::vector<float> obs = env_->reset(seed);
  Rng eval_rng(seed ^ 0xeba1eba1eba1ULL);
  double total = 0.0;
  for (;;) {
    Tensor obs_row({1, spec.obs.flat_dim},
                   std::vector<float>(obs.begin(), obs.end()));
    Tensor pol_out = policy.policy_forward(obs_row);
    envs::StepResult result;
    if (continuous) {
      Tensor action =
          nn::gaussian_sample(pol_out, *policy.log_std(), eval_rng);
      result = env_->step(action.row(0));
    } else {
      const auto actions = nn::categorical_sample(pol_out, eval_rng);
      result = env_->step_discrete(actions[0]);
    }
    total += result.reward;
    if (result.done) break;
    obs = std::move(result.obs);
  }
  // Evaluation interrupts any in-flight sampling episode.
  episode_active_ = false;
  return total;
}

double evaluate_policy(envs::Env& env, nn::ActorCritic& policy,
                       std::size_t episodes, std::uint64_t seed) {
  const auto& spec = env.spec();
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;
  Rng eval_rng(seed);
  double total = 0.0;
  for (std::size_t e = 0; e < episodes; ++e) {
    std::vector<float> obs = env.reset(eval_rng.next());
    for (;;) {
      Tensor obs_row({1, spec.obs.flat_dim},
                     std::vector<float>(obs.begin(), obs.end()));
      Tensor pol_out = policy.policy_forward(obs_row);
      envs::StepResult result;
      if (continuous) {
        Tensor action =
            nn::gaussian_sample(pol_out, *policy.log_std(), eval_rng);
        result = env.step(action.row(0));
      } else {
        const auto actions = nn::categorical_sample(pol_out, eval_rng);
        result = env.step_discrete(actions[0]);
      }
      total += result.reward;
      if (result.done) break;
      obs = std::move(result.obs);
    }
  }
  return total / static_cast<double>(episodes);
}

}  // namespace stellaris::rl
