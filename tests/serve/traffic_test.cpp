// TrafficGen: seeded open/closed-loop arrival processes over the virtual
// clock — rate accuracy, burst phases, closed-loop self-limiting, and
// bit-identical reruns for a fixed (config, seed).
#include "serve/traffic_gen.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace stellaris::serve {
namespace {

TEST(TrafficGen, OpenLoopRateIsApproximatelyPoisson) {
  sim::Engine engine;
  TrafficConfig cfg;
  cfg.mode = TrafficMode::kOpenPoisson;
  cfg.rate_per_s = 200.0;
  cfg.duration_s = 50.0;
  TrafficGen gen(engine, cfg, 7);
  std::uint64_t arrivals = 0;
  gen.start([&](std::uint64_t) { ++arrivals; });
  engine.run();
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(gen.issued(), arrivals);
  // 10k expected; 4 sigma ≈ 400.
  EXPECT_GT(arrivals, 9600u);
  EXPECT_LT(arrivals, 10400u);
}

TEST(TrafficGen, OpenLoopStopsAtDuration) {
  sim::Engine engine;
  TrafficConfig cfg;
  cfg.rate_per_s = 100.0;
  cfg.duration_s = 5.0;
  TrafficGen gen(engine, cfg, 3);
  double last = 0.0;
  gen.start([&](std::uint64_t) { last = engine.now(); });
  engine.run();
  EXPECT_LE(last, cfg.duration_s);
  EXPECT_TRUE(gen.done());
}

TEST(TrafficGen, BurstPhaseRaisesRate) {
  sim::Engine engine;
  TrafficConfig cfg;
  cfg.rate_per_s = 50.0;
  cfg.burst_rate_per_s = 500.0;
  cfg.burst_start_s = 10.0;
  cfg.burst_end_s = 20.0;
  cfg.duration_s = 30.0;
  TrafficGen gen(engine, cfg, 11);
  std::uint64_t in_burst = 0, outside = 0;
  gen.start([&](std::uint64_t) {
    if (engine.now() >= 10.0 && engine.now() < 20.0)
      ++in_burst;
    else
      ++outside;
  });
  engine.run();
  // Burst window: ~5000 arrivals in 10 s vs ~1000 in the other 20 s.
  EXPECT_GT(in_burst, 4 * outside);
}

TEST(TrafficGen, SameSeedIsBitIdentical) {
  std::vector<double> first;
  for (int run = 0; run < 2; ++run) {
    sim::Engine engine;
    TrafficConfig cfg;
    cfg.rate_per_s = 100.0;
    cfg.duration_s = 10.0;
    TrafficGen gen(engine, cfg, 42);
    std::vector<double> times;
    gen.start([&](std::uint64_t) { times.push_back(engine.now()); });
    engine.run();
    if (run == 0) {
      first = times;
    } else {
      ASSERT_EQ(first.size(), times.size());
      for (std::size_t i = 0; i < times.size(); ++i)
        EXPECT_EQ(first[i], times[i]) << "arrival " << i;
    }
  }
}

TEST(TrafficGen, ClosedLoopKeepsOneRequestPerClient) {
  sim::Engine engine;
  TrafficConfig cfg;
  cfg.mode = TrafficMode::kClosedLoop;
  cfg.concurrency = 8;
  cfg.think_time_s = 0.010;
  cfg.duration_s = 10.0;
  TrafficGen gen(engine, cfg, 5);
  std::vector<std::uint64_t> outstanding(cfg.concurrency, 0);
  std::uint64_t arrivals = 0;
  gen.start([&](std::uint64_t client) {
    ASSERT_LT(client, outstanding.size());
    // The client must not have a request in flight already.
    EXPECT_EQ(outstanding[client], 0u);
    ++outstanding[client];
    ++arrivals;
    // Respond after a fixed service time.
    engine.schedule_after(0.005, [&gen, &outstanding, client] {
      --outstanding[client];
      gen.on_complete(client);
    });
  });
  engine.run();
  EXPECT_TRUE(gen.done());
  // 8 clients cycling every ~15 ms over 10 s → on the order of 5k arrivals;
  // the closed loop can never exceed duration / (service time) per client.
  EXPECT_GT(arrivals, 3000u);
  EXPECT_LT(arrivals, 8u * 2000u);
}

}  // namespace
}  // namespace stellaris::serve
