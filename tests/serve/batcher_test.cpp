// Batcher: per-version lanes, max-batch / max-wait cutoffs, FIFO takes.
#include "serve/batcher.hpp"

#include <gtest/gtest.h>

namespace stellaris::serve {
namespace {

ServeRequest req(std::uint64_t id, std::uint64_t version, double arrival) {
  ServeRequest r;
  r.id = id;
  r.version = version;
  r.arrival_s = arrival;
  return r;
}

TEST(Batcher, EnqueueReportsLaneWasEmpty) {
  Batcher b(BatchConfig{4, 0.010});
  EXPECT_TRUE(b.enqueue(req(1, 1, 0.0)));    // lane v1 was empty
  EXPECT_FALSE(b.enqueue(req(2, 1, 0.001))); // now it is not
  EXPECT_TRUE(b.enqueue(req(3, 2, 0.002)));  // lane v2 was empty
  EXPECT_EQ(b.queued(), 3u);
}

TEST(Batcher, NotReadyBeforeEitherCutoff) {
  Batcher b(BatchConfig{4, 0.010});
  b.enqueue(req(1, 1, 0.0));
  EXPECT_FALSE(b.ready_version(0.005).has_value());
}

TEST(Batcher, FullLaneIsReadyImmediately) {
  Batcher b(BatchConfig{2, 10.0});
  b.enqueue(req(1, 1, 0.0));
  b.enqueue(req(2, 1, 0.0));
  const auto v = b.ready_version(0.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
}

TEST(Batcher, ExpiredLaneIsReadyAtExactDeadline) {
  Batcher b(BatchConfig{32, 0.010});
  b.enqueue(req(1, 1, 1.0));
  EXPECT_FALSE(b.ready_version(1.0099999).has_value());
  // The cutoff timer fires at head + max_wait exactly; >= makes the timer's
  // own event see its lane as dispatchable.
  EXPECT_TRUE(b.ready_version(1.010).has_value());
}

TEST(Batcher, ReadyPrefersOldestHeadThenLowerVersion) {
  Batcher b(BatchConfig{2, 10.0});
  b.enqueue(req(1, 2, 0.0));  // v2 head arrived first
  b.enqueue(req(2, 2, 0.1));
  b.enqueue(req(3, 1, 0.2));
  b.enqueue(req(4, 1, 0.3));
  ASSERT_TRUE(b.ready_version(0.3).has_value());
  EXPECT_EQ(*b.ready_version(0.3), 2u);

  Batcher tie(BatchConfig{1, 10.0});
  tie.enqueue(req(1, 7, 0.0));
  tie.enqueue(req(2, 3, 0.0));  // same head arrival: lower version wins
  EXPECT_EQ(*tie.ready_version(0.0), 3u);
}

TEST(Batcher, TakePopsFifoUpToMaxBatch) {
  Batcher b(BatchConfig{2, 10.0});
  b.enqueue(req(1, 1, 0.0));
  b.enqueue(req(2, 1, 0.1));
  b.enqueue(req(3, 1, 0.2));
  auto batch = b.take(1);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(b.queued(), 1u);
  ASSERT_TRUE(b.head_arrival(1).has_value());
  EXPECT_DOUBLE_EQ(*b.head_arrival(1), 0.2);
  auto rest = b.take(1);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].id, 3u);
  EXPECT_EQ(b.queued(), 0u);
  EXPECT_FALSE(b.head_arrival(1).has_value());
}

TEST(Batcher, PendingVersionsAscending) {
  Batcher b(BatchConfig{8, 10.0});
  b.enqueue(req(1, 5, 0.0));
  b.enqueue(req(2, 2, 0.0));
  const auto versions = b.pending_versions();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0], 2u);
  EXPECT_EQ(versions[1], 5u);
}

}  // namespace
}  // namespace stellaris::serve
