file(REMOVE_RECURSE
  "CMakeFiles/cache_sim_tests.dir/cache/cache_test.cpp.o"
  "CMakeFiles/cache_sim_tests.dir/cache/cache_test.cpp.o.d"
  "CMakeFiles/cache_sim_tests.dir/sim/engine_test.cpp.o"
  "CMakeFiles/cache_sim_tests.dir/sim/engine_test.cpp.o.d"
  "cache_sim_tests"
  "cache_sim_tests.pdb"
  "cache_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
