#include "core/gradient.hpp"

namespace stellaris::core {

std::vector<std::uint8_t> GradientMsg::serialize() const {
  ByteWriter w(wire::size_f32_vector(grad.size()) + wire::size_u64() * 3 +
               wire::size_f64() * 3);
  w.put_f32_vector(grad);
  w.put_u64(learner_id);
  w.put_u64(pulled_version);
  w.put_f64(mean_ratio);
  w.put_u64(batch_size);
  w.put_f64(kl);
  w.put_f64(compute_time_s);
  return w.take();
}

GradientMsg GradientMsg::deserialize(ByteSpan bytes) {
  GradientMsg m;
  deserialize_into(bytes, m);
  return m;
}

void GradientMsg::deserialize_into(ByteSpan bytes, GradientMsg& out) {
  ByteReader r(bytes);
  r.get_f32_vector_into(out.grad);
  out.learner_id = r.get_u64();
  out.pulled_version = r.get_u64();
  out.mean_ratio = r.get_f64();
  out.batch_size = r.get_u64();
  out.kl = r.get_f64();
  out.compute_time_s = r.get_f64();
}

}  // namespace stellaris::core
