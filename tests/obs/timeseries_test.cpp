// Time-series recorder tests: window alignment on the virtual clock,
// empty-window gaps staying absent (not zero-filled), export formats, and
// shard-count invariance of cache occupancy sampling.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/distributed_cache.hpp"
#include "obs/obs.hpp"
#include "util/mini_json.hpp"

namespace stellaris::obs {
namespace {

TEST(TimeSeries, WindowAlignmentOnVirtualClock) {
  TimeSeriesRecorder rec(1.0);
  // Window k covers [k, k+1): a sample exactly on the boundary lands in
  // the *next* window.
  rec.sample("q", 0.0, 1.0);
  rec.sample("q", 0.999999, 3.0);
  rec.sample("q", 1.0, 5.0);
  const auto w = rec.windows("q");
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].index, 0);
  EXPECT_EQ(w[0].count, 2u);
  EXPECT_DOUBLE_EQ(w[0].min, 1.0);
  EXPECT_DOUBLE_EQ(w[0].max, 3.0);
  EXPECT_DOUBLE_EQ(w[0].mean(), 2.0);
  EXPECT_DOUBLE_EQ(w[0].last, 3.0);
  EXPECT_EQ(w[1].index, 1);
  EXPECT_EQ(w[1].count, 1u);
  EXPECT_DOUBLE_EQ(w[1].last, 5.0);
}

TEST(TimeSeries, FractionalWindowWidth) {
  TimeSeriesRecorder rec(0.25);
  rec.sample("x", 0.30, 1.0);   // window 1: [0.25, 0.5)
  rec.sample("x", 0.499, 2.0);  // window 1
  rec.sample("x", 0.50, 3.0);   // window 2
  const auto w = rec.windows("x");
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].index, 1);
  EXPECT_EQ(w[0].count, 2u);
  EXPECT_EQ(w[1].index, 2);
}

TEST(TimeSeries, EmptyWindowsStayAbsent) {
  TimeSeriesRecorder rec(1.0);
  rec.sample("x", 0.5, 1.0);
  rec.sample("x", 7.5, 2.0);  // windows 1..6 have no samples
  const auto w = rec.windows("x");
  // Gaps are preserved as absence — a window with no samples must not
  // appear as a zero-count (or zero-valued) entry.
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].index, 0);
  EXPECT_EQ(w[1].index, 7);
  for (const auto& win : w) EXPECT_GT(win.count, 0u);
}

TEST(TimeSeries, SeriesAreIndependentAndSorted) {
  TimeSeriesRecorder rec(1.0);
  rec.sample("b", 0.0, 1.0);
  rec.sample("a", 0.0, 2.0);
  rec.sample("b", 2.0, 3.0);
  const auto names = rec.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(rec.windows("a").size(), 1u);
  EXPECT_EQ(rec.windows("b").size(), 2u);
  EXPECT_TRUE(rec.windows("missing").empty());
}

TEST(TimeSeries, CsvAndJsonExports) {
  TimeSeriesRecorder rec(0.5);
  rec.sample("s", 0.6, 4.0);
  std::ostringstream csv;
  rec.write_csv(csv);
  EXPECT_NE(csv.str().find("series,window,t_lo,t_hi,count,min,max,mean,last"),
            std::string::npos);
  EXPECT_NE(csv.str().find("s,1,"), std::string::npos);

  std::ostringstream json;
  rec.write_json(json);
  const minijson::Value root = minijson::parse(json.str());
  EXPECT_DOUBLE_EQ(root.at("window_s").number(), 0.5);
  const auto& series = root.at("series").at("s");
  ASSERT_TRUE(series.is_array());
  ASSERT_EQ(series.arr.size(), 1u);
  EXPECT_DOUBLE_EQ(series.arr[0].at("last").number(), 4.0);
}

TEST(TimeSeries, InstallTimeseriesTogglesGlobalPointer) {
  TimeSeriesRecorder rec(1.0);
  EXPECT_EQ(obs::timeseries(), nullptr);
  obs::install_timeseries(&rec);
  EXPECT_EQ(obs::timeseries(), &rec);
  obs::install_timeseries(nullptr);
  EXPECT_EQ(obs::timeseries(), nullptr);
}

// Cache occupancy sampling must be shard-count invariant: num_keys and
// resident_bytes are order-free sums over shards, so the recorded series
// must be identical no matter how the keys hash across 1, 4, or 16 shards.
TEST(TimeSeries, CacheDepthSamplingIsShardCountInvariant) {
  auto run_with_shards = [](std::size_t shards) {
    TimeSeriesRecorder rec(1.0);
    obs::install_timeseries(&rec);
    cache::DistributedCache c(shards);
    double t = 0.25;
    for (int i = 0; i < 32; ++i) {
      c.put("traj/" + std::to_string(i),
            cache::Bytes(static_cast<std::size_t>(8 * (i + 1)), 0x5a));
      c.sample_depth(t);
      t += 0.4;
    }
    obs::install_timeseries(nullptr);
    std::ostringstream os;
    rec.write_csv(os);
    return os.str();
  };
  const std::string one = run_with_shards(1);
  EXPECT_EQ(one, run_with_shards(4));
  EXPECT_EQ(one, run_with_shards(16));
  EXPECT_NE(one.find("cache.num_keys"), std::string::npos);
  EXPECT_NE(one.find("cache.resident_bytes"), std::string::npos);
}

TEST(TimeSeries, CacheDepthSamplingIsNoopWhenDisabled) {
  cache::DistributedCache c(4);
  c.put("k", cache::Bytes(16, 1));
  c.sample_depth(1.0);  // no recorder installed: must not crash
}

TEST(TimeSeries, WriteFilePicksFormatByExtension) {
  TimeSeriesRecorder rec(1.0);
  rec.sample("s", 0.1, 1.0);
  const std::string jpath = "ts_test_tmp.json";
  const std::string cpath = "ts_test_tmp.csv";
  ASSERT_TRUE(rec.write_file(jpath));
  ASSERT_TRUE(rec.write_file(cpath));
  std::ifstream jin(jpath);
  std::stringstream jss;
  jss << jin.rdbuf();
  jin.close();
  EXPECT_NO_THROW(minijson::parse(jss.str()));
  std::ifstream cin_(cpath);
  std::string header;
  std::getline(cin_, header);
  cin_.close();
  EXPECT_EQ(header, "series,window,t_lo,t_hi,count,min,max,mean,last");
  std::remove(jpath.c_str());
  std::remove(cpath.c_str());
}

}  // namespace
}  // namespace stellaris::obs
