// Grid-arcade games — the Atari substitutes.
//
// Three games matching the paper's discrete-action suite, each emitting a
// 3-plane 20×20 image observation (entity planes rather than raw pixels —
// same tensor geometry, without the ROM):
//   SpaceInvaders: move/fire under a descending alien grid, +score per kill.
//   Qbert:         hop a pyramid painting cells, dodge the descending ball.
//   Gravitar:      thrust a ship against gravity collecting fuel depots.
// All three exercise the conv-net policy path, frame-style observations,
// sparse-ish score rewards, and death-terminated episodes.
#pragma once

#include <cstdint>

#include "envs/env.hpp"
#include "util/rng.hpp"

namespace stellaris::envs {

/// Shared canvas geometry for the arcade games.
inline constexpr std::size_t kArcadeSize = 20;
inline constexpr std::size_t kArcadeChannels = 3;

/// Common plumbing: observation canvas, step cap, scoring.
class ArcadeEnv : public Env {
 public:
  const EnvSpec& spec() const override { return spec_; }
  std::vector<float> reset(std::uint64_t seed) override;
  StepResult step_discrete(std::size_t action) override;
  void reset_into(std::uint64_t seed, std::span<float> obs) override;
  StepOut step_discrete_into(std::size_t action, std::span<float> obs) override;

 protected:
  ArcadeEnv(std::string name, std::size_t n_actions, std::size_t max_steps,
            double reward_scale);

  /// Game-specific episode state reset.
  virtual void reset_game() = 0;
  /// Advance one tick; return (reward, done).
  virtual std::pair<double, bool> tick(std::size_t action) = 0;
  /// Draw the three entity planes into `canvas` (zeroed beforehand);
  /// canvas[c][y][x] indexed via plane().
  virtual void render(std::span<float> canvas) const = 0;

  float& plane(std::span<float> canvas, std::size_t c, std::size_t y,
               std::size_t x) const;

  Rng rng_{1};
  std::size_t step_count_ = 0;

 private:
  void observe_into(std::span<float> obs);

  EnvSpec spec_;
};

/// SpaceInvaders proxy: actions {noop, left, right, fire}.
class SpaceInvadersEnv final : public ArcadeEnv {
 public:
  SpaceInvadersEnv();

 protected:
  void reset_game() override;
  std::pair<double, bool> tick(std::size_t action) override;
  void render(std::span<float> canvas) const override;

 private:
  struct Shot {
    std::size_t x, y;
  };
  std::vector<std::uint8_t> alive_;  // alien grid, row-major
  std::size_t grid_rows_, grid_cols_;
  std::ptrdiff_t block_x_ = 0;       // alien block offset
  std::size_t block_y_ = 0;
  int block_dir_ = 1;
  std::size_t player_x_ = kArcadeSize / 2;
  std::vector<Shot> player_shots_;
  std::vector<Shot> alien_shots_;
  std::size_t fire_cooldown_ = 0;
};

/// Qbert proxy: actions {up-left, up-right, down-left, down-right}.
class QbertEnv final : public ArcadeEnv {
 public:
  QbertEnv();

 protected:
  void reset_game() override;
  std::pair<double, bool> tick(std::size_t action) override;
  void render(std::span<float> canvas) const override;

 private:
  bool on_pyramid(std::ptrdiff_t row, std::ptrdiff_t col) const;

  std::size_t rows_ = 7;
  std::vector<std::uint8_t> painted_;  // triangular, row r has r+1 cells
  std::ptrdiff_t player_row_ = 0, player_col_ = 0;
  std::ptrdiff_t ball_row_ = -1, ball_col_ = 0;
  std::size_t ball_delay_ = 0;
};

/// Gravitar proxy: actions {noop, thrust-up, thrust-left, thrust-right}.
class GravitarEnv final : public ArcadeEnv {
 public:
  GravitarEnv();

 protected:
  void reset_game() override;
  std::pair<double, bool> tick(std::size_t action) override;
  void render(std::span<float> canvas) const override;

 private:
  double ship_x_ = 0, ship_y_ = 0;
  double vel_x_ = 0, vel_y_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> depots_;
  std::vector<std::size_t> terrain_height_;  // per column
};

}  // namespace stellaris::envs
