#include "serverless/profiler.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::serverless {
namespace {

TEST(Profiler, NoSamplesNoEstimates) {
  FunctionProfiler prof;
  EXPECT_EQ(prof.samples(FnKind::kLearner), 0u);
  EXPECT_FALSE(prof.expected_duration_s(FnKind::kLearner).has_value());
  EXPECT_EQ(prof.recommended_prewarm(FnKind::kLearner), 0u);
}

TEST(Profiler, MeanDuration) {
  FunctionProfiler prof;
  prof.record(FnKind::kLearner, 0.0, 1.0);
  prof.record(FnKind::kLearner, 1.0, 3.0);
  ASSERT_TRUE(prof.expected_duration_s(FnKind::kLearner).has_value());
  EXPECT_DOUBLE_EQ(*prof.expected_duration_s(FnKind::kLearner), 2.0);
}

TEST(Profiler, KindsAreSeparate) {
  FunctionProfiler prof;
  prof.record(FnKind::kActor, 0.0, 5.0);
  EXPECT_EQ(prof.samples(FnKind::kActor), 1u);
  EXPECT_EQ(prof.samples(FnKind::kLearner), 0u);
}

TEST(Profiler, Percentiles) {
  FunctionProfiler prof;
  for (double d : {1.0, 2.0, 3.0, 4.0, 5.0})
    prof.record(FnKind::kParameter, d, d);
  EXPECT_DOUBLE_EQ(*prof.duration_percentile_s(FnKind::kParameter, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*prof.duration_percentile_s(FnKind::kParameter, 1.0), 5.0);
}

TEST(Profiler, ArrivalRate) {
  FunctionProfiler prof;
  // 5 invocations over 4 seconds → 1 Hz.
  for (int i = 0; i < 5; ++i)
    prof.record(FnKind::kLearner, static_cast<double>(i), 0.5);
  EXPECT_NEAR(prof.arrival_rate_hz(FnKind::kLearner), 1.0, 1e-9);
}

TEST(Profiler, SingleSampleHasNoRate) {
  FunctionProfiler prof;
  prof.record(FnKind::kLearner, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(prof.arrival_rate_hz(FnKind::kLearner), 0.0);
}

TEST(Profiler, SingleSampleRecommendsNoPrewarm) {
  // One observation gives a duration estimate but no rate, so Little's law
  // has nothing to multiply — the recommendation must stay at zero rather
  // than divide by a zero span.
  FunctionProfiler prof;
  prof.record(FnKind::kLearner, 5.0, 2.0);
  EXPECT_TRUE(prof.expected_duration_s(FnKind::kLearner).has_value());
  EXPECT_EQ(prof.recommended_prewarm(FnKind::kLearner), 0u);
}

TEST(Profiler, SimultaneousStartsHaveNoRate) {
  // All invocations at the same instant → zero observation span. The rate
  // must come back 0 (not inf/NaN), and so must the prewarm estimate.
  FunctionProfiler prof;
  for (int i = 0; i < 4; ++i) prof.record(FnKind::kActor, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(prof.arrival_rate_hz(FnKind::kActor), 0.0);
  EXPECT_EQ(prof.recommended_prewarm(FnKind::kActor), 0u);
}

TEST(Profiler, ZeroDurationRunsAreAccepted) {
  // Instant functions (duration 0) are legal; the prewarm recommendation
  // rounds up from a zero mean concurrency to zero containers.
  FunctionProfiler prof;
  for (int i = 0; i < 3; ++i)
    prof.record(FnKind::kParameter, static_cast<double>(i), 0.0);
  EXPECT_DOUBLE_EQ(*prof.expected_duration_s(FnKind::kParameter), 0.0);
  EXPECT_DOUBLE_EQ(prof.arrival_rate_hz(FnKind::kParameter), 1.0);
  EXPECT_EQ(prof.recommended_prewarm(FnKind::kParameter), 0u);
}

TEST(Profiler, PrewarmFollowsLittlesLaw) {
  FunctionProfiler prof(/*headroom=*/1.0);
  // Rate 2 Hz, duration 1.5 s → mean concurrency 3.
  for (int i = 0; i < 9; ++i)
    prof.record(FnKind::kLearner, i * 0.5, 1.5);
  EXPECT_EQ(prof.recommended_prewarm(FnKind::kLearner), 3u);
}

TEST(Profiler, HeadroomPadsTheEstimate) {
  FunctionProfiler tight(1.0), padded(1.5);
  for (int i = 0; i < 9; ++i) {
    tight.record(FnKind::kLearner, i * 0.5, 1.0);
    padded.record(FnKind::kLearner, i * 0.5, 1.0);
  }
  EXPECT_GT(padded.recommended_prewarm(FnKind::kLearner),
            tight.recommended_prewarm(FnKind::kLearner));
}

TEST(Profiler, RejectsBadInputs) {
  EXPECT_THROW(FunctionProfiler(0.5), Error);
  FunctionProfiler prof;
  EXPECT_THROW(prof.record(FnKind::kActor, 0.0, -1.0), Error);
}

}  // namespace
}  // namespace stellaris::serverless
