// Generalized Advantage Estimation (Schulman et al., 2016) — the advantage
// estimator the paper's PPO uses (§VIII-B1).
#pragma once

#include "rl/sample_batch.hpp"

namespace stellaris::rl {

/// Fill `batch.advantages` and `batch.value_targets` from rewards, values,
/// dones, and the bootstrap value, via the standard backward GAE(λ)
/// recursion:
///   δ_t = r_t + γ·V(s_{t+1})·(1−done_t) − V(s_t)
///   A_t = δ_t + γλ·(1−done_t)·A_{t+1}
///   target_t = A_t + V(s_t)
void compute_gae(SampleBatch& batch, double gamma, double lambda);

/// Standardize advantages in place to zero mean / unit variance (the usual
/// PPO stabilization; no-op for batches of size < 2).
void normalize_advantages(SampleBatch& batch);

}  // namespace stellaris::rl
