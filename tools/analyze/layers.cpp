// layer-dag pass: #include edges between layers must follow the declared
// architecture DAG (tools/analyze/layers.toml; DESIGN.md §16).
//
// A "layer" is the first path component of a file under src/ (src/rl/...
// is layer "rl"); tools/report is the offline-analysis layer "report".
// Every include of a project header is an edge and must point at a layer
// the including layer declares as a dependency (or itself). The graph
// itself is validated too: undeclared deps and cycles in layers.toml are
// configuration errors, and a src/ layer missing from the file entirely is
// a finding — new subsystems must take a documented place in the DAG.
#include "analyzer.hpp"

#include <fstream>
#include <sstream>

namespace stellaris::analyze {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

}  // namespace

LayerGraph parse_layers_file(const std::string& path) {
  LayerGraph graph;
  std::ifstream in(path);
  if (!in) {
    graph.errors.push_back("cannot open layers file: " + path);
    return graph;
  }
  std::string raw;
  std::string section;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::string s = trim(raw);
    std::size_t hash = s.find('#');
    if (hash != std::string::npos) s = trim(s.substr(0, hash));
    if (s.empty()) continue;
    if (s.front() == '[' && s.back() == ']') {
      section = trim(s.substr(1, s.size() - 2));
      continue;
    }
    if (section != "layers") continue;
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      graph.errors.push_back(path + ":" + std::to_string(line) +
                             ": expected `layer = [\"dep\", ...]`");
      continue;
    }
    const std::string name = trim(s.substr(0, eq));
    std::string rhs = trim(s.substr(eq + 1));
    if (rhs.size() < 2 || rhs.front() != '[' || rhs.back() != ']') {
      graph.errors.push_back(path + ":" + std::to_string(line) +
                             ": dependency list must be [\"a\", \"b\"]");
      continue;
    }
    if (graph.deps.count(name)) {
      graph.errors.push_back(path + ":" + std::to_string(line) +
                             ": duplicate layer `" + name + "`");
      continue;
    }
    std::vector<std::string> deps;
    rhs = rhs.substr(1, rhs.size() - 2);
    std::istringstream items(rhs);
    std::string item;
    while (std::getline(items, item, ',')) {
      item = trim(item);
      if (item.empty()) continue;
      if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
        graph.errors.push_back(path + ":" + std::to_string(line) +
                               ": dependencies must be quoted strings");
        continue;
      }
      deps.push_back(item.substr(1, item.size() - 2));
    }
    graph.deps[name] = std::move(deps);
  }

  // Validate: every dep names a declared layer; the graph is acyclic.
  for (const auto& [layer, deps] : graph.deps)
    for (const auto& d : deps) {
      if (!graph.deps.count(d))
        graph.errors.push_back("layer `" + layer + "` depends on undeclared `" +
                               d + "`");
      if (d == layer)
        graph.errors.push_back("layer `" + layer + "` depends on itself");
    }
  // Cycle check: iterative DFS with colors over the (small) graph.
  std::map<std::string, int> color;  // 0 new, 1 in-stack, 2 done
  for (const auto& [start, _] : graph.deps) {
    if (color[start]) continue;
    std::vector<std::pair<std::string, std::size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& deps = graph.deps.at(node);
      if (next >= deps.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::string dep = deps[next++];
      if (!graph.deps.count(dep)) continue;
      if (color[dep] == 1) {
        graph.errors.push_back("layer cycle through `" + dep + "` and `" +
                               node + "`");
        color[dep] = 2;
        continue;
      }
      if (color[dep] == 0) {
        color[dep] = 1;
        stack.emplace_back(dep, 0);
      }
    }
  }
  return graph;
}

namespace {

/// Layer of a project file, or "" when the file is outside the layered
/// tree (bench/, tests/, examples/ are application code and exempt).
std::string layer_of(const std::string& rel) {
  if (rel.rfind("src/", 0) == 0) {
    const std::size_t slash = rel.find('/', 4);
    if (slash != std::string::npos) return rel.substr(4, slash - 4);
  }
  if (rel.rfind("tools/report/", 0) == 0) return "report";
  if (rel.rfind("tools/analyze/", 0) == 0) return "analyze";
  return "";
}

/// Layer an include target lands in. Project includes are rooted at src/
/// ("rl/ppo.hpp") or tools/ ("tools/report/ledger_analysis.hpp").
std::string include_layer(const std::string& target) {
  if (target.rfind("tools/report/", 0) == 0) return "report";
  if (target.rfind("tools/analyze/", 0) == 0) return "analyze";
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return "";  // same-directory include
  return target.substr(0, slash);
}

}  // namespace

void check_layers(const Project& project, const LayerGraph& graph,
                  std::vector<Finding>& out) {
  for (const auto& file : project.files) {
    const std::string layer = layer_of(file.rel);
    if (layer.empty()) continue;
    const auto decl = graph.deps.find(layer);
    if (decl == graph.deps.end()) {
      out.push_back({"layer-dag", file.rel, 1, "layer:" + layer,
                     "layer `" + layer +
                         "` is not declared in layers.toml — every src/ "
                         "subsystem must take a documented place in the "
                         "architecture DAG (DESIGN.md §16)"});
      continue;
    }
    std::set<std::string> allowed(decl->second.begin(), decl->second.end());
    allowed.insert(layer);
    for (const auto& [target, line] : file.includes) {
      const std::string target_layer = include_layer(target);
      if (target_layer.empty()) continue;
      // Only police edges between declared layers; quoted includes of
      // non-layer paths (corpus-local headers, generated files) are not
      // architecture edges.
      if (!graph.deps.count(target_layer)) continue;
      if (allowed.count(target_layer)) continue;
      if (file.suppressed("layer-dag", line)) continue;
      out.push_back(
          {"layer-dag", file.rel, line, target,
           "layer `" + layer + "` must not include `" + target +
               "` (layer `" + target_layer +
               "` is not among its declared dependencies in layers.toml)"});
    }
  }
}

}  // namespace stellaris::analyze
