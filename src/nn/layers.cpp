#include "nn/layers.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace stellaris::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : w_({in, out}), b_({out}), dw_({in, out}), db_({out}) {
  // Orthogonal-ish fan-in scaling (He/Xavier hybrid used by most PPO
  // implementations): stddev = sqrt(2 / (in + out)).
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in + out));
  w_ = Tensor::randn({in, out}, rng, stddev);
}

const Tensor& Linear::forward(const Tensor& x) {
  STELLARIS_CHECK_MSG(x.rank() == 2 && x.dim(1) == w_.dim(0),
                      "Linear forward: " << shape_str(x.shape()) << " into "
                                         << shape_str(w_.shape()));
  cached_input_ = x;
  ops::matmul_into(out_, x, w_);
  ops::add_bias_rows(out_, b_);
  return out_;
}

const Tensor& Linear::backward(const Tensor& dy) {
  STELLARIS_CHECK_MSG(!cached_input_.empty(), "backward before forward");
  // Compute the step gradient into its own buffer, then fold it in with +=:
  // accumulating directly inside the GEMM would reorder the additions
  // against the pre-existing dw_ value and change the rounding.
  ops::matmul_tn_into(dw_step_, cached_input_, dy);
  dw_ += dw_step_;
  ops::sum_rows_into(db_step_, dy);
  db_ += db_step_;
  ops::matmul_nt_into(dx_, dy, w_);
  return dx_;
}

Conv2d::Conv2d(ops::Conv2dSpec spec, Rng& rng) : spec_(spec) {
  const std::size_t patch = spec_.in_channels * spec_.kernel * spec_.kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(patch));
  w_ = Tensor::randn({patch, spec_.out_channels}, rng, stddev);
  b_ = Tensor({spec_.out_channels});
  dw_ = Tensor({patch, spec_.out_channels});
  db_ = Tensor({spec_.out_channels});
}

std::size_t Conv2d::out_features() const {
  return spec_.out_channels * spec_.out_h() * spec_.out_w();
}

const Tensor& Conv2d::forward(const Tensor& x) {
  cached_batch_ = x.dim(0);
  ops::im2col_into(cached_cols_, x, spec_);
  // (N·oh·ow, patch) x (patch, oc) -> (N·oh·ow, oc)
  ops::matmul_into(y_, cached_cols_, w_);
  ops::add_bias_rows(y_, b_);
  // Reorder to channel-major rows (N, oc·oh·ow) so downstream layers see the
  // conventional CHW flattening.
  const std::size_t oh = spec_.out_h(), ow = spec_.out_w(),
                    oc = spec_.out_channels;
  out_.ensure_shape({cached_batch_, oc * oh * ow});
  const float* py = y_.data().data();
  float* po = out_.data().data();
  for (std::size_t n = 0; n < cached_batch_; ++n)
    for (std::size_t p = 0; p < oh * ow; ++p)
      for (std::size_t c = 0; c < oc; ++c)
        po[n * oc * oh * ow + c * oh * ow + p] =
            py[(n * oh * ow + p) * oc + c];
  return out_;
}

const Tensor& Conv2d::backward(const Tensor& dy) {
  STELLARIS_CHECK_MSG(!cached_cols_.empty(), "backward before forward");
  const std::size_t oh = spec_.out_h(), ow = spec_.out_w(),
                    oc = spec_.out_channels;
  STELLARIS_CHECK_MSG(dy.rank() == 2 && dy.dim(0) == cached_batch_ &&
                          dy.dim(1) == oc * oh * ow,
                      "Conv2d backward shape " << shape_str(dy.shape()));
  // Undo the channel-major reorder.
  dys_.ensure_shape({cached_batch_ * oh * ow, oc});
  const float* pd = dy.data().data();
  float* ps = dys_.data().data();
  for (std::size_t n = 0; n < cached_batch_; ++n)
    for (std::size_t p = 0; p < oh * ow; ++p)
      for (std::size_t c = 0; c < oc; ++c)
        ps[(n * oh * ow + p) * oc + c] =
            pd[n * oc * oh * ow + c * oh * ow + p];

  ops::matmul_tn_into(dw_step_, cached_cols_, dys_);
  dw_ += dw_step_;
  ops::sum_rows_into(db_step_, dys_);
  db_ += db_step_;
  ops::matmul_nt_into(dcols_, dys_, w_);
  ops::col2im_into(dx_, dcols_, spec_, cached_batch_);
  return dx_;
}

const Tensor& Tanh::forward(const Tensor& x) {
  ops::tanh_forward_into(cached_output_, x);
  return cached_output_;
}

const Tensor& Tanh::backward(const Tensor& dy) {
  STELLARIS_CHECK_MSG(!cached_output_.empty(), "backward before forward");
  ops::tanh_backward_into(dx_, cached_output_, dy);
  return dx_;
}

const Tensor& Relu::forward(const Tensor& x) {
  cached_input_ = x;
  ops::relu_forward_into(out_, x);
  return out_;
}

const Tensor& Relu::backward(const Tensor& dy) {
  STELLARIS_CHECK_MSG(!cached_input_.empty(), "backward before forward");
  ops::relu_backward_into(dx_, cached_input_, dy);
  return dx_;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

const Tensor& Sequential::forward(const Tensor& x) {
  if (layers_.empty()) {
    passthrough_ = x;
    return passthrough_;
  }
  const Tensor* cur = &x;
  for (auto& l : layers_) cur = &l->forward(*cur);
  return *cur;
}

const Tensor& Sequential::backward(const Tensor& dy) {
  if (layers_.empty()) {
    passthrough_ = dy;
    return passthrough_;
  }
  const Tensor* cur = &dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = &(*it)->backward(*cur);
  return *cur;
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* p : l->parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* g : l->gradients()) out.push_back(g);
  return out;
}

void zero_gradients(Layer& layer) {
  for (Tensor* g : layer.gradients()) g->zero();
}

std::size_t parameter_count(Layer& layer) {
  std::size_t n = 0;
  for (Tensor* p : layer.parameters()) n += p->numel();
  return n;
}

}  // namespace stellaris::nn
