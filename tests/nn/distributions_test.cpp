#include "nn/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace stellaris::nn {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

TEST(Gaussian, LogProbMatchesClosedForm) {
  Tensor mean({1, 2}, {0.0f, 1.0f});
  Tensor log_std = Tensor::of({0.0f, std::log(2.0f)});
  Tensor actions({1, 2}, {1.0f, 1.0f});
  Tensor lp = gaussian_log_prob(mean, log_std, actions);
  // dim0: z=1, logp = -0.5 - 0 - 0.5·log2π; dim1: z=0, logp = -log2 - 0.5·log2π
  const double expected = (-0.5 - 0.5 * kLog2Pi) +
                          (-std::log(2.0) - 0.5 * kLog2Pi);
  EXPECT_NEAR(lp[0], expected, 1e-5);
}

TEST(Gaussian, SampleMomentsMatch) {
  Rng rng(1);
  Tensor mean = Tensor::full({2000, 1}, 3.0f);
  Tensor log_std = Tensor::of({std::log(0.5f)});
  Tensor s = gaussian_sample(mean, log_std, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : s.vec()) {
    sum += v;
    sq += (v - 3.0) * (v - 3.0);
  }
  EXPECT_NEAR(sum / 2000, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / 2000), 0.5, 0.03);
}

TEST(Gaussian, LogProbBackwardMatchesFiniteDifference) {
  Rng rng(2);
  Tensor mean = Tensor::randn({4, 3}, rng);
  Tensor log_std = Tensor::of({-0.3f, 0.1f, 0.4f});
  Tensor actions = Tensor::randn({4, 3}, rng);
  Tensor coeff = Tensor::randn({4}, rng);

  auto weighted_logp = [&](const Tensor& m, const Tensor& ls) {
    Tensor lp = gaussian_log_prob(m, ls, actions);
    double s = 0.0;
    for (std::size_t i = 0; i < 4; ++i) s += coeff[i] * lp[i];
    return s;
  };

  auto g = gaussian_log_prob_backward(mean, log_std, actions, coeff);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < mean.numel(); ++i) {
    Tensor mp = mean, mm = mean;
    mp[i] += eps;
    mm[i] -= eps;
    const double fd =
        (weighted_logp(mp, log_std) - weighted_logp(mm, log_std)) / (2 * eps);
    EXPECT_NEAR(g.dmean[i], fd, 1e-2);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    Tensor lp = log_std, lm = log_std;
    lp[j] += eps;
    lm[j] -= eps;
    const double fd =
        (weighted_logp(mean, lp) - weighted_logp(mean, lm)) / (2 * eps);
    EXPECT_NEAR(g.dlog_std[j], fd, 1e-2);
  }
}

TEST(Gaussian, EntropyClosedForm) {
  Tensor log_std = Tensor::of({0.0f, 1.0f});
  // H = Σ (logσ + ½log(2πe))
  const double expected = (0.0 + 0.5 * (kLog2Pi + 1.0)) +
                          (1.0 + 0.5 * (kLog2Pi + 1.0));
  EXPECT_NEAR(gaussian_entropy(log_std), expected, 1e-9);
}

TEST(Gaussian, KlZeroForIdenticalPolicies) {
  Rng rng(3);
  Tensor mean = Tensor::randn({5, 2}, rng);
  Tensor log_std = Tensor::of({0.2f, -0.3f});
  Tensor kl = gaussian_kl(mean, log_std, mean, log_std);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(kl[i], 0.0f, 1e-6f);
}

TEST(Gaussian, KlIsNonnegativeAndGrowsWithDistance) {
  Tensor m1({1, 1}, {0.0f});
  Tensor m2({1, 1}, {1.0f});
  Tensor m3({1, 1}, {2.0f});
  Tensor ls = Tensor::of({0.0f});
  const float kl_near = gaussian_kl(m1, ls, m2, ls)[0];
  const float kl_far = gaussian_kl(m1, ls, m3, ls)[0];
  EXPECT_GT(kl_near, 0.0f);
  EXPECT_GT(kl_far, kl_near);
  // KL(N(0,1) ‖ N(1,1)) = 0.5.
  EXPECT_NEAR(kl_near, 0.5f, 1e-6f);
}

TEST(Categorical, LogProbIsLogSoftmax) {
  Tensor logits({2, 3}, {1, 2, 3, 0, 0, 0});
  Tensor lp = categorical_log_prob(logits, {2, 0});
  const double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(lp[0], std::log(std::exp(3.0) / denom), 1e-5);
  EXPECT_NEAR(lp[1], std::log(1.0 / 3.0), 1e-5);
}

TEST(Categorical, SampleFrequenciesMatchSoftmax) {
  Rng rng(4);
  Tensor logits({1, 3}, {0.0f, 1.0f, 2.0f});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    auto a = categorical_sample(logits, rng);
    ++counts[a[0]];
  }
  const double z = std::exp(0.0) + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(counts[0] / 30000.0, std::exp(0.0) / z, 0.01);
  EXPECT_NEAR(counts[2] / 30000.0, std::exp(2.0) / z, 0.01);
}

TEST(Categorical, LogProbBackwardMatchesFiniteDifference) {
  Rng rng(5);
  Tensor logits = Tensor::randn({3, 4}, rng);
  std::vector<std::size_t> actions = {1, 3, 0};
  Tensor coeff = Tensor::of({0.5f, -1.0f, 2.0f});

  auto weighted = [&](const Tensor& l) {
    Tensor lp = categorical_log_prob(l, actions);
    double s = 0.0;
    for (std::size_t i = 0; i < 3; ++i) s += coeff[i] * lp[i];
    return s;
  };

  Tensor g = categorical_log_prob_backward(logits, actions, coeff);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    EXPECT_NEAR(g[i], (weighted(lp) - weighted(lm)) / (2 * eps), 1e-2);
  }
}

TEST(Categorical, EntropyUniformIsLogN) {
  Tensor logits({1, 4});
  Tensor h = categorical_entropy(logits);
  EXPECT_NEAR(h[0], std::log(4.0f), 1e-5f);
}

TEST(Categorical, EntropyBackwardMatchesFiniteDifference) {
  Rng rng(6);
  Tensor logits = Tensor::randn({2, 3}, rng);
  Tensor coeff = Tensor::of({1.0f, -0.5f});
  auto weighted = [&](const Tensor& l) {
    Tensor h = categorical_entropy(l);
    return coeff[0] * h[0] + coeff[1] * h[1];
  };
  Tensor g = categorical_entropy_backward(logits, coeff);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    EXPECT_NEAR(g[i], (weighted(lp) - weighted(lm)) / (2 * eps), 1e-2);
  }
}

TEST(Categorical, KlIdentities) {
  Rng rng(7);
  Tensor a = Tensor::randn({4, 5}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  Tensor self = categorical_kl(a, a);
  Tensor cross = categorical_kl(a, b);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(self[i], 0.0f, 1e-6f);
    EXPECT_GE(cross[i], 0.0f);
  }
}

// -- _into forms --------------------------------------------------------------
// The buffer-reusing forms are the rollout hot path (DESIGN.md §17); they
// must be bit-identical to the allocating forms — same draws, same
// arithmetic — and reuse capacity across calls.

TEST(GaussianInto, SampleAndLogProbBitIdenticalToAllocatingForms) {
  Rng r1(11), r2(11);
  Tensor mean = Tensor::randn({8, 3}, r1);
  Tensor mean2 = Tensor::randn({8, 3}, r2);  // keep streams aligned
  ASSERT_EQ(mean.vec(), mean2.vec());
  Tensor log_std = Tensor::of({-0.2f, 0.0f, 0.3f});
  Tensor a = gaussian_sample(mean, log_std, r1);
  Tensor b;
  gaussian_sample_into(b, mean, log_std, r2);
  ASSERT_EQ(a.vec(), b.vec());
  Tensor lp_a = gaussian_log_prob(mean, log_std, a);
  Tensor lp_b;
  gaussian_log_prob_into(lp_b, mean, log_std, b);
  EXPECT_EQ(lp_a.vec(), lp_b.vec());
}

TEST(GaussianInto, ReusesCapacityAcrossCalls) {
  Rng rng(12);
  Tensor mean = Tensor::randn({4, 2}, rng);
  Tensor log_std = Tensor::of({0.0f, 0.1f});
  Tensor out, lp;
  gaussian_sample_into(out, mean, log_std, rng);
  gaussian_log_prob_into(lp, mean, log_std, out);
  const std::uint64_t before = tensor_buffer_allocs();
  for (int i = 0; i < 20; ++i) {
    gaussian_sample_into(out, mean, log_std, rng);
    gaussian_log_prob_into(lp, mean, log_std, out);
  }
  EXPECT_EQ(tensor_buffer_allocs(), before);
}

TEST(CategoricalInto, SampleAndLogProbBitIdenticalToAllocatingForms) {
  Rng r1(13), r2(13);
  Tensor logits = Tensor::randn({6, 4}, r1);
  Tensor logits2 = Tensor::randn({6, 4}, r2);
  ASSERT_EQ(logits.vec(), logits2.vec());
  auto a = categorical_sample(logits, r1);
  std::vector<std::size_t> b;
  Tensor probs_scratch;
  categorical_sample_into(b, probs_scratch, logits, r2);
  ASSERT_EQ(a, b);
  Tensor lp_a = categorical_log_prob(logits, a);
  Tensor lp_b, lsm_scratch;
  categorical_log_prob_into(lp_b, lsm_scratch, logits, b);
  EXPECT_EQ(lp_a.vec(), lp_b.vec());
}

// Property: KL between a logit set and a shifted copy is invariant to the
// shift (softmax shift invariance).
class CategoricalShift : public ::testing::TestWithParam<float> {};

TEST_P(CategoricalShift, KlInvariantToLogitShift) {
  Rng rng(8);
  Tensor a = Tensor::randn({2, 4}, rng);
  Tensor b = a;
  for (auto& v : b.vec()) v += GetParam();
  Tensor kl = categorical_kl(a, b);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(kl[i], 0.0f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Shifts, CategoricalShift,
                         ::testing::Values(-3.0f, -0.5f, 0.0f, 2.0f, 10.0f));

}  // namespace
}  // namespace stellaris::nn
