#include "util/logging.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

namespace stellaris {

std::optional<LogLevel> try_parse_log_level(std::string_view s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2")
    return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel parse_log_level(std::string_view s, LogLevel fallback) {
  return try_parse_log_level(s).value_or(fallback);
}

std::string log_timestamp() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t t = system_clock::to_time_t(now);
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buf[40];
  const std::size_t len = std::strftime(buf, sizeof buf, "%FT%T", &tm);
  std::snprintf(buf + len, sizeof buf - len, ".%03dZ",
                static_cast<int>(ms.count()));
  return buf;
}

Logger::Logger() {
  if (const char* env = std::getenv("STELLARIS_LOG_LEVEL")) {
    if (const auto parsed = try_parse_log_level(env)) {
      level_ = *parsed;
    } else {
      // The logger itself is mid-construction, so warn on the sink
      // directly rather than through a LOG_WARN (which would re-enter
      // instance()). An unknown level is rejected loudly instead of
      // silently defaulting — a typo like "info " or "verbose" would
      // otherwise change logging behaviour with no breadcrumb.
      std::cerr << "[" << log_timestamp() << "] [WARN] STELLARIS_LOG_LEVEL=\""
                << env
                << "\" is not a recognized level (debug|info|warn|error|off "
                   "or 0-4); keeping default \"info\"\n";
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  MutexLock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  MutexLock lock(mu_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  const std::string ts = log_timestamp();  // format outside the lock
  MutexLock lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::cerr << "[" << ts << "] [" << kNames[idx] << "] " << msg << '\n';
}

}  // namespace stellaris
