file(REMOVE_RECURSE
  "libstellaris_envs.a"
)
