file(REMOVE_RECURSE
  "CMakeFiles/stellaris_envs.dir/arcade.cpp.o"
  "CMakeFiles/stellaris_envs.dir/arcade.cpp.o.d"
  "CMakeFiles/stellaris_envs.dir/locomotion.cpp.o"
  "CMakeFiles/stellaris_envs.dir/locomotion.cpp.o.d"
  "CMakeFiles/stellaris_envs.dir/registry.cpp.o"
  "CMakeFiles/stellaris_envs.dir/registry.cpp.o.d"
  "CMakeFiles/stellaris_envs.dir/vec_env.cpp.o"
  "CMakeFiles/stellaris_envs.dir/vec_env.cpp.o.d"
  "libstellaris_envs.a"
  "libstellaris_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
