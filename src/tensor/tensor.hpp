// Dense float32 tensor with value semantics.
//
// This is the numeric substrate beneath the neural-network layers: a shape
// plus contiguous row-major storage. It deliberately has no strides, views,
// or broadcasting zoo — the NN layers in src/nn/ only need contiguous 1–4D
// tensors, and keeping storage contiguous makes the serialization and
// gradient-flattening paths trivial and fast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace stellaris {

class Rng;

/// Shape of a tensor: up to 4 dimensions in practice (N, C, H, W).
using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (0 for the empty shape — this
/// library has no rank-0 scalars; the empty shape denotes the empty tensor).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[a, b, c]".
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (numel 0, rank 0). Distinct from a scalar.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with the given shape and explicit data (size must match).
  Tensor(Shape shape, std::vector<float> data);

  // Copies are counted in the "tensor.buffer_allocs" metric when they have
  // to (re)allocate the backing buffer; copy-assignment into a tensor whose
  // capacity already fits is allocation-free, which is what the buffer-reuse
  // paths in nn/ rely on.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  // -- factories ----------------------------------------------------------
  /// 1-D tensor from explicit values — handy in tests. A named factory (not
  /// an initializer_list constructor) so `Tensor({m, n})` always means the
  /// Shape constructor.
  static Tensor of(std::initializer_list<float> values);
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// Uniform in [lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

  // -- introspection -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t i) const;
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // -- element access (row-major) ------------------------------------------
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at3(std::size_t i, std::size_t j, std::size_t k);
  float at3(std::size_t i, std::size_t j, std::size_t k) const;

  /// Reinterpret to a new shape with identical numel.
  Tensor reshaped(Shape shape) const;

  /// In-place reinterpretation to a new shape with identical numel — the
  /// allocation-free sibling of reshaped().
  Tensor& reshape(Shape shape);

  /// Adopt `shape`, reusing the existing buffer when its capacity fits
  /// (contents are then unspecified, not zeroed). The workhorse of the
  /// *_into kernels: after warm-up, repeated calls with stable shapes never
  /// allocate.
  Tensor& ensure_shape(const Shape& shape);

  /// Row `i` of a 2-D tensor as a span (no copy).
  std::span<const float> row(std::size_t i) const;
  std::span<float> row(std::size_t i);

  // -- in-place arithmetic ---------------------------------------------------
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);
  Tensor& add_scaled(const Tensor& other, float s);  ///< this += s * other
  Tensor& fill(float v);
  Tensor& zero() { return fill(0.0f); }

  // -- reductions ------------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// L2 norm of the flattened tensor.
  float norm() const;
  /// True if every element is finite.
  bool all_finite() const;

 private:
  static void note_alloc();

  Shape shape_;
  std::vector<float> data_;
};

/// Process-wide count of tensor buffer allocations (also exported as the
/// "tensor.buffer_allocs" counter in obs::MetricsRegistry). Buffer-reuse
/// tests assert this stays flat across warmed-up hot-path steps.
std::uint64_t tensor_buffer_allocs();

// Out-of-place arithmetic (shape-checked).
Tensor operator+(Tensor a, const Tensor& b);
Tensor operator-(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, float s);
Tensor operator*(float s, Tensor a);

}  // namespace stellaris
