#include "envs/arcade.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellaris::envs {
namespace {

TEST(Arcade, SpecsAreImageDiscrete) {
  SpaceInvadersEnv si;
  QbertEnv qb;
  GravitarEnv gr;
  for (const Env* e : {static_cast<const Env*>(&si),
                       static_cast<const Env*>(&qb),
                       static_cast<const Env*>(&gr)}) {
    EXPECT_TRUE(e->spec().obs.image);
    EXPECT_EQ(e->spec().obs.flat_dim,
              kArcadeChannels * kArcadeSize * kArcadeSize);
    EXPECT_EQ(e->spec().action_kind, nn::ActionKind::kDiscrete);
    EXPECT_EQ(e->spec().act_dim, 4u);
  }
}

TEST(Arcade, ObservationValuesInUnitRange) {
  SpaceInvadersEnv env;
  auto obs = env.reset(1);
  for (int i = 0; i < 40; ++i) {
    for (float v : obs) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
    auto r = env.step_discrete(i % 4);
    obs = std::move(r.obs);
    if (r.done) break;
  }
}

TEST(Arcade, ResetDeterministicPerSeed) {
  QbertEnv a, b;
  EXPECT_EQ(a.reset(9), b.reset(9));
}

TEST(Arcade, OutOfRangeActionThrows) {
  GravitarEnv env;
  env.reset(1);
  EXPECT_THROW(env.step_discrete(7), Error);
}

TEST(Arcade, ContinuousStepThrows) {
  SpaceInvadersEnv env;
  env.reset(1);
  EXPECT_THROW(env.step(std::vector<float>{0.f}), Error);
}

TEST(Arcade, EpisodesEndWithinCap) {
  SpaceInvadersEnv env;
  env.reset(3);
  std::size_t steps = 0;
  for (; steps <= env.spec().max_steps + 1; ++steps)
    if (env.step_discrete(0).done) break;
  EXPECT_LE(steps, env.spec().max_steps);
}

TEST(SpaceInvaders, ShootingCanScore) {
  // A fire-spamming policy should eventually hit an alien (+10) on some
  // seed; sum positive rewards over a few episodes.
  SpaceInvadersEnv env;
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    env.reset(seed);
    double total = 0.0;
    for (;;) {
      auto r = env.step_discrete(3);  // fire
      total += r.reward;
      if (r.done) break;
    }
    best = std::max(best, total);
  }
  EXPECT_GT(best, 0.0);
}

TEST(Qbert, PaintingIsRewarded) {
  QbertEnv env;
  env.reset(2);
  // First legal downward hop paints a fresh cell: +25 − step cost.
  auto r = env.step_discrete(2);  // down-left
  EXPECT_GT(r.reward, 20.0);
}

TEST(Qbert, HoppingOffPyramidEnds) {
  QbertEnv env;
  env.reset(2);
  auto r = env.step_discrete(0);  // up-left from the apex: off the board
  EXPECT_TRUE(r.done);
  EXPECT_LT(r.reward, 0.0);
}

TEST(Gravitar, FallingWithoutThrustCrashes) {
  GravitarEnv env;
  env.reset(4);
  StepResult last;
  for (int i = 0; i < 200; ++i) {
    last = env.step_discrete(0);  // no thrust: gravity wins
    if (last.done) break;
  }
  EXPECT_TRUE(last.done);
  EXPECT_LT(last.reward, 0.0);
}

TEST(Gravitar, HoverPolicyExtendsSurvival) {
  // Free-fall crashes quickly; a duty-cycled thrust (1-in-3 ticks, roughly
  // cancelling gravity) hovers much longer. Constant thrust would instead
  // fly into the lethal ceiling, so the comparison uses the hover policy.
  auto survival = [](bool hover) {
    GravitarEnv env;
    env.reset(6);
    int steps = 0;
    for (; steps < 200; ++steps) {
      const std::size_t action = hover && steps % 3 == 0 ? 1 : 0;
      if (env.step_discrete(action).done) break;
    }
    return steps;
  };
  EXPECT_GT(survival(true), survival(false));
}

TEST(Arcade, PlayerPlaneShowsExactlyOnePixelForSpaceInvaders) {
  SpaceInvadersEnv env;
  auto obs = env.reset(5);
  double plane0_sum = 0.0;
  for (std::size_t i = 0; i < kArcadeSize * kArcadeSize; ++i)
    plane0_sum += obs[i];
  EXPECT_DOUBLE_EQ(plane0_sum, 1.0);
}

TEST(Arcade, SameSeedSameTrajectory) {
  GravitarEnv a, b;
  a.reset(7);
  b.reset(7);
  for (int i = 0; i < 30; ++i) {
    auto ra = a.step_discrete(i % 4);
    auto rb = b.step_discrete(i % 4);
    EXPECT_EQ(ra.obs, rb.obs);
    EXPECT_EQ(ra.reward, rb.reward);
    EXPECT_EQ(ra.done, rb.done);
    if (ra.done) break;
  }
}

}  // namespace
}  // namespace stellaris::envs
