#include "serverless/profiler.hpp"

#include <cmath>
#include <string>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace stellaris::serverless {

FunctionProfiler::FunctionProfiler(double headroom) : headroom_(headroom) {
  STELLARIS_CHECK_MSG(headroom >= 1.0, "headroom must be >= 1");
  auto& m = obs::metrics();
  for (FnKind kind : {FnKind::kLearner, FnKind::kParameter, FnKind::kActor}) {
    auto& b = bucket(kind);
    const std::string prefix = std::string("profiler.") + fn_kind_name(kind);
    b.m_samples = &m.counter(prefix + ".samples");
    b.m_mean_duration_s = &m.gauge(prefix + ".mean_duration_s");
    b.m_arrival_rate_hz = &m.gauge(prefix + ".arrival_rate_hz");
  }
}

FunctionProfiler::PerKind& FunctionProfiler::bucket(FnKind kind) {
  switch (kind) {
    case FnKind::kLearner: return learner_;
    case FnKind::kParameter: return parameter_;
    case FnKind::kActor: return actor_;
    case FnKind::kServe:
      break;  // never enters the training platform (platform.cpp checks)
  }
  throw Error("bad FnKind");
}

const FunctionProfiler::PerKind& FunctionProfiler::bucket(FnKind kind) const {
  return const_cast<FunctionProfiler*>(this)->bucket(kind);
}

void FunctionProfiler::record(FnKind kind, double start_time_s,
                              double duration_s) {
  STELLARIS_CHECK_MSG(duration_s >= 0.0, "negative duration");
  auto& b = bucket(kind);
  if (b.count == 0) b.first_start = start_time_s;
  b.last_start = std::max(b.last_start, start_time_s);
  b.durations.add(duration_s);
  b.duration_samples.push_back(duration_s);
  ++b.count;
  b.m_samples->add();
  b.m_mean_duration_s->set(b.durations.mean());
  b.m_arrival_rate_hz->set(arrival_rate_hz(kind));
}

std::size_t FunctionProfiler::samples(FnKind kind) const {
  return bucket(kind).count;
}

std::optional<double> FunctionProfiler::expected_duration_s(
    FnKind kind) const {
  const auto& b = bucket(kind);
  if (b.count == 0) return std::nullopt;
  return b.durations.mean();
}

std::optional<double> FunctionProfiler::duration_percentile_s(
    FnKind kind, double q) const {
  const auto& b = bucket(kind);
  if (b.count == 0) return std::nullopt;
  return percentile(b.duration_samples, q);
}

double FunctionProfiler::arrival_rate_hz(FnKind kind) const {
  const auto& b = bucket(kind);
  if (b.count < 2) return 0.0;
  const double span = b.last_start - b.first_start;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(b.count - 1) / span;
}

std::size_t FunctionProfiler::recommended_prewarm(FnKind kind) const {
  const auto duration = expected_duration_s(kind);
  const double rate = arrival_rate_hz(kind);
  if (!duration || rate <= 0.0) return 0;
  // Little's law: mean concurrency = λ · W, padded for bursts.
  return static_cast<std::size_t>(
      std::ceil(rate * *duration * headroom_));
}

}  // namespace stellaris::serverless
