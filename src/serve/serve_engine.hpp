// ServeEngine — the multi-tenant policy-serving data plane (DESIGN.md §15).
//
// One router per run, on the same serverless substrate as training: client
// requests arrive from seeded traffic generators, pass admission control,
// get a policy version from the tenant's rollout controller, queue into the
// tenant's per-version batch lanes, and dispatch as ONE batched forward per
// serving container — acquired from a ContainerPool, billed through the
// CostMeter, and subject to the fault plane. Batch bodies follow the
// capture / body / merge discipline of DESIGN.md §14:
//
//   capture   (engine thread) the decoded PolicyRef, the flattened
//             observation matrix, and a private result box;
//   body      lease a scratch model, set_flat_params, one blocked-GEMM
//             policy + value forward over the whole batch;
//   merge     (engine thread, at the batch's virtual completion) join the
//             job, settle latencies / costs / rollout windows / ledger.
//
// All randomness (arrivals, observations, canary assignment, latency
// jitter, faults) draws from seeded streams on the engine thread in event
// order, so a (config, seed) pair replays bit-identically under the virtual
// and concurrent drivers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/distributed_cache.hpp"
#include "fault/fault_injector.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/autoscaler.hpp"
#include "serve/policy_store.hpp"
#include "serve/rollout.hpp"
#include "serve/serve_config.hpp"
#include "serve/serve_context.hpp"
#include "serve/traffic_gen.hpp"
#include "serverless/container_pool.hpp"
#include "serverless/cost_meter.hpp"
#include "sim/driver.hpp"
#include "sim/engine.hpp"

namespace stellaris::serve {

/// Deterministic initial weights for a tenant's served policy: the flat
/// parameter vector of a freshly seeded model with the tenant's geometry.
/// Benches and tests publish these before run().
std::vector<float> make_policy_params(const TenantConfig& tenant,
                                      std::uint64_t seed);

struct TenantResult {
  std::string name;
  std::uint64_t issued = 0;     ///< arrivals generated
  std::uint64_t admitted = 0;   ///< past admission control
  std::uint64_t rejected = 0;   ///< shed at the door
  std::uint64_t completed = 0;  ///< answered successfully
  std::uint64_t failed = 0;     ///< killed by an injected fault
  std::uint64_t batches = 0;    ///< dispatched batch invocations
  double mean_batch = 0.0;      ///< admitted-and-settled requests per batch
  double p50_s = 0.0;           ///< nearest-rank request latency quantiles
  double p99_s = 0.0;
  double p999_s = 0.0;
  double latency_sum_s = 0.0;
  /// Order-independent sum over every served request's predicted value —
  /// the cross-driver bit-identity probe.
  double value_checksum = 0.0;
  std::uint64_t final_stable_version = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
};

struct ServeResult {
  std::vector<TenantResult> tenants;
  double duration_s = 0.0;  ///< virtual makespan (arrivals + drain)
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  double requests_per_hour = 0.0;  ///< completed per simulated hour
  double cost_usd = 0.0;
  double wasted_cost_usd = 0.0;    ///< billed seconds of crashed batches
  double cost_per_million = 0.0;   ///< $ per 1e6 completed inferences
  std::size_t peak_workers = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t policy_decodes = 0;
  std::uint64_t policy_reuses = 0;
  std::uint64_t crashes_injected = 0;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig cfg);

  /// Publish `params` as `version` of tenant `t`'s policy (cache write
  /// through the normal wire format). `cost_mult` scales that version's
  /// serving compute — the heavier-canary knob of the rollback scenarios.
  void publish_policy(std::size_t t, const std::vector<float>& params,
                      std::uint64_t version, double cost_mult = 1.0);

  /// At virtual time `at_s`, start routing `fraction` of tenant `t`'s
  /// arrivals to `version` (must already be published by then).
  void schedule_canary(std::size_t t, std::uint64_t version, double fraction,
                       double at_s);

  /// Drive the whole scenario: traffic in, batches out, until arrivals stop
  /// and in-flight work drains. Call once.
  ServeResult run();

  // -- test / bench access --------------------------------------------------
  sim::Engine& engine() { return engine_; }
  cache::DistributedCache& cache() { return cache_; }
  PolicyStore& store() { return store_; }
  const serverless::ContainerPool& pool() const { return pool_; }
  const serverless::CostMeter& costs() const { return costs_; }
  const fault::FaultInjector& injector() const { return injector_; }
  const Autoscaler& autoscaler() const { return autoscaler_; }
  const AdmissionController& admission(std::size_t t) const {
    return tenants_[t]->admission;
  }
  const RolloutController& rollout(std::size_t t) const {
    return tenants_[t]->rollout;
  }

 private:
  /// Everything the merge event needs to settle one dispatched batch.
  struct BatchResult;   // body output box (values + checksum)
  struct InflightBatch;
  struct Timer {
    sim::Engine::CancelHandle handle;
    double head_arrival = -1.0;
  };

  struct TenantState {
    TenantState(const TenantConfig& cfg, sim::Engine& engine,
                std::uint64_t seed);

    TenantConfig cfg;
    Batcher batcher;
    AdmissionController admission;
    RolloutController rollout;
    TrafficGen traffic;
    ServeContextPool contexts;
    Rng obs_rng;     ///< observation synthesis stream
    Rng assign_rng;  ///< canary bernoulli stream
    std::map<std::uint64_t, Timer> cutoffs;  ///< per-lane cutoff timers
    sim::Engine::CancelHandle rollout_timer;
    // Settled-request accounting.
    std::vector<double> latencies;
    double latency_sum_s = 0.0;
    double value_checksum = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
  };

  void on_arrival(std::size_t t, std::uint64_t client);
  void pump();
  void dispatch_batch(std::size_t t, std::uint64_t version);
  void settle_batch(const std::shared_ptr<InflightBatch>& b);
  void arm_lane_cutoff(std::size_t t, std::uint64_t version);
  void cancel_lane_cutoff(TenantState& ts, std::uint64_t version);
  void arm_autoscale_timer();
  void arm_rollout_timer(std::size_t t);
  void evaluate_rollout(std::size_t t);
  std::size_t total_queued() const;
  void maybe_finish();

  ServeConfig cfg_;
  sim::Engine engine_;
  std::unique_ptr<sim::Driver> driver_;
  cache::DistributedCache cache_;
  serverless::ContainerPool pool_;
  serverless::CostMeter costs_;
  fault::FaultInjector injector_;
  PolicyStore store_;
  Autoscaler autoscaler_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  Rng jitter_rng_;
  double unit_price_ = 0.0;
  std::uint64_t next_lid_ = 1;   ///< batch invocation ledger ids
  std::uint64_t next_req_ = 1;   ///< request ids
  std::size_t busy_workers_ = 0;
  sim::Engine::CancelHandle autoscale_timer_;
  bool finished_ = false;
  bool ran_ = false;
};

}  // namespace stellaris::serve
