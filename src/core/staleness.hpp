// Staleness-aware gradient aggregation (§V-C).
//
// The parameter function holds incoming gradients in a queue and delays
// aggregation until the queue's *average* staleness falls below a dynamic
// threshold:
//
//   β_k = δ_max · d^k,  d ∈ (0, 1]                                  (Eq. 3)
//
// where δ_max is the maximum staleness observed in round 0 with the
// threshold disabled. Early rounds admit stale gradients freely (fast,
// asynchronous); later rounds narrow the bound toward synchronous behaviour
// for stable convergence. Per-gradient learning rates are modulated as
//
//   α_c = α₀ / δ_c^{1/v},  δ_c > 0                                  (Eq. 4)
//
// so staler gradients step more cautiously. d = 0 forces synchronization
// each round; d = 1 is pure asynchrony.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/gradient.hpp"

namespace stellaris::core {

/// Eq. 3 schedule.
class StalenessSchedule {
 public:
  /// `threshold_floor`: lower bound on β_k after calibration. A learner in
  /// flight is almost always ≥1 version stale by completion, so decaying
  /// β_k below ~1 starves aggregation and inflates groups without bound;
  /// the floor keeps the late-training regime "nearly synchronous" instead
  /// of deadlocked. d = 0 still forces β = 0 (strict synchronization).
  StalenessSchedule(double decay_d, double delta_max_floor = 1.0,
                    double threshold_floor = 1.0);

  /// Record round-0 staleness observations (threshold disabled).
  void observe_round0(double staleness);
  /// Freeze δ_max after round 0.
  void finalize_round0();
  bool calibrated() const { return calibrated_; }
  double delta_max() const { return delta_max_; }

  /// β_k for round k (k counts aggregations after calibration).
  double threshold(std::size_t round) const;

  /// d = 0 means "force synchronous"; exposed for the sync/async knob.
  double decay() const { return decay_d_; }

 private:
  double decay_d_;
  double delta_max_;
  double threshold_floor_;
  bool calibrated_ = false;
};

/// Eq. 4 modulation: α_c = α₀ / δ^{1/v} (α₀ when δ = 0 or modulation off).
double staleness_lr(double alpha0, double staleness, double smooth_v);

/// Gradient queue with delayed, staleness-gated aggregation decisions.
class GradientQueue {
 public:
  struct Item {
    GradientMsg msg;
    double enqueue_time = 0.0;
  };

  void push(GradientMsg msg, double now);

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Mean staleness of queued gradients against `current_version`.
  double mean_staleness(std::uint64_t current_version) const;
  /// Max staleness of queued gradients.
  double max_staleness(std::uint64_t current_version) const;

  /// Whether aggregation should fire now: queue non-empty and mean
  /// staleness ≤ threshold.
  bool ready(std::uint64_t current_version, double threshold) const;

  /// Drain all queued gradients (the aggregation group).
  std::vector<Item> drain();

 private:
  std::deque<Item> items_;
};

}  // namespace stellaris::core
