#include "core/policy_io.hpp"

#include "util/serialize.hpp"

namespace stellaris::core {

namespace keys {
std::string trajectory(std::uint64_t id) {
  return "traj/" + std::to_string(id);
}
std::string gradient(std::uint64_t id) { return "grad/" + std::to_string(id); }
}  // namespace keys

std::vector<std::uint8_t> encode_policy(const std::vector<float>& params,
                                        std::uint64_t version) {
  ByteWriter w;
  w.put_u64(version);
  w.put_f32_vector(params);
  return w.take();
}

std::pair<std::vector<float>, std::uint64_t> decode_policy(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint64_t version = r.get_u64();
  auto params = r.get_f32_vector();
  return {std::move(params), version};
}

}  // namespace stellaris::core
