// Fig. 7 — Stellaris accelerates IMPACT (off-policy) training: vanilla
// synchronous IMPACT vs IMPACT + Stellaris across the six environments.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  Table summary({"env", "impact_final", "stellaris_final", "reward_gain",
                 "impact_time_s", "stellaris_time_s"});
  for (const auto& env : envs::benchmark_env_names()) {
    const std::size_t rounds = bench::default_rounds(env);
    const std::size_t seeds = bench::default_seeds(env);
    auto cfg = bench::base_config(env, rounds, 1);
    cfg.algorithm = core::Algorithm::kImpact;

    baselines::SyncConfig sync_cfg;
    sync_cfg.base = cfg;
    sync_cfg.variant = baselines::SyncVariant::kVanillaPpo;  // sync IMPACT
    sync_cfg.num_learners = 4;
    auto impact_runs = bench::run_sync_seeds(sync_cfg, seeds);
    const double budget = bench::summarize(impact_runs).time_s;
    auto stl_runs = bench::run_seeds_time_matched(cfg, seeds, budget);

    bench::emit_curve_comparison(
        "Fig. 7 — " + env + ": IMPACT vs IMPACT+Stellaris", "impact",
        impact_runs, "stellaris", stl_runs, "fig07_" + env + ".csv");
    const auto si = bench::summarize(impact_runs);
    const auto ss = bench::summarize(stl_runs);
    summary.row()
        .add(env)
        .add(si.final_reward, 1)
        .add(ss.final_reward, 1)
        .add(si.final_reward != 0.0 ? ss.final_reward / si.final_reward : 0.0,
             2)
        .add(si.time_s, 1)
        .add(ss.time_s, 1);
  }
  summary.emit("Fig. 7 summary — final rewards (paper: Stellaris up to 1.3x)",
               "fig07_summary.csv");
  std::cout << "\nExpected shape: IMPACT trains faster than PPO (off-policy"
               " reuse); Stellaris still improves both reward and time.\n";
  return 0;
}
