
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/actor.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/actor.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/actor.cpp.o.d"
  "/root/repo/src/rl/gae.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/gae.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/gae.cpp.o.d"
  "/root/repo/src/rl/impact.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/impact.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/impact.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/rl/replay_buffer.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/replay_buffer.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/replay_buffer.cpp.o.d"
  "/root/repo/src/rl/sample_batch.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/sample_batch.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/sample_batch.cpp.o.d"
  "/root/repo/src/rl/vtrace.cpp" "src/rl/CMakeFiles/stellaris_rl.dir/vtrace.cpp.o" "gcc" "src/rl/CMakeFiles/stellaris_rl.dir/vtrace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/stellaris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/envs/CMakeFiles/stellaris_envs.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stellaris_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellaris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
