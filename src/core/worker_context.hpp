// Per-execution scratch for invocation bodies (sim/driver.hpp).
//
// Under the virtual driver one body runs at a time, so a single set of
// scratch models would suffice; under the concurrent driver up to
// `--driver-threads` bodies run at once, each needing its own model
// buffers. A WorkerContext bundles everything a body mutates — scratch
// actor-critic models and batch-ingest buffers — and the pool leases one
// per body execution, creating contexts on demand up to the observed
// concurrency. Contexts are scratch by construction: every field is fully
// overwritten (set_flat_params / deserialize_into) before it is read, so
// WHICH context a body draws never affects results — only how many
// allocations warm-up performs (why allocation-count diagnostics are
// excluded from the cross-driver identity check; DESIGN.md §14).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "envs/env.hpp"
#include "nn/actor_critic.hpp"
#include "rl/sample_batch.hpp"
#include "rl/vec_actor.hpp"
#include "util/annotated_mutex.hpp"

namespace stellaris::core {

struct WorkerContext {
  WorkerContext(const envs::EnvSpec& env_spec, const nn::NetworkSpec& net_spec,
                std::uint64_t seed)
      : model(env_spec.obs, env_spec.action_kind, env_spec.act_dim, net_spec,
              seed),
        target(env_spec.obs, env_spec.action_kind, env_spec.act_dim, net_spec,
               seed ^ 0x7a6eULL) {}

  nn::ActorCritic model;   ///< actor policy / learner local model
  nn::ActorCritic target;  ///< IMPACT target network
  std::vector<rl::SampleBatch> parts;  ///< deserialize_into scratch
  rl::SampleBatch concat;              ///< multi-trajectory concat scratch
  rl::VecActorScratch vec_scratch;     ///< VecActor::sample batch scratch
};

class WorkerContextPool {
 public:
  WorkerContextPool(envs::EnvSpec env_spec, nn::NetworkSpec net_spec,
                    std::uint64_t seed)
      : env_spec_(std::move(env_spec)), net_spec_(net_spec), seed_(seed) {}

  /// RAII lease: returns the context to the free list on destruction.
  class Lease {
   public:
    Lease(WorkerContextPool* pool, std::unique_ptr<WorkerContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    ~Lease() {
      if (ctx_) pool_->give_back(std::move(ctx_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    WorkerContext* operator->() { return ctx_.get(); }
    WorkerContext& operator*() { return *ctx_; }

   private:
    WorkerContextPool* pool_;
    std::unique_ptr<WorkerContext> ctx_;
  };

  /// Thread-safe; called at body start on whichever thread runs the body.
  Lease lease() {
    {
      MutexLock lock(mu_);
      if (!free_.empty()) {
        auto ctx = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(ctx));
      }
    }
    // Construct outside the lock (model construction runs init kernels).
    return Lease(this,
                 std::make_unique<WorkerContext>(env_spec_, net_spec_, seed_));
  }

 private:
  void give_back(std::unique_ptr<WorkerContext> ctx) {
    MutexLock lock(mu_);
    free_.push_back(std::move(ctx));
  }

  const envs::EnvSpec env_spec_;
  const nn::NetworkSpec net_spec_;
  const std::uint64_t seed_;
  Mutex mu_{"core/worker-contexts", lock_rank::kWorkerContexts};
  std::vector<std::unique_ptr<WorkerContext>> free_ GUARDED_BY(mu_);
};

}  // namespace stellaris::core
