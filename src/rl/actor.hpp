// The actor: interacts with one environment copy under a policy and emits
// trajectory SampleBatches — Step ① of the paper's workflow (§IV).
//
// An Actor persists its environment across sample() calls, so episodes span
// training rounds instead of being truncated at every round boundary, and
// records completed-episode returns for the reward curves.
#pragma once

#include <cstdint>
#include <memory>

#include "envs/env.hpp"
#include "nn/actor_critic.hpp"
#include "rl/sample_batch.hpp"
#include "util/rng.hpp"

namespace stellaris::rl {

class Actor {
 public:
  Actor(std::unique_ptr<envs::Env> env, std::uint64_t seed);

  /// Roll the environment `horizon` steps under `policy` (stochastic
  /// actions), continuing across episode boundaries. `policy_version` is
  /// recorded for the staleness bookkeeping. Draws from the actor's own
  /// stream (seeded at construction).
  SampleBatch sample(nn::ActorCritic& policy, std::size_t horizon,
                     std::uint64_t policy_version);

  /// As above, but every draw (episode reset seeds, action sampling) comes
  /// from `rng` — the caller's per-invocation keyed stream (sim::
  /// invocation_stream). Used by the execution drivers so a trajectory is a
  /// pure function of (policy, env state, invocation key), independent of
  /// which thread runs the body or how invocations interleave.
  SampleBatch sample(nn::ActorCritic& policy, std::size_t horizon,
                     std::uint64_t policy_version, Rng& rng);

  /// Run one full episode under the policy and return the episode reward
  /// (used by evaluation; stochastic actions as in the paper's episodic
  /// reward curves).
  double evaluate_episode(nn::ActorCritic& policy, std::uint64_t seed);

  const envs::EnvSpec& env_spec() const { return env_->spec(); }

 private:
  /// Act in the current state; fills per-step records.
  void ensure_episode(Rng& rng);

  std::unique_ptr<envs::Env> env_;
  Rng rng_;
  std::vector<float> current_obs_;
  bool episode_active_ = false;
  double episode_return_ = 0.0;
  std::uint64_t episode_counter_ = 0;
  // Persistent per-step scratch (single-row forward input, sampled action,
  // log-prob, categorical softmax): after the first step at a given shape,
  // the hot loop performs zero tensor allocations (pinned by the
  // tensor_buffer_allocs tests).
  Tensor obs_row_;
  Tensor action_scratch_;
  Tensor logp_scratch_;
  Tensor probs_scratch_;
  std::vector<std::size_t> disc_actions_scratch_;
};

/// Average episode reward of `policy` over `episodes` rollouts.
double evaluate_policy(envs::Env& env, nn::ActorCritic& policy,
                       std::size_t episodes, std::uint64_t seed);

}  // namespace stellaris::rl
