#include "rl/impact.hpp"

#include <algorithm>
#include <cmath>

#include "nn/distributions.hpp"
#include "rl/vtrace.hpp"
#include "tensor/scratch.hpp"

namespace stellaris::rl {

LossStats impact_compute_gradients(nn::ActorCritic& model,
                                   nn::ActorCritic& target,
                                   const SampleBatch& batch,
                                   const ImpactConfig& cfg, double ratio_cap) {
  const std::size_t n = batch.size();
  STELLARIS_CHECK_MSG(n > 0, "empty batch");
  const double inv_n = 1.0 / static_cast<double>(n);

  // ---- forward on current and target networks -------------------------------
  // References into the nets' persistent output buffers; `model` and
  // `target` are distinct nets, so all three stay valid through the
  // backward calls below.
  const Tensor& pol_out = model.policy_forward(batch.obs);
  const Tensor& values = model.value_forward(batch.obs);
  const Tensor& target_out = target.policy_forward(batch.obs);

  Tensor logp, logp_target;
  if (batch.action_kind == nn::ActionKind::kContinuous) {
    logp =
        nn::gaussian_log_prob(pol_out, *model.log_std(), batch.actions_cont);
    logp_target = nn::gaussian_log_prob(target_out, *target.log_std(),
                                        batch.actions_cont);
  } else {
    logp = nn::categorical_log_prob(pol_out, batch.actions_disc);
    logp_target = nn::categorical_log_prob(target_out, batch.actions_disc);
  }

  // ---- V-trace value targets and advantages (vs behaviour policy μ) ---------
  // Run per independent segment so concatenated batches never propagate
  // corrections across the seam between two actors' rollouts.
  VtraceResult vt{Tensor({n}), Tensor({n})};
  {
    auto slice1 = [](const Tensor& t, std::size_t s, std::size_t e) {
      return Tensor({e - s},
                    std::vector<float>(t.vec().begin() +
                                           static_cast<std::ptrdiff_t>(s),
                                       t.vec().begin() +
                                           static_cast<std::ptrdiff_t>(e)));
    };
    for (const auto& seg : batch.segment_views()) {
      const VtraceResult part = compute_vtrace(
          slice1(batch.behaviour_log_probs, seg.start, seg.end),
          slice1(logp, seg.start, seg.end),
          slice1(batch.rewards, seg.start, seg.end),
          slice1(batch.dones, seg.start, seg.end),
          slice1(values, seg.start, seg.end), seg.bootstrap, cfg.gamma,
          cfg.vtrace_rho_bar, cfg.vtrace_c_bar);
      for (std::size_t t = seg.start; t < seg.end; ++t) {
        vt.vs[t] = part.vs[t - seg.start];
        vt.pg_advantages[t] = part.pg_advantages[t - seg.start];
      }
    }
  }

  // Advantage standardization, as RLlib's IMPACT implementation does.
  double adv_mean = 0.0;
  for (std::size_t t = 0; t < n; ++t) adv_mean += vt.pg_advantages[t];
  adv_mean *= inv_n;
  double adv_var = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double d = vt.pg_advantages[t] - adv_mean;
    adv_var += d * d;
  }
  const double adv_std = std::sqrt(adv_var * inv_n) + 1e-8;

  // ---- surrogate wrt the TARGET network -------------------------------------
  LossStats stats;
  auto coeff_lease = ops::ScratchPool::local().take({n});
  Tensor& coeff = *coeff_lease;
  double surrogate = 0.0, kl_sum = 0.0, sum_ratio = 0.0, max_ratio = 0.0;
  double min_ratio = std::numeric_limits<double>::infinity();
  std::size_t clipped = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double log_diff =
        std::clamp(static_cast<double>(logp[t]) -
                       static_cast<double>(logp_target[t]),
                   -20.0, 20.0);
    const double r = std::exp(log_diff);
    // Anchor ratio vs the behaviour policy μ: the KL penalty and the
    // trust-region diagnostics must measure drift from the data-generating
    // policy — the target network tracks the current policy too closely to
    // bound asynchronous drift.
    const double log_diff_mu =
        std::clamp(static_cast<double>(logp[t]) -
                       static_cast<double>(batch.behaviour_log_probs[t]),
                   -20.0, 20.0);
    const double r_mu = std::exp(log_diff_mu);
    sum_ratio += r;
    max_ratio = std::max(max_ratio, r);
    min_ratio = std::min(min_ratio, r);
    const double a = (vt.pg_advantages[t] - adv_mean) / adv_std;

    const double r_eff = std::min(r, ratio_cap);
    const double surr1 = r_eff * a;
    const double surr2 =
        std::clamp(r_eff, 1.0 - cfg.clip_param, 1.0 + cfg.clip_param) * a;
    surrogate += std::min(surr1, surr2);

    // As in ppo.cpp: the truncation cap is a V-trace-style capped weight
    // (gradient coefficient min(r, ρ)·A), while the surrogate clip zeroes.
    const bool surr1_active = surr1 <= surr2;
    const bool truncated = r > ratio_cap;
    const bool ppo_clipped =
        !surr1_active &&
        (r_eff <= 1.0 - cfg.clip_param || r_eff >= 1.0 + cfg.clip_param);
    if (ppo_clipped || truncated) ++clipped;

    double c = 0.0;
    if (surr1_active || !ppo_clipped) c = -(r_eff * a) * inv_n;

    // KL penalty against the behaviour policy μ (k3 estimator).
    const double kl_t = (r_mu - 1.0) - log_diff_mu;
    kl_sum += kl_t;
    c += cfg.kl_coeff * (r_mu - 1.0) * inv_n;

    coeff[t] = static_cast<float>(c);
  }
  stats.policy_loss = -surrogate * inv_n;
  stats.kl = kl_sum * inv_n;
  stats.mean_ratio = sum_ratio * inv_n;
  stats.max_ratio = max_ratio;
  stats.min_ratio = min_ratio;
  stats.clip_fraction = static_cast<double>(clipped) * inv_n;

  if (batch.action_kind == nn::ActionKind::kContinuous) {
    auto g = nn::gaussian_log_prob_backward(pol_out, *model.log_std(),
                                            batch.actions_cont, coeff);
    stats.entropy = nn::gaussian_entropy(*model.log_std());
    for (std::size_t j = 0; j < g.dlog_std.numel(); ++j) {
      g.dlog_std[j] = static_cast<float>(
          g.dlog_std[j] * cfg.log_std_grad_scale - cfg.entropy_coeff);
    }
    model.policy_backward(g.dmean);
    *model.log_std_grad() += g.dlog_std;
  } else {
    Tensor dlogits =
        nn::categorical_log_prob_backward(pol_out, batch.actions_disc, coeff);
    const Tensor ent = nn::categorical_entropy(pol_out);
    stats.entropy = ent.mean();
    if (cfg.entropy_coeff != 0.0) {
      Tensor ent_coeff =
          Tensor::full({n}, static_cast<float>(-cfg.entropy_coeff * inv_n));
      dlogits += nn::categorical_entropy_backward(pol_out, ent_coeff);
    }
    model.policy_backward(dlogits);
  }

  // Value regression toward V-trace targets.
  auto dvalues_lease = ops::ScratchPool::local().take({n});
  Tensor& dvalues = *dvalues_lease;
  double vloss = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double err = values[t] - vt.vs[t];
    vloss += 0.5 * err * err;
    dvalues[t] = static_cast<float>(cfg.vf_coeff * err * inv_n);
  }
  stats.value_loss = cfg.vf_coeff * vloss * inv_n;
  model.value_backward(dvalues);

  return stats;
}

}  // namespace stellaris::rl
