#include "serverless/cost_meter.hpp"

#include "util/error.hpp"

namespace stellaris::serverless {

const char* fn_kind_name(FnKind kind) {
  switch (kind) {
    case FnKind::kLearner: return "learner";
    case FnKind::kParameter: return "parameter";
    case FnKind::kActor: return "actor";
    case FnKind::kServe: return "serve";
  }
  return "?";
}

CostMeter::PerKind& CostMeter::bucket(FnKind kind) {
  switch (kind) {
    case FnKind::kLearner: return learner_;
    case FnKind::kParameter: return parameter_;
    case FnKind::kActor: return actor_;
    case FnKind::kServe: return serve_;
  }
  throw Error("bad FnKind");
}

const CostMeter::PerKind& CostMeter::bucket(FnKind kind) const {
  return const_cast<CostMeter*>(this)->bucket(kind);
}

void CostMeter::record(FnKind kind, double unit_price_per_s,
                       double duration_s, bool failed) {
  STELLARIS_CHECK_MSG(unit_price_per_s >= 0.0 && duration_s >= 0.0,
                      "negative price or duration");
  auto& b = bucket(kind);
  b.cost += unit_price_per_s * duration_s;
  b.seconds += duration_s;
  ++b.count;
  if (failed) {
    b.wasted_cost += unit_price_per_s * duration_s;
    b.wasted_seconds += duration_s;
    ++b.failed;
  }
}

double CostMeter::cost(FnKind kind) const { return bucket(kind).cost; }

double CostMeter::total_cost() const {
  return learner_.cost + parameter_.cost + actor_.cost + serve_.cost;
}

double CostMeter::busy_seconds(FnKind kind) const {
  return bucket(kind).seconds;
}

std::uint64_t CostMeter::invocations(FnKind kind) const {
  return bucket(kind).count;
}

double CostMeter::wasted_cost(FnKind kind) const {
  return bucket(kind).wasted_cost;
}

double CostMeter::total_wasted_cost() const {
  return learner_.wasted_cost + parameter_.wasted_cost + actor_.wasted_cost +
         serve_.wasted_cost;
}

double CostMeter::wasted_seconds(FnKind kind) const {
  return bucket(kind).wasted_seconds;
}

std::uint64_t CostMeter::failed_invocations(FnKind kind) const {
  return bucket(kind).failed;
}

std::uint64_t CostMeter::total_failed_invocations() const {
  return learner_.failed + parameter_.failed + actor_.failed + serve_.failed;
}

void CostMeter::reset() {
  learner_ = PerKind{};
  parameter_ = PerKind{};
  actor_ = PerKind{};
  serve_ = PerKind{};
}

}  // namespace stellaris::serverless
