// Binary serialization codec — the stand-in for the Python pickle layer the
// paper uses between actors, learners, and the distributed cache.
//
// Little-endian, length-prefixed, with a per-type tag byte so decoding
// errors are caught instead of silently misreading. Payload sizes reported
// by the codec feed the data-passing latency model (bytes / bandwidth).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace stellaris {

/// Growable byte sink.
class ByteWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f32(float v);
  void put_f64(double v);
  void put_string(const std::string& s);
  void put_f32_vector(const std::vector<float>& v);
  void put_f64_vector(const std::vector<double>& v);
  void put_u64_vector(const std::vector<std::uint64_t>& v);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over an immutable byte span; throws Error on any
/// tag mismatch or overrun.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  float get_f32();
  double get_f64();
  std::string get_string();
  std::vector<float> get_f32_vector();
  std::vector<double> get_f64_vector();
  std::vector<std::uint64_t> get_u64_vector();

 private:
  void need(std::size_t n) const {
    if (pos_ + n > size_)
      throw Error("ByteReader overrun: need " + std::to_string(n) +
                  " bytes, have " + std::to_string(size_ - pos_));
  }
  template <typename T>
  T raw() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

namespace wire {
// Type tags: each primitive is preceded by its tag so corrupted or
// mis-ordered reads fail fast.
inline constexpr std::uint8_t kU8 = 0x01;
inline constexpr std::uint8_t kU32 = 0x02;
inline constexpr std::uint8_t kU64 = 0x03;
inline constexpr std::uint8_t kI64 = 0x04;
inline constexpr std::uint8_t kF32 = 0x05;
inline constexpr std::uint8_t kF64 = 0x06;
inline constexpr std::uint8_t kString = 0x07;
inline constexpr std::uint8_t kF32Vec = 0x08;
inline constexpr std::uint8_t kF64Vec = 0x09;
inline constexpr std::uint8_t kU64Vec = 0x0a;
}  // namespace wire

}  // namespace stellaris
