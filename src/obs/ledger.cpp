#include "obs/ledger.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/obs.hpp"

namespace stellaris::obs {

std::string LedgerEvent::render_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string LedgerEvent::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

LedgerEvent::LedgerEvent(const char* ev, double t_s) {
  line_.reserve(128);
  line_ += "{\"ev\":";
  line_ += quote(ev ? ev : "");
  line_ += ",\"run\":";
  line_ += std::to_string(current_run());
  line_ += ",\"t\":";
  line_ += render_number(t_s);
}

void LedgerEvent::append_raw(std::string_view key, std::string_view json) {
  line_.push_back(',');
  line_ += quote(key);
  line_.push_back(':');
  line_ += json;
}

LedgerEvent& LedgerEvent::field(std::string_view key, const std::string& v) {
  append_raw(key, quote(v));
  return *this;
}

LedgerEvent& LedgerEvent::field(std::string_view key, const char* v) {
  append_raw(key, quote(v ? v : ""));
  return *this;
}

LedgerEvent& LedgerEvent::field(std::string_view key, bool v) {
  append_raw(key, v ? "true" : "false");
  return *this;
}

LedgerEvent& LedgerEvent::raw(std::string_view key, std::string_view json) {
  append_raw(key, json);
  return *this;
}

std::string LedgerEvent::finish() {
  line_.push_back('}');
  return std::move(line_);
}

std::string render_number_array(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out.push_back(',');
    out += LedgerEvent::render_number(xs[i]);
  }
  out.push_back(']');
  return out;
}

std::string render_id_array(const std::vector<std::uint64_t>& ids) {
  std::string out = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(ids[i]);
  }
  out.push_back(']');
  return out;
}

LedgerRecorder::LedgerRecorder() { lines_.reserve(1024); }

void LedgerRecorder::append(std::string line) {
  MutexLock lock(mu_);
  lines_.push_back(std::move(line));
}

std::size_t LedgerRecorder::size() const {
  MutexLock lock(mu_);
  return lines_.size();
}

std::vector<std::string> LedgerRecorder::lines() const {
  MutexLock lock(mu_);
  return lines_;
}

void LedgerRecorder::write(std::ostream& os) const {
  MutexLock lock(mu_);
  for (const auto& line : lines_) os << line << '\n';
}

bool LedgerRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

}  // namespace stellaris::obs
