#include "envs/vec_env.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellaris::envs {
namespace {

TEST(VecEnv, ResetStacksObservations) {
  VecEnv vec("Hopper", 4, 1);
  Tensor obs = vec.reset_all();
  EXPECT_EQ(obs.shape(), (Shape{4, vec.spec().obs.flat_dim}));
  EXPECT_TRUE(obs.all_finite());
}

TEST(VecEnv, StepBatchShapes) {
  VecEnv vec("Hopper", 3, 2);
  vec.reset_all();
  Tensor actions({3, vec.spec().act_dim});
  auto batch = vec.step(actions);
  EXPECT_EQ(batch.obs.dim(0), 3u);
  EXPECT_EQ(batch.rewards.size(), 3u);
  EXPECT_EQ(batch.dones.size(), 3u);
  EXPECT_EQ(vec.total_steps(), 3u);
}

TEST(VecEnv, DiscreteBatchStep) {
  VecEnv vec("Qbert", 2, 3);
  vec.reset_all();
  auto batch = vec.step_discrete({2, 3});
  EXPECT_EQ(batch.obs.dim(0), 2u);
}

TEST(VecEnv, AutoResetOnDone) {
  VecEnv vec("Hopper", 2, 4);
  vec.reset_all();
  Tensor push = Tensor::full({2, vec.spec().act_dim}, 1.0f);
  std::size_t episodes = 0;
  for (int i = 0; i < 600 && episodes == 0; ++i) {
    auto batch = vec.step(push);
    episodes += batch.episode_returns.size();
    // Even after done, the returned obs must be a valid fresh observation.
    EXPECT_TRUE(batch.obs.all_finite());
  }
  EXPECT_GE(episodes, 1u);
}

TEST(VecEnv, EpisodeReturnsAccumulateRewards) {
  VecEnv vec("Hopper", 1, 5);
  vec.reset_all();
  Tensor zero({1, vec.spec().act_dim});
  double manual = 0.0;
  for (;;) {
    auto batch = vec.step(zero);
    manual += batch.rewards[0];
    if (!batch.episode_returns.empty()) {
      EXPECT_NEAR(batch.episode_returns[0], manual, 1e-9);
      break;
    }
  }
}

TEST(VecEnv, ThreadedMatchesSerial) {
  VecEnv serial("Walker2d", 4, 9, /*threads=*/0);
  VecEnv threaded("Walker2d", 4, 9, /*threads=*/3);
  serial.reset_all();
  threaded.reset_all();
  Rng rng(7);
  for (int step = 0; step < 40; ++step) {
    Tensor actions({4, serial.spec().act_dim});
    for (auto& v : actions.vec())
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto a = serial.step(actions);
    auto b = threaded.step(actions);
    EXPECT_EQ(a.obs.vec(), b.obs.vec());
    EXPECT_EQ(a.rewards, b.rewards);
    EXPECT_EQ(a.dones, b.dones);
  }
}

TEST(VecEnv, ThreadedMatchesSerialIntoApi) {
  // The allocation-free caller-Rng path must be bit-identical across
  // thread counts: reset seeds are drawn up front in env index order, so
  // the pool partitioning can never reorder draws.
  for (std::size_t threads : {2ul, 4ul}) {
    VecEnv serial("Walker2d", 5, 13, /*threads=*/0);
    VecEnv threaded("Walker2d", 5, 13, threads);
    Rng ra(99), rb(99);
    Tensor obs_a, obs_b;
    serial.reset_all_into(ra, obs_a);
    threaded.reset_all_into(rb, obs_b);
    ASSERT_EQ(obs_a.vec(), obs_b.vec()) << threads << " threads";
    VecEnv::StepBatch a, b;
    Rng actions_rng(7);
    for (int step = 0; step < 60; ++step) {
      Tensor actions({5, serial.spec().act_dim});
      for (auto& v : actions.vec())
        v = static_cast<float>(actions_rng.uniform(-1.0, 1.0));
      serial.step_into(actions, ra, a);
      threaded.step_into(actions, rb, b);
      ASSERT_EQ(a.obs.vec(), b.obs.vec()) << threads << " threads";
      ASSERT_EQ(a.rewards, b.rewards);
      ASSERT_EQ(a.dones, b.dones);
      ASSERT_EQ(a.episode_returns, b.episode_returns);
    }
    EXPECT_EQ(serial.total_steps(), threaded.total_steps());
  }
}

TEST(VecEnv, ThreadedMatchesSerialDiscreteIntoApi) {
  for (std::size_t threads : {2ul, 4ul}) {
    VecEnv serial("Qbert", 3, 17, /*threads=*/0);
    VecEnv threaded("Qbert", 3, 17, threads);
    Rng ra(5), rb(5);
    Tensor obs_a, obs_b;
    serial.reset_all_into(ra, obs_a);
    threaded.reset_all_into(rb, obs_b);
    ASSERT_EQ(obs_a.vec(), obs_b.vec());
    VecEnv::StepBatch a, b;
    Rng act_rng(3);
    const std::size_t n_act = serial.spec().act_dim;
    for (int step = 0; step < 120; ++step) {
      std::vector<std::size_t> actions(3);
      for (auto& v : actions) v = act_rng.next() % n_act;
      serial.step_discrete_into(actions, ra, a);
      threaded.step_discrete_into(actions, rb, b);
      ASSERT_EQ(a.obs.vec(), b.obs.vec()) << threads << " threads";
      ASSERT_EQ(a.rewards, b.rewards);
      ASSERT_EQ(a.dones, b.dones);
    }
  }
}

TEST(VecEnv, StepIntoIsAllocationFreeWhenWarm) {
  VecEnv vec("Hopper", 4, 1);
  Rng rng(2);
  Tensor obs;
  vec.reset_all_into(rng, obs);
  VecEnv::StepBatch out;
  Tensor actions = Tensor::full({4, vec.spec().act_dim}, 0.1f);
  vec.step_into(actions, rng, out);  // warm: out buffers take shape
  const std::uint64_t before = tensor_buffer_allocs();
  for (int step = 0; step < 50; ++step) vec.step_into(actions, rng, out);
  EXPECT_EQ(tensor_buffer_allocs(), before)
      << "steady-state step_into must not allocate tensor buffers";
}

TEST(VecEnv, SingleEnvForwardsMatchScalarEnv) {
  // reset_env_into / step_env_into are pass-throughs: same seed, same
  // actions => same per-env stream as a standalone Env.
  VecEnv vec("Hopper", 2, 1);
  auto solo = make_env("Hopper");
  const std::size_t obs_dim = vec.spec().obs.flat_dim;
  std::vector<float> obs_vec(obs_dim), obs_solo(obs_dim);
  vec.reset_env_into(1, 77, obs_vec);
  solo->reset_into(77, obs_solo);
  ASSERT_EQ(obs_vec, obs_solo);
  std::vector<float> action(vec.spec().act_dim, 0.3f);
  for (int step = 0; step < 25; ++step) {
    const StepOut a = vec.step_env_into(1, action, obs_vec);
    const StepOut b = solo->step_into(action, obs_solo);
    ASSERT_EQ(obs_vec, obs_solo);
    ASSERT_EQ(a.reward, b.reward);
    ASSERT_EQ(a.done, b.done);
    if (a.done) break;
  }
}

TEST(VecEnv, WrongActionShapeThrows) {
  VecEnv vec("Hopper", 2, 1);
  vec.reset_all();
  EXPECT_THROW(vec.step(Tensor({3, vec.spec().act_dim})), Error);
  EXPECT_THROW(vec.step_discrete({0}), Error);
}

TEST(VecEnv, ZeroEnvsThrows) { EXPECT_THROW(VecEnv("Hopper", 0, 1), Error); }

}  // namespace
}  // namespace stellaris::envs
