// Time-series recorder — windowed sampling of run health signals over the
// virtual clock.
//
// Counters and gauges (obs/metrics.hpp) answer "what happened over the
// whole run"; the ledger (obs/ledger.hpp) answers "what happened to this
// trajectory". The time-series recorder answers the question in between:
// *when* did staleness spike, how deep was the gradient queue while it
// did, how many actors were in flight, how fast was cost burning.
//
// Model: a sample is (series name, virtual time, value). Samples fall into
// fixed windows of `window_s` virtual seconds aligned at t = 0 (window k
// covers [k·w, (k+1)·w)); each window keeps count/min/max/sum/last.
// Windows that receive no samples are simply absent — gaps are preserved
// in the export, not zero-filled, so "the queue drained and nothing
// sampled it" is distinguishable from "the queue was empty".
//
// Like the trace recorder and the ledger, this is an observation-only
// sink: sampling draws no randomness and schedules no events, so results
// are bit-identical with recording on or off. Call sites go through
// obs::timeseries() (one relaxed atomic load + branch when disabled).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace stellaris::obs {

/// Aggregate of the samples that landed in one window.
struct TimeSeriesWindow {
  std::int64_t index = 0;  ///< window start = index * window_s
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;  ///< most recently sampled value (samples arrive in
                      ///< virtual-time order on the sim drivers)

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// One exported series: name + its populated windows in index order.
struct TimeSeriesExport {
  std::string name;
  std::vector<TimeSeriesWindow> windows;
};

class TimeSeriesRecorder {
 public:
  /// `window_s` must be > 0; virtual seconds per window.
  explicit TimeSeriesRecorder(double window_s = 1.0);
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  double window_s() const { return window_s_; }

  /// Record `value` for `series` at virtual time `t_s`. Negative times
  /// land in negative window indices (the sim never produces them, but
  /// the recorder does not assume).
  void sample(std::string_view series, double t_s, double value)
      EXCLUDES(mu_);

  /// Series names in lexicographic order.
  std::vector<std::string> series_names() const EXCLUDES(mu_);
  /// Populated windows of one series in window order (empty if unknown).
  std::vector<TimeSeriesWindow> windows(std::string_view series) const
      EXCLUDES(mu_);
  /// Everything, series in lexicographic order.
  std::vector<TimeSeriesExport> export_all() const EXCLUDES(mu_);

  /// CSV: series,window,t_lo,t_hi,count,min,max,mean,last — one line per
  /// populated window, series in lexicographic order.
  void write_csv(std::ostream& os) const;
  /// JSON: {"window_s":w,"series":{"<name>":[{...window...},...]}}.
  void write_json(std::ostream& os) const;
  /// Writes JSON for paths ending in ".json", CSV otherwise; false on I/O
  /// failure.
  bool write_file(const std::string& path) const;

 private:
  std::int64_t window_index(double t_s) const;

  const double window_s_;
  mutable Mutex mu_{"obs/timeseries", lock_rank::kTimeSeries};
  // std::map on both levels: export order must not depend on hash seeds or
  // insertion order, and the window map is iterated in index order.
  std::map<std::string, std::map<std::int64_t, TimeSeriesWindow>,
           std::less<>>
      series_ GUARDED_BY(mu_);
};

}  // namespace stellaris::obs
