#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(2.0, [&] {
    engine.schedule_after(0.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.schedule_after(1.0, recurse);
  };
  engine.schedule_at(0.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), Error);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), Error);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine engine;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    engine.schedule_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  engine.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(7.0);
  EXPECT_DOUBLE_EQ(engine.now(), 7.0);
}

TEST(Engine, CountsExecutedEvents) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_at(i, [] {});
  engine.run();
  EXPECT_EQ(engine.executed_events(), 7u);
}

TEST(Engine, CancelledEventIsDiscardedWithoutAdvancingClock) {
  Engine engine;
  bool ran = false;
  engine.schedule_at(1.0, [] {});
  auto handle = engine.schedule_cancellable_at(5.0, [&] { ran = true; });
  *handle = true;
  engine.run();
  EXPECT_FALSE(ran);
  // The dead timer at t=5 must not stretch the measured makespan.
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(Engine, CancellableEventRunsWhenNotCancelled) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_cancellable_after(2.5, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Engine, CancellationMidRunSkipsTheEvent) {
  Engine engine;
  std::vector<int> order;
  auto handle =
      engine.schedule_cancellable_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] {
    order.push_back(1);
    *handle = true;  // cancel the later event from an earlier one
  });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Engine, DeterministicInterleaving) {
  // Two "processes" ping-ponging at equal times resolve identically on
  // every run — the property the staleness measurements rely on.
  auto run_once = [] {
    Engine engine;
    std::vector<int> trace;
    for (int i = 0; i < 3; ++i) {
      engine.schedule_at(1.0, [&trace] { trace.push_back(0); });
      engine.schedule_at(1.0, [&trace] { trace.push_back(1); });
    }
    engine.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace stellaris::sim
