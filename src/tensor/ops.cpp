#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace stellaris::ops {

Tensor matmul(const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul needs 2-D operands");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  STELLARIS_CHECK_MSG(b.dim(0) == k, "matmul inner-dim mismatch: "
                                         << shape_str(a.shape()) << " x "
                                         << shape_str(b.shape()));
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // ikj loop order: unit-stride inner loop over both B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul_tn needs 2-D operands");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  STELLARIS_CHECK_MSG(b.dim(0) == k, "matmul_tn inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul_nt needs 2-D operands");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  STELLARIS_CHECK_MSG(b.dim(1) == k, "matmul_nt inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float s = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      pc[i * n + j] = s;
    }
  }
  return c;
}

void add_bias_rows(Tensor& x, const Tensor& bias) {
  STELLARIS_CHECK_MSG(x.rank() == 2 && bias.rank() == 1 &&
                          bias.dim(0) == x.dim(1),
                      "bias shape mismatch");
  const std::size_t m = x.dim(0), n = x.dim(1);
  float* px = x.data().data();
  const float* pb = bias.data().data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
}

Tensor sum_rows(const Tensor& x) {
  STELLARIS_CHECK_MSG(x.rank() == 2, "sum_rows needs a 2-D tensor");
  const std::size_t m = x.dim(0), n = x.dim(1);
  Tensor out({n});
  const float* px = x.data().data();
  float* po = out.data().data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) po[j] += px[i * n + j];
  return out;
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.vec()) v = std::tanh(v);
  return y;
}

Tensor tanh_backward(const Tensor& y, const Tensor& dy) {
  STELLARIS_CHECK_MSG(y.same_shape(dy), "tanh_backward shape mismatch");
  Tensor dx = dy;
  auto& d = dx.vec();
  const auto& yy = y.vec();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= 1.0f - yy[i] * yy[i];
  return dx;
}

Tensor relu_forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.vec()) v = std::max(v, 0.0f);
  return y;
}

Tensor relu_backward(const Tensor& x, const Tensor& dy) {
  STELLARIS_CHECK_MSG(x.same_shape(dy), "relu_backward shape mismatch");
  Tensor dx = dy;
  auto& d = dx.vec();
  const auto& xx = x.vec();
  for (std::size_t i = 0; i < d.size(); ++i)
    if (xx[i] <= 0.0f) d[i] = 0.0f;
  return dx;
}

Tensor softmax_rows(const Tensor& logits) {
  STELLARIS_CHECK_MSG(logits.rank() == 2, "softmax_rows needs 2-D");
  Tensor out = logits;
  const std::size_t m = out.dim(0), n = out.dim(1);
  float* p = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    float* r = p + i * n;
    float mx = r[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j) r[j] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  STELLARIS_CHECK_MSG(logits.rank() == 2, "log_softmax_rows needs 2-D");
  Tensor out = logits;
  const std::size_t m = out.dim(0), n = out.dim(1);
  float* p = out.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    float* r = p + i * n;
    float mx = r[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) sum += std::exp(r[j] - mx);
    const float lse = mx + std::log(sum);
    for (std::size_t j = 0; j < n; ++j) r[j] -= lse;
  }
  return out;
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  const std::size_t chw = spec.in_channels * spec.in_h * spec.in_w;
  STELLARIS_CHECK_MSG(input.rank() == 2 && input.dim(1) == chw,
                      "im2col input must be (N, C*H*W); got "
                          << shape_str(input.shape()) << " vs C*H*W=" << chw);
  const std::size_t batch = input.dim(0);
  const std::size_t oh = spec.out_h(), ow = spec.out_w();
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  Tensor cols({batch * oh * ow, patch});
  const float* pin = input.data().data();
  float* pc = cols.data().data();

  for (std::size_t n = 0; n < batch; ++n) {
    const float* img = pin + n * chw;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* dst = pc + ((n * oh + oy) * ow + ox) * patch;
        for (std::size_t c = 0; c < spec.in_channels; ++c) {
          const float* plane = img + c * spec.in_h * spec.in_w;
          for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              float v = 0.0f;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(spec.in_h) &&
                  ix >= 0 && ix < static_cast<std::ptrdiff_t>(spec.in_w))
                v = plane[static_cast<std::size_t>(iy) * spec.in_w +
                          static_cast<std::size_t>(ix)];
              *dst++ = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::size_t batch) {
  const std::size_t oh = spec.out_h(), ow = spec.out_w();
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  STELLARIS_CHECK_MSG(cols.rank() == 2 && cols.dim(0) == batch * oh * ow &&
                          cols.dim(1) == patch,
                      "col2im shape mismatch: " << shape_str(cols.shape()));
  const std::size_t chw = spec.in_channels * spec.in_h * spec.in_w;
  Tensor out({batch, chw});
  const float* pc = cols.data().data();
  float* pout = out.data().data();

  for (std::size_t n = 0; n < batch; ++n) {
    float* img = pout + n * chw;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* src = pc + ((n * oh + oy) * ow + ox) * patch;
        for (std::size_t c = 0; c < spec.in_channels; ++c) {
          float* plane = img + c * spec.in_h * spec.in_w;
          for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              const float v = *src++;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(spec.in_h) &&
                  ix >= 0 && ix < static_cast<std::ptrdiff_t>(spec.in_w))
                plane[static_cast<std::size_t>(iy) * spec.in_w +
                      static_cast<std::size_t>(ix)] += v;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace stellaris::ops
