// Google-benchmark microbenchmarks for the substrates: tensor kernels,
// serialization, the distributed cache, the aggregation kernel, environment
// stepping, and a full learner gradient computation.
//
// A second personality, the kernel-perf harness, activates when any of
//   --json=<path>         write machine-readable kernel results
//   --compare=<path>      load a baseline JSON and compute deltas
//   --max-regress=<x>     fail (exit 1) if any kernel is > x times slower
//                         than the baseline (default 2.0)
//   --kernels             run the harness with stdout output only
// is passed (see bench/README.md for the JSON format). The harness times
// every tensor kernel against its ops::reference seed implementation on a
// fixed shape set, so the emitted file is a before/after perf trajectory:
// "reference" is the seed kernel, "value" is the current blocked kernel.
//
// A third personality, the cache/serialize harness (--cache-json=<path>,
// --cache-compare=<path>, --cache), times the zero-copy cache data plane
// and the single-pass encoders against reimplementations of the seed's
// copying paths; it shares --max-regress with the kernel harness.
//
// A fourth personality, the actor-rollout harness (--actor-json=<path>,
// --actor-compare=<path>, --actor), times VecActor's batched rollout
// (one (K, obs_dim)×W forward per step) at K ∈ {1, 2, 4, 8} against the
// scalar single-row Actor — the DESIGN.md §17 throughput claim. Results are
// Msteps/s; it shares --max-regress with the other harnesses.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/distributed_cache.hpp"
#include "core/parameter_function.hpp"
#include "core/policy_io.hpp"
#include "envs/env.hpp"
#include "nn/distributions.hpp"
#include "envs/vec_env.hpp"
#include "rl/actor.hpp"
#include "rl/gae.hpp"
#include "rl/vec_actor.hpp"
#include "rl/ppo.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "util/mini_json.hpp"
#include "util/rng.hpp"

namespace stellaris {
namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::matmul(a, b));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = Tensor::randn({256, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::softmax_rows(logits));
}
BENCHMARK(BM_SoftmaxRows);

void BM_Im2col(benchmark::State& state) {
  Rng rng(3);
  ops::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.in_h = spec.in_w = 20;
  spec.kernel = 5;
  spec.stride = 2;
  Tensor x = Tensor::randn({8, 3 * 20 * 20}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::im2col(x, spec));
}
BENCHMARK(BM_Im2col);

void BM_CachePutGet(benchmark::State& state) {
  cache::DistributedCache cache;
  cache::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k/" + std::to_string(i++ % 128);
    cache.put(key, payload);
    benchmark::DoNotOptimize(cache.get(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_CachePutGet)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_BatchSerialize(benchmark::State& state) {
  auto env = envs::make_env("Hopper");
  nn::ActorCritic policy(env->spec().obs, env->spec().action_kind,
                         env->spec().act_dim, nn::NetworkSpec::mujoco(32), 1);
  rl::Actor actor(envs::make_env("Hopper"), 1);
  auto batch = actor.sample(policy, 128, 0);
  for (auto _ : state) {
    auto bytes = batch.serialize();
    benchmark::DoNotOptimize(rl::SampleBatch::deserialize(bytes));
  }
}
BENCHMARK(BM_BatchSerialize);

void BM_EnvStep(benchmark::State& state) {
  const char* names[] = {"Hopper", "SpaceInvaders"};
  auto env = envs::make_env(names[state.range(0)]);
  env->reset(1);
  Rng rng(1);
  const auto& spec = env->spec();
  std::size_t steps = 0;
  for (auto _ : state) {
    envs::StepResult r;
    if (spec.action_kind == nn::ActionKind::kContinuous) {
      std::vector<float> a(spec.act_dim);
      for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
      r = env->step(a);
    } else {
      r = env->step_discrete(rng.uniform_int(spec.act_dim));
    }
    if (r.done) env->reset(++steps);
    benchmark::DoNotOptimize(r.reward);
  }
}
BENCHMARK(BM_EnvStep)->Arg(0)->Arg(1);

void BM_PpoGradient(benchmark::State& state) {
  auto env_spec = envs::env_spec("Hopper");
  nn::ActorCritic model(env_spec.obs, env_spec.action_kind, env_spec.act_dim,
                        nn::NetworkSpec::mujoco(32), 1);
  rl::Actor actor(envs::make_env("Hopper"), 1);
  auto batch =
      actor.sample(model, static_cast<std::size_t>(state.range(0)), 0);
  rl::PpoConfig cfg;
  rl::compute_gae(batch, cfg.gamma, cfg.gae_lambda);
  rl::normalize_advantages(batch);
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(rl::ppo_compute_gradients(model, batch, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoGradient)->Arg(128)->Arg(512);

void BM_Aggregation(benchmark::State& state) {
  const std::size_t dim = 4096;
  core::ParameterFunction::Config cfg;
  cfg.optimizer = "sgd";
  cfg.alpha0 = 1.0;
  core::ParameterFunction pf(std::vector<float>(dim, 0.0f), cfg);
  std::vector<core::GradientQueue::Item> group;
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    core::GradientQueue::Item item;
    item.msg.grad.resize(dim);
    for (auto& g : item.msg.grad) g = static_cast<float>(rng.normal());
    item.msg.pulled_version = 0;
    item.msg.mean_ratio = rng.uniform(0.8, 1.2);
    group.push_back(std::move(item));
  }
  for (auto _ : state) {
    // Refresh pulled versions so staleness stays valid as versions advance.
    for (auto& item : group) item.msg.pulled_version = pf.version();
    benchmark::DoNotOptimize(pf.aggregate(group));
  }
}
BENCHMARK(BM_Aggregation)->Arg(2)->Arg(8)->Arg(32);

void BM_GaussianLogProb(benchmark::State& state) {
  Rng rng(4);
  Tensor mean = Tensor::randn({512, 6}, rng);
  Tensor log_std = Tensor::randn({6}, rng, 0.3f);
  Tensor actions = Tensor::randn({512, 6}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::gaussian_log_prob(mean, log_std, actions));
}
BENCHMARK(BM_GaussianLogProb);

// ---------------------------------------------------------------------------
// Kernel-perf harness
// ---------------------------------------------------------------------------

/// One timed kernel×shape result. `value`/`reference` are rates in `metric`
/// units (GFLOP/s for the GEMMs, Gelem/s for everything else).
struct KernelResult {
  std::string kernel;
  std::string shape;
  std::string metric;
  double work = 0.0;  // flops or elements per call
  double value = 0.0;
  double reference = 0.0;
};

/// Best-of-3 rate measurement: calibrates an iteration count to ~60 ms,
/// then keeps the fastest repetition (robust against scheduler noise).
double measure_rate(double work_per_call, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  const auto seconds_for = [&](int iters) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  fn();  // warm caches and scratch pools
  int iters = 1;
  double t = seconds_for(iters);
  while (t < 0.02 && iters < (1 << 20)) {
    iters *= 4;
    t = seconds_for(iters);
  }
  const int timed_iters = std::max(1, static_cast<int>(0.06 * iters / t));
  double best = t / iters;
  for (int rep = 0; rep < 3; ++rep)
    best = std::min(best, seconds_for(timed_iters) / timed_iters);
  return work_per_call / best / 1e9;
}

std::vector<KernelResult> run_kernel_benches() {
  std::vector<KernelResult> out;
  Rng rng(42);

  struct GemmShape {
    std::size_t m, k, n;
  };
  const GemmShape gemm_shapes[] = {{32, 32, 32}, {64, 64, 64},
                                   {128, 128, 128}, {67, 43, 129}};
  for (const auto& s : gemm_shapes) {
    std::ostringstream shape;
    shape << s.m << "x" << s.k << "x" << s.n;
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.k) * static_cast<double>(s.n);
    {
      Tensor a = Tensor::randn({s.m, s.k}, rng);
      Tensor b = Tensor::randn({s.k, s.n}, rng);
      Tensor c;
      out.push_back(
          {"matmul", shape.str(), "gflops", flops,
           measure_rate(flops, [&] { ops::matmul_into(c, a, b); }),
           measure_rate(flops, [&] { ops::reference::matmul(a, b); })});
    }
    {
      Tensor a = Tensor::randn({s.k, s.m}, rng);
      Tensor b = Tensor::randn({s.k, s.n}, rng);
      Tensor c;
      out.push_back(
          {"matmul_tn", shape.str(), "gflops", flops,
           measure_rate(flops, [&] { ops::matmul_tn_into(c, a, b); }),
           measure_rate(flops, [&] { ops::reference::matmul_tn(a, b); })});
    }
    {
      Tensor a = Tensor::randn({s.m, s.k}, rng);
      Tensor b = Tensor::randn({s.n, s.k}, rng);
      Tensor c;
      out.push_back(
          {"matmul_nt", shape.str(), "gflops", flops,
           measure_rate(flops, [&] { ops::matmul_nt_into(c, a, b); }),
           measure_rate(flops, [&] { ops::reference::matmul_nt(a, b); })});
    }
  }

  const std::size_t rows = 512, cols = 128;
  const double elems = static_cast<double>(rows * cols);
  const std::string eshape = "512x128";
  Tensor x = Tensor::randn({rows, cols}, rng);
  Tensor y;
  out.push_back({"tanh_forward", eshape, "gelems", elems,
                 measure_rate(elems, [&] { ops::tanh_forward_into(y, x); }),
                 measure_rate(elems, [&] { ops::reference::tanh_forward(x); })});
  out.push_back({"relu_forward", eshape, "gelems", elems,
                 measure_rate(elems, [&] { ops::relu_forward_into(y, x); }),
                 measure_rate(elems, [&] { ops::reference::relu_forward(x); })});
  out.push_back(
      {"softmax_rows", eshape, "gelems", elems,
       measure_rate(elems, [&] { ops::softmax_rows_into(y, x); }),
       measure_rate(elems, [&] { ops::reference::softmax_rows(x); })});
  out.push_back(
      {"log_softmax_rows", eshape, "gelems", elems,
       measure_rate(elems, [&] { ops::log_softmax_rows_into(y, x); }),
       measure_rate(elems, [&] { ops::reference::log_softmax_rows(x); })});
  out.push_back({"sum_rows", eshape, "gelems", elems,
                 measure_rate(elems, [&] { ops::sum_rows_into(y, x); }),
                 measure_rate(elems, [&] { ops::reference::sum_rows(x); })});
  return out;
}

// ---------------------------------------------------------------------------
// Cache / serialization substrate harness
// ---------------------------------------------------------------------------
//
// Same KernelResult shape as the tensor-kernel harness, but "reference" is a
// faithful reimplementation of the pre-zero-copy data plane: deep-copying
// cache reads/writes, growing unsized encoders with per-field temporaries,
// and allocate-per-call decoders. "value" is the current path. Activated by
// --cache-json / --cache-compare / --cache; shares --max-regress.

/// The old copying encoder: unsized writer (geometric growth) plus a fresh
/// temporary vector per tensor header — the allocation profile the sized
/// single-pass encoder replaced.
std::vector<std::uint8_t> legacy_serialize_batch(const rl::SampleBatch& b) {
  ByteWriter w;
  auto put_tensor = [&](const Tensor& t) {
    std::vector<std::uint64_t> dims(t.shape().begin(), t.shape().end());
    w.put_u64_vector(dims);
    w.put_f32_vector(t.vec());
  };
  w.put_u8(b.action_kind == nn::ActionKind::kContinuous ? 0 : 1);
  put_tensor(b.obs);
  put_tensor(b.actions_cont);
  w.put_u64_vector(
      std::vector<std::uint64_t>(b.actions_disc.begin(), b.actions_disc.end()));
  put_tensor(b.rewards);
  put_tensor(b.dones);
  put_tensor(b.behaviour_log_probs);
  put_tensor(b.values);
  w.put_f32(b.bootstrap_value);
  std::vector<std::uint64_t> seg_starts;
  std::vector<float> seg_boot;
  for (const auto& s : b.segments) {
    seg_starts.push_back(s.start);
    seg_boot.push_back(s.bootstrap);
  }
  w.put_u64_vector(seg_starts);
  w.put_f32_vector(seg_boot);
  w.put_u64(b.policy_version);
  put_tensor(b.advantages);
  put_tensor(b.value_targets);
  w.put_f64_vector(b.episode_returns);
  return w.take();
}

/// The old checkpoint encoder: unsized writer and a per-byte loop for the
/// optimizer blob.
std::vector<std::uint8_t> legacy_encode_checkpoint(const core::Checkpoint& c) {
  ByteWriter w;
  w.put_u64(c.version);
  w.put_u64(c.applied_gradients);
  w.put_f32_vector(c.params);
  w.put_u64(c.optimizer_state.size());
  for (std::uint8_t byte : c.optimizer_state) w.put_u8(byte);
  return w.take();
}

std::vector<KernelResult> run_cache_benches() {
  std::vector<KernelResult> out;

  const struct {
    const char* name;
    std::size_t bytes;
  } sizes[] = {{"1KiB", 1024}, {"64KiB", 64 * 1024}, {"1MiB", 1024 * 1024}};

  for (const auto& s : sizes) {
    const double work = static_cast<double>(s.bytes);
    cache::DistributedCache cache;
    cache.put("k", cache::Bytes(s.bytes, 0x5a));
    out.push_back(
        {"cache_get", s.name, "gbps", work,
         // Current read: refcount bump + span view, no byte moves.
         measure_rate(work, [&] { benchmark::DoNotOptimize(cache.get("k")); }),
         // Old read: the store handed back a deep copy of the payload.
         measure_rate(work, [&] {
           auto v = cache.get("k");
           cache::Bytes copy(v->bytes().begin(), v->bytes().end());
           benchmark::DoNotOptimize(copy);
         })});

    const auto payload =
        std::make_shared<const cache::Bytes>(cache::Bytes(s.bytes, 0x5a));
    const cache::Bytes master(s.bytes, 0x5a);
    out.push_back(
        {"cache_put", s.name, "gbps", work,
         // Current write: publishers move/share one refcounted buffer.
         measure_rate(work, [&] { cache.put("k", payload); }),
         // Old write: every put copied the caller's buffer into the store.
         measure_rate(work, [&] { cache.put("k", cache::Bytes(master)); })});
  }

  {
    rl::Actor actor(envs::make_env("Hopper"), 1);
    auto env_spec = envs::env_spec("Hopper");
    nn::ActorCritic policy(env_spec.obs, env_spec.action_kind,
                           env_spec.act_dim, nn::NetworkSpec::mujoco(32), 1);
    auto batch = actor.sample(policy, 128, 0);
    const auto bytes = batch.serialize();
    STELLARIS_CHECK_MSG(legacy_serialize_batch(batch) == bytes,
                        "legacy encoder diverged from the frozen wire format");
    const double work = static_cast<double>(bytes.size());
    out.push_back({"serialize_batch", "hopper128", "gbps", work,
                   measure_rate(work,
                                [&] {
                                  benchmark::DoNotOptimize(batch.serialize());
                                }),
                   measure_rate(work, [&] {
                     benchmark::DoNotOptimize(legacy_serialize_batch(batch));
                   })});
    rl::SampleBatch scratch;
    out.push_back(
        {"deserialize_batch", "hopper128", "gbps", work,
         // Current decode: tensors land in reused buffers (zero alloc warm).
         measure_rate(work,
                      [&] { rl::SampleBatch::deserialize_into(bytes, scratch); }),
         // Old decode: a fresh batch (and every tensor) allocated per call.
         measure_rate(work, [&] {
           benchmark::DoNotOptimize(rl::SampleBatch::deserialize(bytes));
         })});
  }

  {
    core::Checkpoint ckpt;
    ckpt.params.assign(64 * 1024, 0.5f);
    ckpt.version = 3;
    ckpt.applied_gradients = 9;
    ckpt.optimizer_state.assign(512 * 1024, 0xa7);
    const auto bytes = core::encode_checkpoint(ckpt);
    STELLARIS_CHECK_MSG(legacy_encode_checkpoint(ckpt) == bytes,
                        "legacy encoder diverged from the frozen wire format");
    const double work = static_cast<double>(bytes.size());
    out.push_back(
        {"encode_ckpt", "64k+512KiB", "gbps", work,
         measure_rate(work,
                      [&] {
                        benchmark::DoNotOptimize(core::encode_checkpoint(ckpt));
                      }),
         measure_rate(work, [&] {
           benchmark::DoNotOptimize(legacy_encode_checkpoint(ckpt));
         })});
    core::Checkpoint scratch;
    out.push_back(
        {"decode_ckpt", "64k+512KiB", "gbps", work,
         measure_rate(work,
                      [&] { core::decode_checkpoint_into(bytes, scratch); }),
         measure_rate(work, [&] {
           benchmark::DoNotOptimize(core::decode_checkpoint(bytes));
         })});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Actor-rollout harness
// ---------------------------------------------------------------------------
//
// "value" is VecActor's batched rollout rate at K envs per invocation;
// "reference" is the scalar single-row Actor on the same policy network, so
// speedup_vs_reference is the DESIGN.md §17 batched-inference gain. Rates
// are Msteps/s (environment steps, not timesteps × envs). Activated by
// --actor-json / --actor-compare / --actor; shares --max-regress.

std::vector<KernelResult> run_actor_benches() {
  std::vector<KernelResult> out;
  const auto env_spec = envs::env_spec("Hopper");
  // Bench at the trained MuJoCo width: small enough that env stepping is a
  // real fraction of the loop, so the measured gain is honest end-to-end
  // rollout throughput rather than a pure GEMM ratio.
  nn::ActorCritic policy(env_spec.obs, env_spec.action_kind, env_spec.act_dim,
                         nn::NetworkSpec::mujoco(32), 1);
  const std::size_t horizon = 64;
  // Steps × 1000 as "work" lands the %.3f-printed JSON values in Msteps/s.
  const double step_scale = 1000.0;

  rl::Actor scalar(envs::make_env("Hopper"), 1);
  const double scalar_rate =
      measure_rate(static_cast<double>(horizon) * step_scale, [&] {
        benchmark::DoNotOptimize(scalar.sample(policy, horizon, 0));
      });

  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    rl::VecActor actor(std::make_unique<envs::VecEnv>("Hopper", k, 1), 1);
    rl::VecActorScratch scratch;
    const double work = static_cast<double>(k * horizon) * step_scale;
    out.push_back({"actor_rollout", "K" + std::to_string(k), "msteps", work,
                   measure_rate(work,
                                [&] {
                                  benchmark::DoNotOptimize(actor.sample(
                                      policy, scratch, horizon, 0));
                                }),
                   scalar_rate});
  }
  return out;
}

void write_kernel_json(const std::string& path, const std::string& schema,
                       const std::vector<KernelResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"" << schema << "\",\n"
     << "  \"kernel_threads\": " << ops::kernel_threads() << ",\n"
     << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"entries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"kernel\": \"%s\", \"shape\": \"%s\", \"metric\": "
                  "\"%s\", \"value\": %.3f, \"reference\": %.3f, "
                  "\"speedup_vs_reference\": %.3f}",
                  r.kernel.c_str(), r.shape.c_str(), r.metric.c_str(),
                  r.value, r.reference,
                  r.reference > 0.0 ? r.value / r.reference : 0.0);
    os << buf << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

/// Compare against a baseline JSON (same schema). Returns the worst
/// value/baseline ratio across kernels present in both files.
double compare_to_baseline(const std::string& path,
                           const std::vector<KernelResult>& results) {
  std::ifstream is(path);
  STELLARIS_CHECK_MSG(is.good(), "cannot read baseline " << path);
  std::stringstream ss;
  ss << is.rdbuf();
  const minijson::Value root = minijson::parse(ss.str());
  double worst = std::numeric_limits<double>::infinity();
  for (const minijson::Value& e : root.at("entries").arr) {
    const std::string& kernel = e.at("kernel").string();
    const std::string& shape = e.at("shape").string();
    const double base = e.at("value").number();
    if (base <= 0.0) continue;
    for (const auto& r : results) {
      if (r.kernel != kernel || r.shape != shape) continue;
      const double ratio = r.value / base;
      std::printf("  vs baseline  %-18s %-12s %8.2fx\n", kernel.c_str(),
                  shape.c_str(), ratio);
      worst = std::min(worst, ratio);
    }
  }
  return worst;
}

const char* metric_suffix(const std::string& metric) {
  if (metric == "gflops") return "GF";
  if (metric == "gbps") return "GB";
  if (metric == "msteps") return "Ms";
  return "Ge";
}

int run_harness(const std::vector<KernelResult>& results,
                const std::string& schema, const std::string& json_out,
                const std::string& baseline, double max_regress) {
  std::printf("%-18s %-12s %10s %10s %9s\n", "kernel", "shape", "current",
              "reference", "speedup");
  for (const auto& r : results) {
    std::printf("%-18s %-12s %8.2f%s %8.2f%s %8.2fx\n", r.kernel.c_str(),
                r.shape.c_str(), r.value, metric_suffix(r.metric),
                r.reference, metric_suffix(r.metric),
                r.reference > 0.0 ? r.value / r.reference : 0.0);
  }
  if (!json_out.empty()) {
    write_kernel_json(json_out, schema, results);
    std::printf("wrote %s\n", json_out.c_str());
  }
  if (!baseline.empty()) {
    const double worst = compare_to_baseline(baseline, results);
    if (worst * max_regress < 1.0) {
      std::printf("FAIL: worst kernel is %.2fx of baseline (limit %.2fx)\n",
                  worst, 1.0 / max_regress);
      return 1;
    }
    std::printf("baseline check passed: worst ratio %.2fx (limit %.2fx)\n",
                worst, 1.0 / max_regress);
  }
  return 0;
}

}  // namespace
}  // namespace stellaris

int main(int argc, char** argv) {
  std::string json_out, baseline, cache_json, cache_baseline;
  std::string actor_json, actor_baseline;
  double max_regress = 2.0;
  bool kernel_mode = false, cache_mode = false, actor_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
      kernel_mode = true;
    } else if (arg.rfind("--compare=", 0) == 0) {
      baseline = arg.substr(10);
      kernel_mode = true;
    } else if (arg.rfind("--cache-json=", 0) == 0) {
      cache_json = arg.substr(13);
      cache_mode = true;
    } else if (arg.rfind("--cache-compare=", 0) == 0) {
      cache_baseline = arg.substr(16);
      cache_mode = true;
    } else if (arg.rfind("--actor-json=", 0) == 0) {
      actor_json = arg.substr(13);
      actor_mode = true;
    } else if (arg.rfind("--actor-compare=", 0) == 0) {
      actor_baseline = arg.substr(16);
      actor_mode = true;
    } else if (arg.rfind("--max-regress=", 0) == 0) {
      max_regress = std::stod(arg.substr(14));
    } else if (arg == "--kernels") {
      kernel_mode = true;
    } else if (arg == "--cache") {
      cache_mode = true;
    } else if (arg == "--actor") {
      actor_mode = true;
    }
  }
  if (kernel_mode || cache_mode || actor_mode) {
    int rc = 0;
    if (kernel_mode)
      rc |= stellaris::run_harness(stellaris::run_kernel_benches(),
                                   "stellaris-kernel-bench-v1", json_out,
                                   baseline, max_regress);
    if (cache_mode)
      rc |= stellaris::run_harness(stellaris::run_cache_benches(),
                                   "stellaris-cache-bench-v1", cache_json,
                                   cache_baseline, max_regress);
    if (actor_mode)
      rc |= stellaris::run_harness(stellaris::run_actor_benches(),
                                   "stellaris-actor-bench-v1", actor_json,
                                   actor_baseline, max_regress);
    return rc;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
