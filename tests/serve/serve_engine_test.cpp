// ServeEngine end-to-end: batched inference over the virtual clock,
// cross-driver bit-identity, canary promote/rollback, admission under
// overload, queue-depth autoscaling, snapshot decode reuse, and the
// driver×kernel thread-budget clamp.
#include "serve/serve_engine.hpp"

#include <gtest/gtest.h>

#include "tensor/kernel_config.hpp"

namespace stellaris::serve {
namespace {

TenantConfig small_tenant(const std::string& name) {
  TenantConfig t;
  t.name = name;
  t.obs_dim = 8;
  t.act_dim = 3;
  t.hidden = 16;
  t.batch.max_batch = 16;
  t.batch.max_wait_s = 0.002;
  t.traffic.rate_per_s = 400.0;
  t.traffic.duration_s = 5.0;
  return t;
}

ServeConfig base_config() {
  ServeConfig cfg;
  cfg.tenants = {small_tenant("walker")};
  cfg.worker_capacity = 8;
  cfg.autoscale.max_workers = 4;
  cfg.autoscale.eval_period_s = 0.25;
  cfg.seed = 42;
  return cfg;
}

ServeResult run_scenario(const ServeConfig& cfg) {
  ServeEngine eng(cfg);
  for (std::size_t t = 0; t < cfg.tenants.size(); ++t)
    eng.publish_policy(
        t,
        make_policy_params(cfg.tenants[t],
                           cfg.seed ^ (0x5e4e + t)),
        cfg.tenants[t].initial_version);
  return eng.run();
}

TEST(ServeEngine, ServesOpenLoopTraffic) {
  const auto res = run_scenario(base_config());
  ASSERT_EQ(res.tenants.size(), 1u);
  const auto& tr = res.tenants[0];
  EXPECT_GT(tr.issued, 1500u);
  EXPECT_EQ(tr.completed, tr.issued);  // no faults, no overload
  EXPECT_EQ(tr.failed, 0u);
  EXPECT_EQ(tr.rejected, 0u);
  EXPECT_EQ(res.completed, tr.completed);
  // Dynamic batching actually batched (rate 400/s vs 2 ms cutoff).
  EXPECT_GT(tr.mean_batch, 1.2);
  // Quantiles are ordered and positive.
  EXPECT_GT(tr.p50_s, 0.0);
  EXPECT_LE(tr.p50_s, tr.p99_s);
  EXPECT_LE(tr.p99_s, tr.p999_s);
  EXPECT_GT(res.cost_usd, 0.0);
  EXPECT_EQ(res.wasted_cost_usd, 0.0);
  EXPECT_GT(res.requests_per_hour, 0.0);
  // Makespan: arrivals stop at 5 s and the tail drains quickly; dead timers
  // must not stretch virtual time.
  EXPECT_LT(res.duration_s, 6.0);
}

TEST(ServeEngine, SnapshotDecodedOncePerVersion) {
  const auto cfg = base_config();
  ServeEngine eng(cfg);
  eng.publish_policy(0, make_policy_params(cfg.tenants[0], 1), 1);
  const auto res = eng.run();
  ASSERT_GT(res.tenants[0].batches, 1u);
  // One published version -> one decode; every other batch reuses it.
  EXPECT_EQ(res.policy_decodes, 1u);
  EXPECT_EQ(res.policy_reuses, res.tenants[0].batches - 1);
}

TEST(ServeEngine, CrossDriverBitIdentity) {
  auto cfg = base_config();
  cfg.driver = sim::DriverKind::kVirtual;
  const auto virt = run_scenario(cfg);
  cfg.driver = sim::DriverKind::kConcurrent;
  cfg.driver_threads = 4;
  const auto conc = run_scenario(cfg);

  EXPECT_EQ(virt.completed, conc.completed);
  EXPECT_EQ(virt.issued, conc.issued);
  EXPECT_EQ(virt.duration_s, conc.duration_s);
  EXPECT_EQ(virt.cost_usd, conc.cost_usd);
  ASSERT_EQ(virt.tenants.size(), conc.tenants.size());
  for (std::size_t t = 0; t < virt.tenants.size(); ++t) {
    EXPECT_EQ(virt.tenants[t].value_checksum, conc.tenants[t].value_checksum);
    EXPECT_EQ(virt.tenants[t].latency_sum_s, conc.tenants[t].latency_sum_s);
    EXPECT_EQ(virt.tenants[t].p99_s, conc.tenants[t].p99_s);
    EXPECT_EQ(virt.tenants[t].batches, conc.tenants[t].batches);
  }
}

TEST(ServeEngine, CanaryPromotesAfterHealthyWindows) {
  auto cfg = base_config();
  auto& t = cfg.tenants[0];
  t.traffic.duration_s = 12.0;
  t.rollout.eval_period_s = 1.0;
  t.rollout.min_window_requests = 20;
  t.rollout.healthy_windows_to_promote = 2;
  t.rollout.slo_p99_s = 1.0;          // loose: latency cannot breach
  t.rollout.max_value_drift = 1e9;    // drift cannot trip
  ServeEngine eng(cfg);
  eng.publish_policy(0, make_policy_params(t, 1), 1);
  eng.publish_policy(0, make_policy_params(t, 2), 2);
  eng.schedule_canary(0, 2, 0.3, 1.0);
  const auto res = eng.run();
  EXPECT_EQ(res.tenants[0].promotions, 1u);
  EXPECT_EQ(res.tenants[0].rollbacks, 0u);
  EXPECT_EQ(res.tenants[0].final_stable_version, 2u);
}

TEST(ServeEngine, CanaryRollsBackOnLatencySloBreach) {
  auto cfg = base_config();
  auto& t = cfg.tenants[0];
  t.traffic.duration_s = 12.0;
  t.rollout.eval_period_s = 1.0;
  t.rollout.min_window_requests = 20;
  t.rollout.slo_p99_s = 0.060;
  t.rollout.max_value_drift = 1e9;
  ServeEngine eng(cfg);
  eng.publish_policy(0, make_policy_params(t, 1), 1);
  // The canary is a much heavier model behind the same API: its serving
  // compute alone exceeds the p99 SLO, so the controller must roll back.
  eng.publish_policy(0, make_policy_params(t, 2), 2, /*cost_mult=*/50.0);
  eng.schedule_canary(0, 2, 0.3, 1.0);
  const auto res = eng.run();
  EXPECT_EQ(res.tenants[0].rollbacks, 1u);
  EXPECT_EQ(res.tenants[0].promotions, 0u);
  EXPECT_EQ(res.tenants[0].final_stable_version, 1u);
}

TEST(ServeEngine, AdmissionShedsOverload) {
  auto cfg = base_config();
  auto& t = cfg.tenants[0];
  t.traffic.rate_per_s = 5000.0;  // far beyond one worker's capacity
  t.traffic.duration_s = 3.0;
  t.admission.max_queue = 256;
  cfg.autoscale.min_workers = 1;
  cfg.autoscale.max_workers = 1;  // pin capacity so the queue must fill
  const auto res = run_scenario(cfg);
  const auto& tr = res.tenants[0];
  EXPECT_GT(tr.rejected, 0u);
  EXPECT_GT(tr.completed, 0u);
  // Conservation: every arrival is exactly one of rejected/completed/failed.
  EXPECT_EQ(tr.issued, tr.rejected + tr.completed + tr.failed);
  // The queue never exceeded the admission cap by construction; latency of
  // admitted requests stays bounded by (queue cap / service rate).
  EXPECT_LT(tr.p999_s, 3.0);
}

TEST(ServeEngine, AutoscalerAbsorbsBurst) {
  auto cfg = base_config();
  auto& t = cfg.tenants[0];
  t.traffic.rate_per_s = 100.0;
  t.traffic.burst_rate_per_s = 3000.0;
  t.traffic.burst_start_s = 2.0;
  t.traffic.burst_end_s = 4.0;
  t.traffic.duration_s = 8.0;
  cfg.autoscale.min_workers = 1;
  cfg.autoscale.max_workers = 6;
  cfg.autoscale.queue_per_worker = 16.0;
  cfg.autoscale.eval_period_s = 0.1;
  cfg.autoscale.scale_down_idle_evals = 4;
  const auto res = run_scenario(cfg);
  EXPECT_GT(res.peak_workers, 1u);
  EXPECT_GE(res.scale_ups, 1u);
  // The trailing edge scales back down after the burst drains.
  EXPECT_GE(res.scale_downs, 1u);
  EXPECT_EQ(res.completed + res.rejected + res.failed, res.issued);
}

TEST(ServeEngine, MultiTenantIsolatesStreams) {
  auto cfg = base_config();
  cfg.tenants.push_back(small_tenant("arcade"));
  cfg.tenants[1].obs_dim = 12;
  cfg.tenants[1].act_dim = 4;
  cfg.tenants[1].discrete = true;
  cfg.tenants[1].traffic.rate_per_s = 150.0;
  const auto res = run_scenario(cfg);
  ASSERT_EQ(res.tenants.size(), 2u);
  EXPECT_GT(res.tenants[0].completed, 0u);
  EXPECT_GT(res.tenants[1].completed, 0u);
  EXPECT_NE(res.tenants[0].value_checksum, res.tenants[1].value_checksum);
}

TEST(ServeEngine, AppliesDriverThreadBudgetClamp) {
  const std::size_t saved = ops::kernel_threads();
  ops::set_kernel_threads(8);
  auto cfg = base_config();
  cfg.tenants[0].traffic.duration_s = 0.5;
  cfg.driver = sim::DriverKind::kConcurrent;
  cfg.driver_threads = 4;
  cfg.hardware_threads = 16;  // injected: 8 kernels × 4 bodies > 16 threads
  run_scenario(cfg);
  // The serving run clamps kernels to hardware / driver_threads = 4, same
  // as the trainer path (warn-once behavior covered in sim/driver_test).
  EXPECT_EQ(ops::kernel_threads(), 4u);
  ops::set_kernel_threads(saved);
}

}  // namespace
}  // namespace stellaris::serve
