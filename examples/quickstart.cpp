// Quickstart: train PPO on the Hopper locomotion task with Stellaris'
// asynchronous serverless learners, then print the reward curve, cost, and
// staleness telemetry.
//
//   ./build/examples/quickstart [env] [rounds]
//
// This is the 20-line "hello world" of the library: build a TrainConfig,
// call run_training(), read the TrainResult.
#include <cstdlib>
#include <iostream>

#include "core/stellaris_trainer.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace stellaris;

  core::TrainConfig cfg;
  cfg.env_name = argc > 1 ? argv[1] : "Hopper";
  cfg.rounds = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  cfg.num_actors = 8;
  cfg.horizon = 128;
  cfg.seed = 42;

  std::cout << "Training " << cfg.env_name << " with PPO + Stellaris ("
            << cfg.rounds << " rounds, " << cfg.num_actors << " actors)\n";
  const core::TrainResult result = core::run_training(cfg);

  Table table({"round", "virtual_time_s", "reward", "staleness", "beta_k",
               "group", "cost_usd"});
  for (const auto& r : result.rounds) {
    if (!r.evaluated) continue;
    table.row()
        .add(r.round)
        .add(r.time_s, 2)
        .add(r.reward, 1)
        .add(r.mean_staleness, 2)
        .add(r.staleness_threshold, 2)
        .add(r.group_size)
        .add(r.cost_so_far_usd, 4);
  }
  table.emit("reward curve");

  std::cout << "\nfinal reward:   " << result.final_reward
            << "\nbest reward:    " << result.best_reward
            << "\ntotal cost:     $" << result.total_cost_usd
            << " (learner $" << result.learner_cost_usd << ", actor $"
            << result.actor_cost_usd << ")"
            << "\nvirtual time:   " << result.total_time_s << " s"
            << "\nGPU util:       " << result.gpu_utilization * 100.0 << " %"
            << "\ncold starts:    " << result.cold_starts
            << "  warm starts: " << result.warm_starts
            << "\ndelta_max:      " << result.delta_max
            << "\noverhead:       "
            << result.breakdown.overhead_fraction() * 100.0 << " %\n";
  return 0;
}
