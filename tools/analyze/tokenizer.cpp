// Tokenizer + file/project loading for stellaris_analyze.
//
// This is deliberately not a C++ front end: it lexes identifiers, numbers,
// string contents, and punctuation, strips comments, and records the
// line-level metadata the rule passes key on (quoted includes, suppression
// markers, self-test expectations). That is enough structure for every
// invariant the tool checks, and it keeps the analyzer dependency-free.
#include "analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stellaris::analyze {

namespace fs = std::filesystem;

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Two-character punctuators the rule passes match on as single tokens.
bool is_two_char_punct(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>');
}

}  // namespace

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // String literals (plus R"(...)" raw strings). Contents become one
    // kString token so the lock-name / ledger-event passes can read them.
    if (c == '"' || (c == 'R' && i + 1 < n && text[i + 1] == '"')) {
      std::string value;
      const int start_line = line;
      if (c == 'R') {
        std::size_t j = i + 2;
        std::string delim;
        while (j < n && text[j] != '(') delim += text[j++];
        const std::string close = ")" + delim + "\"";
        std::size_t end = text.find(close, j);
        if (end == std::string::npos) end = n;
        value = text.substr(j + 1, end - j - 1);
        line += static_cast<int>(std::count(value.begin(), value.end(), '\n'));
        i = std::min(n, end + close.size());
      } else {
        ++i;
        while (i < n && text[i] != '"') {
          if (text[i] == '\\' && i + 1 < n) {
            value += text[i + 1];
            i += 2;
            continue;
          }
          if (text[i] == '\n') ++line;  // unterminated; keep line count sane
          value += text[i++];
        }
        ++i;  // closing quote
      }
      out.push_back({Token::Kind::kString, value, start_line});
      continue;
    }
    // Char literals: skip contents (a '"' inside must not open a string).
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.push_back({Token::Kind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E'))))
        ++j;
      out.push_back({Token::Kind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (i + 1 < n && is_two_char_punct(c, text[i + 1])) {
      out.push_back({Token::Kind::kPunct, text.substr(i, 2), line});
      i += 2;
      continue;
    }
    out.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool SourceFile::suppressed(const std::string& rule, int line) const {
  for (int l : {line, line - 1}) {
    auto it = markers.find(l);
    if (it != markers.end() && it->second.count(rule)) return true;
  }
  return false;
}

const SourceFile* Project::find(const std::string& rel) const {
  for (const auto& f : files)
    if (f.rel == rel) return &f;
  return nullptr;
}

namespace {

/// Per-line metadata: markers, expects, includes, ignore declarations.
/// Runs over raw lines (markers live in comments, which tokenize() strips).
void scan_lines(const std::string& text, SourceFile& file) {
  std::istringstream in(text);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    // analyze:<rule>-ok markers (one or more per line).
    std::size_t pos = 0;
    while ((pos = raw.find("analyze:", pos)) != std::string::npos) {
      const std::size_t start = pos + 8;
      std::size_t end = start;
      while (end < raw.size() &&
             (ident_char(raw[end]) || raw[end] == '-'))
        ++end;
      std::string tag = raw.substr(start, end - start);
      const std::string suffix = "-ok";
      if (tag.size() > suffix.size() &&
          tag.compare(tag.size() - suffix.size(), suffix.size(), suffix) == 0)
        file.markers[line].insert(tag.substr(0, tag.size() - suffix.size()));
      pos = end;
    }
    // ledger-schema:ignore ev1 ev2 ... — events the parser deliberately
    // does not aggregate (rationale required in the surrounding comment).
    if ((pos = raw.find("ledger-schema:ignore")) != std::string::npos) {
      std::istringstream rest(raw.substr(pos + 20));
      std::string ev;
      while (rest >> ev) {
        // Stop at prose (an em-dash or any non-identifier word).
        if (!ident_start(ev[0])) break;
        std::string clean;
        for (char ch : ev)
          if (ident_char(ch)) clean += ch;
        if (!clean.empty()) file.ignored_events.insert(clean);
      }
    }
    // Self-test expectations: `// expect: rule1 rule2` (corpus files only,
    // but harmless to collect everywhere).
    if ((pos = raw.find("expect:")) != std::string::npos) {
      std::istringstream rest(raw.substr(pos + 7));
      std::string rule;
      while (rest >> rule) {
        std::string clean;
        for (char ch : rule)
          if (ident_char(ch) || ch == '-') clean += ch;
        if (!clean.empty()) file.expects[line].insert(clean);
      }
    }
    // Quoted includes.
    std::size_t h = raw.find_first_not_of(" \t");
    if (h != std::string::npos && raw[h] == '#') {
      std::size_t inc = raw.find("include", h);
      if (inc != std::string::npos) {
        std::size_t q1 = raw.find('"', inc);
        if (q1 != std::string::npos) {
          std::size_t q2 = raw.find('"', q1 + 1);
          if (q2 != std::string::npos)
            file.includes.emplace_back(raw.substr(q1 + 1, q2 - q1 - 1), line);
        }
      }
    }
  }
}

void load_one(const fs::path& root, const fs::path& abs, Project& project) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + abs.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  SourceFile file;
  file.rel = fs::relative(abs, root).generic_string();
  file.tokens = tokenize(text);
  scan_lines(text, file);
  project.files.push_back(std::move(file));
}

}  // namespace

Project load_project(const std::string& root,
                     const std::vector<std::string>& subdirs) {
  Project project;
  project.root = root;
  const fs::path root_path(root);
  std::vector<fs::path> paths;
  for (const auto& sub : subdirs) {
    const fs::path dir = root_path / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      // The self-test corpus is a deliberately-violating mini tree; it is
      // analyzed with its own root, never as part of the enclosing one.
      if (fs::relative(entry.path(), root_path)
              .generic_string()
              .rfind("tools/analyze/selftest/", 0) == 0)
        continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) load_one(root_path, p, project);
  return project;
}

std::string Finding::id() const {
  return rule + " " + file + " " + key;
}

std::string Finding::render() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

}  // namespace stellaris::analyze
