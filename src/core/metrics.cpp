#include "core/metrics.hpp"

namespace stellaris::core {

double LatencyBreakdown::overhead_fraction() const {
  const double t = total();
  if (t <= 0.0) return 0.0;
  const double useful = actor_sample_s + learner_compute_s;
  return (t - useful) / t;
}

}  // namespace stellaris::core
