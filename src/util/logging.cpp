#include "util/logging.hpp"

#include <iostream>

namespace stellaris {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::write(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::cerr << "[" << kNames[idx] << "] " << msg << '\n';
}

}  // namespace stellaris
