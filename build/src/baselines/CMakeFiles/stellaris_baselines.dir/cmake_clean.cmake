file(REMOVE_RECURSE
  "CMakeFiles/stellaris_baselines.dir/sync_trainer.cpp.o"
  "CMakeFiles/stellaris_baselines.dir/sync_trainer.cpp.o.d"
  "libstellaris_baselines.a"
  "libstellaris_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
