#include "serverless/platform.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::serverless {

ServerlessPlatform::ServerlessPlatform(sim::Engine& engine,
                                       ClusterSpec cluster,
                                       LatencyModel latency,
                                       std::uint64_t seed)
    : engine_(engine),
      cluster_(std::move(cluster)),
      latency_(latency),
      rng_(seed),
      gpu_pool_(cluster_.learner_slots(), latency_, seed ^ 0x6b75ULL, "gpu"),
      actor_pool_(std::max<std::size_t>(cluster_.actor_slots(), 1), latency_,
                  seed ^ 0xac70ULL, "actor"),
      trace_tag_(obs::run_tag()) {
  auto& m = obs::metrics();
  m_invocations_[static_cast<int>(FnKind::kLearner)] =
      &m.counter("platform.invocations.learner");
  m_invocations_[static_cast<int>(FnKind::kParameter)] =
      &m.counter("platform.invocations.parameter");
  m_invocations_[static_cast<int>(FnKind::kActor)] =
      &m.counter("platform.invocations.actor");
  m_failed_invocations_ = &m.counter("platform.invocations_failed");
  m_retries_ = &m.counter("platform.retries");
  m_giveups_ = &m.counter("platform.retry_giveups");
  m_queue_wait_s_ = &m.histogram("platform.queue_wait_s", 0.0, 30.0, 120);
  m_gpu_queue_depth_ = &m.gauge("platform.queue_depth.gpu");
  m_actor_queue_depth_ = &m.gauge("platform.queue_depth.actor");

  // Host table for spot-style reclamation: each VM of the cluster spec maps
  // to a contiguous container-id range in its pool (GPU VMs host learner/
  // parameter slots, CPU VMs host actor slots), in spec order.
  std::size_t gpu_cursor = 0, actor_cursor = 0;
  for (const auto& group : cluster_.vms) {
    for (std::size_t i = 0; i < group.count; ++i) {
      if (group.type.gpus > 0) {
        const std::size_t n =
            group.type.gpus * cluster_.learner_slots_per_gpu;
        if (n > 0 && gpu_cursor + n <= gpu_pool_.capacity()) {
          vm_hosts_.push_back({true, gpu_cursor, n, group.type.name});
          gpu_cursor += n;
        }
      } else {
        const std::size_t n = group.type.vcpus;
        if (n > 0 && actor_cursor + n <= actor_pool_.capacity()) {
          vm_hosts_.push_back({false, actor_cursor, n, group.type.name});
          actor_cursor += n;
        }
      }
    }
  }
}

void ServerlessPlatform::set_fault_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ && injector_->reclaims_enabled())
    injector_->arm_reclaims(
        [this](Rng& fault_rng) { reclaim_random_vm(fault_rng); });
}

ContainerPool& ServerlessPlatform::pool_for(FnKind kind) {
  return kind == FnKind::kActor ? actor_pool_ : gpu_pool_;
}

std::deque<ServerlessPlatform::Pending>& ServerlessPlatform::queue_for(
    FnKind kind) {
  return kind == FnKind::kActor ? actor_queue_ : gpu_queue_;
}

double ServerlessPlatform::unit_price(FnKind kind) const {
  // Parameter functions run on the GPU VMs at learner pricing.
  return kind == FnKind::kActor ? cluster_.actor_unit_price()
                                : cluster_.learner_unit_price();
}

void ServerlessPlatform::note_queue_depth(FnKind kind) const {
  const bool actor = kind == FnKind::kActor;
  const std::size_t depth =
      actor ? actor_queue_.size() : gpu_queue_.size();
  (actor ? m_actor_queue_depth_ : m_gpu_queue_depth_)
      ->set(static_cast<double>(depth));
  if (auto* tr = obs::trace())
    tr->counter(trace_tag_ + "/queue_depth/" + (actor ? "actor" : "gpu"),
                engine_.now(), static_cast<double>(depth));
  if (auto* ts = obs::timeseries())
    ts->sample(actor ? "platform.queue_depth.actor"
                     : "platform.queue_depth.gpu",
               engine_.now(), static_cast<double>(depth));
}

void ServerlessPlatform::note_inflight(FnKind kind) const {
  auto* ts = obs::timeseries();
  if (!ts) return;
  ts->sample(std::string("platform.inflight.") + fn_kind_name(kind),
             engine_.now(),
             static_cast<double>(inflight_by_kind_[static_cast<int>(kind)]));
}

void ServerlessPlatform::invoke(const InvokeOptions& options, Callback cb) {
  // The training platform hosts learner/parameter/actor functions only; the
  // serving tier (src/serve) runs its own data plane on its own pool and
  // meter, and its per-kind arrays here are sized for the training kinds.
  STELLARIS_CHECK_MSG(options.kind != FnKind::kServe,
                      "kServe invocations go through serve::ServeEngine");
  queue_for(options.kind).push_back(
      Pending{options, std::move(cb), engine_.now()});
  note_queue_depth(options.kind);
  try_dispatch(options.kind);
}

void ServerlessPlatform::invoke_retrying(const InvokeOptions& options,
                                         const fault::RetryPolicy& policy,
                                         Callback cb) {
  struct Chain {
    InvokeOptions options;
    fault::RetryPolicy policy;
    Callback cb;
    double first_submit = 0.0;
    std::size_t retries_done = 0;
    double wait_total = 0.0;
  };
  auto chain = std::make_shared<Chain>();
  chain->options = options;
  chain->policy = policy;
  chain->cb = std::move(cb);
  chain->first_submit = engine_.now();

  // The std::function stored in *submit captures `submit` by value so the
  // chain can re-schedule itself; that self-reference is a shared_ptr cycle,
  // so every terminal path must break it (*submit = nullptr) or the chain
  // leaks. The currently-executing callback owns its own refs, so clearing
  // *submit mid-call is safe.
  auto submit = std::make_shared<std::function<void()>>();
  *submit = [this, chain, submit] {
    invoke(chain->options, [this, chain, submit](const InvokeResult& r) {
      InvokeResult final = r;
      final.attempts = chain->retries_done + 1;
      final.retry_wait_s = chain->wait_total;
      if (r.ok) {
        *submit = nullptr;
        chain->cb(final);
        return;
      }
      const auto note_giveup = [&](const InvokeResult& res) {
        ++giveups_;
        m_giveups_->add();
        if (auto* led = obs::ledger())
          led->append(
              obs::LedgerEvent("giveup", engine_.now())
                  .field("kind", fn_kind_name(chain->options.kind))
                  .field("lid", chain->options.ledger_id)
                  .field("error", fault::error_kind_name(res.error))
                  .field("attempts", res.attempts)
                  .finish());
      };
      const std::size_t next_attempt = chain->retries_done + 1;
      if (!chain->policy.attempt_allowed(next_attempt)) {
        note_giveup(final);
        *submit = nullptr;
        chain->cb(final);
        return;
      }
      const double backoff = chain->policy.backoff_s(next_attempt, rng_);
      if (chain->policy.deadline_s > 0.0 &&
          engine_.now() + backoff - chain->first_submit >
              chain->policy.deadline_s) {
        final.error = fault::ErrorKind::kDeadline;
        note_giveup(final);
        *submit = nullptr;
        chain->cb(final);
        return;
      }
      ++chain->retries_done;
      chain->options.attempt = chain->retries_done + 1;
      chain->wait_total += backoff;
      ++retries_;
      m_retries_->add();
      if (auto* tr = obs::trace())
        tr->instant(tr->track(trace_tag_ + "/faults"), "retry", "fault",
                    engine_.now(),
                    {{"kind", fn_kind_name(chain->options.kind)},
                     {"error", fault::error_kind_name(r.error)},
                     {"retry", chain->retries_done},
                     {"backoff_s", backoff}});
      if (auto* led = obs::ledger())
        led->append(obs::LedgerEvent("retry", engine_.now())
                        .field("kind", fn_kind_name(chain->options.kind))
                        .field("lid", chain->options.ledger_id)
                        .field("error", fault::error_kind_name(r.error))
                        .field("attempt", chain->retries_done)
                        .field("backoff_s", backoff)
                        .finish());
      if (auto* ts = obs::timeseries())
        ts->sample("platform.retries", engine_.now(),
                   static_cast<double>(retries_));
      engine_.schedule_after(backoff, [submit] { (*submit)(); });
    });
  };
  (*submit)();
}

void ServerlessPlatform::try_dispatch(FnKind kind) {
  auto& queue = queue_for(kind);
  auto& pool = pool_for(kind);
  const std::size_t before = queue.size();
  while (!queue.empty() && pool.busy() < pool.capacity()) {
    Pending p = std::move(queue.front());
    queue.pop_front();
    dispatch(std::move(p));
  }
  if (queue.size() != before) note_queue_depth(kind);
}

void ServerlessPlatform::trace_invocation(const InFlight& inflight) const {
  auto* tr = obs::trace();
  if (!tr) return;
  const InvokeResult& result = inflight.result;
  const FnKind kind = inflight.kind;
  const bool cache_tier = inflight.tier == DataTier::kCache;
  const std::string track = trace_tag_ + "/" + pool_for_name(kind) +
                            std::to_string(inflight.container);
  const obs::TrackId tid = tr->track(track);
  const char* name =
      inflight.span_name ? inflight.span_name : fn_kind_name(kind);
  obs::TraceArgs args{{"cold", result.cold},
                      {"queue_wait_s", result.start_time_s - result.submit_time_s},
                      {"billed_s", result.billed_s},
                      {"cost_usd", result.cost_usd},
                      {"payload_in_bytes", inflight.payload_in_bytes},
                      {"payload_out_bytes", inflight.payload_out_bytes}};
  if (!result.ok)
    args.emplace_back("error", fault::error_kind_name(result.error));
  tr->complete(tid, name, fn_kind_name(kind), result.start_time_s,
               result.end_time_s, std::move(args));
  // Nested phase spans: container start, input fetch, compute, output write.
  // For a crashed or reclaimed invocation the phases past the kill point
  // never ran; the parent span's `error` arg marks it, and phases are
  // clipped to the end so no child extends past its parent.
  double t = result.start_time_s + latency_.invoke_overhead_s;
  auto child = [&](const char* cname, double dur) {
    const double end = std::min(t + dur, result.end_time_s);
    if (dur > 0.0 && end > t) tr->complete(tid, cname, "phase", t, end);
    t += dur;
  };
  child(result.cold ? "cold_start" : "warm_start", result.start_latency_s);
  child(cache_tier ? "cache_read" : "data_in", inflight.transfer_in_s);
  child("compute", result.compute_s);
  child(kind == FnKind::kParameter ? "policy_broadcast"
        : cache_tier               ? "cache_write"
                                   : "data_out",
        inflight.transfer_out_s);
}

void ServerlessPlatform::ledger_invocation(const InFlight& inflight) const {
  auto* led = obs::ledger();
  if (!led) return;
  const InvokeResult& result = inflight.result;
  obs::LedgerEvent ev("invoke", result.end_time_s);
  ev.field("kind", fn_kind_name(inflight.kind))
      .field("lid", inflight.ledger_id)
      .field("container", inflight.container)
      .field("pool", inflight.kind == FnKind::kActor ? "actor" : "gpu")
      .field("submit", result.submit_time_s)
      .field("start", result.start_time_s)
      .field("queue_s", result.start_time_s - result.submit_time_s)
      .field("cold", result.cold)
      .field("start_latency_s", result.start_latency_s)
      .field("transfer_s", result.transfer_s)
      .field("compute_s", result.compute_s)
      .field("billed_s", result.billed_s)
      .field("cost_usd", result.cost_usd)
      .field("ok", result.ok);
  if (!result.ok) ev.field("error", fault::error_kind_name(result.error));
  if (inflight.straggler_mult > 1.0)
    ev.field("straggler_mult", inflight.straggler_mult);
  if (inflight.cache_delay_s > 0.0)
    ev.field("cache_delay_s", inflight.cache_delay_s);
  led->append(std::move(ev).finish());
}

const char* ServerlessPlatform::pool_for_name(FnKind kind) {
  return kind == FnKind::kActor ? "actors/" : "gpu/";
}

void ServerlessPlatform::dispatch(Pending pending) {
  const FnKind kind = pending.options.kind;
  auto& pool = pool_for(kind);
  auto acq = pool.acquire(engine_.now());
  STELLARIS_CHECK(acq.has_value());  // try_dispatch checked capacity

  InvokeResult result;
  result.submit_time_s = pending.submit_time;
  result.start_time_s = engine_.now();
  result.cold = acq->cold;
  result.start_latency_s = acq->start_latency_s;
  if (pending.options.on_start) pending.options.on_start(result.start_time_s);

  // Fault plane verdict: the injector draws from its own RNG stream, so a
  // null injector (or a no-fault verdict) leaves the latency-jitter stream
  // below bit-identical to a faultless build.
  fault::InvocationFault fate;
  if (injector_) fate = injector_->on_invocation(static_cast<int>(kind));

  double transfer_in = latency_.transfer_s(
      pending.options.tier, pending.options.payload_in_bytes);
  const double transfer_out = latency_.transfer_s(
      pending.options.tier, pending.options.payload_out_bytes);
  transfer_in += fate.cache_delay_s;
  result.transfer_s = transfer_in + transfer_out;
  result.compute_s =
      latency_.jittered(pending.options.compute_s, rng_) * fate.straggler_mult;

  const double full_duration = latency_.invoke_overhead_s +
                               result.start_latency_s + result.transfer_s +
                               result.compute_s;
  double duration = full_duration;
  if (fate.fail == fault::ErrorKind::kCrash) {
    // The container dies after completing fail_frac of its work; the time
    // consumed up to the crash is billed.
    duration = full_duration * fate.fail_frac;
    result.ok = false;
    result.error = fault::ErrorKind::kCrash;
  } else if (fate.fail == fault::ErrorKind::kCacheError) {
    // The function runs, but a cache operation fails: full duration burned.
    result.ok = false;
    result.error = fault::ErrorKind::kCacheError;
  }
  result.end_time_s = engine_.now() + duration;
  result.billed_s = duration;
  result.cost_usd = unit_price(kind) * result.billed_s;

  // Real-execution handoff: the body starts computing (inline or on a
  // worker thread) while virtual time advances toward the completion
  // event. Only attempts the fault plane lets SUCCEED spawn a body — a
  // crashed or cache-failed attempt never publishes results, so skipping
  // its compute keeps the work set identical across drivers. (Reclaims are
  // decided later; those attempts spawn, and their jobs are abandoned at
  // the kill.)
  sim::Driver::Job job;
  if (pending.options.spawn_body && fate.fail == fault::ErrorKind::kNone)
    job = pending.options.spawn_body(pending.options.attempt);

  m_invocations_[static_cast<int>(kind)]->add();
  m_queue_wait_s_->observe(result.start_time_s - result.submit_time_s);

  const std::uint64_t token = next_token_++;
  InFlight inflight;
  inflight.kind = kind;
  inflight.container = acq->container_id;
  inflight.result = result;
  inflight.cb = std::move(pending.cb);
  inflight.span_name = pending.options.span_name;
  inflight.tier = pending.options.tier;
  inflight.payload_in_bytes = pending.options.payload_in_bytes;
  inflight.payload_out_bytes = pending.options.payload_out_bytes;
  inflight.transfer_in_s = transfer_in;
  inflight.transfer_out_s = transfer_out;
  inflight.straggler_mult = fate.straggler_mult;
  inflight.cache_delay_s = fate.cache_delay_s;
  inflight.ledger_id = pending.options.ledger_id;
  inflight.job = std::move(job);
  inflight_.emplace(token, std::move(inflight));
  ++inflight_by_kind_[static_cast<int>(kind)];
  note_inflight(kind);
  engine_.schedule_after(duration, [this, token] { complete(token); });
}

void ServerlessPlatform::complete(std::uint64_t token) {
  auto it = inflight_.find(token);
  if (it == inflight_.end()) return;  // already failed by a VM reclamation
  InFlight inflight = std::move(it->second);
  inflight_.erase(it);
  const FnKind kind = inflight.kind;
  if (inflight.result.error == fault::ErrorKind::kCrash)
    pool_for(kind).kill(inflight.container);  // the container died with it
  else
    pool_for(kind).release(inflight.container, engine_.now());
  settle_inflight(inflight);
  try_dispatch(kind);
}

void ServerlessPlatform::settle_inflight(InFlight& inflight) {
  const FnKind kind = inflight.kind;
  costs_.record(kind, unit_price(kind), inflight.result.billed_s,
                !inflight.result.ok);
  if (kind != FnKind::kActor) learner_busy_s_ += inflight.result.billed_s;
  if (!inflight.result.ok) m_failed_invocations_->add();
  --inflight_by_kind_[static_cast<int>(kind)];
  note_inflight(kind);
  // Spans and ledger events are emitted here — at the invocation's actual
  // end (completion or kill) — never at dispatch with a predicted end, so
  // reclaimed invocations close exactly at the reclaim time.
  trace_invocation(inflight);
  ledger_invocation(inflight);
  if (auto* ts = obs::timeseries()) {
    ts->sample("platform.cost_usd", inflight.result.end_time_s,
               costs_.total_cost());
    if (!inflight.result.ok)
      ts->sample("platform.wasted_cost_usd", inflight.result.end_time_s,
                 costs_.total_wasted_cost());
  }
  // Merge point: a successful invocation's body must have finished before
  // the completion callback publishes its outputs. A failed one (reclaim)
  // abandons its job — the body self-completes on its worker and the
  // results are discarded, exactly as the killed container's output is.
  if (inflight.job) {
    if (inflight.result.ok) sim::Driver::join(inflight.job);
    inflight.job.reset();
  }
  if (inflight.cb) inflight.cb(inflight.result);
}

void ServerlessPlatform::reclaim_random_vm(Rng& fault_rng) {
  if (vm_hosts_.empty()) return;
  const VmHost& host = vm_hosts_[fault_rng.uniform_int(vm_hosts_.size())];
  const double now = engine_.now();

  // Detach every invocation running on the host from the in-flight table,
  // then kill every slot (busy and warm alike) — all BEFORE any completion
  // callback or dispatch pass runs. Settling victims one by one would let a
  // dispatch land fresh work on a just-freed slot this reclamation is about
  // to kill, stranding its in-flight entry on a dead (or re-booked) slot.
  std::vector<InFlight> failed;
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    const bool on_gpu_pool = it->second.kind != FnKind::kActor;
    if (on_gpu_pool == host.gpu_pool &&
        it->second.container >= host.first_slot &&
        it->second.container < host.first_slot + host.slot_count) {
      failed.push_back(std::move(it->second));
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  auto& pool = host.gpu_pool ? gpu_pool_ : actor_pool_;
  for (std::size_t i = 0; i < host.slot_count; ++i)
    pool.kill(host.first_slot + i);

  LOG_DEBUG << "reclaiming VM " << host.vm_name << " ("
            << (host.gpu_pool ? "gpu" : "actor") << " slots "
            << host.first_slot << "+" << host.slot_count << ") at t=" << now
            << ": killing " << failed.size() << " invocations";
  if (auto* tr = obs::trace())
    tr->instant(tr->track(trace_tag_ + "/faults"), "vm_reclaim", "fault", now,
                {{"vm", host.vm_name},
                 {"pool", host.gpu_pool ? "gpu" : "actor"},
                 {"killed_invocations", failed.size()}});
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("reclaim", now)
                    .field("vm", host.vm_name)
                    .field("pool", host.gpu_pool ? "gpu" : "actor")
                    .field("killed", failed.size())
                    .finish());

  // The host is fully dead; fail the victims, billed for the time consumed.
  for (InFlight& inflight : failed) {
    inflight.result.end_time_s = now;
    inflight.result.billed_s =
        std::max(0.0, now - inflight.result.start_time_s);
    inflight.result.cost_usd =
        unit_price(inflight.kind) * inflight.result.billed_s;
    inflight.result.ok = false;
    inflight.result.error = fault::ErrorKind::kVmReclaim;
    settle_inflight(inflight);
  }
  try_dispatch(host.gpu_pool ? FnKind::kLearner : FnKind::kActor);
}

std::size_t ServerlessPlatform::prewarm_learners(std::size_t n) {
  const std::size_t warmed = gpu_pool_.prewarm(n, engine_.now());
  LOG_DEBUG << "prewarmed " << warmed << "/" << n
            << " learner containers at t=" << engine_.now();
  return warmed;
}

std::size_t ServerlessPlatform::prewarm_actors(std::size_t n) {
  const std::size_t warmed = actor_pool_.prewarm(n, engine_.now());
  LOG_DEBUG << "prewarmed " << warmed << "/" << n
            << " actor containers at t=" << engine_.now();
  return warmed;
}

double ServerlessPlatform::gpu_utilization() const {
  const double elapsed = engine_.now();
  if (elapsed <= 0.0) return 0.0;
  const double slot_seconds =
      static_cast<double>(gpu_pool_.capacity()) * elapsed;
  return learner_busy_s_ / slot_seconds;
}

std::size_t ServerlessPlatform::queued(FnKind kind) const {
  return kind == FnKind::kActor ? actor_queue_.size() : gpu_queue_.size();
}

}  // namespace stellaris::serverless
