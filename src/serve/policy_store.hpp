// Versioned, immutable policy snapshots for the serving tier.
//
// The trainer publishes `serve/<tenant>/policy/v<N>` entries into the
// distributed cache (same wire format as training's policy/latest:
// core::encode_policy). The store reads them through PR 5's zero-copy path
// and keeps one DECODED snapshot per (tenant, version): the cache hands
// back a refcounted byte view, the store decodes it once, and every batch
// that serves that version shares the same immutable PolicySnapshot — a
// served version is decoded once per publication, not once per request.
//
// Engine-thread only (loads happen in the capture section of a dispatch;
// bodies receive a PolicyRef and never touch the store), so no mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/distributed_cache.hpp"
#include "obs/metrics.hpp"

namespace stellaris::serve {

/// Immutable decoded policy weights. Shared by reference between the store
/// and any number of in-flight bodies; never mutated after decode.
struct PolicySnapshot {
  std::vector<float> params;
  std::uint64_t version = 0;
};
using PolicyRef = std::shared_ptr<const PolicySnapshot>;

namespace keys {
/// "serve/<tenant>/policy/v<version>"
std::string policy(const std::string& tenant, std::uint64_t version);
}  // namespace keys

class PolicyStore {
 public:
  explicit PolicyStore(cache::DistributedCache& cache);

  /// Publish `params` as `version` of `tenant`'s policy. `cost_mult`
  /// scales the serving compute of this version (a canary that is really a
  /// heavier architecture behind the same API — the knob the rollback
  /// scenarios turn).
  void publish(const std::string& tenant, const std::vector<float>& params,
               std::uint64_t version, double cost_mult = 1.0);

  /// The decoded snapshot for (tenant, version). Decodes on first load and
  /// whenever the cache entry was republished; otherwise reuses the shared
  /// snapshot. Throws cache::CacheError if the version was never published.
  PolicyRef load(const std::string& tenant, std::uint64_t version);

  /// Serving-compute multiplier of a published version (1.0 by default).
  double cost_mult(const std::string& tenant, std::uint64_t version) const;

  std::uint64_t decodes() const { return decodes_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  struct Decoded {
    PolicyRef snap;
    std::uint64_t cache_version = 0;  ///< cache entry version at decode
    double cost_mult = 1.0;
  };

  cache::DistributedCache& cache_;
  std::map<std::string, Decoded> decoded_;  ///< by cache key
  std::uint64_t decodes_ = 0;
  std::uint64_t reuses_ = 0;
  obs::Counter* m_decodes_;
  obs::Counter* m_reuses_;
};

}  // namespace stellaris::serve
