#include "tools/report/ledger_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/ledger.hpp"
#include "util/mini_json.hpp"
#include "util/percentile.hpp"

namespace stellaris::report {

namespace {

using minijson::Value;

double num_or(const Value& obj, const std::string& key, double fallback) {
  if (!obj.has(key)) return fallback;
  const Value& v = obj.at(key);
  return v.kind == Value::Kind::kNumber ? v.num : fallback;
}

std::string str_or(const Value& obj, const std::string& key,
                   const std::string& fallback) {
  if (!obj.has(key)) return fallback;
  const Value& v = obj.at(key);
  return v.kind == Value::Kind::kString ? v.str : fallback;
}

// Nearest-rank quantiles come from the shared util/percentile.hpp helper
// (the same definition the serving tier's SLO monitor uses), so offline
// reports and the in-process serve metrics can never disagree on what a
// "p99" means.
using stellaris::nearest_rank_sorted;

struct InvokeRecord {
  std::uint64_t lid = 0;
  std::string kind;
  double submit = 0.0;
  double end = 0.0;
  double compute_s = 0.0;
  double billed_s = 0.0;
  double cost_usd = 0.0;
  bool ok = true;
  std::string error;
  double straggler_mult = 1.0;
};

/// Serving-tier per-tenant accumulator (serve_* events).
struct ServeTenantAcc {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  double cost_usd = 0.0;
  std::uint64_t canary_starts = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
  std::vector<double> latencies;
};

/// Per-run event accumulator, filled on the single pass over the lines.
struct RunAccumulator {
  std::size_t events = 0;
  double max_t = 0.0;
  double run_end_t = -1.0;
  std::vector<InvokeRecord> invokes;
  // Sweep deltas: time -> count change, merged per timestamp. std::map
  // keeps boundaries sorted.
  std::map<double, long> pending_traj_delta;
  std::map<double, long> grad_queue_delta;
  std::map<std::uint64_t, std::vector<double>> staleness_by_version;
  std::uint64_t retries = 0;
  std::uint64_t giveups = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t rounds = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
  std::uint64_t dropped_gradients = 0;
  std::uint64_t faults_injected = 0;
  // std::map keeps tenants in ascending-name order for the report.
  std::map<std::string, ServeTenantAcc> serve_tenants;
  std::uint64_t serve_scale_ups = 0;
  std::uint64_t serve_scale_downs = 0;
  std::uint64_t serve_peak_workers = 0;
};

StageBreakdown sweep_stages(const RunAccumulator& acc, double t_end) {
  // Interval deltas per in-flight category, then one priority sweep over
  // the union of all boundaries in [0, t_end].
  std::map<double, long> actor_d, learner_d, param_d;
  for (const auto& inv : acc.invokes) {
    std::map<double, long>* d = nullptr;
    if (inv.kind == "actor")
      d = &actor_d;
    else if (inv.kind == "learner")
      d = &learner_d;
    else if (inv.kind == "parameter")
      d = &param_d;
    if (!d) continue;
    // In-flight from submission (queue time is part of the stage: a queued
    // learner is still "learning" on the critical path) to settle.
    if (inv.end <= inv.submit) continue;
    (*d)[inv.submit] += 1;
    (*d)[inv.end] -= 1;
  }

  std::vector<double> bounds;
  bounds.push_back(0.0);
  bounds.push_back(t_end);
  auto add_bounds = [&](const std::map<double, long>& d) {
    for (const auto& [t, _] : d) bounds.push_back(t);
  };
  add_bounds(actor_d);
  add_bounds(learner_d);
  add_bounds(param_d);
  add_bounds(acc.pending_traj_delta);
  add_bounds(acc.grad_queue_delta);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  StageBreakdown out;
  out.total = t_end;
  long actors = 0, learners = 0, params = 0, trajs = 0, grads = 0;
  auto apply = [](std::map<double, long>& d, double t, long& count) {
    auto it = d.find(t);
    if (it != d.end()) count += it->second;
  };
  // Mutable copies for find() — the maps are small relative to the sweep.
  std::map<double, long> traj_d = acc.pending_traj_delta;
  std::map<double, long> grad_d = acc.grad_queue_delta;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double t = bounds[i];
    apply(actor_d, t, actors);
    apply(learner_d, t, learners);
    apply(param_d, t, params);
    apply(traj_d, t, trajs);
    apply(grad_d, t, grads);
    if (t >= t_end || i + 1 >= bounds.size()) break;
    const double hi = std::min(bounds[i + 1], t_end);
    const double lo = std::max(t, 0.0);
    const double len = hi - lo;
    if (len <= 0.0) continue;
    // Priority classification — exactly one stage per elementary interval.
    if (params > 0)
      out.aggregate += len;
    else if (grads > 0)
      out.aggregate_wait += len;
    else if (learners > 0)
      out.learn += len;
    else if (trajs > 0)
      out.cache_wait += len;
    else if (actors > 0)
      out.rollout += len;
    else
      out.idle += len;
  }
  return out;
}

RunReport finalize(std::uint64_t run, const RunAccumulator& acc,
                   const AnalysisOptions& opts) {
  RunReport rep;
  rep.run = run;
  rep.events = acc.events;
  rep.t_end = acc.run_end_t >= 0.0 ? acc.run_end_t : acc.max_t;
  rep.retries = acc.retries;
  rep.giveups = acc.giveups;
  rep.reclaims = acc.reclaims;
  rep.rounds = acc.rounds;
  rep.checkpoints = acc.checkpoints;
  rep.restores = acc.restores;
  rep.dropped_gradients = acc.dropped_gradients;
  rep.faults_injected = acc.faults_injected;

  rep.stages = sweep_stages(acc, rep.t_end);

  for (const auto& [version, samples] : acc.staleness_by_version) {
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    StalenessByVersion s;
    s.version = version;
    s.count = sorted.size();
    s.p50 = nearest_rank_sorted(sorted, 0.50);
    s.p99 = nearest_rank_sorted(sorted, 0.99);
    s.max = sorted.empty() ? 0.0 : sorted.back();
    double sum = 0.0;
    for (double v : sorted) sum += v;
    s.mean = sorted.empty() ? 0.0 : sum / static_cast<double>(sorted.size());
    rep.staleness.push_back(s);
  }

  // Stragglers: per-kind median compute time over all invocations, then
  // flag injected (straggler_mult) and statistical (> factor × median).
  std::map<std::string, std::vector<double>> compute_by_kind;
  for (const auto& inv : acc.invokes)
    compute_by_kind[inv.kind].push_back(inv.compute_s);
  std::map<std::string, double> median_by_kind;
  for (auto& [kind, xs] : compute_by_kind) {
    std::sort(xs.begin(), xs.end());
    median_by_kind[kind] = nearest_rank_sorted(xs, 0.50);
  }
  for (const auto& inv : acc.invokes) {
    const double median = median_by_kind[inv.kind];
    const double ratio = median > 0.0 ? inv.compute_s / median : 0.0;
    const bool injected = inv.straggler_mult > 1.0;
    const bool statistical =
        median > 0.0 && inv.compute_s > opts.straggler_factor * median;
    if (!injected && !statistical) continue;
    Straggler s;
    s.lid = inv.lid;
    s.kind = inv.kind;
    s.compute_s = inv.compute_s;
    s.ratio = ratio;
    s.injected = injected;
    rep.stragglers.push_back(s);
  }
  std::sort(rep.stragglers.begin(), rep.stragglers.end(),
            [](const Straggler& a, const Straggler& b) {
              if (a.ratio != b.ratio) return a.ratio > b.ratio;
              return a.lid < b.lid;
            });

  std::map<std::string, WastedCost> wasted;
  for (const auto& inv : acc.invokes) {
    ++rep.invocations;
    rep.total_cost_usd += inv.cost_usd;
    if (inv.ok) continue;
    ++rep.failed_invocations;
    rep.wasted_cost_usd += inv.cost_usd;
    rep.wasted_seconds += inv.billed_s;
    WastedCost& w = wasted[inv.error];
    w.error = inv.error;
    ++w.count;
    w.billed_s += inv.billed_s;
    w.cost_usd += inv.cost_usd;
  }
  for (const auto& [_, w] : wasted) rep.wasted.push_back(w);

  for (const auto& [name, st] : acc.serve_tenants) {
    ServeTenantSummary s;
    s.tenant = name;
    s.completed = st.completed;
    s.failed = st.failed;
    s.rejected = st.rejected;
    s.batches = st.batches;
    s.mean_batch =
        st.batches > 0
            ? static_cast<double>(st.completed + st.failed) /
                  static_cast<double>(st.batches)
            : 0.0;
    std::vector<double> sorted = st.latencies;
    std::sort(sorted.begin(), sorted.end());
    s.p50_s = nearest_rank_sorted(sorted, 0.50);
    s.p99_s = nearest_rank_sorted(sorted, 0.99);
    s.p999_s = nearest_rank_sorted(sorted, 0.999);
    s.cost_usd = st.cost_usd;
    s.canary_starts = st.canary_starts;
    s.promotions = st.promotions;
    s.rollbacks = st.rollbacks;
    rep.serve.tenants.push_back(std::move(s));
  }
  rep.serve.scale_ups = acc.serve_scale_ups;
  rep.serve.scale_downs = acc.serve_scale_downs;
  rep.serve.peak_workers = acc.serve_peak_workers;
  return rep;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string pct(double part, double total) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%",
                total > 0.0 ? 100.0 * part / total : 0.0);
  return buf;
}

}  // namespace

std::vector<RunReport> analyze_ledger(const std::vector<std::string>& lines,
                                      const AnalysisOptions& opts) {
  std::map<std::uint64_t, RunAccumulator> runs;
  std::size_t lineno = 0;
  for (const auto& line : lines) {
    ++lineno;
    if (line.empty() ||
        line.find_first_not_of(" \t\r\n") == std::string::npos)
      continue;
    Value ev;
    try {
      ev = minijson::parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("ledger line " + std::to_string(lineno) +
                               ": " + e.what());
    }
    if (!ev.is_object() || !ev.has("ev")) continue;
    const std::string type = str_or(ev, "ev", "");
    const auto run = static_cast<std::uint64_t>(num_or(ev, "run", 0));
    const double t = num_or(ev, "t", 0.0);
    RunAccumulator& acc = runs[run];
    ++acc.events;
    acc.max_t = std::max(acc.max_t, t);

    if (type == "run_end") {
      acc.run_end_t = t;
    } else if (type == "invoke") {
      InvokeRecord inv;
      inv.lid = static_cast<std::uint64_t>(num_or(ev, "lid", 0));
      inv.kind = str_or(ev, "kind", "");
      inv.submit = num_or(ev, "submit", t);
      inv.end = t;
      inv.compute_s = num_or(ev, "compute_s", 0.0);
      inv.billed_s = num_or(ev, "billed_s", 0.0);
      inv.cost_usd = num_or(ev, "cost_usd", 0.0);
      inv.ok = !ev.has("ok") || ev.at("ok").b;
      inv.error = str_or(ev, "error", "");
      inv.straggler_mult = num_or(ev, "straggler_mult", 1.0);
      acc.invokes.push_back(std::move(inv));
    } else if (type == "traj") {
      acc.pending_traj_delta[t] += 1;
    } else if (type == "learner_claim") {
      if (ev.has("trajs"))
        acc.pending_traj_delta[t] -=
            static_cast<long>(ev.at("trajs").arr.size());
    } else if (type == "traj_requeue") {
      if (ev.has("trajs"))
        acc.pending_traj_delta[t] +=
            static_cast<long>(ev.at("trajs").arr.size());
    } else if (type == "grad") {
      acc.grad_queue_delta[t] += 1;
    } else if (type == "agg_begin") {
      if (ev.has("group"))
        acc.grad_queue_delta[t] -=
            static_cast<long>(ev.at("group").arr.size());
    } else if (type == "agg_end") {
      const auto version =
          static_cast<std::uint64_t>(num_or(ev, "version", 0));
      auto& samples = acc.staleness_by_version[version];
      if (ev.has("staleness"))
        for (const auto& v : ev.at("staleness").arr)
          samples.push_back(v.number());
    } else if (type == "serve_batch") {
      ServeTenantAcc& st = acc.serve_tenants[str_or(ev, "tenant", "")];
      ++st.batches;
      st.cost_usd += num_or(ev, "cost_usd", 0.0);
      const auto n = static_cast<std::uint64_t>(num_or(ev, "n", 0));
      const bool ok = !ev.has("ok") || ev.at("ok").b;
      if (ok) {
        st.completed += n;
        if (ev.has("lat"))
          for (const auto& v : ev.at("lat").arr)
            st.latencies.push_back(v.number());
      } else {
        st.failed += n;
      }
    } else if (type == "serve_reject") {
      ++acc.serve_tenants[str_or(ev, "tenant", "")].rejected;
    } else if (type == "serve_start") {
      acc.serve_peak_workers =
          std::max(acc.serve_peak_workers,
                   static_cast<std::uint64_t>(num_or(ev, "workers", 0)));
    } else if (type == "serve_scale") {
      const double from = num_or(ev, "from", 0.0);
      const double to = num_or(ev, "to", 0.0);
      if (to > from)
        ++acc.serve_scale_ups;
      else if (to < from)
        ++acc.serve_scale_downs;
      acc.serve_peak_workers = std::max(
          acc.serve_peak_workers, static_cast<std::uint64_t>(to));
    } else if (type == "serve_rollout") {
      ServeTenantAcc& st = acc.serve_tenants[str_or(ev, "tenant", "")];
      const std::string action = str_or(ev, "action", "");
      if (action == "start")
        ++st.canary_starts;
      else if (action == "promote")
        ++st.promotions;
      else if (action == "rollback")
        ++st.rollbacks;
    } else if (type == "retry") {
      ++acc.retries;
    } else if (type == "giveup") {
      ++acc.giveups;
    } else if (type == "reclaim") {
      ++acc.reclaims;
    } else if (type == "round") {
      ++acc.rounds;
    } else if (type == "ckpt") {
      ++acc.checkpoints;
    } else if (type == "restore") {
      ++acc.restores;
      acc.dropped_gradients +=
          static_cast<std::uint64_t>(num_or(ev, "dropped", 0));
    } else if (type == "fault_injected") {
      ++acc.faults_injected;
    }
    // ledger-schema:ignore run_begin — run metadata (env/algo/config echo)
    // for humans reading the raw JSONL; the report aggregates nothing from
    // it, and stellaris_analyze's ledger-schema pass knows that on purpose.
  }

  std::vector<RunReport> reports;
  reports.reserve(runs.size());
  for (const auto& [run, acc] : runs)
    reports.push_back(finalize(run, acc, opts));
  return reports;
}

std::vector<RunReport> analyze_ledger_file(const std::string& path,
                                           const AnalysisOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open ledger: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return analyze_ledger(lines, opts);
}

void print_report(std::ostream& os, const RunReport& r) {
  os << "=== run " << r.run << " ===\n";
  os << "events: " << r.events << "   rounds: " << r.rounds
     << "   virtual run time: " << fmt(r.t_end) << " s\n";

  os << "\ncritical-path breakdown (priority: aggregate > aggregate_wait > "
        "learn > cache_wait > rollout > idle):\n";
  const StageBreakdown& s = r.stages;
  auto stage = [&](const char* name, double v) {
    os << "  " << name << std::string(16 - std::min<std::size_t>(
                                               16, std::string(name).size()),
                                      ' ')
       << fmt(v) << " s  " << pct(v, s.total) << "\n";
  };
  stage("rollout", s.rollout);
  stage("cache_wait", s.cache_wait);
  stage("learn", s.learn);
  stage("aggregate_wait", s.aggregate_wait);
  stage("aggregate", s.aggregate);
  stage("idle", s.idle);
  stage("total", s.sum());

  os << "\nstaleness per policy version (nearest-rank quantiles):\n";
  if (r.staleness.empty()) os << "  (no aggregations recorded)\n";
  for (const auto& v : r.staleness)
    os << "  v" << v.version << ": n=" << v.count << " p50=" << v.p50
       << " p99=" << v.p99 << " mean=" << fmt(v.mean) << " max=" << v.max
       << "\n";

  os << "\nstragglers (injected, or compute_s above the kind median):\n";
  if (r.stragglers.empty()) os << "  (none)\n";
  for (const auto& st : r.stragglers)
    os << "  lid=" << st.lid << " kind=" << st.kind
       << " compute_s=" << fmt(st.compute_s) << " ratio=" << fmt(st.ratio)
       << (st.injected ? " [injected]" : "") << "\n";

  if (!r.serve.tenants.empty()) {
    os << "\nserving tier (per tenant; nearest-rank latency quantiles):\n";
    for (const auto& t : r.serve.tenants) {
      os << "  " << t.tenant << ": completed=" << t.completed
         << " failed=" << t.failed << " rejected=" << t.rejected
         << " batches=" << t.batches << " mean_batch=" << fmt(t.mean_batch)
         << "\n    p50=" << fmt(t.p50_s) << " s p99=" << fmt(t.p99_s)
         << " s p999=" << fmt(t.p999_s) << " s cost=$" << fmt(t.cost_usd);
      if (t.canary_starts > 0)
        os << " canaries=" << t.canary_starts
           << " promotions=" << t.promotions
           << " rollbacks=" << t.rollbacks;
      os << "\n";
    }
    os << "  autoscaler: peak_workers=" << r.serve.peak_workers
       << " scale_ups=" << r.serve.scale_ups
       << " scale_downs=" << r.serve.scale_downs << "\n";
  }

  os << "\nwasted-cost attribution (failed invocations):\n";
  if (r.wasted.empty()) os << "  (none)\n";
  for (const auto& w : r.wasted)
    os << "  " << w.error << ": " << w.count << " invocations, "
       << fmt(w.billed_s) << " s billed, $" << fmt(w.cost_usd) << "\n";
  os << "  total: " << r.failed_invocations << "/" << r.invocations
     << " invocations failed, $" << fmt(r.wasted_cost_usd) << " of $"
     << fmt(r.total_cost_usd) << " wasted (" << r.retries << " retries, "
     << r.giveups << " giveups, " << r.reclaims << " reclaims)\n";

  if (r.checkpoints || r.restores || r.faults_injected)
    os << "\nrecovery: " << r.checkpoints << " checkpoints, " << r.restores
       << " restores (" << r.dropped_gradients << " gradients dropped), "
       << r.faults_injected << " faults injected\n";
}

void write_report_json(std::ostream& os, const RunReport& r) {
  using obs::LedgerEvent;
  const auto n = [](double v) { return LedgerEvent::render_number(v); };
  os << "{\"run\":" << r.run << ",\"events\":" << r.events
     << ",\"rounds\":" << r.rounds << ",\"t_end\":" << n(r.t_end)
     << ",\"stages\":{\"rollout\":" << n(r.stages.rollout)
     << ",\"cache_wait\":" << n(r.stages.cache_wait)
     << ",\"learn\":" << n(r.stages.learn)
     << ",\"aggregate_wait\":" << n(r.stages.aggregate_wait)
     << ",\"aggregate\":" << n(r.stages.aggregate)
     << ",\"idle\":" << n(r.stages.idle) << "}";
  os << ",\"staleness\":[";
  for (std::size_t i = 0; i < r.staleness.size(); ++i) {
    const auto& v = r.staleness[i];
    os << (i ? "," : "") << "{\"version\":" << v.version
       << ",\"count\":" << v.count << ",\"p50\":" << n(v.p50)
       << ",\"p99\":" << n(v.p99) << ",\"mean\":" << n(v.mean)
       << ",\"max\":" << n(v.max) << "}";
  }
  os << "],\"stragglers\":[";
  for (std::size_t i = 0; i < r.stragglers.size(); ++i) {
    const auto& st = r.stragglers[i];
    os << (i ? "," : "") << "{\"lid\":" << st.lid
       << ",\"kind\":" << LedgerEvent::quote(st.kind)
       << ",\"compute_s\":" << n(st.compute_s) << ",\"ratio\":" << n(st.ratio)
       << ",\"injected\":" << (st.injected ? "true" : "false") << "}";
  }
  os << "],\"wasted\":[";
  for (std::size_t i = 0; i < r.wasted.size(); ++i) {
    const auto& w = r.wasted[i];
    os << (i ? "," : "") << "{\"error\":" << LedgerEvent::quote(w.error)
       << ",\"count\":" << w.count << ",\"billed_s\":" << n(w.billed_s)
       << ",\"cost_usd\":" << n(w.cost_usd) << "}";
  }
  os << "],\"serve\":{\"tenants\":[";
  for (std::size_t i = 0; i < r.serve.tenants.size(); ++i) {
    const auto& t = r.serve.tenants[i];
    os << (i ? "," : "") << "{\"tenant\":" << LedgerEvent::quote(t.tenant)
       << ",\"completed\":" << t.completed << ",\"failed\":" << t.failed
       << ",\"rejected\":" << t.rejected << ",\"batches\":" << t.batches
       << ",\"mean_batch\":" << n(t.mean_batch)
       << ",\"p50_s\":" << n(t.p50_s) << ",\"p99_s\":" << n(t.p99_s)
       << ",\"p999_s\":" << n(t.p999_s) << ",\"cost_usd\":" << n(t.cost_usd)
       << ",\"canary_starts\":" << t.canary_starts
       << ",\"promotions\":" << t.promotions
       << ",\"rollbacks\":" << t.rollbacks << "}";
  }
  os << "],\"scale_ups\":" << r.serve.scale_ups
     << ",\"scale_downs\":" << r.serve.scale_downs
     << ",\"peak_workers\":" << r.serve.peak_workers << "}";
  os << ",\"invocations\":" << r.invocations
     << ",\"failed_invocations\":" << r.failed_invocations
     << ",\"total_cost_usd\":" << n(r.total_cost_usd)
     << ",\"wasted_cost_usd\":" << n(r.wasted_cost_usd)
     << ",\"wasted_seconds\":" << n(r.wasted_seconds)
     << ",\"retries\":" << r.retries << ",\"giveups\":" << r.giveups
     << ",\"reclaims\":" << r.reclaims
     << ",\"checkpoints\":" << r.checkpoints
     << ",\"restores\":" << r.restores
     << ",\"dropped_gradients\":" << r.dropped_gradients
     << ",\"faults_injected\":" << r.faults_injected << "}\n";
}

}  // namespace stellaris::report
