#include "rl/sample_batch.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellaris::rl {
namespace {

SampleBatch make_batch(std::size_t n, std::uint64_t version, float base) {
  SampleBatch b;
  b.action_kind = nn::ActionKind::kContinuous;
  b.policy_version = version;
  b.obs = Tensor({n, 2});
  b.actions_cont = Tensor({n, 1});
  b.rewards = Tensor({n});
  b.dones = Tensor({n});
  b.behaviour_log_probs = Tensor({n});
  b.values = Tensor({n});
  for (std::size_t i = 0; i < n; ++i) {
    b.obs.at(i, 0) = base + static_cast<float>(i);
    b.rewards[i] = base * 10 + static_cast<float>(i);
    b.values[i] = base;
  }
  b.bootstrap_value = base + 100.0f;
  return b;
}

TEST(SampleBatch, SerializeRoundTripContinuous) {
  SampleBatch b = make_batch(5, 3, 1.0f);
  b.episode_returns = {12.5, -3.0};
  b.segments.push_back({0, 1.0f});
  b.segments.push_back({3, 2.0f});
  SampleBatch c = SampleBatch::deserialize(b.serialize());
  EXPECT_EQ(c.action_kind, b.action_kind);
  EXPECT_EQ(c.policy_version, 3u);
  EXPECT_EQ(c.obs.vec(), b.obs.vec());
  EXPECT_EQ(c.rewards.vec(), b.rewards.vec());
  EXPECT_FLOAT_EQ(c.bootstrap_value, b.bootstrap_value);
  EXPECT_EQ(c.episode_returns, b.episode_returns);
  ASSERT_EQ(c.segments.size(), 2u);
  EXPECT_EQ(c.segments[1].start, 3u);
  EXPECT_FLOAT_EQ(c.segments[1].bootstrap, 2.0f);
}

TEST(SampleBatch, SerializeRoundTripDiscrete) {
  SampleBatch b;
  b.action_kind = nn::ActionKind::kDiscrete;
  b.obs = Tensor({2, 3});
  b.actions_disc = {1, 2};
  b.rewards = Tensor({2});
  b.dones = Tensor({2});
  b.behaviour_log_probs = Tensor({2});
  b.values = Tensor({2});
  SampleBatch c = SampleBatch::deserialize(b.serialize());
  EXPECT_EQ(c.action_kind, nn::ActionKind::kDiscrete);
  EXPECT_EQ(c.actions_disc, b.actions_disc);
}

TEST(SampleBatch, ConcatStacksFieldsInOrder) {
  SampleBatch a = make_batch(3, 1, 0.0f);
  SampleBatch b = make_batch(2, 1, 10.0f);
  SampleBatch c = SampleBatch::concat({a, b});
  EXPECT_EQ(c.size(), 5u);
  EXPECT_FLOAT_EQ(c.obs.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(c.obs.at(3, 0), 10.0f);
  EXPECT_FLOAT_EQ(c.rewards[4], 101.0f);
}

TEST(SampleBatch, ConcatRecordsSegmentSeams) {
  SampleBatch a = make_batch(3, 1, 0.0f);
  SampleBatch b = make_batch(2, 1, 10.0f);
  SampleBatch c = SampleBatch::concat({a, b});
  const auto views = c.segment_views();
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].start, 0u);
  EXPECT_EQ(views[0].end, 3u);
  EXPECT_FLOAT_EQ(views[0].bootstrap, 100.0f);   // a's bootstrap
  EXPECT_EQ(views[1].start, 3u);
  EXPECT_EQ(views[1].end, 5u);
  EXPECT_FLOAT_EQ(views[1].bootstrap, 110.0f);  // b's bootstrap
}

TEST(SampleBatch, SegmentViewsDefaultToWholeBatch) {
  SampleBatch a = make_batch(4, 0, 1.0f);
  const auto views = a.segment_views();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].start, 0u);
  EXPECT_EQ(views[0].end, 4u);
  EXPECT_FLOAT_EQ(views[0].bootstrap, 101.0f);
}

TEST(SampleBatch, ConcatOfConcatKeepsAllSeams) {
  SampleBatch a = make_batch(2, 1, 0.0f);
  SampleBatch b = make_batch(2, 1, 1.0f);
  SampleBatch ab = SampleBatch::concat({a, b});
  SampleBatch c = make_batch(2, 1, 2.0f);
  SampleBatch abc = SampleBatch::concat({ab, c});
  EXPECT_EQ(abc.segment_views().size(), 3u);
  EXPECT_EQ(abc.size(), 6u);
}

TEST(SampleBatch, ConcatMergesEpisodeReturns) {
  SampleBatch a = make_batch(2, 1, 0.0f);
  a.episode_returns = {1.0};
  SampleBatch b = make_batch(2, 1, 0.0f);
  b.episode_returns = {2.0, 3.0};
  SampleBatch c = SampleBatch::concat({a, b});
  EXPECT_EQ(c.episode_returns, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SampleBatch, ConcatMixedKindsThrows) {
  SampleBatch a = make_batch(2, 1, 0.0f);
  SampleBatch b;
  b.action_kind = nn::ActionKind::kDiscrete;
  EXPECT_THROW(SampleBatch::concat({a, b}), Error);
}

TEST(SampleBatch, ConcatEmptyListThrows) {
  EXPECT_THROW(SampleBatch::concat({}), Error);
}

TEST(SampleBatch, SelectExtractsRows) {
  SampleBatch a = make_batch(5, 2, 0.0f);
  a.advantages = Tensor({5}, {0, 1, 2, 3, 4});
  a.value_targets = Tensor({5}, {5, 6, 7, 8, 9});
  SampleBatch s = a.select({4, 0, 2});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FLOAT_EQ(s.obs.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(s.obs.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(s.advantages[2], 2.0f);
  EXPECT_FLOAT_EQ(s.value_targets[0], 9.0f);
}

TEST(SampleBatch, RoundTripThroughBytesPreservesAdvantages) {
  SampleBatch a = make_batch(3, 1, 0.0f);
  a.advantages = Tensor({3}, {1, 2, 3});
  a.value_targets = Tensor({3}, {4, 5, 6});
  SampleBatch c = SampleBatch::deserialize(a.serialize());
  EXPECT_TRUE(c.has_advantages());
  EXPECT_EQ(c.advantages.vec(), a.advantages.vec());
}

TEST(SampleBatch, DeserializeIntoMatchesDeserialize) {
  SampleBatch a = make_batch(4, 9, 2.0f);
  a.segments = {{0, 1.0f}, {2, -1.0f}};
  a.episode_returns = {12.5, -3.0};
  const auto bytes = a.serialize();

  const SampleBatch fresh = SampleBatch::deserialize(bytes);
  SampleBatch reused = make_batch(7, 1, 5.0f);  // stale, different shapes
  SampleBatch::deserialize_into(bytes, reused);

  EXPECT_EQ(reused.obs.vec(), fresh.obs.vec());
  EXPECT_EQ(reused.rewards.vec(), fresh.rewards.vec());
  EXPECT_EQ(reused.values.vec(), fresh.values.vec());
  EXPECT_EQ(reused.policy_version, 9u);
  EXPECT_EQ(reused.segments.size(), 2u);
  EXPECT_EQ(reused.segments[1].start, 2u);
  EXPECT_FLOAT_EQ(reused.segments[1].bootstrap, -1.0f);
  EXPECT_EQ(reused.episode_returns, fresh.episode_returns);
  EXPECT_EQ(reused.size(), 4u);  // stale rows from the old batch are gone
}

TEST(SampleBatch, DeserializeIntoIsAllocationFreeOnceWarm) {
  SampleBatch a = make_batch(6, 2, 1.0f);
  const auto bytes = a.serialize();
  SampleBatch out;
  SampleBatch::deserialize_into(bytes, out);  // warm-up sizes the buffers
  const std::uint64_t allocs_before = tensor_buffer_allocs();
  for (int i = 0; i < 10; ++i) SampleBatch::deserialize_into(bytes, out);
  EXPECT_EQ(tensor_buffer_allocs(), allocs_before);
  EXPECT_EQ(out.obs.vec(), a.obs.vec());
}

TEST(SampleBatch, SerializeIsSingleAllocationSized) {
  // The encoder precomputes the exact byte count; a second serialize of the
  // same batch must produce a buffer whose capacity equals its size.
  SampleBatch a = make_batch(5, 1, 0.5f);
  a.episode_returns = {1.0};
  const auto bytes = a.serialize();
  EXPECT_EQ(bytes.capacity(), bytes.size());
}

}  // namespace
}  // namespace stellaris::rl
