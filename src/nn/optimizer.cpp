#include "nn/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace stellaris::nn {

void FlatOptimizer::save_state(ByteWriter& w) const {
  w.put_string(name());
  w.put_f64(lr_);
  save_slots(w);
}

void FlatOptimizer::load_state(ByteReader& r) {
  const std::string stored = r.get_string();
  if (stored != name())
    throw Error("optimizer state mismatch: stream holds '" + stored +
                "' state, restoring into '" + name() + "'");
  lr_ = r.get_f64();
  load_slots(r);
}

namespace {
void check_sizes(const std::vector<float>& params,
                 std::span<const float> grad) {
  STELLARIS_CHECK_MSG(params.size() == grad.size(),
                      "optimizer size mismatch: params " << params.size()
                                                         << " grad "
                                                         << grad.size());
}
}  // namespace

SgdOptimizer::SgdOptimizer(double lr, double momentum)
    : FlatOptimizer(lr), momentum_(momentum) {}

void SgdOptimizer::step_with_lr(std::vector<float>& params,
                                std::span<const float> grad, double lr) {
  check_sizes(params, grad);
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= static_cast<float>(lr) * grad[i];
    return;
  }
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0f);
  const auto mu = static_cast<float>(momentum_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = mu * velocity_[i] + grad[i];
    params[i] -= static_cast<float>(lr) * velocity_[i];
  }
}

std::unique_ptr<FlatOptimizer> SgdOptimizer::clone() const {
  return std::make_unique<SgdOptimizer>(*this);
}

void SgdOptimizer::save_slots(ByteWriter& w) const {
  w.put_f64(momentum_);
  w.put_f32_vector(velocity_);
}

void SgdOptimizer::load_slots(ByteReader& r) {
  momentum_ = r.get_f64();
  velocity_ = r.get_f32_vector();
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double eps)
    : FlatOptimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void AdamOptimizer::step_with_lr(std::vector<float>& params,
                                 std::span<const float> grad, double lr) {
  check_sizes(params, grad);
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0f);
    v_.assign(params.size(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const double alpha = lr * std::sqrt(bc2) / bc1;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grad[i];
    m_[i] = static_cast<float>(beta1_ * m_[i] + (1.0 - beta1_) * g);
    v_[i] = static_cast<float>(beta2_ * v_[i] + (1.0 - beta2_) * g * g);
    params[i] -= static_cast<float>(alpha * m_[i] /
                                    (std::sqrt(static_cast<double>(v_[i])) +
                                     eps_));
  }
}

std::unique_ptr<FlatOptimizer> AdamOptimizer::clone() const {
  return std::make_unique<AdamOptimizer>(*this);
}

void AdamOptimizer::save_slots(ByteWriter& w) const {
  w.put_f64(beta1_);
  w.put_f64(beta2_);
  w.put_f64(eps_);
  w.put_u64(static_cast<std::uint64_t>(t_));
  w.put_f32_vector(m_);
  w.put_f32_vector(v_);
}

void AdamOptimizer::load_slots(ByteReader& r) {
  beta1_ = r.get_f64();
  beta2_ = r.get_f64();
  eps_ = r.get_f64();
  t_ = static_cast<std::size_t>(r.get_u64());
  m_ = r.get_f32_vector();
  v_ = r.get_f32_vector();
}

RmsPropOptimizer::RmsPropOptimizer(double lr, double decay, double eps)
    : FlatOptimizer(lr), decay_(decay), eps_(eps) {}

void RmsPropOptimizer::step_with_lr(std::vector<float>& params,
                                    std::span<const float> grad, double lr) {
  check_sizes(params, grad);
  if (sq_.size() != params.size()) sq_.assign(params.size(), 0.0f);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grad[i];
    sq_[i] = static_cast<float>(decay_ * sq_[i] + (1.0 - decay_) * g * g);
    params[i] -= static_cast<float>(
        lr * g / (std::sqrt(static_cast<double>(sq_[i])) + eps_));
  }
}

std::unique_ptr<FlatOptimizer> RmsPropOptimizer::clone() const {
  return std::make_unique<RmsPropOptimizer>(*this);
}

void RmsPropOptimizer::save_slots(ByteWriter& w) const {
  w.put_f64(decay_);
  w.put_f64(eps_);
  w.put_f32_vector(sq_);
}

void RmsPropOptimizer::load_slots(ByteReader& r) {
  decay_ = r.get_f64();
  eps_ = r.get_f64();
  sq_ = r.get_f32_vector();
}

std::unique_ptr<FlatOptimizer> make_optimizer(const std::string& name,
                                              double lr) {
  if (name == "sgd") return std::make_unique<SgdOptimizer>(lr);
  if (name == "adam") return std::make_unique<AdamOptimizer>(lr);
  if (name == "rmsprop") return std::make_unique<RmsPropOptimizer>(lr);
  throw ConfigError("unknown optimizer: " + name);
}

double clip_grad_norm(std::vector<float>& grad, double max_norm) {
  double sq = 0.0;
  for (float g : grad) sq += static_cast<double>(g) * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (float& g : grad) g *= scale;
  }
  return norm;
}

}  // namespace stellaris::nn
