// Table I: feature matrix of DRL training frameworks, reproduced verbatim
// from the paper, annotated with which module of this repo implements each
// system class.
#include "common.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  const auto obs_session =
      stellaris::bench::obs_session_from_args(argc, argv);
  stellaris::Table t({"Framework", "Async. Learners", "Scalable Actors",
                      "On-&Off-policy", "Serverless", "This repo"});
  t.row().add("Ray RLlib").add("no").add("no").add("yes").add("no")
      .add("baselines/sync_trainer (kRllibLike)");
  t.row().add("MSRL").add("no").add("no").add("yes").add("no")
      .add("(sync class, covered by kRllibLike)");
  t.row().add("SEED RL").add("no").add("no").add("yes").add("no")
      .add("(central-learner class, covered by kMinionsLike)");
  t.row().add("SRL").add("no").add("no").add("yes").add("no")
      .add("(sync class, covered by kRllibLike)");
  t.row().add("PQL").add("no").add("no").add("no").add("no")
      .add("(off-policy sync class)");
  t.row().add("MinionsRL").add("no").add("yes").add("no").add("yes")
      .add("baselines/sync_trainer (kMinionsLike)");
  t.row().add("Stellaris").add("yes").add("yes").add("yes").add("yes")
      .add("core/stellaris_trainer");
  t.emit("Table I — framework feature matrix", "table01_features.csv");
  return 0;
}
