// End-to-end integration tests of the Stellaris training loop on tiny
// configurations: metric schema, staleness control, aggregation-mode
// variants, cost accounting, and run-level determinism.
#include "core/stellaris_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellaris::core {
namespace {

TrainConfig tiny_config() {
  TrainConfig cfg;
  cfg.env_name = "Hopper";
  cfg.rounds = 12;
  cfg.num_actors = 4;
  cfg.horizon = 32;
  cfg.trajs_per_learner = 2;
  cfg.network_width = 8;
  cfg.eval_episodes = 1;
  cfg.seed = 7;
  return cfg;
}

TEST(Trainer, CompletesRequestedRounds) {
  auto result = run_training(tiny_config());
  EXPECT_EQ(result.rounds.size(), 12u);
  EXPECT_GT(result.total_time_s, 0.0);
  EXPECT_GT(result.total_cost_usd, 0.0);
  EXPECT_GT(result.learner_invocations, 0u);
}

TEST(Trainer, RoundRecordsAreWellFormed) {
  auto result = run_training(tiny_config());
  double prev_time = 0.0, prev_cost = 0.0;
  for (const auto& r : result.rounds) {
    EXPECT_GE(r.time_s, prev_time);           // virtual time monotone
    EXPECT_GE(r.cost_so_far_usd, prev_cost);  // cost monotone
    EXPECT_GT(r.group_size, 0u);
    EXPECT_GE(r.mean_staleness, 0.0);
    prev_time = r.time_s;
    prev_cost = r.cost_so_far_usd;
  }
  EXPECT_TRUE(result.rounds.back().evaluated);  // final round always evaluated
}

TEST(Trainer, SameSeedIsFullyDeterministic) {
  auto a = run_training(tiny_config());
  auto b = run_training(tiny_config());
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].time_s, b.rounds[i].time_s);
    EXPECT_DOUBLE_EQ(a.rounds[i].reward, b.rounds[i].reward);
    EXPECT_EQ(a.rounds[i].group_size, b.rounds[i].group_size);
  }
  EXPECT_DOUBLE_EQ(a.total_cost_usd, b.total_cost_usd);
}

TEST(Trainer, VersionGatedPullsDecodeOncePerPolicyVersion) {
  // Functions pull `policy/latest` at container start; the gate decodes the
  // blob only when the cache entry's version changed, so decode count stays
  // far below pull count and every repeat pull is a recorded reuse.
  auto& m = obs::MetricsRegistry::global();
  const std::uint64_t decodes_before =
      m.counter("trainer.policy_decodes").value();
  const std::uint64_t reuses_before =
      m.counter("trainer.policy_pull_reuses").value();
  auto result = run_training(tiny_config());
  const std::uint64_t decodes =
      m.counter("trainer.policy_decodes").value() - decodes_before;
  const std::uint64_t reuses =
      m.counter("trainer.policy_pull_reuses").value() - reuses_before;
  EXPECT_GT(decodes, 0u);
  EXPECT_GT(reuses, 0u);
  // Every learner pulled (actors pull too), yet most pulls hit the gate.
  EXPECT_GE(decodes + reuses, result.learner_invocations);
  // At most one decode per policy version published (rounds + initial).
  EXPECT_LE(decodes, result.rounds.size() + 1);
}

TEST(Trainer, DifferentSeedsDiverge) {
  auto cfg = tiny_config();
  auto a = run_training(cfg);
  cfg.seed = 8;
  auto b = run_training(cfg);
  EXPECT_NE(a.total_time_s, b.total_time_s);
}

TEST(Trainer, CalibratesDeltaMaxInRoundZero) {
  auto result = run_training(tiny_config());
  EXPECT_GE(result.delta_max, 1.0);  // at least the floor
  EXPECT_FALSE(result.staleness_samples.empty());
}

TEST(Trainer, StalenessRespectsThresholdAfterCalibration) {
  auto cfg = tiny_config();
  cfg.rounds = 20;
  auto result = run_training(cfg);
  for (const auto& r : result.rounds) {
    if (!std::isfinite(r.staleness_threshold)) continue;  // calibration
    EXPECT_LE(r.mean_staleness, r.staleness_threshold + 1e-9);
  }
}

TEST(Trainer, CostSplitsSumToTotal) {
  auto result = run_training(tiny_config());
  EXPECT_NEAR(result.total_cost_usd,
              result.learner_cost_usd + result.actor_cost_usd +
                  result.parameter_cost_usd,
              1e-9);
}

TEST(Trainer, PrewarmingAvoidsColdStarts) {
  auto cfg = tiny_config();
  cfg.prewarm = true;
  auto warm = run_training(cfg);
  EXPECT_EQ(warm.cold_starts, 0u);
  cfg.prewarm = false;
  auto cold = run_training(cfg);
  EXPECT_GT(cold.cold_starts, 0u);
}

TEST(Trainer, LatencyBreakdownCoversComponents) {
  auto result = run_training(tiny_config());
  const auto& b = result.breakdown;
  EXPECT_GT(b.actor_sample_s, 0.0);
  EXPECT_GT(b.learner_compute_s, 0.0);
  EXPECT_GT(b.aggregate_s, 0.0);
  EXPECT_GT(b.data_load_s, 0.0);
  EXPECT_GT(b.total(), 0.0);
  EXPECT_GE(b.overhead_fraction(), 0.0);
  EXPECT_LT(b.overhead_fraction(), 1.0);
}

TEST(Trainer, KlTrackingProducesPerUpdateValues) {
  auto result = run_training(tiny_config());
  EXPECT_EQ(result.update_kls.size(), result.rounds.size());
}

TEST(Trainer, MaxLearnersCapsParallelism) {
  auto cfg = tiny_config();
  cfg.max_learners = 1;
  auto result = run_training(cfg);  // must still complete
  EXPECT_EQ(result.rounds.size(), cfg.rounds);
}

TEST(Trainer, ImpactAlgorithmRuns) {
  auto cfg = tiny_config();
  cfg.algorithm = Algorithm::kImpact;
  auto result = run_training(cfg);
  EXPECT_EQ(result.rounds.size(), cfg.rounds);
  EXPECT_TRUE(std::isfinite(result.final_reward));
}

TEST(Trainer, DiscreteEnvironmentRuns) {
  auto cfg = tiny_config();
  cfg.env_name = "Qbert";
  cfg.rounds = 6;
  auto result = run_training(cfg);
  EXPECT_EQ(result.rounds.size(), 6u);
}

TEST(Trainer, InvalidConfigThrows) {
  auto cfg = tiny_config();
  cfg.num_actors = 0;
  EXPECT_THROW(run_training(cfg), ConfigError);
  cfg = tiny_config();
  cfg.decay_d = 1.5;
  EXPECT_THROW(run_training(cfg), ConfigError);
  cfg = tiny_config();
  cfg.env_name = "NoSuchEnv";
  EXPECT_THROW(run_training(cfg), ConfigError);
}

// The Fig. 11(a) ablation switch: every aggregation mode must run to
// completion on shared infrastructure.
class AggregationModes : public ::testing::TestWithParam<AggregationMode> {};

TEST_P(AggregationModes, TrainsToCompletion) {
  auto cfg = tiny_config();
  cfg.aggregation = GetParam();
  auto result = run_training(cfg);
  EXPECT_EQ(result.rounds.size(), cfg.rounds);
  EXPECT_TRUE(std::isfinite(result.final_reward));
  EXPECT_GT(result.total_cost_usd, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, AggregationModes,
                         ::testing::Values(AggregationMode::kStellaris,
                                           AggregationMode::kSoftsync,
                                           AggregationMode::kSsp,
                                           AggregationMode::kPureAsync));

TEST(Trainer, SoftsyncWaitsForConfiguredCount) {
  auto cfg = tiny_config();
  cfg.aggregation = AggregationMode::kSoftsync;
  cfg.softsync_count = 3;
  auto result = run_training(cfg);
  for (const auto& r : result.rounds) EXPECT_GE(r.group_size, 3u);
}

TEST(Trainer, PureAsyncAggregatesImmediately) {
  auto cfg = tiny_config();
  cfg.aggregation = AggregationMode::kPureAsync;
  auto result = run_training(cfg);
  // Immediate aggregation: groups are the gradients that arrived while the
  // parameter function was busy, typically one.
  double mean_group = 0.0;
  for (const auto& r : result.rounds) mean_group += double(r.group_size);
  mean_group /= double(result.rounds.size());
  EXPECT_LT(mean_group, 4.0);
}

TEST(Trainer, HpcClusterRuns) {
  auto cfg = tiny_config();
  cfg.cluster = serverless::ClusterSpec::hpc();
  cfg.rounds = 6;
  auto result = run_training(cfg);
  EXPECT_EQ(result.rounds.size(), 6u);
}

}  // namespace
}  // namespace stellaris::core
