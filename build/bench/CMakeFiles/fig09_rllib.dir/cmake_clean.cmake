file(REMOVE_RECURSE
  "CMakeFiles/fig09_rllib.dir/fig09_rllib.cpp.o"
  "CMakeFiles/fig09_rllib.dir/fig09_rllib.cpp.o.d"
  "fig09_rllib"
  "fig09_rllib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rllib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
