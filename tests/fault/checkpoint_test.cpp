// Checkpoint round-trips: the parameter-function recovery path must restore
// weights AND optimizer state bit-identically, or a post-restore run would
// silently diverge from an unfaulted one.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parameter_function.hpp"
#include "core/policy_io.hpp"
#include "nn/optimizer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace stellaris {
namespace {

std::vector<float> random_params(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> p(n);
  for (auto& x : p) x = static_cast<float>(rng.normal());
  return p;
}

TEST(CheckpointIo, EncodeDecodeRoundTripIsBitIdentical) {
  core::Checkpoint ckpt;
  ckpt.params = random_params(257, 3);
  ckpt.version = 12345;
  ckpt.applied_gradients = 678;
  ckpt.optimizer_state = {0x00, 0xff, 0x7f, 0x80, 0x01};
  const auto bytes = core::encode_checkpoint(ckpt);
  const auto back = core::decode_checkpoint(bytes);
  EXPECT_EQ(back.params, ckpt.params);  // exact float equality
  EXPECT_EQ(back.version, ckpt.version);
  EXPECT_EQ(back.applied_gradients, ckpt.applied_gradients);
  EXPECT_EQ(back.optimizer_state, ckpt.optimizer_state);
}

template <typename Opt, typename... Args>
void check_optimizer_round_trip(Args... args) {
  // Drive one optimizer a few steps, snapshot it, drive a twin restored
  // from the snapshot, and demand bit-identical trajectories.
  Opt original(args...);
  auto params = random_params(64, 7);
  Rng rng(9);
  auto random_grad = [&rng] {
    std::vector<float> g(64);
    for (auto& x : g) x = static_cast<float>(rng.normal());
    return g;
  };
  for (int i = 0; i < 5; ++i) original.step(params, random_grad());

  ByteWriter w;
  original.save_state(w);
  Opt restored(args...);
  ByteReader r(w.bytes());
  restored.load_state(r);

  auto params_a = params, params_b = params;
  for (int i = 0; i < 5; ++i) {
    const auto g = random_grad();
    original.step(params_a, g);
    restored.step(params_b, g);
    ASSERT_EQ(params_a, params_b);  // exact float equality, every step
  }
}

TEST(CheckpointIo, SgdStateRoundTrips) {
  check_optimizer_round_trip<nn::SgdOptimizer>(0.01, 0.9);
}

TEST(CheckpointIo, AdamStateRoundTrips) {
  check_optimizer_round_trip<nn::AdamOptimizer>(0.001, 0.9, 0.999, 1e-8);
}

TEST(CheckpointIo, RmsPropStateRoundTrips) {
  check_optimizer_round_trip<nn::RmsPropOptimizer>(0.01, 0.99, 1e-8);
}

TEST(CheckpointIo, LoadRejectsWrongOptimizerKind) {
  nn::AdamOptimizer adam(0.001);
  ByteWriter w;
  adam.save_state(w);
  nn::SgdOptimizer sgd(0.001);
  ByteReader r(w.bytes());
  EXPECT_THROW(sgd.load_state(r), Error);
}

TEST(CheckpointIo, ParameterFunctionRestoresExactTrainingState) {
  core::ParameterFunction::Config cfg;
  cfg.optimizer = "adam";
  auto make_item = [](std::vector<float> grad, std::uint64_t pulled) {
    core::GradientQueue::Item it;
    it.msg.grad = std::move(grad);
    it.msg.pulled_version = pulled;
    it.msg.mean_ratio = 1.0;
    return it;
  };

  core::ParameterFunction pf(random_params(32, 1), cfg);
  Rng rng(4);
  auto random_grad = [&rng] {
    std::vector<float> g(32);
    for (auto& x : g) x = static_cast<float>(rng.normal());
    return g;
  };
  for (int i = 0; i < 4; ++i)
    pf.aggregate({make_item(random_grad(), pf.version())});

  // Snapshot, then let the "original" continue while a twin restores.
  const core::Checkpoint ckpt = pf.serialize_state();
  core::ParameterFunction twin(random_params(32, 99), cfg);  // junk init
  twin.restore_state(ckpt);
  EXPECT_EQ(twin.version(), pf.version());
  EXPECT_EQ(twin.params(), pf.params());

  for (int i = 0; i < 4; ++i) {
    const auto g = random_grad();
    pf.aggregate({make_item(g, pf.version())});
    twin.aggregate({make_item(g, twin.version())});
    ASSERT_EQ(pf.params(), twin.params());  // optimizer state matched too
  }
}

TEST(CheckpointIo, ParameterFunctionRejectsWrongDimension) {
  core::ParameterFunction::Config cfg;
  core::ParameterFunction pf(random_params(16, 1), cfg);
  core::Checkpoint ckpt = pf.serialize_state();
  ckpt.params.resize(8);
  EXPECT_THROW(pf.restore_state(ckpt), Error);
}

TEST(CheckpointIo, RestoreKeepsVersionMonotone) {
  // aggregate() asserts version_ >= pulled_version of incoming gradients;
  // restoring an OLDER checkpoint must not rewind the public version.
  core::ParameterFunction::Config cfg;
  core::ParameterFunction pf(random_params(8, 1), cfg);
  auto item = [&] {
    core::GradientQueue::Item it;
    it.msg.grad = std::vector<float>(8, 0.1f);
    it.msg.pulled_version = pf.version();
    it.msg.mean_ratio = 1.0;
    return it;
  };
  pf.aggregate({item()});
  const auto old_ckpt = pf.serialize_state();  // version 1
  pf.aggregate({item()});
  pf.aggregate({item()});
  ASSERT_EQ(pf.version(), 3u);
  pf.restore_state(old_ckpt);
  EXPECT_EQ(pf.version(), 3u);  // weights rewind; the counter does not
}

}  // namespace
}  // namespace stellaris
