file(REMOVE_RECURSE
  "CMakeFiles/stellaris_rl.dir/actor.cpp.o"
  "CMakeFiles/stellaris_rl.dir/actor.cpp.o.d"
  "CMakeFiles/stellaris_rl.dir/gae.cpp.o"
  "CMakeFiles/stellaris_rl.dir/gae.cpp.o.d"
  "CMakeFiles/stellaris_rl.dir/impact.cpp.o"
  "CMakeFiles/stellaris_rl.dir/impact.cpp.o.d"
  "CMakeFiles/stellaris_rl.dir/ppo.cpp.o"
  "CMakeFiles/stellaris_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/stellaris_rl.dir/replay_buffer.cpp.o"
  "CMakeFiles/stellaris_rl.dir/replay_buffer.cpp.o.d"
  "CMakeFiles/stellaris_rl.dir/sample_batch.cpp.o"
  "CMakeFiles/stellaris_rl.dir/sample_batch.cpp.o.d"
  "CMakeFiles/stellaris_rl.dir/vtrace.cpp.o"
  "CMakeFiles/stellaris_rl.dir/vtrace.cpp.o.d"
  "libstellaris_rl.a"
  "libstellaris_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
