// Bit-exactness and semantics tests for the blocked kernel library.
//
// The blocked GEMMs promise results bit-identical to the retained seed
// kernels (ops::reference) at any thread count: they tile only i/j and
// accumulate each output element's k terms in ascending order from 0.
// These tests pin that contract across tile-interior, tile-edge, prime,
// and degenerate shapes, plus the IEEE semantics (NaN propagation) that
// the seed's zero-skip branch used to violate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace stellaris {
namespace {

// Bitwise tensor equality: shape and every float's bit pattern.
void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  if (a.numel() == 0) return;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.numel() * sizeof(float)),
            0)
      << what;
}

struct GemmDims {
  std::size_t m, k, n;
};

class BlockedVsReference : public ::testing::TestWithParam<GemmDims> {};

TEST_P(BlockedVsReference, AllVariantsBitIdentical) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000003 + k * 1009 + n);
  const Tensor a_nn = Tensor::randn({m, k}, rng);
  const Tensor b_nn = Tensor::randn({k, n}, rng);
  expect_bit_identical(ops::matmul(a_nn, b_nn),
                       ops::reference::matmul(a_nn, b_nn), "matmul");

  const Tensor a_tn = Tensor::randn({k, m}, rng);
  expect_bit_identical(ops::matmul_tn(a_tn, b_nn),
                       ops::reference::matmul_tn(a_tn, b_nn), "matmul_tn");

  const Tensor b_nt = Tensor::randn({n, k}, rng);
  expect_bit_identical(ops::matmul_nt(a_nn, b_nt),
                       ops::reference::matmul_nt(a_nn, b_nt), "matmul_nt");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedVsReference,
    ::testing::Values(GemmDims{1, 1, 1},            // single element
                      GemmDims{7, 11, 13},          // primes < one tile
                      GemmDims{67, 43, 129},        // primes across tiles
                      GemmDims{4, 8, 48},           // exactly one full tile row
                      GemmDims{64, 64, 64},         // 48+16 column split
                      GemmDims{128, 32, 128},       // 48+48+32 column split
                      GemmDims{5, 3, 17},           // scalar-tail columns
                      GemmDims{130, 7, 250},        // multiple row panels
                      GemmDims{0, 4, 5},            // zero rows
                      GemmDims{4, 0, 5},            // zero inner dim
                      GemmDims{4, 5, 0}));          // zero columns

TEST(BlockedGemm, ZeroInnerDimYieldsZeros) {
  // k = 0 means every output element is an empty sum: exactly 0.0f.
  const Tensor c = ops::matmul(Tensor({3, 0}), Tensor({0, 2}));
  ASSERT_EQ(c.shape(), (Shape{3, 2}));
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0.0f);
}

TEST(BlockedGemm, ThreadedBitIdenticalToSerial) {
  Rng rng(7);
  const Tensor a = Tensor::randn({190, 67}, rng);
  const Tensor b = Tensor::randn({67, 143}, rng);
  const Tensor a_t = Tensor::randn({67, 190}, rng);
  const Tensor b_t = Tensor::randn({143, 67}, rng);

  ops::set_kernel_threads(1);
  const Tensor serial_nn = ops::matmul(a, b);
  const Tensor serial_tn = ops::matmul_tn(a_t, b);
  const Tensor serial_nt = ops::matmul_nt(a, b_t);

  ops::set_kernel_threads(4);
  const std::uint64_t saved_min = ops::kernel_parallel_min_flops();
  ops::set_kernel_parallel_min_flops(0);  // force the parallel path
  const Tensor par_nn = ops::matmul(a, b);
  const Tensor par_tn = ops::matmul_tn(a_t, b);
  const Tensor par_nt = ops::matmul_nt(a, b_t);
  ops::set_kernel_parallel_min_flops(saved_min);
  ops::set_kernel_threads(1);

  expect_bit_identical(par_nn, serial_nn, "nn threaded");
  expect_bit_identical(par_tn, serial_tn, "tn threaded");
  expect_bit_identical(par_nt, serial_nt, "nt threaded");
}

TEST(BlockedGemm, IntoVariantsMatchValueVariants) {
  Rng rng(9);
  const Tensor a = Tensor::randn({33, 21}, rng);
  const Tensor b = Tensor::randn({21, 50}, rng);
  Tensor c({5});  // wrong shape and size: _into must reshape it
  ops::matmul_into(c, a, b);
  expect_bit_identical(c, ops::matmul(a, b), "matmul_into");

  // Reusing the (now bigger) buffer must not change results.
  const Tensor a2 = Tensor::randn({4, 21}, rng);
  ops::matmul_into(c, a2, b);
  expect_bit_identical(c, ops::matmul(a2, b), "matmul_into reuse");
}

TEST(BlockedGemm, IntoRejectsAliasedOutput) {
  Tensor a = Tensor::ones({4, 4});
  Tensor b = Tensor::ones({4, 4});
  EXPECT_THROW(ops::matmul_into(a, a, b), Error);
  EXPECT_THROW(ops::matmul_into(b, a, b), Error);
  EXPECT_THROW(ops::matmul_tn_into(a, a, b), Error);
  EXPECT_THROW(ops::matmul_nt_into(b, a, b), Error);
}

// The seed kernels skipped k terms where A's element was exactly 0.0f. IEEE
// requires 0·NaN = NaN and 0·Inf = NaN, so a NaN in the *other* operand must
// poison the output even when multiplied by zero. Satellite regression: all
// three variants propagate NaN.
TEST(GemmIeeeSemantics, NanInAPropagatesThroughZeroB) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a({2, 3});
  a[4] = nan;  // a(1,1)
  const Tensor b({3, 2});  // all zeros

  const Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(1, 0))) << "matmul row with NaN";
  EXPECT_TRUE(std::isnan(c.at(1, 1)));
  EXPECT_EQ(c.at(0, 0), 0.0f) << "clean row stays clean";

  // tn: A is (k, m) = (3, 2); poison a(1, 1) -> output row 1.
  Tensor at({3, 2});
  at[3] = nan;
  const Tensor ct = ops::matmul_tn(at, Tensor({3, 2}));
  EXPECT_TRUE(std::isnan(ct.at(1, 0))) << "matmul_tn";
  EXPECT_EQ(ct.at(0, 0), 0.0f);

  // nt: B is (n, k); a NaN multiplied by B's zeros.
  const Tensor cn = ops::matmul_nt(a, Tensor({2, 3}));
  EXPECT_TRUE(std::isnan(cn.at(1, 0))) << "matmul_nt";
  EXPECT_EQ(cn.at(0, 0), 0.0f);
}

TEST(GemmIeeeSemantics, ReferenceKernelsAlsoPropagate) {
  // The retained oracle must share the fixed semantics, or the bit-compare
  // tests above would be vacuous on poisoned inputs.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a({1, 2});
  a[0] = nan;
  EXPECT_TRUE(std::isnan(ops::reference::matmul(a, Tensor({2, 1}))[0]));
  Tensor at({2, 1});
  at[0] = nan;
  EXPECT_TRUE(std::isnan(ops::reference::matmul_tn(at, Tensor({2, 1}))[0]));
  EXPECT_TRUE(std::isnan(ops::reference::matmul_nt(a, Tensor({1, 2}))[0]));
}

// -- elementwise _into kernels ----------------------------------------------

TEST(ElementwiseInto, MatchesReference) {
  Rng rng(11);
  const Tensor x = Tensor::randn({37, 53}, rng);
  Tensor out;
  ops::tanh_forward_into(out, x);
  expect_bit_identical(out, ops::reference::tanh_forward(x), "tanh");
  ops::relu_forward_into(out, x);
  expect_bit_identical(out, ops::reference::relu_forward(x), "relu");
  ops::softmax_rows_into(out, x);
  expect_bit_identical(out, ops::reference::softmax_rows(x), "softmax");
  ops::log_softmax_rows_into(out, x);
  expect_bit_identical(out, ops::reference::log_softmax_rows(x),
                       "log_softmax");
  ops::sum_rows_into(out, x);
  expect_bit_identical(out, ops::reference::sum_rows(x), "sum_rows");
}

TEST(ElementwiseInto, OutputMayAliasInput) {
  Rng rng(13);
  Tensor x = Tensor::randn({8, 9}, rng);
  const Tensor expected = ops::reference::softmax_rows(x);
  ops::softmax_rows_into(x, x);  // in place
  expect_bit_identical(x, expected, "softmax in place");

  Tensor y = Tensor::randn({40}, rng);
  const Tensor expected_tanh = ops::reference::tanh_forward(y);
  ops::tanh_forward_into(y, y);
  expect_bit_identical(y, expected_tanh, "tanh in place");
}

TEST(ElementwiseInto, SoftmaxHandlesZeroColumns) {
  Tensor lp;
  ops::softmax_rows_into(lp, Tensor({3, 0}));
  EXPECT_EQ(lp.shape(), (Shape{3, 0}));
  ops::log_softmax_rows_into(lp, Tensor({3, 0}));
  EXPECT_EQ(lp.shape(), (Shape{3, 0}));
}

TEST(ElementwiseInto, TanhParallelBitIdentical) {
  Rng rng(17);
  const Tensor x = Tensor::randn({600, 80}, rng);  // above parallel cutoff
  ops::set_kernel_threads(1);
  Tensor serial;
  ops::tanh_forward_into(serial, x);
  ops::set_kernel_threads(3);
  Tensor parallel;
  ops::tanh_forward_into(parallel, x);
  ops::set_kernel_threads(1);
  expect_bit_identical(parallel, serial, "tanh threaded");
}

// -- scratch pool ------------------------------------------------------------

TEST(ScratchPool, ReusesReturnedBuffers) {
  ops::ScratchPool pool;
  const float* p0 = nullptr;
  {
    auto lease = pool.take({16, 16});
    p0 = lease->data().data();
    EXPECT_EQ(lease->shape(), (Shape{16, 16}));
  }
  EXPECT_EQ(pool.pooled(), 1u);
  {
    // Smaller request: served from the same buffer, no new allocation.
    auto lease = pool.take({4, 4});
    EXPECT_EQ(lease->data().data(), p0);
    EXPECT_EQ(pool.pooled(), 0u);
  }
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(ScratchPool, PrefersSmallestSufficientBuffer) {
  ops::ScratchPool pool;
  const float* big = nullptr;
  const float* small = nullptr;
  {
    auto a = pool.take({100});
    auto b = pool.take({10});
    big = a->data().data();
    small = b->data().data();
  }
  EXPECT_EQ(pool.pooled(), 2u);
  {
    auto lease = pool.take({8});
    EXPECT_EQ(lease->data().data(), small)
        << "an oversized buffer must not be pinned to a small request";
  }
  {
    auto lease = pool.take({64});
    EXPECT_EQ(lease->data().data(), big);
  }
}

TEST(ScratchPool, KernelsReachSteadyStateWithoutAllocating) {
  Rng rng(23);
  const Tensor a = Tensor::randn({40, 30}, rng);
  const Tensor b = Tensor::randn({40, 50}, rng);
  Tensor c;
  ops::matmul_tn_into(c, a, b);  // warm-up populates the thread-local pool
  const std::uint64_t before = tensor_buffer_allocs();
  for (int i = 0; i < 5; ++i) ops::matmul_tn_into(c, a, b);
  EXPECT_EQ(tensor_buffer_allocs(), before)
      << "steady-state matmul_tn must reuse its pack scratch";
}

// -- kernel config ------------------------------------------------------------

TEST(KernelConfig, ThreadSettingRoundTrips) {
  const std::size_t saved = ops::kernel_threads();
  ops::set_kernel_threads(3);
  EXPECT_EQ(ops::kernel_threads(), 3u);
  ops::set_kernel_threads(0);  // 0 clamps to 1 (serial)
  EXPECT_EQ(ops::kernel_threads(), 1u);
  ops::set_kernel_threads(saved == 0 ? 1 : saved);
}

}  // namespace
}  // namespace stellaris
