file(REMOVE_RECURSE
  "CMakeFiles/stellaris_tensor.dir/ops.cpp.o"
  "CMakeFiles/stellaris_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/stellaris_tensor.dir/tensor.cpp.o"
  "CMakeFiles/stellaris_tensor.dir/tensor.cpp.o.d"
  "libstellaris_tensor.a"
  "libstellaris_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
