#include "rl/vtrace.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace stellaris::rl {

VtraceResult compute_vtrace(const Tensor& behaviour_logp,
                            const Tensor& target_logp, const Tensor& rewards,
                            const Tensor& dones, const Tensor& values,
                            float bootstrap_value, double gamma,
                            double rho_bar, double c_bar) {
  const std::size_t n = rewards.numel();
  STELLARIS_CHECK_MSG(n > 0 && behaviour_logp.numel() == n &&
                          target_logp.numel() == n && dones.numel() == n &&
                          values.numel() == n,
                      "vtrace input sizes inconsistent");

  VtraceResult out{Tensor({n}), Tensor({n})};
  // Backward pass accumulating vs_{t+1} − V_{t+1}.
  double vs_minus_v_next = 0.0;
  double v_next = bootstrap_value;
  double vs_next = bootstrap_value;
  for (std::size_t t = n; t-- > 0;) {
    const double not_done = dones[t] > 0.5f ? 0.0 : 1.0;
    const double log_ratio =
        std::clamp(static_cast<double>(target_logp[t]) -
                       static_cast<double>(behaviour_logp[t]),
                   -20.0, 20.0);
    const double w = std::exp(log_ratio);
    const double rho = std::min(rho_bar, w);
    const double c = std::min(c_bar, w);

    const double delta =
        rho * (rewards[t] + gamma * v_next * not_done - values[t]);
    const double vs =
        values[t] + delta + gamma * c * not_done * vs_minus_v_next;
    out.vs[t] = static_cast<float>(vs);
    out.pg_advantages[t] = static_cast<float>(
        rho * (rewards[t] + gamma * vs_next * not_done - values[t]));

    vs_next = vs;
    v_next = values[t];
    vs_minus_v_next = vs - values[t];
  }
  return out;
}

}  // namespace stellaris::rl
