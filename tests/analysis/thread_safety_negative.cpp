// Known-bad snippet for the negative-compile ctest.
//
// This file is NOT part of any test binary. Under Clang, the
// `thread_safety_negative_compile` ctest compiles it with
// -Werror=thread-safety and asserts the compile FAILS (WILL_FAIL): the
// function below touches a GUARDED_BY field without its mutex and calls a
// REQUIRES function unlocked. If the capability macros ever silently
// degrade to no-ops under Clang (a broken #if, a renamed attribute), this
// file starts compiling and the ctest goes red.
//
// A companion `thread_safety_negative_baseline` ctest compiles the same
// file WITHOUT the -Werror promotion and asserts success, proving the
// failure above is attributable to the analysis, not to a syntax error.

#include "util/annotated_mutex.hpp"

namespace {

class BadCounter {
 public:
  // BAD: writes value_ without holding mu_.
  void increment_unlocked() { ++value_; }

  // BAD: calls a REQUIRES(mu_) helper without the lock.
  long read_unlocked() const { return locked_value(); }

 private:
  long locked_value() const REQUIRES(mu_) { return value_; }

  mutable stellaris::Mutex mu_{"test/bad-counter", 1};
  long value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int thread_safety_negative_entry() {
  BadCounter c;
  c.increment_unlocked();
  return static_cast<int>(c.read_unlocked());
}
