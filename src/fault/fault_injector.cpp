#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::fault {

FaultInjector::FaultInjector(sim::Engine& engine, FaultPlan plan)
    : engine_(engine),
      plan_(std::move(plan)),
      rng_(plan_.config.seed),
      consumed_(plan_.schedule.size(), false) {
  plan_.validate();
  auto& m = obs::metrics();
  m_crashes_ = &m.counter("fault.crashes_injected");
  m_stragglers_ = &m.counter("fault.stragglers_injected");
  m_cache_faults_ = &m.counter("fault.cache_faults_injected");
  m_cache_delays_ = &m.counter("fault.cache_delays_injected");
  m_reclaims_ = &m.counter("fault.vm_reclaims");
}

InvocationFault FaultInjector::on_invocation(int fn_kind) {
  InvocationFault fault;

  // Scripted one-shot traps: every armed entry at or before `now` whose
  // kind targets invocations and whose fn_kind filter matches fires once,
  // in schedule order. Traps compose (a straggler trap and a crash trap can
  // both hit the same invocation).
  const double now = engine_.now();
  for (std::size_t i = 0; i < plan_.schedule.size(); ++i) {
    const ScheduledFault& f = plan_.schedule[i];
    if (consumed_[i] || f.kind == FaultKind::kVmReclaim || f.time_s > now)
      continue;
    if (f.fn_kind >= 0 && f.fn_kind != fn_kind) continue;
    // A fail-trap kills exactly one invocation; once this invocation is
    // doomed, later fail-traps stay armed for the NEXT matching one (so
    // "crash it N times" is N traps, enough to defeat N-1 retries).
    if ((f.kind == FaultKind::kCrash || f.kind == FaultKind::kCacheFail) &&
        fault.fail != ErrorKind::kNone)
      continue;
    consumed_[i] = true;
    switch (f.kind) {
      case FaultKind::kCrash:
        fault.fail = ErrorKind::kCrash;
        fault.fail_frac = f.magnitude > 0.0 ? f.magnitude : 0.5;
        break;
      case FaultKind::kStraggler:
        fault.straggler_mult *= std::max(f.magnitude, 1.0);
        break;
      case FaultKind::kCacheFail:
        fault.fail = ErrorKind::kCacheError;
        break;
      case FaultKind::kCacheDelay:
        fault.cache_delay_s += std::max(f.magnitude, 0.0);
        break;
      case FaultKind::kVmReclaim:
        break;  // handled by the arrival process
    }
  }

  // Probabilistic model. The draw order is fixed (crash, straggler, cache
  // fail, cache delay) and each probability only consumes randomness when
  // it is non-zero, so enabling one fault class never shifts another's
  // stream relative to a plan without it... as long as the enabled set is
  // part of the plan, which it is: determinism is per (plan, seed).
  const FaultConfig& c = plan_.config;
  if (c.crash_prob > 0.0 && fault.fail == ErrorKind::kNone &&
      rng_.bernoulli(c.crash_prob)) {
    fault.fail = ErrorKind::kCrash;
    fault.fail_frac = rng_.uniform(c.crash_frac_lo, c.crash_frac_hi);
  }
  if (c.straggler_prob > 0.0 && rng_.bernoulli(c.straggler_prob))
    fault.straggler_mult *= c.straggler_mult;
  if (c.cache_fail_prob > 0.0 && fault.fail == ErrorKind::kNone &&
      rng_.bernoulli(c.cache_fail_prob))
    fault.fail = ErrorKind::kCacheError;
  if (c.cache_delay_prob > 0.0 && rng_.bernoulli(c.cache_delay_prob))
    fault.cache_delay_s += c.cache_delay_s;

  if (fault.fail == ErrorKind::kCrash) {
    ++crashes_;
    m_crashes_->add();
  } else if (fault.fail == ErrorKind::kCacheError) {
    ++cache_faults_;
    m_cache_faults_->add();
  }
  if (fault.straggler_mult > 1.0) {
    ++stragglers_;
    m_stragglers_->add();
  }
  // A delay on an invocation whose cache op also failed outright is
  // subsumed by the failure; otherwise it is a slow-but-successful cache
  // op, counted apart from the faults.
  if (fault.cache_delay_s > 0.0 && fault.fail != ErrorKind::kCacheError) {
    ++cache_delays_;
    m_cache_delays_->add();
  }
  if (fault.fail != ErrorKind::kNone || fault.straggler_mult > 1.0 ||
      fault.cache_delay_s > 0.0) {
    if (auto* led = obs::ledger()) {
      obs::LedgerEvent ev("fault_injected", now);
      ev.field("fn_kind", fn_kind);
      if (fault.fail != ErrorKind::kNone)
        ev.field("error", error_kind_name(fault.fail));
      if (fault.straggler_mult > 1.0)
        ev.field("straggler_mult", fault.straggler_mult);
      if (fault.cache_delay_s > 0.0)
        ev.field("cache_delay_s", fault.cache_delay_s);
      led->append(std::move(ev).finish());
    }
    if (auto* ts = obs::timeseries())
      ts->sample("fault.injected", now,
                 static_cast<double>(crashes_ + cache_faults_ + stragglers_ +
                                     cache_delays_));
  }
  return fault;
}

bool FaultInjector::reclaims_enabled() const {
  if (plan_.config.reclaim_rate_per_hour > 0.0) return true;
  for (const auto& f : plan_.schedule)
    if (f.kind == FaultKind::kVmReclaim) return true;
  return false;
}

void FaultInjector::arm_reclaims(std::function<void(Rng&)> reclaim_cb) {
  STELLARIS_CHECK_MSG(!armed_, "reclamations armed twice");
  reclaim_cb_ = std::move(reclaim_cb);
  armed_ = true;
  for (std::size_t i = 0; i < plan_.schedule.size(); ++i) {
    const ScheduledFault& f = plan_.schedule[i];
    if (f.kind != FaultKind::kVmReclaim) continue;
    consumed_[i] = true;
    reclaim_timers_.push_back(engine_.schedule_cancellable_at(
        std::max(f.time_s, engine_.now()), [this] { fire_reclaim(); }));
  }
  if (plan_.config.reclaim_rate_per_hour > 0.0) schedule_next_reclaim();
}

void FaultInjector::schedule_next_reclaim() {
  // Poisson arrivals: exponential inter-arrival times in virtual seconds.
  // Only one arrival is pending at a time, so reassigning the handle drops
  // the fired one instead of growing a vector for the run's lifetime.
  const double rate_per_s = plan_.config.reclaim_rate_per_hour / 3600.0;
  const double gap = -std::log(1.0 - rng_.uniform()) / rate_per_s;
  reclaim_arrival_ = engine_.schedule_cancellable_after(gap, [this] {
    fire_reclaim();
    if (armed_ && plan_.config.reclaim_rate_per_hour > 0.0)
      schedule_next_reclaim();
  });
}

void FaultInjector::fire_reclaim() {
  if (!armed_) return;
  ++reclaims_;
  m_reclaims_->add();
  LOG_DEBUG << "VM reclamation fired at t=" << engine_.now();
  if (reclaim_cb_) reclaim_cb_(rng_);
}

void FaultInjector::disarm() {
  armed_ = false;
  for (auto& handle : reclaim_timers_)
    if (handle) *handle = true;
  reclaim_timers_.clear();
  if (reclaim_arrival_) *reclaim_arrival_ = true;
  reclaim_arrival_.reset();
}

RetrySimOutcome simulate_retries(double base_duration_s,
                                 const FaultConfig& config,
                                 const RetryPolicy& policy, Rng& rng) {
  RetrySimOutcome out;
  out.attempts = 0;
  for (std::size_t attempt = 0; policy.attempt_allowed(attempt); ++attempt) {
    if (attempt > 0) {
      const double backoff = policy.backoff_s(attempt, rng);
      if (policy.deadline_s > 0.0 &&
          out.elapsed_s + backoff > policy.deadline_s) {
        out.ok = false;
        out.error = ErrorKind::kDeadline;
        return out;
      }
      out.elapsed_s += backoff;
    }
    ++out.attempts;
    // Same draw order as FaultInjector::on_invocation.
    double duration = base_duration_s;
    ErrorKind fail = ErrorKind::kNone;
    double fail_frac = 1.0;
    if (config.crash_prob > 0.0 && rng.bernoulli(config.crash_prob)) {
      fail = ErrorKind::kCrash;
      fail_frac = rng.uniform(config.crash_frac_lo, config.crash_frac_hi);
    }
    if (config.straggler_prob > 0.0 && rng.bernoulli(config.straggler_prob))
      duration *= config.straggler_mult;
    if (config.cache_fail_prob > 0.0 && fail == ErrorKind::kNone &&
        rng.bernoulli(config.cache_fail_prob))
      fail = ErrorKind::kCacheError;
    if (config.cache_delay_prob > 0.0 &&
        rng.bernoulli(config.cache_delay_prob))
      duration += config.cache_delay_s;

    if (fail == ErrorKind::kNone) {
      out.elapsed_s += duration;
      out.ok = true;
      out.error = ErrorKind::kNone;
      return out;
    }
    const double consumed =
        fail == ErrorKind::kCrash ? duration * fail_frac : duration;
    out.elapsed_s += consumed;
    out.wasted_s += consumed;
    out.error = fail;
  }
  out.ok = false;
  return out;
}

}  // namespace stellaris::fault
