file(REMOVE_RECURSE
  "CMakeFiles/fig06_ppo.dir/fig06_ppo.cpp.o"
  "CMakeFiles/fig06_ppo.dir/fig06_ppo.cpp.o.d"
  "fig06_ppo"
  "fig06_ppo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ppo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
