// The learner-function body, shared between Stellaris' asynchronous
// serverless learners and every synchronous baseline (so reward-curve
// comparisons isolate the *architecture*, not the local optimizer): given a
// pulled policy and a trajectory batch, run bounded local SGD epochs (Adam
// at α₀, KL-trust-region early stop, log-std step damping) and return the
// cumulative parameter delta.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "nn/actor_critic.hpp"
#include "rl/sample_batch.hpp"

namespace stellaris::core {

struct LearnerUpdate {
  /// θ_pulled − θ_local: subtracting this from θ_pulled applies the update.
  std::vector<float> delta;
  rl::LossStats stats;  ///< from the last executed epoch
  std::size_t epochs_run = 0;
};

/// Compute a learner update. `model` is scratch space (clobbered); `target`
/// is the IMPACT target network (ignored for PPO); `pulled_params` is the
/// policy the learner starts from. Advantage estimation (GAE or V-trace) is
/// segment-aware. `batch` is modified in place (advantages filled for PPO).
LearnerUpdate compute_learner_update(const TrainConfig& cfg,
                                     nn::ActorCritic& model,
                                     nn::ActorCritic& target,
                                     const std::vector<float>& pulled_params,
                                     rl::SampleBatch& batch);

}  // namespace stellaris::core
