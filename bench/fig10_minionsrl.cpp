// Fig. 10 — integrating Stellaris with MinionsRL: serverless actors with a
// single centralized learner vs the same actors feeding Stellaris'
// asynchronous serverless learner fleet.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  Table summary({"env", "minionsrl_final", "stellaris_final", "reward_gain",
                 "minionsrl_time_s", "stellaris_time_s"});
  for (const auto& env : envs::benchmark_env_names()) {
    const std::size_t rounds = bench::default_rounds(env);
    const std::size_t seeds = bench::default_seeds(env);
    auto cfg = bench::base_config(env, rounds, 1);
    bench::apply_driver_args(cfg, argc, argv);

    baselines::SyncConfig sync_cfg;
    sync_cfg.base = cfg;
    sync_cfg.variant = baselines::SyncVariant::kMinionsLike;
    auto minions_runs = bench::run_sync_seeds(sync_cfg, seeds);
    const double budget = bench::summarize(minions_runs).time_s;
    auto stl_runs = bench::run_seeds_time_matched(cfg, seeds, budget);

    bench::emit_curve_comparison(
        "Fig. 10 — " + env + ": MinionsRL vs MinionsRL+Stellaris",
        "minionsrl", minions_runs, "stellaris", stl_runs,
        "fig10_" + env + ".csv");
    const auto sm = bench::summarize(minions_runs);
    const auto ss = bench::summarize(stl_runs);
    summary.row()
        .add(env)
        .add(sm.final_reward, 1)
        .add(ss.final_reward, 1)
        .add(sm.final_reward != 0.0 ? ss.final_reward / sm.final_reward : 0.0,
             2)
        .add(sm.time_s, 1)
        .add(ss.time_s, 1);
  }
  summary.emit("Fig. 10 summary — final rewards (paper: up to 1.6x)",
               "fig10_summary.csv");
  std::cout << "\nExpected shape: the centralized learner bottlenecks"
               " MinionsRL; replacing it with async serverless learners"
               " improves both reward and time.\n";
  return 0;
}
