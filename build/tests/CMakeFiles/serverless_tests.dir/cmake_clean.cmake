file(REMOVE_RECURSE
  "CMakeFiles/serverless_tests.dir/serverless/cluster_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/cluster_test.cpp.o.d"
  "CMakeFiles/serverless_tests.dir/serverless/container_pool_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/container_pool_test.cpp.o.d"
  "CMakeFiles/serverless_tests.dir/serverless/cost_meter_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/cost_meter_test.cpp.o.d"
  "CMakeFiles/serverless_tests.dir/serverless/data_loader_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/data_loader_test.cpp.o.d"
  "CMakeFiles/serverless_tests.dir/serverless/latency_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/latency_test.cpp.o.d"
  "CMakeFiles/serverless_tests.dir/serverless/platform_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/platform_test.cpp.o.d"
  "CMakeFiles/serverless_tests.dir/serverless/profiler_test.cpp.o"
  "CMakeFiles/serverless_tests.dir/serverless/profiler_test.cpp.o.d"
  "serverless_tests"
  "serverless_tests.pdb"
  "serverless_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
