// Corpus stand-in for the real util/annotated_mutex.hpp: just enough
// token shape for the lock-rank pass — a lock_rank namespace and the
// wrapper type names.
#pragma once

namespace stellaris {

namespace lock_rank {
inline constexpr int kAlpha = 100;
inline constexpr int kBeta = 200;
// expect: lock-rank
inline constexpr int kDupe = 200;
// expect: lock-rank
inline constexpr int kUndocumented = 300;
// expect: lock-rank
inline constexpr int kGamma = 350;
}  // namespace lock_rank

class Mutex {
 public:
  Mutex(const char* name, int rank);
  void unlock();
};

class SharedMutex {
 public:
  SharedMutex(const char* name, int rank);
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  void unlock();
};

class ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu);
};

class WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu);
};

}  // namespace stellaris
