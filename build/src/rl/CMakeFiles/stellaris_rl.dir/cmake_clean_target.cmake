file(REMOVE_RECURSE
  "libstellaris_rl.a"
)
