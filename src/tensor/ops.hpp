// Tensor kernel library: blocked matrix products, activations, the softmax
// family, and the im2col lowering used by the convolution layer.
//
// Layout (one concern per TU):
//   gemm.cpp        — cache-blocked, register-tiled, optionally threaded
//                     GEMM variants
//   elementwise.cpp — activations, softmax family, bias/row reductions
//   ops.cpp         — convolution lowering (im2col / col2im)
//   kernel_config.* — threading knobs shared by the kernels
//   scratch.*       — reusable scratch-tensor pool
//
// Every kernel comes in two forms: a value-returning convenience wrapper
// and an `*_into` out-parameter variant that reshapes its destination in
// place and fully overwrites it — after warm-up the `_into` form never
// allocates, which is what keeps the learner step allocation-free.
//
// Determinism contract: the blocked GEMMs tile only the i/j (output)
// dimensions; each output element accumulates its k terms in ascending
// order starting from 0, exactly like the naive reference kernels below.
// Results are therefore bit-identical to ops::reference, with threading on
// or off, at any thread count.
//
// The seed kernels are retained verbatim under ops::reference (minus a
// zero-skip branch that broke IEEE NaN/Inf propagation): they are the
// bit-exactness oracle for the test suite and the "before" baseline for
// the kernel-perf harness (bench/micro_substrates --json=...).
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace stellaris::ops {

// -- matrix products ---------------------------------------------------------
// The `_into` variants reject an output that aliases an input.

/// C = A (m×k) * B (k×n).
Tensor matmul(const Tensor& a, const Tensor& b);
void matmul_into(Tensor& c, const Tensor& a, const Tensor& b);

/// C = Aᵀ (k×m becomes m×k) * B — used in backward passes without
/// materializing transposes.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
void matmul_tn_into(Tensor& c, const Tensor& a, const Tensor& b);

/// C = A * Bᵀ.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
void matmul_nt_into(Tensor& c, const Tensor& a, const Tensor& b);

// -- bias / reductions -------------------------------------------------------
/// y = x (m×n) with row-broadcast bias (n) added, in place.
void add_bias_rows(Tensor& x, const Tensor& bias);

/// Column-sum of a 2-D tensor -> 1-D (n); the bias gradient.
Tensor sum_rows(const Tensor& x);
void sum_rows_into(Tensor& out, const Tensor& x);

// -- activations (out-of-place forward, gradient helpers) -------------------
// For the `_into` forms the output may alias the primary input.
Tensor tanh_forward(const Tensor& x);
void tanh_forward_into(Tensor& y, const Tensor& x);
/// dx = dy * (1 - y²) where y = tanh(x) from the forward pass.
Tensor tanh_backward(const Tensor& y, const Tensor& dy);
void tanh_backward_into(Tensor& dx, const Tensor& y, const Tensor& dy);

Tensor relu_forward(const Tensor& x);
void relu_forward_into(Tensor& y, const Tensor& x);
/// dx = dy ⊙ 1[x > 0].
Tensor relu_backward(const Tensor& x, const Tensor& dy);
void relu_backward_into(Tensor& dx, const Tensor& x, const Tensor& dy);

// -- softmax family (row-wise over 2-D tensors) ------------------------------
/// Row-wise softmax with max-subtraction for stability.
Tensor softmax_rows(const Tensor& logits);
void softmax_rows_into(Tensor& p, const Tensor& logits);
/// Row-wise log-softmax.
Tensor log_softmax_rows(const Tensor& logits);
void log_softmax_rows_into(Tensor& lp, const Tensor& logits);

// -- convolution lowering -----------------------------------------------------
/// Parameters of a 2-D convolution (square kernel/stride, zero padding).
struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t padding = 0;

  std::size_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
};

/// Lower an input batch (N, C·H·W flattened rows) into the im2col matrix
/// with shape (N·out_h·out_w, C·k·k): each row is one receptive field.
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);
void im2col_into(Tensor& cols, const Tensor& input, const Conv2dSpec& spec);

/// Inverse scatter of im2col — accumulates column gradients back into the
/// input-gradient layout (N, C·H·W).
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::size_t batch);
void col2im_into(Tensor& out, const Tensor& cols, const Conv2dSpec& spec,
                 std::size_t batch);

// -- reference kernels --------------------------------------------------------
// The seed's naive loops, kept as the semantic oracle for the bit-exactness
// suite and as the "before" side of the kernel-perf harness. Not used by
// any production path.
namespace reference {

Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor sum_rows(const Tensor& x);
Tensor tanh_forward(const Tensor& x);
Tensor relu_forward(const Tensor& x);
Tensor softmax_rows(const Tensor& logits);
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace reference

}  // namespace stellaris::ops
