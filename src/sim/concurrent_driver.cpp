// ThreadPoolDriver: the `--driver=concurrent` execution driver.
//
// Workers are raw std::thread rather than util::ThreadPool on purpose: a
// driver body may itself dispatch kernel work onto the (separate) kernel
// ThreadPool, and a body legitimately BLOCKS mid-task waiting for its
// `after` predecessor — both patterns ThreadPool::parallel_for forbids.
// The pool here owns the full lifecycle ThreadPool would otherwise give
// us: lazy spawn up to the cap, exception capture per job (in JobState),
// and a drain/join teardown. See DESIGN.md §14.
//
// Deadlock-freedom: jobs are dequeued in submit order, and a job's `after`
// predecessor is always submitted strictly earlier — so by the time any
// worker starts a job, its predecessor has been dequeued by some worker
// (possibly this one) and is running or done. The wait in JobState::run()
// therefore never waits on anything still queued.
#include "sim/driver.hpp"

#include <deque>
#include <thread>
#include <vector>

#include "util/annotated_mutex.hpp"
#include "util/error.hpp"

namespace stellaris::sim {
namespace {

class ThreadPoolDriver final : public Driver {
 public:
  explicit ThreadPoolDriver(std::size_t max_threads)
      : max_threads_(max_threads == 0 ? 1 : max_threads) {}

  ~ThreadPoolDriver() override {
    drain();
    std::vector<std::thread> workers;  // lint:raw-thread-ok — see header comment
    {
      MutexLock lock(mu_);
      stopping_ = true;
      workers.swap(workers_);
    }
    cv_.notify_all();
    for (auto& w : workers) w.join();
  }

  const char* name() const override { return "concurrent"; }

  std::size_t worker_threads() const override { return max_threads_; }

  Job submit(std::function<void()> body, const Job& after) override {
    auto job = std::make_shared<JobState>(std::move(body), after);
    {
      MutexLock lock(mu_);
      STELLARIS_CHECK_MSG(!stopping_, "submit on a stopping driver");
      queue_.push_back(job);
      ++outstanding_;
      // Thread-per-in-flight-function up to the cap: spawn another worker
      // only when every live one is busy (none idle to take this job).
      if (idle_workers_ == 0 && workers_.size() < max_threads_)
        workers_.emplace_back([this] { worker_loop(); });
    }
    cv_.notify_one();
    return job;
  }

  void drain() override {
    MutexLock lock(mu_);
    while (outstanding_ > 0) idle_cv_.wait(mu_);
  }

 private:
  bool has_work_or_stop() const REQUIRES(mu_) {
    return stopping_ || !queue_.empty();
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        MutexLock lock(mu_);
        while (!has_work_or_stop()) {
          ++idle_workers_;
          cv_.wait(mu_);
          --idle_workers_;
        }
        if (queue_.empty()) return;  // stopping_ and nothing left
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job->run();  // no driver lock held: bodies run fully concurrently
      {
        MutexLock lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  const std::size_t max_threads_;
  Mutex mu_{"sim/driver-queue", lock_rank::kDriverQueue};
  CondVar cv_;       ///< workers: work available / stopping
  CondVar idle_cv_;  ///< drain(): outstanding reached zero
  std::deque<Job> queue_ GUARDED_BY(mu_);
  std::size_t outstanding_ GUARDED_BY(mu_) = 0;
  std::size_t idle_workers_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  // Raw threads on purpose: driver workers must block on job dependencies,
  // which ThreadPool tasks may not do (see header comment).
  std::vector<std::thread> workers_ GUARDED_BY(mu_);  // lint:raw-thread-ok
};

}  // namespace

std::unique_ptr<Driver> make_concurrent_driver(std::size_t threads) {
  return std::make_unique<ThreadPoolDriver>(threads);
}

}  // namespace stellaris::sim
