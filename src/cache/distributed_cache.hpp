// Distributed Cache — the in-memory key-value buffer at the center of the
// paper's workflow (§IV): actors publish serialized trajectory batches,
// learner functions publish gradients, and the parameter function publishes
// policy model weights; everyone else polls or blocks for them.
//
// This is our Redis substitute: a thread-safe versioned KV store with
//  - monotonically increasing per-key versions (so pollers can wait for
//    "anything newer than what I last saw"),
//  - blocking reads with timeout (condition-variable based, for the real
//    multi-threaded driver),
//  - prefix scans (gradient / trajectory inbox patterns like "grad/*"),
//  - byte and hit/miss accounting that feeds the data-passing latency model.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/annotated_mutex.hpp"

namespace stellaris::cache {

using Bytes = std::vector<std::uint8_t>;

/// Value + metadata returned by reads.
struct CacheValue {
  Bytes data;
  std::uint64_t version = 0;  ///< per-key write counter, starts at 1
};

/// Aggregate counters (monotonic since construction or reset_stats()).
struct CacheStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t erases = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class DistributedCache {
 public:
  DistributedCache();
  DistributedCache(const DistributedCache&) = delete;
  DistributedCache& operator=(const DistributedCache&) = delete;

  /// Store (replacing any prior value); returns the new version.
  std::uint64_t put(const std::string& key, Bytes value) EXCLUDES(mu_);

  /// Non-blocking read.
  std::optional<CacheValue> get(const std::string& key) const
      EXCLUDES(mu_);

  /// Read that throws CacheError on miss — for keys the protocol guarantees.
  CacheValue get_or_throw(const std::string& key) const EXCLUDES(mu_);

  /// Block until `key` exists with version > `min_version`, or timeout.
  /// Returns nullopt on timeout. min_version = 0 accepts any value.
  ///
  /// Real-concurrency driver only: the calling thread genuinely sleeps, so
  /// the wait duration is measured in *real* time and recorded under the
  /// explicitly real-time debug metric `cache.blocked_read_wait_real_ms`.
  /// Everything result-affecting stays on the virtual clock (the sim
  /// overload below never sleeps and records no wait time).
  std::optional<CacheValue> get_blocking(const std::string& key,
                                         std::uint64_t min_version,
                                         std::chrono::milliseconds timeout)
      EXCLUDES(mu_);

  /// Virtual-time deadline overload for simulation-driven callers. The
  /// event loop is single-threaded, so no other event can publish the key
  /// while this call "waits": the wait collapses deterministically to an
  /// immediate hit (the key is already satisfied) or a miss accounted as a
  /// timeout at `engine.now() + timeout_s` — no wall-clock sleep, no
  /// nondeterminism, and the virtual clock never advances. Callers that
  /// need to genuinely wait across events use get_async.
  std::optional<CacheValue> get_blocking(const std::string& key,
                                         std::uint64_t min_version,
                                         sim::Engine& engine,
                                         double timeout_s) EXCLUDES(mu_);

  using AsyncCallback = std::function<void(std::optional<CacheValue>)>;

  /// Event-driven wait: fires `cb` (via `engine`, in virtual time) as soon
  /// as `key` reaches a version > `min_version` — immediately (same
  /// timestamp, later event) if already satisfied — or with nullopt at the
  /// virtual deadline `engine.now() + timeout_s`. timeout_s <= 0 means no
  /// deadline (the waiter is dropped at clear()).
  void get_async(const std::string& key, std::uint64_t min_version,
                 sim::Engine& engine, double timeout_s, AsyncCallback cb)
      EXCLUDES(mu_);

  /// Async waiters currently registered (tests / diagnostics).
  std::size_t pending_waiters() const EXCLUDES(mu_);

  bool contains(const std::string& key) const EXCLUDES(mu_);

  /// Current version of a key (0 if absent).
  std::uint64_t version(const std::string& key) const EXCLUDES(mu_);

  /// Remove a key; returns whether it existed.
  bool erase(const std::string& key) EXCLUDES(mu_);

  /// All keys starting with `prefix`, in lexicographic order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const
      EXCLUDES(mu_);

  /// Remove every key with the prefix; returns count removed.
  std::size_t erase_prefix(const std::string& prefix) EXCLUDES(mu_);

  std::size_t num_keys() const EXCLUDES(mu_);
  /// Total payload bytes currently resident.
  std::size_t resident_bytes() const EXCLUDES(mu_);

  CacheStats stats() const EXCLUDES(mu_);
  void reset_stats() EXCLUDES(mu_);

  void clear() EXCLUDES(mu_);

 private:
  struct Entry {
    Bytes data;
    std::uint64_t version = 0;
  };
  /// One registered get_async call awaiting a put (or its deadline).
  struct Waiter {
    std::uint64_t id = 0;
    std::string key;
    std::uint64_t min_version = 0;
    sim::Engine* engine = nullptr;
    AsyncCallback cb;
    sim::Engine::CancelHandle deadline;  ///< null when timeout_s <= 0
  };

  /// Account a hit and return the entry's value.
  CacheValue read_entry_locked(const Entry& entry) REQUIRES(mu_);
  /// The entry for `key` if it exists with version > min_version.
  const Entry* find_ready_locked(const std::string& key,
                                 std::uint64_t min_version) const
      REQUIRES(mu_);
  /// Deadline event for an async waiter: drop it and fire cb(nullopt).
  void expire_waiter(std::uint64_t id) EXCLUDES(mu_);

  mutable Mutex mu_{"cache/distributed-cache", lock_rank::kCache};
  CondVar cv_;
  std::map<std::string, Entry> store_ GUARDED_BY(mu_);
  std::vector<Waiter> waiters_ GUARDED_BY(mu_);
  std::uint64_t next_waiter_id_ GUARDED_BY(mu_) = 0;
  std::size_t resident_bytes_ GUARDED_BY(mu_) = 0;
  mutable CacheStats stats_ GUARDED_BY(mu_);

  // Process-wide observability mirrors of the per-instance stats (resolved
  // once at construction; updates are relaxed atomics).
  obs::Counter* m_puts_;
  obs::Counter* m_gets_;
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_erases_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_blocked_timeouts_;
  obs::FixedHistogram* m_blocked_wait_real_ms_;
  obs::Gauge* m_resident_bytes_;
  obs::Counter* m_async_waits_;
  obs::Counter* m_async_timeouts_;
};

}  // namespace stellaris::cache
