// Pins the nearest-rank percentile semantics shared by tools/report and the
// serving tier (util/percentile.hpp): rank = ceil(q*n) clamped to [1, n],
// value = sorted[rank-1]. Distinct from util/stats.hpp's interpolated
// percentile_sorted — nearest-rank always returns an observed sample.
#include "util/percentile.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stellaris {
namespace {

TEST(NearestRank, EmptySampleIsZero) {
  EXPECT_EQ(nearest_rank_sorted({}, 0.50), 0.0);
  EXPECT_EQ(nearest_rank_sorted({}, 0.99), 0.0);
}

TEST(NearestRank, SingleElementIsThatElement) {
  const std::vector<double> one = {7.5};
  EXPECT_EQ(nearest_rank_sorted(one, 0.0), 7.5);
  EXPECT_EQ(nearest_rank_sorted(one, 0.50), 7.5);
  EXPECT_EQ(nearest_rank_sorted(one, 1.0), 7.5);
}

TEST(NearestRank, QuantileZeroClampsToMin) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  // ceil(0*4) = 0 clamps to rank 1: the minimum, never an out-of-range read.
  EXPECT_EQ(nearest_rank_sorted(xs, 0.0), 1.0);
  EXPECT_EQ(nearest_rank_sorted(xs, -0.5), 1.0);
}

TEST(NearestRank, QuantileOneIsMax) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(nearest_rank_sorted(xs, 1.0), 4.0);
}

TEST(NearestRank, MedianOfEvenCountIsLowerMiddle) {
  // Nearest-rank does NOT average: ceil(0.5*4) = 2 -> second element.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(nearest_rank_sorted(xs, 0.50), 2.0);
}

TEST(NearestRank, MedianOfOddCountIsMiddle) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_EQ(nearest_rank_sorted(xs, 0.50), 2.0);
}

TEST(NearestRank, P99OfHundredIsRank99) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  // ceil(0.99*100) = 99 -> the 99th smallest, not the max.
  EXPECT_EQ(nearest_rank_sorted(xs, 0.99), 99.0);
  EXPECT_EQ(nearest_rank_sorted(xs, 0.999), 100.0);
  EXPECT_EQ(nearest_rank_sorted(xs, 0.50), 50.0);
}

TEST(NearestRank, SmallSampleP99IsMax) {
  // With n < 100, p99 rank ceil(0.99*n) = n: the maximum.
  const std::vector<double> xs = {1.0, 5.0, 9.0};
  EXPECT_EQ(nearest_rank_sorted(xs, 0.99), 9.0);
}

TEST(NearestRank, UnsortedConvenienceOverloadSorts) {
  EXPECT_EQ(nearest_rank({3.0, 1.0, 2.0}, 0.50), 2.0);
  EXPECT_EQ(nearest_rank({3.0, 1.0, 2.0}, 1.0), 3.0);
}

}  // namespace
}  // namespace stellaris
