// stellaris_report — offline run-ledger analyzer.
//
// Usage:
//   stellaris_report <ledger.jsonl> [--json=out.json]
//                    [--straggler-factor=2.0]
//
// Reads the JSONL run ledger a training run wrote under --ledger-out= and
// prints, per run: the critical-path breakdown (per-stage virtual time
// summing to the total run time), p50/p99 staleness per policy version,
// straggler identification, and wasted-cost attribution from the fault
// events. With --json= the same data is written as one JSON object per run
// (JSONL) for downstream plotting.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "tools/report/ledger_analysis.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <ledger.jsonl> [--json=out.json] "
               "[--straggler-factor=F]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string ledger_path;
  std::string json_path;
  stellaris::report::AnalysisOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--straggler-factor=", 0) == 0) {
      opts.straggler_factor = std::stod(arg.substr(19));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (ledger_path.empty()) {
      ledger_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (ledger_path.empty()) return usage(argv[0]);

  try {
    const auto reports =
        stellaris::report::analyze_ledger_file(ledger_path, opts);
    if (reports.empty()) {
      std::fprintf(stderr, "%s: no ledger events found\n",
                   ledger_path.c_str());
      return 1;
    }
    bool first = true;
    for (const auto& rep : reports) {
      if (!first) std::cout << "\n";
      first = false;
      stellaris::report::print_report(std::cout, rep);
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     json_path.c_str());
        return 1;
      }
      for (const auto& rep : reports)
        stellaris::report::write_report_json(out, rep);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stellaris_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
