// Example: the serverless substrate on its own.
//
// Uses the virtual-time platform directly — no RL — to show how invocation
// queueing, cold starts, pre-warming, keep-alive, and the paper's
// dollar-per-resource-second cost model interact. Useful for understanding
// (and unit-costing) any workload shape before attaching learners to it.
//
//   ./build/examples/serverless_playground
#include <iostream>

#include "serverless/platform.hpp"
#include "util/csv.hpp"

int main() {
  using namespace stellaris;
  using serverless::FnKind;

  Table t({"scenario", "invocations", "cold_starts", "makespan_s",
           "gpu_util_pct", "cost_usd"});

  auto run_scenario = [&](const std::string& name, bool prewarm,
                          std::size_t burst, double compute_s) {
    sim::Engine engine;
    serverless::ServerlessPlatform platform(
        engine, serverless::ClusterSpec::regular(), serverless::LatencyModel{},
        7);
    if (prewarm) platform.prewarm_learners(platform.cluster().learner_slots());
    for (std::size_t i = 0; i < burst; ++i) {
      serverless::ServerlessPlatform::InvokeOptions opts;
      opts.kind = FnKind::kLearner;
      opts.compute_s = compute_s;
      opts.payload_in_bytes = 1 << 20;
      platform.invoke(opts, [](const auto&) {});
    }
    engine.run();
    t.row()
        .add(name)
        .add(static_cast<std::size_t>(
            platform.costs().invocations(FnKind::kLearner)))
        .add(static_cast<std::size_t>(platform.learner_cold_starts()))
        .add(engine.now(), 3)
        .add(platform.gpu_utilization() * 100.0, 1)
        .add(platform.costs().total_cost(), 6);
  };

  // The regular testbed has 8 learner slots (2 V100s × 4).
  run_scenario("8 invocations, cold", false, 8, 0.5);
  run_scenario("8 invocations, prewarmed", true, 8, 0.5);
  run_scenario("32 invocations (queueing), prewarmed", true, 32, 0.5);
  run_scenario("32 short tasks, prewarmed", true, 32, 0.05);

  t.emit("serverless platform scenarios");
  std::cout <<
      "\nReading the table:\n"
      " - pre-warming removes the ~1.2 s cold start from the makespan and\n"
      "   (per the paper's cost model) is itself free of charge;\n"
      " - 32 invocations on 8 slots queue 4-deep: makespan ~4x, cost equal\n"
      "   (you pay busy seconds, not wall clock);\n"
      " - short tasks lower utilization because start/transfer overheads\n"
      "   dominate.\n";
  return 0;
}
