#include "envs/vec_env.hpp"

#include "util/error.hpp"

namespace stellaris::envs {

VecEnv::VecEnv(const std::string& name, std::size_t n, std::uint64_t seed,
               std::size_t threads)
    : rng_(seed) {
  STELLARIS_CHECK_MSG(n > 0, "VecEnv needs at least one environment");
  envs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) envs_.push_back(make_env(name));
  spec_ = envs_.front()->spec();
  env_seeds_.resize(n);
  running_returns_.assign(n, 0.0);
  if (threads > 0) pool_ = std::make_unique<ThreadPool>(threads);
}

Tensor VecEnv::reset_all() { return reset_all(rng_); }

Tensor VecEnv::reset_all(Rng& rng) {
  Tensor obs;
  reset_all_into(rng, obs);
  return obs;
}

void VecEnv::reset_all_into(Rng& rng, Tensor& obs) {
  obs.ensure_shape({envs_.size(), spec_.obs.flat_dim});
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    env_seeds_[i] = rng.next();
    envs_[i]->reset_into(env_seeds_[i], obs.row(i));
    running_returns_[i] = 0.0;
  }
}

template <typename StepFn>
void VecEnv::step_impl(const StepFn& fn, Rng& rng, StepBatch& out) {
  const std::size_t n = envs_.size();
  out.obs.ensure_shape({n, spec_.obs.flat_dim});
  out.rewards.resize(n);
  out.dones.assign(n, false);
  out.episode_returns.clear();
  step_scratch_.resize(n);
  reset_seed_scratch_.resize(n);

  // Auto-reset seeds must come from one stream, so draw them up-front
  // (deterministically, in index order) before any parallel work.
  for (std::size_t i = 0; i < n; ++i) reset_seed_scratch_[i] = rng.next();

  // Workers touch only disjoint state: their env, their obs row, and their
  // StepOut scratch slot. All shared bookkeeping happens in the serial
  // finalize loop below, which is why serial and threaded streams are
  // identical for the same seeds.
  auto step_one = [&](std::size_t i) {
    const std::span<float> row = out.obs.row(i);
    step_scratch_[i] = fn(i, row);
    if (step_scratch_[i].done)
      envs_[i]->reset_into(reset_seed_scratch_[i], row);
  };
  if (pool_) {
    pool_->parallel_for(n, step_one);
  } else {
    for (std::size_t i = 0; i < n; ++i) step_one(i);
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.rewards[i] = step_scratch_[i].reward;
    out.dones[i] = step_scratch_[i].done;
    running_returns_[i] += step_scratch_[i].reward;
    if (step_scratch_[i].done) {
      out.episode_returns.push_back(running_returns_[i]);
      running_returns_[i] = 0.0;
      env_seeds_[i] = reset_seed_scratch_[i];
    }
  }
  total_steps_ += n;
}

VecEnv::StepBatch VecEnv::step(const Tensor& actions) {
  return step(actions, rng_);
}

VecEnv::StepBatch VecEnv::step(const Tensor& actions, Rng& rng) {
  StepBatch out;
  step_into(actions, rng, out);
  return out;
}

void VecEnv::step_into(const Tensor& actions, Rng& rng, StepBatch& out) {
  STELLARIS_CHECK_MSG(actions.rank() == 2 && actions.dim(0) == envs_.size() &&
                          actions.dim(1) == spec_.act_dim,
                      "VecEnv::step action shape "
                          << shape_str(actions.shape()));
  step_impl(
      [&](std::size_t i, std::span<float> obs) {
        return envs_[i]->step_into(actions.row(i), obs);
      },
      rng, out);
}

VecEnv::StepBatch VecEnv::step_discrete(
    const std::vector<std::size_t>& actions) {
  return step_discrete(actions, rng_);
}

VecEnv::StepBatch VecEnv::step_discrete(
    const std::vector<std::size_t>& actions, Rng& rng) {
  StepBatch out;
  step_discrete_into(actions, rng, out);
  return out;
}

void VecEnv::step_discrete_into(const std::vector<std::size_t>& actions,
                                Rng& rng, StepBatch& out) {
  STELLARIS_CHECK_MSG(actions.size() == envs_.size(),
                      "VecEnv::step_discrete action count mismatch");
  step_impl(
      [&](std::size_t i, std::span<float> obs) {
        return envs_[i]->step_discrete_into(actions[i], obs);
      },
      rng, out);
}

void VecEnv::reset_env_into(std::size_t i, std::uint64_t seed,
                            std::span<float> obs) {
  STELLARIS_DCHECK(i < envs_.size());
  env_seeds_[i] = seed;
  envs_[i]->reset_into(seed, obs);
}

StepOut VecEnv::step_env_into(std::size_t i, std::span<const float> action,
                              std::span<float> obs) {
  STELLARIS_DCHECK(i < envs_.size());
  ++total_steps_;
  return envs_[i]->step_into(action, obs);
}

StepOut VecEnv::step_env_discrete_into(std::size_t i, std::size_t action,
                                       std::span<float> obs) {
  STELLARIS_DCHECK(i < envs_.size());
  ++total_steps_;
  return envs_[i]->step_discrete_into(action, obs);
}

}  // namespace stellaris::envs
