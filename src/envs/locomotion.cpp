#include "envs/locomotion.hpp"

#include <algorithm>
#include <cmath>

namespace stellaris::envs {

namespace {
constexpr double kDt = 0.05;
// Contact window: a limb is "planted" while its angle is in [-0.4, 0.9] rad,
// so backward sweeps through the window generate thrust.
constexpr double kContactLo = -0.4;
constexpr double kContactHi = 0.9;
}  // namespace

LocomotionParams LocomotionParams::hopper() {
  LocomotionParams p;
  p.name = "Hopper";
  p.n_joints = 3;
  p.max_steps = 200;
  p.reward_scale = 250.0;
  return p;
}

LocomotionParams LocomotionParams::walker2d() {
  LocomotionParams p;
  p.name = "Walker2d";
  p.n_joints = 6;
  p.torso_mass = 1.4;
  p.thrust_gain = 1.6;
  p.fall_angle = 1.1;
  p.max_steps = 200;
  p.reward_scale = 300.0;
  return p;
}

LocomotionParams LocomotionParams::humanoid() {
  LocomotionParams p;
  p.name = "Humanoid";
  p.n_joints = 8;
  p.torso_mass = 2.2;
  p.thrust_gain = 1.3;
  p.fall_angle = 0.95;      // top-heavy: falls easier
  p.alive_bonus = 2.0;
  p.ctrl_cost = 0.08;
  p.max_steps = 200;
  p.reward_scale = 400.0;
  return p;
}

LocomotionEnv::LocomotionEnv(LocomotionParams params) : p_(std::move(params)) {
  // Observation: per-joint (angle, angular velocity) + torso velocity +
  // mean limb phase — matches the "positions + velocities" structure of
  // MuJoCo observations.
  const std::size_t obs_dim = 2 * p_.n_joints + 2;
  spec_.name = p_.name;
  spec_.obs = nn::ObsSpec::vector(obs_dim);
  spec_.action_kind = nn::ActionKind::kContinuous;
  spec_.act_dim = p_.n_joints;
  spec_.max_steps = p_.max_steps;
  spec_.reward_scale = p_.reward_scale;
  angle_.assign(p_.n_joints, 0.0);
  omega_.assign(p_.n_joints, 0.0);
}

std::vector<float> LocomotionEnv::reset(std::uint64_t seed) {
  std::vector<float> obs(spec_.obs.flat_dim);
  reset_into(seed, obs);
  return obs;
}

void LocomotionEnv::reset_into(std::uint64_t seed, std::span<float> obs) {
  rng_ = Rng(seed);
  for (std::size_t j = 0; j < p_.n_joints; ++j) {
    angle_[j] = rng_.uniform(-0.1, 0.1);
    omega_[j] = rng_.uniform(-0.1, 0.1);
  }
  torso_vel_ = 0.0;
  torso_x_ = 0.0;
  step_count_ = 0;
  observe_into(obs);
}

StepResult LocomotionEnv::step(std::span<const float> action) {
  StepResult r;
  r.obs.resize(spec_.obs.flat_dim);
  const StepOut out = step_into(action, r.obs);
  r.reward = out.reward;
  r.done = out.done;
  return r;
}

StepOut LocomotionEnv::step_into(std::span<const float> action,
                                 std::span<float> obs) {
  const StepOut out = step_physics(action);
  observe_into(obs);
  return out;
}

StepOut LocomotionEnv::step_physics(std::span<const float> action) {
  STELLARIS_CHECK_MSG(action.size() == p_.n_joints,
                      spec_.name << ": action dim " << action.size()
                                 << " != " << p_.n_joints);
  double thrust = 0.0;
  double ctrl_sq = 0.0;
  for (std::size_t j = 0; j < p_.n_joints; ++j) {
    const double torque =
        std::clamp(static_cast<double>(action[j]), -p_.torque_limit,
                   p_.torque_limit);
    ctrl_sq += torque * torque;
    // Semi-implicit Euler: update velocity from forces, then position from
    // the *new* velocity.
    const double accel = torque - p_.joint_damping * omega_[j] -
                         p_.joint_stiffness * angle_[j];
    omega_[j] += kDt * accel;
    const double prev_angle = angle_[j];
    angle_[j] += kDt * omega_[j];
    // Planted limb sweeping backward (decreasing angle inside the contact
    // window) pushes the torso forward. Thrust grows quadratically with
    // sweep speed, so only coherent large-amplitude gaits (resonant
    // pumping) move the torso — incoherent noise produces small |ω| and
    // almost no thrust, which is what makes the task a genuine
    // coordination problem rather than a dither-reward exploit.
    const bool planted = prev_angle > kContactLo && prev_angle < kContactHi;
    if (planted && omega_[j] < 0.0)
      thrust += omega_[j] * omega_[j] * p_.thrust_gain /
                static_cast<double>(p_.n_joints);
  }
  const double accel =
      (thrust - p_.friction * torso_vel_) / p_.torso_mass;
  torso_vel_ += kDt * accel;
  // Backward sliding is physically possible but ground drag dominates.
  torso_vel_ = std::max(torso_vel_, -0.5);
  torso_x_ += kDt * torso_vel_;
  ++step_count_;

  const bool fell = fallen();
  const bool timeout = step_count_ >= p_.max_steps;
  double mean_angle = 0.0;
  for (double a : angle_) mean_angle += a;
  mean_angle /= static_cast<double>(p_.n_joints);
  StepOut r;
  // Alive bonus + forward progress − control cost − balance shaping; the
  // shaping term keeps "vigorous but coordinated" gaits separated from the
  // "swing everything one way and topple" local optimum.
  r.reward = p_.alive_bonus + 8.0 * torso_vel_ - p_.ctrl_cost * ctrl_sq -
             0.8 * mean_angle * mean_angle;
  if (fell) r.reward -= 20.0;  // falling is a hard failure
  r.done = fell || timeout;
  return r;
}

bool LocomotionEnv::fallen() const {
  double mean_angle = 0.0;
  for (double a : angle_) mean_angle += a;
  mean_angle /= static_cast<double>(p_.n_joints);
  return std::abs(mean_angle) > p_.fall_angle;
}

void LocomotionEnv::observe_into(std::span<float> obs) {
  STELLARIS_CHECK_MSG(obs.size() == spec_.obs.flat_dim,
                      spec_.name << ": obs buffer size " << obs.size()
                                 << " != " << spec_.obs.flat_dim);
  std::size_t k = 0;
  double mean_angle = 0.0;
  for (std::size_t j = 0; j < p_.n_joints; ++j) {
    obs[k++] = static_cast<float>(angle_[j] + rng_.normal(0.0, p_.obs_noise));
    obs[k++] = static_cast<float>(omega_[j] + rng_.normal(0.0, p_.obs_noise));
    mean_angle += angle_[j];
  }
  obs[k++] = static_cast<float>(torso_vel_);
  obs[k++] =
      static_cast<float>(mean_angle / static_cast<double>(p_.n_joints));
}

double LocomotionEnv::limb_energy() const {
  double e = 0.0;
  for (std::size_t j = 0; j < p_.n_joints; ++j)
    e += 0.5 * omega_[j] * omega_[j] +
         0.5 * p_.joint_stiffness * angle_[j] * angle_[j];
  return e;
}

}  // namespace stellaris::envs
