#include <gtest/gtest.h>

#include "core/gradient.hpp"
#include "core/policy_io.hpp"

namespace stellaris::core {
namespace {

TEST(GradientMsg, SerializeRoundTrip) {
  GradientMsg m;
  m.grad = {1.0f, -2.0f, 3.5f};
  m.learner_id = 17;
  m.pulled_version = 42;
  m.mean_ratio = 0.93;
  m.batch_size = 512;
  m.kl = 0.012;
  m.compute_time_s = 0.37;
  GradientMsg c = GradientMsg::deserialize(m.serialize());
  EXPECT_EQ(c.grad, m.grad);
  EXPECT_EQ(c.learner_id, 17u);
  EXPECT_EQ(c.pulled_version, 42u);
  EXPECT_DOUBLE_EQ(c.mean_ratio, 0.93);
  EXPECT_EQ(c.batch_size, 512u);
  EXPECT_DOUBLE_EQ(c.kl, 0.012);
  EXPECT_DOUBLE_EQ(c.compute_time_s, 0.37);
}

TEST(GradientMsg, EmptyGradientSurvives) {
  GradientMsg m;
  GradientMsg c = GradientMsg::deserialize(m.serialize());
  EXPECT_TRUE(c.grad.empty());
}

TEST(PolicyIo, EncodeDecodeRoundTrip) {
  std::vector<float> params = {0.1f, 0.2f, -0.3f};
  auto bytes = encode_policy(params, 99);
  auto [decoded, version] = decode_policy(bytes);
  EXPECT_EQ(decoded, params);
  EXPECT_EQ(version, 99u);
}

TEST(PolicyIo, KeyNamingConventions) {
  EXPECT_EQ(keys::kPolicyLatest, "policy/latest");
  EXPECT_EQ(keys::kPolicyTarget, "policy/target");
  EXPECT_EQ(keys::trajectory(12), "traj/12");
  EXPECT_EQ(keys::gradient(7), "grad/7");
}

TEST(PolicyIo, CorruptBytesThrow) {
  std::vector<std::uint8_t> garbage = {0xff, 0x00, 0x12};
  EXPECT_THROW(decode_policy(garbage), Error);
}

}  // namespace
}  // namespace stellaris::core
