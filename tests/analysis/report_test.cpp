// End-to-end tests of the run-report analyzer (tools/report/): a real
// training run's ledger must analyze into a self-consistent report whose
// stage times tile the run and whose fault accounting matches the
// simulator's own counters — and recording must not perturb the run.
#include "tools/report/ledger_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/stellaris_trainer.hpp"
#include "obs/obs.hpp"
#include "serve/serve_engine.hpp"

namespace stellaris::report {
namespace {

core::TrainConfig tiny_config() {
  core::TrainConfig cfg;
  cfg.env_name = "Hopper";
  cfg.rounds = 8;
  cfg.num_actors = 4;
  cfg.horizon = 32;
  cfg.trajs_per_learner = 2;
  cfg.network_width = 8;
  cfg.eval_episodes = 1;
  cfg.seed = 7;
  return cfg;
}

core::TrainConfig faulty_config() {
  auto cfg = tiny_config();
  cfg.faults.config.crash_prob = 0.15;
  cfg.faults.config.straggler_prob = 0.1;
  cfg.faults.config.straggler_mult = 3.0;
  return cfg;
}

/// Run a config with ledger (and time-series) capture; returns the result
/// and fills `lines` with the captured ledger.
core::TrainResult run_with_ledger(const core::TrainConfig& cfg,
                                  std::vector<std::string>& lines) {
  obs::LedgerRecorder led;
  obs::TimeSeriesRecorder ts(0.25);
  obs::install_ledger(&led);
  obs::install_timeseries(&ts);
  auto result = core::run_training(cfg);
  obs::install_ledger(nullptr);
  obs::install_timeseries(nullptr);
  lines = led.lines();
  return result;
}

void expect_identical(const core::TrainResult& a,
                      const core::TrainResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].time_s, b.rounds[i].time_s);
    EXPECT_DOUBLE_EQ(a.rounds[i].reward, b.rounds[i].reward);
    EXPECT_EQ(a.rounds[i].group_size, b.rounds[i].group_size);
  }
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_DOUBLE_EQ(a.final_reward, b.final_reward);
}

TEST(Report, RecordingDoesNotPerturbCleanRun) {
  std::vector<std::string> lines;
  const auto off = core::run_training(tiny_config());
  const auto on = run_with_ledger(tiny_config(), lines);
  expect_identical(off, on);
  EXPECT_FALSE(lines.empty());
}

TEST(Report, RecordingDoesNotPerturbFaultyRun) {
  std::vector<std::string> lines;
  const auto off = core::run_training(faulty_config());
  const auto on = run_with_ledger(faulty_config(), lines);
  expect_identical(off, on);
  EXPECT_EQ(off.faults.crashes, on.faults.crashes);
  EXPECT_EQ(off.faults.retries, on.faults.retries);
  EXPECT_DOUBLE_EQ(off.faults.wasted_cost_usd, on.faults.wasted_cost_usd);
}

TEST(Report, StageBreakdownTilesTheRun) {
  std::vector<std::string> lines;
  const auto result = run_with_ledger(tiny_config(), lines);
  const auto reports = analyze_ledger(lines);
  ASSERT_EQ(reports.size(), 1u);
  const RunReport& rep = reports.front();
  // Acceptance criterion: per-stage times sum to the total virtual run
  // time (± telescoped-float rounding).
  EXPECT_NEAR(rep.stages.sum(), rep.t_end, 1e-6 * std::max(1.0, rep.t_end));
  EXPECT_NEAR(rep.stages.total, rep.t_end, 1e-6 * std::max(1.0, rep.t_end));
  EXPECT_NEAR(rep.t_end, result.total_time_s, 1e-9);
  // Each stage is non-negative and some real work was attributed.
  EXPECT_GE(rep.stages.rollout, 0.0);
  EXPECT_GE(rep.stages.cache_wait, 0.0);
  EXPECT_GE(rep.stages.learn, 0.0);
  EXPECT_GE(rep.stages.aggregate_wait, 0.0);
  EXPECT_GE(rep.stages.aggregate, 0.0);
  EXPECT_GE(rep.stages.idle, 0.0);
  EXPECT_GT(rep.stages.rollout + rep.stages.learn, 0.0);
  EXPECT_EQ(rep.rounds, result.rounds.size());
}

TEST(Report, StalenessQuantilesPerVersion) {
  std::vector<std::string> lines;
  const auto result = run_with_ledger(tiny_config(), lines);
  const auto reports = analyze_ledger(lines);
  ASSERT_EQ(reports.size(), 1u);
  const RunReport& rep = reports.front();
  ASSERT_FALSE(rep.staleness.empty());
  std::size_t aggregated = 0;
  for (std::size_t i = 0; i < rep.staleness.size(); ++i) {
    const auto& s = rep.staleness[i];
    EXPECT_GT(s.count, 0u);
    EXPECT_LE(s.p50, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_LE(s.mean, s.max);
    if (i) {
      EXPECT_LT(rep.staleness[i - 1].version, s.version);
    }
    aggregated += s.count;
  }
  // Every aggregated gradient carried one staleness sample.
  EXPECT_EQ(aggregated, result.staleness_samples.size());
}

TEST(Report, WastedCostMatchesFaultCounters) {
  std::vector<std::string> lines;
  const auto result = run_with_ledger(faulty_config(), lines);
  ASSERT_GT(result.faults.failed_invocations, 0u);
  const auto reports = analyze_ledger(lines);
  ASSERT_EQ(reports.size(), 1u);
  const RunReport& rep = reports.front();
  // Acceptance criterion: wasted-cost attribution matches the fault
  // subsystem's counters (near: float-sum order differs).
  EXPECT_EQ(rep.failed_invocations, result.faults.failed_invocations);
  EXPECT_EQ(rep.retries, result.faults.retries);
  EXPECT_EQ(rep.giveups, result.faults.giveups);
  EXPECT_NEAR(rep.wasted_cost_usd, result.faults.wasted_cost_usd, 1e-9);
  EXPECT_NEAR(rep.wasted_seconds, result.faults.wasted_seconds, 1e-9);
  EXPECT_NEAR(rep.total_cost_usd, result.total_cost_usd, 1e-9);
  ASSERT_FALSE(rep.wasted.empty());
  std::uint64_t by_error = 0;
  double cost_by_error = 0.0;
  for (const auto& w : rep.wasted) {
    by_error += w.count;
    cost_by_error += w.cost_usd;
  }
  EXPECT_EQ(by_error, rep.failed_invocations);
  EXPECT_NEAR(cost_by_error, rep.wasted_cost_usd, 1e-9);
}

TEST(Report, InjectedStragglersAreIdentified) {
  auto cfg = tiny_config();
  cfg.faults.config.straggler_prob = 0.3;
  cfg.faults.config.straggler_mult = 4.0;
  std::vector<std::string> lines;
  const auto result = run_with_ledger(cfg, lines);
  ASSERT_GT(result.faults.stragglers, 0u);
  const auto reports = analyze_ledger(lines);
  ASSERT_EQ(reports.size(), 1u);
  const RunReport& rep = reports.front();
  std::size_t injected = 0;
  for (const auto& s : rep.stragglers)
    if (s.injected) ++injected;
  EXPECT_GT(injected, 0u);
  // Sorted by descending ratio.
  for (std::size_t i = 1; i < rep.stragglers.size(); ++i)
    EXPECT_GE(rep.stragglers[i - 1].ratio, rep.stragglers[i].ratio);
}

TEST(Report, PrintAndJsonOutputsAreWellFormed) {
  std::vector<std::string> lines;
  run_with_ledger(tiny_config(), lines);
  const auto reports = analyze_ledger(lines);
  ASSERT_EQ(reports.size(), 1u);
  std::ostringstream text;
  print_report(text, reports.front());
  EXPECT_NE(text.str().find("critical-path breakdown"), std::string::npos);
  EXPECT_NE(text.str().find("staleness per policy version"),
            std::string::npos);
  EXPECT_NE(text.str().find("wasted-cost attribution"), std::string::npos);
  std::ostringstream json;
  write_report_json(json, reports.front());
  EXPECT_EQ(json.str().front(), '{');
}

TEST(Report, MalformedLedgerThrowsWithLineNumber) {
  std::vector<std::string> lines = {
      R"({"ev":"run_begin","run":1,"t":0})",
      "{not json",
  };
  try {
    analyze_ledger(lines);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Report, EmptyAndBlankLedgersProduceNoReports) {
  EXPECT_TRUE(analyze_ledger({}).empty());
  EXPECT_TRUE(analyze_ledger({"", "  "}).empty());
}

TEST(Report, ServeSummaryMatchesEngineCounters) {
  // A serving run's ledger analyzes into a serve section whose per-tenant
  // counts and quantiles reproduce the engine's own result struct.
  serve::ServeConfig cfg;
  serve::TenantConfig t;
  t.name = "walker";
  t.obs_dim = 8;
  t.act_dim = 3;
  t.hidden = 16;
  t.batch.max_batch = 16;
  t.batch.max_wait_s = 0.002;
  t.traffic.rate_per_s = 400.0;
  t.traffic.duration_s = 5.0;
  cfg.tenants = {t};
  cfg.worker_capacity = 8;
  cfg.autoscale.max_workers = 4;
  cfg.seed = 42;

  obs::LedgerRecorder led;
  obs::install_ledger(&led);
  serve::ServeEngine eng(cfg);
  eng.publish_policy(0, serve::make_policy_params(t, 1), 1);
  const auto res = eng.run();
  obs::install_ledger(nullptr);

  const auto reports = analyze_ledger(led.lines());
  ASSERT_EQ(reports.size(), 1u);
  const auto& rep = reports.front();
  ASSERT_EQ(rep.serve.tenants.size(), 1u);
  const auto& st = rep.serve.tenants[0];
  const auto& tr = res.tenants[0];
  EXPECT_EQ(st.tenant, "walker");
  EXPECT_EQ(st.completed, tr.completed);
  EXPECT_EQ(st.failed, tr.failed);
  EXPECT_EQ(st.rejected, tr.rejected);
  EXPECT_EQ(st.batches, tr.batches);
  EXPECT_DOUBLE_EQ(st.mean_batch, tr.mean_batch);
  // Same latency samples, same nearest-rank definition → exact equality.
  EXPECT_EQ(st.p50_s, tr.p50_s);
  EXPECT_EQ(st.p99_s, tr.p99_s);
  EXPECT_EQ(st.p999_s, tr.p999_s);
  EXPECT_EQ(rep.serve.peak_workers, res.peak_workers);
  EXPECT_EQ(rep.serve.scale_ups, res.scale_ups);
  EXPECT_EQ(rep.serve.scale_downs, res.scale_downs);

  std::ostringstream text;
  print_report(text, rep);
  EXPECT_NE(text.str().find("serving tier"), std::string::npos);
  std::ostringstream json;
  write_report_json(json, rep);
  EXPECT_NE(json.str().find("\"serve\":{\"tenants\":["), std::string::npos);

  // Training-only reports skip the section entirely.
  std::vector<std::string> train_lines;
  run_with_ledger(tiny_config(), train_lines);
  const auto train_rep = analyze_ledger(train_lines).front();
  EXPECT_TRUE(train_rep.serve.tenants.empty());
  std::ostringstream train_text;
  print_report(train_text, train_rep);
  EXPECT_EQ(train_text.str().find("serving tier"), std::string::npos);
}

TEST(Report, MultiRunLedgersSplitPerRun) {
  // Two runs captured into one recorder (multi-seed bench style) analyze
  // into two reports keyed by the run id.
  obs::LedgerRecorder led;
  obs::install_ledger(&led);
  auto cfg = tiny_config();
  cfg.rounds = 3;
  (void)core::run_training(cfg);
  cfg.seed = 8;
  (void)core::run_training(cfg);
  obs::install_ledger(nullptr);
  const auto reports = analyze_ledger(led.lines());
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_LT(reports[0].run, reports[1].run);
  for (const auto& rep : reports) {
    EXPECT_EQ(rep.rounds, 3u);
    EXPECT_NEAR(rep.stages.sum(), rep.t_end,
                1e-6 * std::max(1.0, rep.t_end));
  }
}

}  // namespace
}  // namespace stellaris::report
