// Importance-sampling truncation with a global view (§V-A, Eq. 2).
//
// Each learner bounds its local ratio π_i/μ, but asynchronous learners hold
// distinct policies, so an unbounded *cross-learner* ratio can still blow up
// the aggregated update. Stellaris therefore truncates at aggregation time
// using the most conservative learner-actor ratio observed in the group:
//
//   R' = min(|min_i(π_i/μ)|, ρ)                                     (Eq. 2)
//
// Two layers implement this here:
//  1. learner-side: per-sample ratios are capped at ρ inside the surrogate
//     (ppo/impact `ratio_cap` parameter) — the classic truncated-IS part;
//  2. aggregation-side: each gradient in the group is rescaled by
//     min(1, R'/r̄_i) where r̄_i is the learner's batch-mean ratio, pulling
//     drifted learners back to the group's conservative ratio.
#pragma once

#include <vector>

namespace stellaris::core {

/// Eq. 2: the group truncation value R' from per-learner mean ratios.
double global_truncated_ratio(const std::vector<double>& learner_ratios,
                              double rho);

/// Per-gradient scale factors min(1, R'/r̄_i); all 1.0 when truncation is
/// disabled or every learner is already within R'.
std::vector<double> truncation_scales(const std::vector<double>& learner_ratios,
                                      double rho);

}  // namespace stellaris::core
