# Empty dependencies file for serverless_playground.
# This may be replaced when dependencies are built.
