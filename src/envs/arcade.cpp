#include "envs/arcade.hpp"

#include <algorithm>
#include <cmath>

namespace stellaris::envs {

ArcadeEnv::ArcadeEnv(std::string name, std::size_t n_actions,
                     std::size_t max_steps, double reward_scale) {
  spec_.name = std::move(name);
  spec_.obs = nn::ObsSpec::planes(kArcadeChannels, kArcadeSize, kArcadeSize);
  spec_.action_kind = nn::ActionKind::kDiscrete;
  spec_.act_dim = n_actions;
  spec_.max_steps = max_steps;
  spec_.reward_scale = reward_scale;
}

float& ArcadeEnv::plane(std::span<float> canvas, std::size_t c,
                        std::size_t y, std::size_t x) const {
  STELLARIS_DCHECK(c < kArcadeChannels && y < kArcadeSize && x < kArcadeSize);
  return canvas[(c * kArcadeSize + y) * kArcadeSize + x];
}

std::vector<float> ArcadeEnv::reset(std::uint64_t seed) {
  std::vector<float> obs(spec_.obs.flat_dim);
  reset_into(seed, obs);
  return obs;
}

void ArcadeEnv::reset_into(std::uint64_t seed, std::span<float> obs) {
  rng_ = Rng(seed);
  step_count_ = 0;
  reset_game();
  observe_into(obs);
}

StepResult ArcadeEnv::step_discrete(std::size_t action) {
  StepResult r;
  r.obs.resize(spec_.obs.flat_dim);
  const StepOut out = step_discrete_into(action, r.obs);
  r.reward = out.reward;
  r.done = out.done;
  return r;
}

StepOut ArcadeEnv::step_discrete_into(std::size_t action,
                                      std::span<float> obs) {
  STELLARIS_CHECK_MSG(action < spec_.act_dim,
                      spec_.name << ": action " << action << " out of range");
  auto [reward, done] = tick(action);
  ++step_count_;
  observe_into(obs);
  return {reward, done || step_count_ >= spec_.max_steps};
}

void ArcadeEnv::observe_into(std::span<float> obs) {
  STELLARIS_CHECK_MSG(obs.size() == spec_.obs.flat_dim,
                      spec_.name << ": obs buffer size " << obs.size()
                                 << " != " << spec_.obs.flat_dim);
  std::fill(obs.begin(), obs.end(), 0.0f);
  render(obs);
}

// ---------------------------------------------------------------------------
// SpaceInvaders
// ---------------------------------------------------------------------------

SpaceInvadersEnv::SpaceInvadersEnv()
    : ArcadeEnv("SpaceInvaders", 4, 160, 180.0),
      grid_rows_(3),
      grid_cols_(8) {}

void SpaceInvadersEnv::reset_game() {
  alive_.assign(grid_rows_ * grid_cols_, 1);
  block_x_ = 2;
  block_y_ = 1;
  block_dir_ = 1;
  player_x_ = kArcadeSize / 2;
  player_shots_.clear();
  alien_shots_.clear();
  fire_cooldown_ = 0;
}

std::pair<double, bool> SpaceInvadersEnv::tick(std::size_t action) {
  double reward = 0.0;

  // Player movement / firing.
  if (action == 1 && player_x_ > 0) --player_x_;
  if (action == 2 && player_x_ + 1 < kArcadeSize) ++player_x_;
  if (fire_cooldown_ > 0) --fire_cooldown_;
  if (action == 3 && fire_cooldown_ == 0) {
    player_shots_.push_back({player_x_, kArcadeSize - 2});
    fire_cooldown_ = 3;
  }

  // Advance player shots and resolve alien hits.
  for (auto it = player_shots_.begin(); it != player_shots_.end();) {
    if (it->y == 0) {
      it = player_shots_.erase(it);
      continue;
    }
    --it->y;
    bool hit = false;
    for (std::size_t r = 0; r < grid_rows_ && !hit; ++r) {
      for (std::size_t c = 0; c < grid_cols_ && !hit; ++c) {
        if (!alive_[r * grid_cols_ + c]) continue;
        const auto ax =
            static_cast<std::ptrdiff_t>(c * 2) + block_x_;
        const auto ay = static_cast<std::ptrdiff_t>(block_y_ + r);
        if (ax == static_cast<std::ptrdiff_t>(it->x) &&
            ay == static_cast<std::ptrdiff_t>(it->y)) {
          alive_[r * grid_cols_ + c] = 0;
          reward += 10.0;
          hit = true;
        }
      }
    }
    it = hit ? player_shots_.erase(it) : it + 1;
  }

  // Alien block march: shift sideways every other tick; descend at edges.
  if (step_count_ % 2 == 0) {
    block_x_ += block_dir_;
    const auto span = static_cast<std::ptrdiff_t>(grid_cols_ * 2 - 1);
    if (block_x_ <= 0 ||
        block_x_ + span >= static_cast<std::ptrdiff_t>(kArcadeSize)) {
      block_dir_ = -block_dir_;
      ++block_y_;
    }
  }

  // Occasional alien bombs from a random live column.
  if (rng_.bernoulli(0.15)) {
    std::vector<std::size_t> live_cols;
    for (std::size_t c = 0; c < grid_cols_; ++c)
      for (std::size_t r = 0; r < grid_rows_; ++r)
        if (alive_[r * grid_cols_ + c]) {
          live_cols.push_back(c);
          break;
        }
    if (!live_cols.empty()) {
      const std::size_t c = live_cols[rng_.uniform_int(live_cols.size())];
      const auto ax = static_cast<std::ptrdiff_t>(c * 2) + block_x_;
      if (ax >= 0 && ax < static_cast<std::ptrdiff_t>(kArcadeSize))
        alien_shots_.push_back(
            {static_cast<std::size_t>(ax), block_y_ + grid_rows_});
    }
  }
  bool dead = false;
  for (auto it = alien_shots_.begin(); it != alien_shots_.end();) {
    ++it->y;
    if (it->y >= kArcadeSize) {
      it = alien_shots_.erase(it);
      continue;
    }
    if (it->y == kArcadeSize - 1 && it->x == player_x_) {
      dead = true;
      break;
    }
    ++it;
  }
  if (dead) return {reward - 15.0, true};

  // Win/lose conditions.
  const bool cleared =
      std::all_of(alive_.begin(), alive_.end(), [](auto a) { return !a; });
  if (cleared) return {reward + 50.0, true};
  if (block_y_ + grid_rows_ >= kArcadeSize - 1) return {reward - 15.0, true};
  return {reward, false};
}

void SpaceInvadersEnv::render(std::span<float> canvas) const {
  plane(canvas, 0, kArcadeSize - 1, player_x_) = 1.0f;
  for (std::size_t r = 0; r < grid_rows_; ++r) {
    for (std::size_t c = 0; c < grid_cols_; ++c) {
      if (!alive_[r * grid_cols_ + c]) continue;
      const auto ax = static_cast<std::ptrdiff_t>(c * 2) + block_x_;
      const std::size_t ay = block_y_ + r;
      if (ax >= 0 && ax < static_cast<std::ptrdiff_t>(kArcadeSize) &&
          ay < kArcadeSize)
        plane(canvas, 1, ay, static_cast<std::size_t>(ax)) = 1.0f;
    }
  }
  for (const auto& s : player_shots_)
    if (s.y < kArcadeSize) plane(canvas, 2, s.y, s.x) = 1.0f;
  for (const auto& s : alien_shots_)
    if (s.y < kArcadeSize) plane(canvas, 2, s.y, s.x) = 0.5f;
}

// ---------------------------------------------------------------------------
// Qbert
// ---------------------------------------------------------------------------

QbertEnv::QbertEnv() : ArcadeEnv("Qbert", 4, 120, 400.0) {}

void QbertEnv::reset_game() {
  painted_.assign(rows_ * (rows_ + 1) / 2, 0);
  player_row_ = 0;
  player_col_ = 0;
  painted_[0] = 1;  // start cell counts as painted
  ball_row_ = -1;
  ball_delay_ = 4 + rng_.uniform_int(4);
}

bool QbertEnv::on_pyramid(std::ptrdiff_t row, std::ptrdiff_t col) const {
  return row >= 0 && row < static_cast<std::ptrdiff_t>(rows_) && col >= 0 &&
         col <= row;
}

std::pair<double, bool> QbertEnv::tick(std::size_t action) {
  // Hops: 0 = up-left, 1 = up-right, 2 = down-left, 3 = down-right.
  std::ptrdiff_t nr = player_row_, nc = player_col_;
  switch (action) {
    case 0: --nr; --nc; break;
    case 1: --nr; break;
    case 2: ++nr; break;
    case 3: ++nr; ++nc; break;
    default: break;
  }
  if (!on_pyramid(nr, nc)) return {-10.0, true};  // hopped off the pyramid
  player_row_ = nr;
  player_col_ = nc;

  double reward = -0.5;  // step cost: encourages efficient painting
  const std::size_t idx =
      static_cast<std::size_t>(nr) * (static_cast<std::size_t>(nr) + 1) / 2 +
      static_cast<std::size_t>(nc);
  if (!painted_[idx]) {
    painted_[idx] = 1;
    reward += 25.0;
  }

  // Enemy ball: spawns at the apex after a delay, hops downward randomly.
  if (ball_row_ < 0) {
    if (ball_delay_ == 0) {
      ball_row_ = 0;
      ball_col_ = 0;
    } else {
      --ball_delay_;
    }
  } else {
    ++ball_row_;
    ball_col_ += rng_.bernoulli(0.5) ? 1 : 0;
    if (!on_pyramid(ball_row_, ball_col_)) {
      ball_row_ = -1;  // rolled off; respawn later
      ball_delay_ = 4 + rng_.uniform_int(4);
    }
  }
  if (ball_row_ == player_row_ && ball_col_ == player_col_)
    return {reward - 20.0, true};

  const bool all_painted =
      std::all_of(painted_.begin(), painted_.end(), [](auto p) { return p; });
  if (all_painted) return {reward + 100.0, true};
  return {reward, false};
}

void QbertEnv::render(std::span<float> canvas) const {
  // Pyramid cell (r, c) -> canvas position; centered horizontally.
  auto cell_pos = [&](std::ptrdiff_t r, std::ptrdiff_t c) {
    const std::size_t y = 3 + static_cast<std::size_t>(r) * 2;
    const std::size_t x = kArcadeSize / 2 - static_cast<std::size_t>(r) +
                          static_cast<std::size_t>(c) * 2;
    return std::pair<std::size_t, std::size_t>{y, x};
  };
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      const auto [y, x] = cell_pos(static_cast<std::ptrdiff_t>(r),
                                   static_cast<std::ptrdiff_t>(c));
      const std::size_t idx = r * (r + 1) / 2 + c;
      plane(canvas, 1, y, x) = painted_[idx] ? 1.0f : 0.3f;
    }
  }
  {
    const auto [y, x] = cell_pos(player_row_, player_col_);
    plane(canvas, 0, y, x) = 1.0f;
  }
  if (ball_row_ >= 0 && on_pyramid(ball_row_, ball_col_)) {
    const auto [y, x] = cell_pos(ball_row_, ball_col_);
    plane(canvas, 2, y, x) = 1.0f;
  }
}

// ---------------------------------------------------------------------------
// Gravitar
// ---------------------------------------------------------------------------

GravitarEnv::GravitarEnv() : ArcadeEnv("Gravitar", 4, 160, 120.0) {}

void GravitarEnv::reset_game() {
  ship_x_ = kArcadeSize / 2.0;
  ship_y_ = 3.0;
  vel_x_ = 0.0;
  vel_y_ = 0.0;
  terrain_height_.assign(kArcadeSize, 0);
  // Rolling random terrain along the bottom, height 1..4.
  std::size_t h = 2;
  for (std::size_t x = 0; x < kArcadeSize; ++x) {
    if (rng_.bernoulli(0.4))
      h = std::clamp<std::size_t>(h + (rng_.bernoulli(0.5) ? 1 : -1), 1, 4);
    terrain_height_[x] = h;
  }
  depots_.clear();
  while (depots_.size() < 4) {
    const std::size_t x = rng_.uniform_int(kArcadeSize);
    const std::size_t y =
        5 + rng_.uniform_int(kArcadeSize - 7 - terrain_height_[x]);
    depots_.emplace_back(x, y);
  }
}

std::pair<double, bool> GravitarEnv::tick(std::size_t action) {
  constexpr double kGravity = 0.06;
  constexpr double kThrust = 0.17;
  vel_y_ += kGravity;
  if (action == 1) vel_y_ -= kThrust;
  if (action == 2) vel_x_ -= kThrust * 0.7;
  if (action == 3) vel_x_ += kThrust * 0.7;
  vel_x_ = std::clamp(vel_x_, -1.0, 1.0);
  vel_y_ = std::clamp(vel_y_, -1.0, 1.0);
  ship_x_ += vel_x_;
  ship_y_ += vel_y_;

  // Side walls are lethal, like Gravitar's cavern walls.
  if (ship_x_ < 0.0 || ship_x_ >= kArcadeSize || ship_y_ < 0.0)
    return {-15.0, true};

  const auto cx = static_cast<std::size_t>(ship_x_);
  const double ground = static_cast<double>(kArcadeSize -
                                            terrain_height_[cx]);
  if (ship_y_ >= ground) return {-15.0, true};  // crashed into terrain

  double reward = 0.1;  // survival trickle to shape early learning
  for (auto it = depots_.begin(); it != depots_.end();) {
    const double dx = ship_x_ - static_cast<double>(it->first);
    const double dy = ship_y_ - static_cast<double>(it->second);
    if (dx * dx + dy * dy <= 2.0) {
      reward += 20.0;
      it = depots_.erase(it);
    } else {
      ++it;
    }
  }
  if (depots_.empty()) return {reward + 50.0, true};
  return {reward, false};
}

void GravitarEnv::render(std::span<float> canvas) const {
  const auto sx = static_cast<std::size_t>(
      std::clamp(ship_x_, 0.0, static_cast<double>(kArcadeSize - 1)));
  const auto sy = static_cast<std::size_t>(
      std::clamp(ship_y_, 0.0, static_cast<double>(kArcadeSize - 1)));
  plane(canvas, 0, sy, sx) = 1.0f;
  for (const auto& [x, y] : depots_) plane(canvas, 1, y, x) = 1.0f;
  for (std::size_t x = 0; x < kArcadeSize; ++x)
    for (std::size_t h = 0; h < terrain_height_[x]; ++h)
      plane(canvas, 2, kArcadeSize - 1 - h, x) = 1.0f;
}

}  // namespace stellaris::envs
