// VecEnv member-RNG corpus (driver-purity, DESIGN.md §17): in files whose
// path contains "vec_env", a member-`rng_` DRAW (`rng_.`) reachable from a
// driver body must be flagged even outside the submit lambda itself —
// auto-reset seeds must come from the caller's per-invocation stream.
// Delegating `rng_` by reference into a caller-Rng overload is the
// sanctioned legacy idiom and must stay clean.
#pragma once

namespace stellaris {

struct VecRng {
  int next() { return 0; }
};

struct VecEnv {
  VecRng rng_;

  // Caller-Rng overload: draws come from the argument — clean.
  int step_batch_keyed(VecRng& rng) { return rng.next(); }

  // Legacy convenience form: passes the member BY REFERENCE (`rng_`
  // followed by `)`), never draws it here — clean.
  int step_batch_legacy() { return step_batch_keyed(rng_); }

  int step_batch_unkeyed() {
    // expect: driver-purity
    return rng_.next();
  }
};

}  // namespace stellaris
