// ledger-schema pass: the run ledger is a shared contract between every
// emit site (`obs::LedgerEvent("ev", t).field(...)...finish()`) and the
// offline analyzer tools/report/ledger_analysis.cpp. The pass rebuilds
// both sides from source and diffs them:
//
//   * an event that is emitted but has no parser branch silently drops
//     report rows — finding at the emit site, unless the parser file
//     declares `ledger-schema:ignore <ev>` with a rationale;
//   * a parser branch for an event nothing emits is dead code — finding
//     at the branch;
//   * a parser key (`num_or(ev, "k", ...)`, `str_or`, `ev.has("k")`,
//     `ev.at("k")`) that no emit site of that event ever sets reads a
//     field that cannot exist — finding at the branch;
//   * a key the parser reads unconditionally (`ev.at("k")` with no
//     `ev.has("k")` guard in the branch) must be present at every emit
//     site of the event — finding at any site that omits it.
//
// Field sets are unions per emit site (conditionally-added fields count as
// present), so the unconditional-key check is deliberately lenient; the
// has/at distinction carries the required/optional split.
#include "analyzer.hpp"
#include "functions.hpp"

namespace stellaris::analyze {

namespace {

bool punct_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}
bool ident_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}

/// Fields every event carries implicitly (written by the LedgerEvent
/// constructor itself): the type tag, the run id, the virtual timestamp.
const std::set<std::string>& implicit_fields() {
  static const std::set<std::string> s = {"ev", "run", "t"};
  return s;
}

struct EmitSite {
  const SourceFile* file = nullptr;
  int line = 0;
  std::string event;
  std::set<std::string> fields;
};

/// `LedgerEvent("ev", t).field(...)` (chained temporary) or
/// `LedgerEvent var("ev", t); var.field(...); ... var.finish()` (named).
/// Either way the fields follow the construction as `. field ( "k"` /
/// `. raw ( "k"` tokens; collection stops at the first `finish`.
std::vector<EmitSite> extract_emit_sites(const Project& project) {
  std::vector<EmitSite> out;
  for (const auto& file : project.files) {
    // The builder's own definition is not an emit site.
    if (file.rel.find("obs/ledger.") != std::string::npos) continue;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!ident_is(toks[i], "LedgerEvent")) continue;
      std::size_t open = 0;
      if (punct_is(toks[i + 1], "(") &&
          toks[i + 2].kind == Token::Kind::kString) {
        open = i + 1;  // chained temporary
      } else if (toks[i + 1].kind == Token::Kind::kIdent && i + 3 < toks.size() &&
                 punct_is(toks[i + 2], "(") &&
                 toks[i + 3].kind == Token::Kind::kString) {
        open = i + 2;  // named variable
      } else {
        continue;  // declaration, member definition, reference, ...
      }
      EmitSite site;
      site.file = &file;
      site.line = toks[i].line;
      site.event = toks[open + 1].text;
      std::size_t j = match_group(toks, open);
      const std::size_t cap = std::min(toks.size(), j + 600);
      while (j + 3 < cap) {
        if (ident_is(toks[j], "finish")) break;
        if (punct_is(toks[j], ".") &&
            (ident_is(toks[j + 1], "field") || ident_is(toks[j + 1], "raw")) &&
            punct_is(toks[j + 2], "(") &&
            toks[j + 3].kind == Token::Kind::kString) {
          site.fields.insert(toks[j + 3].text);
          j = match_group(toks, j + 2);
          continue;
        }
        ++j;
      }
      out.push_back(std::move(site));
      i = open;
    }
  }
  return out;
}

struct ParserBranch {
  int line = 0;
  std::set<std::string> accessed;  // every key the branch reads
  std::set<std::string> required;  // at()-keys with no has() guard
};

/// Branches are `type == "ev"` comparisons in the parser's dispatch chain;
/// the branch body is the following balanced `{...}`.
std::map<std::string, ParserBranch> extract_branches(const SourceFile& parser) {
  std::map<std::string, ParserBranch> out;
  const auto& toks = parser.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!ident_is(toks[i], "type")) continue;
    if (!punct_is(toks[i + 1], "=") || !punct_is(toks[i + 2], "=")) continue;
    if (toks[i + 3].kind != Token::Kind::kString) continue;
    const std::string event = toks[i + 3].text;
    std::size_t j = i + 4;
    while (j < toks.size() && !punct_is(toks[j], "{") &&
           !punct_is(toks[j], ";"))
      ++j;
    if (j >= toks.size() || !punct_is(toks[j], "{")) continue;
    const std::size_t end = match_group(toks, j);
    ParserBranch branch;
    branch.line = toks[i + 3].line;
    std::set<std::string> has_keys, at_keys;
    for (std::size_t k = j; k + 4 < end; ++k) {
      // num_or(ev, "k", ...) / str_or(ev, "k", ...)
      if ((ident_is(toks[k], "num_or") || ident_is(toks[k], "str_or")) &&
          punct_is(toks[k + 1], "(") &&
          toks[k + 2].kind == Token::Kind::kIdent &&
          punct_is(toks[k + 3], ",") &&
          toks[k + 4].kind == Token::Kind::kString) {
        branch.accessed.insert(toks[k + 4].text);
        continue;
      }
      // ev.has("k") / ev.at("k")
      if (punct_is(toks[k], ".") &&
          (ident_is(toks[k + 1], "has") || ident_is(toks[k + 1], "at")) &&
          punct_is(toks[k + 2], "(") &&
          toks[k + 3].kind == Token::Kind::kString) {
        branch.accessed.insert(toks[k + 3].text);
        (ident_is(toks[k + 1], "has") ? has_keys : at_keys)
            .insert(toks[k + 3].text);
      }
    }
    for (const auto& key : at_keys)
      if (!has_keys.count(key)) branch.required.insert(key);
    out.emplace(event, std::move(branch));
    i = j;
  }
  return out;
}

}  // namespace

void check_ledger(const Project& project, std::vector<Finding>& out) {
  const auto sites = extract_emit_sites(project);

  const SourceFile* parser = nullptr;
  for (const auto& file : project.files)
    if (file.rel.size() >= 19 &&
        file.rel.compare(file.rel.size() - 19, 19, "ledger_analysis.cpp") == 0)
      parser = &file;
  if (!parser) {
    if (!sites.empty())
      out.push_back({"ledger-schema", sites.front().file->rel,
                     sites.front().line, "no-parser",
                     "ledger events are emitted but "
                     "tools/report/ledger_analysis.cpp is missing — the "
                     "emitter/parser contract cannot be checked"});
    return;
  }

  const auto branches = extract_branches(*parser);
  std::set<std::string> ignored;
  for (const auto& file : project.files)
    ignored.insert(file.ignored_events.begin(), file.ignored_events.end());

  std::map<std::string, std::set<std::string>> emitted_fields;  // ev -> union
  std::set<std::string> emitted_events;
  for (const auto& site : sites) {
    emitted_events.insert(site.event);
    emitted_fields[site.event].insert(site.fields.begin(), site.fields.end());
  }

  std::set<std::string> reported;
  auto push = [&](Finding f) {
    if (reported.insert(f.id()).second) out.push_back(std::move(f));
  };

  for (const auto& site : sites) {
    if (site.file->suppressed("ledger-schema", site.line)) continue;
    auto branch = branches.find(site.event);
    if (branch == branches.end()) {
      if (!ignored.count(site.event))
        push({"ledger-schema", site.file->rel, site.line,
              "unparsed:" + site.event,
              "event \"" + site.event + "\" is emitted but " + parser->rel +
                  " has no branch for it — report rows are silently "
                  "dropped (add a branch, or declare `ledger-schema:ignore " +
                  site.event + "` there with a rationale)"});
      continue;
    }
    for (const auto& key : branch->second.required)
      if (!site.fields.count(key) && !implicit_fields().count(key))
        push({"ledger-schema", site.file->rel, site.line,
              "missing:" + site.event + "." + key,
              "emit site for \"" + site.event + "\" omits field \"" + key +
                  "\" which the parser reads unconditionally (ev.at)"});
  }

  for (const auto& [event, branch] : branches) {
    if (parser->suppressed("ledger-schema", branch.line)) continue;
    if (!emitted_events.count(event)) {
      if (!ignored.count(event))
        push({"ledger-schema", parser->rel, branch.line, "stale:" + event,
              "parser branch for \"" + event +
                  "\" matches an event nothing emits — dead code or a "
                  "renamed event"});
      continue;
    }
    const auto& fields = emitted_fields[event];
    for (const auto& key : branch.accessed)
      if (!fields.count(key) && !implicit_fields().count(key))
        push({"ledger-schema", parser->rel, branch.line,
              "unknown-key:" + event + "." + key,
              "parser reads field \"" + key + "\" of event \"" + event +
                  "\" but no emit site ever sets it"});
  }
}

}  // namespace stellaris::analyze
