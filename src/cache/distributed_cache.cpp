#include "cache/distributed_cache.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::cache {

namespace {
/// FNV-1a 64-bit. Deliberately not std::hash: the stripe a key lands on
/// must be identical on every platform/stdlib so shard-local effects (e.g.
/// contention patterns in the real driver) are reproducible.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

DistributedCache::DistributedCache(std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  auto& m = obs::metrics();
  m_puts_ = &m.counter("cache.puts");
  m_gets_ = &m.counter("cache.gets");
  m_hits_ = &m.counter("cache.hits");
  m_misses_ = &m.counter("cache.misses");
  m_erases_ = &m.counter("cache.erases");
  m_bytes_written_ = &m.counter("cache.bytes_written");
  m_bytes_read_ = &m.counter("cache.bytes_read");
  m_blocked_timeouts_ = &m.counter("cache.blocked_read_timeouts");
  // Explicitly real-time (wall-clock) debug metric: how long real driver
  // threads sat in get_blocking. Never feeds back into virtual-time
  // results; see the header comment on the real-time get_blocking.
  m_blocked_wait_real_ms_ =
      &m.histogram("cache.blocked_read_wait_real_ms", 0.0, 500.0, 100);
  m_resident_bytes_ = &m.gauge("cache.resident_bytes");
  m_async_waits_ = &m.counter("cache.async_waits");
  m_async_timeouts_ = &m.counter("cache.async_timeouts");
}

DistributedCache::Shard& DistributedCache::shard_for(
    const std::string& key) const {
  return *shards_[fnv1a(key) % shards_.size()];
}

CacheValue DistributedCache::read_entry_locked(Shard& s,
                                               const Entry& entry) const {
  ++s.stats.hits;
  m_hits_->add();
  // Logical bytes "transferred" to the reader — the payload itself is
  // shared, not copied, but the metric keeps its transfer-volume meaning.
  s.stats.bytes_read += entry.data->size();
  m_bytes_read_->add(entry.data->size());
  return CacheValue{entry.data, entry.version};
}

const DistributedCache::Entry* DistributedCache::find_ready_locked(
    const Shard& s, const std::string& key, std::uint64_t min_version) {
  auto it = s.store.find(key);
  if (it == s.store.end() || it->second.version <= min_version)
    return nullptr;
  return &it->second;
}

std::uint64_t DistributedCache::put(const std::string& key, Bytes value) {
  // Wrapping moves the byte buffer into the refcounted payload — the heap
  // block the caller filled is the block every reader will alias.
  return put(key, std::make_shared<const Bytes>(std::move(value)));
}

std::uint64_t DistributedCache::put(const std::string& key, Payload value) {
  if (!value) value = std::make_shared<const Bytes>();
  Shard& s = shard_for(key);
  std::uint64_t new_version = 0;
  // Async waiters this put satisfies; their callbacks are scheduled (not
  // run) outside the lock, as fresh events at the current virtual time.
  struct Ready {
    sim::Engine* engine;
    AsyncCallback cb;
    CacheValue value;
  };
  std::vector<Ready> ready;
  {
    MutexLock lock(s.mu);
    auto& entry = s.store[key];
    const std::size_t old_size = entry.data ? entry.data->size() : 0;
    s.resident_bytes -= old_size;
    s.resident_bytes += value->size();
    s.stats.bytes_written += value->size();
    ++s.stats.puts;
    m_puts_->add();
    m_bytes_written_->add(value->size());
    m_resident_bytes_->add(static_cast<double>(value->size()) -
                           static_cast<double>(old_size));
    entry.data = std::move(value);
    new_version = ++entry.version;
    for (auto it = s.waiters.begin(); it != s.waiters.end();) {
      if (it->key == key && new_version > it->min_version) {
        if (it->deadline) *it->deadline = true;
        ready.push_back(
            {it->engine, std::move(it->cb), read_entry_locked(s, entry)});
        it = s.waiters.erase(it);
      } else {
        ++it;
      }
    }
  }
  s.cv.notify_all();
  for (auto& r : ready)
    r.engine->schedule_after(
        0.0, [cb = std::move(r.cb), v = std::move(r.value)]() mutable {
          cb(std::move(v));
        });
  return new_version;
}

std::optional<CacheValue> DistributedCache::get(const std::string& key) const {
  Shard& s = shard_for(key);
  MutexLock lock(s.mu);
  ++s.stats.gets;
  m_gets_->add();
  auto it = s.store.find(key);
  if (it == s.store.end()) {
    ++s.stats.misses;
    m_misses_->add();
    return std::nullopt;
  }
  return read_entry_locked(s, it->second);
}

CacheValue DistributedCache::get_or_throw(const std::string& key) const {
  auto v = get(key);
  if (!v) {
    LOG_ERROR << "cache miss for required key: " << key;
    throw CacheError("cache miss for required key: " + key);
  }
  return std::move(*v);
}

std::optional<CacheValue> DistributedCache::get_blocking(
    const std::string& key, std::uint64_t min_version,
    std::chrono::milliseconds timeout) {
  Shard& s = shard_for(key);
  // Real-concurrency path: this thread actually sleeps, so the wait is
  // intentionally measured against the wall clock and recorded under an
  // explicitly real-time debug metric. Nothing result-affecting depends on
  // it; the virtual-time overload below handles simulation callers.
  // lint:wall-clock-ok — measures genuine thread blocking time
  const auto wait_begin = std::chrono::steady_clock::now();
  const auto deadline = wait_begin + timeout;
  std::optional<CacheValue> result;
  double waited_ms = 0.0;
  {
    MutexLock lock(s.mu);
    const Entry* e = find_ready_locked(s, key, min_version);
    while (e == nullptr) {
      if (s.cv.wait_until(s.mu, deadline) == std::cv_status::timeout) {
        e = find_ready_locked(s, key, min_version);  // final re-check
        break;
      }
      e = find_ready_locked(s, key, min_version);
    }
    // Real blocking time for the debug histogram.
    const auto wait_end = std::chrono::steady_clock::now();  // lint:wall-clock-ok
    waited_ms =
        std::chrono::duration<double, std::milli>(wait_end - wait_begin)
            .count();
    m_blocked_wait_real_ms_->observe(waited_ms);
    ++s.stats.gets;
    m_gets_->add();
    if (e != nullptr) {
      result = read_entry_locked(s, *e);
    } else {
      ++s.stats.misses;
      m_misses_->add();
      m_blocked_timeouts_->add();
    }
  }
  if (!result) {
    LOG_DEBUG << "blocking read timed out after " << waited_ms
              << "ms: key=" << key << " min_version=" << min_version;
  }
  return result;
}

std::optional<CacheValue> DistributedCache::get_blocking(
    const std::string& key, std::uint64_t min_version, sim::Engine& engine,
    double timeout_s) {
  Shard& s = shard_for(key);
  MutexLock lock(s.mu);
  ++s.stats.gets;
  m_gets_->add();
  if (const Entry* e = find_ready_locked(s, key, min_version))
    return read_entry_locked(s, *e);
  // Single-threaded event loop: nothing can publish the key while we
  // "wait", so an unsatisfied read is a deterministic timeout.
  ++s.stats.misses;
  m_misses_->add();
  m_blocked_timeouts_->add();
  LOG_DEBUG << "virtual blocking read unsatisfied: key=" << key
            << " min_version=" << min_version << " (deadline would be t="
            << engine.now() + timeout_s << ")";
  return std::nullopt;
}

void DistributedCache::get_async(const std::string& key,
                                 std::uint64_t min_version,
                                 sim::Engine& engine, double timeout_s,
                                 AsyncCallback cb) {
  Shard& s = shard_for(key);
  m_async_waits_->add();
  MutexLock lock(s.mu);
  ++s.stats.gets;
  m_gets_->add();
  if (const Entry* e = find_ready_locked(s, key, min_version)) {
    CacheValue v = read_entry_locked(s, *e);
    engine.schedule_after(
        0.0, [cb = std::move(cb), v = std::move(v)]() mutable {
          cb(std::move(v));
        });
    return;
  }
  Waiter w;
  w.id = s.next_waiter_id++;
  w.key = key;
  w.min_version = min_version;
  w.engine = &engine;
  w.cb = std::move(cb);
  if (timeout_s > 0.0) {
    const std::uint64_t id = w.id;
    w.deadline = engine.schedule_cancellable_after(
        timeout_s, [this, &s, id] { expire_waiter(s, id); });
  }
  s.waiters.push_back(std::move(w));
}

void DistributedCache::expire_waiter(Shard& s, std::uint64_t id) {
  AsyncCallback cb;
  {
    MutexLock lock(s.mu);
    auto it = s.waiters.begin();
    for (; it != s.waiters.end(); ++it)
      if (it->id == id) break;
    if (it == s.waiters.end()) return;  // already satisfied or cleared
    cb = std::move(it->cb);
    ++s.stats.misses;
    m_misses_->add();
    m_async_timeouts_->add();
    LOG_DEBUG << "async cache wait timed out: key=" << it->key
              << " min_version=" << it->min_version;
    s.waiters.erase(it);
  }
  cb(std::nullopt);
}

std::size_t DistributedCache::pending_waiters() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {  // lint:shard-iter-ok — order-independent sum
    MutexLock lock(s->mu);
    n += s->waiters.size();
  }
  return n;
}

bool DistributedCache::contains(const std::string& key) const {
  Shard& s = shard_for(key);
  MutexLock lock(s.mu);
  return s.store.count(key) > 0;
}

std::uint64_t DistributedCache::version(const std::string& key) const {
  Shard& s = shard_for(key);
  MutexLock lock(s.mu);
  auto it = s.store.find(key);
  return it == s.store.end() ? 0 : it->second.version;
}

bool DistributedCache::erase(const std::string& key) {
  Shard& s = shard_for(key);
  MutexLock lock(s.mu);
  auto it = s.store.find(key);
  if (it == s.store.end()) return false;
  const std::size_t freed = it->second.data ? it->second.data->size() : 0;
  s.resident_bytes -= freed;
  ++s.stats.erases;
  m_erases_->add();
  m_resident_bytes_->add(-static_cast<double>(freed));
  s.store.erase(it);
  return true;
}

std::vector<std::string> DistributedCache::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  // lint:shard-iter-ok — collected across shards, then sorted below
  for (const auto& s : shards_) {
    MutexLock lock(s->mu);
    for (const auto& [key, entry] : s->store)
      if (key.compare(0, prefix.size(), prefix) == 0) out.push_back(key);
  }
  // Lexicographic result regardless of shard count or hash placement.
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DistributedCache::erase_prefix(const std::string& prefix) {
  std::size_t removed = 0;
  // lint:shard-iter-ok — per-key removal; totals are order-independent
  for (const auto& s : shards_) {
    std::size_t freed = 0;
    MutexLock lock(s->mu);
    for (auto it = s->store.begin(); it != s->store.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        freed += it->second.data ? it->second.data->size() : 0;
        ++s->stats.erases;
        m_erases_->add();
        it = s->store.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    s->resident_bytes -= freed;
    m_resident_bytes_->add(-static_cast<double>(freed));
  }
  if (removed > 0) {
    LOG_DEBUG << "erased " << removed << " keys with prefix " << prefix;
  }
  return removed;
}

std::size_t DistributedCache::num_keys() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {  // lint:shard-iter-ok — order-independent sum
    MutexLock lock(s->mu);
    n += s->store.size();
  }
  return n;
}

std::size_t DistributedCache::resident_bytes() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {  // lint:shard-iter-ok — order-independent sum
    MutexLock lock(s->mu);
    n += s->resident_bytes;
  }
  return n;
}

void DistributedCache::sample_depth(double t_s) const {
  auto* ts = obs::timeseries();
  if (!ts) return;
  ts->sample("cache.num_keys", t_s, static_cast<double>(num_keys()));
  ts->sample("cache.resident_bytes", t_s,
             static_cast<double>(resident_bytes()));
}

CacheStats DistributedCache::stats() const {
  CacheStats total;
  for (const auto& s : shards_) {  // lint:shard-iter-ok — order-independent sum
    MutexLock lock(s->mu);
    total.puts += s->stats.puts;
    total.gets += s->stats.gets;
    total.hits += s->stats.hits;
    total.misses += s->stats.misses;
    total.erases += s->stats.erases;
    total.bytes_written += s->stats.bytes_written;
    total.bytes_read += s->stats.bytes_read;
  }
  return total;
}

void DistributedCache::reset_stats() {
  for (const auto& s : shards_) {  // lint:shard-iter-ok — per-shard reset
    MutexLock lock(s->mu);
    s->stats = CacheStats{};
  }
}

void DistributedCache::clear() {
  std::size_t dropped = 0;
  for (const auto& s : shards_) {  // lint:shard-iter-ok — per-shard clear
    MutexLock lock(s->mu);
    dropped += s->store.size();
    s->store.clear();
    s->resident_bytes = 0;
    for (auto& w : s->waiters)
      if (w.deadline) *w.deadline = true;
    s->waiters.clear();
  }
  m_resident_bytes_->set(0.0);
  if (dropped > 0) {
    LOG_DEBUG << "cache cleared (" << dropped << " keys)";
  }
}

}  // namespace stellaris::cache
