// Canary / A-B rollout controller for one tenant (DESIGN.md §15).
//
// At most two policy versions serve at once: the STABLE version and, while a
// canary is active, the CANARY version receiving `fraction` of traffic.
// Request assignment is a single bernoulli draw per arrival — and only while
// a canary is active, so the assignment RNG stream advances identically on
// reruns regardless of driver. ServeEngine feeds per-request latency and
// predicted value back via observe(); a periodic evaluate() judges the
// current window:
//
//   rollback  if canary p99 latency (nearest-rank) breaches the SLO, or the
//             canary's mean predicted value drifts from the stable arm's by
//             more than `max_value_drift` (relative);
//   promote   after `healthy_windows_to_promote` CONSECUTIVE healthy
//             windows (stable := canary);
//   continue  otherwise. Windows with fewer than `min_window_requests`
//             canary samples carry over un-judged.
//
// The state machine is engine-thread only; samples arrive at merge time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_config.hpp"
#include "util/rng.hpp"

namespace stellaris::serve {

class RolloutController {
 public:
  explicit RolloutController(RolloutConfig cfg, std::uint64_t stable_version)
      : cfg_(cfg), stable_(stable_version) {}

  /// Begin a canary: `fraction` of subsequent arrivals go to `version`.
  void start(std::uint64_t version, double fraction);

  /// Version the next arrival should be served by. Draws from `rng` only
  /// while a canary is active (determinism contract).
  std::uint64_t assign(Rng& rng);

  /// Record one completed request's latency and mean predicted value.
  void observe(std::uint64_t version, double latency_s, double value);

  enum class Action { kNone, kContinue, kPromote, kRollback };

  struct Outcome {
    Action action = Action::kNone;
    double canary_p99 = 0.0;
    double stable_p99 = 0.0;
    double drift = 0.0;
    std::size_t canary_n = 0;
    std::string reason;  ///< "slo_breach" | "value_drift" | "healthy" | ""
  };

  /// Judge the window accumulated since the last judged evaluation.
  /// Returns kNone when no canary is active or the window is too small.
  Outcome evaluate();

  bool canary_active() const { return active_; }
  std::uint64_t stable_version() const { return stable_; }
  std::uint64_t canary_version() const { return canary_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t rollbacks() const { return rollbacks_; }

 private:
  struct Window {
    std::vector<double> latencies;
    double value_sum = 0.0;
    std::size_t n = 0;
  };

  void reset_windows();

  RolloutConfig cfg_;
  std::uint64_t stable_;
  std::uint64_t canary_ = 0;
  double fraction_ = 0.0;
  bool active_ = false;
  std::size_t healthy_windows_ = 0;
  Window stable_win_;
  Window canary_win_;
  std::uint64_t promotions_ = 0;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace stellaris::serve
