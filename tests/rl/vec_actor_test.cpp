// VecActor regression suite (DESIGN.md §17).
//
// The load-bearing property is the K=1 equivalence: a VecActor driving one
// env must emit a SampleBatch BYTE-identical to the scalar Actor for the
// same seeds — that is what lets the trainers swap in VecActor without
// disturbing any committed baseline. The serialized-bytes comparison pins
// every field at once (obs, rewards, log-probs, segments, episode returns).
#include "rl/vec_actor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "rl/actor.hpp"
#include "sim/driver.hpp"

namespace stellaris::rl {
namespace {

nn::ActorCritic policy_for(const std::string& env, std::uint64_t seed = 1) {
  const auto spec = envs::env_spec(env);
  const auto net = spec.obs.image ? nn::NetworkSpec::atari()
                                  : nn::NetworkSpec::mujoco(8);
  return nn::ActorCritic(spec.obs, spec.action_kind, spec.act_dim, net, seed);
}

VecActor make_vec(const std::string& env, std::size_t k, std::uint64_t seed) {
  return VecActor(std::make_unique<envs::VecEnv>(env, k, seed), seed);
}

// -- K=1 scalar equivalence ---------------------------------------------------

TEST(VecActorK1, ByteIdenticalToScalarActorContinuous) {
  auto policy = policy_for("Hopper", 9);
  Actor scalar(envs::make_env("Hopper"), 42);
  VecActor vec = make_vec("Hopper", 1, 42);
  VecActorScratch scratch;
  // Multi-call: episode state (lazy resets, running returns) must carry
  // across sample() calls exactly as the scalar actor's does.
  for (int call = 0; call < 4; ++call) {
    auto a = scalar.sample(policy, 57, call);
    auto b = vec.sample(policy, scratch, 57, call);
    ASSERT_EQ(a.serialize(), b.serialize()) << "call " << call;
  }
}

TEST(VecActorK1, ByteIdenticalToScalarActorDiscrete) {
  auto policy = policy_for("Qbert", 3);
  Actor scalar(envs::make_env("Qbert"), 11);
  VecActor vec = make_vec("Qbert", 1, 11);
  VecActorScratch scratch;
  for (int call = 0; call < 3; ++call) {
    auto a = scalar.sample(policy, 80, call);
    auto b = vec.sample(policy, scratch, 80, call);
    ASSERT_EQ(a.serialize(), b.serialize()) << "call " << call;
  }
}

TEST(VecActorK1, ByteIdenticalUnderCallerRngOverload) {
  // The driver-body form: all draws from the per-invocation keyed stream.
  auto policy = policy_for("Hopper", 9);
  Actor scalar(envs::make_env("Hopper"), 5);
  VecActor vec = make_vec("Hopper", 1, 5);
  VecActorScratch scratch;
  for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
    Rng ra(sim::invocation_stream(123, 7, attempt));
    Rng rb(sim::invocation_stream(123, 7, attempt));
    auto a = scalar.sample(policy, 40, 1, ra);
    auto b = vec.sample(policy, scratch, 40, 1, rb);
    ASSERT_EQ(a.serialize(), b.serialize()) << "attempt " << attempt;
  }
}

// -- K>1 structure ------------------------------------------------------------

TEST(VecActorBatch, EnvMajorLayoutAndSegments) {
  const std::size_t k = 4, h = 32;
  auto policy = policy_for("Hopper");
  VecActor vec = make_vec("Hopper", k, 3);
  VecActorScratch scratch;
  auto batch = vec.sample(policy, scratch, h, 17);
  EXPECT_EQ(batch.size(), k * h);
  EXPECT_EQ(batch.policy_version, 17u);
  EXPECT_EQ(batch.obs.dim(0), k * h);
  EXPECT_EQ(batch.actions_cont.dim(0), k * h);
  ASSERT_EQ(batch.segments.size(), k);
  for (std::size_t e = 0; e < k; ++e)
    EXPECT_EQ(batch.segments[e].start, e * h);
  // Segment views must tile the batch contiguously.
  const auto views = batch.segment_views();
  ASSERT_EQ(views.size(), k);
  for (std::size_t e = 0; e < k; ++e) {
    EXPECT_EQ(views[e].start, e * h);
    EXPECT_EQ(views[e].end, (e + 1) * h);
  }
  EXPECT_TRUE(batch.obs.all_finite());
  EXPECT_TRUE(batch.behaviour_log_probs.all_finite());
}

TEST(VecActorBatch, SegmentBootstrapZeroOnDoneSeam) {
  // Drive long enough that some envs end their horizon mid-episode and
  // (over calls) some end exactly on a done; the invariant is per segment:
  // done at the seam row <=> bootstrap == 0.
  const std::size_t k = 3, h = 64;
  auto policy = policy_for("Hopper");
  VecActor vec = make_vec("Hopper", k, 21);
  VecActorScratch scratch;
  for (int call = 0; call < 6; ++call) {
    auto batch = vec.sample(policy, scratch, h, 0);
    for (std::size_t e = 0; e < k; ++e) {
      const std::size_t seam = e * h + h - 1;
      if (batch.dones[seam] > 0.5f) {
        EXPECT_FLOAT_EQ(batch.segments[e].bootstrap, 0.0f);
      }
    }
  }
}

TEST(VecActorBatch, DonesMatchEpisodeReturnsCount) {
  const std::size_t k = 2, h = 200;
  const auto env = "Qbert";
  auto policy = policy_for(env, 2);
  VecActor vec = make_vec(env, k, 4);
  VecActorScratch scratch;
  auto batch = vec.sample(policy, scratch, h, 0);
  std::size_t dones = 0;
  for (std::size_t t = 0; t < batch.size(); ++t)
    if (batch.dones[t] > 0.5f) ++dones;
  EXPECT_EQ(dones, batch.episode_returns.size());
  EXPECT_GE(dones, 1u) << "200 Qbert steps x 2 envs should finish episodes";
}

TEST(VecActorBatch, SameSeedSameBytes) {
  auto policy = policy_for("Hopper", 9);
  VecActor a = make_vec("Hopper", 4, 42);
  VecActor b = make_vec("Hopper", 4, 42);
  VecActorScratch sa, sb;
  EXPECT_EQ(a.sample(policy, sa, 30, 0).serialize(),
            b.sample(policy, sb, 30, 0).serialize());
}

TEST(VecActorBatch, TotalEnvStepsAdvances) {
  auto policy = policy_for("Hopper");
  VecActor vec = make_vec("Hopper", 4, 1);
  VecActorScratch scratch;
  vec.sample(policy, scratch, 16, 0);
  EXPECT_EQ(vec.total_env_steps(), 64u);
  EXPECT_EQ(vec.num_envs(), 4u);
}

TEST(VecActorBatch, ZeroHorizonThrows) {
  auto policy = policy_for("Hopper");
  VecActor vec = make_vec("Hopper", 2, 1);
  VecActorScratch scratch;
  EXPECT_THROW(vec.sample(policy, scratch, 0, 0), Error);
}

// -- allocation flatness ------------------------------------------------------
// "No per-step allocations" pinned as: tensor-buffer allocations per
// sample() call do not grow with the horizon (the per-call constant is the
// result batch's own tensors; the hot loop itself contributes zero).

std::uint64_t allocs_per_call(Actor& actor, nn::ActorCritic& policy,
                              std::size_t horizon) {
  const std::uint64_t before = tensor_buffer_allocs();
  actor.sample(policy, horizon, 0);
  return tensor_buffer_allocs() - before;
}

std::uint64_t allocs_per_call(VecActor& actor, VecActorScratch& scratch,
                              nn::ActorCritic& policy, std::size_t horizon) {
  const std::uint64_t before = tensor_buffer_allocs();
  actor.sample(policy, scratch, horizon, 0);
  return tensor_buffer_allocs() - before;
}

TEST(ActorAllocs, ScalarSampleFlatAfterWarmUp) {
  auto policy = policy_for("Hopper");
  Actor actor(envs::make_env("Hopper"), 1);
  actor.sample(policy, 64, 0);  // warm up scratch + policy buffers
  const auto short_call = allocs_per_call(actor, policy, 8);
  const auto long_call = allocs_per_call(actor, policy, 64);
  EXPECT_EQ(short_call, long_call)
      << "per-step tensor allocations leaked into the scalar hot loop";
}

TEST(ActorAllocs, VecSampleFlatAfterWarmUp) {
  auto policy = policy_for("Hopper");
  VecActor vec = make_vec("Hopper", 4, 1);
  VecActorScratch scratch;
  vec.sample(policy, scratch, 64, 0);
  const auto short_call = allocs_per_call(vec, scratch, policy, 8);
  const auto long_call = allocs_per_call(vec, scratch, policy, 64);
  EXPECT_EQ(short_call, long_call)
      << "per-step tensor allocations leaked into the batched hot loop";
}

TEST(ActorAllocs, EvaluatePolicyFlatInEpisodeCount) {
  auto env = envs::make_env("Hopper");
  auto policy = policy_for("Hopper");
  evaluate_policy(*env, policy, 1, 5);  // warm
  const std::uint64_t b0 = tensor_buffer_allocs();
  evaluate_policy(*env, policy, 1, 5);
  const std::uint64_t one = tensor_buffer_allocs() - b0;
  const std::uint64_t b1 = tensor_buffer_allocs();
  evaluate_policy(*env, policy, 4, 5);
  const std::uint64_t four = tensor_buffer_allocs() - b1;
  EXPECT_EQ(one, four)
      << "evaluate_policy allocations must not scale with episodes/steps";
}

}  // namespace
}  // namespace stellaris::rl
