// stellaris_analyze — whole-project static invariant checker.
//
// Where tools/lint/stellaris_lint is a line-regex pass (randomness,
// wall-clock, raw threads, ...), this tool understands just enough C++
// structure — tokens, include edges, function bodies, call references —
// to machine-check the four invariant families the compiler cannot see
// (DESIGN.md §16):
//
//   layer-dag       #include edges between src/ layers must follow the
//                   architecture DAG declared in tools/analyze/layers.toml.
//   lock-rank       every Mutex/SharedMutex construction carries a name
//                   string and a lock_rank:: constant; constants, the
//                   DESIGN.md §11 rank table, and construction sites must
//                   agree; rank order is checked for nestings visible
//                   inside a single function.
//   driver-purity   functions reachable from driver().submit(...) bodies
//                   (the capture/body/merge contract, DESIGN.md §14) must
//                   not reference the engine, the cache, shared RNG,
//                   wall clocks, or the telemetry sinks.
//   ledger-schema   every obs::LedgerEvent emit site's event name + field
//                   set is diffed against the event table
//                   tools/report/ledger_analysis.cpp accepts, so an
//                   emitter/parser skew fails the build instead of
//                   silently dropping report rows.
//
// Findings are suppressed per line with `analyze:<rule>-ok` markers (same
// convention as the lint) or per finding id via the commented baseline
// file tools/analyze/baseline.txt. Determinism note: the analyzer itself
// only uses ordered containers, so its output order is stable.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace stellaris::analyze {

// ---------------------------------------------------------------------------
// Tokens and files
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kString, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  // identifier spelling, string *contents*, or punct
  int line = 0;
};

/// Tokenize C++-ish source: strips comments, keeps string-literal contents
/// as single kString tokens, merges `::` / `->` into one punct token.
std::vector<Token> tokenize(const std::string& text);

struct SourceFile {
  std::string rel;  // path relative to the analysis root, '/'-separated
  std::vector<Token> tokens;
  /// Quoted-include targets ("layer/header.hpp") with their lines.
  std::vector<std::pair<std::string, int>> includes;
  /// line -> rules suppressed on that line (`analyze:<rule>-ok` markers;
  /// a marker covers its own line and the line below).
  std::map<int, std::set<std::string>> markers;
  /// `ledger-schema:ignore ev1 ev2` declarations found in this file.
  std::set<std::string> ignored_events;
  /// `// expect: <rule>` self-test annotations (line -> rules).
  std::map<int, std::set<std::string>> expects;

  bool suppressed(const std::string& rule, int line) const;
};

struct Project {
  std::string root;
  std::vector<SourceFile> files;  // sorted by rel path

  const SourceFile* find(const std::string& rel) const;
};

/// Load every *.hpp/*.cpp/*.h/*.cc under `root/<subdir>` for each subdir.
/// Missing subdirs are skipped silently (the self-test corpus has no
/// bench/, for instance).
Project load_project(const std::string& root,
                     const std::vector<std::string>& subdirs);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string key;  // stable detail token (include target, event.field, ...)
  std::string message;

  /// Baseline identity: "<rule> <file> <key>" — line numbers deliberately
  /// excluded so unrelated edits do not churn the baseline.
  std::string id() const;
  std::string render() const;
};

// ---------------------------------------------------------------------------
// layers.toml
// ---------------------------------------------------------------------------

struct LayerGraph {
  /// layer -> layers it may include (itself is always allowed).
  std::map<std::string, std::vector<std::string>> deps;
  /// Parse/validation errors (unknown dep, cycle, syntax).
  std::vector<std::string> errors;
};

LayerGraph parse_layers_file(const std::string& path);

// ---------------------------------------------------------------------------
// Rule passes. Each appends findings; `design_md` is the loaded DESIGN.md
// text for the rank-table cross-check.
// ---------------------------------------------------------------------------

void check_layers(const Project& project, const LayerGraph& graph,
                  std::vector<Finding>& out);
void check_locks(const Project& project, const std::string& design_md,
                 std::vector<Finding>& out);
void check_purity(const Project& project, std::vector<Finding>& out);
void check_ledger(const Project& project, std::vector<Finding>& out);

/// All four passes over a tree rooted at `root` (uses `root/DESIGN.md` and
/// `layers_path` for configuration). Layer-graph config errors surface as
/// findings against the layers file itself.
std::vector<Finding> analyze_tree(const std::string& root,
                                  const std::string& layers_path);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

struct Baseline {
  /// finding id -> baseline file line (for stale-entry reporting).
  std::map<std::string, int> entries;
  std::vector<std::string> errors;
};

Baseline parse_baseline_file(const std::string& path);

// ---------------------------------------------------------------------------
// Self-test over the checked-in corpus (tools/analyze/selftest/): every
// `// expect: <rule>` line must produce exactly that finding, and no
// unexpected findings may appear. `rule_filter` restricts to one rule
// ("" = all). Returns 0 on success, 1 on mismatch, printing a report.
// ---------------------------------------------------------------------------

int run_selftest(const std::string& corpus_root, const std::string& rule_filter);

}  // namespace stellaris::analyze
