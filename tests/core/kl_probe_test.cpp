#include "core/kl_probe.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace stellaris::core {
namespace {

TEST(KlProbe, IdenticalParamsGiveZero) {
  nn::ActorCritic model(nn::ObsSpec::vector(4), nn::ActionKind::kContinuous,
                        2, nn::NetworkSpec::mujoco(8), 1);
  const auto p = model.flat_params();
  Rng rng(1);
  Tensor probe = Tensor::randn({8, 4}, rng);
  EXPECT_NEAR(policy_update_kl(model, p, p, probe), 0.0, 1e-6);
}

TEST(KlProbe, LargerUpdateLargerKl) {
  nn::ActorCritic model(nn::ObsSpec::vector(4), nn::ActionKind::kContinuous,
                        2, nn::NetworkSpec::mujoco(8), 2);
  const auto p0 = model.flat_params();
  auto small = p0, big = p0;
  for (auto& v : small) v += 0.01f;
  for (auto& v : big) v += 0.1f;
  Rng rng(2);
  Tensor probe = Tensor::randn({16, 4}, rng);
  const double kl_small = policy_update_kl(model, p0, small, probe);
  const double kl_big = policy_update_kl(model, p0, big, probe);
  EXPECT_GT(kl_small, 0.0);
  EXPECT_GT(kl_big, kl_small);
}

TEST(KlProbe, WorksForDiscretePolicies) {
  nn::ActorCritic model(nn::ObsSpec::planes(3, 20, 20),
                        nn::ActionKind::kDiscrete, 4,
                        nn::NetworkSpec::atari(), 3);
  const auto p0 = model.flat_params();
  auto p1 = p0;
  for (auto& v : p1) v += 0.05f;
  Rng rng(3);
  Tensor probe = Tensor::rand_uniform({4, 3 * 20 * 20}, rng, 0.0f, 1.0f);
  EXPECT_GT(policy_update_kl(model, p0, p1, probe), 0.0);
  EXPECT_NEAR(policy_update_kl(model, p0, p0, probe), 0.0, 1e-6);
}

TEST(KlProbe, EmptyProbeThrows) {
  nn::ActorCritic model(nn::ObsSpec::vector(4), nn::ActionKind::kContinuous,
                        2, nn::NetworkSpec::mujoco(8), 4);
  const auto p = model.flat_params();
  EXPECT_THROW(policy_update_kl(model, p, p, Tensor()), Error);
}

}  // namespace
}  // namespace stellaris::core
