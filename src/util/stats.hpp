// Streaming and batch statistics used across benchmarks and the evaluation
// harness: Welford running moments, percentiles, bootstrap-free normal
// confidence intervals, fixed-bin histograms (for the staleness PDF of
// Fig. 3(b)), and exponential moving averages (reward smoothing).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stellaris {

/// Numerically stable running mean/variance (Welford).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Half-width of the ~95% normal confidence interval of the mean.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average with bias correction, as used for smoothing
/// episodic-reward curves in the figures.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}

  void add(double x);
  double value() const;
  bool empty() const { return n_ == 0; }

 private:
  double alpha_;
  double acc_ = 0.0;
  std::size_t n_ = 0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0,1]. The input is copied; callers on hot paths should sort once
/// and use `percentile_sorted`.
double percentile(std::vector<double> xs, double q);

/// Percentile of an already ascending-sorted sample.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Fixed-width binned histogram over [lo, hi]; out-of-range samples clamp to
/// the edge bins. `density()` integrates to 1, giving the empirical PDF the
/// paper plots for staleness in Fig. 3(b).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  std::size_t count(std::size_t i) const { return counts_[i]; }
  /// Empirical probability density per bin (sums×binwidth to 1).
  std::vector<double> density() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

/// Unbiased sample stddev of a vector (0 for n < 2).
double stddev_of(const std::vector<double>& xs);

}  // namespace stellaris
