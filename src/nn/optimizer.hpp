// First-order optimizers over flat parameter vectors.
//
// Policies and gradients travel through the distributed cache as flat
// float32 vectors, so the parameter function's update step — and local
// learner updates in the serverful baselines — operate directly on that
// representation. SGD, Adam (Table III's choice), and RMSProp are provided;
// all three support the per-step learning-rate override that Stellaris'
// staleness modulation (Eq. 4) requires.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace stellaris {
class ByteWriter;
class ByteReader;
}  // namespace stellaris

namespace stellaris::nn {

class FlatOptimizer {
 public:
  virtual ~FlatOptimizer() = default;

  /// In-place descent step: params -= update(grad) at the configured lr.
  void step(std::vector<float>& params, std::span<const float> grad) {
    step_with_lr(params, grad, lr_);
  }

  /// Same, with an explicit learning rate for this step only (Eq. 4's
  /// staleness-modulated α_c).
  virtual void step_with_lr(std::vector<float>& params,
                            std::span<const float> grad, double lr) = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<FlatOptimizer> clone() const = 0;

  /// Serialize the full optimizer state (lr + moment/accumulator slots,
  /// prefixed with name() so a mismatched restore fails fast). Together
  /// with the parameter vector this is everything a checkpoint needs for a
  /// bit-identical training continuation.
  void save_state(ByteWriter& w) const;
  /// Inverse of save_state; throws Error if the stream was written by a
  /// different optimizer type.
  void load_state(ByteReader& r);

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 protected:
  explicit FlatOptimizer(double lr) : lr_(lr) {}
  /// Serialize the subclass's slot state (moments, accumulators, counters).
  virtual void save_slots(ByteWriter& w) const = 0;
  virtual void load_slots(ByteReader& r) = 0;
  double lr_;
};

/// Plain stochastic gradient descent with optional momentum.
class SgdOptimizer final : public FlatOptimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0);

  void step_with_lr(std::vector<float>& params, std::span<const float> grad,
                    double lr) override;
  std::string name() const override { return "sgd"; }
  std::unique_ptr<FlatOptimizer> clone() const override;

 protected:
  void save_slots(ByteWriter& w) const override;
  void load_slots(ByteReader& r) override;

 private:
  double momentum_;
  std::vector<float> velocity_;
};

/// Adam (Kingma & Ba), the optimizer the paper uses for PPO and IMPACT.
class AdamOptimizer final : public FlatOptimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double eps = 1e-8);

  void step_with_lr(std::vector<float>& params, std::span<const float> grad,
                    double lr) override;
  std::string name() const override { return "adam"; }
  std::unique_ptr<FlatOptimizer> clone() const override;

 protected:
  void save_slots(ByteWriter& w) const override;
  void load_slots(ByteReader& r) override;

 private:
  double beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<float> m_, v_;
};

/// RMSProp with the usual uncentred second-moment accumulator.
class RmsPropOptimizer final : public FlatOptimizer {
 public:
  explicit RmsPropOptimizer(double lr, double decay = 0.99,
                            double eps = 1e-8);

  void step_with_lr(std::vector<float>& params, std::span<const float> grad,
                    double lr) override;
  std::string name() const override { return "rmsprop"; }
  std::unique_ptr<FlatOptimizer> clone() const override;

 protected:
  void save_slots(ByteWriter& w) const override;
  void load_slots(ByteReader& r) override;

 private:
  double decay_, eps_;
  std::vector<float> sq_;
};

/// Factory from a config string ("sgd" | "adam" | "rmsprop").
std::unique_ptr<FlatOptimizer> make_optimizer(const std::string& name,
                                              double lr);

/// Global-norm gradient clipping: scales `grad` in place so its L2 norm is
/// at most `max_norm`; returns the pre-clip norm.
double clip_grad_norm(std::vector<float>& grad, double max_norm);

}  // namespace stellaris::nn
