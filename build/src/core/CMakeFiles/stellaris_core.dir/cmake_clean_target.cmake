file(REMOVE_RECURSE
  "libstellaris_core.a"
)
