file(REMOVE_RECURSE
  "CMakeFiles/custom_environment.dir/custom_environment.cpp.o"
  "CMakeFiles/custom_environment.dir/custom_environment.cpp.o.d"
  "custom_environment"
  "custom_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
