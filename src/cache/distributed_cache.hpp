// Distributed Cache — the in-memory key-value buffer at the center of the
// paper's workflow (§IV): actors publish serialized trajectory batches,
// learner functions publish gradients, and the parameter function publishes
// policy model weights; everyone else polls or blocks for them.
//
// This is our Redis substitute: a thread-safe versioned KV store with
//  - monotonically increasing per-key versions (so pollers can wait for
//    "anything newer than what I last saw"),
//  - blocking reads with timeout (condition-variable based, for the real
//    multi-threaded driver),
//  - prefix scans (gradient / trajectory inbox patterns like "grad/*"),
//  - byte and hit/miss accounting that feeds the data-passing latency model.
//
// Data-plane design (DESIGN.md §12):
//  - **Zero-copy reads.** Entries own their payload through
//    `std::shared_ptr<const Bytes>`; every read hands back the refcounted
//    payload plus a span view, so `get`/`get_blocking`/`get_async` and
//    pub/sub waiters never copy bytes. A put replaces the entry's pointer —
//    readers still holding the old payload keep a valid immutable snapshot.
//  - **Sharded store.** Keys hash (FNV-1a, platform-stable) onto N stripes,
//    each behind its own annotated Mutex at rank `lock_rank::kCache`. The
//    stripes are rank-equal peers: no code path ever holds two shard locks
//    at once (whole-cache operations visit shards one at a time in index
//    order), which the runtime lock-order checker enforces. Aggregate
//    results (key lists, stats sums) are made deterministic by sorting /
//    order-independent reduction, so figures are bit-identical for any
//    shard count.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/annotated_mutex.hpp"

namespace stellaris::cache {

using Bytes = std::vector<std::uint8_t>;
/// Immutable refcounted payload: shared between the store and any number
/// of concurrent readers. Never mutated after publication.
using Payload = std::shared_ptr<const Bytes>;

/// Value + metadata returned by reads. Holds the payload alive via the
/// refcount and exposes it as a span — no byte copy happens on any read
/// path. The view stays valid for the lifetime of this CacheValue even if
/// the key is overwritten or erased after the read.
struct CacheValue {
  Payload payload;            ///< refcounted ownership of the bytes
  std::uint64_t version = 0;  ///< per-key write counter, starts at 1

  std::span<const std::uint8_t> bytes() const {
    return payload ? std::span<const std::uint8_t>(*payload)
                   : std::span<const std::uint8_t>{};
  }
  std::size_t size_bytes() const { return payload ? payload->size() : 0; }
};

/// Aggregate counters (monotonic since construction or reset_stats()).
struct CacheStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t erases = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class DistributedCache {
 public:
  /// Default stripe count: enough to keep put/get contention negligible at
  /// fig06-scale actor counts while whole-cache scans stay cheap.
  static constexpr std::size_t kDefaultShards = 8;

  explicit DistributedCache(std::size_t num_shards = kDefaultShards);
  DistributedCache(const DistributedCache&) = delete;
  DistributedCache& operator=(const DistributedCache&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  /// Store (replacing any prior value); returns the new version.
  std::uint64_t put(const std::string& key, Bytes value);
  /// Store an already-refcounted payload (no copy; `value` must not be
  /// mutated afterwards). Null payloads are stored as empty.
  std::uint64_t put(const std::string& key, Payload value);

  /// Non-blocking read.
  std::optional<CacheValue> get(const std::string& key) const;

  /// Read that throws CacheError on miss — for keys the protocol guarantees.
  CacheValue get_or_throw(const std::string& key) const;

  /// Block until `key` exists with version > `min_version`, or timeout.
  /// Returns nullopt on timeout. min_version = 0 accepts any value.
  ///
  /// Real-concurrency driver only: the calling thread genuinely sleeps, so
  /// the wait duration is measured in *real* time and recorded under the
  /// explicitly real-time debug metric `cache.blocked_read_wait_real_ms`.
  /// Everything result-affecting stays on the virtual clock (the sim
  /// overload below never sleeps and records no wait time).
  std::optional<CacheValue> get_blocking(const std::string& key,
                                         std::uint64_t min_version,
                                         std::chrono::milliseconds timeout);

  /// Virtual-time deadline overload for simulation-driven callers. The
  /// event loop is single-threaded, so no other event can publish the key
  /// while this call "waits": the wait collapses deterministically to an
  /// immediate hit (the key is already satisfied) or a miss accounted as a
  /// timeout at `engine.now() + timeout_s` — no wall-clock sleep, no
  /// nondeterminism, and the virtual clock never advances. Callers that
  /// need to genuinely wait across events use get_async.
  std::optional<CacheValue> get_blocking(const std::string& key,
                                         std::uint64_t min_version,
                                         sim::Engine& engine,
                                         double timeout_s);

  using AsyncCallback = std::function<void(std::optional<CacheValue>)>;

  /// Event-driven wait: fires `cb` (via `engine`, in virtual time) as soon
  /// as `key` reaches a version > `min_version` — immediately (same
  /// timestamp, later event) if already satisfied — or with nullopt at the
  /// virtual deadline `engine.now() + timeout_s`. timeout_s <= 0 means no
  /// deadline (the waiter is dropped at clear()).
  void get_async(const std::string& key, std::uint64_t min_version,
                 sim::Engine& engine, double timeout_s, AsyncCallback cb);

  /// Async waiters currently registered (tests / diagnostics).
  std::size_t pending_waiters() const;

  bool contains(const std::string& key) const;

  /// Current version of a key (0 if absent).
  std::uint64_t version(const std::string& key) const;

  /// Remove a key; returns whether it existed.
  bool erase(const std::string& key);

  /// All keys starting with `prefix`, in lexicographic order (sorted after
  /// collection, so the result is identical for any shard count).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Remove every key with the prefix; returns count removed.
  std::size_t erase_prefix(const std::string& prefix);

  std::size_t num_keys() const;
  /// Total payload bytes currently resident.
  std::size_t resident_bytes() const;

  /// Sample cache occupancy (`cache.num_keys`, `cache.resident_bytes`)
  /// into the active time-series recorder at virtual time `t_s`. The cache
  /// has no clock of its own, so callers pass the time. No-op when
  /// sampling is disabled. Both quantities are order-free shard sums, so
  /// the samples are identical for any shard count (DESIGN.md §12).
  void sample_depth(double t_s) const;

  CacheStats stats() const;
  void reset_stats();

  void clear();

 private:
  struct Entry {
    Payload data;  ///< never null once written
    std::uint64_t version = 0;
  };
  /// One registered get_async call awaiting a put (or its deadline).
  struct Waiter {
    std::uint64_t id = 0;
    std::string key;
    std::uint64_t min_version = 0;
    sim::Engine* engine = nullptr;
    AsyncCallback cb;
    sim::Engine::CancelHandle deadline;  ///< null when timeout_s <= 0
  };
  /// One lock stripe. All stripes share rank kCache and are never nested;
  /// whole-cache operations lock them one at a time in index order.
  struct Shard {
    Mutex mu{"cache/shard", lock_rank::kCache};
    CondVar cv;
    // Per-key versioned entries. Iteration order is shard-private and never
    // observable: aggregate reads sort (keys_with_prefix) or reduce
    // order-independently (stats, byte/key counts).
    // lint:unordered-ok — outputs sorted or order-independent (see above)
    std::unordered_map<std::string, Entry> store GUARDED_BY(mu);
    std::vector<Waiter> waiters GUARDED_BY(mu);
    std::uint64_t next_waiter_id GUARDED_BY(mu) = 0;
    std::size_t resident_bytes GUARDED_BY(mu) = 0;
    CacheStats stats GUARDED_BY(mu);
  };

  Shard& shard_for(const std::string& key) const;

  /// Account a hit against `s` and return the entry's refcounted value.
  /// The single place where hits/bytes_read are bumped: every successful
  /// read on every path (plain, blocking, async, waiter wake-up) funnels
  /// through here, so each logical read is counted exactly once.
  CacheValue read_entry_locked(Shard& s, const Entry& entry) const
      REQUIRES(s.mu);
  /// The entry for `key` if it exists with version > min_version.
  static const Entry* find_ready_locked(const Shard& s,
                                        const std::string& key,
                                        std::uint64_t min_version)
      REQUIRES(s.mu);
  /// Deadline event for an async waiter: drop it and fire cb(nullopt).
  void expire_waiter(Shard& s, std::uint64_t id);

  // Stripes are fixed at construction; the vector itself is immutable, so
  // unsynchronized shard lookup is safe. unique_ptr keeps Shard addresses
  // stable (Mutex/CondVar are not movable).
  std::vector<std::unique_ptr<Shard>> shards_;

  // Process-wide observability mirrors of the per-instance stats (resolved
  // once at construction; updates are relaxed atomics).
  obs::Counter* m_puts_;
  obs::Counter* m_gets_;
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_erases_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_blocked_timeouts_;
  obs::FixedHistogram* m_blocked_wait_real_ms_;
  obs::Gauge* m_resident_bytes_;
  obs::Counter* m_async_waits_;
  obs::Counter* m_async_timeouts_;
};

}  // namespace stellaris::cache
