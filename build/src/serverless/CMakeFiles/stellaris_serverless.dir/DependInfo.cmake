
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serverless/cluster.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/cluster.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/cluster.cpp.o.d"
  "/root/repo/src/serverless/container_pool.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/container_pool.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/container_pool.cpp.o.d"
  "/root/repo/src/serverless/cost_meter.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/cost_meter.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/cost_meter.cpp.o.d"
  "/root/repo/src/serverless/data_loader.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/data_loader.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/data_loader.cpp.o.d"
  "/root/repo/src/serverless/latency_model.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/latency_model.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/latency_model.cpp.o.d"
  "/root/repo/src/serverless/platform.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/platform.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/platform.cpp.o.d"
  "/root/repo/src/serverless/profiler.cpp" "src/serverless/CMakeFiles/stellaris_serverless.dir/profiler.cpp.o" "gcc" "src/serverless/CMakeFiles/stellaris_serverless.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/stellaris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellaris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
