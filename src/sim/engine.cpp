#include "sim/engine.hpp"

#include "util/error.hpp"

namespace stellaris::sim {

void Engine::schedule_at(SimTime t, std::function<void()> fn) {
  STELLARIS_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t
                                                                << " now="
                                                                << now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(SimTime delay, std::function<void()> fn) {
  STELLARIS_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the function handle (cheap: shared state inside std::function).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) step();
  if (now_ < deadline && queue_.empty()) now_ = deadline;
}

}  // namespace stellaris::sim
