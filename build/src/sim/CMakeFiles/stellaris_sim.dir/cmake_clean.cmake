file(REMOVE_RECURSE
  "CMakeFiles/stellaris_sim.dir/engine.cpp.o"
  "CMakeFiles/stellaris_sim.dir/engine.cpp.o.d"
  "libstellaris_sim.a"
  "libstellaris_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
