#include "serve/traffic_gen.hpp"

#include <cmath>

#include "util/error.hpp"

namespace stellaris::serve {

TrafficGen::TrafficGen(sim::Engine& engine, TrafficConfig cfg,
                       std::uint64_t seed)
    : engine_(engine), cfg_(cfg), rng_(seed) {
  STELLARIS_CHECK_MSG(cfg_.duration_s > 0.0, "traffic duration must be > 0");
  if (cfg_.mode == TrafficMode::kOpenPoisson) {
    STELLARIS_CHECK_MSG(cfg_.rate_per_s > 0.0, "open-loop rate must be > 0");
    total_clients_ = 1;
  } else {
    STELLARIS_CHECK_MSG(cfg_.concurrency > 0,
                        "closed-loop concurrency must be > 0");
    total_clients_ = cfg_.concurrency;
  }
}

double TrafficGen::rate_at(double t) const {
  if (cfg_.burst_rate_per_s > 0.0 && t >= cfg_.burst_start_s &&
      t < cfg_.burst_end_s) {
    return cfg_.burst_rate_per_s;
  }
  return cfg_.rate_per_s;
}

double TrafficGen::exp_sample(double rate) {
  // Inverse-CDF with 1-u so the argument to log is never zero.
  return -std::log(1.0 - rng_.uniform()) / rate;
}

void TrafficGen::start(Arrival cb) {
  cb_ = std::move(cb);
  if (cfg_.mode == TrafficMode::kOpenPoisson) {
    schedule_open_arrival();
  } else {
    for (std::uint64_t c = 0; c < cfg_.concurrency; ++c) issue_closed(c);
  }
}

void TrafficGen::schedule_open_arrival() {
  // Sampling at the current rate (not the rate at the arrival instant) is a
  // standard step-rate approximation; the burst edge error is one gap.
  const double gap = exp_sample(rate_at(engine_.now()));
  const double t = engine_.now() + gap;
  if (t > cfg_.duration_s) {
    ++done_clients_;
    return;
  }
  engine_.schedule_after(gap, [this] {
    ++issued_;
    cb_(0);
    schedule_open_arrival();
  });
}

void TrafficGen::issue_closed(std::uint64_t client) {
  if (engine_.now() > cfg_.duration_s) {
    ++done_clients_;
    return;
  }
  ++issued_;
  cb_(client);
}

void TrafficGen::on_complete(std::uint64_t client) {
  if (cfg_.mode != TrafficMode::kClosedLoop) return;
  const double think = exp_sample(1.0 / std::max(cfg_.think_time_s, 1e-9));
  if (engine_.now() + think > cfg_.duration_s) {
    ++done_clients_;
    return;
  }
  engine_.schedule_after(think, [this, client] { issue_closed(client); });
}

}  // namespace stellaris::serve
