// Cost accounting per the paper's §VIII-A cost model: every function
// invocation is charged (dollar-per-resource-second) × (execution seconds),
// where the unit price is the VM hourly price divided by 3600 and by the
// VM's maximum concurrent-function capacity. Pre-warming and keep-alive are
// explicitly excluded, as in the paper. Costs are also split learner vs
// actor for the stacked bars of Fig. 8.
#pragma once

#include <cstdint>

namespace stellaris::serverless {

enum class FnKind { kLearner, kParameter, kActor, kServe };

const char* fn_kind_name(FnKind kind);

class CostMeter {
 public:
  /// Charge one invocation: unit price ($/s) × execution duration (s).
  /// Failed invocations (crashes, reclaimed VMs, cache errors) are billed
  /// for the seconds they consumed before dying — the provider charges for
  /// execution time, not for success — and additionally tracked as wasted
  /// spend so fault sweeps can report the failure tax.
  void record(FnKind kind, double unit_price_per_s, double duration_s,
              bool failed = false);

  double cost(FnKind kind) const;
  double total_cost() const;

  /// Accumulated billable execution seconds per kind.
  double busy_seconds(FnKind kind) const;
  std::uint64_t invocations(FnKind kind) const;

  /// Failure-tax accounting: spend / seconds / count of failed invocations.
  double wasted_cost(FnKind kind) const;
  double total_wasted_cost() const;
  double wasted_seconds(FnKind kind) const;
  std::uint64_t failed_invocations(FnKind kind) const;
  std::uint64_t total_failed_invocations() const;

  void reset();

 private:
  struct PerKind {
    double cost = 0.0;
    double seconds = 0.0;
    std::uint64_t count = 0;
    double wasted_cost = 0.0;
    double wasted_seconds = 0.0;
    std::uint64_t failed = 0;
  };
  PerKind& bucket(FnKind kind);
  const PerKind& bucket(FnKind kind) const;

  PerKind learner_, parameter_, actor_, serve_;
};

}  // namespace stellaris::serverless
