// Run-ledger unit tests: event rendering round-trips through a JSON
// parser, doubles keep full precision, hostile strings stay valid JSON,
// and the recorder preserves emission order.
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/mini_json.hpp"

namespace stellaris::obs {
namespace {

minijson::Value parse_line(const std::string& line) {
  return minijson::parse(line);
}

TEST(LedgerEvent, MinimalEventHasEnvelope) {
  const std::string line = LedgerEvent("traj", 1.25).finish();
  const minijson::Value v = parse_line(line);
  EXPECT_EQ(v.at("ev").string(), "traj");
  EXPECT_DOUBLE_EQ(v.at("t").number(), 1.25);
  EXPECT_TRUE(v.has("run"));
}

TEST(LedgerEvent, FieldTypesRoundTrip) {
  const std::string line = LedgerEvent("x", 0.0)
                               .field("i", 42)
                               .field("u", std::uint64_t{9007199254740993ull})
                               .field("d", 0.1)
                               .field("b", true)
                               .field("s", "hello")
                               .finish();
  const minijson::Value v = parse_line(line);
  EXPECT_DOUBLE_EQ(v.at("i").number(), 42.0);
  // Integers render via to_string, not %.17g — no precision loss at 2^53+1
  // in the text (the parser's double can't hold it; check the raw text).
  EXPECT_NE(line.find("\"u\":9007199254740993"), std::string::npos);
  EXPECT_DOUBLE_EQ(v.at("d").number(), 0.1);
  EXPECT_EQ(v.at("b").kind, minijson::Value::Kind::kBool);
  EXPECT_EQ(v.at("s").string(), "hello");
}

TEST(LedgerEvent, DoublesRenderRoundTrip) {
  // %.17g must reproduce the exact bits on re-parse.
  const double tricky = 0.1 + 0.2;  // 0.30000000000000004
  const std::string line =
      LedgerEvent("x", tricky).field("v", tricky).finish();
  const minijson::Value v = parse_line(line);
  EXPECT_EQ(v.at("t").number(), tricky);
  EXPECT_EQ(v.at("v").number(), tricky);
}

TEST(LedgerEvent, NonFiniteRendersNull) {
  const std::string line =
      LedgerEvent("x", 0.0)
          .field("inf", std::numeric_limits<double>::infinity())
          .field("nan", std::numeric_limits<double>::quiet_NaN())
          .finish();
  const minijson::Value v = parse_line(line);
  EXPECT_EQ(v.at("inf").kind, minijson::Value::Kind::kNull);
  EXPECT_EQ(v.at("nan").kind, minijson::Value::Kind::kNull);
}

TEST(LedgerEvent, HostileStringsStayValidJson) {
  const std::string hostile = "quote\" slash\\ newline\n tab\t ctl\x01";
  const std::string line =
      LedgerEvent("x", 0.0).field("msg", hostile).finish();
  const minijson::Value v = parse_line(line);  // parse must not throw
  EXPECT_EQ(v.at("msg").string(), hostile);
  // JSONL: the escaped line must stay on one line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LedgerEvent, RawArraysRoundTrip) {
  const std::string line =
      LedgerEvent("agg_end", 2.0)
          .raw("staleness", render_number_array({0.0, 1.5, 3.0}))
          .raw("group", render_id_array({7, 8}))
          .finish();
  const minijson::Value v = parse_line(line);
  ASSERT_TRUE(v.at("staleness").is_array());
  EXPECT_DOUBLE_EQ(v.at("staleness").arr[1].number(), 1.5);
  ASSERT_TRUE(v.at("group").is_array());
  EXPECT_DOUBLE_EQ(v.at("group").arr[0].number(), 7.0);
  EXPECT_DOUBLE_EQ(v.at("group").arr[1].number(), 8.0);
}

TEST(LedgerRecorder, PreservesEmissionOrder) {
  LedgerRecorder rec;
  for (int i = 0; i < 10; ++i)
    rec.append(LedgerEvent("e", static_cast<double>(i))
                   .field("i", i)
                   .finish());
  EXPECT_EQ(rec.size(), 10u);
  const auto lines = rec.lines();
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(parse_line(lines[i]).at("i").number(),
                     static_cast<double>(i));
}

TEST(LedgerRecorder, WriteEmitsJsonl) {
  LedgerRecorder rec;
  rec.append(LedgerEvent("a", 0.0).finish());
  rec.append(LedgerEvent("b", 1.0).finish());
  std::ostringstream os;
  rec.write(os);
  const std::string text = os.str();
  // Two newline-terminated lines, each valid JSON.
  std::istringstream is(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(is, line)) {
    EXPECT_NO_THROW(parse_line(line));
    ++n;
  }
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(text.back(), '\n');
}

TEST(LedgerRecorder, WriteFileRoundTrips) {
  LedgerRecorder rec;
  rec.append(LedgerEvent("a", 0.5).field("k", 1).finish());
  const std::string path = "ledger_test_tmp.jsonl";
  ASSERT_TRUE(rec.write_file(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(parse_line(line).at("ev").string(), "a");
}

TEST(LedgerRecorder, ConcurrentAppendsAreAllKept) {
  LedgerRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&rec, w] {
      for (int i = 0; i < kPerThread; ++i)
        rec.append(LedgerEvent("e", static_cast<double>(i))
                       .field("w", w)
                       .finish());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& line : rec.lines()) EXPECT_NO_THROW(parse_line(line));
}

TEST(Ledger, InstallLedgerTogglesGlobalPointer) {
  LedgerRecorder rec;
  EXPECT_EQ(obs::ledger(), nullptr);
  obs::install_ledger(&rec);
  EXPECT_EQ(obs::ledger(), &rec);
  obs::install_ledger(nullptr);
  EXPECT_EQ(obs::ledger(), nullptr);
}

}  // namespace
}  // namespace stellaris::obs
