#include "util/serialize.hpp"

#include <gtest/gtest.h>

namespace stellaris {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(123456u);
  w.put_u64(0xdeadbeefcafef00dULL);
  w.put_i64(-42);
  w.put_f32(3.25f);
  w.put_f64(-2.5);
  w.put_string("hello stellaris");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 123456u);
  EXPECT_EQ(r.get_u64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_FLOAT_EQ(r.get_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.get_f64(), -2.5);
  EXPECT_EQ(r.get_string(), "hello stellaris");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  std::vector<float> fv = {1.0f, -2.0f, 3.5f};
  std::vector<double> dv = {0.1, 0.2};
  std::vector<std::uint64_t> uv = {9, 8, 7, 6};
  w.put_f32_vector(fv);
  w.put_f64_vector(dv);
  w.put_u64_vector(uv);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_f32_vector(), fv);
  EXPECT_EQ(r.get_f64_vector(), dv);
  EXPECT_EQ(r.get_u64_vector(), uv);
}

TEST(Serialize, EmptyVectorsAndStrings) {
  ByteWriter w;
  w.put_string("");
  w.put_f32_vector({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_f32_vector().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TagMismatchThrows) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_f64(), Error);
}

TEST(Serialize, OverrunThrows) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.bytes());
  (void)r.get_u32();
  EXPECT_THROW(r.get_u32(), Error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  ByteWriter w;
  w.put_f32_vector({1.0f, 2.0f, 3.0f});
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);  // chop the last float
  ByteReader r(bytes);
  EXPECT_THROW(r.get_f32_vector(), Error);
}

TEST(Serialize, SizeTracksPayload) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.put_f32_vector(std::vector<float>(100, 0.0f));
  // tag + u64 length + 100 floats
  EXPECT_EQ(w.size(), 1 + 8 + 400u);
}

TEST(Serialize, RemainingDecreasesAsRead) {
  ByteWriter w;
  w.put_u8(1);
  w.put_u8(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 2u);
  (void)r.get_u8();
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Serialize, SizeHelpersMatchEmittedBytes) {
  ByteWriter w;
  w.put_u8(1);
  EXPECT_EQ(w.size(), wire::size_u8());
  w.put_u32(2);
  w.put_u64(3);
  w.put_i64(-4);
  w.put_f32(5.0f);
  w.put_f64(6.0);
  w.put_string("abc");
  w.put_f32_vector({1.0f, 2.0f});
  w.put_f64_vector({1.0});
  w.put_u64_vector({1, 2, 3});
  const std::size_t expected =
      wire::size_u8() + wire::size_u32() + wire::size_u64() + wire::size_i64() +
      wire::size_f32() + wire::size_f64() + wire::size_string(3) +
      wire::size_f32_vector(2) + wire::size_f64_vector(1) +
      wire::size_u64_vector(3);
  EXPECT_EQ(w.size(), expected);
}

TEST(Serialize, SizedWriterDoesNotReallocate) {
  // The single-pass encode contract: a writer constructed with the exact
  // payload size never grows its buffer mid-encode.
  const std::vector<float> fv(1000, 1.5f);
  ByteWriter w(wire::size_u64() + wire::size_f32_vector(fv.size()) +
               wire::size_string(5));
  const std::size_t cap = w.capacity();
  w.put_u64(42);
  w.put_f32_vector(fv);
  w.put_string("hello");
  EXPECT_EQ(w.size(), cap);
  EXPECT_EQ(w.capacity(), cap);  // no reallocation happened
}

TEST(Serialize, SpanPutsMatchVectorPuts) {
  const std::vector<float> fv = {1.0f, -2.0f, 3.5f};
  const std::vector<double> dv = {0.25, -0.5};
  const std::vector<std::uint64_t> uv = {7, 8};
  ByteWriter a, b;
  a.put_f32_vector(fv);
  a.put_f64_vector(dv);
  a.put_u64_vector(uv);
  b.put_f32_span(fv);
  b.put_f64_span(dv);
  b.put_u64_span(uv);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(Serialize, PutBytesMatchesLegacyPerByteEncoding) {
  // The frozen wire format for a byte blob is "u64 length then raw bytes"
  // — exactly what a legacy loop of put_u64(n) + n × put_u8 emitted.
  const std::vector<std::uint8_t> blob = {0x00, 0xff, 0x10, 0x20, 0x30};
  ByteWriter modern;
  modern.put_bytes(blob);
  ByteWriter legacy;
  legacy.put_u64(blob.size());
  for (std::uint8_t byte : blob) legacy.put_u8(byte);
  EXPECT_EQ(modern.bytes(), legacy.bytes());

  ByteReader r(modern.bytes());
  EXPECT_EQ(r.get_bytes(), blob);
}

TEST(Serialize, IntoVariantsReuseCapacity) {
  ByteWriter w;
  w.put_f32_vector(std::vector<float>(64, 2.0f));
  w.put_f64_vector(std::vector<double>(8, 3.0));
  w.put_u64_vector(std::vector<std::uint64_t>(4, 9));
  w.put_bytes(std::vector<std::uint8_t>(16, 0xaa));

  std::vector<float> fv(128);       // warm, larger than incoming
  std::vector<double> dv(32);
  std::vector<std::uint64_t> uv(32);
  std::vector<std::uint8_t> bv(64);
  const auto* fp = fv.data();
  const auto* dp = dv.data();
  const auto* up = uv.data();
  const auto* bp = bv.data();

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_f32_vector_into(fv), 64u);
  EXPECT_EQ(r.get_f64_vector_into(dv), 8u);
  EXPECT_EQ(r.get_u64_vector_into(uv), 4u);
  EXPECT_EQ(r.get_bytes_into(bv), 16u);
  EXPECT_EQ(fv.size(), 64u);
  EXPECT_EQ(fv.data(), fp);  // shrinking resize kept the buffer
  EXPECT_EQ(dv.data(), dp);
  EXPECT_EQ(uv.data(), up);
  EXPECT_EQ(bv.data(), bp);
  EXPECT_EQ(fv.front(), 2.0f);
  EXPECT_EQ(bv.front(), 0xaa);
}

}  // namespace
}  // namespace stellaris
