// Replay buffer for off-policy training (IMPACT's batch reuse).
//
// A bounded FIFO of SampleBatches with uniform random sampling. IMPACT's
// V-trace corrections make modestly-stale batches usable, so learners can
// mix fresh trajectories with replayed ones — the "replay_proportion"
// mechanism of the original IMPALA/IMPACT implementations.
#pragma once

#include <cstdint>
#include <deque>

#include "rl/sample_batch.hpp"
#include "util/rng.hpp"

namespace stellaris::rl {

class ReplayBuffer {
 public:
  /// `capacity` is in batches; `max_age` bounds how many policy versions a
  /// batch may lag before it is evicted on insert (0 = no age bound).
  explicit ReplayBuffer(std::size_t capacity, std::uint64_t max_age = 0);

  void add(SampleBatch batch);

  /// Drop batches older than (current_version − max_age). No-op when the
  /// age bound is disabled.
  void evict_stale(std::uint64_t current_version);

  bool empty() const { return buffer_.empty(); }
  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total timesteps stored.
  std::size_t total_timesteps() const { return total_timesteps_; }

  /// Uniformly sample one stored batch (copied). Throws when empty.
  SampleBatch sample(Rng& rng) const;

  /// Sample `n` batches (with replacement) and concatenate them.
  SampleBatch sample_concat(std::size_t n, Rng& rng) const;

 private:
  std::size_t capacity_;
  std::uint64_t max_age_;
  std::deque<SampleBatch> buffer_;
  std::size_t total_timesteps_ = 0;
};

}  // namespace stellaris::rl
