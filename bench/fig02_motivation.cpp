// Fig. 2 — motivation: asynchronous learning and serverless computing
// jointly improve DRL training. Three systems on PPO/Hopper:
//   sync+serverful     (RLlib-style baseline)
//   async+serverful    (Stellaris' async learners, whole-fleet billing)
//   async+serverless   (Stellaris)
// Reports the episodic-reward curve (a) and the total training cost (b).
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  const std::string env = "Hopper";
  const std::size_t rounds = bench::default_rounds(env);
  const std::size_t seeds = bench::default_seeds(env);

  auto cfg = bench::base_config(env, rounds, 1);

  // sync + serverful.
  baselines::SyncConfig sync_cfg;
  sync_cfg.base = cfg;
  sync_cfg.variant = baselines::SyncVariant::kRllibLike;
  sync_cfg.num_learners = 4;
  auto sync_runs = bench::run_sync_seeds(sync_cfg, seeds);

  // async + serverless (Stellaris) and its serverful re-billing.
  auto stellaris_runs = bench::run_seeds(cfg, seeds);
  auto async_serverful = stellaris_runs;
  for (auto& r : async_serverful) bench::rebill_serverful(r, cfg.cluster);

  bench::emit_curve_comparison(
      "Fig. 2(a) — episodic reward: sync+serverful vs Stellaris",
      "sync_serverful", sync_runs, "stellaris", stellaris_runs,
      "fig02_reward.csv");

  const auto s_sync = bench::summarize(sync_runs);
  const auto s_asf = bench::summarize(async_serverful);
  const auto s_stl = bench::summarize(stellaris_runs);
  Table cost({"system", "final_reward", "time_s", "total_cost_usd"});
  cost.row().add("sync+serverful").add(s_sync.final_reward, 1)
      .add(s_sync.time_s, 2).add(s_sync.total_cost, 4);
  cost.row().add("async+serverful").add(s_asf.final_reward, 1)
      .add(s_asf.time_s, 2).add(s_asf.total_cost, 4);
  cost.row().add("async+serverless (Stellaris)").add(s_stl.final_reward, 1)
      .add(s_stl.time_s, 2).add(s_stl.total_cost, 4);
  cost.emit("Fig. 2(b) — training cost", "fig02_cost.csv");

  std::cout << "\nExpected shape: Stellaris reaches the highest reward in the"
               " least virtual time at the lowest cost; async+serverful is"
               " fast but pays for idle VMs; sync+serverful is slowest.\n";
  return 0;
}
