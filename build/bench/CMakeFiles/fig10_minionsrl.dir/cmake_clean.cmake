file(REMOVE_RECURSE
  "CMakeFiles/fig10_minionsrl.dir/fig10_minionsrl.cpp.o"
  "CMakeFiles/fig10_minionsrl.dir/fig10_minionsrl.cpp.o.d"
  "fig10_minionsrl"
  "fig10_minionsrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_minionsrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
