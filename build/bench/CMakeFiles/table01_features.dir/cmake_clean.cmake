file(REMOVE_RECURSE
  "CMakeFiles/table01_features.dir/table01_features.cpp.o"
  "CMakeFiles/table01_features.dir/table01_features.cpp.o.d"
  "table01_features"
  "table01_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
