#include "rl/sample_batch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace stellaris::rl {

namespace {
void put_tensor(ByteWriter& w, const Tensor& t) {
  std::vector<std::uint64_t> dims(t.shape().begin(), t.shape().end());
  w.put_u64_vector(dims);
  w.put_f32_vector(t.vec());
}

Tensor get_tensor(ByteReader& r) {
  const auto dims = r.get_u64_vector();
  Shape shape(dims.begin(), dims.end());
  auto data = r.get_f32_vector();
  return Tensor(std::move(shape), std::move(data));
}
}  // namespace

std::vector<std::uint8_t> SampleBatch::serialize() const {
  ByteWriter w;
  w.put_u8(action_kind == nn::ActionKind::kContinuous ? 0 : 1);
  put_tensor(w, obs);
  put_tensor(w, actions_cont);
  {
    std::vector<std::uint64_t> acts(actions_disc.begin(), actions_disc.end());
    w.put_u64_vector(acts);
  }
  put_tensor(w, rewards);
  put_tensor(w, dones);
  put_tensor(w, behaviour_log_probs);
  put_tensor(w, values);
  w.put_f32(bootstrap_value);
  {
    std::vector<std::uint64_t> seg_starts;
    std::vector<float> seg_boot;
    for (const auto& s : segments) {
      seg_starts.push_back(s.start);
      seg_boot.push_back(s.bootstrap);
    }
    w.put_u64_vector(seg_starts);
    w.put_f32_vector(seg_boot);
  }
  w.put_u64(policy_version);
  put_tensor(w, advantages);
  put_tensor(w, value_targets);
  w.put_f64_vector(episode_returns);
  return w.take();
}

SampleBatch SampleBatch::deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  SampleBatch b;
  b.action_kind = r.get_u8() == 0 ? nn::ActionKind::kContinuous
                                  : nn::ActionKind::kDiscrete;
  b.obs = get_tensor(r);
  b.actions_cont = get_tensor(r);
  {
    const auto acts = r.get_u64_vector();
    b.actions_disc.assign(acts.begin(), acts.end());
  }
  b.rewards = get_tensor(r);
  b.dones = get_tensor(r);
  b.behaviour_log_probs = get_tensor(r);
  b.values = get_tensor(r);
  b.bootstrap_value = r.get_f32();
  {
    const auto seg_starts = r.get_u64_vector();
    const auto seg_boot = r.get_f32_vector();
    for (std::size_t i = 0; i < seg_starts.size(); ++i)
      b.segments.push_back(
          {static_cast<std::size_t>(seg_starts[i]), seg_boot[i]});
  }
  b.policy_version = r.get_u64();
  b.advantages = get_tensor(r);
  b.value_targets = get_tensor(r);
  b.episode_returns = r.get_f64_vector();
  return b;
}

std::vector<SampleBatch::SegmentView> SampleBatch::segment_views() const {
  std::vector<SegmentView> views;
  if (segments.empty()) {
    views.push_back({0, size(), bootstrap_value});
    return views;
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::size_t end =
        i + 1 < segments.size() ? segments[i + 1].start : size();
    views.push_back({segments[i].start, end, segments[i].bootstrap});
  }
  return views;
}

SampleBatch SampleBatch::concat(const std::vector<SampleBatch>& parts) {
  STELLARIS_CHECK_MSG(!parts.empty(), "concat of zero batches");
  SampleBatch out;
  out.action_kind = parts.front().action_kind;
  out.policy_version = parts.front().policy_version;
  out.bootstrap_value = parts.back().bootstrap_value;

  // Record the seams so advantage estimators never bootstrap across them.
  {
    std::size_t offset = 0;
    for (const auto& p : parts) {
      for (const auto& sv : p.segment_views())
        out.segments.push_back({offset + sv.start, sv.bootstrap});
      offset += p.size();
    }
  }

  std::size_t total = 0;
  for (const auto& p : parts) {
    STELLARIS_CHECK_MSG(p.action_kind == out.action_kind,
                        "concat mixes action kinds");
    total += p.size();
  }

  auto cat1 = [&](auto accessor) {
    std::vector<float> data;
    data.reserve(total);
    for (const auto& p : parts) {
      const Tensor& t = accessor(p);
      data.insert(data.end(), t.vec().begin(), t.vec().end());
    }
    return Tensor({total}, std::move(data));
  };
  auto cat2 = [&](auto accessor) {
    std::size_t width = 0;
    for (const auto& p : parts) {
      const Tensor& t = accessor(p);
      if (t.numel() > 0) width = t.dim(1);
    }
    if (width == 0) return Tensor();
    std::vector<float> data;
    data.reserve(total * width);
    for (const auto& p : parts) {
      const Tensor& t = accessor(p);
      data.insert(data.end(), t.vec().begin(), t.vec().end());
    }
    const std::size_t rows = data.size() / width;  // before the move below
    return Tensor({rows, width}, std::move(data));
  };

  out.obs = cat2([](const SampleBatch& p) -> const Tensor& { return p.obs; });
  out.actions_cont = cat2(
      [](const SampleBatch& p) -> const Tensor& { return p.actions_cont; });
  for (const auto& p : parts)
    out.actions_disc.insert(out.actions_disc.end(), p.actions_disc.begin(),
                            p.actions_disc.end());
  out.rewards =
      cat1([](const SampleBatch& p) -> const Tensor& { return p.rewards; });
  out.dones =
      cat1([](const SampleBatch& p) -> const Tensor& { return p.dones; });
  out.behaviour_log_probs = cat1([](const SampleBatch& p) -> const Tensor& {
    return p.behaviour_log_probs;
  });
  out.values =
      cat1([](const SampleBatch& p) -> const Tensor& { return p.values; });
  const bool all_adv = std::all_of(parts.begin(), parts.end(),
                                   [](const auto& p) {
                                     return p.has_advantages();
                                   });
  if (all_adv) {
    out.advantages = cat1(
        [](const SampleBatch& p) -> const Tensor& { return p.advantages; });
    out.value_targets = cat1(
        [](const SampleBatch& p) -> const Tensor& { return p.value_targets; });
  }
  for (const auto& p : parts)
    out.episode_returns.insert(out.episode_returns.end(),
                               p.episode_returns.begin(),
                               p.episode_returns.end());
  return out;
}

SampleBatch SampleBatch::select(const std::vector<std::size_t>& idx) const {
  SampleBatch out;
  out.action_kind = action_kind;
  out.policy_version = policy_version;
  out.bootstrap_value = bootstrap_value;

  auto sel1 = [&](const Tensor& t) {
    if (t.empty()) return Tensor();
    std::vector<float> data;
    data.reserve(idx.size());
    for (std::size_t i : idx) data.push_back(t[i]);
    return Tensor({idx.size()}, std::move(data));
  };
  auto sel2 = [&](const Tensor& t) {
    if (t.empty()) return Tensor();
    const std::size_t w = t.dim(1);
    std::vector<float> data;
    data.reserve(idx.size() * w);
    for (std::size_t i : idx) {
      auto r = t.row(i);
      data.insert(data.end(), r.begin(), r.end());
    }
    return Tensor({idx.size(), w}, std::move(data));
  };

  out.obs = sel2(obs);
  out.actions_cont = sel2(actions_cont);
  if (!actions_disc.empty())
    for (std::size_t i : idx) out.actions_disc.push_back(actions_disc[i]);
  out.rewards = sel1(rewards);
  out.dones = sel1(dones);
  out.behaviour_log_probs = sel1(behaviour_log_probs);
  out.values = sel1(values);
  out.advantages = sel1(advantages);
  out.value_targets = sel1(value_targets);
  return out;
}

}  // namespace stellaris::rl
