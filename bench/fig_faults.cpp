// Fault sweep — training under an unreliable substrate (src/fault).
//
// Sweeps the per-invocation failure rate (container crashes + stragglers +
// a low spot-reclamation rate) and compares Stellaris' asynchronous
// serverless pipeline against the synchronous serverful PPO baseline under
// the SAME fault environment and retry policy. Expected shape: Stellaris
// degrades gracefully — a failed actor or learner is retried while the
// rest of the pipeline keeps streaming, so reward and time-to-target move
// little and only the wasted-work cost grows — while the barrier baseline
// stalls every round on its slowest retry chain, inflating wall-clock and
// the serverful bill with it.
#include "common.hpp"

#include <cmath>
#include <iostream>

using namespace stellaris;

namespace {

/// Virtual time at which a run's (unsmoothed) evaluated reward first
/// reaches `target`; the run's total time if it never does.
double time_to_target(const core::TrainResult& r, double target) {
  for (const auto& rec : r.rounds)
    if (rec.evaluated && rec.reward >= target) return rec.time_s;
  return r.total_time_s;
}

double mean_time_to_target(const std::vector<core::TrainResult>& runs,
                           double target) {
  double sum = 0.0;
  for (const auto& r : runs) sum += time_to_target(r, target);
  return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
}

core::FaultStats sum_faults(const std::vector<core::TrainResult>& runs) {
  core::FaultStats f;
  for (const auto& r : runs) {
    f.crashes += r.faults.crashes;
    f.vm_reclaims += r.faults.vm_reclaims;
    f.stragglers += r.faults.stragglers;
    f.failed_invocations += r.faults.failed_invocations;
    f.retries += r.faults.retries;
    f.giveups += r.faults.giveups;
    f.checkpoints += r.faults.checkpoints;
    f.restores += r.faults.restores;
    f.wasted_cost_usd += r.faults.wasted_cost_usd;
    f.wasted_seconds += r.faults.wasted_seconds;
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  const std::string env = "Hopper";
  const std::size_t rounds = 24;
  const std::size_t seeds = 2;
  const std::vector<double> fault_rates = {0.0, 0.05, 0.1, 0.2};

  Table t({"fault_rate", "system", "final_reward", "time_s",
           "time_to_target_s", "total_cost_usd", "wasted_cost_usd",
           "retries", "giveups", "restores"});

  // Reward target for time-to-target: 60% of the zero-fault Stellaris
  // final reward, measured first so every row uses the same bar.
  auto make_cfg = [&](double rate) {
    auto cfg = bench::base_config(env, rounds, 1);
    bench::apply_driver_args(cfg, argc, argv);
    cfg.faults.config.crash_prob = rate;
    cfg.faults.config.straggler_prob = rate / 2.0;
    cfg.faults.config.straggler_mult = 4.0;
    if (rate > 0.0) cfg.faults.config.reclaim_rate_per_hour = 30.0;
    cfg.retry.max_retries = 3;
    cfg.retry.base_backoff_s = 0.05;
    return cfg;
  };

  const auto clean_runs = bench::run_seeds(make_cfg(0.0), seeds);
  const double target = 0.6 * bench::summarize(clean_runs).final_reward;
  std::cout << "time-to-target reward bar: " << target << "\n";

  for (double rate : fault_rates) {
    // Stellaris: asynchronous serverless with retries + checkpoints.
    const auto runs =
        rate == 0.0 ? clean_runs : bench::run_seeds(make_cfg(rate), seeds);
    const auto s = bench::summarize(runs);
    const auto f = sum_faults(runs);
    t.row()
        .add(rate, 2)
        .add("Stellaris")
        .add(s.final_reward, 1)
        .add(s.time_s, 1)
        .add(mean_time_to_target(runs, target), 1)
        .add(s.total_cost, 5)
        .add(f.wasted_cost_usd / static_cast<double>(seeds), 5)
        .add(f.retries)
        .add(f.giveups)
        .add(f.restores);

    // Sync PPO baseline: same fault environment, analytic barrier stalls.
    baselines::SyncConfig sc;
    sc.base = make_cfg(rate);
    sc.variant = baselines::SyncVariant::kVanillaPpo;
    sc.num_learners = 4;
    const auto sync_runs = bench::run_sync_seeds(sc, seeds);
    const auto ss = bench::summarize(sync_runs);
    const auto sf = sum_faults(sync_runs);
    t.row()
        .add(rate, 2)
        .add("SyncPPO")
        .add(ss.final_reward, 1)
        .add(ss.time_s, 1)
        .add(mean_time_to_target(sync_runs, target), 1)
        .add(ss.total_cost, 5)
        .add(sf.wasted_cost_usd / static_cast<double>(seeds), 5)
        .add(sf.retries)
        .add(sf.giveups)
        .add(sf.restores);
  }
  t.emit("Fault sweep — reward, time, and cost vs failure rate"
         " (Stellaris degrades gracefully; the barrier baseline's"
         " wall-clock and serverful bill grow with every stall)",
         "fig_faults.csv");
  std::cout << "\nExpected shape: as fault_rate grows, SyncPPO time_s and"
               " total_cost_usd climb steeply (each round waits out the"
               " slowest retry chain and the fleet bills for the stall),"
               " while Stellaris holds reward with modest time/cost"
               " growth and absorbs failures as retries + wasted-work"
               " cost.\n";
  return 0;
}
