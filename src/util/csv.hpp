// CSV / aligned-table emission for the benchmark harness.
//
// Every figure bench prints its series both as machine-readable CSV (for
// re-plotting) and as an aligned console table (for eyeballing the shape
// against the paper).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stellaris {

/// A simple rectangular table: named columns, row-at-a-time appends.
/// Cells are stored as strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Begin a new row; subsequent add() calls fill cells left-to-right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 4);
  Table& add(std::size_t value);
  Table& add(long long value);

  /// Write RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Write an aligned human-readable table.
  void write_pretty(std::ostream& os) const;

  /// Convenience: write_pretty to stdout, then CSV to `path` if non-empty.
  void emit(const std::string& title, const std::string& csv_path = "") const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stellaris
