#include "rl/vec_actor.hpp"

#include "nn/distributions.hpp"

namespace stellaris::rl {

VecActor::VecActor(std::unique_ptr<envs::VecEnv> env, std::uint64_t seed)
    : env_(std::move(env)), rng_(seed) {
  const std::size_t k = env_->size();
  current_obs_ = Tensor({k, env_->spec().obs.flat_dim});
  active_.assign(k, 0);
  episode_return_.assign(k, 0.0);
}

void VecActor::ensure_episodes(Rng& rng) {
  // Lazy reset in env index order: one seed draw per dead env, from the
  // same stream the action noise uses — at K=1 this is exactly
  // Actor::ensure_episode's draw.
  for (std::size_t e = 0; e < env_->size(); ++e) {
    if (active_[e]) continue;
    env_->reset_env_into(e, rng.next(), current_obs_.row(e));
    active_[e] = 1;
    episode_return_[e] = 0.0;
    ++episode_counter_;
  }
}

SampleBatch VecActor::sample(nn::ActorCritic& policy, VecActorScratch& scratch,
                             std::size_t horizon,
                             std::uint64_t policy_version) {
  return sample(policy, scratch, horizon, policy_version, rng_);
}

SampleBatch VecActor::sample(nn::ActorCritic& policy, VecActorScratch& scratch,
                             std::size_t horizon,
                             std::uint64_t policy_version, Rng& rng) {
  STELLARIS_CHECK_MSG(horizon > 0, "sample horizon must be positive");
  const auto& spec = env_->spec();
  const std::size_t k = env_->size();
  const std::size_t obs_dim = spec.obs.flat_dim;
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;
  const std::size_t total = k * horizon;

  SampleBatch batch;
  batch.action_kind = spec.action_kind;
  batch.policy_version = policy_version;
  batch.obs = Tensor({total, obs_dim});
  if (continuous) batch.actions_cont = Tensor({total, spec.act_dim});
  else batch.actions_disc.resize(total);
  batch.rewards = Tensor({total});
  batch.dones = Tensor({total});
  batch.behaviour_log_probs = Tensor({total});
  batch.values = Tensor({total});

  for (std::size_t t = 0; t < horizon; ++t) {
    ensure_episodes(rng);
    // ONE batched forward pair for all K envs — the (K, obs_dim)×W GEMM
    // shape the blocked kernels are tiled for.
    const Tensor& pol_out = policy.policy_forward(current_obs_);
    const Tensor& value = policy.value_forward(current_obs_);

    for (std::size_t e = 0; e < k; ++e) {
      const std::size_t row = e * horizon + t;  // env-major layout
      const auto src = current_obs_.row(e);
      std::copy(src.begin(), src.end(), batch.obs.row(row).begin());
      batch.values[row] = value[e];
    }

    if (continuous) {
      // Row-major draws: at K=1 the noise sequence matches the scalar
      // actor's per-step gaussian_sample exactly.
      nn::gaussian_sample_into(scratch.actions, pol_out, *policy.log_std(),
                               rng);
      nn::gaussian_log_prob_into(scratch.logp, pol_out, *policy.log_std(),
                                 scratch.actions);
      for (std::size_t e = 0; e < k; ++e) {
        const std::size_t row = e * horizon + t;
        const auto act = scratch.actions.row(e);
        std::copy(act.begin(), act.end(),
                  batch.actions_cont.row(row).begin());
        batch.behaviour_log_probs[row] = scratch.logp[e];
      }
    } else {
      nn::categorical_sample_into(scratch.disc_actions, scratch.probs,
                                  pol_out, rng);
      nn::categorical_log_prob_into(scratch.logp, scratch.lsm, pol_out,
                                    scratch.disc_actions);
      for (std::size_t e = 0; e < k; ++e) {
        const std::size_t row = e * horizon + t;
        batch.actions_disc[row] = scratch.disc_actions[e];
        batch.behaviour_log_probs[row] = scratch.logp[e];
      }
    }

    for (std::size_t e = 0; e < k; ++e) {
      const std::size_t row = e * horizon + t;
      const envs::StepOut out =
          continuous
              ? env_->step_env_into(e, scratch.actions.row(e),
                                    current_obs_.row(e))
              : env_->step_env_discrete_into(e, scratch.disc_actions[e],
                                             current_obs_.row(e));
      batch.rewards[row] = static_cast<float>(out.reward);
      episode_return_[e] += out.reward;
      batch.dones[row] = out.done ? 1.0f : 0.0f;
      if (out.done) {
        // Lazy reset: the row keeps the terminal observation until the next
        // step's ensure_episodes pass.
        batch.episode_returns.push_back(episode_return_[e]);
        active_[e] = 0;
      }
    }
  }

  // Bootstrap values for truncated final transitions: one batched value
  // forward covers every env. K=1 keeps the scalar actor's implicit-segment
  // layout (and skips the forward when the batch ends on done) so the
  // serialized bytes match rl::Actor exactly; K>1 emits one explicit
  // segment per env.
  bool any_truncated = false;
  for (std::size_t e = 0; e < k; ++e)
    if (batch.dones[e * horizon + horizon - 1] < 0.5f) any_truncated = true;
  if (k == 1) {
    if (any_truncated)
      batch.bootstrap_value = policy.value_forward(current_obs_)[0];
  } else {
    batch.segments.resize(k);
    if (any_truncated) {
      const Tensor& value = policy.value_forward(current_obs_);
      for (std::size_t e = 0; e < k; ++e) {
        const bool done = batch.dones[e * horizon + horizon - 1] >= 0.5f;
        batch.segments[e] = {e * horizon, done ? 0.0f : value[e]};
      }
    } else {
      for (std::size_t e = 0; e < k; ++e)
        batch.segments[e] = {e * horizon, 0.0f};
    }
  }
  return batch;
}

}  // namespace stellaris::rl
