// driver-purity cases. The Engine/Driver scaffolding here is token food —
// what matters is the `driver().submit([...]{ ... })` shape the pass roots
// on and what the lambda bodies (and the functions they reach) touch.
#include "envs/vec_env.hpp"
#include "obs/obs_ok.hpp"
#include "util/annotated_mutex.hpp"

namespace stellaris {

struct Driver {
  int submit(int job);
};

struct Engine {
  Driver& driver();
  double now();
  void schedule_after(double delay_s);
};

// A per-object stream: referencing `rng_` inside *reached* code is the
// legitimate leased-state idiom (draws serialized by the job chain).
struct Env {
  int rng_ = 0;
  int draw() { return rng_++; }
};

int pure_square(int x) { return x * x; }

void telemetry_helper() {
  // expect: driver-purity
  obs::ledger();
}

struct Trainer {
  Engine engine_;
  Env env_;
  int rng_ = 0;

  void good_pure_body(int x) {
    engine_.driver().submit([x] {
      volatile int y = pure_square(x);
      (void)y;
    });
  }

  void good_reached_object_stream() {
    auto* env = &env_;
    engine_.driver().submit([env] {
      env->draw();  // reached rng_ is per-object state: clean
    });
  }

  void bad_engine_reference() {
    engine_.driver().submit([this] {
      // expect: driver-purity
      engine_.now();
    });
  }

  void bad_schedules_work() {
    engine_.driver().submit([this] {
      // expect: driver-purity
      schedule_after(1.0);
    });
  }

  void bad_wall_clock() {
    engine_.driver().submit([] {
      // expect: driver-purity
      auto t = std::chrono::steady_clock::now();
      (void)t;
    });
  }

  void bad_shared_rng_capture() {
    engine_.driver().submit([this] {
      // expect: driver-purity
      pure_square(rng_);
    });
  }

  void bad_reaches_telemetry() {
    engine_.driver().submit([] { telemetry_helper(); });
  }

  // VecEnv rule (see src/envs/vec_env.hpp): the member-stream draw is
  // flagged through the reachability traversal...
  VecEnv vec_env_;
  void bad_vec_env_member_draw() {
    auto* vec = &vec_env_;
    engine_.driver().submit([vec] { vec->step_batch_unkeyed(); });
  }

  // ...while the caller-Rng overload and the by-reference delegation of
  // `rng_` stay clean.
  void good_vec_env_keyed_draws() {
    auto* vec = &vec_env_;
    engine_.driver().submit([vec] { vec->step_batch_legacy(); });
  }
};

}  // namespace stellaris
