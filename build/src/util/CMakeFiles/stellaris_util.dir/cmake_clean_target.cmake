file(REMOVE_RECURSE
  "libstellaris_util.a"
)
