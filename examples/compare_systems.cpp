// Example: head-to-head comparison of distributed DRL training systems.
//
// Runs the same workload (PPO on a chosen environment) through four
// architectures — vanilla sync PPO, an RLlib-like sync learner group, a
// MinionsRL-like serverless-actor/central-learner setup, and Stellaris —
// and prints reward / virtual time / cost side by side. This is the
// "which system should I use?" demo of the library.
//
//   ./build/examples/compare_systems [env] [rounds]
#include <cstdlib>
#include <iostream>

#include "baselines/sync_trainer.hpp"
#include "core/stellaris_trainer.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace stellaris;
  const std::string env = argc > 1 ? argv[1] : "Walker2d";
  const std::size_t rounds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 40;

  core::TrainConfig cfg;
  cfg.env_name = env;
  cfg.rounds = rounds;
  cfg.num_actors = 8;
  cfg.cluster = serverless::ClusterSpec::regular_small();
  cfg.seed = 2024;

  Table t({"system", "final_reward", "best_reward", "virtual_time_s",
           "cost_usd", "cost_learner_usd", "cost_actor_usd"});
  auto add_row = [&](const std::string& name, const core::TrainResult& r) {
    t.row()
        .add(name)
        .add(r.final_reward, 1)
        .add(r.best_reward, 1)
        .add(r.total_time_s, 2)
        .add(r.total_cost_usd, 4)
        .add(r.learner_cost_usd, 4)
        .add(r.actor_cost_usd, 4);
  };

  std::cout << "Comparing four training systems on " << env << " (" << rounds
            << " rounds, identical hyper-parameters)...\n";

  baselines::SyncConfig sync_cfg;
  sync_cfg.base = cfg;
  sync_cfg.num_learners = 4;

  sync_cfg.variant = baselines::SyncVariant::kVanillaPpo;
  add_row("vanilla sync PPO", run_sync_training(sync_cfg));

  sync_cfg.variant = baselines::SyncVariant::kRllibLike;
  add_row("RLlib-like learner group", run_sync_training(sync_cfg));

  sync_cfg.variant = baselines::SyncVariant::kMinionsLike;
  add_row("MinionsRL-like central learner", run_sync_training(sync_cfg));

  add_row("Stellaris (async serverless)", core::run_training(cfg));

  t.emit("system comparison on " + env);
  std::cout << "\nReading the table: Stellaris' asynchronous serverless"
               " learners overlap sampling and learning, so it finishes in"
               " less virtual time and is billed only for busy"
               " function-seconds.\n";
  return 0;
}
