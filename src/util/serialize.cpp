#include "util/serialize.hpp"

namespace stellaris {

void ByteWriter::put_u32(std::uint32_t v) { put_tagged(wire::kU32, v); }

void ByteWriter::put_u64(std::uint64_t v) { put_tagged(wire::kU64, v); }

void ByteWriter::put_i64(std::int64_t v) { put_tagged(wire::kI64, v); }

void ByteWriter::put_f32(float v) { put_tagged(wire::kF32, v); }

void ByteWriter::put_f64(double v) { put_tagged(wire::kF64, v); }

void ByteWriter::put_string(const std::string& s) {
  put_tagged(wire::kString, static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::put_f32_span(std::span<const float> v) {
  put_tagged(wire::kF32Vec, static_cast<std::uint64_t>(v.size()));
  if (v.empty()) return;  // null data() + 0 is UB in pointer arithmetic
  append_raw(v.data(), v.size() * sizeof(float));
}

void ByteWriter::put_f64_span(std::span<const double> v) {
  put_tagged(wire::kF64Vec, static_cast<std::uint64_t>(v.size()));
  if (v.empty()) return;
  append_raw(v.data(), v.size() * sizeof(double));
}

void ByteWriter::put_u64_span(std::span<const std::uint64_t> v) {
  put_tagged(wire::kU64Vec, static_cast<std::uint64_t>(v.size()));
  if (v.empty()) return;
  append_raw(v.data(), v.size() * sizeof(std::uint64_t));
}

void ByteWriter::put_bytes(ByteSpan blob) {
  put_tagged(wire::kU64, static_cast<std::uint64_t>(blob.size()));
  if (blob.empty()) return;
  append_raw(blob.data(), blob.size());
}

namespace {
void expect_tag(std::uint8_t got, std::uint8_t want, const char* what) {
  if (got != want)
    throw Error(std::string("wire tag mismatch decoding ") + what +
                ": got 0x" + std::to_string(got));
}
}  // namespace

std::uint8_t ByteReader::get_u8() { return raw<std::uint8_t>(); }

std::uint32_t ByteReader::get_u32() {
  expect_tag(get_u8(), wire::kU32, "u32");
  return raw<std::uint32_t>();
}

std::uint64_t ByteReader::get_u64() {
  expect_tag(get_u8(), wire::kU64, "u64");
  return raw<std::uint64_t>();
}

std::int64_t ByteReader::get_i64() {
  expect_tag(get_u8(), wire::kI64, "i64");
  return raw<std::int64_t>();
}

float ByteReader::get_f32() {
  expect_tag(get_u8(), wire::kF32, "f32");
  return raw<float>();
}

double ByteReader::get_f64() {
  expect_tag(get_u8(), wire::kF64, "f64");
  return raw<double>();
}

std::string ByteReader::get_string() {
  expect_tag(get_u8(), wire::kString, "string");
  const auto n = raw<std::uint32_t>();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::size_t ByteReader::vec_header(std::uint8_t tag, const char* what,
                                   std::size_t elem_size) {
  expect_tag(get_u8(), tag, what);
  const auto n = static_cast<std::size_t>(raw<std::uint64_t>());
  need(n * elem_size);
  return n;
}

std::vector<float> ByteReader::get_f32_vector() {
  std::vector<float> v;
  get_f32_vector_into(v);
  return v;
}

std::vector<double> ByteReader::get_f64_vector() {
  std::vector<double> v;
  get_f64_vector_into(v);
  return v;
}

std::vector<std::uint64_t> ByteReader::get_u64_vector() {
  std::vector<std::uint64_t> v;
  get_u64_vector_into(v);
  return v;
}

std::vector<std::uint8_t> ByteReader::get_bytes() {
  std::vector<std::uint8_t> v;
  get_bytes_into(v);
  return v;
}

std::size_t ByteReader::get_f32_vector_into(std::vector<float>& out) {
  const auto n = vec_header(wire::kF32Vec, "f32vec", sizeof(float));
  out.resize(n);
  if (n != 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return n;
}

std::size_t ByteReader::get_f64_vector_into(std::vector<double>& out) {
  const auto n = vec_header(wire::kF64Vec, "f64vec", sizeof(double));
  out.resize(n);
  if (n != 0) std::memcpy(out.data(), data_ + pos_, n * sizeof(double));
  pos_ += n * sizeof(double);
  return n;
}

std::size_t ByteReader::get_u64_vector_into(std::vector<std::uint64_t>& out) {
  const auto n = vec_header(wire::kU64Vec, "u64vec", sizeof(std::uint64_t));
  out.resize(n);
  if (n != 0)
    std::memcpy(out.data(), data_ + pos_, n * sizeof(std::uint64_t));
  pos_ += n * sizeof(std::uint64_t);
  return n;
}

std::size_t ByteReader::get_bytes_into(std::vector<std::uint8_t>& out) {
  const auto n = vec_header(wire::kU64, "bytes", 1);
  out.resize(n);
  if (n != 0) std::memcpy(out.data(), data_ + pos_, n);
  pos_ += n;
  return n;
}

}  // namespace stellaris
