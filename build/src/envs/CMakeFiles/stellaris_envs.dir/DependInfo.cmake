
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/envs/arcade.cpp" "src/envs/CMakeFiles/stellaris_envs.dir/arcade.cpp.o" "gcc" "src/envs/CMakeFiles/stellaris_envs.dir/arcade.cpp.o.d"
  "/root/repo/src/envs/locomotion.cpp" "src/envs/CMakeFiles/stellaris_envs.dir/locomotion.cpp.o" "gcc" "src/envs/CMakeFiles/stellaris_envs.dir/locomotion.cpp.o.d"
  "/root/repo/src/envs/registry.cpp" "src/envs/CMakeFiles/stellaris_envs.dir/registry.cpp.o" "gcc" "src/envs/CMakeFiles/stellaris_envs.dir/registry.cpp.o.d"
  "/root/repo/src/envs/vec_env.cpp" "src/envs/CMakeFiles/stellaris_envs.dir/vec_env.cpp.o" "gcc" "src/envs/CMakeFiles/stellaris_envs.dir/vec_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/stellaris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellaris_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stellaris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
