#include <gtest/gtest.h>

#include "core/gradient.hpp"
#include "core/policy_io.hpp"

namespace stellaris::core {
namespace {

TEST(GradientMsg, SerializeRoundTrip) {
  GradientMsg m;
  m.grad = {1.0f, -2.0f, 3.5f};
  m.learner_id = 17;
  m.pulled_version = 42;
  m.mean_ratio = 0.93;
  m.batch_size = 512;
  m.kl = 0.012;
  m.compute_time_s = 0.37;
  GradientMsg c = GradientMsg::deserialize(m.serialize());
  EXPECT_EQ(c.grad, m.grad);
  EXPECT_EQ(c.learner_id, 17u);
  EXPECT_EQ(c.pulled_version, 42u);
  EXPECT_DOUBLE_EQ(c.mean_ratio, 0.93);
  EXPECT_EQ(c.batch_size, 512u);
  EXPECT_DOUBLE_EQ(c.kl, 0.012);
  EXPECT_DOUBLE_EQ(c.compute_time_s, 0.37);
}

TEST(GradientMsg, EmptyGradientSurvives) {
  GradientMsg m;
  GradientMsg c = GradientMsg::deserialize(m.serialize());
  EXPECT_TRUE(c.grad.empty());
}

TEST(PolicyIo, EncodeDecodeRoundTrip) {
  std::vector<float> params = {0.1f, 0.2f, -0.3f};
  auto bytes = encode_policy(params, 99);
  auto [decoded, version] = decode_policy(bytes);
  EXPECT_EQ(decoded, params);
  EXPECT_EQ(version, 99u);
}

TEST(PolicyIo, KeyNamingConventions) {
  EXPECT_EQ(keys::kPolicyLatest, "policy/latest");
  EXPECT_EQ(keys::kPolicyTarget, "policy/target");
  EXPECT_EQ(keys::trajectory(12), "traj/12");
  EXPECT_EQ(keys::gradient(7), "grad/7");
}

TEST(PolicyIo, CorruptBytesThrow) {
  std::vector<std::uint8_t> garbage = {0xff, 0x00, 0x12};
  EXPECT_THROW(decode_policy(garbage), Error);
}

TEST(PolicyIo, DecodeIntoReusesTheParamsBuffer) {
  std::vector<float> params(256, 0.0f);
  const float* buf = params.data();
  const auto bytes = encode_policy(std::vector<float>(100, 1.5f), 7);
  EXPECT_EQ(decode_policy_into(bytes, params), 7u);
  EXPECT_EQ(params.size(), 100u);
  EXPECT_EQ(params.data(), buf);  // no reallocation: capacity was enough
  EXPECT_EQ(params.front(), 1.5f);
}

TEST(Checkpoint, RoundTripAndDecodeInto) {
  Checkpoint ckpt;
  ckpt.params = {1.0f, 2.0f, 3.0f};
  ckpt.version = 11;
  ckpt.applied_gradients = 29;
  ckpt.optimizer_state = {0xde, 0xad, 0xbe, 0xef};
  const auto bytes = encode_checkpoint(ckpt);

  const Checkpoint a = decode_checkpoint(bytes);
  EXPECT_EQ(a.params, ckpt.params);
  EXPECT_EQ(a.version, 11u);
  EXPECT_EQ(a.applied_gradients, 29u);
  EXPECT_EQ(a.optimizer_state, ckpt.optimizer_state);

  Checkpoint b;
  b.params.resize(64);
  b.optimizer_state.resize(64);
  const float* pb = b.params.data();
  const std::uint8_t* ob = b.optimizer_state.data();
  decode_checkpoint_into(bytes, b);
  EXPECT_EQ(b.params, ckpt.params);
  EXPECT_EQ(b.optimizer_state, ckpt.optimizer_state);
  EXPECT_EQ(b.params.data(), pb);
  EXPECT_EQ(b.optimizer_state.data(), ob);
}

TEST(Checkpoint, WireFormatMatchesLegacyEncoding) {
  // Freeze check: the single-pass encoder must emit byte-for-byte what the
  // original field-by-field encoder emitted (version, applied count, f32
  // params vector, then u64-length-prefixed raw optimizer bytes).
  Checkpoint ckpt;
  ckpt.params = {0.5f, -1.25f};
  ckpt.version = 3;
  ckpt.applied_gradients = 9;
  ckpt.optimizer_state = {7, 8, 9};

  ByteWriter legacy;
  legacy.put_u64(ckpt.version);
  legacy.put_u64(ckpt.applied_gradients);
  legacy.put_f32_vector(ckpt.params);
  legacy.put_u64(ckpt.optimizer_state.size());
  for (std::uint8_t byte : ckpt.optimizer_state) legacy.put_u8(byte);

  EXPECT_EQ(encode_checkpoint(ckpt), legacy.bytes());
}

TEST(GradientMsg, DeserializeIntoReusesGradBuffer) {
  GradientMsg m;
  m.grad.assign(50, 0.25f);
  m.learner_id = 3;
  const auto bytes = m.serialize();

  GradientMsg out;
  out.grad.resize(128);
  const float* buf = out.grad.data();
  GradientMsg::deserialize_into(bytes, out);
  EXPECT_EQ(out.grad, m.grad);
  EXPECT_EQ(out.grad.data(), buf);
  EXPECT_EQ(out.learner_id, 3u);
}

}  // namespace
}  // namespace stellaris::core
