#include "serverless/platform.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::serverless {

ServerlessPlatform::ServerlessPlatform(sim::Engine& engine,
                                       ClusterSpec cluster,
                                       LatencyModel latency,
                                       std::uint64_t seed)
    : engine_(engine),
      cluster_(std::move(cluster)),
      latency_(latency),
      rng_(seed),
      gpu_pool_(cluster_.learner_slots(), latency_, seed ^ 0x6b75ULL, "gpu"),
      actor_pool_(std::max<std::size_t>(cluster_.actor_slots(), 1), latency_,
                  seed ^ 0xac70ULL, "actor"),
      trace_tag_(obs::run_tag()) {
  auto& m = obs::metrics();
  m_invocations_[static_cast<int>(FnKind::kLearner)] =
      &m.counter("platform.invocations.learner");
  m_invocations_[static_cast<int>(FnKind::kParameter)] =
      &m.counter("platform.invocations.parameter");
  m_invocations_[static_cast<int>(FnKind::kActor)] =
      &m.counter("platform.invocations.actor");
  m_queue_wait_s_ = &m.histogram("platform.queue_wait_s", 0.0, 30.0, 120);
  m_gpu_queue_depth_ = &m.gauge("platform.queue_depth.gpu");
  m_actor_queue_depth_ = &m.gauge("platform.queue_depth.actor");
}

ContainerPool& ServerlessPlatform::pool_for(FnKind kind) {
  return kind == FnKind::kActor ? actor_pool_ : gpu_pool_;
}

std::deque<ServerlessPlatform::Pending>& ServerlessPlatform::queue_for(
    FnKind kind) {
  return kind == FnKind::kActor ? actor_queue_ : gpu_queue_;
}

double ServerlessPlatform::unit_price(FnKind kind) const {
  // Parameter functions run on the GPU VMs at learner pricing.
  return kind == FnKind::kActor ? cluster_.actor_unit_price()
                                : cluster_.learner_unit_price();
}

void ServerlessPlatform::note_queue_depth(FnKind kind) const {
  const bool actor = kind == FnKind::kActor;
  const std::size_t depth =
      actor ? actor_queue_.size() : gpu_queue_.size();
  (actor ? m_actor_queue_depth_ : m_gpu_queue_depth_)
      ->set(static_cast<double>(depth));
  if (auto* tr = obs::trace())
    tr->counter(trace_tag_ + "/queue_depth/" + (actor ? "actor" : "gpu"),
                engine_.now(), static_cast<double>(depth));
}

void ServerlessPlatform::invoke(const InvokeOptions& options, Callback cb) {
  queue_for(options.kind).push_back(
      Pending{options, std::move(cb), engine_.now()});
  note_queue_depth(options.kind);
  try_dispatch(options.kind);
}

void ServerlessPlatform::try_dispatch(FnKind kind) {
  auto& queue = queue_for(kind);
  auto& pool = pool_for(kind);
  const std::size_t before = queue.size();
  while (!queue.empty() && pool.busy() < pool.capacity()) {
    Pending p = std::move(queue.front());
    queue.pop_front();
    dispatch(std::move(p));
  }
  if (queue.size() != before) note_queue_depth(kind);
}

void ServerlessPlatform::trace_invocation(const Pending& pending,
                                          const InvokeResult& result,
                                          std::size_t container,
                                          double transfer_in_s,
                                          double transfer_out_s) const {
  auto* tr = obs::trace();
  if (!tr) return;
  const FnKind kind = pending.options.kind;
  const bool cache_tier = pending.options.tier == DataTier::kCache;
  const std::string track =
      trace_tag_ + "/" + pool_for_name(kind) + std::to_string(container);
  const obs::TrackId tid = tr->track(track);
  const char* name = pending.options.span_name ? pending.options.span_name
                                               : fn_kind_name(kind);
  tr->complete(
      tid, name, fn_kind_name(kind), result.start_time_s, result.end_time_s,
      {{"cold", result.cold},
       {"queue_wait_s", result.start_time_s - result.submit_time_s},
       {"billed_s", result.billed_s},
       {"cost_usd", result.cost_usd},
       {"payload_in_bytes", pending.options.payload_in_bytes},
       {"payload_out_bytes", pending.options.payload_out_bytes}});
  // Nested phase spans: container start, input fetch, compute, output write.
  double t = result.start_time_s + latency_.invoke_overhead_s;
  auto child = [&](const char* cname, double dur) {
    if (dur > 0.0) tr->complete(tid, cname, "phase", t, t + dur);
    t += dur;
  };
  child(result.cold ? "cold_start" : "warm_start", result.start_latency_s);
  child(cache_tier ? "cache_read" : "data_in", transfer_in_s);
  child("compute", result.compute_s);
  child(kind == FnKind::kParameter ? "policy_broadcast"
        : cache_tier               ? "cache_write"
                                   : "data_out",
        transfer_out_s);
}

const char* ServerlessPlatform::pool_for_name(FnKind kind) {
  return kind == FnKind::kActor ? "actors/" : "gpu/";
}

void ServerlessPlatform::dispatch(Pending pending) {
  const FnKind kind = pending.options.kind;
  auto& pool = pool_for(kind);
  auto acq = pool.acquire(engine_.now());
  STELLARIS_CHECK(acq.has_value());  // try_dispatch checked capacity

  InvokeResult result;
  result.submit_time_s = pending.submit_time;
  result.start_time_s = engine_.now();
  result.cold = acq->cold;
  result.start_latency_s = acq->start_latency_s;
  if (pending.options.on_start) pending.options.on_start(result.start_time_s);

  const double transfer_in = latency_.transfer_s(
      pending.options.tier, pending.options.payload_in_bytes);
  const double transfer_out = latency_.transfer_s(
      pending.options.tier, pending.options.payload_out_bytes);
  result.transfer_s = transfer_in + transfer_out;
  result.compute_s = latency_.jittered(pending.options.compute_s, rng_);

  const double duration = latency_.invoke_overhead_s +
                          result.start_latency_s + result.transfer_s +
                          result.compute_s;
  result.end_time_s = engine_.now() + duration;
  result.billed_s = duration;
  result.cost_usd = unit_price(kind) * result.billed_s;

  m_invocations_[static_cast<int>(kind)]->add();
  m_queue_wait_s_->observe(result.start_time_s - result.submit_time_s);
  trace_invocation(pending, result, acq->container_id, transfer_in,
                   transfer_out);

  const std::size_t container = acq->container_id;
  auto cb = std::move(pending.cb);
  engine_.schedule_after(duration, [this, kind, container, result,
                                    cb = std::move(cb)] {
    costs_.record(kind, unit_price(kind), result.billed_s);
    if (kind != FnKind::kActor) learner_busy_s_ += result.billed_s;
    pool_for(kind).release(container, engine_.now());
    if (cb) cb(result);
    try_dispatch(kind);
  });
}

std::size_t ServerlessPlatform::prewarm_learners(std::size_t n) {
  const std::size_t warmed = gpu_pool_.prewarm(n, engine_.now());
  LOG_DEBUG << "prewarmed " << warmed << "/" << n
            << " learner containers at t=" << engine_.now();
  return warmed;
}

std::size_t ServerlessPlatform::prewarm_actors(std::size_t n) {
  const std::size_t warmed = actor_pool_.prewarm(n, engine_.now());
  LOG_DEBUG << "prewarmed " << warmed << "/" << n
            << " actor containers at t=" << engine_.now();
  return warmed;
}

double ServerlessPlatform::gpu_utilization() const {
  const double elapsed = engine_.now();
  if (elapsed <= 0.0) return 0.0;
  const double slot_seconds =
      static_cast<double>(gpu_pool_.capacity()) * elapsed;
  return learner_busy_s_ / slot_seconds;
}

std::size_t ServerlessPlatform::queued(FnKind kind) const {
  return kind == FnKind::kActor ? actor_queue_.size() : gpu_queue_.size();
}

}  // namespace stellaris::serverless
