// Fig. 8 — training costs of PPO, IMPACT, RLlib, and MinionsRL with and
// without Stellaris, split into learner (grey bars in the paper) and actor
// time. Stacked-bar data, one row per (env, system).
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  struct System {
    std::string name;
    bool stellaris;
    core::Algorithm algo;
    baselines::SyncVariant variant;  // only if !stellaris
  };
  const std::vector<System> systems = {
      {"PPO", false, core::Algorithm::kPpo, baselines::SyncVariant::kVanillaPpo},
      {"PPO+Stellaris", true, core::Algorithm::kPpo, {}},
      {"IMPACT", false, core::Algorithm::kImpact,
       baselines::SyncVariant::kVanillaPpo},
      {"IMPACT+Stellaris", true, core::Algorithm::kImpact, {}},
      {"RLlib", false, core::Algorithm::kPpo,
       baselines::SyncVariant::kRllibLike},
      {"RLlib+Stellaris", true, core::Algorithm::kPpo, {}},
      {"MinionsRL", false, core::Algorithm::kPpo,
       baselines::SyncVariant::kMinionsLike},
      {"MinionsRL+Stellaris", true, core::Algorithm::kPpo, {}},
  };

  Table t({"env", "system", "learner_cost_usd", "actor_cost_usd",
           "total_cost_usd", "vs_baseline_pct"});
  // Keep cost benches cheap: 2 seeds, shorter rounds.
  for (const auto& env : envs::benchmark_env_names()) {
    const std::size_t rounds =
        std::max<std::size_t>(10, bench::default_rounds(env) / 2);
    double baseline_cost = 0.0;
    for (const auto& sys : systems) {
      auto cfg = bench::base_config(env, rounds, 1);
      cfg.algorithm = sys.algo;
      bench::Summary s;
      if (sys.stellaris) {
        s = bench::summarize(bench::run_seeds(cfg, 2));
      } else {
        baselines::SyncConfig sc;
        sc.base = cfg;
        sc.variant = sys.variant;
        sc.num_learners = 4;
        s = bench::summarize(bench::run_sync_seeds(sc, 2));
        baseline_cost = s.total_cost;
      }
      const double vs =
          baseline_cost > 0.0 ? 100.0 * s.total_cost / baseline_cost : 100.0;
      t.row()
          .add(env)
          .add(sys.name)
          .add(s.learner_cost, 5)
          .add(s.actor_cost, 5)
          .add(s.total_cost, 5)
          .add(vs, 1);
    }
  }
  t.emit("Fig. 8 — training cost split (paper: Stellaris cuts cost by up to"
         " 31% / 30% / 38% / 41% vs PPO / IMPACT / RLlib / MinionsRL)",
         "fig08_cost.csv");
  std::cout << "\nExpected shape: every +Stellaris bar is shorter than its"
               " baseline; serverful baselines carry large idle-resource"
               " cost.\n";
  return 0;
}
