// Fault plane × serving tier: a serving-container crash kills the
// in-flight requests of THAT container only; queued requests re-dispatch on
// a fresh container, and billing charges the crashed batch for the seconds
// it consumed (wasted spend), per the paper's cost model.
#include <gtest/gtest.h>

#include <string>

#include "obs/obs.hpp"
#include "serve/serve_engine.hpp"
#include "serverless/cost_meter.hpp"

namespace stellaris::serve {
namespace {

ServeConfig crash_config() {
  ServeConfig cfg;
  TenantConfig t;
  t.name = "walker";
  t.obs_dim = 8;
  t.act_dim = 3;
  t.hidden = 16;
  t.batch.max_batch = 16;
  t.batch.max_wait_s = 0.002;
  t.traffic.rate_per_s = 400.0;
  t.traffic.duration_s = 5.0;
  cfg.tenants = {t};
  cfg.worker_capacity = 8;
  cfg.autoscale.max_workers = 4;
  cfg.seed = 42;
  return cfg;
}

ServeResult run_with_publish(ServeEngine& eng, const ServeConfig& cfg) {
  eng.publish_policy(0, make_policy_params(cfg.tenants[0], 1), 1);
  return eng.run();
}

TEST(ServeFault, CrashKillsOnlyThatContainersBatch) {
  auto cfg = crash_config();
  // One scripted crash trap armed at t=1.0 for serve invocations only
  // (fn_kind 3 = FnKind::kServe), dying halfway through the work.
  cfg.faults.schedule.push_back(
      {1.0, fault::FaultKind::kCrash,
       static_cast<int>(serverless::FnKind::kServe), 0.5});

  obs::LedgerRecorder ledger;
  obs::install_ledger(&ledger);
  ServeEngine eng(cfg);
  const auto res = run_with_publish(eng, cfg);
  obs::install_ledger(nullptr);

  const auto& tr = res.tenants[0];
  EXPECT_EQ(res.crashes_injected, 1u);
  // Exactly one batch died; its requests (and only they) failed.
  EXPECT_GT(tr.failed, 0u);
  EXPECT_LE(tr.failed, cfg.tenants[0].batch.max_batch);
  EXPECT_EQ(tr.completed + tr.failed, tr.admitted);
  // Traffic kept flowing afterwards: far more completed than one batch.
  EXPECT_GT(tr.completed, 10 * tr.failed);
  // The crashed container was killed outright (no keep-alive reuse).
  EXPECT_EQ(eng.pool().kills(), 1u);

  // Exactly one serve_batch settled not-ok, with the crash error tag.
  std::size_t failed_batches = 0;
  for (const auto& line : ledger.lines())
    if (line.find("\"ev\":\"serve_batch\"") != std::string::npos &&
        line.find("\"ok\":false") != std::string::npos) {
      ++failed_batches;
      EXPECT_NE(line.find("\"error\":\"crash\""), std::string::npos) << line;
    }
  EXPECT_EQ(failed_batches, 1u);
}

TEST(ServeFault, CrashedBatchIsBilledAsWastedSpend) {
  auto cfg = crash_config();
  cfg.faults.schedule.push_back(
      {1.0, fault::FaultKind::kCrash,
       static_cast<int>(serverless::FnKind::kServe), 0.5});
  ServeEngine eng(cfg);
  const auto res = run_with_publish(eng, cfg);

  const auto& costs = eng.costs();
  using serverless::FnKind;
  EXPECT_EQ(costs.failed_invocations(FnKind::kServe), 1u);
  // The provider bills the partial execution: wasted spend is positive but
  // strictly less than the total bill.
  EXPECT_GT(res.wasted_cost_usd, 0.0);
  EXPECT_LT(res.wasted_cost_usd, res.cost_usd);
  EXPECT_DOUBLE_EQ(res.wasted_cost_usd, costs.wasted_cost(FnKind::kServe));
  // Wasted seconds = fail_frac × the batch's full duration: a 0.5-fraction
  // crash of a ~ms-scale batch cannot exceed one full batch duration.
  EXPECT_LT(costs.wasted_seconds(FnKind::kServe), 1.0);
}

TEST(ServeFault, QueuedRequestsRedispatchAfterCrash) {
  auto cfg = crash_config();
  // Pin one worker so requests queued behind the doomed batch demonstrably
  // drain through a replacement container afterwards.
  cfg.autoscale.min_workers = 1;
  cfg.autoscale.max_workers = 1;
  cfg.faults.schedule.push_back(
      {1.0, fault::FaultKind::kCrash,
       static_cast<int>(serverless::FnKind::kServe), 0.5});
  ServeEngine eng(cfg);
  const auto res = run_with_publish(eng, cfg);
  const auto& tr = res.tenants[0];
  EXPECT_EQ(res.crashes_injected, 1u);
  EXPECT_EQ(tr.completed + tr.failed, tr.admitted);
  EXPECT_GT(tr.completed, 0u);
  // The kill forced a cold replacement start (the killed slot lost its
  // warmth); queued work still drained to completion.
  EXPECT_EQ(eng.pool().kills(), 1u);
}

TEST(ServeFault, ZeroFaultPlanMatchesFaultlessRun) {
  // The injector's zero-fault plan draws nothing: results are bit-identical
  // with the (default) empty plan — the serve tier preserves the fault
  // plane's determinism contract.
  const auto a = [&] {
    auto cfg = crash_config();
    ServeEngine eng(cfg);
    return run_with_publish(eng, cfg);
  }();
  const auto b = [&] {
    auto cfg = crash_config();
    cfg.faults.config = fault::FaultConfig{};  // explicit zero-fault model
    ServeEngine eng(cfg);
    return run_with_publish(eng, cfg);
  }();
  EXPECT_EQ(a.tenants[0].value_checksum, b.tenants[0].value_checksum);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
}

TEST(ServeFault, StragglerSlowsOneBatchOnly) {
  auto cfg = crash_config();
  cfg.faults.schedule.push_back(
      {1.0, fault::FaultKind::kStraggler,
       static_cast<int>(serverless::FnKind::kServe), 20.0});
  ServeEngine eng(cfg);
  const auto res = run_with_publish(eng, cfg);
  const auto& tr = res.tenants[0];
  // Stragglers do not fail work — everything completes, slower.
  EXPECT_EQ(tr.failed, 0u);
  EXPECT_EQ(tr.completed, tr.admitted);
  EXPECT_EQ(res.wasted_cost_usd, 0.0);
}

}  // namespace
}  // namespace stellaris::serve
