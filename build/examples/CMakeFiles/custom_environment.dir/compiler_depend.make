# Empty compiler generated dependencies file for custom_environment.
# This may be replaced when dependencies are built.
