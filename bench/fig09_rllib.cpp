// Fig. 9 — integrating Stellaris with Ray RLlib: the RLlib-like synchronous
// learner group vs the same workload with Stellaris' asynchronous serverless
// learners, across all six environments.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  Table summary({"env", "rllib_final", "stellaris_final", "reward_gain",
                 "rllib_time_s", "stellaris_time_s"});
  for (const auto& env : envs::benchmark_env_names()) {
    const std::size_t rounds = bench::default_rounds(env);
    const std::size_t seeds = bench::default_seeds(env);
    auto cfg = bench::base_config(env, rounds, 1);

    baselines::SyncConfig sync_cfg;
    sync_cfg.base = cfg;
    sync_cfg.variant = baselines::SyncVariant::kRllibLike;
    sync_cfg.num_learners = 4;
    auto rllib_runs = bench::run_sync_seeds(sync_cfg, seeds);
    const double budget = bench::summarize(rllib_runs).time_s;
    auto stl_runs = bench::run_seeds_time_matched(cfg, seeds, budget);

    bench::emit_curve_comparison(
        "Fig. 9 — " + env + ": RLlib vs RLlib+Stellaris", "rllib", rllib_runs,
        "stellaris", stl_runs, "fig09_" + env + ".csv");
    const auto sr = bench::summarize(rllib_runs);
    const auto ss = bench::summarize(stl_runs);
    summary.row()
        .add(env)
        .add(sr.final_reward, 1)
        .add(ss.final_reward, 1)
        .add(sr.final_reward != 0.0 ? ss.final_reward / sr.final_reward : 0.0,
             2)
        .add(sr.time_s, 1)
        .add(ss.time_s, 1);
  }
  summary.emit("Fig. 9 summary — final rewards (paper: up to 1.3x)",
               "fig09_summary.csv");
  std::cout << "\nExpected shape: the Stellaris line sits above RLlib for"
               " most of training in each environment.\n";
  return 0;
}
