#include "rl/replay_buffer.hpp"

#include <gtest/gtest.h>

namespace stellaris::rl {
namespace {

SampleBatch batch_of(std::size_t n, std::uint64_t version) {
  SampleBatch b;
  b.action_kind = nn::ActionKind::kContinuous;
  b.policy_version = version;
  b.obs = Tensor({n, 2});
  b.actions_cont = Tensor({n, 1});
  b.rewards = Tensor::full({n}, static_cast<float>(version));
  b.dones = Tensor({n});
  b.behaviour_log_probs = Tensor({n});
  b.values = Tensor({n});
  return b;
}

TEST(ReplayBuffer, AddAndSize) {
  ReplayBuffer rb(4);
  rb.add(batch_of(8, 1));
  rb.add(batch_of(8, 2));
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.total_timesteps(), 16u);
}

TEST(ReplayBuffer, EvictsFifoAtCapacity) {
  ReplayBuffer rb(2);
  rb.add(batch_of(4, 1));
  rb.add(batch_of(4, 2));
  rb.add(batch_of(4, 3));
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.total_timesteps(), 8u);
  // The oldest (version 1) was dropped: every sample comes from 2 or 3.
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_GE(rb.sample(rng).policy_version, 2u);
}

TEST(ReplayBuffer, AgeBoundEvicts) {
  ReplayBuffer rb(10, /*max_age=*/2);
  rb.add(batch_of(4, 1));
  rb.add(batch_of(4, 5));
  rb.evict_stale(6);  // version 1 is 5 behind > 2 → dropped
  EXPECT_EQ(rb.size(), 1u);
  Rng rng(2);
  EXPECT_EQ(rb.sample(rng).policy_version, 5u);
}

TEST(ReplayBuffer, NoAgeBoundKeepsEverything) {
  ReplayBuffer rb(10);
  rb.add(batch_of(4, 1));
  rb.evict_stale(1000);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer rb(2);
  Rng rng(3);
  EXPECT_THROW(rb.sample(rng), Error);
}

TEST(ReplayBuffer, SampleConcatMergesBatches) {
  ReplayBuffer rb(4);
  rb.add(batch_of(4, 1));
  rb.add(batch_of(4, 2));
  Rng rng(4);
  SampleBatch merged = rb.sample_concat(3, rng);
  EXPECT_EQ(merged.size(), 12u);
  EXPECT_EQ(merged.segment_views().size(), 3u);  // seams recorded
}

TEST(ReplayBuffer, SamplingIsUniformIsh) {
  ReplayBuffer rb(2);
  rb.add(batch_of(1, 10));
  rb.add(batch_of(1, 20));
  Rng rng(5);
  int tens = 0;
  for (int i = 0; i < 2000; ++i)
    if (rb.sample(rng).policy_version == 10) ++tens;
  EXPECT_NEAR(tens / 2000.0, 0.5, 0.05);
}

TEST(ReplayBuffer, ZeroCapacityThrows) { EXPECT_THROW(ReplayBuffer(0), Error); }

}  // namespace
}  // namespace stellaris::rl
