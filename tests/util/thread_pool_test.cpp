#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace stellaris {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
  EXPECT_EQ(pool.tasks_enqueued(), 0u);
}

TEST(ThreadPool, ParallelForChunksIntoOneTaskPerWorker) {
  // A huge index range must not turn into one heap-allocated task per
  // index: static partitioning caps the task count at size().
  ThreadPool pool(4);
  const std::size_t n = 1'000'000;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
  EXPECT_EQ(pool.tasks_enqueued(), pool.size());
}

TEST(ThreadPool, ParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.tasks_enqueued(), 3u);  // one chunk per index, no more
}

TEST(ThreadPool, ParallelForUnevenSplitCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);  // 100 = 3*33 + 1
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5)
                                     throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 1000; ++i)
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, DrainsOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&done] { done++; });
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace stellaris
