#include "serverless/container_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace stellaris::serverless {
namespace {

LatencyModel fast_lat() {
  LatencyModel lat;
  lat.jitter_frac = 0.0;  // deterministic latencies for exact assertions
  return lat;
}

TEST(ContainerPool, FirstAcquireIsCold) {
  ContainerPool pool(2, fast_lat(), 1);
  auto a = pool.acquire(0.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->cold);
  EXPECT_DOUBLE_EQ(a->start_latency_s, fast_lat().cold_start_s);
  EXPECT_EQ(pool.cold_starts(), 1u);
}

TEST(ContainerPool, ReleasedContainerIsWarm) {
  ContainerPool pool(2, fast_lat(), 1);
  auto a = pool.acquire(0.0);
  pool.release(a->container_id, 1.0);
  auto b = pool.acquire(2.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(b->cold);
  EXPECT_DOUBLE_EQ(b->start_latency_s, fast_lat().warm_start_s);
  EXPECT_EQ(pool.warm_starts(), 1u);
}

TEST(ContainerPool, KeepAliveExpires) {
  ContainerPool pool(1, fast_lat(), 1);
  auto a = pool.acquire(0.0);
  pool.release(a->container_id, 10.0);
  // Past the 600 s keep-alive window the container has gone cold again.
  auto b = pool.acquire(10.0 + fast_lat().keep_alive_s + 1.0);
  EXPECT_TRUE(b->cold);
}

TEST(ContainerPool, CapacityLimitsConcurrency) {
  ContainerPool pool(2, fast_lat(), 1);
  auto a = pool.acquire(0.0);
  auto b = pool.acquire(0.0);
  EXPECT_TRUE(a && b);
  EXPECT_FALSE(pool.acquire(0.0).has_value());
  EXPECT_EQ(pool.busy(), 2u);
  pool.release(a->container_id, 1.0);
  EXPECT_TRUE(pool.acquire(1.0).has_value());
}

TEST(ContainerPool, PrewarmMakesStartsWarmForFree) {
  ContainerPool pool(4, fast_lat(), 1);
  EXPECT_EQ(pool.prewarm(3, 0.0), 3u);
  EXPECT_EQ(pool.warm_idle(0.0), 3u);
  auto a = pool.acquire(1.0);
  EXPECT_FALSE(a->cold);
  // No cold start was recorded: prewarming is outside the cost model.
  EXPECT_EQ(pool.cold_starts(), 0u);
}

TEST(ContainerPool, PrewarmCapsAtCapacity) {
  ContainerPool pool(2, fast_lat(), 1);
  EXPECT_EQ(pool.prewarm(10, 0.0), 2u);
}

TEST(ContainerPool, WarmIdleCountExpires) {
  ContainerPool pool(2, fast_lat(), 1);
  pool.prewarm(2, 0.0);
  EXPECT_EQ(pool.warm_idle(0.0), 2u);
  EXPECT_EQ(pool.warm_idle(fast_lat().keep_alive_s + 1.0), 0u);
}

TEST(ContainerPool, ReleaseInvalidStatesThrow) {
  ContainerPool pool(1, fast_lat(), 1);
  EXPECT_THROW(pool.release(0, 0.0), Error);    // not busy
  EXPECT_THROW(pool.release(5, 0.0), Error);    // bad id
  EXPECT_THROW(ContainerPool(0, fast_lat(), 1), Error);
}

// Regression test for the annotation audit: every pool field used to be
// mutated with no guard, so concurrent acquire/release from real threads
// (the real-concurrency driver path) could corrupt slot state and the
// start counters. Hammer the pool from many threads and check the
// invariants the mutex now enforces. Run under TSan in CI.
TEST(ContainerPool, ConcurrentAcquireReleaseKeepsInvariants) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kIters = 2000;
  ContainerPool pool(kCapacity, fast_lat(), 1);
  std::atomic<std::uint64_t> acquired{0};
  std::atomic<bool> overflow{false};
  ThreadPool threads(8);
  threads.parallel_for(kIters, [&](std::size_t i) {
    auto a = pool.acquire(static_cast<double>(i));
    if (!a) return;
    acquired.fetch_add(1, std::memory_order_relaxed);
    if (pool.busy() > kCapacity) overflow.store(true);
    pool.release(a->container_id, static_cast<double>(i));
  });
  EXPECT_FALSE(overflow.load());
  EXPECT_EQ(pool.busy(), 0u);  // every successful acquire was released
  EXPECT_GT(acquired.load(), 0u);
  // Each successful acquisition was either a cold or a warm start.
  EXPECT_EQ(pool.cold_starts() + pool.warm_starts(), acquired.load());
  EXPECT_EQ(pool.kills(), 0u);
}

TEST(ContainerPool, WarmContainersPreferredOverCold) {
  ContainerPool pool(3, fast_lat(), 1);
  pool.prewarm(1, 0.0);
  auto a = pool.acquire(0.0);
  EXPECT_FALSE(a->cold);  // took the warm one first
  auto b = pool.acquire(0.0);
  EXPECT_TRUE(b->cold);
}

}  // namespace
}  // namespace stellaris::serverless
