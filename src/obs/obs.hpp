// Observability entry point: process-global slots for the trace recorder,
// the run ledger, and the time-series recorder, the shared metrics
// registry, and the RAII session that benches/tools use to turn capture
// on.
//
// Cost model (the reward/cost/time figures must be unchanged by this
// subsystem):
//  - capture off (default): `obs::trace()` / `obs::ledger()` /
//    `obs::timeseries()` are each one relaxed atomic load and a branch at
//    the call site — no allocation, no formatting;
//  - metrics: instruments are resolved once at component construction and
//    updated with relaxed atomics;
//  - none of it feeds back into the simulation (no RNG draws, no
//    virtual-time events), so results are bit-identical with observability
//    on or off (enforced by bench/telemetry_gate and CI).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace stellaris::obs {

namespace detail {
extern std::atomic<TraceRecorder*> g_trace;
extern std::atomic<LedgerRecorder*> g_ledger;
extern std::atomic<TimeSeriesRecorder*> g_timeseries;
extern std::atomic<std::uint64_t> g_run_counter;
}  // namespace detail

/// The active trace recorder, or nullptr when tracing is disabled.
inline TraceRecorder* trace() {
  return detail::g_trace.load(std::memory_order_acquire);
}

/// The active run ledger, or nullptr when ledger capture is disabled.
inline LedgerRecorder* ledger() {
  return detail::g_ledger.load(std::memory_order_acquire);
}

/// The active time-series recorder, or nullptr when sampling is disabled.
inline TimeSeriesRecorder* timeseries() {
  return detail::g_timeseries.load(std::memory_order_acquire);
}

/// The process-wide metrics registry (always available).
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// Install (or, with nullptr, remove) the global trace recorder. The caller
/// keeps ownership; ObsSession is the usual owner.
void install_trace(TraceRecorder* recorder);
/// Same contract for the run ledger and the time-series recorder.
void install_ledger(LedgerRecorder* recorder);
void install_timeseries(TimeSeriesRecorder* recorder);

/// Trace runs are namespaced so several training runs captured into one
/// recorder (multi-seed benches) get distinct track groups. A trainer calls
/// begin_run() once per run; components then prefix their tracks with
/// run_tag().
std::uint64_t begin_run();
std::string run_tag();

/// The current run id (0 before the first begin_run()). Ledger events are
/// stamped with this so multi-run captures stay separable offline.
std::uint64_t current_run();

/// "run<id>/<suffix>" with the current run id.
std::string run_track(const std::string& suffix);

struct ObsOptions {
  std::string trace_path;       ///< empty → tracing stays disabled
  std::string metrics_path;     ///< empty → no metrics dump at session end
  std::string ledger_path;      ///< empty → run-ledger capture disabled
  std::string timeseries_path;  ///< empty → time-series sampling disabled
  double timeseries_window_s = 1.0;  ///< virtual seconds per sample window
  bool reset_metrics = true;  ///< zero the global registry at session start
};

/// RAII capture session: installs recorders for every path given in the
/// options, and writes the trace / metrics / ledger / time-series files on
/// destruction.
class ObsSession {
 public:
  explicit ObsSession(ObsOptions opts);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// The session's recorders (nullptr when the matching capture is off).
  TraceRecorder* recorder() { return trace_.get(); }
  LedgerRecorder* ledger() { return ledger_.get(); }
  TimeSeriesRecorder* timeseries() { return timeseries_.get(); }

 private:
  ObsOptions opts_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<LedgerRecorder> ledger_;
  std::unique_ptr<TimeSeriesRecorder> timeseries_;
};

/// RAII span over an arbitrary clock: captures `now()` at construction and
/// emits a complete event over [t_start, now()] at destruction. Safe to
/// construct with a null recorder (no-op).
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* rec, TrackId tid, std::string name,
             const char* category, std::function<double()> now,
             TraceArgs args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach another argument before the span closes.
  void arg(TraceArg a);

 private:
  TraceRecorder* rec_;
  TrackId tid_;
  std::string name_;
  const char* cat_;
  std::function<double()> now_;
  double t0_ = 0.0;
  TraceArgs args_;
};

}  // namespace stellaris::obs
