file(REMOVE_RECURSE
  "libstellaris_baselines.a"
)
