# Empty dependencies file for fig03_characterization.
# This may be replaced when dependencies are built.
