// driver-purity pass: the body lambda handed to `driver().submit(...)`
// runs on a worker thread under the concurrent driver (DESIGN.md §14), so
// it — and everything reachable from it through project functions — must
// be a pure function of the captured inputs. Concretely, a body must not:
//
//   * touch the engine (`engine_`, `schedule_*`): bodies cannot schedule;
//   * read wall clocks (`system_clock`, `steady_clock`, ...): results must
//     be identical under the virtual and concurrent drivers;
//   * draw from shared RNG (`rand`, `srand`, `random_device`, a member
//     `rng_`): bodies derive randomness from captured per-invocation
//     streams (`sim::invocation_stream`). In VecEnv (src/envs/vec_env.*)
//     the member stream is additionally forbidden in REACHED functions:
//     a `rng_.` draw there would silently key auto-reset seeds off
//     cross-invocation state (DESIGN.md §17). Passing `rng_` by reference
//     into a caller-Rng overload (`rng_` followed by `)` or `,`) is the
//     sanctioned delegation and does not match the rule;
//   * emit telemetry (`obs::ledger()`, `obs::trace()`, `obs::metrics()`,
//     `obs::timeseries()`, `LedgerEvent`): emission order would depend on
//     worker interleaving — telemetry belongs in the merge;
//   * reach back into engine-thread state (`cache_`, `platform_`): cache
//     reads happen at capture time, writes in the merge.
//
// Reachability is by unqualified call name over the project-wide function
// index — overloads are merged, which errs toward more findings; the
// sim layer itself (driver machinery) is excluded from traversal. Findings
// are suppressed per line with `analyze:driver-purity-ok`.
#include "analyzer.hpp"
#include "functions.hpp"

namespace stellaris::analyze {

namespace {

bool punct_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

const std::set<std::string>& forbidden_idents() {
  static const std::set<std::string> s = {
      "engine_",       "platform_",     "cache_",
      "system_clock",  "steady_clock",  "high_resolution_clock",
      "random_device", "srand",         "LedgerEvent",
  };
  return s;
}

/// Forbidden only in the submit lambda itself: a body that touches the
/// trainer's `rng_` through its `this` capture draws from shared RNG. In
/// *reached* functions the same spelling is overwhelmingly a per-object
/// stream (each env owns an `rng_` whose draws are serialized by the
/// per-actor job chain), so it is allowed there.
const std::set<std::string>& forbidden_direct_idents() {
  static const std::set<std::string> s = {"rng_"};
  return s;
}

/// Member names never traversed into: these are std-vocabulary spellings
/// (atomics, containers, smart pointers) where an unqualified-name index
/// lookup would hit unrelated project methods (e.g. `x.load()` on an
/// atomic resolving to `PolicyStore::load`).
const std::set<std::string>& opaque_callees() {
  static const std::set<std::string> s = {
      "load",        "store",       "exchange",   "fetch_add", "fetch_sub",
      "push_back",   "emplace_back", "insert",    "erase",     "find",
      "count",       "clear",       "resize",     "reserve",   "swap",
      "begin",       "end",         "size",       "empty",     "data",
      "front",       "back",        "at",         "c_str",     "str",
      "append",      "substr",      "wait",       "notify_one",
      "notify_all",  "lock",        "unlock",     "try_lock",
  };
  return s;
}

const std::set<std::string>& forbidden_obs() {
  static const std::set<std::string> s = {"ledger", "trace", "tracer",
                                          "metrics", "timeseries"};
  return s;
}

struct Ctx {
  const Project* project = nullptr;
  const FuncIndex* index = nullptr;
  std::vector<Finding>* out = nullptr;
  std::set<std::string> reported;          // finding ids (dedup)
  std::set<std::string> visited;           // "file:name:line" of checked defs
};

/// Why an identifier is forbidden, or "" when it is allowed.
std::string forbidden_reason(const std::string& ident) {
  if (forbidden_idents().count(ident)) return "references `" + ident + "`";
  if (ident.rfind("schedule_", 0) == 0)
    return "schedules engine work via `" + ident + "`";
  return "";
}

void report(Ctx& ctx, const SourceFile& file, int line,
            const std::string& context, const std::string& symbol,
            const std::string& reason, const std::string& chain) {
  if (file.suppressed("driver-purity", line)) return;
  Finding f{"driver-purity", file.rel, line, context + ":" + symbol,
            context == "submit-body"
                ? "driver body " + reason +
                      " — bodies must be pure functions of their capture "
                      "(DESIGN.md §14)" + chain
                : "`" + context + "` " + reason +
                      ", and it is reachable from a driver body" + chain};
  if (ctx.reported.insert(f.id()).second) ctx.out->push_back(f);
}

void check_range(Ctx& ctx, const SourceFile& file, std::size_t begin,
                 std::size_t end, const std::string& context,
                 const std::string& chain);

/// Follow calls out of [begin, end) into project function definitions.
void traverse_calls(Ctx& ctx, const SourceFile& file, std::size_t begin,
                    std::size_t end, const std::string& chain) {
  for (const auto& callee : calls_in_range(file.tokens, begin, end)) {
    if (opaque_callees().count(callee)) continue;
    auto [lo, hi] = ctx.index->equal_range(callee);
    for (auto it = lo; it != hi; ++it) {
      const FuncDef& def = it->second;
      // The driver/engine machinery is the impure substrate the bodies run
      // on; traversing into it would flag the infrastructure, not misuse.
      if (def.file->rel.rfind("src/sim/", 0) == 0) continue;
      const std::string key = def.file->rel + ":" + def.name + ":" +
                              std::to_string(def.line);
      if (!ctx.visited.insert(key).second) continue;
      check_range(ctx, *def.file, def.body_begin, def.body_end, def.name,
                  chain + " -> " + def.name);
    }
  }
}

void check_range(Ctx& ctx, const SourceFile& file, std::size_t begin,
                 std::size_t end, const std::string& context,
                 const std::string& chain) {
  const auto& toks = file.tokens;
  const std::string via = " (call path: " + chain + ")";
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    // obs::ledger() / obs::trace() / obs::metrics() / obs::timeseries().
    if (t.text == "obs" && i + 2 < end && punct_is(toks[i + 1], "::") &&
        toks[i + 2].kind == Token::Kind::kIdent &&
        forbidden_obs().count(toks[i + 2].text)) {
      report(ctx, file, toks[i + 2].line, context, "obs::" + toks[i + 2].text,
             "emits telemetry via `obs::" + toks[i + 2].text +
                 "()` — telemetry belongs in the merge",
             via);
      i += 2;
      continue;
    }
    if (t.text == "rand" && i + 1 < end && punct_is(toks[i + 1], "(")) {
      report(ctx, file, t.line, context, "rand",
             "calls the global `rand()`", via);
      continue;
    }
    std::string reason = forbidden_reason(t.text);
    if (reason.empty() && context == "submit-body" &&
        forbidden_direct_idents().count(t.text))
      reason = "references shared `" + t.text + "` through its capture";
    // VecEnv-specific: a member-`rng_` DRAW (`rng_.`) anywhere reachable
    // from a body keys auto-reset seeds off cross-invocation state.
    // Delegating `rng_` by reference to a caller-Rng overload is fine.
    if (reason.empty() && t.text == "rng_" && i + 1 < end &&
        punct_is(toks[i + 1], ".") &&
        file.rel.find("vec_env") != std::string::npos)
      reason = "draws from VecEnv's member `rng_` stream — auto-reset "
               "seeds must come from the caller's per-invocation Rng "
               "(DESIGN.md §17)";
    if (!reason.empty()) report(ctx, file, t.line, context, t.text, reason, via);
  }
  traverse_calls(ctx, file, begin, end, chain);
}

}  // namespace

void check_purity(const Project& project, std::vector<Finding>& out) {
  const FuncIndex index = index_functions(project);
  Ctx ctx;
  ctx.project = &project;
  ctx.index = &index;
  ctx.out = &out;

  for (const auto& file : project.files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 6 < toks.size(); ++i) {
      // driver ( ) . submit ( [capture] (params) ... { body }
      if (!(toks[i].kind == Token::Kind::kIdent && toks[i].text == "driver"))
        continue;
      if (!punct_is(toks[i + 1], "(")) continue;
      const std::size_t after_driver_args = match_group(toks, i + 1);
      if (after_driver_args + 2 >= toks.size()) continue;
      if (!punct_is(toks[after_driver_args], ".")) continue;
      if (!(toks[after_driver_args + 1].kind == Token::Kind::kIdent &&
            toks[after_driver_args + 1].text == "submit"))
        continue;
      if (!punct_is(toks[after_driver_args + 2], "(")) continue;
      const int root_line = toks[i].line;
      if (file.suppressed("driver-purity", root_line)) continue;
      // First argument must be a lambda; only it is the body (a second
      // argument is a dependency handle, not code).
      std::size_t j = after_driver_args + 3;
      if (j >= toks.size() || !punct_is(toks[j], "[")) continue;
      j = match_group(toks, j);  // past the capture list
      if (j < toks.size() && punct_is(toks[j], "("))
        j = match_group(toks, j);  // past the parameter list
      while (j < toks.size() && toks[j].kind == Token::Kind::kIdent)
        ++j;  // mutable / noexcept
      if (j >= toks.size() || !punct_is(toks[j], "{")) continue;
      const std::size_t body_end = match_group(toks, j);
      check_range(ctx, file, j, body_end, "submit-body",
                  "submit@" + file.rel + ":" + std::to_string(root_line));
      i = after_driver_args + 2;
    }
  }
}

}  // namespace stellaris::analyze
