# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/tensor_tests[1]_include.cmake")
include("/root/repo/build/tests/nn_tests[1]_include.cmake")
include("/root/repo/build/tests/rl_tests[1]_include.cmake")
include("/root/repo/build/tests/envs_tests[1]_include.cmake")
include("/root/repo/build/tests/cache_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/serverless_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_tests[1]_include.cmake")
