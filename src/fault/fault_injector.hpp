// FaultInjector: executes a FaultPlan against the virtual-time engine.
//
// The injector is the single source of failure randomness. It owns a
// dedicated RNG stream (seeded from the plan), so
//  - a given (plan, seed) reproduces the exact same fault sequence on every
//    run, and
//  - the zero-fault plan draws nothing, leaving every other random stream
//    (latency jitter, sampling, environments) untouched — zero-fault runs
//    are bit-identical to a faultless build.
//
// Consumers:
//  - ServerlessPlatform asks `on_invocation()` at each dispatch and applies
//    the verdict (crash point, straggler multiplier, cache fault) to the
//    invocation's timeline; it registers a callback via `arm_reclaims()`
//    through which the injector fires whole-VM reclamations.
//  - The sync baseline, which has no event loop, replays the same
//    probabilistic model analytically through `simulate_retries()`.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/retry_policy.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace stellaris::fault {

/// Verdict for one invocation.
struct InvocationFault {
  ErrorKind fail = ErrorKind::kNone;  ///< kCrash / kCacheError / kNone
  double fail_frac = 1.0;   ///< fraction of the work done before a crash
  double straggler_mult = 1.0;  ///< compute-duration multiplier
  double cache_delay_s = 0.0;   ///< extra data-transfer latency
};

class FaultInjector {
 public:
  FaultInjector(sim::Engine& engine, FaultPlan plan);

  /// Decide the fate of an invocation of `fn_kind` (the integer value of
  /// serverless::FnKind; kept as int so this library stays below the
  /// serverless layer). Consumes matching scripted traps first, then
  /// samples the probabilistic model.
  InvocationFault on_invocation(int fn_kind);

  /// Register the reclamation executor and start the arrival process
  /// (Poisson arrivals from the config + scripted kVmReclaim entries).
  /// The callback receives the fault RNG so victim selection is part of
  /// the deterministic fault stream.
  void arm_reclaims(std::function<void(Rng&)> reclaim_cb);

  /// Stop future reclamations (cancels pending timers so they do not
  /// stretch the run's virtual makespan).
  void disarm();

  bool reclaims_enabled() const;
  const FaultPlan& plan() const { return plan_; }

  // Injection counters (also mirrored into obs metrics). Cache faults are
  // failed cache operations; cache delays (slow-but-successful operations)
  // are counted separately.
  std::uint64_t crashes_injected() const { return crashes_; }
  std::uint64_t stragglers_injected() const { return stragglers_; }
  std::uint64_t cache_faults_injected() const { return cache_faults_; }
  std::uint64_t cache_delays_injected() const { return cache_delays_; }
  std::uint64_t reclaims_fired() const { return reclaims_; }

 private:
  void schedule_next_reclaim();
  void fire_reclaim();

  sim::Engine& engine_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<bool> consumed_;  ///< scripted one-shot traps already fired
  std::function<void(Rng&)> reclaim_cb_;
  /// Scripted kVmReclaim timers (bounded by the plan's schedule length).
  std::vector<sim::Engine::CancelHandle> reclaim_timers_;
  /// The one pending Poisson-arrival timer; reassigned on each arrival so
  /// long runs do not accumulate fired handles.
  sim::Engine::CancelHandle reclaim_arrival_;
  bool armed_ = false;

  std::uint64_t crashes_ = 0;
  std::uint64_t stragglers_ = 0;
  std::uint64_t cache_faults_ = 0;
  std::uint64_t cache_delays_ = 0;
  std::uint64_t reclaims_ = 0;

  obs::Counter* m_crashes_;
  obs::Counter* m_stragglers_;
  obs::Counter* m_cache_faults_;
  obs::Counter* m_cache_delays_;
  obs::Counter* m_reclaims_;
};

/// Analytic retry chain for the barrier baselines (no event loop): runs
/// attempt/backoff/retry against the probabilistic model until success,
/// retries are exhausted, or the deadline passes. Returns total elapsed
/// time including failed attempts and backoffs — the time a synchronous
/// barrier stalls waiting for this worker.
struct RetrySimOutcome {
  double elapsed_s = 0.0;   ///< wall time of the whole chain
  double wasted_s = 0.0;    ///< execution seconds of failed attempts
  std::size_t attempts = 1;
  bool ok = true;
  ErrorKind error = ErrorKind::kNone;
};

RetrySimOutcome simulate_retries(double base_duration_s,
                                 const FaultConfig& config,
                                 const RetryPolicy& policy, Rng& rng);

}  // namespace stellaris::fault
