#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace stellaris::nn {
namespace {

// Scalar loss L = sum(forward(x)) and its analytic gradient via
// backward(ones); compared against central finite differences on both the
// input and every parameter.
double loss_of(Layer& layer, const Tensor& x) {
  Tensor y = layer.forward(x);
  return y.sum();
}

void check_gradients(Layer& layer, Tensor x, float tol = 2e-2f) {
  zero_gradients(layer);
  Tensor y = layer.forward(x);
  Tensor dy = Tensor::ones(y.shape());
  Tensor dx = layer.backward(dy);

  const float eps = 1e-2f;
  // Input gradient.
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 20); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fd = (loss_of(layer, xp) - loss_of(layer, xm)) / (2 * eps);
    EXPECT_NEAR(dx[i], fd, tol) << "input grad at " << i;
  }
  // Parameter gradients (sampled).
  auto params = layer.parameters();
  auto grads = layer.gradients();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    // Re-run forward/backward to refresh caches after the fd perturbations.
    zero_gradients(layer);
    (void)layer.forward(x);
    (void)layer.backward(dy);
    const Tensor g = *grads[p];
    for (std::size_t i = 0; i < std::min<std::size_t>(w.numel(), 12); ++i) {
      const float orig = w[i];
      w[i] = orig + eps;
      const double lp = loss_of(layer, x);
      w[i] = orig - eps;
      const double lm = loss_of(layer, x);
      w[i] = orig;
      EXPECT_NEAR(g[i], (lp - lm) / (2 * eps), tol)
          << "param " << p << " grad at " << i;
    }
  }
}

TEST(Linear, ForwardMatchesHandComputation) {
  Rng rng(1);
  Linear lin(2, 2, rng);
  lin.parameters()[0]->vec() = {1, 2, 3, 4};  // W row-major (in, out)
  lin.parameters()[1]->vec() = {10, 20};      // b
  Tensor x({1, 2}, {1, 1});
  Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 4 + 20);
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear lin(4, 3, rng);
  check_gradients(lin, Tensor::randn({5, 4}, rng));
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(3);
  Linear lin(2, 2, rng);
  EXPECT_THROW(lin.backward(Tensor({1, 2})), Error);
}

TEST(Linear, WrongInputWidthThrows) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  EXPECT_THROW(lin.forward(Tensor({1, 4})), Error);
}

TEST(Tanh, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  Tanh t;
  check_gradients(t, Tensor::randn({3, 4}, rng));
}

TEST(Relu, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Relu r;
  // Keep inputs away from the kink so finite differences are valid.
  Tensor x = Tensor::randn({3, 4}, rng);
  for (auto& v : x.vec())
    if (std::abs(v) < 0.05f) v = 0.2f;
  check_gradients(r, x);
}

TEST(Conv2d, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  ops::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.in_h = 5;
  spec.in_w = 5;
  spec.kernel = 3;
  spec.stride = 2;
  Conv2d conv(spec, rng);
  check_gradients(conv, Tensor::randn({2, 2 * 5 * 5}, rng));
}

TEST(Conv2d, OutputShape) {
  Rng rng(8);
  ops::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.in_h = 20;
  spec.in_w = 20;
  spec.kernel = 5;
  spec.stride = 2;
  Conv2d conv(spec, rng);
  Tensor y = conv.forward(Tensor({4, 3 * 20 * 20}));
  EXPECT_EQ(y.shape(), (Shape{4, 8 * 8 * 8}));
  EXPECT_EQ(conv.out_features(), 8u * 8 * 8);
}

TEST(Sequential, ComposesAndBackpropagates) {
  Rng rng(9);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 8, rng));
  seq.add(std::make_unique<Tanh>());
  seq.add(std::make_unique<Linear>(8, 2, rng));
  check_gradients(seq, Tensor::randn({3, 4}, rng));
}

TEST(Sequential, ParameterAggregation) {
  Rng rng(10);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 8, rng));
  seq.add(std::make_unique<Relu>());
  seq.add(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2 × (W, b)
  EXPECT_EQ(seq.gradients().size(), 4u);
  EXPECT_EQ(parameter_count(seq), 4u * 8 + 8 + 8 * 2 + 2);
}

TEST(Sequential, ZeroGradientsZeroesEverything) {
  Rng rng(11);
  Sequential seq;
  seq.add(std::make_unique<Linear>(3, 3, rng));
  Tensor x = Tensor::randn({2, 3}, rng);
  (void)seq.forward(x);
  (void)seq.backward(Tensor::ones({2, 3}));
  bool any_nonzero = false;
  for (Tensor* g : seq.gradients())
    if (g->norm() > 0) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  zero_gradients(seq);
  for (Tensor* g : seq.gradients()) EXPECT_EQ(g->norm(), 0.0f);
}

// Acceptance criterion for the kernel-buffer-reuse work: once a layer stack
// has seen a batch shape, further forward/backward steps at that shape must
// not allocate — every intermediate lives in a persistent member buffer or a
// recycled ScratchPool lease.
TEST(Sequential, SteadyStateForwardBackwardDoesNotAllocate) {
  Rng rng(13);
  Sequential seq;
  seq.add(std::make_unique<Linear>(16, 32, rng));
  seq.add(std::make_unique<Tanh>());
  seq.add(std::make_unique<Linear>(32, 8, rng));
  Tensor x = Tensor::randn({4, 16}, rng);
  Tensor dy = Tensor::ones({4, 8});
  // Warm-up pass sizes every persistent buffer and scratch lease.
  (void)seq.forward(x);
  (void)seq.backward(dy);
  zero_gradients(seq);
  const std::uint64_t allocs = tensor_buffer_allocs();
  for (int step = 0; step < 5; ++step) {
    (void)seq.forward(x);
    (void)seq.backward(dy);
    zero_gradients(seq);
  }
  EXPECT_EQ(tensor_buffer_allocs(), allocs);
}

TEST(Conv2d, SteadyStateForwardBackwardDoesNotAllocate) {
  Rng rng(14);
  ops::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 4;
  spec.in_h = 8;
  spec.in_w = 8;
  spec.kernel = 3;
  spec.stride = 2;
  Conv2d conv(spec, rng);
  Tensor x = Tensor::randn({3, 2 * 8 * 8}, rng);
  (void)conv.forward(x);
  Tensor dy = Tensor::ones({3, conv.out_features()});
  (void)conv.backward(dy);
  zero_gradients(conv);
  const std::uint64_t allocs = tensor_buffer_allocs();
  for (int step = 0; step < 5; ++step) {
    (void)conv.forward(x);
    (void)conv.backward(dy);
    zero_gradients(conv);
  }
  EXPECT_EQ(tensor_buffer_allocs(), allocs);
}

TEST(Sequential, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(12);
  Linear lin(2, 2, rng);
  Tensor x = Tensor::randn({1, 2}, rng);
  (void)lin.forward(x);
  (void)lin.backward(Tensor::ones({1, 2}));
  const float g1 = (*lin.gradients()[0])[0];
  (void)lin.forward(x);
  (void)lin.backward(Tensor::ones({1, 2}));
  EXPECT_NEAR((*lin.gradients()[0])[0], 2 * g1, 1e-6f);
}

}  // namespace
}  // namespace stellaris::nn
