#include "rl/sample_batch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace stellaris::rl {

namespace {
/// Wire footprint of one tensor field: dims as u64vec + data as f32vec.
std::size_t tensor_wire_size(const Tensor& t) {
  return wire::size_u64_vector(t.shape().size()) +
         wire::size_f32_vector(t.numel());
}
}  // namespace

std::vector<std::uint8_t> SampleBatch::serialize() const {
  // Single-pass encode: exact size first, then one allocation and pure
  // memcpy appends (tensor data goes out as whole spans).
  const std::size_t total =
      wire::size_u8() + tensor_wire_size(obs) + tensor_wire_size(actions_cont) +
      wire::size_u64_vector(actions_disc.size()) + tensor_wire_size(rewards) +
      tensor_wire_size(dones) + tensor_wire_size(behaviour_log_probs) +
      tensor_wire_size(values) + wire::size_f32() +
      wire::size_u64_vector(segments.size()) +
      wire::size_f32_vector(segments.size()) + wire::size_u64() +
      tensor_wire_size(advantages) + tensor_wire_size(value_targets) +
      wire::size_f64_vector(episode_returns.size());
  ByteWriter w(total);
  std::vector<std::uint64_t> dims;  // scratch reused across tensor headers
  auto put_tensor = [&](const Tensor& t) {
    dims.assign(t.shape().begin(), t.shape().end());
    w.put_u64_span(dims);
    w.put_f32_span(t.vec());
  };
  w.put_u8(action_kind == nn::ActionKind::kContinuous ? 0 : 1);
  put_tensor(obs);
  put_tensor(actions_cont);
  {
    dims.assign(actions_disc.begin(), actions_disc.end());
    w.put_u64_span(dims);
  }
  put_tensor(rewards);
  put_tensor(dones);
  put_tensor(behaviour_log_probs);
  put_tensor(values);
  w.put_f32(bootstrap_value);
  {
    std::vector<std::uint64_t> seg_starts;
    std::vector<float> seg_boot;
    seg_starts.reserve(segments.size());
    seg_boot.reserve(segments.size());
    for (const auto& s : segments) {
      seg_starts.push_back(s.start);
      seg_boot.push_back(s.bootstrap);
    }
    w.put_u64_span(seg_starts);
    w.put_f32_span(seg_boot);
  }
  w.put_u64(policy_version);
  put_tensor(advantages);
  put_tensor(value_targets);
  w.put_f64_vector(episode_returns);
  return w.take();
}

SampleBatch SampleBatch::deserialize(ByteSpan bytes) {
  SampleBatch b;
  deserialize_into(bytes, b);
  return b;
}

void SampleBatch::deserialize_into(ByteSpan bytes, SampleBatch& out) {
  ByteReader r(bytes);
  out.action_kind = r.get_u8() == 0 ? nn::ActionKind::kContinuous
                                    : nn::ActionKind::kDiscrete;
  std::vector<std::uint64_t> dims;  // scratch reused across tensor headers
  Shape shape;
  auto get_tensor = [&](Tensor& t) {
    r.get_u64_vector_into(dims);
    shape.assign(dims.begin(), dims.end());
    // ensure_shape reuses t's buffer capacity; the vector read then lands
    // directly in the tensor's storage (one memcpy, no allocation once the
    // destination batch has seen this shape).
    t.ensure_shape(shape);
    const std::size_t n = r.get_f32_vector_into(t.vec());
    if (n != shape_numel(shape))
      throw Error("SampleBatch tensor data/shape mismatch: " +
                  std::to_string(n) + " elements for " + shape_str(shape));
  };
  get_tensor(out.obs);
  get_tensor(out.actions_cont);
  {
    r.get_u64_vector_into(dims);
    out.actions_disc.assign(dims.begin(), dims.end());
  }
  get_tensor(out.rewards);
  get_tensor(out.dones);
  get_tensor(out.behaviour_log_probs);
  get_tensor(out.values);
  out.bootstrap_value = r.get_f32();
  {
    const auto seg_starts = r.get_u64_vector();
    const auto seg_boot = r.get_f32_vector();
    out.segments.clear();
    out.segments.reserve(seg_starts.size());
    for (std::size_t i = 0; i < seg_starts.size(); ++i)
      out.segments.push_back(
          {static_cast<std::size_t>(seg_starts[i]), seg_boot[i]});
  }
  out.policy_version = r.get_u64();
  get_tensor(out.advantages);
  get_tensor(out.value_targets);
  r.get_f64_vector_into(out.episode_returns);
}

std::vector<SampleBatch::SegmentView> SampleBatch::segment_views() const {
  std::vector<SegmentView> views;
  if (segments.empty()) {
    views.push_back({0, size(), bootstrap_value});
    return views;
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::size_t end =
        i + 1 < segments.size() ? segments[i + 1].start : size();
    views.push_back({segments[i].start, end, segments[i].bootstrap});
  }
  return views;
}

SampleBatch SampleBatch::concat(std::span<const SampleBatch> parts) {
  STELLARIS_CHECK_MSG(!parts.empty(), "concat of zero batches");
  SampleBatch out;
  out.action_kind = parts.front().action_kind;
  out.policy_version = parts.front().policy_version;
  out.bootstrap_value = parts.back().bootstrap_value;

  // Record the seams so advantage estimators never bootstrap across them.
  {
    std::size_t offset = 0;
    for (const auto& p : parts) {
      for (const auto& sv : p.segment_views())
        out.segments.push_back({offset + sv.start, sv.bootstrap});
      offset += p.size();
    }
  }

  std::size_t total = 0;
  for (const auto& p : parts) {
    STELLARIS_CHECK_MSG(p.action_kind == out.action_kind,
                        "concat mixes action kinds");
    total += p.size();
  }

  auto cat1 = [&](auto accessor) {
    std::vector<float> data;
    data.reserve(total);
    for (const auto& p : parts) {
      const Tensor& t = accessor(p);
      data.insert(data.end(), t.vec().begin(), t.vec().end());
    }
    return Tensor({total}, std::move(data));
  };
  auto cat2 = [&](auto accessor) {
    std::size_t width = 0;
    for (const auto& p : parts) {
      const Tensor& t = accessor(p);
      if (t.numel() > 0) width = t.dim(1);
    }
    if (width == 0) return Tensor();
    std::vector<float> data;
    data.reserve(total * width);
    for (const auto& p : parts) {
      const Tensor& t = accessor(p);
      data.insert(data.end(), t.vec().begin(), t.vec().end());
    }
    const std::size_t rows = data.size() / width;  // before the move below
    return Tensor({rows, width}, std::move(data));
  };

  out.obs = cat2([](const SampleBatch& p) -> const Tensor& { return p.obs; });
  out.actions_cont = cat2(
      [](const SampleBatch& p) -> const Tensor& { return p.actions_cont; });
  for (const auto& p : parts)
    out.actions_disc.insert(out.actions_disc.end(), p.actions_disc.begin(),
                            p.actions_disc.end());
  out.rewards =
      cat1([](const SampleBatch& p) -> const Tensor& { return p.rewards; });
  out.dones =
      cat1([](const SampleBatch& p) -> const Tensor& { return p.dones; });
  out.behaviour_log_probs = cat1([](const SampleBatch& p) -> const Tensor& {
    return p.behaviour_log_probs;
  });
  out.values =
      cat1([](const SampleBatch& p) -> const Tensor& { return p.values; });
  const bool all_adv = std::all_of(parts.begin(), parts.end(),
                                   [](const auto& p) {
                                     return p.has_advantages();
                                   });
  if (all_adv) {
    out.advantages = cat1(
        [](const SampleBatch& p) -> const Tensor& { return p.advantages; });
    out.value_targets = cat1(
        [](const SampleBatch& p) -> const Tensor& { return p.value_targets; });
  }
  for (const auto& p : parts)
    out.episode_returns.insert(out.episode_returns.end(),
                               p.episode_returns.begin(),
                               p.episode_returns.end());
  return out;
}

SampleBatch SampleBatch::select(const std::vector<std::size_t>& idx) const {
  SampleBatch out;
  out.action_kind = action_kind;
  out.policy_version = policy_version;
  out.bootstrap_value = bootstrap_value;

  auto sel1 = [&](const Tensor& t) {
    if (t.empty()) return Tensor();
    std::vector<float> data;
    data.reserve(idx.size());
    for (std::size_t i : idx) data.push_back(t[i]);
    return Tensor({idx.size()}, std::move(data));
  };
  auto sel2 = [&](const Tensor& t) {
    if (t.empty()) return Tensor();
    const std::size_t w = t.dim(1);
    std::vector<float> data;
    data.reserve(idx.size() * w);
    for (std::size_t i : idx) {
      auto r = t.row(i);
      data.insert(data.end(), r.begin(), r.end());
    }
    return Tensor({idx.size(), w}, std::move(data));
  };

  out.obs = sel2(obs);
  out.actions_cont = sel2(actions_cont);
  if (!actions_disc.empty())
    for (std::size_t i : idx) out.actions_disc.push_back(actions_disc[i]);
  out.rewards = sel1(rewards);
  out.dones = sel1(dones);
  out.behaviour_log_probs = sel1(behaviour_log_probs);
  out.values = sel1(values);
  out.advantages = sel1(advantages);
  out.value_targets = sel1(value_targets);
  return out;
}

}  // namespace stellaris::rl
