#include "rl/vtrace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace stellaris::rl {
namespace {

TEST(Vtrace, OnPolicyEqualsLambdaOneGae) {
  // With target == behaviour (ratios 1) and ρ̄ = c̄ = 1, vs_t is the
  // discounted Monte-Carlo return with bootstrap, i.e. λ=1 GAE targets.
  const std::size_t n = 4;
  Tensor logp({n});  // equal logps → ratio 1
  Tensor rewards({n}, {1, 2, 3, 4});
  Tensor dones({n});
  Tensor values({n}, {0.5f, 0.5f, 0.5f, 0.5f});
  const float boot = 2.0f;
  const double g = 0.9;
  auto vt = compute_vtrace(logp, logp, rewards, dones, values, boot, g);
  // vs_0 = r0 + γ r1 + γ² r2 + γ³ r3 + γ⁴ boot
  const double expected =
      1 + g * 2 + g * g * 3 + g * g * g * 4 + g * g * g * g * boot;
  EXPECT_NEAR(vt.vs[0], expected, 1e-5);
}

TEST(Vtrace, DoneBlocksPropagation) {
  Tensor logp({2});
  Tensor rewards({2}, {1.0f, 100.0f});
  Tensor dones({2}, {1.0f, 0.0f});
  Tensor values({2});
  auto vt = compute_vtrace(logp, logp, rewards, dones, values, 50.0f, 0.99);
  EXPECT_NEAR(vt.vs[0], 1.0, 1e-6);            // no leak from step 1
  EXPECT_NEAR(vt.pg_advantages[0], 1.0, 1e-6);
}

TEST(Vtrace, TruncatesLargeRatios) {
  // Behaviour logp much smaller than target → raw ratio huge, ρ̄ caps it.
  Tensor behaviour = Tensor::of({-10.0f});
  Tensor target = Tensor::of({0.0f});
  Tensor rewards = Tensor::of({1.0f});
  Tensor dones = Tensor::of({0.0f});
  Tensor values = Tensor::of({0.0f});
  auto vt =
      compute_vtrace(behaviour, target, rewards, dones, values, 0.0f, 0.99,
                     /*rho_bar=*/1.0, /*c_bar=*/1.0);
  // δ = ρ (r + γ·boot − V) = 1 · 1.
  EXPECT_NEAR(vt.vs[0], 1.0, 1e-5);
}

TEST(Vtrace, SmallRatiosShrinkCorrections) {
  // Target much less likely than behaviour → ρ ≈ 0, vs ≈ V.
  Tensor behaviour = Tensor::of({0.0f});
  Tensor target = Tensor::of({-10.0f});
  Tensor rewards = Tensor::of({5.0f});
  Tensor dones = Tensor::of({0.0f});
  Tensor values = Tensor::of({3.0f});
  auto vt = compute_vtrace(behaviour, target, rewards, dones, values, 0.0f,
                           0.99);
  EXPECT_NEAR(vt.vs[0], 3.0, 1e-3);
  EXPECT_NEAR(vt.pg_advantages[0], 0.0, 1e-3);
}

TEST(Vtrace, SizeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(compute_vtrace(a, b, a, a, a, 0.0f, 0.99), Error);
}

// Property: for arbitrary inputs, outputs are finite and pg advantages are
// bounded by ρ̄ · |r + γ·vs' − V|.
class VtraceSweep : public ::testing::TestWithParam<double> {};

TEST_P(VtraceSweep, OutputsFinite) {
  Rng rng(11);
  const std::size_t n = 32;
  Tensor behaviour = Tensor::randn({n}, rng);
  Tensor target = Tensor::randn({n}, rng);
  Tensor rewards = Tensor::randn({n}, rng, 3.0f);
  Tensor dones({n});
  for (std::size_t i = 0; i < n; ++i)
    dones[i] = rng.bernoulli(0.15) ? 1.0f : 0.0f;
  Tensor values = Tensor::randn({n}, rng);
  auto vt = compute_vtrace(behaviour, target, rewards, dones, values, 0.3f,
                           GetParam());
  EXPECT_TRUE(vt.vs.all_finite());
  EXPECT_TRUE(vt.pg_advantages.all_finite());
}

INSTANTIATE_TEST_SUITE_P(Gammas, VtraceSweep,
                         ::testing::Values(0.9, 0.99, 0.999));

}  // namespace
}  // namespace stellaris::rl
