// GPU data loader (§V-B): a lightweight daemon that decouples trajectory
// loading from learner execution, the way serverless pre-warming decouples
// code loading from invocation.
//
// The loader watches trajectory arrivals, batches them, and starts the
// cache→GPU transfer immediately — so by the time a learner function
// acquires a slot, its batch is usually already resident and the learner
// receives a *pointer*, not a payload. In virtual time this means a
// learner's effective input-transfer cost is max(0, transfer_done − start)
// instead of the full transfer.
//
// Tracked statistics (hit = batch resident before learner start) feed the
// Fig. 14 latency breakdown.
#pragma once

#include <cstdint>
#include <map>

#include "serverless/latency_model.hpp"

namespace stellaris::serverless {

class GpuDataLoader {
 public:
  GpuDataLoader(const LatencyModel& latency, std::uint64_t seed);

  /// A trajectory batch of `bytes` arrived in the cache at virtual `now`;
  /// the loader begins its transfer at once. Returns the id under which the
  /// batch is tracked.
  std::uint64_t on_trajectory(double now, std::size_t bytes);

  /// A learner is ready to consume batch `id` at `now`. Returns the
  /// residual wait (0 if the pre-load already finished) and retires the
  /// batch.
  double learner_wait_s(std::uint64_t id, double now);

  /// Batches currently in flight or resident but unclaimed.
  std::size_t outstanding() const { return in_flight_.size(); }

  std::uint64_t preload_hits() const { return hits_; }
  std::uint64_t preload_misses() const { return misses_; }
  /// Total transfer seconds the loader overlapped with other work.
  double overlapped_s() const { return overlapped_s_; }

 private:
  struct Transfer {
    double start = 0.0;
    double ready = 0.0;
  };

  LatencyModel latency_;
  Rng rng_;
  std::map<std::uint64_t, Transfer> in_flight_;
  std::uint64_t next_id_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  double overlapped_s_ = 0.0;
};

}  // namespace stellaris::serverless
