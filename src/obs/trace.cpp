#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace stellaris::obs {

namespace {

/// JSON string escaping (control characters, quotes, backslashes).
std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

constexpr double kMicros = 1e6;

}  // namespace

TraceArg::TraceArg(std::string k, const char* v)
    : key(std::move(k)), json(json_quote(v ? v : "")) {}

TraceArg::TraceArg(std::string k, const std::string& v)
    : key(std::move(k)), json(json_quote(v)) {}

TraceArg::TraceArg(std::string k, bool v)
    : key(std::move(k)), json(v ? "true" : "false") {}

std::string TraceArg::render_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

TraceRecorder::TraceRecorder() { events_.reserve(1024); }

TrackId TraceRecorder::track(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tracks_.find(name);
  if (it != tracks_.end()) return it->second;
  const TrackId tid = static_cast<TrackId>(tracks_.size() + 1);
  tracks_.emplace(name, tid);
  Event meta;
  meta.ph = 'M';
  meta.tid = tid;
  meta.name = "thread_name";
  meta.args.emplace_back("name", name);
  events_.push_back(std::move(meta));
  return tid;
}

void TraceRecorder::push(Event ev) {
  MutexLock lock(mu_);
  events_.push_back(std::move(ev));
}

void TraceRecorder::complete(TrackId tid, const std::string& name,
                             const char* category, double t0_s, double t1_s,
                             TraceArgs args) {
  Event ev;
  ev.ph = 'X';
  ev.tid = tid;
  ev.ts_us = t0_s * kMicros;
  ev.dur_us = (t1_s - t0_s) * kMicros;
  ev.name = name;
  ev.cat = category;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceRecorder::instant(TrackId tid, const std::string& name,
                            const char* category, double t_s, TraceArgs args) {
  Event ev;
  ev.ph = 'i';
  ev.tid = tid;
  ev.ts_us = t_s * kMicros;
  ev.name = name;
  ev.cat = category;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceRecorder::counter(const std::string& name, double t_s,
                            double value) {
  Event ev;
  ev.ph = 'C';
  ev.ts_us = t_s * kMicros;
  ev.name = name;
  ev.args.emplace_back("value", value);
  push(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

void TraceRecorder::write_json(std::ostream& os) const {
  MutexLock lock(mu_);
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"stellaris\"}}";
  for (const auto& ev : events_) {
    os << ",\n{\"name\":" << json_quote(ev.name) << ",\"ph\":\"" << ev.ph
       << "\",\"pid\":1,\"tid\":" << ev.tid;
    if (ev.cat) os << ",\"cat\":" << json_quote(ev.cat);
    if (ev.ph != 'M') os << ",\"ts\":" << TraceArg::render_double(ev.ts_us);
    if (ev.ph == 'X')
      os << ",\"dur\":" << TraceArg::render_double(ev.dur_us);
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i) os << ',';
        os << json_quote(ev.args[i].key) << ':' << ev.args[i].json;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace stellaris::obs
