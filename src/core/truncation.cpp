#include "core/truncation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace stellaris::core {

double global_truncated_ratio(const std::vector<double>& learner_ratios,
                              double rho) {
  STELLARIS_CHECK_MSG(!learner_ratios.empty(),
                      "truncation over empty learner group");
  STELLARIS_CHECK_MSG(rho > 0.0, "rho must be positive");
  double min_ratio = std::numeric_limits<double>::infinity();
  for (double r : learner_ratios) min_ratio = std::min(min_ratio, r);
  return std::min(std::abs(min_ratio), rho);
}

std::vector<double> truncation_scales(
    const std::vector<double>& learner_ratios, double rho) {
  const double r_prime = global_truncated_ratio(learner_ratios, rho);
  std::vector<double> scales;
  scales.reserve(learner_ratios.size());
  for (double r : learner_ratios) {
    const double denom = std::max(std::abs(r), 1e-9);
    scales.push_back(std::min(1.0, r_prime / denom));
  }
  return scales;
}

}  // namespace stellaris::core
