// Training-run telemetry: everything the benchmark harness needs to draw
// the paper's figures — per-round reward curves with virtual timestamps
// and cost (Figs. 2, 6, 7, 9, 10, 12), staleness samples (Fig. 3(b)),
// per-update KL (Fig. 3(c)), cost splits (Fig. 8), GPU utilization
// (Fig. 3(a)), and the one-round latency breakdown (Fig. 14).
#pragma once

#include <cstdint>
#include <vector>

namespace stellaris::core {

/// One policy-update round.
struct RoundRecord {
  std::size_t round = 0;
  double time_s = 0.0;           ///< virtual wall-clock at update
  double reward = 0.0;           ///< evaluated episodic reward (NaN if skipped)
  bool evaluated = false;
  double mean_staleness = 0.0;
  double staleness_threshold = 0.0;  ///< β_k in force for this round
  std::size_t group_size = 0;        ///< gradients aggregated
  double mean_lr_factor = 1.0;
  double mean_trunc_scale = 1.0;
  double kl = 0.0;               ///< probe KL of this policy update
  double learner_kl = 0.0;       ///< mean sample KL reported by learners
  double learner_ratio = 1.0;    ///< mean importance ratio at learners
  double value_loss = 0.0;       ///< mean critic loss at learners
  double entropy = 0.0;          ///< mean policy entropy at learners
  double cost_so_far_usd = 0.0;
  std::size_t learner_invocations = 0;
};

/// Virtual-time components of a training run (sums over all rounds);
/// the stacked bars of Fig. 14.
struct LatencyBreakdown {
  double actor_sample_s = 0.0;
  double data_load_s = 0.0;      ///< trajectory/policy transfers
  double learner_start_s = 0.0;  ///< container start latencies
  double learner_compute_s = 0.0;
  double grad_submit_s = 0.0;    ///< gradient transfers to the cache
  double aggregate_s = 0.0;      ///< parameter-function compute
  double broadcast_s = 0.0;      ///< policy publish transfers

  double total() const {
    return actor_sample_s + data_load_s + learner_start_s +
           learner_compute_s + grad_submit_s + aggregate_s + broadcast_s;
  }
  /// Orchestration overhead = everything that is not actor sampling or
  /// learner compute (the paper reports < 5%).
  double overhead_fraction() const;
};

/// Fault-plane outcome of a run (all zero when no faults are configured).
struct FaultStats {
  std::uint64_t crashes = 0;            ///< container crashes injected
  std::uint64_t vm_reclaims = 0;        ///< spot-style host reclamations
  std::uint64_t stragglers = 0;         ///< slowdown faults injected
  std::uint64_t cache_faults = 0;       ///< cache op failures injected
  std::uint64_t cache_delays = 0;       ///< slow (but successful) cache ops
  std::uint64_t failed_invocations = 0; ///< invocations that did not finish ok
  std::uint64_t retries = 0;            ///< re-invocations after failure
  std::uint64_t giveups = 0;            ///< retry chains that exhausted policy
  std::uint64_t checkpoints = 0;        ///< parameter-state snapshots written
  std::uint64_t restores = 0;           ///< recoveries from a checkpoint
  double wasted_cost_usd = 0.0;         ///< $ billed for failed work
  double wasted_seconds = 0.0;          ///< billed seconds of failed work
  double retry_wait_s = 0.0;            ///< virtual time spent in backoff
};

struct TrainResult {
  std::vector<RoundRecord> rounds;
  std::vector<double> staleness_samples;  ///< per-gradient (Fig. 3(b))
  std::vector<double> update_kls;         ///< KL(θ_c, θ_{c+1}) (Fig. 3(c))

  double total_time_s = 0.0;
  double total_cost_usd = 0.0;
  double learner_cost_usd = 0.0;
  double actor_cost_usd = 0.0;
  double parameter_cost_usd = 0.0;
  double final_reward = 0.0;   ///< mean of evaluated rewards in last 20%
  double best_reward = 0.0;
  double gpu_utilization = 0.0;
  double learner_busy_s = 0.0;  ///< billable learner-function seconds
  std::uint64_t cold_starts = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t learner_invocations = 0;
  double delta_max = 0.0;  ///< calibrated round-0 max staleness
  LatencyBreakdown breakdown;
  FaultStats faults;
};

}  // namespace stellaris::core
