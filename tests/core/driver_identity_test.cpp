// Cross-driver bit-identity gate (DESIGN.md §14).
//
// The execution driver decides WHERE invocation bodies compute; the event
// engine alone decides WHEN their outputs merge. By construction, then, a
// run's results, causal ledger, time series, and simulation metrics must be
// byte-identical under --driver=virtual and --driver=concurrent — at any
// thread count. This test enforces the contract on a small fig06-style
// config, clean and under fault injection, for the async trainer and the
// sync baseline.
//
// Excluded from the metric comparison (and ONLY these): real-time debug
// metrics (`_real_` in the name) and execution-substrate diagnostics
// (`kernel.*`, `tensor.*`) — allocation warm-up and parallel-dispatch
// counts depend on worker-context pool sizing and the kernel thread clamp,
// not on anything results are derived from.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/sync_trainer.hpp"
#include "core/stellaris_trainer.hpp"
#include "obs/obs.hpp"

namespace stellaris::core {
namespace {

TrainConfig small_config() {
  TrainConfig cfg;
  cfg.env_name = "Hopper";
  cfg.rounds = 6;
  cfg.num_actors = 4;
  cfg.horizon = 32;
  cfg.trajs_per_learner = 2;
  cfg.network_width = 8;
  cfg.eval_episodes = 1;
  cfg.seed = 7;
  return cfg;
}

TrainConfig faulty_config() {
  auto cfg = small_config();
  cfg.faults.config.crash_prob = 0.15;
  cfg.faults.config.straggler_prob = 0.1;
  cfg.faults.config.straggler_mult = 3.0;
  // A scripted reclaim kills in-flight invocations mid-run: their bodies
  // are abandoned, and abandoning must not perturb anything observable.
  cfg.faults.schedule.push_back({0.2, fault::FaultKind::kVmReclaim, -1, 0.0});
  return cfg;
}

/// Everything one run observably produces, captured for comparison.
struct Capture {
  TrainResult result;
  std::vector<std::string> ledger;
  std::string timeseries_json;
  std::vector<std::string> metrics_csv;  ///< filtered rows
};

std::vector<std::string> filtered_metrics() {
  std::ostringstream os;
  obs::metrics().write_csv(os);
  std::vector<std::string> rows;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("_real_") != std::string::npos) continue;
    if (line.find(",kernel.") != std::string::npos) continue;
    if (line.find(",tensor.") != std::string::npos) continue;
    rows.push_back(line);
  }
  return rows;
}

template <typename RunFn>
Capture run_captured(RunFn run) {
  Capture cap;
  obs::metrics().reset();
  obs::LedgerRecorder led;
  obs::TimeSeriesRecorder ts(1.0);
  obs::install_ledger(&led);
  obs::install_timeseries(&ts);
  cap.result = run();
  obs::install_ledger(nullptr);
  obs::install_timeseries(nullptr);
  cap.ledger = led.lines();
  std::ostringstream os;
  ts.write_json(os);
  cap.timeseries_json = os.str();
  cap.metrics_csv = filtered_metrics();
  return cap;
}

Capture run_async(TrainConfig cfg, sim::DriverKind kind,
                  std::size_t threads) {
  cfg.driver = kind;
  cfg.driver_threads = threads;
  return run_captured([&] { return run_training(cfg); });
}

Capture run_sync(TrainConfig base, sim::DriverKind kind,
                 std::size_t threads) {
  base.driver = kind;
  base.driver_threads = threads;
  baselines::SyncConfig cfg;
  cfg.base = base;
  cfg.variant = baselines::SyncVariant::kVanillaPpo;
  cfg.num_learners = 2;
  return run_captured([&] { return baselines::run_sync_training(cfg); });
}

void expect_bits(double a, double b, const std::string& what) {
  // Bit-identity: exact equality, no tolerance.
  EXPECT_EQ(a, b) << what;
}

void expect_identical_results(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    const auto& ra = a.rounds[i];
    const auto& rb = b.rounds[i];
    const std::string p = "round " + std::to_string(i) + ": ";
    EXPECT_EQ(ra.round, rb.round) << p;
    expect_bits(ra.time_s, rb.time_s, p + "time_s");
    EXPECT_EQ(ra.evaluated, rb.evaluated) << p;
    if (ra.evaluated) expect_bits(ra.reward, rb.reward, p + "reward");
    expect_bits(ra.mean_staleness, rb.mean_staleness, p + "mean_staleness");
    EXPECT_EQ(ra.group_size, rb.group_size) << p;
    expect_bits(ra.kl, rb.kl, p + "kl");
    expect_bits(ra.learner_kl, rb.learner_kl, p + "learner_kl");
    expect_bits(ra.value_loss, rb.value_loss, p + "value_loss");
    expect_bits(ra.entropy, rb.entropy, p + "entropy");
    expect_bits(ra.cost_so_far_usd, rb.cost_so_far_usd, p + "cost");
    EXPECT_EQ(ra.learner_invocations, rb.learner_invocations) << p;
  }
  EXPECT_EQ(a.staleness_samples, b.staleness_samples);
  EXPECT_EQ(a.update_kls, b.update_kls);
  expect_bits(a.total_time_s, b.total_time_s, "total_time_s");
  expect_bits(a.total_cost_usd, b.total_cost_usd, "total_cost_usd");
  expect_bits(a.learner_cost_usd, b.learner_cost_usd, "learner_cost_usd");
  expect_bits(a.actor_cost_usd, b.actor_cost_usd, "actor_cost_usd");
  expect_bits(a.final_reward, b.final_reward, "final_reward");
  expect_bits(a.best_reward, b.best_reward, "best_reward");
  expect_bits(a.gpu_utilization, b.gpu_utilization, "gpu_utilization");
  expect_bits(a.learner_busy_s, b.learner_busy_s, "learner_busy_s");
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_EQ(a.warm_starts, b.warm_starts);
  EXPECT_EQ(a.learner_invocations, b.learner_invocations);
  expect_bits(a.delta_max, b.delta_max, "delta_max");
  expect_bits(a.breakdown.total(), b.breakdown.total(), "breakdown total");
  EXPECT_EQ(a.faults.crashes, b.faults.crashes);
  EXPECT_EQ(a.faults.vm_reclaims, b.faults.vm_reclaims);
  EXPECT_EQ(a.faults.stragglers, b.faults.stragglers);
  EXPECT_EQ(a.faults.failed_invocations, b.faults.failed_invocations);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.giveups, b.faults.giveups);
  EXPECT_EQ(a.faults.checkpoints, b.faults.checkpoints);
  EXPECT_EQ(a.faults.restores, b.faults.restores);
  expect_bits(a.faults.wasted_cost_usd, b.faults.wasted_cost_usd,
              "wasted_cost_usd");
  expect_bits(a.faults.retry_wait_s, b.faults.retry_wait_s, "retry_wait_s");
}

/// Ledger events carry the process-global run id (obs::begin_run() counts
/// every run in this test binary), which legitimately differs between the
/// two runs under comparison. Mask that one field; everything else —
/// every timestamp, cost, id, and staleness value — must match exactly.
std::string mask_run_id(std::string line) {
  const std::string key = "\"run\":";
  const auto pos = line.find(key);
  if (pos == std::string::npos) return line;
  auto end = pos + key.size();
  while (end < line.size() && std::isdigit(static_cast<unsigned char>(
                                  line[end])))
    ++end;
  return line.replace(pos + key.size(), end - pos - key.size(), "N");
}

void expect_identical_ledgers(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  ASSERT_EQ(a.size(), b.size()) << "ledger event counts differ";
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(mask_run_id(a[i]), mask_run_id(b[i])) << "ledger line " << i;
}

void expect_identical_captures(const Capture& a, const Capture& b) {
  expect_identical_results(a.result, b.result);
  expect_identical_ledgers(a.ledger, b.ledger);
  EXPECT_EQ(a.timeseries_json, b.timeseries_json) << "time series diverged";
  ASSERT_EQ(a.metrics_csv.size(), b.metrics_csv.size())
      << "metric row counts differ";
  for (std::size_t i = 0; i < a.metrics_csv.size(); ++i)
    EXPECT_EQ(a.metrics_csv[i], b.metrics_csv[i]) << "metric row " << i;
}

TEST(DriverIdentity, CleanRunIsBitIdenticalAcrossDrivers) {
  const auto cfg = small_config();
  const auto virt = run_async(cfg, sim::DriverKind::kVirtual, 0);
  const auto conc = run_async(cfg, sim::DriverKind::kConcurrent, 4);
  expect_identical_captures(virt, conc);
  // And across thread counts of the concurrent driver itself.
  const auto conc1 = run_async(cfg, sim::DriverKind::kConcurrent, 1);
  expect_identical_captures(virt, conc1);
}

TEST(DriverIdentity, FaultyRunIsBitIdenticalAcrossDrivers) {
  const auto cfg = faulty_config();
  const auto virt = run_async(cfg, sim::DriverKind::kVirtual, 0);
  const auto conc = run_async(cfg, sim::DriverKind::kConcurrent, 4);
  // The fault plan must actually have fired for this to gate anything.
  EXPECT_GT(virt.result.faults.failed_invocations, 0u);
  expect_identical_captures(virt, conc);
}

TEST(DriverIdentity, VectorizedActorsAreBitIdenticalAcrossDrivers) {
  // envs_per_actor > 1: K-interleaved batches, per-env auto-reset seeds from
  // the invocation stream — the capture/body/merge contract must hold for
  // the vectorized rollout path too (DESIGN.md §17).
  auto cfg = small_config();
  cfg.envs_per_actor = 4;
  const auto virt = run_async(cfg, sim::DriverKind::kVirtual, 0);
  const auto conc = run_async(cfg, sim::DriverKind::kConcurrent, 4);
  expect_identical_captures(virt, conc);
  const auto conc2 = run_async(cfg, sim::DriverKind::kConcurrent, 2);
  expect_identical_captures(virt, conc2);
}

TEST(DriverIdentity, FaultyVectorizedActorsAreBitIdenticalAcrossDrivers) {
  // Retried invocations re-draw the whole K-env batch from the attempt's
  // keyed stream; abandoning a half-stepped batch must not leak state.
  auto cfg = faulty_config();
  cfg.envs_per_actor = 2;
  const auto virt = run_async(cfg, sim::DriverKind::kVirtual, 0);
  const auto conc = run_async(cfg, sim::DriverKind::kConcurrent, 4);
  EXPECT_GT(virt.result.faults.failed_invocations, 0u);
  expect_identical_captures(virt, conc);
}

TEST(DriverIdentity, SyncBaselineIsBitIdenticalAcrossDrivers) {
  const auto cfg = small_config();
  const auto virt = run_sync(cfg, sim::DriverKind::kVirtual, 0);
  const auto conc = run_sync(cfg, sim::DriverKind::kConcurrent, 4);
  expect_identical_captures(virt, conc);
}

TEST(DriverIdentity, FaultySyncBaselineIsBitIdenticalAcrossDrivers) {
  auto cfg = faulty_config();
  // The sync baseline replays faults analytically; the scripted reclaim
  // only applies to the platform path, probabilistic faults suffice here.
  cfg.faults.schedule.clear();
  const auto virt = run_sync(cfg, sim::DriverKind::kVirtual, 0);
  const auto conc = run_sync(cfg, sim::DriverKind::kConcurrent, 4);
  expect_identical_captures(virt, conc);
}

}  // namespace
}  // namespace stellaris::core
