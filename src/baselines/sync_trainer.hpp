// Synchronous baseline trainers — the systems the paper compares against.
//
// One round-loop engine covers four architecture/billing variants
// (Fig. 1(a)–(c)):
//
//   kVanillaPpo   serverful sync actors + sync data-parallel learners
//                 (also runs IMPACT — the paper's "vanilla IMPACT")
//   kRllibLike    Ray RLlib's learner-group architecture: identical sync
//                 structure, serverful billing of the whole VM cluster
//   kMinionsLike  MinionsRL: serverless actors (per-invocation billing,
//                 dynamic scaling) + ONE centralized learner
//   kParRl        PAR-RL: MPI-style synchronous allreduce across the HPC
//                 cluster, serverful billing of all nodes
//
// Every variant runs the same local learner update (core::
// compute_learner_update) as Stellaris' learner functions, so the reward
// and cost differences isolate the architecture: barrier synchronization,
// learner parallelism, and billing model. Virtual time per round is
// max(actor wave) + shard learner time + allreduce, with the same jittered
// latency model Stellaris uses.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "core/metrics.hpp"

namespace stellaris::baselines {

enum class SyncVariant { kVanillaPpo, kRllibLike, kMinionsLike, kParRl };

const char* sync_variant_name(SyncVariant v);

struct SyncConfig {
  core::TrainConfig base;         ///< env / algorithm / scale / latency
  SyncVariant variant = SyncVariant::kVanillaPpo;
  std::size_t num_learners = 4;   ///< data-parallel learners (1 forced for
                                  ///< kMinionsLike's central learner)
};

/// Run a synchronous baseline training; returns the same telemetry schema
/// as StellarisTrainer so benches can overlay the curves.
core::TrainResult run_sync_training(const SyncConfig& cfg);

}  // namespace stellaris::baselines
