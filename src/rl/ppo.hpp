// Proximal Policy Optimization with the clipped surrogate objective
// (Schulman et al., 2017) and KL penalty, configured per the paper's
// Table III. This is the gradient producer that both the serverful
// baselines and Stellaris' learner functions call.
#pragma once

#include <limits>

#include "nn/actor_critic.hpp"
#include "rl/sample_batch.hpp"

namespace stellaris::rl {

/// Table III, PPO column (learning rate etc. are overridable per bench).
struct PpoConfig {
  double lr = 5e-5;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_param = 0.3;
  double kl_coeff = 0.2;
  double kl_target = 0.01;
  double entropy_coeff = 0.0;
  double vf_coeff = 1.0;
  double max_grad_norm = 10.0;
  std::size_t sgd_iters = 1;  ///< SGD epochs per trajectory batch
  /// Damping on the shared log-std gradient. With small batches the σ
  /// gradient is noise-dominated and adaptive optimizers turn that noise
  /// into full-size steps; damping keeps mean-learning in charge of
  /// progress while σ adapts slowly (common practice in production PPO).
  double log_std_grad_scale = 0.25;
};

/// Diagnostics from one gradient computation.
struct LossStats {
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double kl = 0.0;          ///< sample KL estimate KL(μ ‖ π), k3 estimator
  double mean_ratio = 0.0;  ///< mean importance ratio π/μ over the batch
  double max_ratio = 0.0;
  double min_ratio = 0.0;
  double clip_fraction = 0.0;  ///< fraction of samples hitting the PPO clip
};

/// Accumulate PPO gradients for `batch` into `model` (gradients are NOT
/// zeroed first — callers zero_grad() when starting a fresh computation).
///
/// `ratio_cap` is Stellaris' importance-sampling truncation ρ (Eq. 2)
/// applied per sample: ratios above the cap contribute the capped constant
/// to the surrogate and no gradient. Pass +inf for vanilla PPO behaviour.
/// The batch must have advantages computed (compute_gae).
LossStats ppo_compute_gradients(
    nn::ActorCritic& model, const SampleBatch& batch, const PpoConfig& cfg,
    double ratio_cap = std::numeric_limits<double>::infinity());

/// RLlib-style adaptive KL coefficient update: doubles the penalty when the
/// measured KL overshoots 2× target, halves it when under half the target.
double adapt_kl_coeff(double kl_coeff, double measured_kl, double kl_target);

}  // namespace stellaris::rl
