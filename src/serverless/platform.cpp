#include "serverless/platform.hpp"

#include "util/error.hpp"

namespace stellaris::serverless {

ServerlessPlatform::ServerlessPlatform(sim::Engine& engine,
                                       ClusterSpec cluster,
                                       LatencyModel latency,
                                       std::uint64_t seed)
    : engine_(engine),
      cluster_(std::move(cluster)),
      latency_(latency),
      rng_(seed),
      gpu_pool_(cluster_.learner_slots(), latency_, seed ^ 0x6b75ULL),
      actor_pool_(std::max<std::size_t>(cluster_.actor_slots(), 1), latency_,
                  seed ^ 0xac70ULL) {}

ContainerPool& ServerlessPlatform::pool_for(FnKind kind) {
  return kind == FnKind::kActor ? actor_pool_ : gpu_pool_;
}

std::deque<ServerlessPlatform::Pending>& ServerlessPlatform::queue_for(
    FnKind kind) {
  return kind == FnKind::kActor ? actor_queue_ : gpu_queue_;
}

double ServerlessPlatform::unit_price(FnKind kind) const {
  // Parameter functions run on the GPU VMs at learner pricing.
  return kind == FnKind::kActor ? cluster_.actor_unit_price()
                                : cluster_.learner_unit_price();
}

void ServerlessPlatform::invoke(const InvokeOptions& options, Callback cb) {
  queue_for(options.kind).push_back(
      Pending{options, std::move(cb), engine_.now()});
  try_dispatch(options.kind);
}

void ServerlessPlatform::try_dispatch(FnKind kind) {
  auto& queue = queue_for(kind);
  auto& pool = pool_for(kind);
  while (!queue.empty() && pool.busy() < pool.capacity()) {
    Pending p = std::move(queue.front());
    queue.pop_front();
    dispatch(std::move(p));
  }
}

void ServerlessPlatform::dispatch(Pending pending) {
  const FnKind kind = pending.options.kind;
  auto& pool = pool_for(kind);
  auto acq = pool.acquire(engine_.now());
  STELLARIS_CHECK(acq.has_value());  // try_dispatch checked capacity

  InvokeResult result;
  result.submit_time_s = pending.submit_time;
  result.start_time_s = engine_.now();
  result.cold = acq->cold;
  result.start_latency_s = acq->start_latency_s;
  if (pending.options.on_start) pending.options.on_start(result.start_time_s);

  const double transfer_in = latency_.transfer_s(
      pending.options.tier, pending.options.payload_in_bytes);
  const double transfer_out = latency_.transfer_s(
      pending.options.tier, pending.options.payload_out_bytes);
  result.transfer_s = transfer_in + transfer_out;
  result.compute_s = latency_.jittered(pending.options.compute_s, rng_);

  const double duration = latency_.invoke_overhead_s +
                          result.start_latency_s + result.transfer_s +
                          result.compute_s;
  result.end_time_s = engine_.now() + duration;
  result.billed_s = duration;
  result.cost_usd = unit_price(kind) * result.billed_s;

  const std::size_t container = acq->container_id;
  auto cb = std::move(pending.cb);
  engine_.schedule_after(duration, [this, kind, container, result,
                                    cb = std::move(cb)] {
    costs_.record(kind, unit_price(kind), result.billed_s);
    if (kind != FnKind::kActor) learner_busy_s_ += result.billed_s;
    pool_for(kind).release(container, engine_.now());
    if (cb) cb(result);
    try_dispatch(kind);
  });
}

std::size_t ServerlessPlatform::prewarm_learners(std::size_t n) {
  return gpu_pool_.prewarm(n, engine_.now());
}

std::size_t ServerlessPlatform::prewarm_actors(std::size_t n) {
  return actor_pool_.prewarm(n, engine_.now());
}

double ServerlessPlatform::gpu_utilization() const {
  const double elapsed = engine_.now();
  if (elapsed <= 0.0) return 0.0;
  const double slot_seconds =
      static_cast<double>(gpu_pool_.capacity()) * elapsed;
  return learner_busy_s_ / slot_seconds;
}

std::size_t ServerlessPlatform::queued(FnKind kind) const {
  return kind == FnKind::kActor ? actor_queue_.size() : gpu_queue_.size();
}

}  // namespace stellaris::serverless
