#include "obs/timeseries.hpp"

#include <cassert>
#include <cmath>
#include <fstream>
#include <ostream>

#include "obs/ledger.hpp"

namespace stellaris::obs {

TimeSeriesRecorder::TimeSeriesRecorder(double window_s) : window_s_(window_s) {
  assert(window_s_ > 0.0);
}

std::int64_t TimeSeriesRecorder::window_index(double t_s) const {
  return static_cast<std::int64_t>(std::floor(t_s / window_s_));
}

void TimeSeriesRecorder::sample(std::string_view series, double t_s,
                                double value) {
  const std::int64_t idx = window_index(t_s);
  MutexLock lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end())
    it = series_.emplace(std::string(series),
                         std::map<std::int64_t, TimeSeriesWindow>{})
             .first;
  auto [wit, fresh] = it->second.try_emplace(idx);
  TimeSeriesWindow& w = wit->second;
  if (fresh) {
    w.index = idx;
    w.min = w.max = value;
  } else {
    if (value < w.min) w.min = value;
    if (value > w.max) w.max = value;
  }
  ++w.count;
  w.sum += value;
  w.last = value;
}

std::vector<std::string> TimeSeriesRecorder::series_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

std::vector<TimeSeriesWindow> TimeSeriesRecorder::windows(
    std::string_view series) const {
  MutexLock lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return {};
  std::vector<TimeSeriesWindow> out;
  out.reserve(it->second.size());
  for (const auto& [_, w] : it->second) out.push_back(w);
  return out;
}

std::vector<TimeSeriesExport> TimeSeriesRecorder::export_all() const {
  MutexLock lock(mu_);
  std::vector<TimeSeriesExport> out;
  out.reserve(series_.size());
  for (const auto& [name, windows] : series_) {
    TimeSeriesExport e;
    e.name = name;
    e.windows.reserve(windows.size());
    for (const auto& [_, w] : windows) e.windows.push_back(w);
    out.push_back(std::move(e));
  }
  return out;
}

void TimeSeriesRecorder::write_csv(std::ostream& os) const {
  os << "series,window,t_lo,t_hi,count,min,max,mean,last\n";
  for (const auto& e : export_all()) {
    for (const auto& w : e.windows) {
      const double lo = static_cast<double>(w.index) * window_s_;
      os << e.name << ',' << w.index << ','
         << LedgerEvent::render_number(lo) << ','
         << LedgerEvent::render_number(lo + window_s_) << ',' << w.count
         << ',' << LedgerEvent::render_number(w.min) << ','
         << LedgerEvent::render_number(w.max) << ','
         << LedgerEvent::render_number(w.mean()) << ','
         << LedgerEvent::render_number(w.last) << '\n';
    }
  }
}

void TimeSeriesRecorder::write_json(std::ostream& os) const {
  os << "{\"window_s\":" << LedgerEvent::render_number(window_s_)
     << ",\"series\":{";
  bool first_series = true;
  for (const auto& e : export_all()) {
    if (!first_series) os << ',';
    first_series = false;
    os << LedgerEvent::quote(e.name) << ":[";
    bool first_window = true;
    for (const auto& w : e.windows) {
      if (!first_window) os << ',';
      first_window = false;
      os << "{\"window\":" << w.index
         << ",\"t_lo\":"
         << LedgerEvent::render_number(static_cast<double>(w.index) *
                                       window_s_)
         << ",\"count\":" << w.count
         << ",\"min\":" << LedgerEvent::render_number(w.min)
         << ",\"max\":" << LedgerEvent::render_number(w.max)
         << ",\"mean\":" << LedgerEvent::render_number(w.mean())
         << ",\"last\":" << LedgerEvent::render_number(w.last) << '}';
    }
    os << ']';
  }
  os << "}}\n";
}

bool TimeSeriesRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json)
    write_json(out);
  else
    write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace stellaris::obs
