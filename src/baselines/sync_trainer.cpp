#include "baselines/sync_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "core/kl_probe.hpp"
#include "core/learner_update.hpp"
#include "core/worker_context.hpp"
#include "fault/fault_injector.hpp"
#include "nn/optimizer.hpp"
#include "obs/obs.hpp"
#include "rl/actor.hpp"
#include "rl/vec_actor.hpp"
#include "sim/driver.hpp"
#include "tensor/kernel_config.hpp"
#include "util/error.hpp"

namespace stellaris::baselines {

const char* sync_variant_name(SyncVariant v) {
  switch (v) {
    case SyncVariant::kVanillaPpo: return "vanilla";
    case SyncVariant::kRllibLike: return "rllib-like";
    case SyncVariant::kMinionsLike: return "minionsrl-like";
    case SyncVariant::kParRl: return "par-rl-like";
  }
  return "?";
}

namespace {

/// Sum of hourly prices of every VM in the cluster — serverful trainers pay
/// for the whole fleet for the whole wall-clock, idle or not (the paper's
/// core cost argument, §II-A).
double cluster_hourly_price(const serverless::ClusterSpec& cluster) {
  double total = 0.0;
  for (const auto& g : cluster.vms)
    total += g.type.hourly_price_usd * static_cast<double>(g.count);
  return total;
}

/// Hourly price of the GPU VMs only (MinionsRL's serverful central
/// learner).
double gpu_vm_hourly_price(const serverless::ClusterSpec& cluster) {
  double total = 0.0;
  for (const auto& g : cluster.vms)
    if (g.type.gpus > 0)
      total += g.type.hourly_price_usd * static_cast<double>(g.count);
  return total;
}

}  // namespace

core::TrainResult run_sync_training(const SyncConfig& sync_cfg) {
  const core::TrainConfig& cfg = sync_cfg.base;
  cfg.validate();
  const bool minions = sync_cfg.variant == SyncVariant::kMinionsLike;
  const std::size_t n_learners =
      minions ? 1 : std::max<std::size_t>(1, sync_cfg.num_learners);

  const envs::EnvSpec env_spec = envs::env_spec(cfg.env_name);
  const nn::NetworkSpec net_spec =
      env_spec.obs.image ? nn::NetworkSpec::atari()
                         : nn::NetworkSpec::mujoco(cfg.network_width);
  auto build_model = [&](std::uint64_t salt) {
    return std::make_unique<nn::ActorCritic>(env_spec.obs,
                                             env_spec.action_kind,
                                             env_spec.act_dim, net_spec,
                                             cfg.seed ^ salt);
  };
  auto canonical = build_model(0x11);
  auto probe_model = build_model(0x55);
  std::vector<float> params = canonical->flat_params();
  std::vector<float> target_params = params;
  std::size_t updates_since_target = 0;

  std::vector<std::unique_ptr<rl::VecActor>> actors;
  for (std::size_t i = 0; i < cfg.num_actors; ++i)
    actors.push_back(std::make_unique<rl::VecActor>(
        std::make_unique<envs::VecEnv>(cfg.env_name, cfg.envs_per_actor,
                                       cfg.seed * 7919 + i),
        cfg.seed * 7919 + i));
  auto eval_env = envs::make_env(cfg.env_name);
  Rng rng(cfg.seed ^ 0x517cULL);

  // Execution driver (DESIGN.md §14): barrier phases fan their per-worker
  // numerics out as driver bodies. Results are identical at any thread
  // count because bodies are joined in worker order BEFORE any phase-level
  // RNG draw, so every stream sees the serial draw sequence.
  auto driver = sim::make_driver(cfg.driver,
                                 sim::resolve_driver_threads(cfg.driver_threads));
  if (driver->worker_threads() > 0)
    ops::apply_driver_thread_budget(driver->worker_threads());
  core::WorkerContextPool ctx_pool(env_spec, net_spec, cfg.seed ^ 0x66ULL);

  // Fault model for the barrier baselines: no event loop here, so the same
  // probabilistic failure environment is replayed analytically. Every
  // worker's duration runs through a retry chain (fault::simulate_retries,
  // identical draw order to the platform's injector); a worker that
  // exhausts its retries is re-run from scratch because a BARRIER cannot
  // proceed without it — failures stall the whole round, the paper's core
  // argument for asynchronous serverless training. The fault RNG is a
  // dedicated stream: a zero-fault plan draws nothing and changes nothing.
  const bool faults_on = cfg.faults.any();
  Rng fault_rng(cfg.faults.config.seed);
  core::FaultStats fstats;
  auto faulted_duration = [&](double base) {
    if (!faults_on) return base;
    double total = 0.0;
    while (true) {
      const auto out = fault::simulate_retries(base, cfg.faults.config,
                                               cfg.retry, fault_rng);
      total += out.elapsed_s;
      fstats.retries += out.attempts > 0 ? out.attempts - 1 : 0;
      fstats.failed_invocations +=
          out.ok ? out.attempts - 1 : out.attempts;
      fstats.wasted_seconds += out.wasted_s;
      if (out.ok) return total;
      ++fstats.giveups;  // chain abandoned; the barrier re-runs the worker
    }
  };

  // Observability: sync baselines trace their barrier phases on three
  // tracks per run so the contrast with the async pipeline is visible in
  // the same Perfetto view.
  obs::begin_run();
  const std::string trace_tag = obs::run_tag();
  obs::Counter& m_rounds = obs::metrics().counter("sync.rounds");
  obs::Gauge& m_round_reward = obs::metrics().gauge("sync.round_reward");

  core::TrainResult result;
  double clock_s = 0.0;
  double serverless_actor_cost = 0.0;
  double wasted_actor_s = 0.0;
  const double fleet_price_per_s = cluster_hourly_price(cfg.cluster) / 3600.0;
  const double gpu_price_per_s = gpu_vm_hourly_price(cfg.cluster) / 3600.0;
  const std::size_t actor_slots =
      std::max<std::size_t>(1, cfg.cluster.actor_slots());

  Tensor probe_obs;
  for (std::size_t round = 1; round <= cfg.rounds; ++round) {
    // ---- actor phase (barrier): waves of parallel sampling -----------------
    // Each actor owns its env + RNG stream, so the bodies are independent;
    // joining in actor order keeps everything downstream serial-identical.
    std::vector<rl::SampleBatch> batches(cfg.num_actors);
    {
      std::vector<sim::Driver::Job> jobs;
      jobs.reserve(cfg.num_actors);
      for (std::size_t i = 0; i < cfg.num_actors; ++i)
        jobs.push_back(driver->submit([&, i] {
          auto ctx = ctx_pool.lease();
          ctx->model.set_flat_params(params);
          batches[i] = actors[i]->sample(ctx->model, ctx->vec_scratch,
                                         cfg.horizon, round);
        }));
      for (const auto& job : jobs) sim::Driver::join(job);
    }
    const std::size_t waves =
        (cfg.num_actors + actor_slots - 1) / actor_slots;
    double actor_phase_s = 0.0;
    const double actor_wasted_before = fstats.wasted_seconds;
    for (std::size_t w = 0; w < waves; ++w) {
      double wave_max = 0.0;
      const std::size_t in_wave =
          std::min(actor_slots, cfg.num_actors - w * actor_slots);
      for (std::size_t i = 0; i < in_wave; ++i)
        wave_max = std::max(
            wave_max,
            faulted_duration(cfg.latency.jittered(
                cfg.latency.actor_sample_s(cfg.horizon * cfg.envs_per_actor,
                                           env_spec.obs.image),
                rng)));
      actor_phase_s += wave_max;
    }
    wasted_actor_s += fstats.wasted_seconds - actor_wasted_before;

    // ---- learner phase: shard batches across sync learners ------------------
    // Bodies fill per-learner slots; the duration draws (rng / fault_rng)
    // run strictly after ALL joins, in learner order — the exact draw
    // sequence of the serial loop.
    std::vector<core::LearnerUpdate> updates(n_learners);
    std::vector<std::size_t> shard_steps(n_learners, 0);
    {
      std::vector<sim::Driver::Job> jobs(n_learners);
      for (std::size_t l = 0; l < n_learners; ++l) {
        const bool has_work = l < batches.size();
        if (!has_work) continue;
        jobs[l] = driver->submit([&, l] {
          auto ctx = ctx_pool.lease();
          std::vector<rl::SampleBatch> shard;
          for (std::size_t i = l; i < batches.size(); i += n_learners)
            shard.push_back(batches[i]);
          rl::SampleBatch merged = shard.size() == 1
                                       ? std::move(shard.front())
                                       : rl::SampleBatch::concat(shard);
          shard_steps[l] = merged.size();
          if (cfg.algorithm == core::Algorithm::kImpact)
            ctx->target.set_flat_params(target_params);
          updates[l] = core::compute_learner_update(cfg, ctx->model,
                                                    ctx->target, params,
                                                    merged);
        });
      }
      for (const auto& job : jobs)
        if (job) sim::Driver::join(job);
    }
    std::vector<std::vector<float>> deltas;
    rl::LossStats last_stats;
    double learner_phase_s = 0.0;
    for (std::size_t l = 0; l < n_learners; ++l) {
      if (shard_steps[l] == 0) continue;
      last_stats = updates[l].stats;
      deltas.push_back(std::move(updates[l].delta));
      learner_phase_s = std::max(
          learner_phase_s,
          faulted_duration(cfg.latency.jittered(
              cfg.latency.learner_compute_s(
                  shard_steps[l], params.size(),
                  cfg.cluster.per_slot_tflops()) *
                  static_cast<double>(updates[l].epochs_run),
              rng)));
    }
    // Synchronous allreduce of the deltas.
    const double allreduce_s =
        cfg.latency.aggregate_s(deltas.size(), params.size());
    STELLARIS_CHECK_MSG(!deltas.empty(), "no learner produced an update");
    const std::vector<float> before = params;
    const double inv = 1.0 / static_cast<double>(deltas.size());
    for (const auto& d : deltas)
      for (std::size_t i = 0; i < params.size(); ++i)
        params[i] -= static_cast<float>(inv) * d[i];
    const auto [ls_off, ls_len] = canonical->log_std_span();
    for (std::size_t i = 0; i < ls_len; ++i)
      params[ls_off + i] = std::clamp(params[ls_off + i], -2.5f, 0.0f);

    if (cfg.algorithm == core::Algorithm::kImpact &&
        ++updates_since_target >= cfg.impact.target_update_freq) {
      target_params = params;
      updates_since_target = 0;
    }

    const double round_s = actor_phase_s + learner_phase_s + allreduce_s;
    if (auto* tr = obs::trace()) {
      const double t_actors = clock_s;
      const double t_learners = t_actors + actor_phase_s;
      const double t_allreduce = t_learners + learner_phase_s;
      tr->complete(tr->track(trace_tag + "/sync/actors"), "actor_wave",
                   "sync", t_actors, t_learners, {{"round", round}});
      tr->complete(tr->track(trace_tag + "/sync/learners"),
                   "learner_compute", "sync", t_learners, t_allreduce,
                   {{"round", round}, {"learners", deltas.size()}});
      tr->complete(tr->track(trace_tag + "/sync/allreduce"), "allreduce",
                   "sync", t_allreduce, clock_s + round_s, {{"round", round}});
    }
    clock_s += round_s;

    // Serverless actor billing for MinionsRL: busy seconds only.
    if (minions)
      serverless_actor_cost += cfg.cluster.actor_unit_price() *
                               actor_phase_s *
                               static_cast<double>(std::min(
                                   cfg.num_actors, actor_slots));

    // ---- telemetry -----------------------------------------------------------
    if (!batches.empty() && probe_obs.empty()) {
      const auto& src = batches.front().obs;
      const std::size_t rows = std::min<std::size_t>(src.dim(0), 32);
      std::vector<float> probe(src.vec().begin(),
                               src.vec().begin() +
                                   static_cast<std::ptrdiff_t>(
                                       rows * src.dim(1)));
      probe_obs = Tensor({rows, src.dim(1)}, std::move(probe));
    }
    double round_kl = 0.0;
    if (!probe_obs.empty())
      round_kl = core::policy_update_kl(*probe_model, before, params,
                                        probe_obs);
    result.update_kls.push_back(round_kl);

    core::RoundRecord rec;
    rec.round = round;
    rec.time_s = clock_s;
    rec.mean_staleness = 0.0;  // synchronous by construction
    rec.staleness_threshold = 0.0;
    rec.group_size = deltas.size();
    rec.kl = round_kl;
    rec.learner_kl = last_stats.kl;
    rec.learner_ratio = last_stats.mean_ratio;
    rec.value_loss = last_stats.value_loss;
    rec.entropy = last_stats.entropy;
    const double serverful_cost =
        minions ? gpu_price_per_s * clock_s + serverless_actor_cost
                : fleet_price_per_s * clock_s;
    rec.cost_so_far_usd = serverful_cost;
    rec.learner_invocations = round * n_learners;
    const bool last = round == cfg.rounds;
    if (last || round % cfg.eval_interval == 0) {
      canonical->set_flat_params(params);
      rec.reward = rl::evaluate_policy(*eval_env, *canonical,
                                       cfg.eval_episodes,
                                       cfg.seed * 104729 + round);
      rec.evaluated = true;
    }
    m_rounds.add();
    if (rec.evaluated) m_round_reward.set(rec.reward);
    result.rounds.push_back(rec);
  }

  // ---- finalize ---------------------------------------------------------------
  result.total_time_s = clock_s;
  if (minions) {
    result.actor_cost_usd = serverless_actor_cost;
    result.learner_cost_usd = gpu_price_per_s * clock_s;
  } else {
    // Split the serverful bill by GPU vs CPU VM shares for the Fig. 8 bars.
    result.learner_cost_usd = gpu_price_per_s * clock_s;
    result.actor_cost_usd =
        (fleet_price_per_s - gpu_price_per_s) * clock_s;
  }
  result.total_cost_usd = result.learner_cost_usd + result.actor_cost_usd;
  result.learner_invocations = cfg.rounds * n_learners;
  // Wasted cost: the serverful fleet bills by wall-clock whether work
  // succeeds or not, so its waste already shows up as inflated total time
  // and cost; only the MinionsRL variant's serverless actors bill per busy
  // second, so their failed seconds are separable.
  if (minions)
    fstats.wasted_cost_usd = cfg.cluster.actor_unit_price() * wasted_actor_s;
  result.faults = fstats;

  std::vector<double> evaluated;
  for (const auto& r : result.rounds)
    if (r.evaluated) evaluated.push_back(r.reward);
  if (!evaluated.empty()) {
    result.best_reward = *std::max_element(evaluated.begin(), evaluated.end());
    const std::size_t tail = std::max<std::size_t>(1, evaluated.size() / 5);
    double sum = 0.0;
    for (std::size_t i = evaluated.size() - tail; i < evaluated.size(); ++i)
      sum += evaluated[i];
    result.final_reward = sum / static_cast<double>(tail);
  }
  return result;
}

}  // namespace stellaris::baselines
