# Empty dependencies file for serverless_tests.
# This may be replaced when dependencies are built.
