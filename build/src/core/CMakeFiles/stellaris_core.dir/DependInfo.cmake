
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/stellaris_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/config.cpp.o.d"
  "/root/repo/src/core/gradient.cpp" "src/core/CMakeFiles/stellaris_core.dir/gradient.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/gradient.cpp.o.d"
  "/root/repo/src/core/kl_probe.cpp" "src/core/CMakeFiles/stellaris_core.dir/kl_probe.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/kl_probe.cpp.o.d"
  "/root/repo/src/core/learner_update.cpp" "src/core/CMakeFiles/stellaris_core.dir/learner_update.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/learner_update.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/stellaris_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/parameter_function.cpp" "src/core/CMakeFiles/stellaris_core.dir/parameter_function.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/parameter_function.cpp.o.d"
  "/root/repo/src/core/policy_io.cpp" "src/core/CMakeFiles/stellaris_core.dir/policy_io.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/policy_io.cpp.o.d"
  "/root/repo/src/core/staleness.cpp" "src/core/CMakeFiles/stellaris_core.dir/staleness.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/staleness.cpp.o.d"
  "/root/repo/src/core/stellaris_trainer.cpp" "src/core/CMakeFiles/stellaris_core.dir/stellaris_trainer.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/stellaris_trainer.cpp.o.d"
  "/root/repo/src/core/truncation.cpp" "src/core/CMakeFiles/stellaris_core.dir/truncation.cpp.o" "gcc" "src/core/CMakeFiles/stellaris_core.dir/truncation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/stellaris_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/envs/CMakeFiles/stellaris_envs.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stellaris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/stellaris_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellaris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/stellaris_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellaris_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stellaris_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
