#include "fault/retry_policy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::fault {
namespace {

TEST(RetryPolicy, AttemptAccounting) {
  RetryPolicy p;
  p.max_retries = 2;
  EXPECT_TRUE(p.attempt_allowed(0));   // first try
  EXPECT_TRUE(p.attempt_allowed(1));   // retry 1
  EXPECT_TRUE(p.attempt_allowed(2));   // retry 2
  EXPECT_FALSE(p.attempt_allowed(3));  // exhausted
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.base_backoff_s = 0.1;
  p.backoff_mult = 2.0;
  p.max_backoff_s = 0.35;
  p.jitter_frac = 0.0;  // deterministic
  Rng rng(1);
  EXPECT_DOUBLE_EQ(p.backoff_s(1, rng), 0.1);
  EXPECT_DOUBLE_EQ(p.backoff_s(2, rng), 0.2);
  EXPECT_DOUBLE_EQ(p.backoff_s(3, rng), 0.35);  // 0.4 capped
  EXPECT_DOUBLE_EQ(p.backoff_s(4, rng), 0.35);
}

TEST(RetryPolicy, JitterStaysBoundedAndIsDeterministic) {
  RetryPolicy p;
  p.base_backoff_s = 1.0;
  p.jitter_frac = 0.25;
  Rng a(7), b(7);
  for (std::size_t i = 1; i <= 8; ++i) {
    const double x = p.backoff_s(1, a);
    EXPECT_GE(x, 0.75);
    EXPECT_LE(x, 1.25);
    EXPECT_DOUBLE_EQ(x, p.backoff_s(1, b));  // same RNG state, same value
  }
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  RetryPolicy p;
  p.base_backoff_s = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RetryPolicy{};
  p.backoff_mult = 0.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RetryPolicy{};
  p.jitter_frac = 1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = RetryPolicy{};
  p.deadline_s = -2.0;
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_NO_THROW(RetryPolicy{}.validate());
}

}  // namespace
}  // namespace stellaris::fault
