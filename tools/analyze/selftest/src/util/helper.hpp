// Leaf util header — exists so other corpus layers have something legal
// to include.
#pragma once

namespace stellaris {
inline int helper_add(int a, int b) { return a + b; }
}  // namespace stellaris
