// Fig. 12 — scalability on the HPC cluster: PAR-RL (MPI-style synchronous
// allreduce training on 16 GPUs / 960 cores, serverful billing) vs
// Stellaris on the same cluster, for Hopper and Qbert.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  Table summary({"env", "parrl_final", "stellaris_final", "reward_gain",
                 "parrl_cost_usd", "stellaris_cost_usd", "cost_saving_pct"});
  for (const std::string env : {"Hopper", "Qbert"}) {
    const std::size_t rounds = bench::default_rounds(env);
    const std::size_t seeds = bench::default_seeds(env);
    auto cfg = bench::base_config(env, rounds, 1);
    cfg.cluster = serverless::ClusterSpec::hpc();
    // The HPC run scales out the actor fleet (paper: one actor per core; we
    // use a reduced fleet that still oversubscribes the learner slots).
    cfg.num_actors = envs::env_spec(env).obs.image ? 12 : 24;

    baselines::SyncConfig sync_cfg;
    sync_cfg.base = cfg;
    sync_cfg.variant = baselines::SyncVariant::kParRl;
    sync_cfg.num_learners = 8;
    auto parrl_runs = bench::run_sync_seeds(sync_cfg, seeds);
    auto stl_runs = bench::run_seeds(cfg, seeds);

    bench::emit_curve_comparison(
        "Fig. 12 — " + env + " (HPC): PAR-RL vs Stellaris", "parrl",
        parrl_runs, "stellaris", stl_runs, "fig12_" + env + ".csv");
    const auto sp = bench::summarize(parrl_runs);
    const auto ss = bench::summarize(stl_runs);
    summary.row()
        .add(env)
        .add(sp.final_reward, 1)
        .add(ss.final_reward, 1)
        .add(sp.final_reward != 0.0 ? ss.final_reward / sp.final_reward : 0.0,
             2)
        .add(sp.total_cost, 4)
        .add(ss.total_cost, 4)
        .add(sp.total_cost > 0.0
                 ? 100.0 * (1.0 - ss.total_cost / sp.total_cost)
                 : 0.0,
             1);
  }
  summary.emit(
      "Fig. 12 summary (paper: 2.4x / 1.1x reward, 19% / 34% cost savings)",
      "fig12_summary.csv");
  std::cout << "\nExpected shape: on the big HPC fleet, serverful PAR-RL's"
               " idle-resource bill dominates; Stellaris wins on both"
               " axes.\n";
  return 0;
}
