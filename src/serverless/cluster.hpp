// VM catalog and cluster specifications, matching the paper's testbeds
// (§VIII-A) and its US-East-2 hourly prices (footnote 2):
//   regular: 2× p3.2xlarge ($3.06, 1 V100) + 1× c6a.32xlarge ($4.896,
//            128 cores) → 2 GPUs, 128 actor cores
//   HPC:     2× p3.16xlarge ($24.48, 8 V100) + 5× hpc7a.96xlarge ($7.20,
//            192 cores) → 16 GPUs, 960 actor cores
// The paper caps learner functions at 4 per V100 and runs 1 actor per core;
// both are ClusterSpec fields so benches can sweep them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stellaris::serverless {

struct VmType {
  std::string name;
  double hourly_price_usd = 0.0;
  std::size_t gpus = 0;
  std::size_t vcpus = 0;
  double gpu_tflops = 0.0;  ///< per-GPU sustained fp32

  static VmType p3_2xlarge();
  static VmType c6a_32xlarge();
  static VmType c6a_8xlarge();
  static VmType p3_16xlarge();
  static VmType hpc7a_96xlarge();
};

struct ClusterSpec {
  struct Group {
    VmType type;
    std::size_t count = 1;
  };
  std::vector<Group> vms;
  std::size_t learner_slots_per_gpu = 4;  ///< §VIII-A: capacity 4 per V100

  std::size_t total_gpus() const;
  std::size_t total_cpus() const;
  /// Max concurrently running learner functions across the cluster.
  std::size_t learner_slots() const;
  /// Max concurrently running serverless actors (1 per CPU core on the
  /// CPU-only VMs; GPU VMs host learners, not actors, as in the paper).
  std::size_t actor_slots() const;

  /// Paper's cost model: dollars-per-second of one learner slot = GPU VM
  /// hourly price / 3600 / slots-per-VM.
  double learner_unit_price() const;
  /// Dollars-per-second of one actor core.
  double actor_unit_price() const;
  /// Sustained TFLOPS available to each learner slot.
  double per_slot_tflops() const;

  static ClusterSpec regular();
  /// The regular testbed right-sized to a 32-core actor fleet — used by the
  /// reduced-scale benches so serverful baselines aren't billed for cores
  /// they could never use at this repo's actor counts.
  static ClusterSpec regular_small();
  static ClusterSpec hpc();
};

}  // namespace stellaris::serverless
