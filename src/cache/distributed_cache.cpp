#include "cache/distributed_cache.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::cache {

DistributedCache::DistributedCache() {
  auto& m = obs::metrics();
  m_puts_ = &m.counter("cache.puts");
  m_gets_ = &m.counter("cache.gets");
  m_hits_ = &m.counter("cache.hits");
  m_misses_ = &m.counter("cache.misses");
  m_erases_ = &m.counter("cache.erases");
  m_bytes_written_ = &m.counter("cache.bytes_written");
  m_bytes_read_ = &m.counter("cache.bytes_read");
  m_blocked_timeouts_ = &m.counter("cache.blocked_read_timeouts");
  m_blocked_wait_ms_ =
      &m.histogram("cache.blocked_read_wait_ms", 0.0, 500.0, 100);
  m_resident_bytes_ = &m.gauge("cache.resident_bytes");
}

std::uint64_t DistributedCache::put(const std::string& key, Bytes value) {
  std::uint64_t new_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = store_[key];
    resident_bytes_ -= entry.data.size();
    resident_bytes_ += value.size();
    stats_.bytes_written += value.size();
    ++stats_.puts;
    m_puts_->add();
    m_bytes_written_->add(value.size());
    m_resident_bytes_->set(static_cast<double>(resident_bytes_));
    entry.data = std::move(value);
    new_version = ++entry.version;
  }
  cv_.notify_all();
  return new_version;
}

std::optional<CacheValue> DistributedCache::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  m_gets_->add();
  auto it = store_.find(key);
  if (it == store_.end()) {
    ++stats_.misses;
    m_misses_->add();
    return std::nullopt;
  }
  ++stats_.hits;
  m_hits_->add();
  stats_.bytes_read += it->second.data.size();
  m_bytes_read_->add(it->second.data.size());
  return CacheValue{it->second.data, it->second.version};
}

CacheValue DistributedCache::get_or_throw(const std::string& key) const {
  auto v = get(key);
  if (!v) {
    LOG_ERROR << "cache miss for required key: " << key;
    throw CacheError("cache miss for required key: " + key);
  }
  return std::move(*v);
}

std::optional<CacheValue> DistributedCache::get_blocking(
    const std::string& key, std::uint64_t min_version,
    std::chrono::milliseconds timeout) {
  const auto wait_begin = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    auto it = store_.find(key);
    return it != store_.end() && it->second.version > min_version;
  });
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wait_begin)
          .count();
  m_blocked_wait_ms_->observe(waited_ms);
  ++stats_.gets;
  m_gets_->add();
  if (!ok) {
    ++stats_.misses;
    m_misses_->add();
    m_blocked_timeouts_->add();
    lock.unlock();
    LOG_DEBUG << "blocking read timed out after " << waited_ms
              << "ms: key=" << key << " min_version=" << min_version;
    return std::nullopt;
  }
  auto it = store_.find(key);
  ++stats_.hits;
  m_hits_->add();
  stats_.bytes_read += it->second.data.size();
  m_bytes_read_->add(it->second.data.size());
  return CacheValue{it->second.data, it->second.version};
}

bool DistributedCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.count(key) > 0;
}

std::uint64_t DistributedCache::version(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  return it == store_.end() ? 0 : it->second.version;
}

bool DistributedCache::erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return false;
  resident_bytes_ -= it->second.data.size();
  ++stats_.erases;
  m_erases_->add();
  m_resident_bytes_->set(static_cast<double>(resident_bytes_));
  store_.erase(it);
  return true;
}

std::vector<std::string> DistributedCache::keys_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::size_t DistributedCache::erase_prefix(const std::string& prefix) {
  std::size_t removed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = store_.lower_bound(prefix);
    while (it != store_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0) {
      resident_bytes_ -= it->second.data.size();
      ++stats_.erases;
      m_erases_->add();
      it = store_.erase(it);
      ++removed;
    }
    m_resident_bytes_->set(static_cast<double>(resident_bytes_));
  }
  if (removed > 0)
    LOG_DEBUG << "erased " << removed << " keys with prefix " << prefix;
  return removed;
}

std::size_t DistributedCache::num_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_.size();
}

std::size_t DistributedCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

CacheStats DistributedCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DistributedCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

void DistributedCache::clear() {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = store_.size();
    store_.clear();
    resident_bytes_ = 0;
    m_resident_bytes_->set(0.0);
  }
  if (dropped > 0) LOG_DEBUG << "cache cleared (" << dropped << " keys)";
}

}  // namespace stellaris::cache
