// Capability-annotated synchronization primitives + the project lock
// hierarchy.
//
// Every mutex in the codebase lives behind these wrappers, for three
// reasons:
//
//  1. **Compile-time lock discipline.** The wrappers carry Clang
//     thread-safety capability attributes (no-ops on other compilers), so
//     a Clang build with -Wthread-safety proves, at every call site, that
//     each GUARDED_BY field is only touched with its mutex held and that
//     REQUIRES/EXCLUDES contracts hold. CI promotes the warning to
//     -Werror=thread-safety; see DESIGN.md §11 for the conventions.
//
//  2. **Deterministic deadlock detection.** Each Mutex is constructed with
//     a name and a rank from the lock hierarchy below. When
//     STELLARIS_LOCK_ORDER_CHECK is enabled (the default; disable with
//     -DSTELLARIS_LOCK_ORDER_CHECK=OFF for shaving nanoseconds off perf
//     runs), every acquisition checks a per-thread held-lock stack and
//     aborts — printing both lock names and ranks — if a lock is acquired
//     while holding one of equal or higher rank. Cross-subsystem deadlocks
//     (e.g. cache waiter vs. metrics registry) are therefore caught on the
//     first inverted acquisition, on any single-threaded code path, not
//     just when two threads actually collide.
//
//  3. **Lintability.** tools/lint/stellaris_lint forbids raw std::mutex /
//     std::condition_variable / std::lock_guard outside this header, so
//     "is every lock annotated and ranked?" reduces to a grep.
//
// Lock hierarchy (ranks; a thread may only acquire strictly increasing
// ranks — full table and rationale in DESIGN.md §11):
//
//   100  cache/shard               logs + wakes waiters while held
//   120  serverless/container-pool leaf (metrics atomics + RNG only)
//   150  tensor/kernel-pool        constructs the kernel ThreadPool
//   200  util/thread-pool          work-queue mutex
//   210  sim/driver-queue          execution-driver job queue
//   220  sim/driver-job            per-job done flag + error slot
//   230  core/worker-contexts      worker-context free list
//   240  serve/contexts            serving model-context free list
//   250  util/parallel-for-errors  error capture inside pool tasks
//   300  obs/metrics-registry      instrument registration + export
//   350  obs/trace-recorder        trace event buffer
//   360  obs/ledger                run-ledger line buffer
//   370  obs/timeseries            sampled-series buffer
//   900  util/logger               terminal leaf: any subsystem may log
//                                  while holding its own lock
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety analysis attributes. Canonical macro set from the
// Clang documentation; all expand to nothing on compilers without the
// attributes (GCC builds locally, Clang proves the invariants in CI).
// ---------------------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define STELLARIS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STELLARIS_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

#define CAPABILITY(x) STELLARIS_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY STELLARIS_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) STELLARIS_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) STELLARIS_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  STELLARIS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  STELLARIS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  STELLARIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  STELLARIS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  STELLARIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  STELLARIS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  STELLARIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  STELLARIS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  STELLARIS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  STELLARIS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) STELLARIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  STELLARIS_THREAD_ANNOTATION_(assert_capability(x))
#define RETURN_CAPABILITY(x) \
  STELLARIS_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  STELLARIS_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Lock-order checking defaults to ON; CMake passes =0 for perf builds.
#ifndef STELLARIS_LOCK_ORDER_CHECK
#define STELLARIS_LOCK_ORDER_CHECK 1
#endif

namespace stellaris {

/// Ranks for the documented lock hierarchy (see header comment and
/// DESIGN.md §11). New subsystems pick an unused rank that is greater than
/// every lock they may hold a lock across, and smaller than every lock
/// they acquire while held.
namespace lock_rank {
// Every cache stripe (DistributedCache's per-shard mutexes) shares kCache:
// stripes are peers that must never nest, and the strictly-greater check
// makes a nested stripe acquisition abort (DESIGN.md §12).
inline constexpr int kCache = 100;
inline constexpr int kContainerPool = 120;
inline constexpr int kKernelPool = 150;
inline constexpr int kThreadPool = 200;
// Execution-driver locks (sim/driver): a worker holds the queue lock only
// around dequeue bookkeeping, and a job lock only around its done flag; a
// body waiting on its predecessor holds NOTHING (sequential, never nested).
inline constexpr int kDriverQueue = 210;
inline constexpr int kDriverJob = 220;
// Worker-context free-list (core/worker_context): leased at body start,
// returned at body end, never held across the lease.
inline constexpr int kWorkerContexts = 230;
// Serving-tier per-tenant scratch contexts (serve/serve_context): same
// lease-at-body-start discipline as kWorkerContexts, a distinct rank so a
// serve body may legally lease while a training context is held (mixed
// train+serve processes).
inline constexpr int kServeContexts = 240;
inline constexpr int kParallelForErrors = 250;
inline constexpr int kMetricsRegistry = 300;
inline constexpr int kTraceRecorder = 350;
// Telemetry sinks (run ledger, time-series recorder): terminal like the
// trace recorder — emitters may hold subsystem locks while appending, but
// the recorders never call out while holding their own.
inline constexpr int kLedger = 360;
inline constexpr int kTimeSeries = 370;
inline constexpr int kLogger = 900;
}  // namespace lock_rank

namespace detail {
/// Per-thread held-lock stack maintenance. `lock_order_push` aborts (after
/// printing both lock names and ranks to stderr) when `rank` is not
/// strictly greater than the rank of the most recently acquired held lock.
void lock_order_push(const void* mu, const char* name, int rank);
void lock_order_pop(const void* mu);
}  // namespace detail

/// Exclusive mutex with a name and a hierarchy rank.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if STELLARIS_LOCK_ORDER_CHECK
    detail::lock_order_push(this, name_, rank_);
#endif
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if STELLARIS_LOCK_ORDER_CHECK
    detail::lock_order_pop(this);
#endif
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const char* name_;
  const int rank_;
};

/// Reader/writer mutex with the same naming, ranking, and annotation
/// discipline. Shared acquisitions obey the same rank order as exclusive
/// ones (a reader can still deadlock a writer across subsystems).
class CAPABILITY("mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name, int rank)
      : name_(name), rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
#if STELLARIS_LOCK_ORDER_CHECK
    detail::lock_order_push(this, name_, rank_);
#endif
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if STELLARIS_LOCK_ORDER_CHECK
    detail::lock_order_pop(this);
#endif
  }

  void lock_shared() ACQUIRE_SHARED() {
#if STELLARIS_LOCK_ORDER_CHECK
    detail::lock_order_push(this, name_, rank_);
#endif
    mu_.lock_shared();
  }

  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if STELLARIS_LOCK_ORDER_CHECK
    detail::lock_order_pop(this);
#endif
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* name_;
  const int rank_;
};

/// RAII exclusive lock (std::lock_guard/std::unique_lock replacement).
/// Supports early release for the unlock-then-log pattern.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before scope end (idempotence is NOT provided: call once).
  void unlock() RELEASE() {
    mu_->unlock();
    held_ = false;
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// RAII exclusive lock over a SharedMutex (registration / mutation paths).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterLock() RELEASE() { mu_->unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock over a SharedMutex (concurrent read/export paths).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_->unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable paired with Mutex. The wait overloads take the Mutex
/// itself (not a lock object) so they can carry a REQUIRES(mu) contract
/// the analysis understands; internally std::condition_variable_any drives
/// Mutex::lock/unlock, which keeps the lock-order checker's held-stack
/// exact across the wait.
///
/// Waits are deliberately predicate-free: callers loop on a
/// REQUIRES-annotated helper instead of passing a lambda, because Clang's
/// analysis cannot see through predicate closures (see DESIGN.md §11).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep until notified, re-acquire `mu`.
  /// Subject to spurious wakeups — always call in a predicate loop.
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// As wait(), but also wakes at `deadline`; returns std::cv_status.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace stellaris
