#include "core/staleness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace stellaris::core {
namespace {

GradientMsg msg_with_version(std::uint64_t pulled) {
  GradientMsg m;
  m.grad = {1.0f};
  m.pulled_version = pulled;
  return m;
}

TEST(Schedule, Eq3DecaySchedule) {
  StalenessSchedule s(0.96, 1.0, /*threshold_floor=*/0.0);
  s.observe_round0(4.0);
  s.finalize_round0();
  EXPECT_DOUBLE_EQ(s.delta_max(), 4.0);
  EXPECT_DOUBLE_EQ(s.threshold(0), 4.0);
  EXPECT_NEAR(s.threshold(10), 4.0 * std::pow(0.96, 10), 1e-12);
  EXPECT_GT(s.threshold(5), s.threshold(20));
}

TEST(Schedule, DZeroForcesSynchronization) {
  StalenessSchedule s(0.0);
  s.observe_round0(9.0);
  s.finalize_round0();
  EXPECT_DOUBLE_EQ(s.threshold(0), 0.0);
  EXPECT_DOUBLE_EQ(s.threshold(100), 0.0);
}

TEST(Schedule, DOneIsPureAsync) {
  StalenessSchedule s(1.0, 1.0, 0.0);
  s.observe_round0(7.0);
  s.finalize_round0();
  EXPECT_DOUBLE_EQ(s.threshold(0), 7.0);
  EXPECT_DOUBLE_EQ(s.threshold(1000), 7.0);
}

TEST(Schedule, FloorBoundsLateRounds) {
  StalenessSchedule s(0.9, 1.0, 1.0);
  s.observe_round0(4.0);
  s.finalize_round0();
  EXPECT_DOUBLE_EQ(s.threshold(1000), 1.0);
  EXPECT_GT(s.threshold(1), 1.0);
}

TEST(Schedule, Round0TakesMaxObservation) {
  StalenessSchedule s(0.96, 1.0, 0.0);
  s.observe_round0(2.0);
  s.observe_round0(5.0);
  s.observe_round0(3.0);
  s.finalize_round0();
  EXPECT_DOUBLE_EQ(s.delta_max(), 5.0);
}

TEST(Schedule, ObserveAfterFinalizeThrows) {
  StalenessSchedule s(0.96);
  s.finalize_round0();
  EXPECT_THROW(s.observe_round0(1.0), Error);
}

TEST(Schedule, InvalidDecayThrows) {
  EXPECT_THROW(StalenessSchedule(-0.1), Error);
  EXPECT_THROW(StalenessSchedule(1.1), Error);
}

TEST(StalenessLr, Eq4Values) {
  // α_c = α₀ / δ^{1/v}.
  EXPECT_DOUBLE_EQ(staleness_lr(0.1, 0.0, 3.0), 0.1);  // fresh: full rate
  EXPECT_DOUBLE_EQ(staleness_lr(0.1, 1.0, 3.0), 0.1);  // 1^{1/3} = 1
  EXPECT_NEAR(staleness_lr(0.1, 8.0, 3.0), 0.1 / 2.0, 1e-12);
  EXPECT_NEAR(staleness_lr(0.1, 4.0, 2.0), 0.05, 1e-12);
  EXPECT_NEAR(staleness_lr(0.1, 4.0, 1.0), 0.025, 1e-12);
}

TEST(StalenessLr, LargerVDampsLess) {
  // Fig. 13(b): larger v keeps step sizes larger under staleness.
  const double delta = 5.0;
  EXPECT_LT(staleness_lr(1.0, delta, 1.0), staleness_lr(1.0, delta, 2.0));
  EXPECT_LT(staleness_lr(1.0, delta, 2.0), staleness_lr(1.0, delta, 4.0));
}

TEST(StalenessLr, InvalidVThrows) {
  EXPECT_THROW(staleness_lr(0.1, 1.0, 0.0), Error);
}

TEST(Queue, MeanAndMaxStaleness) {
  GradientQueue q;
  q.push(msg_with_version(5), 0.0);
  q.push(msg_with_version(3), 0.0);
  q.push(msg_with_version(7), 0.0);
  // Against version 7: staleness {2, 4, 0}.
  EXPECT_DOUBLE_EQ(q.mean_staleness(7), 2.0);
  EXPECT_DOUBLE_EQ(q.max_staleness(7), 4.0);
}

TEST(Queue, ReadyRequiresNonEmptyAndLowMean) {
  GradientQueue q;
  EXPECT_FALSE(q.ready(5, 100.0));  // empty never fires
  q.push(msg_with_version(2), 0.0);
  EXPECT_FALSE(q.ready(5, 2.0));  // staleness 3 > 2
  EXPECT_TRUE(q.ready(5, 3.0));   // boundary admits
}

TEST(Queue, FreshGradientsDiluteMeanStaleness) {
  GradientQueue q;
  q.push(msg_with_version(0), 0.0);  // staleness 4 vs version 4
  EXPECT_FALSE(q.ready(4, 2.0));
  // Three fresh gradients pull the mean to (4+0+0+0)/4 = 1.
  for (int i = 0; i < 3; ++i) q.push(msg_with_version(4), 0.0);
  EXPECT_TRUE(q.ready(4, 2.0));
}

TEST(Queue, DrainEmptiesInFifoOrder) {
  GradientQueue q;
  q.push(msg_with_version(1), 0.5);
  q.push(msg_with_version(2), 0.7);
  auto items = q.drain();
  EXPECT_TRUE(q.empty());
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].msg.pulled_version, 1u);
  EXPECT_DOUBLE_EQ(items[1].enqueue_time, 0.7);
}

TEST(Queue, EmptyMeanIsZero) {
  GradientQueue q;
  EXPECT_DOUBLE_EQ(q.mean_staleness(10), 0.0);
  EXPECT_DOUBLE_EQ(q.max_staleness(10), 0.0);
}

// Property: threshold is monotone non-increasing in the round index for any
// d in (0,1].
class DecaySweep : public ::testing::TestWithParam<double> {};

TEST_P(DecaySweep, ThresholdMonotoneNonIncreasing) {
  StalenessSchedule s(GetParam(), 1.0, 0.0);
  s.observe_round0(6.0);
  s.finalize_round0();
  double prev = s.threshold(0);
  for (std::size_t k = 1; k < 100; ++k) {
    const double cur = s.threshold(k);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, DecaySweep,
                         ::testing::Values(0.92, 0.94, 0.96, 0.98, 1.0));

}  // namespace
}  // namespace stellaris::core
