// Neural-network layers with explicit forward/backward passes.
//
// No tape autograd: every layer caches exactly what its backward pass needs
// during forward, and backward(dy) both returns dx and accumulates parameter
// gradients. This keeps the training loop deterministic and allocation
// patterns obvious — important because learner functions serialize whole
// gradient sets into the distributed cache every round.
//
// forward/backward return references to buffers owned by the layer, written
// through the ops::*_into kernels: once every buffer has grown to the
// steady-state batch shape, a training step performs zero heap allocations
// (verified by the tensor_buffer_allocs() counter in the layer tests). The
// returned reference is valid until the next forward/backward call on the
// same layer; callers that need the data to outlive that copy it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace stellaris {

class Rng;

namespace nn {

/// Abstract layer. Batch-major: inputs are (batch, features).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs; caches whatever backward() needs. The reference stays
  /// valid until the next call on this layer.
  virtual const Tensor& forward(const Tensor& x) = 0;

  /// Given dL/d(output), accumulate parameter grads and return dL/d(input).
  /// Must be called after the matching forward(). The reference stays valid
  /// until the next call on this layer.
  virtual const Tensor& backward(const Tensor& dy) = 0;

  /// Learnable parameter tensors (empty for activations).
  virtual std::vector<Tensor*> parameters() { return {}; }
  /// Gradient accumulators, parallel to parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  virtual std::string name() const = 0;
};

/// Fully-connected layer: y = x·W + b, W is (in, out).
class Linear final : public Layer {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&dw_, &db_}; }
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return w_.dim(0); }
  std::size_t out_features() const { return w_.dim(1); }

 private:
  Tensor w_, b_;
  Tensor dw_, db_;
  Tensor cached_input_;
  Tensor out_, dx_;             // persistent forward/backward outputs
  Tensor dw_step_, db_step_;    // per-step grads, folded into dw_/db_ with +=
};

/// 2-D convolution via im2col lowering; input rows are flattened (C,H,W).
class Conv2d final : public Layer {
 public:
  Conv2d(ops::Conv2dSpec spec, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> parameters() override { return {&w_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&dw_, &db_}; }
  std::string name() const override { return "Conv2d"; }

  const ops::Conv2dSpec& spec() const { return spec_; }
  /// Flattened output features per sample: out_channels·out_h·out_w.
  std::size_t out_features() const;

 private:
  ops::Conv2dSpec spec_;
  Tensor w_;   // (C·k·k, out_channels)
  Tensor b_;   // (out_channels)
  Tensor dw_, db_;
  Tensor cached_cols_;
  std::size_t cached_batch_ = 0;
  Tensor y_, out_;              // pre-/post-reorder forward buffers
  Tensor dys_, dcols_, dx_;     // backward buffers
  Tensor dw_step_, db_step_;
};

class Tanh final : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;  // doubles as the forward result
  Tensor dx_;
};

class Relu final : public Layer {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::string name() const override { return "Relu"; }

 private:
  Tensor cached_input_;
  Tensor out_, dx_;
};

/// Ordered pipeline of layers.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Layer> layer);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  std::string name() const override { return "Sequential"; }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Tensor passthrough_;  // only used when the pipeline is empty
};

/// Zero every gradient accumulator of `layer`.
void zero_gradients(Layer& layer);

/// Total learnable scalar count.
std::size_t parameter_count(Layer& layer);

}  // namespace nn
}  // namespace stellaris
