# Empty dependencies file for envs_tests.
# This may be replaced when dependencies are built.
