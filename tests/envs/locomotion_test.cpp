#include "envs/locomotion.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stellaris::envs {
namespace {

TEST(Locomotion, HopperSpec) {
  LocomotionEnv env(LocomotionParams::hopper());
  const auto& spec = env.spec();
  EXPECT_EQ(spec.name, "Hopper");
  EXPECT_EQ(spec.act_dim, 3u);
  EXPECT_EQ(spec.obs.flat_dim, 2u * 3 + 2);
  EXPECT_EQ(spec.action_kind, nn::ActionKind::kContinuous);
}

TEST(Locomotion, MorphologiesDiffer) {
  LocomotionEnv hopper(LocomotionParams::hopper());
  LocomotionEnv walker(LocomotionParams::walker2d());
  LocomotionEnv humanoid(LocomotionParams::humanoid());
  EXPECT_EQ(walker.spec().act_dim, 6u);
  EXPECT_EQ(humanoid.spec().act_dim, 8u);
  EXPECT_LT(hopper.spec().obs.flat_dim, humanoid.spec().obs.flat_dim);
}

TEST(Locomotion, ResetIsDeterministicPerSeed) {
  LocomotionEnv a(LocomotionParams::hopper());
  LocomotionEnv b(LocomotionParams::hopper());
  EXPECT_EQ(a.reset(5), b.reset(5));
  EXPECT_NE(a.reset(5), a.reset(6));
}

TEST(Locomotion, ObsSizeMatchesSpec) {
  LocomotionEnv env(LocomotionParams::walker2d());
  auto obs = env.reset(1);
  EXPECT_EQ(obs.size(), env.spec().obs.flat_dim);
  auto r = env.step(std::vector<float>(6, 0.0f));
  EXPECT_EQ(r.obs.size(), env.spec().obs.flat_dim);
}

TEST(Locomotion, WrongActionDimThrows) {
  LocomotionEnv env(LocomotionParams::hopper());
  env.reset(1);
  EXPECT_THROW(env.step(std::vector<float>(2, 0.0f)), Error);
}

TEST(Locomotion, DiscreteStepThrows) {
  LocomotionEnv env(LocomotionParams::hopper());
  env.reset(1);
  EXPECT_THROW(env.step_discrete(0), Error);
}

TEST(Locomotion, EpisodeTerminatesByCap) {
  LocomotionEnv env(LocomotionParams::hopper());
  env.reset(2);
  std::vector<float> zero(3, 0.0f);
  std::size_t steps = 0;
  for (; steps < 1000; ++steps) {
    if (env.step(zero).done) break;
  }
  EXPECT_LT(steps, env.spec().max_steps);  // cap reached at max_steps
}

TEST(Locomotion, TorquesAreClamped) {
  // Insane torques must not blow up the integrator.
  LocomotionEnv env(LocomotionParams::hopper());
  env.reset(3);
  std::vector<float> huge(3, 1e6f);
  for (int i = 0; i < 50; ++i) {
    auto r = env.step(huge);
    for (float v : r.obs) EXPECT_TRUE(std::isfinite(v));
    if (r.done) break;
  }
}

TEST(Locomotion, UncontrolledDynamicsStayBounded) {
  // Semi-implicit Euler with damping: limb energy must not diverge when no
  // torque is applied.
  LocomotionEnv env(LocomotionParams::hopper());
  env.reset(4);
  const double e0 = env.limb_energy();
  std::vector<float> zero(3, 0.0f);
  for (int i = 0; i < 150; ++i) {
    if (env.step(zero).done) break;
  }
  EXPECT_LE(env.limb_energy(), e0 + 1e-6);
}

TEST(Locomotion, CoordinatedPumpingOutrunsNoise) {
  // The contact-window pumping controller (see DESIGN.md) must reach higher
  // forward velocity than zero torque — the learnability precondition.
  auto run = [](int mode) {
    LocomotionEnv env(LocomotionParams::hopper());
    auto obs = env.reset(7);
    double total = 0.0;
    for (;;) {
      std::vector<float> a(3, 0.0f);
      if (mode == 1) {
        for (std::size_t j = 0; j < 3; ++j) {
          const double angle = obs[2 * j];
          a[j] = (angle > -0.3 && angle < 0.85) ? -1.0f : 1.0f;
        }
      }
      auto r = env.step(a);
      total += r.reward;
      if (r.done) break;
      obs = std::move(r.obs);
    }
    return total;
  };
  EXPECT_GT(run(1), run(0) + 50.0);
}

TEST(Locomotion, FallEndsEpisodeWithPenalty) {
  // Drive every joint hard one way until the mean angle exceeds the fall
  // threshold.
  LocomotionEnv env(LocomotionParams::hopper());
  env.reset(8);
  std::vector<float> push(3, 1.0f);
  StepResult last;
  for (int i = 0; i < 500; ++i) {
    last = env.step(push);
    if (last.done) break;
  }
  EXPECT_TRUE(last.done);
  EXPECT_LT(last.reward, 0.0);  // the −20 fall penalty dominates
}

TEST(Locomotion, RewardIsFiniteEverywhere) {
  LocomotionEnv env(LocomotionParams::humanoid());
  Rng rng(9);
  env.reset(9);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> a(8);
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto r = env.step(a);
    EXPECT_TRUE(std::isfinite(r.reward));
    if (r.done) env.reset(rng.next());
  }
}

}  // namespace
}  // namespace stellaris::envs
