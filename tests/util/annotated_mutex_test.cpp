#include "util/annotated_mutex.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "util/thread_pool.hpp"

namespace stellaris {
namespace {

// --- Wrapper behavior ------------------------------------------------------

TEST(AnnotatedMutex, MutexLockProvidesExclusion) {
  Mutex mu("test/exclusion", 10);
  int counter = 0;
  ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t) {
    MutexLock lock(mu);
    ++counter;
  });
  EXPECT_EQ(counter, 1000);
}

TEST(AnnotatedMutex, EarlyUnlockReleases) {
  Mutex mu("test/early-unlock", 10);
  {
    MutexLock lock(mu);
    lock.unlock();
    // Re-acquirable immediately: would deadlock if unlock() were a no-op.
    MutexLock again(mu);
  }
}

TEST(AnnotatedMutex, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu("test/shared", 10);
  std::vector<int> data{1, 2, 3};
  int sum = 0;
  Mutex sum_mu("test/shared-sum", 20);
  ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t) {
    int local = 0;
    {
      ReaderLock lock(mu);
      for (int v : data) local += v;
    }
    MutexLock lock(sum_mu);
    sum += local;
  });
  EXPECT_EQ(sum, 64 * 6);
  {
    WriterLock lock(mu);
    data.push_back(4);
  }
  EXPECT_EQ(data.size(), 4u);
}

TEST(AnnotatedMutex, CondVarWaitWakesOnNotify) {
  Mutex mu("test/condvar", 10);
  CondVar cv;
  bool ready = false;
  ThreadPool pool(1);
  auto fut = pool.submit([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  fut.get();
}

TEST(AnnotatedMutex, CondVarWaitUntilTimesOut) {
  Mutex mu("test/condvar-timeout", 10);
  CondVar cv;
  MutexLock lock(mu);
  // Nobody will notify: must come back with timeout, re-holding the lock.
  // lint-equivalent note: tests are not linted; this is a real-time wait.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(cv.wait_until(mu, deadline), std::cv_status::timeout);
}

TEST(AnnotatedMutex, NamesAndRanksAreExposed) {
  Mutex mu("test/named", 42);
  EXPECT_STREQ(mu.name(), "test/named");
  EXPECT_EQ(mu.rank(), 42);
  SharedMutex smu("test/shared-named", 43);
  EXPECT_STREQ(smu.name(), "test/shared-named");
  EXPECT_EQ(smu.rank(), 43);
}

TEST(AnnotatedMutex, HierarchyRanksAreStrictlyOrdered) {
  // The documented hierarchy (DESIGN.md §11) must stay strictly increasing
  // along every held-across edge: cache logs while locked, the kernel pool
  // registry constructs the thread pool, pool tasks record errors.
  EXPECT_LT(lock_rank::kCache, lock_rank::kLogger);
  EXPECT_LT(lock_rank::kContainerPool, lock_rank::kLogger);
  EXPECT_LT(lock_rank::kKernelPool, lock_rank::kThreadPool);
  EXPECT_LT(lock_rank::kThreadPool, lock_rank::kParallelForErrors);
  EXPECT_LT(lock_rank::kMetricsRegistry, lock_rank::kLogger);
  EXPECT_LT(lock_rank::kTraceRecorder, lock_rank::kLogger);
}

// --- Lock-order checker ----------------------------------------------------

#if STELLARIS_LOCK_ORDER_CHECK

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, InvertedAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low("test/low-rank", 10);
  Mutex high("test/high-rank", 20);
  EXPECT_DEATH(
      {
        MutexLock l1(high);
        MutexLock l2(low);  // rank 10 while holding rank 20: inversion
      },
      "lock-order violation.*test/low-rank.*rank 10.*test/high-rank.*rank 20");
}

TEST(LockOrderDeathTest, SameRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a("test/peer-a", 10);
  Mutex b("test/peer-b", 10);
  EXPECT_DEATH(
      {
        MutexLock l1(a);
        MutexLock l2(b);  // equal rank: peer locks must not nest
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, SharedAcquisitionObeysRanks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex low("test/shared-low", 10);
  Mutex high("test/plain-high", 20);
  EXPECT_DEATH(
      {
        MutexLock l1(high);
        ReaderLock l2(low);  // shared acquisition still checks rank order
      },
      "lock-order violation");
}

TEST(LockOrderCheck, IncreasingRanksAreAccepted) {
  Mutex low("test/ok-low", 10);
  Mutex mid("test/ok-mid", 20);
  Mutex high("test/ok-high", 30);
  MutexLock l1(low);
  MutexLock l2(mid);
  MutexLock l3(high);
  SUCCEED();
}

TEST(LockOrderCheck, ReleaseAllowsReacquisitionAtLowerRank) {
  Mutex low("test/seq-low", 10);
  Mutex high("test/seq-high", 20);
  {
    MutexLock l(high);
  }
  MutexLock l2(low);  // high released: acquiring a lower rank is fine
  SUCCEED();
}

TEST(LockOrderCheck, OutOfOrderReleaseIsTracked) {
  Mutex a("test/ooo-a", 10);
  Mutex b("test/ooo-b", 20);
  MutexLock la(a);
  MutexLock lb(b);
  la.unlock();  // release the *bottom* of the held stack first
  Mutex c("test/ooo-c", 30);
  MutexLock lc(c);  // stack top is b (20): 30 is legal
  SUCCEED();
}

TEST(LockOrderCheck, CondVarWaitRebalancesHeldStack) {
  // Waiting releases and re-acquires the mutex through the checker; after
  // the wait the held stack must be exactly [mu] again, so a higher rank
  // is acquirable and a lower one still aborts (not tested here to keep
  // this a non-death test).
  Mutex mu("test/cv-stack", 10);
  CondVar cv;
  {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
    cv.wait_until(mu, deadline);
    Mutex higher("test/cv-higher", 20);
    MutexLock l2(higher);
  }
  SUCCEED();
}

#endif  // STELLARIS_LOCK_ORDER_CHECK

}  // namespace
}  // namespace stellaris
