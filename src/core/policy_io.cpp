#include "core/policy_io.hpp"

#include "util/serialize.hpp"

namespace stellaris::core {

namespace keys {
std::string trajectory(std::uint64_t id) {
  return "traj/" + std::to_string(id);
}
std::string gradient(std::uint64_t id) { return "grad/" + std::to_string(id); }
}  // namespace keys

std::vector<std::uint8_t> encode_policy(const std::vector<float>& params,
                                        std::uint64_t version) {
  ByteWriter w(wire::size_u64() + wire::size_f32_vector(params.size()));
  w.put_u64(version);
  w.put_f32_vector(params);
  return w.take();
}

std::pair<std::vector<float>, std::uint64_t> decode_policy(ByteSpan bytes) {
  std::vector<float> params;
  const std::uint64_t version = decode_policy_into(bytes, params);
  return {std::move(params), version};
}

std::uint64_t decode_policy_into(ByteSpan bytes, std::vector<float>& params) {
  ByteReader r(bytes);
  const std::uint64_t version = r.get_u64();
  r.get_f32_vector_into(params);
  return version;
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt) {
  ByteWriter w(wire::size_u64() * 2 +
               wire::size_f32_vector(ckpt.params.size()) +
               wire::size_bytes(ckpt.optimizer_state.size()));
  w.put_u64(ckpt.version);
  w.put_u64(ckpt.applied_gradients);
  w.put_f32_vector(ckpt.params);
  // Nested blob: length-prefixed raw bytes of the optimizer's own stream.
  w.put_bytes(ckpt.optimizer_state);
  return w.take();
}

Checkpoint decode_checkpoint(ByteSpan bytes) {
  Checkpoint ckpt;
  decode_checkpoint_into(bytes, ckpt);
  return ckpt;
}

void decode_checkpoint_into(ByteSpan bytes, Checkpoint& out) {
  ByteReader r(bytes);
  out.version = r.get_u64();
  out.applied_gradients = r.get_u64();
  r.get_f32_vector_into(out.params);
  r.get_bytes_into(out.optimizer_state);
}

}  // namespace stellaris::core
