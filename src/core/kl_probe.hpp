// KL probe: measures how far one policy update moved the action
// distribution — the metric of Fig. 3(c). Two parameter snapshots of the
// same architecture are evaluated on a probe observation set (recent real
// observations) and the mean KL of their action distributions is returned.
#pragma once

#include <span>

#include "nn/actor_critic.hpp"

namespace stellaris::core {

/// Mean KL(π_before ‖ π_after) over the probe rows. `model` is scratch
/// space of the right architecture; its parameters are clobbered.
double policy_update_kl(nn::ActorCritic& model,
                        std::span<const float> params_before,
                        std::span<const float> params_after,
                        const Tensor& probe_obs);

}  // namespace stellaris::core
