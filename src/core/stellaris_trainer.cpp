#include "core/stellaris_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "core/kl_probe.hpp"
#include "core/learner_update.hpp"
#include "rl/gae.hpp"
#include "rl/impact.hpp"
#include "rl/ppo.hpp"
#include "rl/sample_batch.hpp"
#include "tensor/kernel_config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::core {

namespace {
nn::NetworkSpec spec_for(const envs::EnvSpec& env, std::size_t width) {
  return env.obs.image ? nn::NetworkSpec::atari()
                       : nn::NetworkSpec::mujoco(width);
}

ParameterFunction::Config param_fn_config(const TrainConfig& cfg) {
  ParameterFunction::Config pc;
  // Learners run their local SGD epochs with the algorithm's Adam at α₀ and
  // submit cumulative parameter deltas; the parameter function therefore
  // applies the aggregated (staleness-weighted, truncation-scaled) delta
  // directly — SGD with unit rate. Eq. 4's α_c modulation is realized by
  // the δ^{-1/v} weight on each delta.
  pc.alpha0 = 1.0;
  pc.optimizer = "sgd";
  pc.smooth_v = cfg.smooth_v;
  pc.rho = cfg.ratio_rho;
  // Deltas are already trust-region bounded by the learner-side clip; the
  // parameter-function norm guard only needs to catch pathological groups.
  pc.max_grad_norm = 1e3;
  switch (cfg.aggregation) {
    case AggregationMode::kStellaris:
      pc.enable_truncation = cfg.enable_truncation;
      pc.enable_staleness_lr = cfg.enable_staleness_lr;
      break;
    case AggregationMode::kSoftsync:
      // Zhang et al. 2016: α/τ modulation (v = 1), no cross-learner view.
      pc.enable_truncation = false;
      pc.enable_staleness_lr = true;
      pc.smooth_v = 1.0;
      break;
    case AggregationMode::kSsp:
    case AggregationMode::kPureAsync:
      pc.enable_truncation = false;
      pc.enable_staleness_lr = false;
      break;
  }
  return pc;
}
}  // namespace

StellarisTrainer::StellarisTrainer(TrainConfig cfg)
    : cfg_((cfg.validate(), std::move(cfg))),
      env_spec_(envs::env_spec(cfg_.env_name)),
      net_spec_(spec_for(env_spec_, cfg_.network_width)),
      schedule_(cfg_.aggregation == AggregationMode::kStellaris ? cfg_.decay_d
                                                                : 1.0,
                1.0, cfg.staleness_floor),
      rng_(cfg_.seed) {
  cfg_.validate();
  // New trace namespace for this run; the platform's tracks inherit it.
  obs::begin_run();
  trace_tag_ = obs::run_tag();
  {
    auto& m = obs::metrics();
    m_staleness_ = &m.histogram("trainer.staleness", 0.0, 64.0, 128);
    m_update_kl_ = &m.histogram("trainer.update_kl", 0.0, 0.2, 100);
    m_grad_queue_depth_ = &m.gauge("trainer.gradient_queue_depth");
    m_pending_trajs_ = &m.gauge("trainer.pending_trajectories");
    m_rounds_ = &m.counter("trainer.rounds");
    m_round_kl_ = &m.gauge("trainer.round_kl");
    m_round_reward_ = &m.gauge("trainer.round_reward");
    m_checkpoints_ = &m.counter("trainer.checkpoints");
    m_restores_ = &m.counter("trainer.restores");
    m_policy_decodes_ = &m.counter("trainer.policy_decodes");
    m_policy_pull_reuses_ = &m.counter("trainer.policy_pull_reuses");
  }
  platform_ = std::make_unique<serverless::ServerlessPlatform>(
      engine_, cfg_.cluster, cfg_.latency, cfg_.seed ^ 0x9e37ULL);
  if (cfg_.faults.any()) {
    injector_ = std::make_unique<fault::FaultInjector>(engine_, cfg_.faults);
    platform_->set_fault_injector(injector_.get());
  }
  data_loader_ = std::make_unique<serverless::GpuDataLoader>(
      cfg_.latency, cfg_.seed ^ 0x10adULL);

  auto build_model = [&](std::uint64_t salt) {
    return std::make_unique<nn::ActorCritic>(
        env_spec_.obs, env_spec_.action_kind, env_spec_.act_dim, net_spec_,
        cfg_.seed ^ salt);
  };
  // Single weight initialization: the parameter function owns the canonical
  // weights; every scratch model gets overwritten from snapshots anyway.
  auto canonical = build_model(0x11);
  auto pf_cfg = param_fn_config(cfg_);
  const auto [ls_off, ls_len] = canonical->log_std_span();
  pf_cfg.clamp_offset = ls_off;
  pf_cfg.clamp_len = ls_len;
  param_fn_ = std::make_unique<ParameterFunction>(canonical->flat_params(),
                                                  pf_cfg);
  actor_model_ = build_model(0x22);
  probe_model_ = build_model(0x55);
  ctx_pool_ = std::make_unique<WorkerContextPool>(env_spec_, net_spec_,
                                                  cfg_.seed ^ 0x66ULL);
  target_params_ =
      std::make_shared<const std::vector<float>>(param_fn_->params());

  actors_.reserve(cfg_.num_actors);
  for (std::size_t i = 0; i < cfg_.num_actors; ++i)
    actors_.push_back(std::make_unique<rl::VecActor>(
        std::make_unique<envs::VecEnv>(cfg_.env_name, cfg_.envs_per_actor,
                                       cfg_.seed * 7919 + i),
        cfg_.seed * 7919 + i));
  eval_env_ = envs::make_env(cfg_.env_name);

  // Execution driver (DESIGN.md §14): the event engine keeps sole authority
  // over ordering; the driver only decides WHERE invocation bodies compute.
  actor_chain_.resize(cfg_.num_actors);
  driver_ = sim::make_driver(cfg_.driver,
                             sim::resolve_driver_threads(cfg_.driver_threads));
  engine_.set_driver(driver_.get());
  if (driver_->worker_threads() > 0)
    ops::apply_driver_thread_budget(driver_->worker_threads());

  // Round-0 calibration window: one gradient from (roughly) each actor wave
  // aggregated unconditionally to measure δ_max (§V-C).
  calib_target_ = std::max<std::size_t>(2, std::min<std::size_t>(
                                               cfg_.num_actors, 8));
}

StellarisTrainer::~StellarisTrainer() = default;

std::size_t StellarisTrainer::learner_limit() const {
  const std::size_t slots = cfg_.cluster.learner_slots();
  if (cfg_.max_learners == 0) return slots;
  return std::min(cfg_.max_learners, slots);
}

namespace {
/// Virtual-time deadline on the trainer's protocol-guaranteed cache reads.
/// These keys are always published before the read fires, so the deadline
/// only trips on a protocol violation — a hard error, not a retry case.
constexpr double kCacheReadDeadlineS = 30.0;
}  // namespace

StellarisTrainer::PolicyRef StellarisTrainer::latest_policy() {
  const auto value = cache_.get_blocking(keys::kPolicyLatest, 0, engine_,
                                         kCacheReadDeadlineS);
  if (!value)
    throw CacheError("policy/latest missing past its virtual deadline");
  // Version-gated pull: the cache entry's put counter tells us whether the
  // bytes changed since the last decode. Unchanged ⇒ every concurrent
  // puller shares the previously decoded (immutable) snapshot; the decode
  // runs once per published policy version.
  if (decoded_policy_ && value->version == decoded_policy_entry_version_) {
    m_policy_pull_reuses_->add();
    return decoded_policy_;
  }
  auto snap = std::make_shared<PolicySnapshot>();
  snap->version = decode_policy_into(value->bytes(), snap->params);
  decoded_policy_ = std::move(snap);
  decoded_policy_entry_version_ = value->version;
  m_policy_decodes_->add();
  return decoded_policy_;
}

obs::TrackId StellarisTrainer::trainer_track(obs::TraceRecorder* tr) const {
  return tr->track(trace_tag_ + "/trainer");
}

void StellarisTrainer::note_grad_queue_depth() {
  const double depth = static_cast<double>(queue_.size());
  m_grad_queue_depth_->set(depth);
  if (auto* tr = obs::trace())
    tr->counter(trace_tag_ + "/gradient_queue_depth", engine_.now(), depth);
  if (auto* ts = obs::timeseries())
    ts->sample("trainer.gradient_queue_depth", engine_.now(), depth);
}

void StellarisTrainer::note_pending_trajs() {
  const double depth = static_cast<double>(pending_trajs_.size());
  m_pending_trajs_->set(depth);
  if (auto* tr = obs::trace())
    tr->counter(trace_tag_ + "/pending_trajectories", engine_.now(), depth);
  if (auto* ts = obs::timeseries())
    ts->sample("trainer.pending_trajectories", engine_.now(), depth);
}

TrainResult StellarisTrainer::train() {
  auto* tr = obs::trace();
  obs::ScopedSpan train_span(
      tr, tr ? trainer_track(tr) : 0, "train", "trainer",
      [this] { return engine_.now(); },
      {{"env", cfg_.env_name},
       {"actors", cfg_.num_actors},
       {"rounds", cfg_.rounds}});
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("run_begin", engine_.now())
                    .field("env", cfg_.env_name)
                    .field("algo", algorithm_name(cfg_.algorithm))
                    .field("aggregation",
                           aggregation_mode_name(cfg_.aggregation))
                    .field("actors", cfg_.num_actors)
                    .field("rounds", cfg_.rounds)
                    .field("seed", cfg_.seed)
                    .finish());
  cache_.put(keys::kPolicyLatest, encode_policy(param_fn_->params(), 0));
  // Seed checkpoint so a parameter-function crash before the first periodic
  // checkpoint still has something to restore from.
  if (effective_checkpoint_interval() > 0) {
    cache_.put(keys::kCheckpoint,
               encode_checkpoint(param_fn_->serialize_state()));
    ++checkpoints_written_;
    m_checkpoints_->add();
  }
  if (cfg_.prewarm) {
    platform_->prewarm_learners(learner_limit() + 1);
    platform_->prewarm_actors(cfg_.num_actors);
  }
  for (std::size_t i = 0; i < cfg_.num_actors; ++i) launch_actor(i);
  engine_.run();
  // Reap any bodies abandoned by the fault plane (killed attempts whose
  // results were discarded) before tearing state down.
  driver_->drain();

  // ---- finalize telemetry ----------------------------------------------------
  result_.total_time_s = engine_.now();
  const auto& costs = platform_->costs();
  result_.learner_cost_usd = costs.cost(serverless::FnKind::kLearner);
  result_.actor_cost_usd = costs.cost(serverless::FnKind::kActor);
  result_.parameter_cost_usd = costs.cost(serverless::FnKind::kParameter);
  result_.total_cost_usd = costs.total_cost();
  result_.gpu_utilization = platform_->gpu_utilization();
  result_.learner_busy_s =
      costs.busy_seconds(serverless::FnKind::kLearner);
  result_.cold_starts = platform_->learner_cold_starts();
  result_.warm_starts = platform_->learner_warm_starts();
  result_.learner_invocations =
      costs.invocations(serverless::FnKind::kLearner);
  result_.staleness_samples = param_fn_->staleness_history();
  result_.delta_max = schedule_.delta_max();

  // Fault-plane telemetry (all zero when no faults were configured).
  if (injector_) {
    result_.faults.crashes = injector_->crashes_injected();
    result_.faults.vm_reclaims = injector_->reclaims_fired();
    result_.faults.stragglers = injector_->stragglers_injected();
    result_.faults.cache_faults = injector_->cache_faults_injected();
    result_.faults.cache_delays = injector_->cache_delays_injected();
  }
  result_.faults.failed_invocations = costs.total_failed_invocations();
  result_.faults.retries = platform_->retries();
  result_.faults.giveups = platform_->giveups();
  result_.faults.checkpoints = checkpoints_written_;
  result_.faults.restores = restores_;
  result_.faults.wasted_cost_usd = costs.total_wasted_cost();
  result_.faults.wasted_seconds =
      costs.wasted_seconds(serverless::FnKind::kLearner) +
      costs.wasted_seconds(serverless::FnKind::kParameter) +
      costs.wasted_seconds(serverless::FnKind::kActor);
  result_.faults.retry_wait_s = retry_wait_accum_;

  std::vector<double> evaluated;
  for (const auto& r : result_.rounds)
    if (r.evaluated) evaluated.push_back(r.reward);
  if (!evaluated.empty()) {
    result_.best_reward =
        *std::max_element(evaluated.begin(), evaluated.end());
    // Final reward = mean over the last 20% of evaluations, as a robust
    // "final training quality" statistic.
    const std::size_t tail =
        std::max<std::size_t>(1, evaluated.size() / 5);
    double sum = 0.0;
    for (std::size_t i = evaluated.size() - tail; i < evaluated.size(); ++i)
      sum += evaluated[i];
    result_.final_reward = sum / static_cast<double>(tail);
  }
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("run_end", engine_.now())
                    .field("rounds", result_.rounds.size())
                    .field("total_cost_usd", result_.total_cost_usd)
                    .field("wasted_cost_usd", result_.faults.wasted_cost_usd)
                    .field("failed_invocations",
                           result_.faults.failed_invocations)
                    .field("retries", result_.faults.retries)
                    .field("giveups", result_.faults.giveups)
                    .field("final_reward", result_.final_reward)
                    .finish());
  return std::move(result_);
}

void StellarisTrainer::launch_actor(std::size_t actor_idx) {
  if (done_) return;
  auto pulled = std::make_shared<PolicyRef>();
  auto body_out = std::make_shared<std::shared_ptr<ActorBodyResult>>();

  serverless::ServerlessPlatform::InvokeOptions opts;
  opts.kind = serverless::FnKind::kActor;
  opts.ledger_id = next_lid_++;
  opts.compute_s = cfg_.latency.actor_sample_s(
      cfg_.horizon * cfg_.envs_per_actor, env_spec_.obs.image);
  opts.payload_in_bytes = param_fn_->param_dim() * sizeof(float);
  opts.payload_out_bytes = cfg_.horizon * cfg_.envs_per_actor *
                           (env_spec_.obs.flat_dim + 8) * sizeof(float);
  opts.tier = serverless::DataTier::kCache;
  opts.span_name = "actor_sampling";
  // Step ①: pull the latest policy when the actor starts. Fires once per
  // retry attempt, so a re-invoked actor samples under a FRESH snapshot.
  opts.on_start = [this, pulled](double) { *pulled = latest_policy(); };
  // Body: real sampling under the snapshot policy, on whichever thread the
  // driver provides. Inputs (policy snapshot, RNG key) are captured here on
  // the engine thread; the body touches only its leased context, the
  // stateful Actor (serialized by the per-actor `after` chain), and its own
  // result box — never the engine, cache, or ledger (DESIGN.md §14).
  opts.spawn_body = [this, actor_idx, pulled, body_out,
                     lid = opts.ledger_id](std::size_t attempt)
      -> sim::Driver::Job {
    const PolicyRef snapshot = *pulled;
    auto out = std::make_shared<ActorBodyResult>();
    *body_out = out;
    const std::uint64_t stream =
        sim::invocation_stream(cfg_.seed, lid, attempt);
    auto job = engine_.driver().submit(
        [this, actor_idx, snapshot, out, stream] {
          auto ctx = ctx_pool_->lease();
          ctx->model.set_flat_params(snapshot->params);
          Rng inv_rng(stream);
          out->batch = actors_[actor_idx]->sample(ctx->model, ctx->vec_scratch,
                                                  cfg_.horizon,
                                                  snapshot->version, inv_rng);
          out->bytes = out->batch.serialize();
        },
        actor_chain_[actor_idx]);
    actor_chain_[actor_idx] = job;
    return job;
  };
  platform_->invoke_retrying(
      opts, cfg_.retry,
      [this, actor_idx, lid = opts.ledger_id, pulled,
       body_out](const auto& r) {
        on_actor_complete(actor_idx, lid, pulled, body_out, r);
      });
}

void StellarisTrainer::on_actor_complete(
    std::size_t actor_idx, std::uint64_t lid, const PolicyPull& pulled,
    const BodyBox<ActorBodyResult>& body_out,
    const serverless::ServerlessPlatform::InvokeResult& r) {
  retry_wait_accum_ += r.retry_wait_s;
  if (!r.ok) {
    // Retry chain exhausted: the sampled work is lost. The actor itself is
    // stateless, so just launch a fresh invocation chain.
    LOG_DEBUG << "actor " << actor_idx << " gave up ("
              << fault::error_kind_name(r.error) << " after " << r.attempts
              << " attempts); relaunching";
    if (!done_) launch_actor(actor_idx);
    return;
  }
  result_.breakdown.actor_sample_s += r.compute_s + r.start_latency_s;
  result_.breakdown.data_load_s += r.transfer_s;

  // Merge section: the platform joined the body before this callback, so
  // the settling attempt's outputs are ready in its box.
  const PolicySnapshot& snapshot = **pulled;
  ActorBodyResult& body = **body_out;
  const std::uint64_t traj_id = next_traj_id_++;
  std::vector<std::uint8_t> bytes = std::move(body.bytes);
  // GPU data loader (§V-B): start the cache→GPU pre-load immediately so the
  // transfer overlaps learner queueing and startup.
  traj_loader_ids_[traj_id] =
      data_loader_->on_trajectory(engine_.now(), bytes.size());
  if (auto* tr = obs::trace())
    tr->instant(trainer_track(tr), "traj_published", "trainer", engine_.now(),
                {{"traj_id", traj_id},
                 {"actor", actor_idx},
                 {"policy_version", snapshot.version}});
  const std::size_t traj_bytes = bytes.size();
  cache_.put(keys::trajectory(traj_id), std::move(bytes));
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("traj", engine_.now())
                    .field("traj_id", traj_id)
                    .field("actor", actor_idx)
                    .field("inv", lid)
                    .field("policy_version", snapshot.version)
                    .field("bytes", traj_bytes)
                    .finish());
  cache_.sample_depth(engine_.now());
  pending_trajs_.push_back(traj_id);
  note_pending_trajs();
  maybe_launch_learner();

  // Continuous sampling with backpressure: serverless actors are
  // event-driven, so when trajectories already outnumber what the learner
  // fleet can consume, the actor is not re-invoked until demand returns
  // (the paper's "appropriate number of functions according to demand").
  if (pending_trajs_.size() >= 2 * learner_limit() * cfg_.trajs_per_learner)
    paused_actors_.push_back(actor_idx);
  else
    launch_actor(actor_idx);
}

bool StellarisTrainer::ssp_blocks_launch() const {
  if (cfg_.aggregation != AggregationMode::kSsp) return false;
  if (inflight_pulled_versions_.empty()) return false;
  const std::uint64_t slowest = *inflight_pulled_versions_.begin();
  return static_cast<double>(param_fn_->version() - slowest) > cfg_.ssp_bound;
}

void StellarisTrainer::maybe_launch_learner() {
  // d = 0 (forced synchronization): one learner cohort at a time — no new
  // launches while gradients await the barrier or an update is in flight.
  const bool sync_mode = cfg_.aggregation == AggregationMode::kStellaris &&
                         schedule_.calibrated() && cfg_.decay_d == 0.0;
  while (!done_ && active_learners_ < learner_limit() &&
         pending_trajs_.size() >= cfg_.trajs_per_learner &&
         !ssp_blocks_launch() &&
         !(sync_mode && (param_fn_busy_ || !queue_.empty()))) {
    std::vector<std::uint64_t> traj_ids;
    std::size_t batch_timesteps = 0;
    double preload_wait_s = 0.0;
    for (std::size_t i = 0; i < cfg_.trajs_per_learner; ++i) {
      traj_ids.push_back(pending_trajs_.front());
      pending_trajs_.pop_front();
    }
    note_pending_trajs();
    for (std::uint64_t id : traj_ids) {
      batch_timesteps += cfg_.horizon * cfg_.envs_per_actor;
      // The data loader has been pre-loading this batch since the actor
      // published it; the learner only pays the residual wait.
      auto it = traj_loader_ids_.find(id);
      if (it != traj_loader_ids_.end()) {
        preload_wait_s = std::max(
            preload_wait_s,
            data_loader_->learner_wait_s(it->second, engine_.now()));
        traj_loader_ids_.erase(it);
      }
    }
    result_.breakdown.data_load_s += preload_wait_s;
    ++active_learners_;
    const std::uint64_t learner_id = next_learner_id_++;
    auto pulled = std::make_shared<PolicyRef>();

    serverless::ServerlessPlatform::InvokeOptions opts;
    opts.kind = serverless::FnKind::kLearner;
    opts.ledger_id = next_lid_++;
    if (auto* led = obs::ledger())
      led->append(obs::LedgerEvent("learner_claim", engine_.now())
                      .field("learner_id", learner_id)
                      .field("lid", opts.ledger_id)
                      .raw("trajs", obs::render_id_array(traj_ids))
                      .finish());
    opts.compute_s = preload_wait_s +
                     cfg_.latency.learner_compute_s(
                         batch_timesteps, param_fn_->param_dim(),
                         cfg_.cluster.per_slot_tflops());
    opts.payload_in_bytes = param_fn_->param_dim() * sizeof(float);
    opts.payload_out_bytes = param_fn_->param_dim() * sizeof(float);
    opts.tier = serverless::DataTier::kCache;
    opts.span_name = "learner_compute";
    // Step ②: the learner pulls the latest policy at container start. Under
    // retries this fires once per attempt; the previous attempt's entry in
    // the in-flight version multiset must be withdrawn before the fresh
    // snapshot's version is inserted, or SSP gating would track ghosts.
    auto inserted = std::make_shared<std::optional<std::uint64_t>>();
    opts.on_start = [this, pulled, inserted](double) {
      if (inserted->has_value()) {
        auto it = inflight_pulled_versions_.find(**inserted);
        if (it != inflight_pulled_versions_.end())
          inflight_pulled_versions_.erase(it);
      }
      *pulled = latest_policy();
      inflight_pulled_versions_.insert((*pulled)->version);
      *inserted = (*pulled)->version;
    };
    // Body: the real gradient computation. Captured on the engine thread at
    // dispatch (= container start): the pulled policy, the IMPACT target
    // published at that instant, and refcounted views of the trajectory
    // payloads (the views outlive the cache erase at merge time). The body
    // itself touches only its leased context and its result box.
    auto body_out = std::make_shared<std::shared_ptr<LearnerBodyResult>>();
    opts.spawn_body = [this, pulled, body_out,
                       traj_ids](std::size_t) -> sim::Driver::Job {
      const PolicyRef snapshot = *pulled;
      auto target = target_params_;
      std::vector<cache::CacheValue> payloads;
      payloads.reserve(traj_ids.size());
      for (std::uint64_t id : traj_ids)
        payloads.push_back(cache_.get_or_throw(keys::trajectory(id)));
      auto out = std::make_shared<LearnerBodyResult>();
      *body_out = out;
      return engine_.driver().submit([this, snapshot, target, out,
                                      payloads = std::move(payloads)] {
        auto ctx = ctx_pool_->lease();
        if (ctx->parts.size() < payloads.size())
          ctx->parts.resize(payloads.size());
        for (std::size_t i = 0; i < payloads.size(); ++i)
          rl::SampleBatch::deserialize_into(payloads[i].bytes(),
                                            ctx->parts[i]);
        if (payloads.size() > 1)
          ctx->concat = rl::SampleBatch::concat(
              std::span(ctx->parts.data(), payloads.size()));
        rl::SampleBatch& batch =
            payloads.size() == 1 ? ctx->parts.front() : ctx->concat;
        if (cfg_.algorithm == Algorithm::kImpact)
          ctx->target.set_flat_params(*target);
        out->update = compute_learner_update(cfg_, ctx->model, ctx->target,
                                             snapshot->params, batch);
        out->batch_size = batch.size();
        const std::size_t probe_rows =
            std::min<std::size_t>(batch.obs.dim(0), 32);
        std::vector<float> probe(
            batch.obs.vec().begin(),
            batch.obs.vec().begin() +
                static_cast<std::ptrdiff_t>(probe_rows * batch.obs.dim(1)));
        out->probe_obs =
            Tensor({probe_rows, batch.obs.dim(1)}, std::move(probe));
      });
    };
    platform_->invoke_retrying(
        opts, cfg_.retry,
        [this, learner_id, lid = opts.ledger_id, pulled, body_out,
         traj_ids](const auto& r) {
          on_learner_complete(learner_id, lid, pulled, body_out, traj_ids, r);
        });
  }
  // Demand resumed: re-invoke backpressured actors.
  while (!paused_actors_.empty() &&
         pending_trajs_.size() <
             2 * learner_limit() * cfg_.trajs_per_learner) {
    const std::size_t idx = paused_actors_.back();
    paused_actors_.pop_back();
    launch_actor(idx);
  }
}

void StellarisTrainer::on_learner_complete(
    std::uint64_t learner_id, std::uint64_t lid, const PolicyPull& pulled,
    const BodyBox<LearnerBodyResult>& body_out,
    const std::vector<std::uint64_t>& traj_ids,
    const serverless::ServerlessPlatform::InvokeResult& r) {
  retry_wait_accum_ += r.retry_wait_s;
  {
    const std::uint64_t pulled_version = *pulled ? (*pulled)->version : 0;
    auto it = inflight_pulled_versions_.find(pulled_version);
    if (it != inflight_pulled_versions_.end())
      inflight_pulled_versions_.erase(it);
  }
  --active_learners_;

  if (!r.ok) {
    // Retry chain exhausted: the gradient is lost, but the trajectories are
    // still in the cache — requeue them (front, preserving order) so the
    // next learner slot picks them up.
    LOG_DEBUG << "learner " << learner_id << " gave up ("
              << fault::error_kind_name(r.error) << " after " << r.attempts
              << " attempts); requeueing " << traj_ids.size()
              << " trajectories";
    if (!done_) {
      for (auto it = traj_ids.rbegin(); it != traj_ids.rend(); ++it)
        pending_trajs_.push_front(*it);
      note_pending_trajs();
      if (auto* led = obs::ledger())
        led->append(obs::LedgerEvent("traj_requeue", engine_.now())
                        .field("learner_id", learner_id)
                        .field("lid", lid)
                        .raw("trajs", obs::render_id_array(traj_ids))
                        .finish());
    }
    maybe_launch_learner();
    return;
  }

  result_.breakdown.learner_start_s += r.start_latency_s;
  result_.breakdown.learner_compute_s += r.compute_s;
  result_.breakdown.grad_submit_s += r.transfer_s / 2.0;
  result_.breakdown.data_load_s += r.transfer_s / 2.0;

  if (!done_) {
    // Merge section: the body already computed the learner update (bounded
    // local Adam epochs; the submitted "gradient" is the cumulative
    // parameter delta θ_pulled − θ_local). The platform joined the body
    // before this callback; here we only publish its outputs. The cached
    // trajectory payloads were consumed by the body's captured views, so
    // the entries can be dropped now.
    for (std::uint64_t id : traj_ids) cache_.erase(keys::trajectory(id));
    const PolicySnapshot& snapshot = **pulled;
    LearnerBodyResult& body = **body_out;
    LearnerUpdate& update = body.update;
    const rl::LossStats& stats = update.stats;

    acc_learner_kl_ += stats.kl;
    acc_ratio_ += stats.mean_ratio;
    acc_vloss_ += stats.value_loss;
    acc_entropy_ += stats.entropy;
    ++acc_count_;

    GradientMsg msg;
    msg.grad = std::move(update.delta);
    msg.learner_id = learner_id;
    msg.pulled_version = snapshot.version;
    msg.mean_ratio = stats.mean_ratio;
    msg.batch_size = body.batch_size;
    msg.kl = stats.kl;
    msg.compute_time_s = r.compute_s;
    const std::uint64_t grad_id = next_grad_id_++;
    cache_.put(keys::gradient(grad_id), msg.serialize());
    if (auto* led = obs::ledger())
      led->append(
          obs::LedgerEvent("grad", engine_.now())
              .field("grad_id", grad_id)
              .field("learner_id", learner_id)
              .field("lid", lid)
              .field("pulled_version", msg.pulled_version)
              .field("version_now", param_fn_->version())
              .field("staleness", param_fn_->version() - msg.pulled_version)
              .finish());
    cache_.sample_depth(engine_.now());
    on_gradient(std::move(msg));

    // Keep a probe set of recent observations for the KL tracking.
    probe_obs_ = std::move(body.probe_obs);
  }
  maybe_launch_learner();
}

void StellarisTrainer::on_gradient(GradientMsg msg) {
  if (auto* tr = obs::trace())
    tr->instant(trainer_track(tr), "grad_enqueued", "trainer", engine_.now(),
                {{"learner_id", msg.learner_id},
                 {"pulled_version", msg.pulled_version},
                 {"staleness_now",
                  param_fn_->version() - msg.pulled_version}});
  if (auto* ts = obs::timeseries())
    ts->sample("trainer.staleness", engine_.now(),
               static_cast<double>(param_fn_->version() -
                                   msg.pulled_version));
  queue_.push(std::move(msg), engine_.now());
  note_grad_queue_depth();
  try_aggregate();
}

void StellarisTrainer::try_aggregate() {
  if (done_ || param_fn_busy_ || queue_.empty()) return;

  bool fire = false;
  last_gate_threshold_ = std::numeric_limits<double>::infinity();
  switch (cfg_.aggregation) {
    case AggregationMode::kStellaris: {
      if (!schedule_.calibrated()) {
        fire = true;  // round 0: threshold disabled, pure async
      } else {
        last_gate_threshold_ = schedule_.threshold(rounds_after_calib_);
        if (last_gate_threshold_ <= 0.0) {
          // d = 0: forced synchronization. A gradient in flight when an
          // update lands is always ≥ 1 version stale, so "mean ≤ 0" can
          // never be met with work outstanding — the sync semantics are a
          // barrier: wait for every in-flight learner, then aggregate the
          // whole cohort.
          fire = active_learners_ == 0;
        } else {
          fire = queue_.ready(param_fn_->version(), last_gate_threshold_);
        }
      }
      break;
    }
    case AggregationMode::kSoftsync:
      fire = queue_.size() >= cfg_.softsync_count;
      break;
    case AggregationMode::kSsp:
    case AggregationMode::kPureAsync:
      fire = true;
      break;
  }

  // Liveness fallback: if nothing is in flight that could freshen the
  // queue's mean staleness, aggregate rather than deadlock.
  if (!fire && active_learners_ == 0 && pending_trajs_.empty() &&
      cfg_.num_actors == 0)
    fire = true;

  if (fire) start_aggregation(queue_.drain());
}

void StellarisTrainer::start_aggregation(
    std::vector<GradientQueue::Item> group) {
  param_fn_busy_ = true;
  note_grad_queue_depth();  // queue was just drained into `group`
  serverless::ServerlessPlatform::InvokeOptions opts;
  opts.kind = serverless::FnKind::kParameter;
  opts.ledger_id = next_lid_++;
  if (auto* led = obs::ledger()) {
    std::vector<std::uint64_t> learner_ids;
    learner_ids.reserve(group.size());
    for (const auto& item : group) learner_ids.push_back(item.msg.learner_id);
    obs::LedgerEvent ev("agg_begin", engine_.now());
    ev.field("agg_id", opts.ledger_id)
        .field("version_before", param_fn_->version())
        .raw("group", obs::render_id_array(learner_ids));
    if (std::isfinite(last_gate_threshold_))
      ev.field("gate_threshold", last_gate_threshold_);
    led->append(std::move(ev).finish());
  }
  opts.compute_s =
      cfg_.latency.aggregate_s(group.size(), param_fn_->param_dim());
  opts.payload_in_bytes =
      group.size() * param_fn_->param_dim() * sizeof(float);
  opts.payload_out_bytes = param_fn_->param_dim() * sizeof(float);
  opts.tier = serverless::DataTier::kCache;
  opts.span_name = "gradient_aggregation";
  auto shared_group = std::make_shared<std::vector<GradientQueue::Item>>(
      std::move(group));
  platform_->invoke_retrying(opts, cfg_.retry, [this, shared_group,
                                                agg_lid = opts.ledger_id](
                                                   const auto& r) {
    retry_wait_accum_ += r.retry_wait_s;
    if (!r.ok) {
      recover_param_fn(*shared_group);
      return;
    }
    result_.breakdown.aggregate_s += r.compute_s + r.start_latency_s;
    result_.breakdown.broadcast_s += r.transfer_s;

    // Step ③: real aggregation + policy update.
    const std::uint64_t version_before = param_fn_->version();
    const std::vector<float> before = param_fn_->params();
    const auto stats = param_fn_->aggregate(*shared_group);
    std::vector<double> staleness;
    staleness.reserve(shared_group->size());
    for (const auto& item : *shared_group) {
      staleness.push_back(static_cast<double>(
          version_before - std::min(item.msg.pulled_version, version_before)));
      m_staleness_->observe(staleness.back());
    }
    for (const auto& item : *shared_group)
      cache_.erase(keys::gradient(item.msg.learner_id));
    cache_.put(keys::kPolicyLatest,
               encode_policy(param_fn_->params(), stats.new_version));
    if (auto* led = obs::ledger())
      led->append(obs::LedgerEvent("agg_end", engine_.now())
                      .field("agg_id", agg_lid)
                      .field("version", stats.new_version)
                      .field("group_size", shared_group->size())
                      .field("mean_staleness", stats.mean_staleness)
                      .raw("staleness", obs::render_number_array(staleness))
                      .finish());
    cache_.sample_depth(engine_.now());
    maybe_checkpoint(stats.new_version);

    // IMPACT target network refresh (published as a fresh immutable
    // snapshot; in-flight bodies keep the one they captured at dispatch).
    if (cfg_.algorithm == Algorithm::kImpact) {
      if (++updates_since_target_ >= cfg_.impact.target_update_freq) {
        target_params_ =
            std::make_shared<const std::vector<float>>(param_fn_->params());
        updates_since_target_ = 0;
      }
    }

    // KL of this policy update (Fig. 3(c)).
    double round_kl = 0.0;
    if (!probe_obs_.empty())
      round_kl = policy_update_kl(*probe_model_, before, param_fn_->params(),
                                  probe_obs_);
    result_.update_kls.push_back(round_kl);

    if (!schedule_.calibrated()) {
      schedule_.observe_round0(stats.max_staleness);
      if (++calib_updates_ >= calib_target_) schedule_.finalize_round0();
    } else {
      ++rounds_after_calib_;
    }

    param_fn_busy_ = false;
    finish_round(stats, round_kl);
    try_aggregate();
    maybe_launch_learner();  // sync mode resumes launches after the barrier
  });
}

std::size_t StellarisTrainer::effective_checkpoint_interval() const {
  if (cfg_.checkpoint_interval > 0) return cfg_.checkpoint_interval;
  // Fault plan active: checkpoint every 10 policy updates by default.
  return cfg_.faults.any() ? 10 : 0;
}

void StellarisTrainer::maybe_checkpoint(std::uint64_t new_version) {
  const std::size_t interval = effective_checkpoint_interval();
  if (interval == 0 || new_version % interval != 0) return;
  cache_.put(keys::kCheckpoint, encode_checkpoint(param_fn_->serialize_state()));
  ++checkpoints_written_;
  m_checkpoints_->add();
  if (auto* tr = obs::trace())
    tr->instant(trainer_track(tr), "checkpoint", "fault", engine_.now(),
                {{"version", new_version}});
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("ckpt", engine_.now())
                    .field("version", new_version)
                    .finish());
}

void StellarisTrainer::recover_param_fn(
    const std::vector<GradientQueue::Item>& group) {
  // The aggregation invocation failed past its retry budget: the gradient
  // group is lost. Restore the parameter state from the latest checkpoint
  // (modelling a fresh parameter-function container that must reload its
  // state), republish the policy, and let the pipeline refill the queue.
  LOG_DEBUG << "parameter function failed; dropping " << group.size()
            << " gradients and restoring from checkpoint";
  if (const auto ckpt = cache_.get(keys::kCheckpoint)) {
    param_fn_->restore_state(decode_checkpoint(ckpt->bytes()));
    ++restores_;
    m_restores_->add();
    if (auto* tr = obs::trace())
      tr->instant(trainer_track(tr), "restore", "fault", engine_.now(),
                  {{"version", param_fn_->version()},
                   {"dropped_gradients", group.size()}});
    if (auto* led = obs::ledger())
      led->append(obs::LedgerEvent("restore", engine_.now())
                      .field("version", param_fn_->version())
                      .field("dropped", group.size())
                      .finish());
  }
  cache_.put(keys::kPolicyLatest,
             encode_policy(param_fn_->params(), param_fn_->version()));
  for (const auto& item : group)
    cache_.erase(keys::gradient(item.msg.learner_id));
  param_fn_busy_ = false;
  try_aggregate();
  maybe_launch_learner();
}

void StellarisTrainer::finish_round(
    const ParameterFunction::AggregateStats& stats, double round_kl) {
  RoundRecord rec;
  rec.round = ++rounds_completed_;
  rec.time_s = engine_.now();
  rec.mean_staleness = stats.mean_staleness;
  rec.staleness_threshold = last_gate_threshold_;
  rec.group_size = stats.group_size;
  rec.mean_lr_factor = stats.mean_lr_factor;
  rec.mean_trunc_scale = stats.mean_trunc_scale;
  rec.kl = round_kl;
  if (acc_count_ > 0) {
    const double inv = 1.0 / static_cast<double>(acc_count_);
    rec.learner_kl = acc_learner_kl_ * inv;
    rec.learner_ratio = acc_ratio_ * inv;
    rec.value_loss = acc_vloss_ * inv;
    rec.entropy = acc_entropy_ * inv;
    acc_learner_kl_ = acc_ratio_ = acc_vloss_ = acc_entropy_ = 0.0;
    acc_count_ = 0;
  }
  rec.cost_so_far_usd = platform_->costs().total_cost();
  rec.learner_invocations =
      platform_->costs().invocations(serverless::FnKind::kLearner);

  const bool last = rounds_completed_ >= cfg_.rounds;
  if (last || rounds_completed_ % cfg_.eval_interval == 0) {
    actor_model_->set_flat_params(param_fn_->params());
    rec.reward = rl::evaluate_policy(*eval_env_, *actor_model_,
                                     cfg_.eval_episodes,
                                     cfg_.seed * 104729 + rounds_completed_);
    rec.evaluated = true;
  }

  m_rounds_->add();
  m_round_kl_->set(round_kl);
  m_update_kl_->observe(round_kl);
  if (rec.evaluated) m_round_reward_->set(rec.reward);
  if (auto* tr = obs::trace()) {
    obs::TraceArgs args{{"round", rec.round},
                        {"group_size", rec.group_size},
                        {"mean_staleness", rec.mean_staleness},
                        {"kl", round_kl}};
    if (rec.evaluated) args.emplace_back("reward", rec.reward);
    tr->complete(tr->track(trace_tag_ + "/trainer/rounds"), "round", "round",
                 last_round_end_s_, rec.time_s, std::move(args));
  }
  if (auto* led = obs::ledger()) {
    obs::LedgerEvent ev("round", rec.time_s);
    ev.field("round", rec.round)
        .field("group_size", rec.group_size)
        .field("mean_staleness", rec.mean_staleness)
        .field("kl", rec.kl)
        .field("cost_so_far_usd", rec.cost_so_far_usd);
    if (rec.evaluated) ev.field("reward", rec.reward);
    led->append(std::move(ev).finish());
  }
  last_round_end_s_ = rec.time_s;
  result_.rounds.push_back(rec);

  if (last) {
    done_ = true;
    // Tear down the reclamation arrival process; its pending virtual-time
    // timers would otherwise keep the event loop alive and stretch the
    // measured makespan.
    if (injector_) injector_->disarm();
    LOG_DEBUG << "training done at virtual t=" << engine_.now() << "s, cost=$"
              << platform_->costs().total_cost();
  }
}

TrainResult run_training(const TrainConfig& cfg) {
  StellarisTrainer trainer(cfg);
  return trainer.train();
}

}  // namespace stellaris::core
