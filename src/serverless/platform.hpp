// ServerlessPlatform: the function invoker tying together the virtual-time
// engine, container pools, latency model, and cost meter.
//
// Learner and parameter functions share the GPU slot pool (capacity =
// GPUs × slots-per-GPU); actors get the CPU-core pool. Invocations that
// find the pool full queue FIFO and dispatch as slots free — the queueing
// that makes learner count vs. learning time non-linear in Fig. 3(a).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "serverless/cluster.hpp"
#include "serverless/container_pool.hpp"
#include "serverless/cost_meter.hpp"
#include "serverless/latency_model.hpp"
#include "sim/engine.hpp"

namespace stellaris::serverless {

class ServerlessPlatform {
 public:
  ServerlessPlatform(sim::Engine& engine, ClusterSpec cluster,
                     LatencyModel latency, std::uint64_t seed);

  struct InvokeOptions {
    FnKind kind = FnKind::kLearner;
    double compute_s = 0.0;               ///< pre-jitter compute duration
    std::size_t payload_in_bytes = 0;     ///< input fetched before compute
    std::size_t payload_out_bytes = 0;    ///< output written after compute
    DataTier tier = DataTier::kCache;
    /// Fires when the container is acquired (after any queueing) — the
    /// moment a function "pulls the latest policy" in the paper's workflow.
    std::function<void(double start_time_s)> on_start;
    /// Label for this invocation's trace span (static string); falls back
    /// to the function-kind name when unset.
    const char* span_name = nullptr;
  };

  struct InvokeResult {
    double submit_time_s = 0.0;
    double start_time_s = 0.0;  ///< container acquired (after queueing)
    double end_time_s = 0.0;
    bool cold = false;
    double start_latency_s = 0.0;
    double transfer_s = 0.0;
    double compute_s = 0.0;
    double billed_s = 0.0;
    double cost_usd = 0.0;
  };
  using Callback = std::function<void(const InvokeResult&)>;

  /// Submit an invocation; `cb` fires (in virtual time) at completion.
  void invoke(const InvokeOptions& options, Callback cb);

  /// Pre-warm up to n learner-pool containers (free of charge, per the
  /// paper's cost model).
  std::size_t prewarm_learners(std::size_t n);
  std::size_t prewarm_actors(std::size_t n);

  double now() const { return engine_.now(); }
  sim::Engine& engine() { return engine_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const LatencyModel& latency() const { return latency_; }
  CostMeter& costs() { return costs_; }
  const CostMeter& costs() const { return costs_; }

  /// Busy-slot-seconds accumulated by completed + running learner
  /// invocations up to `now` divided by slots × elapsed: the GPU
  /// utilization metric of Fig. 3(a).
  double gpu_utilization() const;

  std::uint64_t learner_cold_starts() const { return gpu_pool_.cold_starts(); }
  std::uint64_t learner_warm_starts() const { return gpu_pool_.warm_starts(); }
  std::size_t queued(FnKind kind) const;

 private:
  struct Pending {
    InvokeOptions options;
    Callback cb;
    double submit_time;
  };

  ContainerPool& pool_for(FnKind kind);
  std::deque<Pending>& queue_for(FnKind kind);
  double unit_price(FnKind kind) const;
  void try_dispatch(FnKind kind);
  void dispatch(Pending pending);
  void trace_invocation(const Pending& pending, const InvokeResult& result,
                        std::size_t container, double transfer_in_s,
                        double transfer_out_s) const;
  void note_queue_depth(FnKind kind) const;
  static const char* pool_for_name(FnKind kind);

  sim::Engine& engine_;
  ClusterSpec cluster_;
  LatencyModel latency_;
  Rng rng_;
  ContainerPool gpu_pool_;
  ContainerPool actor_pool_;
  std::deque<Pending> gpu_queue_;
  std::deque<Pending> actor_queue_;
  CostMeter costs_;
  double learner_busy_s_ = 0.0;

  // Observability: run-scoped trace tag (captured at construction so all of
  // this platform's tracks group under the owning run) and metric handles.
  std::string trace_tag_;
  obs::Counter* m_invocations_[3];      // indexed by FnKind
  obs::FixedHistogram* m_queue_wait_s_;
  obs::Gauge* m_gpu_queue_depth_;
  obs::Gauge* m_actor_queue_depth_;
};

}  // namespace stellaris::serverless
