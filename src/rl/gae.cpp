#include "rl/gae.hpp"

#include <cmath>

#include "util/error.hpp"

namespace stellaris::rl {

void compute_gae(SampleBatch& batch, double gamma, double lambda) {
  const std::size_t n = batch.size();
  STELLARIS_CHECK_MSG(n > 0, "compute_gae on empty batch");
  STELLARIS_CHECK_MSG(batch.values.numel() == n && batch.dones.numel() == n,
                      "batch field sizes inconsistent");
  batch.advantages = Tensor({n});
  batch.value_targets = Tensor({n});

  // Per independent segment, so concatenated batches never bootstrap across
  // the seam between two actors' rollouts.
  for (const auto& seg : batch.segment_views()) {
    double adv = 0.0;
    double next_value = seg.bootstrap;
    for (std::size_t t = seg.end; t-- > seg.start;) {
      const double not_done = batch.dones[t] > 0.5f ? 0.0 : 1.0;
      const double delta = batch.rewards[t] + gamma * next_value * not_done -
                           batch.values[t];
      adv = delta + gamma * lambda * not_done * adv;
      batch.advantages[t] = static_cast<float>(adv);
      batch.value_targets[t] = static_cast<float>(adv + batch.values[t]);
      next_value = batch.values[t];
    }
  }
}

void normalize_advantages(SampleBatch& batch) {
  const std::size_t n = batch.advantages.numel();
  if (n < 2) return;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += batch.advantages[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = batch.advantages[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);
  const double inv_std = 1.0 / (std::sqrt(var) + 1e-8);
  for (std::size_t i = 0; i < n; ++i)
    batch.advantages[i] =
        static_cast<float>((batch.advantages[i] - mean) * inv_std);
}

}  // namespace stellaris::rl
