#include "obs/obs.hpp"

#include "util/logging.hpp"

namespace stellaris::obs {

namespace detail {
std::atomic<TraceRecorder*> g_trace{nullptr};
std::atomic<LedgerRecorder*> g_ledger{nullptr};
std::atomic<TimeSeriesRecorder*> g_timeseries{nullptr};
std::atomic<std::uint64_t> g_run_counter{0};
}  // namespace detail

void install_trace(TraceRecorder* recorder) {
  detail::g_trace.store(recorder, std::memory_order_release);
}

void install_ledger(LedgerRecorder* recorder) {
  detail::g_ledger.store(recorder, std::memory_order_release);
}

void install_timeseries(TimeSeriesRecorder* recorder) {
  detail::g_timeseries.store(recorder, std::memory_order_release);
}

std::uint64_t begin_run() {
  return detail::g_run_counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t current_run() {
  return detail::g_run_counter.load(std::memory_order_relaxed);
}

std::string run_tag() {
  return "run" +
         std::to_string(detail::g_run_counter.load(std::memory_order_relaxed));
}

std::string run_track(const std::string& suffix) {
  return run_tag() + "/" + suffix;
}

ObsSession::ObsSession(ObsOptions opts) : opts_(std::move(opts)) {
  if (opts_.reset_metrics) metrics().reset();
  if (!opts_.trace_path.empty()) {
    trace_ = std::make_unique<TraceRecorder>();
    install_trace(trace_.get());
  }
  if (!opts_.ledger_path.empty()) {
    ledger_ = std::make_unique<LedgerRecorder>();
    install_ledger(ledger_.get());
  }
  if (!opts_.timeseries_path.empty()) {
    timeseries_ =
        std::make_unique<TimeSeriesRecorder>(opts_.timeseries_window_s);
    install_timeseries(timeseries_.get());
  }
}

ObsSession::~ObsSession() {
  if (trace_) {
    install_trace(nullptr);
    if (trace_->write_file(opts_.trace_path))
      LOG_INFO << "trace written to " << opts_.trace_path << " ("
               << trace_->size() << " events)";
    else
      LOG_ERROR << "failed to write trace to " << opts_.trace_path;
  }
  if (ledger_) {
    install_ledger(nullptr);
    if (ledger_->write_file(opts_.ledger_path))
      LOG_INFO << "run ledger written to " << opts_.ledger_path << " ("
               << ledger_->size() << " events)";
    else
      LOG_ERROR << "failed to write ledger to " << opts_.ledger_path;
  }
  if (timeseries_) {
    install_timeseries(nullptr);
    if (timeseries_->write_file(opts_.timeseries_path))
      LOG_INFO << "time series written to " << opts_.timeseries_path;
    else
      LOG_ERROR << "failed to write time series to "
                << opts_.timeseries_path;
  }
  if (!opts_.metrics_path.empty()) {
    if (metrics().write_file(opts_.metrics_path))
      LOG_INFO << "metrics snapshot written to " << opts_.metrics_path;
    else
      LOG_ERROR << "failed to write metrics to " << opts_.metrics_path;
  }
}

ScopedSpan::ScopedSpan(TraceRecorder* rec, TrackId tid, std::string name,
                       const char* category, std::function<double()> now,
                       TraceArgs args)
    : rec_(rec),
      tid_(tid),
      name_(std::move(name)),
      cat_(category),
      now_(std::move(now)),
      args_(std::move(args)) {
  if (rec_) t0_ = now_();
}

ScopedSpan::~ScopedSpan() {
  if (rec_) rec_->complete(tid_, name_, cat_, t0_, now_(), std::move(args_));
}

void ScopedSpan::arg(TraceArg a) {
  if (rec_) args_.push_back(std::move(a));
}

}  // namespace stellaris::obs
