file(REMOVE_RECURSE
  "CMakeFiles/stellaris_serverless.dir/cluster.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/cluster.cpp.o.d"
  "CMakeFiles/stellaris_serverless.dir/container_pool.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/container_pool.cpp.o.d"
  "CMakeFiles/stellaris_serverless.dir/cost_meter.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/cost_meter.cpp.o.d"
  "CMakeFiles/stellaris_serverless.dir/data_loader.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/data_loader.cpp.o.d"
  "CMakeFiles/stellaris_serverless.dir/latency_model.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/latency_model.cpp.o.d"
  "CMakeFiles/stellaris_serverless.dir/platform.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/platform.cpp.o.d"
  "CMakeFiles/stellaris_serverless.dir/profiler.cpp.o"
  "CMakeFiles/stellaris_serverless.dir/profiler.cpp.o.d"
  "libstellaris_serverless.a"
  "libstellaris_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
