// Configuration for the policy-serving data plane (DESIGN.md §15).
//
// The serving tier is a second, independent consumer of the serverless
// substrate: it loads the versioned policy snapshots the trainer publishes
// into the distributed cache and answers client inference requests at
// production traffic rates — batched, autoscaled, admission-controlled, and
// canary-rolled — entirely on the virtual clock, so a (config, seed) pair
// replays bit-identically under either execution driver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "serverless/latency_model.hpp"
#include "sim/driver.hpp"

namespace stellaris::serve {

/// Dynamic-batching cutoffs (TorchBeast-style batched inference): a lane
/// dispatches when it reaches `max_batch` requests, or when its oldest
/// request has waited `max_wait_s` of virtual time — whichever comes first.
struct BatchConfig {
  std::size_t max_batch = 32;
  double max_wait_s = 0.002;
};

/// Queue-depth autoscaling of the serving containers. Scale-up is immediate
/// (queues melt fastest when met early); scale-down steps one worker at a
/// time after `scale_down_idle_evals` consecutive low-load evaluations, so
/// a burst's trailing edge does not thrash the pool.
struct AutoscaleConfig {
  std::size_t min_workers = 1;
  std::size_t max_workers = 8;
  double eval_period_s = 0.25;
  /// Desired (queued + in-flight) requests per active worker.
  double queue_per_worker = 48.0;
  std::size_t scale_down_idle_evals = 8;
};

/// Overload admission control: arrivals beyond `max_queue` waiting requests
/// for the tenant are rejected at the door (cheap), instead of queuing into
/// latencies no client would wait for.
struct AdmissionConfig {
  std::size_t max_queue = 2048;
};

/// Canary rollout policy: a fraction of arrivals is assigned the canary
/// version; every `eval_period_s` the controller compares the canary arm
/// against the stable arm once it has `min_window_requests` canary samples.
/// A p99-latency-SLO breach or value-drift regression rolls back
/// immediately; `healthy_windows_to_promote` consecutive healthy windows
/// promote the canary to stable.
struct RolloutConfig {
  double eval_period_s = 5.0;
  std::size_t min_window_requests = 50;
  std::size_t healthy_windows_to_promote = 3;
  double slo_p99_s = 0.080;
  /// Max |canary value mean − stable value mean| / max(|stable|, 1) before
  /// the canary is declared drifted (the serving-side reward-drift proxy).
  double max_value_drift = 0.5;
};

/// Traffic shapes over the virtual clock.
enum class TrafficMode {
  kOpenPoisson,  ///< open loop: Poisson arrivals at rate_per_s
  kClosedLoop,   ///< closed loop: `concurrency` clients with think time
};

struct TrafficConfig {
  TrafficMode mode = TrafficMode::kOpenPoisson;
  double rate_per_s = 100.0;
  /// Optional burst phase (open loop): arrivals run at `burst_rate_per_s`
  /// inside [burst_start_s, burst_end_s). 0 disables the burst.
  double burst_rate_per_s = 0.0;
  double burst_start_s = 0.0;
  double burst_end_s = 0.0;
  /// Closed loop: concurrent clients and mean exponential think time.
  std::size_t concurrency = 64;
  double think_time_s = 0.050;
  /// Arrivals stop after this much virtual time; in-flight work drains.
  double duration_s = 60.0;
};

/// One tenant: a policy signature (obs/action space + width) plus its own
/// batching, admission, rollout, and traffic settings.
struct TenantConfig {
  std::string name = "tenant";
  std::size_t obs_dim = 11;
  std::size_t act_dim = 3;
  bool discrete = false;
  std::size_t hidden = 32;  ///< MLP width of the served network
  /// Stable policy version clients start on (published before run()).
  std::uint64_t initial_version = 1;
  BatchConfig batch;
  AdmissionConfig admission;
  RolloutConfig rollout;
  TrafficConfig traffic;
};

struct ServeConfig {
  std::vector<TenantConfig> tenants;
  /// Container-pool capacity for serving workers; autoscaling moves the
  /// ACTIVE worker count within [min_workers, max_workers] ⊆ [1, capacity].
  std::size_t worker_capacity = 16;
  /// $/s of one serving container; 0 → regular_small actor-core price.
  double unit_price_per_s = 0.0;
  AutoscaleConfig autoscale;
  serverless::LatencyModel latency;
  fault::FaultPlan faults;
  std::uint64_t seed = 42;
  sim::DriverKind driver = sim::DriverKind::kVirtual;
  std::size_t driver_threads = 0;
  /// Injectable hardware-thread count for the kernel thread-budget clamp
  /// (ops::apply_driver_thread_budget); 0 queries the real machine.
  std::size_t hardware_threads = 0;
};

}  // namespace stellaris::serve
