#include "cache/distributed_cache.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace stellaris::cache {

DistributedCache::DistributedCache() {
  auto& m = obs::metrics();
  m_puts_ = &m.counter("cache.puts");
  m_gets_ = &m.counter("cache.gets");
  m_hits_ = &m.counter("cache.hits");
  m_misses_ = &m.counter("cache.misses");
  m_erases_ = &m.counter("cache.erases");
  m_bytes_written_ = &m.counter("cache.bytes_written");
  m_bytes_read_ = &m.counter("cache.bytes_read");
  m_blocked_timeouts_ = &m.counter("cache.blocked_read_timeouts");
  // Explicitly real-time (wall-clock) debug metric: how long real driver
  // threads sat in get_blocking. Never feeds back into virtual-time
  // results; see the header comment on the real-time get_blocking.
  m_blocked_wait_real_ms_ =
      &m.histogram("cache.blocked_read_wait_real_ms", 0.0, 500.0, 100);
  m_resident_bytes_ = &m.gauge("cache.resident_bytes");
  m_async_waits_ = &m.counter("cache.async_waits");
  m_async_timeouts_ = &m.counter("cache.async_timeouts");
}

CacheValue DistributedCache::read_entry_locked(const Entry& entry) {
  ++stats_.hits;
  m_hits_->add();
  stats_.bytes_read += entry.data.size();
  m_bytes_read_->add(entry.data.size());
  return CacheValue{entry.data, entry.version};
}

const DistributedCache::Entry* DistributedCache::find_ready_locked(
    const std::string& key, std::uint64_t min_version) const {
  auto it = store_.find(key);
  if (it == store_.end() || it->second.version <= min_version) return nullptr;
  return &it->second;
}

std::uint64_t DistributedCache::put(const std::string& key, Bytes value) {
  std::uint64_t new_version = 0;
  // Async waiters this put satisfies; their callbacks are scheduled (not
  // run) outside the lock, as fresh events at the current virtual time.
  struct Ready {
    sim::Engine* engine;
    AsyncCallback cb;
    CacheValue value;
  };
  std::vector<Ready> ready;
  {
    MutexLock lock(mu_);
    auto& entry = store_[key];
    resident_bytes_ -= entry.data.size();
    resident_bytes_ += value.size();
    stats_.bytes_written += value.size();
    ++stats_.puts;
    m_puts_->add();
    m_bytes_written_->add(value.size());
    m_resident_bytes_->set(static_cast<double>(resident_bytes_));
    entry.data = std::move(value);
    new_version = ++entry.version;
    for (auto it = waiters_.begin(); it != waiters_.end();) {
      if (it->key == key && new_version > it->min_version) {
        if (it->deadline) *it->deadline = true;
        ready.push_back(
            {it->engine, std::move(it->cb), read_entry_locked(entry)});
        it = waiters_.erase(it);
      } else {
        ++it;
      }
    }
  }
  cv_.notify_all();
  for (auto& r : ready)
    r.engine->schedule_after(
        0.0, [cb = std::move(r.cb), v = std::move(r.value)]() mutable {
          cb(std::move(v));
        });
  return new_version;
}

std::optional<CacheValue> DistributedCache::get(const std::string& key) const {
  MutexLock lock(mu_);
  ++stats_.gets;
  m_gets_->add();
  auto it = store_.find(key);
  if (it == store_.end()) {
    ++stats_.misses;
    m_misses_->add();
    return std::nullopt;
  }
  ++stats_.hits;
  m_hits_->add();
  stats_.bytes_read += it->second.data.size();
  m_bytes_read_->add(it->second.data.size());
  return CacheValue{it->second.data, it->second.version};
}

CacheValue DistributedCache::get_or_throw(const std::string& key) const {
  auto v = get(key);
  if (!v) {
    LOG_ERROR << "cache miss for required key: " << key;
    throw CacheError("cache miss for required key: " + key);
  }
  return std::move(*v);
}

std::optional<CacheValue> DistributedCache::get_blocking(
    const std::string& key, std::uint64_t min_version,
    std::chrono::milliseconds timeout) {
  // Real-concurrency path: this thread actually sleeps, so the wait is
  // intentionally measured against the wall clock and recorded under an
  // explicitly real-time debug metric. Nothing result-affecting depends on
  // it; the virtual-time overload below handles simulation callers.
  // lint:wall-clock-ok — measures genuine thread blocking time
  const auto wait_begin = std::chrono::steady_clock::now();
  const auto deadline = wait_begin + timeout;
  std::optional<CacheValue> result;
  double waited_ms = 0.0;
  {
    MutexLock lock(mu_);
    const Entry* e = find_ready_locked(key, min_version);
    while (e == nullptr) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
        e = find_ready_locked(key, min_version);  // final re-check
        break;
      }
      e = find_ready_locked(key, min_version);
    }
    // Real blocking time for the debug histogram.
    const auto wait_end = std::chrono::steady_clock::now();  // lint:wall-clock-ok
    waited_ms =
        std::chrono::duration<double, std::milli>(wait_end - wait_begin)
            .count();
    m_blocked_wait_real_ms_->observe(waited_ms);
    ++stats_.gets;
    m_gets_->add();
    if (e != nullptr) {
      result = read_entry_locked(*e);
    } else {
      ++stats_.misses;
      m_misses_->add();
      m_blocked_timeouts_->add();
    }
  }
  if (!result)
    LOG_DEBUG << "blocking read timed out after " << waited_ms
              << "ms: key=" << key << " min_version=" << min_version;
  return result;
}

std::optional<CacheValue> DistributedCache::get_blocking(
    const std::string& key, std::uint64_t min_version, sim::Engine& engine,
    double timeout_s) {
  MutexLock lock(mu_);
  ++stats_.gets;
  m_gets_->add();
  if (const Entry* e = find_ready_locked(key, min_version))
    return read_entry_locked(*e);
  // Single-threaded event loop: nothing can publish the key while we
  // "wait", so an unsatisfied read is a deterministic timeout.
  ++stats_.misses;
  m_misses_->add();
  m_blocked_timeouts_->add();
  LOG_DEBUG << "virtual blocking read unsatisfied: key=" << key
            << " min_version=" << min_version << " (deadline would be t="
            << engine.now() + timeout_s << ")";
  return std::nullopt;
}

void DistributedCache::get_async(const std::string& key,
                                 std::uint64_t min_version,
                                 sim::Engine& engine, double timeout_s,
                                 AsyncCallback cb) {
  m_async_waits_->add();
  MutexLock lock(mu_);
  ++stats_.gets;
  m_gets_->add();
  if (const Entry* e = find_ready_locked(key, min_version)) {
    CacheValue v = read_entry_locked(*e);
    engine.schedule_after(
        0.0, [cb = std::move(cb), v = std::move(v)]() mutable {
          cb(std::move(v));
        });
    return;
  }
  Waiter w;
  w.id = next_waiter_id_++;
  w.key = key;
  w.min_version = min_version;
  w.engine = &engine;
  w.cb = std::move(cb);
  if (timeout_s > 0.0) {
    const std::uint64_t id = w.id;
    w.deadline = engine.schedule_cancellable_after(
        timeout_s, [this, id] { expire_waiter(id); });
  }
  waiters_.push_back(std::move(w));
}

void DistributedCache::expire_waiter(std::uint64_t id) {
  AsyncCallback cb;
  {
    MutexLock lock(mu_);
    auto it = waiters_.begin();
    for (; it != waiters_.end(); ++it)
      if (it->id == id) break;
    if (it == waiters_.end()) return;  // already satisfied or cleared
    cb = std::move(it->cb);
    ++stats_.misses;
    m_misses_->add();
    m_async_timeouts_->add();
    LOG_DEBUG << "async cache wait timed out: key=" << it->key
              << " min_version=" << it->min_version;
    waiters_.erase(it);
  }
  cb(std::nullopt);
}

std::size_t DistributedCache::pending_waiters() const {
  MutexLock lock(mu_);
  return waiters_.size();
}

bool DistributedCache::contains(const std::string& key) const {
  MutexLock lock(mu_);
  return store_.count(key) > 0;
}

std::uint64_t DistributedCache::version(const std::string& key) const {
  MutexLock lock(mu_);
  auto it = store_.find(key);
  return it == store_.end() ? 0 : it->second.version;
}

bool DistributedCache::erase(const std::string& key) {
  MutexLock lock(mu_);
  auto it = store_.find(key);
  if (it == store_.end()) return false;
  resident_bytes_ -= it->second.data.size();
  ++stats_.erases;
  m_erases_->add();
  m_resident_bytes_->set(static_cast<double>(resident_bytes_));
  store_.erase(it);
  return true;
}

std::vector<std::string> DistributedCache::keys_with_prefix(
    const std::string& prefix) const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::size_t DistributedCache::erase_prefix(const std::string& prefix) {
  std::size_t removed = 0;
  {
    MutexLock lock(mu_);
    auto it = store_.lower_bound(prefix);
    while (it != store_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0) {
      resident_bytes_ -= it->second.data.size();
      ++stats_.erases;
      m_erases_->add();
      it = store_.erase(it);
      ++removed;
    }
    m_resident_bytes_->set(static_cast<double>(resident_bytes_));
  }
  if (removed > 0)
    LOG_DEBUG << "erased " << removed << " keys with prefix " << prefix;
  return removed;
}

std::size_t DistributedCache::num_keys() const {
  MutexLock lock(mu_);
  return store_.size();
}

std::size_t DistributedCache::resident_bytes() const {
  MutexLock lock(mu_);
  return resident_bytes_;
}

CacheStats DistributedCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void DistributedCache::reset_stats() {
  MutexLock lock(mu_);
  stats_ = CacheStats{};
}

void DistributedCache::clear() {
  std::size_t dropped = 0;
  {
    MutexLock lock(mu_);
    dropped = store_.size();
    store_.clear();
    resident_bytes_ = 0;
    m_resident_bytes_->set(0.0);
    for (auto& w : waiters_)
      if (w.deadline) *w.deadline = true;
    waiters_.clear();
  }
  if (dropped > 0) LOG_DEBUG << "cache cleared (" << dropped << " keys)";
}

}  // namespace stellaris::cache
