// Offline analysis of a Stellaris run ledger (obs/ledger.hpp JSONL).
//
// Consumes the event stream a training run emitted under --ledger-out= and
// reconstructs, per run:
//
//  - the **critical-path breakdown**: every instant of virtual run time
//    [0, t_end] is attributed to exactly one stage by a priority sweep
//    (aggregate > aggregate_wait > learn > cache_wait > rollout > idle),
//    so the per-stage times sum to the total virtual run time (±float
//    rounding from the telescoped interval sum);
//  - **p50/p99 staleness per policy version** from the aggregation events'
//    per-gradient staleness lists (exact nearest-rank quantiles);
//  - **straggler identification**: invocations flagged by the fault plane
//    (straggler_mult) plus statistical outliers whose compute time exceeds
//    `straggler_factor` × the median of their function kind;
//  - **wasted-cost attribution**: spend and billed seconds of failed
//    invocations grouped by error kind, matching the fault subsystem's
//    CostMeter counters.
//
// The stage priority mirrors the pipeline's dependency order: while an
// aggregation runs nothing downstream can proceed (aggregate); gradients
// waiting in the queue mean learning finished but the gate holds the
// update back (aggregate_wait); a learner in flight is learning (learn);
// published-but-unclaimed trajectories are waiting for a learner slot
// (cache_wait); otherwise in-flight actors are rolling out (rollout).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stellaris::report {

/// Virtual-time occupancy per pipeline stage; fields sum to `total`.
struct StageBreakdown {
  double rollout = 0.0;
  double cache_wait = 0.0;
  double learn = 0.0;
  double aggregate_wait = 0.0;
  double aggregate = 0.0;
  double idle = 0.0;
  double total = 0.0;

  double sum() const {
    return rollout + cache_wait + learn + aggregate_wait + aggregate + idle;
  }
};

/// Staleness distribution of the gradient group that produced `version`.
struct StalenessByVersion {
  std::uint64_t version = 0;
  std::size_t count = 0;
  double p50 = 0.0;  ///< nearest-rank
  double p99 = 0.0;  ///< nearest-rank
  double mean = 0.0;
  double max = 0.0;
};

struct Straggler {
  std::uint64_t lid = 0;  ///< invocation ledger id (0 if unassigned)
  std::string kind;
  double compute_s = 0.0;
  double ratio = 0.0;    ///< compute_s / median compute_s of this kind
  bool injected = false;  ///< flagged by the fault plane (straggler_mult)
};

/// Failed-invocation spend grouped by error kind.
struct WastedCost {
  std::string error;
  std::uint64_t count = 0;
  double billed_s = 0.0;
  double cost_usd = 0.0;
};

/// Per-tenant serving-tier rollup from the `serve_*` event stream
/// (DESIGN.md §15). Latency quantiles are nearest-rank over the per-request
/// latencies recorded in each batch's `lat` array.
struct ServeTenantSummary {
  std::string tenant;
  std::uint64_t completed = 0;  ///< requests in batches that settled ok
  std::uint64_t failed = 0;     ///< requests in crashed batches
  std::uint64_t rejected = 0;   ///< shed by admission control
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
  double cost_usd = 0.0;
  std::uint64_t canary_starts = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
};

/// Serving-tier section of a run report; `tenants` empty means the run
/// emitted no serve events (pure training runs skip the section).
struct ServeSummary {
  std::vector<ServeTenantSummary> tenants;  ///< by ascending tenant name
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t peak_workers = 0;
};

struct RunReport {
  std::uint64_t run = 0;
  std::size_t events = 0;
  double t_end = 0.0;  ///< total virtual run time
  StageBreakdown stages;
  std::vector<StalenessByVersion> staleness;  ///< by ascending version
  std::vector<Straggler> stragglers;          ///< by descending ratio
  std::vector<WastedCost> wasted;             ///< by error name
  ServeSummary serve;                         ///< empty for training runs

  // Run totals from the invoke stream.
  std::uint64_t invocations = 0;
  std::uint64_t failed_invocations = 0;
  double total_cost_usd = 0.0;
  double wasted_cost_usd = 0.0;
  double wasted_seconds = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t giveups = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t rounds = 0;

  // Fault / recovery plane.
  std::uint64_t checkpoints = 0;        ///< `ckpt` events
  std::uint64_t restores = 0;           ///< `restore` events
  std::uint64_t dropped_gradients = 0;  ///< summed over restores
  std::uint64_t faults_injected = 0;    ///< `fault_injected` events
};

struct AnalysisOptions {
  /// Statistical straggler threshold: compute_s > factor × kind median.
  double straggler_factor = 2.0;
};

/// Analyze ledger lines (one JSON object per line; blank lines ignored).
/// Returns one report per distinct `run` id, in ascending run order.
/// Throws std::runtime_error on malformed JSON.
std::vector<RunReport> analyze_ledger(const std::vector<std::string>& lines,
                                      const AnalysisOptions& opts = {});

/// Read a JSONL ledger file and analyze it. Throws on I/O or parse errors.
std::vector<RunReport> analyze_ledger_file(const std::string& path,
                                           const AnalysisOptions& opts = {});

/// Human-readable report (the stellaris_report CLI output).
void print_report(std::ostream& os, const RunReport& report);

/// Machine-readable single-object JSON for one run.
void write_report_json(std::ostream& os, const RunReport& report);

}  // namespace stellaris::report
