#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace stellaris {
namespace {

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat rs;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  EXPECT_NEAR(rs.variance(), 37.2, 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.ci95_halfwidth(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(1);
  RunningStat all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsNoop) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  RunningStat small, large;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Ema, BiasCorrectedEarlyValue) {
  Ema ema(0.9);
  ema.add(10.0);
  // With bias correction, the first value should be returned exactly.
  EXPECT_NEAR(ema.value(), 10.0, 1e-9);
}

TEST(Ema, ConvergesToConstant) {
  Ema ema(0.8);
  for (int i = 0; i < 200; ++i) ema.add(5.0);
  EXPECT_NEAR(ema.value(), 5.0, 1e-9);
}

TEST(Ema, TracksTrend) {
  Ema ema(0.5);
  for (int i = 0; i < 50; ++i) ema.add(i);
  EXPECT_GT(ema.value(), 40.0);
  EXPECT_LT(ema.value(), 50.0);
}

TEST(Percentile, KnownValues) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 0.5), Error);
}

TEST(Histogram, CountsAndDensityIntegrateToOne) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i % 10 + 0.5);
  EXPECT_EQ(h.total(), 100u);
  const auto d = h.density();
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i)
    integral += d[i] * (h.bin_hi(i) - h.bin_lo(i));
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, ClampsOutOfRangeToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(2.0, 6.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 4.5);
}

TEST(Histogram, ThrowsOnDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(VectorStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev_of({1.0}), 0.0);
}

// Property: RunningStat mean/variance agree with mean_of/stddev_of for
// random samples of various sizes.
class StatAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StatAgreement, RunningMatchesBatch) {
  Rng rng(GetParam());
  std::vector<double> xs;
  RunningStat rs;
  for (int i = 0; i < GetParam() * 13 + 2; ++i) {
    const double x = rng.normal(1.0, 4.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean_of(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev_of(xs), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatAgreement, ::testing::Values(1, 3, 10, 77));

}  // namespace
}  // namespace stellaris
