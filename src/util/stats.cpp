#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace stellaris {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void Ema::add(double x) {
  acc_ = alpha_ * acc_ + (1.0 - alpha_) * x;
  ++n_;
}

double Ema::value() const {
  if (n_ == 0) return 0.0;
  // Bias correction: divide out the weight mass 1 - alpha^n.
  const double correction = 1.0 - std::pow(alpha_, static_cast<double>(n_));
  return acc_ / correction;
}

double percentile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, q);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  STELLARIS_CHECK_MSG(!sorted.empty(), "percentile of empty sample");
  STELLARIS_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  STELLARIS_CHECK_MSG(hi > lo && bins > 0, "degenerate histogram range");
}

void Histogram::add(double x) {
  auto i = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::bin_center(std::size_t i) const {
  return bin_lo(i) + 0.5 * width_;
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  const double norm = 1.0 / (static_cast<double>(total_) * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    d[i] = static_cast<double>(counts_[i]) * norm;
  return d;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

}  // namespace stellaris
