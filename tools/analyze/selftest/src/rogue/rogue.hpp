// expect: layer-dag
// Failing layer-dag case: the `rogue` layer is not declared in the corpus
// layers.toml — new src/ subsystems must take a place in the DAG. (The
// finding anchors to line 1 of the file.)
#pragma once

namespace stellaris::rogue {
inline int undeclared() { return 0; }
}  // namespace stellaris::rogue
