// Serving-tier bench (DESIGN.md §15): the multi-tenant policy-serving data
// plane under production-shaped traffic — batched inference throughput and
// latency quantiles, autoscaling across a burst, cost per million
// inferences, and the canary rollout controller's promote and auto-rollback
// paths. Three scenarios:
//
//   steady_2tenant    two tenants (continuous + discrete policies), open
//                     Poisson traffic with a mid-run burst on tenant 0 —
//                     the headline: sustained throughput must exceed 1M
//                     requests per simulated hour;
//   canary_promote    a healthy canary takes 30% of traffic and is promoted
//                     after consecutive clean evaluation windows;
//   canary_rollback   the canary is a much heavier model behind the same
//                     API; its p99 breaches the latency SLO and the
//                     controller rolls back automatically.
//
// Every scenario also runs under BOTH execution drivers and hard-asserts
// bit-identical results (value checksums, virtual makespan, cost) — the
// serving tier inherits the capture/body/merge determinism contract.
//
// Flags:
//   --json=<path>        machine-readable results (schema
//                        stellaris-serve-bench-v1)
//   --compare=<path>     baseline JSON; compute wall-clock throughput ratios
//   --max-regress=<x>    fail (exit 1) if any scenario is > x times slower
//   --scale=smoke|bench  scenario length (default bench; smoke for CI)
//   --driver=..., --driver-threads=..., --ledger-out=... etc. as elsewhere
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/serve_engine.hpp"
#include "util/mini_json.hpp"

using namespace stellaris;

namespace {

int g_failures = 0;

void check_bits(double a, double b, const char* scenario, const char* what) {
  if (!(a == b)) {
    std::fprintf(stderr,
                 "FAIL: %s: %s differs across drivers (%.17g != %.17g)\n",
                 scenario, what, a, b);
    ++g_failures;
  }
}

struct Scenario {
  std::string name;
  serve::ServeConfig cfg;
  /// (tenant, version, cost_mult) published before run; v1 per tenant is
  /// implied and published automatically.
  struct Canary {
    std::size_t tenant;
    std::uint64_t version;
    double cost_mult;
    double fraction;
    double at_s;
  };
  std::vector<Canary> canaries;
};

serve::TenantConfig tenant_base(const std::string& name, bool discrete) {
  serve::TenantConfig t;
  t.name = name;
  t.discrete = discrete;
  t.obs_dim = discrete ? 12 : 8;
  t.act_dim = discrete ? 6 : 3;
  t.hidden = 16;
  t.batch.max_batch = 32;
  t.batch.max_wait_s = 0.002;
  return t;
}

Scenario steady_2tenant(bool smoke) {
  Scenario s;
  s.name = "steady_2tenant";
  auto walker = tenant_base("walker", false);
  walker.traffic.rate_per_s = 250.0;
  walker.traffic.duration_s = smoke ? 10.0 : 60.0;
  walker.traffic.burst_rate_per_s = 900.0;
  walker.traffic.burst_start_s = smoke ? 4.0 : 20.0;
  walker.traffic.burst_end_s = smoke ? 6.0 : 30.0;
  auto arcade = tenant_base("arcade", true);
  arcade.traffic.rate_per_s = 150.0;
  arcade.traffic.duration_s = walker.traffic.duration_s;
  s.cfg.tenants = {walker, arcade};
  s.cfg.worker_capacity = 16;
  s.cfg.autoscale.max_workers = 8;
  s.cfg.autoscale.queue_per_worker = 32.0;
  s.cfg.autoscale.eval_period_s = 0.25;
  s.cfg.seed = 42;
  return s;
}

Scenario canary_promote(bool smoke) {
  Scenario s;
  s.name = "canary_promote";
  auto walker = tenant_base("walker", false);
  walker.traffic.rate_per_s = 300.0;
  walker.traffic.duration_s = smoke ? 12.0 : 40.0;
  walker.rollout.eval_period_s = smoke ? 1.0 : 4.0;
  walker.rollout.min_window_requests = 50;
  walker.rollout.healthy_windows_to_promote = 2;
  walker.rollout.slo_p99_s = 0.5;
  walker.rollout.max_value_drift = 1e9;  // healthy canary: only the SLO gates
  s.cfg.tenants = {walker};
  s.cfg.autoscale.max_workers = 4;
  s.cfg.seed = 42;
  s.canaries.push_back({0, 2, 1.0, 0.3, smoke ? 2.0 : 5.0});
  return s;
}

Scenario canary_rollback(bool smoke) {
  Scenario s = canary_promote(smoke);
  s.name = "canary_rollback";
  // The canary is ~40x heavier behind the same API: its compute alone
  // breaks the 60 ms p99 SLO, so the controller must roll back on its own.
  s.cfg.tenants[0].rollout.slo_p99_s = 0.060;
  s.canaries[0].cost_mult = 40.0;
  return s;
}

struct Outcome {
  serve::ServeResult res;
  double wall_s = 0.0;
};

Outcome run_scenario(const Scenario& s, sim::DriverKind kind,
                     std::size_t threads) {
  auto cfg = s.cfg;
  cfg.driver = kind;
  cfg.driver_threads = threads;
  serve::ServeEngine eng(cfg);
  for (std::size_t t = 0; t < cfg.tenants.size(); ++t)
    eng.publish_policy(t, serve::make_policy_params(cfg.tenants[t], 100 + t),
                       cfg.tenants[t].initial_version);
  for (const auto& c : s.canaries) {
    eng.publish_policy(c.tenant,
                       serve::make_policy_params(cfg.tenants[c.tenant],
                                                 200 + c.version),
                       c.version, c.cost_mult);
    eng.schedule_canary(c.tenant, c.version, c.fraction, c.at_s);
  }
  Outcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.res = eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void expect_identical(const serve::ServeResult& a, const serve::ServeResult& b,
                      const char* scenario) {
  check_bits(a.duration_s, b.duration_s, scenario, "duration_s");
  check_bits(a.cost_usd, b.cost_usd, scenario, "cost_usd");
  check_bits(static_cast<double>(a.completed), static_cast<double>(b.completed),
             scenario, "completed");
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    check_bits(a.tenants[t].value_checksum, b.tenants[t].value_checksum,
               scenario, "value_checksum");
    check_bits(a.tenants[t].latency_sum_s, b.tenants[t].latency_sum_s,
               scenario, "latency_sum_s");
    check_bits(a.tenants[t].p99_s, b.tenants[t].p99_s, scenario, "p99_s");
  }
}

struct Entry {
  std::string scenario;
  double wall_s = 0.0;
  double value = 0.0;  ///< 1 / wall_s, like the driver bench baselines
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"stellaris-serve-bench-v1\",\n"
     << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"scenario\": \"%s\", \"wall_s\": %.4f, "
                  "\"value\": %.4f}",
                  entries[i].scenario.c_str(), entries[i].wall_s,
                  entries[i].value);
    os << buf << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

double compare_to_baseline(const std::string& path,
                           const std::vector<Entry>& entries) {
  std::ifstream is(path);
  if (!is.good()) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    ++g_failures;
    return 1.0;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  const minijson::Value root = minijson::parse(ss.str());
  double worst = std::numeric_limits<double>::infinity();
  for (const minijson::Value& e : root.at("entries").arr) {
    const std::string& scenario = e.at("scenario").string();
    const double base = e.at("value").number();
    if (base <= 0.0) continue;
    for (const auto& r : entries) {
      if (r.scenario != scenario) continue;
      const double ratio = r.value / base;
      std::printf("  vs baseline  %-16s %8.2fx\n", scenario.c_str(), ratio);
      worst = std::min(worst, ratio);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  auto session = bench::obs_session_from_args(argc, argv);
  std::string json_out, baseline;
  double max_regress = 0.0;
  bool smoke = false;
  sim::DriverKind driver = sim::DriverKind::kVirtual;
  std::size_t driver_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_out = arg.substr(7);
    else if (arg.rfind("--compare=", 0) == 0) baseline = arg.substr(10);
    else if (arg.rfind("--max-regress=", 0) == 0)
      max_regress = std::stod(arg.substr(14));
    else if (arg == "--scale=smoke") smoke = true;
    else if (arg == "--scale=bench") smoke = false;
    else if (arg.rfind("--driver=", 0) == 0) {
      const auto kind = sim::parse_driver_kind(arg.substr(9));
      if (!kind) {
        std::fprintf(stderr, "unknown --driver=%s (virtual|concurrent)\n",
                     arg.substr(9).c_str());
        return 2;
      }
      driver = *kind;
    } else if (arg.rfind("--driver-threads=", 0) == 0) {
      driver_threads = static_cast<std::size_t>(std::stoul(arg.substr(17)));
    }
  }

  const Scenario scenarios[] = {steady_2tenant(smoke), canary_promote(smoke),
                                canary_rollback(smoke)};

  Table t({"scenario", "tenant", "issued", "completed", "rejected", "failed",
           "mean_batch", "p50_ms", "p99_ms", "p999_ms", "req_per_hour",
           "cost_usd", "cost_per_m_usd", "peak_workers", "promotions",
           "rollbacks"});
  std::vector<Entry> entries;

  for (const auto& s : scenarios) {
    const auto out = run_scenario(s, driver, driver_threads);
    // Cross-driver bit-identity: the scenario must replay exactly under the
    // other driver (4 worker threads exercises real concurrency).
    const auto other = run_scenario(
        s,
        driver == sim::DriverKind::kVirtual ? sim::DriverKind::kConcurrent
                                            : sim::DriverKind::kVirtual,
        4);
    expect_identical(out.res, other.res, s.name.c_str());

    for (const auto& tr : out.res.tenants) {
      t.row()
          .add(s.name)
          .add(tr.name)
          .add(static_cast<std::size_t>(tr.issued))
          .add(static_cast<std::size_t>(tr.completed))
          .add(static_cast<std::size_t>(tr.rejected))
          .add(static_cast<std::size_t>(tr.failed))
          .add(tr.mean_batch, 2)
          .add(tr.p50_s * 1e3, 2)
          .add(tr.p99_s * 1e3, 2)
          .add(tr.p999_s * 1e3, 2)
          .add(out.res.requests_per_hour, 0)
          .add(out.res.cost_usd, 5)
          .add(out.res.cost_per_million, 4)
          .add(out.res.peak_workers)
          .add(static_cast<std::size_t>(tr.promotions))
          .add(static_cast<std::size_t>(tr.rollbacks));
    }
    entries.push_back(
        {s.name, out.wall_s, out.wall_s > 0.0 ? 1.0 / out.wall_s : 0.0});

    if (s.name == "steady_2tenant") {
      if (out.res.requests_per_hour < 1e6) {
        std::fprintf(stderr,
                     "FAIL: steady_2tenant sustains %.0f req/sim-hour "
                     "(need >= 1e6)\n",
                     out.res.requests_per_hour);
        ++g_failures;
      }
    } else if (s.name == "canary_promote") {
      if (out.res.tenants[0].promotions != 1 ||
          out.res.tenants[0].final_stable_version != 2) {
        std::fprintf(stderr, "FAIL: canary_promote did not promote v2\n");
        ++g_failures;
      }
    } else if (s.name == "canary_rollback") {
      if (out.res.tenants[0].rollbacks != 1 ||
          out.res.tenants[0].final_stable_version != 1) {
        std::fprintf(stderr,
                     "FAIL: canary_rollback did not roll back to v1\n");
        ++g_failures;
      }
    }
  }

  t.emit(
      "Serving tier — throughput, latency quantiles, cost, and rollout"
      " decisions (batching amortizes the per-batch floor; the autoscaler"
      " absorbs the burst; the heavier canary is rolled back on its p99)",
      "fig_serve.csv");

  if (!json_out.empty()) {
    write_json(json_out, entries);
    std::printf("wrote %s\n", json_out.c_str());
  }
  if (!baseline.empty() && max_regress > 0.0) {
    const double worst = compare_to_baseline(baseline, entries);
    if (worst * max_regress < 1.0) {
      std::printf("FAIL: worst scenario is %.2fx of baseline (limit %.2fx)\n",
                  worst, 1.0 / max_regress);
      ++g_failures;
    } else {
      std::printf("baseline check passed: worst ratio %.2fx (limit %.2fx)\n",
                  worst, 1.0 / max_regress);
    }
  }

  if (g_failures) {
    std::fprintf(stderr, "fig_serve: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf(
      "fig_serve: OK (>= 1M req/sim-hour, promote + rollback demonstrated,"
      " results bit-identical across drivers)\n");
  return 0;
}
