// StellarisTrainer — the end-to-end asynchronous serverless training loop
// (Fig. 4's workflow):
//
//   ① actors continuously sample trajectories under the latest policy and
//     publish them to the distributed cache;
//   ② learner functions are invoked on demand per available trajectory
//     batch, pull the latest policy at container start, compute real
//     gradients (PPO or IMPACT), and publish GradientMsgs;
//   ③ the parameter function drains its gradient queue when the
//     staleness-aware rule admits it (Eq. 3), aggregates with
//     staleness-modulated learning rates (Eq. 4) and global IS truncation
//     (Eq. 2), and publishes the new policy.
//
// Orchestration (container starts, queueing, transfers, compute durations,
// cost) runs on the virtual-time serverless platform; the numerics
// (sampling, gradients, updates, evaluations) are computed for real, so
// the reward curves are genuine learning curves.
//
// The `aggregation` config switch also drives the Fig. 11(a) ablation
// baselines (Softsync, SSP, pure-async) on identical infrastructure.
#pragma once

#include <deque>
#include <memory>
#include <map>
#include <optional>
#include <set>

#include "cache/distributed_cache.hpp"
#include "core/config.hpp"
#include "core/learner_update.hpp"
#include "core/metrics.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "core/parameter_function.hpp"
#include "core/policy_io.hpp"
#include "core/worker_context.hpp"
#include "rl/actor.hpp"
#include "rl/vec_actor.hpp"
#include "serverless/data_loader.hpp"
#include "serverless/platform.hpp"
#include "sim/driver.hpp"
#include "sim/engine.hpp"

namespace stellaris::core {

class StellarisTrainer {
 public:
  explicit StellarisTrainer(TrainConfig cfg);
  ~StellarisTrainer();

  /// Run the configured number of training rounds; returns full telemetry.
  TrainResult train();

 private:
  struct PolicySnapshot {
    std::vector<float> params;
    std::uint64_t version = 0;
  };
  /// Immutable decoded policy, shared by every in-flight function that
  /// pulled the same `policy/latest` cache version (version-gated pulls:
  /// deserialize once per version, never mutate a published snapshot).
  using PolicyRef = std::shared_ptr<const PolicySnapshot>;
  /// Per-invocation box for the snapshot a container pulled at start.
  /// Each retry attempt re-points it at the then-latest policy.
  using PolicyPull = std::shared_ptr<PolicyRef>;

  /// Outputs an actor invocation body computes on its worker thread,
  /// published into shared state by the merge section (DESIGN.md §14).
  struct ActorBodyResult {
    rl::SampleBatch batch;
    std::vector<std::uint8_t> bytes;  ///< serialized trajectory payload
  };
  /// Outputs of a learner invocation body.
  struct LearnerBodyResult {
    LearnerUpdate update;
    std::size_t batch_size = 0;
    Tensor probe_obs;  ///< first rows of the batch, for the KL probe
  };
  /// A retry chain's output slot: each attempt's spawn re-points the outer
  /// pointer at a fresh result box, so the merge (which runs for the final,
  /// settling attempt) always reads that attempt's outputs.
  template <typename T>
  using BodyBox = std::shared_ptr<std::shared_ptr<T>>;

  void launch_actor(std::size_t actor_idx);
  void on_actor_complete(std::size_t actor_idx, std::uint64_t lid,
                         const PolicyPull& pulled,
                         const BodyBox<ActorBodyResult>& body_out,
                         const serverless::ServerlessPlatform::InvokeResult& r);
  void maybe_launch_learner();
  bool ssp_blocks_launch() const;
  void on_learner_complete(
      std::uint64_t learner_id, std::uint64_t lid, const PolicyPull& pulled,
      const BodyBox<LearnerBodyResult>& body_out,
      const std::vector<std::uint64_t>& traj_ids,
      const serverless::ServerlessPlatform::InvokeResult& r);
  void on_gradient(GradientMsg msg);
  void try_aggregate();
  void start_aggregation(std::vector<GradientQueue::Item> group);
  void finish_round(const ParameterFunction::AggregateStats& stats,
                    double round_kl);
  /// Failed aggregation invocation: restore the parameter state from the
  /// latest checkpoint and drop the lost gradient group.
  void recover_param_fn(const std::vector<GradientQueue::Item>& group);
  /// Periodic checkpoint of the parameter state to the cache.
  void maybe_checkpoint(std::uint64_t new_version);
  std::size_t effective_checkpoint_interval() const;
  /// Pull `policy/latest`, decoding only when the cache entry's version
  /// changed since the previous pull (otherwise the cached decoded
  /// snapshot is shared with the caller).
  PolicyRef latest_policy();
  std::size_t learner_limit() const;
  obs::TrackId trainer_track(obs::TraceRecorder* tr) const;
  void note_grad_queue_depth();
  void note_pending_trajs();

  TrainConfig cfg_;
  envs::EnvSpec env_spec_;
  nn::NetworkSpec net_spec_;

  sim::Engine engine_;
  std::unique_ptr<serverless::ServerlessPlatform> platform_;
  cache::DistributedCache cache_;
  /// Fault plane (null when the plan injects nothing, so zero-fault runs
  /// stay bit-identical to a faultless build).
  std::unique_ptr<fault::FaultInjector> injector_;

  std::unique_ptr<ParameterFunction> param_fn_;
  StalenessSchedule schedule_;
  GradientQueue queue_;

  // Engine-thread scratch models (evaluation and the KL probe only; the
  // invocation bodies lease per-execution WorkerContexts instead).
  std::unique_ptr<nn::ActorCritic> actor_model_;
  std::unique_ptr<nn::ActorCritic> probe_model_;
  /// Scratch pool for invocation bodies (models + batch-ingest buffers).
  std::unique_ptr<WorkerContextPool> ctx_pool_;

  std::vector<std::unique_ptr<rl::VecActor>> actors_;
  std::unique_ptr<envs::Env> eval_env_;
  Rng rng_;

  // Run state.
  bool done_ = false;
  bool param_fn_busy_ = false;
  std::size_t rounds_completed_ = 0;
  std::size_t calib_updates_ = 0;
  std::size_t calib_target_ = 0;
  std::size_t rounds_after_calib_ = 0;
  std::uint64_t next_traj_id_ = 0;
  std::uint64_t next_grad_id_ = 0;
  std::uint64_t next_learner_id_ = 0;
  /// Ledger ids for invocations (actors, learners, parameter fn): one
  /// monotone counter so every `invoke` ledger event is uniquely
  /// addressable by downstream lifecycle events. 0 means "unassigned".
  std::uint64_t next_lid_ = 1;
  std::size_t active_learners_ = 0;
  std::deque<std::uint64_t> pending_trajs_;
  std::vector<std::size_t> paused_actors_;  // backpressured actor indices
  std::unique_ptr<serverless::GpuDataLoader> data_loader_;
  std::map<std::uint64_t, std::uint64_t> traj_loader_ids_;  // traj -> loader
  // Version-gated pull state: last decoded policy snapshot and the cache
  // entry version (put counter) it was decoded from.
  PolicyRef decoded_policy_;
  std::uint64_t decoded_policy_entry_version_ = 0;
  std::multiset<std::uint64_t> inflight_pulled_versions_;  // SSP gating
  /// IMPACT target network, as an immutable shared snapshot: learner
  /// bodies capture the pointer at dispatch, so the target a learner sees
  /// is the one published when its container STARTED — the same virtual
  /// instant under either driver — not whatever is current when the body
  /// happens to execute.
  std::shared_ptr<const std::vector<float>> target_params_;
  std::size_t updates_since_target_ = 0;
  Tensor probe_obs_;
  double last_round_kl_ = 0.0;
  double last_gate_threshold_ = 0.0;  // β_k in force when the group fired
  // Learner-stat accumulators since the previous round record.
  double acc_learner_kl_ = 0.0;
  double acc_ratio_ = 0.0;
  double acc_vloss_ = 0.0;
  double acc_entropy_ = 0.0;
  std::size_t acc_count_ = 0;

  // Fault-recovery bookkeeping.
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t restores_ = 0;
  double retry_wait_accum_ = 0.0;

  // Observability (src/obs): run-scoped trace tag + metric handles.
  std::string trace_tag_;
  obs::FixedHistogram* m_staleness_;
  obs::FixedHistogram* m_update_kl_;
  obs::Gauge* m_grad_queue_depth_;
  obs::Gauge* m_pending_trajs_;
  obs::Counter* m_rounds_;
  obs::Gauge* m_round_kl_;
  obs::Gauge* m_round_reward_;
  obs::Counter* m_checkpoints_;
  obs::Counter* m_restores_;
  obs::Counter* m_policy_decodes_;
  obs::Counter* m_policy_pull_reuses_;
  double last_round_end_s_ = 0.0;

  TrainResult result_;

  /// Per-actor chain slot: the last submitted body for each actor. A new
  /// actor body names it as its `after` predecessor, serializing bodies
  /// that mutate the same stateful Actor/env in dispatch order even when a
  /// reclaim-killed attempt's abandoned body is still running.
  std::vector<sim::Driver::Job> actor_chain_;
  /// The run's execution driver. Declared LAST so destruction drains it
  /// FIRST: any abandoned body still running must finish before the
  /// actors/models/pool it references are torn down.
  std::unique_ptr<sim::Driver> driver_;
};

/// Convenience wrapper: configure + train + return.
TrainResult run_training(const TrainConfig& cfg);

}  // namespace stellaris::core
