# Empty dependencies file for stellaris_core.
# This may be replaced when dependencies are built.
