#include "core/parameter_function.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace stellaris::core {

ParameterFunction::ParameterFunction(std::vector<float> initial_params,
                                     Config cfg)
    : params_(std::move(initial_params)),
      cfg_(cfg),
      optimizer_(nn::make_optimizer(cfg.optimizer, cfg.alpha0)) {
  STELLARIS_CHECK_MSG(!params_.empty(), "empty initial parameters");
}

ParameterFunction::AggregateStats ParameterFunction::aggregate(
    const std::vector<GradientQueue::Item>& group) {
  STELLARIS_CHECK_MSG(!group.empty(), "aggregate of empty group");
  AggregateStats stats;
  stats.group_size = group.size();

  // Eq. 2: global truncation scales from the group's learner-actor ratios.
  std::vector<double> ratios;
  ratios.reserve(group.size());
  for (const auto& item : group) ratios.push_back(item.msg.mean_ratio);
  std::vector<double> scales(group.size(), 1.0);
  if (cfg_.enable_truncation) scales = truncation_scales(ratios, cfg_.rho);

  // Weighted mean gradient with Eq. 4 learning-rate factors.
  std::vector<float> agg(params_.size(), 0.0f);
  double lr_factor_sum = 0.0, trunc_sum = 0.0, staleness_sum = 0.0;
  const double inv_h = 1.0 / static_cast<double>(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto& msg = group[i].msg;
    STELLARIS_CHECK_MSG(msg.grad.size() == params_.size(),
                        "gradient dim mismatch: " << msg.grad.size() << " vs "
                                                  << params_.size());
    STELLARIS_CHECK_MSG(version_ >= msg.pulled_version,
                        "gradient from the future");
    const double staleness =
        static_cast<double>(version_ - msg.pulled_version);
    staleness_sum += staleness;
    stats.max_staleness = std::max(stats.max_staleness, staleness);
    staleness_history_.push_back(staleness);

    // staleness_lr(1, δ, v) is the dimensionless δ^{-1/v} factor; α₀ itself
    // is applied by the optimizer below so Adam's moment bookkeeping stays
    // consistent with a single global base rate.
    const double lr_factor =
        cfg_.enable_staleness_lr ? staleness_lr(1.0, staleness, cfg_.smooth_v)
                                 : 1.0;
    lr_factor_sum += lr_factor;
    trunc_sum += scales[i];

    const auto w = static_cast<float>(inv_h * lr_factor * scales[i]);
    for (std::size_t d = 0; d < agg.size(); ++d) agg[d] += w * msg.grad[d];
  }
  stats.mean_staleness = staleness_sum * inv_h;
  stats.mean_lr_factor = lr_factor_sum * inv_h;
  stats.mean_trunc_scale = trunc_sum * inv_h;
  stats.grad_norm = nn::clip_grad_norm(agg, cfg_.max_grad_norm);

  optimizer_->step_with_lr(params_, agg, cfg_.alpha0);
  for (std::size_t i = 0; i < cfg_.clamp_len; ++i) {
    float& v = params_[cfg_.clamp_offset + i];
    v = std::clamp(v, cfg_.clamp_lo, cfg_.clamp_hi);
  }
  stats.new_version = ++version_;
  applied_gradients_ += group.size();
  return stats;
}

Checkpoint ParameterFunction::serialize_state() const {
  Checkpoint ckpt;
  ckpt.params = params_;
  ckpt.version = version_;
  ckpt.applied_gradients = applied_gradients_;
  ByteWriter w;
  optimizer_->save_state(w);
  ckpt.optimizer_state = w.take();
  return ckpt;
}

void ParameterFunction::restore_state(const Checkpoint& ckpt) {
  STELLARIS_CHECK_MSG(ckpt.params.size() == params_.size(),
                      "checkpoint param dim mismatch: " << ckpt.params.size()
                                                        << " vs "
                                                        << params_.size());
  params_ = ckpt.params;
  ByteReader r(ckpt.optimizer_state);
  optimizer_->load_state(r);
  applied_gradients_ = ckpt.applied_gradients;
  version_ = std::max(version_, ckpt.version);
}

}  // namespace stellaris::core
