// Google-benchmark microbenchmarks for the substrates: tensor kernels,
// serialization, the distributed cache, the aggregation kernel, environment
// stepping, and a full learner gradient computation.
//
// A second personality, the kernel-perf harness, activates when any of
//   --json=<path>         write machine-readable kernel results
//   --compare=<path>      load a baseline JSON and compute deltas
//   --max-regress=<x>     fail (exit 1) if any kernel is > x times slower
//                         than the baseline (default 2.0)
//   --kernels             run the harness with stdout output only
// is passed (see bench/README.md for the JSON format). The harness times
// every tensor kernel against its ops::reference seed implementation on a
// fixed shape set, so the emitted file is a before/after perf trajectory:
// "reference" is the seed kernel, "value" is the current blocked kernel.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cache/distributed_cache.hpp"
#include "core/parameter_function.hpp"
#include "envs/env.hpp"
#include "nn/distributions.hpp"
#include "rl/actor.hpp"
#include "rl/gae.hpp"
#include "rl/ppo.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "util/mini_json.hpp"
#include "util/rng.hpp"

namespace stellaris {
namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::matmul(a, b));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = Tensor::randn({256, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::softmax_rows(logits));
}
BENCHMARK(BM_SoftmaxRows);

void BM_Im2col(benchmark::State& state) {
  Rng rng(3);
  ops::Conv2dSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 8;
  spec.in_h = spec.in_w = 20;
  spec.kernel = 5;
  spec.stride = 2;
  Tensor x = Tensor::randn({8, 3 * 20 * 20}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(ops::im2col(x, spec));
}
BENCHMARK(BM_Im2col);

void BM_CachePutGet(benchmark::State& state) {
  cache::DistributedCache cache;
  cache::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k/" + std::to_string(i++ % 128);
    cache.put(key, payload);
    benchmark::DoNotOptimize(cache.get(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_CachePutGet)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_BatchSerialize(benchmark::State& state) {
  auto env = envs::make_env("Hopper");
  nn::ActorCritic policy(env->spec().obs, env->spec().action_kind,
                         env->spec().act_dim, nn::NetworkSpec::mujoco(32), 1);
  rl::Actor actor(envs::make_env("Hopper"), 1);
  auto batch = actor.sample(policy, 128, 0);
  for (auto _ : state) {
    auto bytes = batch.serialize();
    benchmark::DoNotOptimize(rl::SampleBatch::deserialize(bytes));
  }
}
BENCHMARK(BM_BatchSerialize);

void BM_EnvStep(benchmark::State& state) {
  const char* names[] = {"Hopper", "SpaceInvaders"};
  auto env = envs::make_env(names[state.range(0)]);
  env->reset(1);
  Rng rng(1);
  const auto& spec = env->spec();
  std::size_t steps = 0;
  for (auto _ : state) {
    envs::StepResult r;
    if (spec.action_kind == nn::ActionKind::kContinuous) {
      std::vector<float> a(spec.act_dim);
      for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
      r = env->step(a);
    } else {
      r = env->step_discrete(rng.uniform_int(spec.act_dim));
    }
    if (r.done) env->reset(++steps);
    benchmark::DoNotOptimize(r.reward);
  }
}
BENCHMARK(BM_EnvStep)->Arg(0)->Arg(1);

void BM_PpoGradient(benchmark::State& state) {
  auto env_spec = envs::env_spec("Hopper");
  nn::ActorCritic model(env_spec.obs, env_spec.action_kind, env_spec.act_dim,
                        nn::NetworkSpec::mujoco(32), 1);
  rl::Actor actor(envs::make_env("Hopper"), 1);
  auto batch =
      actor.sample(model, static_cast<std::size_t>(state.range(0)), 0);
  rl::PpoConfig cfg;
  rl::compute_gae(batch, cfg.gamma, cfg.gae_lambda);
  rl::normalize_advantages(batch);
  for (auto _ : state) {
    model.zero_grad();
    benchmark::DoNotOptimize(rl::ppo_compute_gradients(model, batch, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoGradient)->Arg(128)->Arg(512);

void BM_Aggregation(benchmark::State& state) {
  const std::size_t dim = 4096;
  core::ParameterFunction::Config cfg;
  cfg.optimizer = "sgd";
  cfg.alpha0 = 1.0;
  core::ParameterFunction pf(std::vector<float>(dim, 0.0f), cfg);
  std::vector<core::GradientQueue::Item> group;
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    core::GradientQueue::Item item;
    item.msg.grad.resize(dim);
    for (auto& g : item.msg.grad) g = static_cast<float>(rng.normal());
    item.msg.pulled_version = 0;
    item.msg.mean_ratio = rng.uniform(0.8, 1.2);
    group.push_back(std::move(item));
  }
  for (auto _ : state) {
    // Refresh pulled versions so staleness stays valid as versions advance.
    for (auto& item : group) item.msg.pulled_version = pf.version();
    benchmark::DoNotOptimize(pf.aggregate(group));
  }
}
BENCHMARK(BM_Aggregation)->Arg(2)->Arg(8)->Arg(32);

void BM_GaussianLogProb(benchmark::State& state) {
  Rng rng(4);
  Tensor mean = Tensor::randn({512, 6}, rng);
  Tensor log_std = Tensor::randn({6}, rng, 0.3f);
  Tensor actions = Tensor::randn({512, 6}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::gaussian_log_prob(mean, log_std, actions));
}
BENCHMARK(BM_GaussianLogProb);

// ---------------------------------------------------------------------------
// Kernel-perf harness
// ---------------------------------------------------------------------------

/// One timed kernel×shape result. `value`/`reference` are rates in `metric`
/// units (GFLOP/s for the GEMMs, Gelem/s for everything else).
struct KernelResult {
  std::string kernel;
  std::string shape;
  std::string metric;
  double work = 0.0;  // flops or elements per call
  double value = 0.0;
  double reference = 0.0;
};

/// Best-of-3 rate measurement: calibrates an iteration count to ~60 ms,
/// then keeps the fastest repetition (robust against scheduler noise).
double measure_rate(double work_per_call, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  const auto seconds_for = [&](int iters) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  fn();  // warm caches and scratch pools
  int iters = 1;
  double t = seconds_for(iters);
  while (t < 0.02 && iters < (1 << 20)) {
    iters *= 4;
    t = seconds_for(iters);
  }
  const int timed_iters = std::max(1, static_cast<int>(0.06 * iters / t));
  double best = t / iters;
  for (int rep = 0; rep < 3; ++rep)
    best = std::min(best, seconds_for(timed_iters) / timed_iters);
  return work_per_call / best / 1e9;
}

std::vector<KernelResult> run_kernel_benches() {
  std::vector<KernelResult> out;
  Rng rng(42);

  struct GemmShape {
    std::size_t m, k, n;
  };
  const GemmShape gemm_shapes[] = {{32, 32, 32}, {64, 64, 64},
                                   {128, 128, 128}, {67, 43, 129}};
  for (const auto& s : gemm_shapes) {
    std::ostringstream shape;
    shape << s.m << "x" << s.k << "x" << s.n;
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.k) * static_cast<double>(s.n);
    {
      Tensor a = Tensor::randn({s.m, s.k}, rng);
      Tensor b = Tensor::randn({s.k, s.n}, rng);
      Tensor c;
      out.push_back(
          {"matmul", shape.str(), "gflops", flops,
           measure_rate(flops, [&] { ops::matmul_into(c, a, b); }),
           measure_rate(flops, [&] { ops::reference::matmul(a, b); })});
    }
    {
      Tensor a = Tensor::randn({s.k, s.m}, rng);
      Tensor b = Tensor::randn({s.k, s.n}, rng);
      Tensor c;
      out.push_back(
          {"matmul_tn", shape.str(), "gflops", flops,
           measure_rate(flops, [&] { ops::matmul_tn_into(c, a, b); }),
           measure_rate(flops, [&] { ops::reference::matmul_tn(a, b); })});
    }
    {
      Tensor a = Tensor::randn({s.m, s.k}, rng);
      Tensor b = Tensor::randn({s.n, s.k}, rng);
      Tensor c;
      out.push_back(
          {"matmul_nt", shape.str(), "gflops", flops,
           measure_rate(flops, [&] { ops::matmul_nt_into(c, a, b); }),
           measure_rate(flops, [&] { ops::reference::matmul_nt(a, b); })});
    }
  }

  const std::size_t rows = 512, cols = 128;
  const double elems = static_cast<double>(rows * cols);
  const std::string eshape = "512x128";
  Tensor x = Tensor::randn({rows, cols}, rng);
  Tensor y;
  out.push_back({"tanh_forward", eshape, "gelems", elems,
                 measure_rate(elems, [&] { ops::tanh_forward_into(y, x); }),
                 measure_rate(elems, [&] { ops::reference::tanh_forward(x); })});
  out.push_back({"relu_forward", eshape, "gelems", elems,
                 measure_rate(elems, [&] { ops::relu_forward_into(y, x); }),
                 measure_rate(elems, [&] { ops::reference::relu_forward(x); })});
  out.push_back(
      {"softmax_rows", eshape, "gelems", elems,
       measure_rate(elems, [&] { ops::softmax_rows_into(y, x); }),
       measure_rate(elems, [&] { ops::reference::softmax_rows(x); })});
  out.push_back(
      {"log_softmax_rows", eshape, "gelems", elems,
       measure_rate(elems, [&] { ops::log_softmax_rows_into(y, x); }),
       measure_rate(elems, [&] { ops::reference::log_softmax_rows(x); })});
  out.push_back({"sum_rows", eshape, "gelems", elems,
                 measure_rate(elems, [&] { ops::sum_rows_into(y, x); }),
                 measure_rate(elems, [&] { ops::reference::sum_rows(x); })});
  return out;
}

void write_kernel_json(const std::string& path,
                       const std::vector<KernelResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"stellaris-kernel-bench-v1\",\n"
     << "  \"kernel_threads\": " << ops::kernel_threads() << ",\n"
     << "  \"entries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"kernel\": \"%s\", \"shape\": \"%s\", \"metric\": "
                  "\"%s\", \"value\": %.3f, \"reference\": %.3f, "
                  "\"speedup_vs_reference\": %.3f}",
                  r.kernel.c_str(), r.shape.c_str(), r.metric.c_str(),
                  r.value, r.reference,
                  r.reference > 0.0 ? r.value / r.reference : 0.0);
    os << buf << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

/// Compare against a baseline JSON (same schema). Returns the worst
/// value/baseline ratio across kernels present in both files.
double compare_to_baseline(const std::string& path,
                           const std::vector<KernelResult>& results) {
  std::ifstream is(path);
  STELLARIS_CHECK_MSG(is.good(), "cannot read baseline " << path);
  std::stringstream ss;
  ss << is.rdbuf();
  const minijson::Value root = minijson::parse(ss.str());
  double worst = std::numeric_limits<double>::infinity();
  for (const minijson::Value& e : root.at("entries").arr) {
    const std::string& kernel = e.at("kernel").string();
    const std::string& shape = e.at("shape").string();
    const double base = e.at("value").number();
    if (base <= 0.0) continue;
    for (const auto& r : results) {
      if (r.kernel != kernel || r.shape != shape) continue;
      const double ratio = r.value / base;
      std::printf("  vs baseline  %-18s %-12s %8.2fx\n", kernel.c_str(),
                  shape.c_str(), ratio);
      worst = std::min(worst, ratio);
    }
  }
  return worst;
}

int run_kernel_harness(const std::string& json_out,
                       const std::string& baseline, double max_regress) {
  const auto results = run_kernel_benches();
  std::printf("%-18s %-12s %10s %10s %9s\n", "kernel", "shape", "current",
              "reference", "speedup");
  for (const auto& r : results) {
    std::printf("%-18s %-12s %8.2f%s %8.2f%s %8.2fx\n", r.kernel.c_str(),
                r.shape.c_str(), r.value, r.metric == "gflops" ? "GF" : "Ge",
                r.reference, r.metric == "gflops" ? "GF" : "Ge",
                r.reference > 0.0 ? r.value / r.reference : 0.0);
  }
  if (!json_out.empty()) {
    write_kernel_json(json_out, results);
    std::printf("wrote %s\n", json_out.c_str());
  }
  if (!baseline.empty()) {
    const double worst = compare_to_baseline(baseline, results);
    if (worst * max_regress < 1.0) {
      std::printf("FAIL: worst kernel is %.2fx of baseline (limit %.2fx)\n",
                  worst, 1.0 / max_regress);
      return 1;
    }
    std::printf("baseline check passed: worst ratio %.2fx (limit %.2fx)\n",
                worst, 1.0 / max_regress);
  }
  return 0;
}

}  // namespace
}  // namespace stellaris

int main(int argc, char** argv) {
  std::string json_out, baseline;
  double max_regress = 2.0;
  bool kernel_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
      kernel_mode = true;
    } else if (arg.rfind("--compare=", 0) == 0) {
      baseline = arg.substr(10);
      kernel_mode = true;
    } else if (arg.rfind("--max-regress=", 0) == 0) {
      max_regress = std::stod(arg.substr(14));
      kernel_mode = true;
    } else if (arg == "--kernels") {
      kernel_mode = true;
    }
  }
  if (kernel_mode)
    return stellaris::run_kernel_harness(json_out, baseline, max_regress);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
