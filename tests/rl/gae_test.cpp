#include "rl/gae.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace stellaris::rl {
namespace {

SampleBatch simple_batch(std::vector<float> rewards, std::vector<float> values,
                         std::vector<float> dones, float bootstrap) {
  SampleBatch b;
  const std::size_t n = rewards.size();
  b.rewards = Tensor({n}, std::move(rewards));
  b.values = Tensor({n}, std::move(values));
  b.dones = Tensor({n}, std::move(dones));
  b.obs = Tensor({n, 1});
  b.behaviour_log_probs = Tensor({n});
  b.bootstrap_value = bootstrap;
  return b;
}

TEST(Gae, SingleStepTdError) {
  // λ=0 reduces GAE to one-step TD error.
  auto b = simple_batch({1.0f}, {0.5f}, {0.0f}, 2.0f);
  compute_gae(b, 0.9, 0.0);
  EXPECT_NEAR(b.advantages[0], 1.0 + 0.9 * 2.0 - 0.5, 1e-6);
  EXPECT_NEAR(b.value_targets[0], b.advantages[0] + 0.5, 1e-6);
}

TEST(Gae, LambdaOneIsDiscountedReturnMinusValue) {
  // λ=1: A_t = Σ γ^k r_{t+k} + γ^T V_boot − V_t (telescoping identity).
  auto b = simple_batch({1, 2, 3}, {0.3f, 0.6f, 0.9f}, {0, 0, 0}, 4.0f);
  const double g = 0.95;
  compute_gae(b, g, 1.0);
  const double ret0 = 1 + g * 2 + g * g * 3 + g * g * g * 4;
  EXPECT_NEAR(b.advantages[0], ret0 - 0.3, 1e-5);
  const double ret2 = 3 + g * 4;
  EXPECT_NEAR(b.advantages[2], ret2 - 0.9, 1e-5);
}

TEST(Gae, DoneBlocksBootstrapAndCredit) {
  auto b = simple_batch({1, 5}, {0, 0}, {1, 0}, 100.0f);
  compute_gae(b, 0.99, 0.95);
  // Step 0 terminates: advantage is exactly its reward; the later reward and
  // the bootstrap must not leak backward.
  EXPECT_NEAR(b.advantages[0], 1.0, 1e-6);
}

TEST(Gae, TerminalLastStepIgnoresBootstrap) {
  auto b = simple_batch({2}, {0}, {1}, 999.0f);
  compute_gae(b, 0.99, 0.95);
  EXPECT_NEAR(b.advantages[0], 2.0, 1e-6);
}

TEST(Gae, SegmentsAreIndependent) {
  // Two segments with identical content must produce identical advantages,
  // and must differ from treating the whole thing as one stream.
  auto joint = simple_batch({1, 2, 1, 2}, {0.5f, 0.5f, 0.5f, 0.5f},
                            {0, 0, 0, 0}, 3.0f);
  joint.segments.push_back({0, 3.0f});
  joint.segments.push_back({2, 3.0f});
  compute_gae(joint, 0.9, 0.9);

  auto solo = simple_batch({1, 2}, {0.5f, 0.5f}, {0, 0}, 3.0f);
  compute_gae(solo, 0.9, 0.9);

  EXPECT_NEAR(joint.advantages[0], solo.advantages[0], 1e-6);
  EXPECT_NEAR(joint.advantages[2], solo.advantages[0], 1e-6);
  EXPECT_NEAR(joint.advantages[3], solo.advantages[1], 1e-6);
}

TEST(Gae, SeamDoesNotLeakAcrossSegments) {
  // Big reward at the start of segment 2 must not raise segment 1's
  // advantages.
  auto with_seam = simple_batch({0, 0, 100, 0}, {0, 0, 0, 0}, {0, 0, 0, 0},
                                0.0f);
  with_seam.segments.push_back({0, 0.0f});
  with_seam.segments.push_back({2, 0.0f});
  compute_gae(with_seam, 0.99, 0.95);
  EXPECT_NEAR(with_seam.advantages[1], 0.0, 1e-6);

  auto no_seam = simple_batch({0, 0, 100, 0}, {0, 0, 0, 0}, {0, 0, 0, 0},
                              0.0f);
  compute_gae(no_seam, 0.99, 0.95);
  EXPECT_GT(no_seam.advantages[1], 50.0);  // leaks without segments
}

TEST(Gae, ValueTargetIsAdvantagePlusValue) {
  Rng rng(1);
  auto b = simple_batch({1, -2, 0.5f, 3}, {0.1f, 0.2f, 0.3f, 0.4f},
                        {0, 1, 0, 0}, 1.0f);
  compute_gae(b, 0.99, 0.95);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(b.value_targets[i], b.advantages[i] + b.values[i], 1e-6);
}

TEST(Gae, EmptyBatchThrows) {
  SampleBatch b;
  EXPECT_THROW(compute_gae(b, 0.99, 0.95), Error);
}

TEST(NormalizeAdvantages, ZeroMeanUnitVariance) {
  auto b = simple_batch({1, 2, 3, 4, 5}, {0, 0, 0, 0, 0}, {0, 0, 0, 0, 0},
                        0.0f);
  compute_gae(b, 0.99, 0.95);
  normalize_advantages(b);
  double mean = 0, var = 0;
  for (std::size_t i = 0; i < 5; ++i) mean += b.advantages[i];
  mean /= 5;
  for (std::size_t i = 0; i < 5; ++i) {
    const double d = b.advantages[i] - mean;
    var += d * d;
  }
  var /= 4;
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(std::sqrt(var), 1.0, 1e-4);
}

TEST(NormalizeAdvantages, SingleSampleIsNoop) {
  auto b = simple_batch({5}, {0}, {0}, 0.0f);
  compute_gae(b, 0.99, 0.95);
  const float before = b.advantages[0];
  normalize_advantages(b);
  EXPECT_FLOAT_EQ(b.advantages[0], before);
}

// Property sweep over (gamma, lambda): advantages are finite and the
// telescoping identity target = A + V always holds.
class GaeSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GaeSweep, InvariantsHold) {
  const auto [gamma, lambda] = GetParam();
  Rng rng(7);
  const std::size_t n = 64;
  SampleBatch b;
  b.obs = Tensor({n, 1});
  b.behaviour_log_probs = Tensor({n});
  b.rewards = Tensor::randn({n}, rng, 2.0f);
  b.values = Tensor::randn({n}, rng);
  b.dones = Tensor({n});
  for (std::size_t i = 0; i < n; ++i)
    b.dones[i] = rng.bernoulli(0.1) ? 1.0f : 0.0f;
  b.bootstrap_value = 0.5f;
  compute_gae(b, gamma, lambda);
  EXPECT_TRUE(b.advantages.all_finite());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(b.value_targets[i], b.advantages[i] + b.values[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    GammaLambda, GaeSweep,
    ::testing::Combine(::testing::Values(0.9, 0.99, 1.0),
                       ::testing::Values(0.0, 0.5, 0.95, 1.0)));

}  // namespace
}  // namespace stellaris::rl
