# Empty dependencies file for fig06_ppo.
# This may be replaced when dependencies are built.
