// Heuristic function-body extraction over token streams — shared by the
// lock-rank (single-function nesting) and driver-purity (call-graph
// reachability) passes. Not a parser: it recognizes the shape
//
//   name ( ...args... ) [const|noexcept|override|...]* [: ctor-inits] {
//
// which covers free functions, member definitions, and constructors in
// this codebase's style. Anything it cannot recognize is simply not
// indexed, which errs on the side of fewer findings — acceptable for a
// warnings-as-errors tool whose self-test corpus pins what must fire.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace stellaris::analyze {

struct FuncDef {
  std::string name;           // unqualified spelling
  const SourceFile* file = nullptr;
  std::size_t body_begin = 0;  // index of the '{' token
  std::size_t body_end = 0;    // index one past the matching '}'
  int line = 0;
};

/// Index of the matching close for every '(' and '{' token; -1 elsewhere.
/// Returns one-past-the-match index, or tokens.size() when unbalanced.
std::size_t match_group(const std::vector<Token>& toks, std::size_t open);

/// Extract all recognizable function definitions from one file.
std::vector<FuncDef> extract_functions(const SourceFile& file);

/// name -> definitions across the whole project (multimap: overloads and
/// same-named members are merged — reachability treats them as one).
using FuncIndex = std::multimap<std::string, FuncDef>;
FuncIndex index_functions(const Project& project);

/// Identifiers followed by '(' inside [begin, end) that look like calls
/// (control-flow keywords excluded). Deterministic order, deduplicated.
std::vector<std::string> calls_in_range(const std::vector<Token>& toks,
                                        std::size_t begin, std::size_t end);

/// True for keywords that syntactically precede '(' without being calls.
bool is_call_keyword(const std::string& name);

}  // namespace stellaris::analyze
