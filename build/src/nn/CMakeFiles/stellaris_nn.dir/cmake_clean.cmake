file(REMOVE_RECURSE
  "CMakeFiles/stellaris_nn.dir/actor_critic.cpp.o"
  "CMakeFiles/stellaris_nn.dir/actor_critic.cpp.o.d"
  "CMakeFiles/stellaris_nn.dir/distributions.cpp.o"
  "CMakeFiles/stellaris_nn.dir/distributions.cpp.o.d"
  "CMakeFiles/stellaris_nn.dir/layers.cpp.o"
  "CMakeFiles/stellaris_nn.dir/layers.cpp.o.d"
  "CMakeFiles/stellaris_nn.dir/optimizer.cpp.o"
  "CMakeFiles/stellaris_nn.dir/optimizer.cpp.o.d"
  "libstellaris_nn.a"
  "libstellaris_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
