// Fig. 14 — latency breakdown of one training round per environment:
// actor sampling, data loading, learner start, learner compute, gradient
// submission, aggregation, and policy broadcast, with total orchestration
// overhead (< 5% in the paper). Also reports two infrastructure ablations:
// hierarchical data passing vs cache-only, and pre-warming on/off.
#include "common.hpp"

#include <iostream>

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  Table t({"env", "actor_sample_s", "data_load_s", "learner_start_s",
           "learner_compute_s", "grad_submit_s", "aggregate_s",
           "broadcast_s", "overhead_pct"});
  for (const auto& env : envs::benchmark_env_names()) {
    auto cfg = bench::base_config(env, 20, 1);
    cfg.seed = 23;
    auto result = core::run_training(cfg);
    // Per-round components.
    const double n = static_cast<double>(result.rounds.size());
    const auto& b = result.breakdown;
    t.row()
        .add(env)
        .add(b.actor_sample_s / n, 4)
        .add(b.data_load_s / n, 4)
        .add(b.learner_start_s / n, 4)
        .add(b.learner_compute_s / n, 4)
        .add(b.grad_submit_s / n, 4)
        .add(b.aggregate_s / n, 4)
        .add(b.broadcast_s / n, 4)
        .add(b.overhead_fraction() * 100.0, 2);
  }
  t.emit("Fig. 14 — one-round latency breakdown (paper: overhead < 5%)",
         "fig14_latency.csv");

  // ---- ablation: hierarchical data passing (DESIGN.md §4.4) ------------------
  {
    serverless::LatencyModel lat;
    Table dp({"payload_KiB", "shared_memory_ms", "rpc_ms", "cache_ms"});
    for (std::size_t kib : {4, 64, 1024, 16384}) {
      const std::size_t bytes = kib * 1024;
      dp.row()
          .add(kib)
          .add(lat.transfer_s(serverless::DataTier::kSharedMemory, bytes) *
                   1e3,
               4)
          .add(lat.transfer_s(serverless::DataTier::kRpc, bytes) * 1e3, 4)
          .add(lat.transfer_s(serverless::DataTier::kCache, bytes) * 1e3, 4);
    }
    dp.emit("Hierarchical data passing — per-tier transfer latency",
            "fig14x_tiers.csv");
  }

  // ---- ablation: pre-warming (DESIGN.md §4.5) -----------------------------------
  {
    Table pw({"prewarm", "cold_starts", "warm_starts", "total_time_s",
              "overhead_pct"});
    for (bool prewarm : {true, false}) {
      auto cfg = bench::base_config("Hopper", 20, 1);
      cfg.prewarm = prewarm;
      auto result = core::run_training(cfg);
      pw.row()
          .add(prewarm ? "on" : "off")
          .add(static_cast<std::size_t>(result.cold_starts))
          .add(static_cast<std::size_t>(result.warm_starts))
          .add(result.total_time_s, 3)
          .add(result.breakdown.overhead_fraction() * 100.0, 2);
    }
    pw.emit("Pre-warming & keep-alive — cold-start ablation",
            "fig14x_prewarm.csv");
  }
  std::cout << "\nExpected shape: actor sampling + learner compute dominate;"
               " orchestration overhead stays in single-digit percent;"
               " pre-warming removes all cold starts.\n";
  return 0;
}
