# Empty compiler generated dependencies file for stellaris_cache.
# This may be replaced when dependencies are built.
