
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/sync_trainer.cpp" "src/baselines/CMakeFiles/stellaris_baselines.dir/sync_trainer.cpp.o" "gcc" "src/baselines/CMakeFiles/stellaris_baselines.dir/sync_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stellaris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/stellaris_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/envs/CMakeFiles/stellaris_envs.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stellaris_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stellaris_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/stellaris_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/stellaris_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellaris_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellaris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
