#include "serverless/platform.hpp"

#include <gtest/gtest.h>

namespace stellaris::serverless {
namespace {

struct Fixture {
  sim::Engine engine;
  ServerlessPlatform platform;

  explicit Fixture(ClusterSpec cluster = ClusterSpec::regular())
      : platform(engine, std::move(cluster), LatencyModel{}, 1) {}
};

ServerlessPlatform::InvokeOptions learner_opts(double compute) {
  ServerlessPlatform::InvokeOptions opts;
  opts.kind = FnKind::kLearner;
  opts.compute_s = compute;
  return opts;
}

TEST(Platform, InvocationCompletesWithCallback) {
  Fixture f;
  bool done = false;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke(learner_opts(1.0), [&](const auto& r) {
    done = true;
    result = r;
  });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_GT(result.end_time_s, result.start_time_s);
  EXPECT_GT(result.compute_s, 0.0);
  EXPECT_TRUE(result.cold);  // nothing was pre-warmed
}

TEST(Platform, CostChargedAtUnitPrice) {
  Fixture f;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke(learner_opts(2.0),
                    [&](const auto& r) { result = r; });
  f.engine.run();
  const double expected =
      f.platform.cluster().learner_unit_price() * result.billed_s;
  EXPECT_NEAR(result.cost_usd, expected, 1e-12);
  EXPECT_NEAR(f.platform.costs().cost(FnKind::kLearner), expected, 1e-12);
}

TEST(Platform, ExcessInvocationsQueue) {
  Fixture f;  // regular cluster: 8 learner slots
  int completed = 0;
  for (int i = 0; i < 20; ++i)
    f.platform.invoke(learner_opts(1.0), [&](const auto&) { ++completed; });
  EXPECT_EQ(f.platform.queued(FnKind::kLearner), 12u);
  f.engine.run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(f.platform.queued(FnKind::kLearner), 0u);
}

TEST(Platform, QueuedInvocationStartsAfterSlotFrees) {
  Fixture f;
  std::vector<double> starts;
  for (int i = 0; i < 9; ++i)  // 8 slots + 1 queued
    f.platform.invoke(learner_opts(1.0), [&](const auto& r) {
      starts.push_back(r.start_time_s);
    });
  f.engine.run();
  ASSERT_EQ(starts.size(), 9u);
  const double max_start =
      *std::max_element(starts.begin(), starts.end());
  EXPECT_GT(max_start, 0.5);  // the straggler waited for a completion
}

TEST(Platform, PrewarmEliminatesColdStarts) {
  Fixture f;
  f.platform.prewarm_learners(8);
  bool cold = true;
  f.platform.invoke(learner_opts(0.5), [&](const auto& r) { cold = r.cold; });
  f.engine.run();
  EXPECT_FALSE(cold);
  EXPECT_EQ(f.platform.learner_cold_starts(), 0u);
  EXPECT_EQ(f.platform.learner_warm_starts(), 1u);
}

TEST(Platform, OnStartFiresAtDispatchTime) {
  Fixture f;
  double started_at = -1.0;
  auto opts = learner_opts(1.0);
  opts.on_start = [&](double t) { started_at = t; };
  f.platform.invoke(opts, [](const auto&) {});
  f.engine.run();
  EXPECT_DOUBLE_EQ(started_at, 0.0);  // dispatched immediately
}

TEST(Platform, OnStartOfQueuedInvocationIsDelayed) {
  Fixture f;
  for (int i = 0; i < 8; ++i)
    f.platform.invoke(learner_opts(1.0), [](const auto&) {});
  double started_at = -1.0;
  auto opts = learner_opts(1.0);
  opts.on_start = [&](double t) { started_at = t; };
  f.platform.invoke(opts, [](const auto&) {});
  f.engine.run();
  EXPECT_GT(started_at, 0.5);  // pulled its policy only when a slot freed
}

TEST(Platform, ActorsUseSeparatePoolAndPrice) {
  Fixture f;
  ServerlessPlatform::InvokeOptions opts;
  opts.kind = FnKind::kActor;
  opts.compute_s = 1.0;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke(opts, [&](const auto& r) { result = r; });
  f.engine.run();
  EXPECT_NEAR(result.cost_usd,
              f.platform.cluster().actor_unit_price() * result.billed_s,
              1e-12);
  EXPECT_EQ(f.platform.costs().invocations(FnKind::kActor), 1u);
  EXPECT_EQ(f.platform.costs().invocations(FnKind::kLearner), 0u);
}

TEST(Platform, GpuUtilizationReflectsLoad) {
  Fixture busy;
  for (int i = 0; i < 32; ++i)
    busy.platform.invoke(learner_opts(1.0), [](const auto&) {});
  busy.engine.run();
  const double high = busy.platform.gpu_utilization();

  Fixture idle;
  idle.platform.invoke(learner_opts(1.0), [](const auto&) {});
  idle.engine.run();
  const double low = idle.platform.gpu_utilization();
  EXPECT_GT(high, low);
  EXPECT_LE(high, 1.0 + 1e-9);
}

TEST(Platform, PayloadsAddTransferTime) {
  Fixture f;
  auto small = learner_opts(1.0);
  auto big = learner_opts(1.0);
  big.payload_in_bytes = 64 << 20;
  double t_small = 0.0, t_big = 0.0;
  f.platform.invoke(small, [&](const auto& r) { t_small = r.transfer_s; });
  f.platform.invoke(big, [&](const auto& r) { t_big = r.transfer_s; });
  f.engine.run();
  EXPECT_GT(t_big, t_small);
}

}  // namespace
}  // namespace stellaris::serverless
