#include "core/config.hpp"

namespace stellaris::core {

const char* algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::kPpo: return "PPO";
    case Algorithm::kImpact: return "IMPACT";
  }
  return "?";
}

const char* aggregation_mode_name(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kStellaris: return "stellaris";
    case AggregationMode::kSoftsync: return "softsync";
    case AggregationMode::kSsp: return "ssp";
    case AggregationMode::kPureAsync: return "pure-async";
  }
  return "?";
}

void TrainConfig::validate() const {
  if (env_name.empty()) throw ConfigError("env_name empty");
  if (num_actors == 0) throw ConfigError("num_actors must be >= 1");
  if (rounds == 0) throw ConfigError("rounds must be >= 1");
  if (horizon == 0) throw ConfigError("horizon must be >= 1");
  if (envs_per_actor == 0) throw ConfigError("envs_per_actor must be >= 1");
  if (decay_d < 0.0 || decay_d > 1.0)
    throw ConfigError("decay_d must lie in [0, 1]");
  if (smooth_v <= 0.0) throw ConfigError("smooth_v must be positive");
  if (ratio_rho <= 0.0) throw ConfigError("ratio_rho must be positive");
  if (cluster.total_gpus() == 0)
    throw ConfigError("cluster needs at least one GPU VM for learners");
  faults.validate();
  retry.validate();
}

}  // namespace stellaris::core
