// Fig. 3 — characterizations of asynchronous serverless learners:
//  (a) total learning time and GPU utilization vs #learners × #actors
//  (b) staleness PDF for different learner counts (pure async)
//  (c) per-update policy KL, synchronous vs asynchronous learners
#include "common.hpp"

#include <iostream>

#include "util/stats.hpp"

using namespace stellaris;

int main(int argc, char** argv) {
  const auto obs_session = bench::obs_session_from_args(argc, argv);
  const std::string env = "Hopper";

  // ---- (a) dynamic learner orchestration -----------------------------------
  {
    Table t({"learners", "actors", "learning_time_s", "gpu_util_pct"});
    for (std::size_t learners : {2, 4, 6, 8}) {
      for (std::size_t actors : {8, 16, 24, 32}) {
        auto cfg = bench::base_config(env, 20, 1);
        // The full regular cluster so 8 learners fit.
        cfg.cluster = serverless::ClusterSpec::regular();
        cfg.num_actors = actors;
        cfg.max_learners = learners;
        cfg.seed = 11;
        auto result = core::run_training(cfg);
        // "Total learning time" = wall clock of the run; "GPU utilization"
        // = busy fraction of the GPU slots *allocated* to learners (the
        // platform reports utilization over all slots; rescale).
        const double allocated_util =
            result.learner_busy_s /
            (static_cast<double>(learners) * result.total_time_s);
        t.row()
            .add(learners)
            .add(actors)
            .add(result.total_time_s, 2)
            .add(allocated_util * 100.0, 1);
      }
    }
    t.emit("Fig. 3(a) — learning time & GPU utilization vs learners/actors",
           "fig03a_orchestration.csv");
    std::cout << "Expected shape: more learners cut wall time at high actor"
                 " counts but waste GPU (lower utilization) at low actor"
                 " counts.\n";
  }

  // ---- (b) staleness PDF -----------------------------------------------------
  {
    Table t({"staleness_bin", "pdf_2_learners", "pdf_4_learners",
             "pdf_8_learners"});
    std::vector<std::vector<double>> pdfs;
    const double hi = 10.0;
    const std::size_t bins = 10;
    for (std::size_t learners : {2, 4, 8}) {
      auto cfg = bench::base_config(env, 40, 1);
      cfg.cluster = serverless::ClusterSpec::regular();
      cfg.num_actors = 4 * learners;
      cfg.max_learners = learners;
      cfg.aggregation = core::AggregationMode::kPureAsync;  // raw staleness
      cfg.seed = 13;
      auto result = core::run_training(cfg);
      Histogram h(0.0, hi, bins);
      for (double s : result.staleness_samples) h.add(s);
      pdfs.push_back(h.density());
    }
    Histogram ref(0.0, hi, bins);
    for (std::size_t b = 0; b < bins; ++b)
      t.row()
          .add(ref.bin_center(b), 1)
          .add(pdfs[0][b], 4)
          .add(pdfs[1][b], 4)
          .add(pdfs[2][b], 4);
    t.emit("Fig. 3(b) — staleness PDF by learner count",
           "fig03b_staleness_pdf.csv");
    std::cout << "Expected shape: the PDF mass shifts toward larger staleness"
                 " as the learner count grows.\n";
  }

  // ---- (c) policy-update KL: sync vs async -----------------------------------
  {
    auto run_kl = [&](double decay_d) {
      auto cfg = bench::base_config(env, 40, 1);
      cfg.decay_d = decay_d;
      cfg.staleness_floor = decay_d == 0.0 ? 0.0 : 1.0;
      cfg.seed = 17;
      auto result = core::run_training(cfg);
      return result.update_kls;
    };
    const auto kl_sync = run_kl(0.0);   // d = 0 → forced synchronization
    const auto kl_async = run_kl(1.0);  // d = 1 → pure async
    Table t({"update", "kl_sync", "kl_async"});
    const std::size_t n = std::min(kl_sync.size(), kl_async.size());
    RunningStat rs_sync, rs_async;
    for (std::size_t i = 0; i < n; ++i) {
      t.row().add(i + 1).add(kl_sync[i], 5).add(kl_async[i], 5);
      rs_sync.add(kl_sync[i]);
      rs_async.add(kl_async[i]);
    }
    t.emit("Fig. 3(c) — per-update policy KL, sync vs async",
           "fig03c_kl.csv");
    std::cout << "mean KL sync=" << rs_sync.mean()
              << "  async=" << rs_async.mean()
              << "\nExpected shape: asynchronous learners produce larger"
                 " policy updates (higher KL) than synchronous ones.\n";
  }
  return 0;
}
