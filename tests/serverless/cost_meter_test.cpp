#include "serverless/cost_meter.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::serverless {
namespace {

TEST(CostMeter, RecordsPriceTimesDuration) {
  CostMeter meter;
  meter.record(FnKind::kLearner, 0.01, 5.0);
  EXPECT_DOUBLE_EQ(meter.cost(FnKind::kLearner), 0.05);
  EXPECT_DOUBLE_EQ(meter.busy_seconds(FnKind::kLearner), 5.0);
  EXPECT_EQ(meter.invocations(FnKind::kLearner), 1u);
}

TEST(CostMeter, KindsAreIndependent) {
  CostMeter meter;
  meter.record(FnKind::kLearner, 1.0, 1.0);
  meter.record(FnKind::kActor, 1.0, 2.0);
  meter.record(FnKind::kParameter, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(meter.cost(FnKind::kLearner), 1.0);
  EXPECT_DOUBLE_EQ(meter.cost(FnKind::kActor), 2.0);
  EXPECT_DOUBLE_EQ(meter.cost(FnKind::kParameter), 3.0);
  EXPECT_DOUBLE_EQ(meter.total_cost(), 6.0);
}

TEST(CostMeter, Accumulates) {
  CostMeter meter;
  for (int i = 0; i < 10; ++i) meter.record(FnKind::kActor, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(meter.cost(FnKind::kActor), 5.0);
  EXPECT_EQ(meter.invocations(FnKind::kActor), 10u);
}

TEST(CostMeter, ResetZeroesEverything) {
  CostMeter meter;
  meter.record(FnKind::kLearner, 1.0, 1.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total_cost(), 0.0);
  EXPECT_EQ(meter.invocations(FnKind::kLearner), 0u);
}

TEST(CostMeter, RejectsNegativeInputs) {
  CostMeter meter;
  EXPECT_THROW(meter.record(FnKind::kActor, -1.0, 1.0), Error);
  EXPECT_THROW(meter.record(FnKind::kActor, 1.0, -1.0), Error);
}

TEST(CostMeter, KindNames) {
  EXPECT_STREQ(fn_kind_name(FnKind::kLearner), "learner");
  EXPECT_STREQ(fn_kind_name(FnKind::kParameter), "parameter");
  EXPECT_STREQ(fn_kind_name(FnKind::kActor), "actor");
}

}  // namespace
}  // namespace stellaris::serverless
