#include "core/kl_probe.hpp"

#include "nn/distributions.hpp"

namespace stellaris::core {

double policy_update_kl(nn::ActorCritic& model,
                        std::span<const float> params_before,
                        std::span<const float> params_after,
                        const Tensor& probe_obs) {
  STELLARIS_CHECK_MSG(probe_obs.rank() == 2 && probe_obs.dim(0) > 0,
                      "probe_obs must be a non-empty batch");
  model.set_flat_params(params_before);
  const Tensor out_before = model.policy_forward(probe_obs);
  Tensor log_std_before;
  if (model.kind() == nn::ActionKind::kContinuous)
    log_std_before = *model.log_std();

  model.set_flat_params(params_after);
  const Tensor out_after = model.policy_forward(probe_obs);

  Tensor kl;
  if (model.kind() == nn::ActionKind::kContinuous) {
    kl = nn::gaussian_kl(out_before, log_std_before, out_after,
                         *model.log_std());
  } else {
    kl = nn::categorical_kl(out_before, out_after);
  }
  return kl.mean();
}

}  // namespace stellaris::core
