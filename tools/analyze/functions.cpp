#include "functions.hpp"

#include <algorithm>
#include <set>

namespace stellaris::analyze {

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",  "catch",   "return",
      "sizeof", "alignof", "new",   "delete",  "else",    "do",
      "static_assert", "throw", "case", "defined", "decltype", "assert"};
  return kw;
}

const std::set<std::string>& post_signature_words() {
  static const std::set<std::string> words = {"const", "noexcept", "override",
                                             "final", "mutable", "try"};
  return words;
}

bool punct_is(const Token& t, const char* s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

/// Skip a constructor initializer list starting at the ':' token. Returns
/// the index of the body '{', or npos when the shape is not an init list.
std::size_t skip_ctor_inits(const std::vector<Token>& toks, std::size_t i) {
  ++i;  // past ':'
  const std::size_t n = toks.size();
  while (i < n) {
    // Member name (possibly qualified / templated base class).
    bool saw_name = false;
    while (i < n && (toks[i].kind == Token::Kind::kIdent ||
                     punct_is(toks[i], "::") || punct_is(toks[i], "<") ||
                     punct_is(toks[i], ">") || punct_is(toks[i], ","))) {
      // A ',' inside template args of a base class is rare here; treat a
      // ',' before any name as malformed.
      if (punct_is(toks[i], ",") && !saw_name) return std::string::npos;
      if (punct_is(toks[i], ",")) break;
      if (toks[i].kind == Token::Kind::kIdent) saw_name = true;
      ++i;
    }
    if (!saw_name || i >= n) return std::string::npos;
    if (!punct_is(toks[i], "(") && !punct_is(toks[i], "{"))
      return std::string::npos;
    i = match_group(toks, i);  // past the init's balanced (…) or {…}
    if (i >= n) return std::string::npos;
    if (punct_is(toks[i], ",")) {
      ++i;
      continue;
    }
    if (punct_is(toks[i], "{")) return i;  // the body
    return std::string::npos;
  }
  return std::string::npos;
}

}  // namespace

std::size_t match_group(const std::vector<Token>& toks, std::size_t open) {
  const std::size_t n = toks.size();
  if (open >= n) return n;
  const std::string& o = toks[open].text;
  std::string close;
  if (o == "(")
    close = ")";
  else if (o == "{")
    close = "}";
  else if (o == "[")
    close = "]";
  else
    return open + 1;
  int depth = 0;
  for (std::size_t i = open; i < n; ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == o)
      ++depth;
    else if (toks[i].text == close && --depth == 0)
      return i + 1;
  }
  return n;
}

bool is_call_keyword(const std::string& name) {
  return control_keywords().count(name) > 0;
}

std::vector<FuncDef> extract_functions(const SourceFile& file) {
  const auto& toks = file.tokens;
  const std::size_t n = toks.size();
  std::vector<FuncDef> out;
  std::size_t i = 0;
  while (i + 1 < n) {
    if (toks[i].kind != Token::Kind::kIdent || !punct_is(toks[i + 1], "(") ||
        is_call_keyword(toks[i].text)) {
      ++i;
      continue;
    }
    const std::size_t after_args = match_group(toks, i + 1);
    if (after_args >= n) break;
    // Post-signature scan: find the body '{' or bail.
    std::size_t k = after_args;
    std::size_t body = std::string::npos;
    while (k < n) {
      const Token& t = toks[k];
      if (punct_is(t, "{")) {
        body = k;
        break;
      }
      if (t.kind == Token::Kind::kIdent && post_signature_words().count(t.text)) {
        ++k;
        continue;
      }
      if (punct_is(t, "(")) {  // noexcept(...), attributes
        k = match_group(toks, k);
        continue;
      }
      if (punct_is(t, "->")) {  // trailing return type: scan to '{' or stop
        ++k;
        while (k < n && !punct_is(toks[k], "{") && !punct_is(toks[k], ";") &&
               !punct_is(toks[k], "=") && !punct_is(toks[k], ")"))
          ++k;
        continue;
      }
      if (punct_is(t, ":")) {
        body = skip_ctor_inits(toks, k);
        break;
      }
      break;  // ';' (declaration), '=', ',', ')' — not a definition
    }
    if (body == std::string::npos || body >= n) {
      i += 1;
      continue;
    }
    FuncDef def;
    def.name = toks[i].text;
    def.file = &file;
    def.body_begin = body;
    def.body_end = match_group(toks, body);
    def.line = toks[i].line;
    out.push_back(def);
    // Continue scanning *inside* the body too: local lambdas and nested
    // classes still contain interesting constructs, and the per-function
    // passes tolerate overlapping ranges.
    i += 2;
  }
  return out;
}

FuncIndex index_functions(const Project& project) {
  FuncIndex index;
  for (const auto& file : project.files)
    for (auto& def : extract_functions(file))
      index.emplace(def.name, def);
  return index;
}

std::vector<std::string> calls_in_range(const std::vector<Token>& toks,
                                        std::size_t begin, std::size_t end) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (!punct_is(toks[i + 1], "(")) continue;
    if (is_call_keyword(toks[i].text)) continue;
    if (seen.insert(toks[i].text).second) out.push_back(toks[i].text);
  }
  return out;
}

}  // namespace stellaris::analyze
