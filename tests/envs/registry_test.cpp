#include "envs/env.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::envs {
namespace {

TEST(Registry, AllBenchmarkEnvsConstruct) {
  for (const auto& name : benchmark_env_names()) {
    auto env = make_env(name);
    ASSERT_NE(env, nullptr) << name;
    EXPECT_EQ(env->spec().name, name);
    EXPECT_GT(env->spec().max_steps, 0u);
    EXPECT_GT(env->spec().act_dim, 0u);
    auto obs = env->reset(1);
    EXPECT_EQ(obs.size(), env->spec().obs.flat_dim);
  }
}

TEST(Registry, SixEnvironmentsMujocoFirst) {
  const auto& names = benchmark_env_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "Hopper");
  EXPECT_EQ(names[3], "SpaceInvaders");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_env("Pong"), ConfigError);
  EXPECT_THROW(env_spec(""), ConfigError);
}

TEST(Registry, SpecMatchesConstructedEnv) {
  for (const auto& name : benchmark_env_names()) {
    const auto spec = env_spec(name);
    auto env = make_env(name);
    EXPECT_EQ(spec.obs.flat_dim, env->spec().obs.flat_dim);
    EXPECT_EQ(spec.act_dim, env->spec().act_dim);
    EXPECT_EQ(spec.action_kind, env->spec().action_kind);
  }
}

TEST(Registry, ContinuousAndDiscreteSplit) {
  EXPECT_EQ(env_spec("Hopper").action_kind, nn::ActionKind::kContinuous);
  EXPECT_EQ(env_spec("Walker2d").action_kind, nn::ActionKind::kContinuous);
  EXPECT_EQ(env_spec("Humanoid").action_kind, nn::ActionKind::kContinuous);
  EXPECT_EQ(env_spec("SpaceInvaders").action_kind, nn::ActionKind::kDiscrete);
  EXPECT_EQ(env_spec("Qbert").action_kind, nn::ActionKind::kDiscrete);
  EXPECT_EQ(env_spec("Gravitar").action_kind, nn::ActionKind::kDiscrete);
}

}  // namespace
}  // namespace stellaris::envs
