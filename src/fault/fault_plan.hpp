// Fault plan: WHAT goes wrong, WHEN, and HOW BADLY.
//
// Stellaris's premise is that serverless DRL tolerates dynamic, unreliable
// resources; this module supplies the unreliability. A FaultPlan describes
// a failure environment in two composable parts:
//
//  - a probabilistic model (FaultConfig): per-invocation container crashes,
//    straggler slowdowns, cache faults, and Poisson VM reclamations, all
//    sampled from a dedicated seeded RNG stream so a (config, seed) pair
//    replays bit-identically and never perturbs the simulation's other
//    random streams;
//  - an explicit schedule (ScheduledFault list): scripted events for
//    deterministic regression tests and demos ("reclaim a GPU VM at
//    t = 2.5 s", "crash the 3rd learner invocation").
//
// The all-zero default plan injects nothing and draws nothing: a zero-fault
// run is bit-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <vector>

namespace stellaris::fault {

/// Failure outcome attached to a serverless invocation (or retry chain).
enum class ErrorKind : std::uint8_t {
  kNone = 0,
  kCrash,        ///< container crashed mid-invocation
  kVmReclaim,    ///< host VM reclaimed (spot-style); container killed
  kCacheError,   ///< a cache operation inside the invocation failed
  kDeadline,     ///< retry chain exceeded its per-invocation deadline
};

const char* error_kind_name(ErrorKind kind);

/// What a scheduled fault does. Crash/straggler/cache kinds arm a one-shot
/// trap that fires on the next matching invocation at or after `time_s`;
/// kVmReclaim fires at `time_s` exactly.
enum class FaultKind : std::uint8_t {
  kCrash = 0,
  kVmReclaim,
  kStraggler,
  kCacheFail,
  kCacheDelay,
};

const char* fault_kind_name(FaultKind kind);

/// One scripted fault.
struct ScheduledFault {
  double time_s = 0.0;  ///< virtual time the fault arms (or fires: reclaim)
  FaultKind kind = FaultKind::kCrash;
  /// Restrict to one function kind (the integer value of
  /// serverless::FnKind); -1 matches any invocation. Ignored for reclaims.
  int fn_kind = -1;
  /// Kind-specific magnitude: crash → fraction of the invocation completed
  /// before dying (default 0.5); straggler → slowdown multiplier; cache
  /// delay → extra seconds. Unused for kCacheFail/kVmReclaim.
  double magnitude = 0.0;
};

/// Probabilistic failure environment. All probabilities are per-invocation;
/// reclamations are a Poisson process in virtual time.
struct FaultConfig {
  double crash_prob = 0.0;      ///< container dies partway through the work
  double crash_frac_lo = 0.1;   ///< completed fraction at death ~ U[lo, hi]
  double crash_frac_hi = 0.9;
  double straggler_prob = 0.0;  ///< invocation lands on a slow host
  double straggler_mult = 4.0;  ///< compute-time multiplier when it does
  double reclaim_rate_per_hour = 0.0;  ///< whole-VM spot reclamations
  double cache_fail_prob = 0.0;   ///< cache op fails -> invocation errors
  double cache_delay_prob = 0.0;  ///< cache op hits a slow shard
  double cache_delay_s = 0.05;    ///< extra latency when it does
  std::uint64_t seed = 0x5eedfa17ULL;  ///< fault stream seed (independent of
                                       ///< the simulation's other streams)

  /// True if any probabilistic fault can ever fire.
  bool any() const;
  void validate() const;
};

/// A complete failure environment: sampled model + scripted events.
struct FaultPlan {
  FaultConfig config;
  std::vector<ScheduledFault> schedule;

  bool any() const { return config.any() || !schedule.empty(); }
  void validate() const;
};

}  // namespace stellaris::fault
