
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/actor_critic.cpp" "src/nn/CMakeFiles/stellaris_nn.dir/actor_critic.cpp.o" "gcc" "src/nn/CMakeFiles/stellaris_nn.dir/actor_critic.cpp.o.d"
  "/root/repo/src/nn/distributions.cpp" "src/nn/CMakeFiles/stellaris_nn.dir/distributions.cpp.o" "gcc" "src/nn/CMakeFiles/stellaris_nn.dir/distributions.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/stellaris_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/stellaris_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/stellaris_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/stellaris_nn.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stellaris_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellaris_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
