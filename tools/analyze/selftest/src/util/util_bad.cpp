// Failing layer-dag case: util is the bottom layer and declares no
// dependencies, so including obs is an upward edge.
#include "util/helper.hpp"

// expect: layer-dag
#include "obs/obs_ok.hpp"

namespace stellaris {
int util_uses_obs() { return obs::sample_count(); }
}  // namespace stellaris
