#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace stellaris {
namespace {

TEST(Shape, NumelAndString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 0u);  // empty shape is the empty tensor
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeConstructorZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, BracedSizesMeanShapeNotValues) {
  // Regression: Tensor({m, n}) must call the Shape constructor even though
  // an initializer-list of floats would also be viable syntax.
  const std::size_t m = 4, n = 5;
  Tensor t({m, n});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.numel(), 20u);
}

TEST(Tensor, OfMakesA1DTensor) {
  Tensor t = Tensor::of({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.numel(), 3u);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f}), Error);
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::full({3}, 2.5f)[2], 2.5f);
  EXPECT_EQ(Tensor::ones({2, 2}).sum(), 4.0f);
}

TEST(Tensor, RandnHasRoughlyRightMoments) {
  Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
  double sq = 0.0;
  for (float v : t.vec()) sq += double(v) * v;
  EXPECT_NEAR(std::sqrt(sq / t.numel()), 2.0, 0.1);
}

TEST(Tensor, RandUniformBounds) {
  Rng rng(2);
  Tensor t = Tensor::rand_uniform({1000}, rng, -1.0f, 1.0f);
  EXPECT_GE(t.min(), -1.0f);
  EXPECT_LT(t.max(), 1.0f);
}

TEST(Tensor, At2DAndRow) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  auto r = t.row(1);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r[2], 6.0f);
  t.at(1, 1) = 50.0f;
  EXPECT_EQ(t.row(1)[1], 50.0f);
}

TEST(Tensor, At3D) {
  Tensor t({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t.at3(1, 0, 1), 5.0f);
  EXPECT_EQ(t.at3(0, 1, 0), 2.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c[2], 33.0f);
  Tensor d = b - a;
  EXPECT_EQ(d[0], 9.0f);
  Tensor e = a * 2.0f;
  EXPECT_EQ(e[1], 4.0f);
  Tensor f = 3.0f * a;
  EXPECT_EQ(f[0], 3.0f);
  a += b;
  EXPECT_EQ(a[0], 11.0f);
  a -= b;
  EXPECT_EQ(a[0], 1.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[1], 12.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
  EXPECT_THROW(a.add_scaled(b, 1.0f), Error);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(30.0f));
}

TEST(Tensor, KahanSumIsAccurate) {
  // 1 + many tiny values that a naive float accumulator would drop.
  std::vector<float> data(100001, 1e-7f);
  data[0] = 1.0f;
  Tensor t({data.size()}, data);
  EXPECT_NEAR(t.sum(), 1.0f + 1e-2f, 1e-4f);
}

TEST(Tensor, AllFinite) {
  Tensor t({2}, {1.0f, 2.0f});
  EXPECT_TRUE(t.all_finite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.all_finite());
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(7.0f);
  EXPECT_EQ(t.sum(), 21.0f);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, MinMaxOfEmptyThrows) {
  Tensor t;
  EXPECT_THROW(t.min(), Error);
  EXPECT_THROW(t.max(), Error);
}

}  // namespace
}  // namespace stellaris
