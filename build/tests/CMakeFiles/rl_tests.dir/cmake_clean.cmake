file(REMOVE_RECURSE
  "CMakeFiles/rl_tests.dir/rl/actor_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/actor_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/gae_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/gae_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/impact_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/impact_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/ppo_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/ppo_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/replay_buffer_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/replay_buffer_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/sample_batch_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/sample_batch_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/vtrace_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/vtrace_test.cpp.o.d"
  "rl_tests"
  "rl_tests.pdb"
  "rl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
