// Cache-blocked, register-tiled GEMM kernels.
//
// Scheme (see DESIGN.md "Compute kernels"):
//   * The output C is tiled over i (rows, panels of kMC) and j (columns,
//     panels of kNC); each panel is walked by an MR×NR register micro-kernel
//     that keeps a block of C in accumulator registers for the entire k
//     sweep — one store per output element instead of one load+store per
//     (element, k) step, and every B-row load is shared by MR output rows.
//   * k is deliberately NOT tiled. Each output element accumulates its k
//     products in ascending order starting from 0.0f, exactly the order of
//     the naive reference kernel, so blocked results are bit-identical to
//     ops::reference — the learner stays deterministic across this rewrite.
//   * Threading splits i into panels of kMC rows (ThreadPool::parallel_for).
//     Panels write disjoint C rows and each element is still accumulated by
//     exactly one task in the same order, so any thread count produces the
//     same bits. Gated by kernel_parallel_min_flops() and off by default
//     (kernel_threads() == 1).
//   * matmul_tn packs the A panel into a transposed scratch buffer first
//     (pure data movement), then reuses the nn micro-kernel; matmul_nt does
//     the same with B, since a dot-product micro-kernel cannot vectorize
//     its k chain without reassociating float adds.
#include <algorithm>

#include "obs/metrics.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "util/thread_pool.hpp"

namespace stellaris::ops {
namespace {

// Register tile and cache panels. 4×48 accumulators measured fastest for
// the -march=native AVX-512 build (three 16-lane accumulator columns per
// row keep both FMA ports busy) while staying ahead of the reference ikj
// kernel in the portable build; kMC is also the threading grain. Column
// edges are handled by compile-time sub-tiles (32, then 16, then a scalar
// tail) because a runtime-bound tile defeats the vectorizer.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 48;
constexpr std::size_t kMC = 64;
constexpr std::size_t kNC = 240;  // multiple of kNR: edge tiles only at the true edge

obs::Counter& gemm_calls() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.gemm_calls");
  return c;
}

obs::Counter& gemm_flop_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.gemm_flops");
  return c;
}

obs::Counter& gemm_parallel_calls() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.gemm_parallel_calls");
  return c;
}

// -- micro-kernels -----------------------------------------------------------
// a points at A[i][0] (row stride lda), b at B[0][j] (row stride ldb), c at
// C[i][j] (row stride ldc). Accumulation runs the full k range in registers
// and stores once.

template <std::size_t MR, std::size_t NR>
inline void micro_nn(std::size_t k, const float* a, std::size_t lda,
                     const float* b, std::size_t ldb, float* c,
                     std::size_t ldc) {
  float acc[MR][NR] = {};
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * ldb;
    for (std::size_t r = 0; r < MR; ++r) {
      const float ar = a[r * lda + kk];
      for (std::size_t cc = 0; cc < NR; ++cc) acc[r][cc] += ar * brow[cc];
    }
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t cc = 0; cc < NR; ++cc) c[r * ldc + cc] = acc[r][cc];
}

// Bottom-edge rows: dispatch the runtime row count to a compile-time MR so
// the column loop always vectorizes over a known NR.
template <std::size_t NR>
inline void micro_nn_rows(std::size_t mr, std::size_t k, const float* a,
                          std::size_t lda, const float* b, std::size_t ldb,
                          float* c, std::size_t ldc) {
  switch (mr) {
    case 4: micro_nn<4, NR>(k, a, lda, b, ldb, c, ldc); break;
    case 3: micro_nn<3, NR>(k, a, lda, b, ldb, c, ldc); break;
    case 2: micro_nn<2, NR>(k, a, lda, b, ldb, c, ldc); break;
    case 1: micro_nn<1, NR>(k, a, lda, b, ldb, c, ldc); break;
    default: break;
  }
}

// Right-edge columns past the last 16-wide sub-tile: one register
// accumulator per element, k ascending — same order as everything else.
inline void micro_nn_scalar(std::size_t mr, std::size_t nr, std::size_t k,
                            const float* a, std::size_t lda, const float* b,
                            std::size_t ldb, float* c, std::size_t ldc) {
  for (std::size_t r = 0; r < mr; ++r) {
    for (std::size_t cc = 0; cc < nr; ++cc) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += a[r * lda + kk] * b[kk * ldb + cc];
      c[r * ldc + cc] = acc;
    }
  }
}

// One i-panel [i0, i1) of C = A·B with A given row-major (stride lda).
// Shared by nn (A as passed) and tn (packed A panel, i0 rebased to 0).
void gemm_nn_panel(std::size_t i0, std::size_t i1, std::size_t n,
                   std::size_t k, const float* pa, std::size_t lda,
                   const float* pb, float* pc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
    const std::size_t j1 = std::min(n, j0 + kNC);
    for (std::size_t i = i0; i < i1; i += kMR) {
      const std::size_t mr = std::min(kMR, i1 - i);
      const float* arow = pa + i * lda;
      float* crow = pc + i * n;
      std::size_t j = j0;
      for (; j + kNR <= j1; j += kNR)
        micro_nn_rows<kNR>(mr, k, arow, lda, pb + j, n, crow + j, n);
      if (j + 32 <= j1) {
        micro_nn_rows<32>(mr, k, arow, lda, pb + j, n, crow + j, n);
        j += 32;
      }
      if (j + 16 <= j1) {
        // One row at a time: a multi-row 16-wide accumulator tile spills
        // the portable register file (measured ~4x slower than 1×16).
        // Row grouping is irrelevant to exactness — each output element
        // still runs its own ascending k sweep.
        for (std::size_t r = 0; r < mr; ++r)
          micro_nn<1, 16>(k, arow + r * lda, lda, pb + j, n,
                          crow + r * n + j, n);
        j += 16;
      }
      if (j < j1)
        micro_nn_scalar(mr, j1 - j, k, arow, lda, pb + j, n, crow + j, n);
    }
  }
}

// Run `panel(i0, i1)` over [0, m), in kMC panels across the kernel pool
// when the product is big enough and threading is enabled, serially
// otherwise. Either way each C row is written by exactly one invocation.
template <typename PanelFn>
void dispatch_row_panels(std::size_t m, std::uint64_t flops,
                         const PanelFn& panel) {
  const std::size_t threads = kernel_threads();
  const std::size_t panels = (m + kMC - 1) / kMC;
  if (threads > 1 && panels > 1 && flops >= kernel_parallel_min_flops()) {
    gemm_parallel_calls().add(1);
    detail::kernel_pool(threads).parallel_for(panels, [&](std::size_t p) {
      panel(p * kMC, std::min(m, (p + 1) * kMC));
    });
  } else if (m > 0) {
    panel(0, m);
  }
}

void check_not_aliased(const Tensor& c, const Tensor& a, const Tensor& b,
                       const char* what) {
  STELLARIS_CHECK_MSG(&c != &a && &c != &b,
                      what << ": output must not alias an input");
}

}  // namespace

// -- matmul (nn) -------------------------------------------------------------

void matmul_into(Tensor& c, const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul needs 2-D operands");
  check_not_aliased(c, a, b, "matmul_into");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  STELLARIS_CHECK_MSG(b.dim(0) == k, "matmul inner-dim mismatch: "
                                         << shape_str(a.shape()) << " x "
                                         << shape_str(b.shape()));
  c.ensure_shape({m, n});
  const std::uint64_t flops = 2ull * m * n * k;
  gemm_calls().add(1);
  gemm_flop_counter().add(flops);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  dispatch_row_panels(m, flops, [&](std::size_t i0, std::size_t i1) {
    gemm_nn_panel(i0, i1, n, k, pa, k, pb, pc);
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(c, a, b);
  return c;
}

// -- matmul_tn ---------------------------------------------------------------

void matmul_tn_into(Tensor& c, const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul_tn needs 2-D operands");
  check_not_aliased(c, a, b, "matmul_tn_into");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  STELLARIS_CHECK_MSG(b.dim(0) == k, "matmul_tn inner-dim mismatch");
  c.ensure_shape({m, n});
  const std::uint64_t flops = 2ull * m * n * k;
  gemm_calls().add(1);
  gemm_flop_counter().add(flops);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  dispatch_row_panels(m, flops, [&](std::size_t i0, std::size_t i1) {
    // Pack Aᵀ[i0..i1) into a contiguous (i1-i0, k) panel — pure data
    // movement, so the k-accumulation order below is untouched — then run
    // the nn panel on it. Per-thread scratch: workers pack independently.
    auto pack = ScratchPool::local().take({i1 - i0, k});
    float* pp = pack->data().data();
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = pa + kk * m;
      for (std::size_t i = i0; i < i1; ++i)
        pp[(i - i0) * k + kk] = arow[i];
    }
    gemm_nn_panel(0, i1 - i0, n, k, pp, k, pb, pc + i0 * n);
  });
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_tn_into(c, a, b);
  return c;
}

// -- matmul_nt ---------------------------------------------------------------

void matmul_nt_into(Tensor& c, const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul_nt needs 2-D operands");
  check_not_aliased(c, a, b, "matmul_nt_into");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  STELLARIS_CHECK_MSG(b.dim(1) == k, "matmul_nt inner-dim mismatch");
  c.ensure_shape({m, n});
  const std::uint64_t flops = 2ull * m * n * k;
  gemm_calls().add(1);
  gemm_flop_counter().add(flops);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // Pack Bᵀ (n×k → k×n) once, then run the nn panels on it. A dot-product
  // micro-kernel can't be vectorized without reassociating the k chain
  // (which would break bit-exactness); the transpose is pure data movement,
  // so the nn kernel's per-element k order — ascending from 0 — is exactly
  // the reference nt order. Packed before the dispatch: panels share it.
  auto packed = ScratchPool::local().take({k, n});
  float* pp = packed->data().data();
  for (std::size_t j = 0; j < n; ++j) {
    const float* brow = pb + j * k;
    for (std::size_t kk = 0; kk < k; ++kk) pp[kk * n + j] = brow[kk];
  }
  dispatch_row_panels(m, flops, [&](std::size_t i0, std::size_t i1) {
    gemm_nn_panel(i0, i1, n, k, pa, k, pp, pc);
  });
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_nt_into(c, a, b);
  return c;
}

// -- reference kernels --------------------------------------------------------
// The seed's loops, minus the `if (aik == 0.0f) continue;` zero-skip: that
// branch silently dropped 0·NaN / 0·Inf terms (which must produce NaN) and
// cost a branch per element on dense data. Kept naive on purpose — this is
// the oracle the blocked kernels are bit-compared against.

namespace reference {

Tensor matmul(const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul needs 2-D operands");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  STELLARIS_CHECK_MSG(b.dim(0) == k, "matmul inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // ikj loop order: unit-stride inner loop over both B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul_tn needs 2-D operands");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  STELLARIS_CHECK_MSG(b.dim(0) == k, "matmul_tn inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  STELLARIS_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                      "matmul_nt needs 2-D operands");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  STELLARIS_CHECK_MSG(b.dim(1) == k, "matmul_nt inner-dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float s = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      pc[i * n + j] = s;
    }
  }
  return c;
}

}  // namespace reference
}  // namespace stellaris::ops
