#include "sim/driver.hpp"

#include <thread>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace stellaris::sim {

const char* driver_kind_name(DriverKind kind) {
  switch (kind) {
    case DriverKind::kVirtual: return "virtual";
    case DriverKind::kConcurrent: return "concurrent";
  }
  return "?";
}

std::optional<DriverKind> parse_driver_kind(std::string_view name) {
  if (name == "virtual") return DriverKind::kVirtual;
  if (name == "concurrent") return DriverKind::kConcurrent;
  return std::nullopt;
}

std::size_t resolve_driver_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t invocation_stream(std::uint64_t run_seed,
                                std::uint64_t invocation_id,
                                std::uint64_t attempt) {
  // Two SplitMix64 rounds mix each key component through the full state, so
  // adjacent (id, attempt) pairs land on decorrelated streams. Constants are
  // SplitMix64's own increments, reused as odd mixers.
  SplitMix64 a(run_seed ^ (invocation_id * 0x9e3779b97f4a7c15ULL));
  SplitMix64 b(a.next() ^ (attempt * 0xbf58476d1ce4e5b9ULL));
  return b.next();
}

// ---------------------------------------------------------------------------
// JobState
// ---------------------------------------------------------------------------

Driver::JobState::JobState(std::function<void()> body,
                           std::shared_ptr<JobState> after)
    : body_(std::move(body)), after_(std::move(after)) {
  STELLARIS_CHECK(body_ != nullptr);
}

Driver::JobState::~JobState() {
  // A job abandoned by the platform (its invocation was reclaim-killed, so
  // the merge never ran) drops here with its error unread. The result was
  // going to be discarded anyway — the container's output died with the VM
  // — but a throwing body is still worth a line in the log.
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    if (error_ && !error_consumed_) err = error_;
  }
  if (!err) return;
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    LOG_WARN << "abandoned driver job had thrown: " << e.what();
  } catch (...) {
    LOG_WARN << "abandoned driver job had thrown a non-std exception";
  }
}

void Driver::JobState::run() {
  // Predecessor wait happens with NO lock held; `after_` was dequeued
  // strictly before this job (submit-order FIFO), so it is already running
  // or done on some thread and this wait always terminates.
  if (after_) after_->wait_finished();
  try {
    body_();
  } catch (...) {
    MutexLock lock(mu_);
    error_ = std::current_exception();
  }
  {
    MutexLock lock(mu_);
    finished_ = true;
  }
  cv_.notify_all();
  // Release captured resources (payload views, model refs) deterministically
  // at finish, not at whenever the last Job handle dies.
  body_ = nullptr;
  after_.reset();
}

void Driver::JobState::wait_finished() {
  MutexLock lock(mu_);
  while (!finished_locked()) cv_.wait(mu_);
}

void Driver::JobState::rethrow_if_error() {
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    STELLARIS_CHECK_MSG(finished_, "rethrow_if_error before job finished");
    err = error_;
    error_consumed_ = true;
  }
  if (err) std::rethrow_exception(err);
}

void Driver::join(const Job& job) {
  STELLARIS_CHECK(job != nullptr);
  job->wait_finished();
  job->rethrow_if_error();
}

// ---------------------------------------------------------------------------
// InlineDriver
// ---------------------------------------------------------------------------

Driver::Job InlineDriver::submit(std::function<void()> body,
                                 const Job& after) {
  auto job = std::make_shared<JobState>(std::move(body), after);
  job->run();  // the predecessor already ran at ITS submit; the wait is free
  return job;
}

Driver& inline_driver() {
  static InlineDriver driver;
  return driver;
}

std::unique_ptr<Driver> make_driver(DriverKind kind, std::size_t threads) {
  if (kind == DriverKind::kConcurrent)
    return make_concurrent_driver(threads);
  return std::make_unique<InlineDriver>();
}

}  // namespace stellaris::sim
