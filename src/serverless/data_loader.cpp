#include "serverless/data_loader.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace stellaris::serverless {

GpuDataLoader::GpuDataLoader(const LatencyModel& latency, std::uint64_t seed)
    : latency_(latency), rng_(seed) {}

std::uint64_t GpuDataLoader::on_trajectory(double now, std::size_t bytes) {
  const double transfer =
      latency_.jittered(latency_.transfer_s(DataTier::kCache, bytes), rng_);
  const std::uint64_t id = next_id_++;
  in_flight_[id] = Transfer{now, now + transfer};
  return id;
}

double GpuDataLoader::learner_wait_s(std::uint64_t id, double now) {
  auto it = in_flight_.find(id);
  STELLARIS_CHECK_MSG(it != in_flight_.end(),
                      "unknown or already-claimed batch " << id);
  const Transfer t = it->second;
  in_flight_.erase(it);
  if (t.ready <= now) {
    ++hits_;
    overlapped_s_ += t.ready - t.start;  // the whole transfer was hidden
    return 0.0;
  }
  ++misses_;
  overlapped_s_ += std::max(0.0, now - t.start);  // partial overlap
  return t.ready - now;
}

}  // namespace stellaris::serverless
