// Environment interface — the C++ equivalent of the Gym API surface the
// paper's actors program against: reset(seed) → obs, step(action) →
// (obs, reward, done), plus a static spec describing spaces.
//
// Six environments mirror the paper's benchmark suite (§VIII-A):
//   continuous (MuJoCo proxies):  Hopper, Humanoid, Walker2d
//   discrete  (Atari proxies):    SpaceInvaders, Qbert, Gravitar
// See DESIGN.md §1 for why these substitutions preserve the relevant
// behaviour.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/actor_critic.hpp"

namespace stellaris::envs {

/// Static description of an environment's interface.
struct EnvSpec {
  std::string name;
  nn::ObsSpec obs;
  nn::ActionKind action_kind = nn::ActionKind::kContinuous;
  std::size_t act_dim = 0;       ///< action vector dim, or #discrete actions
  std::size_t max_steps = 0;     ///< episode step cap
  /// Reward scale hint: roughly the per-episode reward of a competent
  /// policy; benches use it to normalize curves across environments.
  double reward_scale = 1.0;
};

/// Result of one environment step.
struct StepResult {
  std::vector<float> obs;
  double reward = 0.0;
  bool done = false;
};

/// Step outcome without the observation vector — the span-based `_into`
/// stepping API writes the observation into a caller-owned buffer instead,
/// so the per-step `std::vector<float>` allocation of StepResult vanishes
/// from the actor hot loop.
struct StepOut {
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual const EnvSpec& spec() const = 0;

  /// Start a new episode; the seed fully determines the episode's noise.
  virtual std::vector<float> reset(std::uint64_t seed) = 0;

  /// Continuous step. Throws for discrete environments.
  virtual StepResult step(std::span<const float> action);

  /// Discrete step. Throws for continuous environments.
  virtual StepResult step_discrete(std::size_t action);

  // -- allocation-free variants ----------------------------------------------
  // `obs` must have exactly spec().obs.flat_dim elements. The draw order of
  // every RNG consumed (observation noise, game randomness) is identical to
  // the allocating API, so mixing the two styles on one env instance stays
  // deterministic. Default implementations delegate to the allocating
  // virtuals and copy; the concrete envs override with direct writes.

  /// reset() into a caller buffer.
  virtual void reset_into(std::uint64_t seed, std::span<float> obs);

  /// step() into a caller buffer. The action span may alias anything except
  /// `obs`.
  virtual StepOut step_into(std::span<const float> action,
                            std::span<float> obs);

  /// step_discrete() into a caller buffer.
  virtual StepOut step_discrete_into(std::size_t action, std::span<float> obs);
};

/// Construct an environment by paper name: "Hopper", "Humanoid",
/// "Walker2d", "SpaceInvaders", "Qbert", "Gravitar".
std::unique_ptr<Env> make_env(const std::string& name);

/// Spec lookup without construction (cheap; used by config validation).
EnvSpec env_spec(const std::string& name);

/// All six benchmark environment names, MuJoCo proxies first.
const std::vector<std::string>& benchmark_env_names();

}  // namespace stellaris::envs
