// Wire encoding for policy snapshots in the distributed cache, plus the
// key-naming conventions shared by actors, learners, and the parameter
// function.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stellaris::core {

/// Cache key layout:
///   policy/latest            — current policy weights + version
///   policy/target            — IMPACT target network weights
///   traj/<id>                — serialized SampleBatch from an actor
///   grad/<id>                — serialized GradientMsg from a learner
namespace keys {
inline const std::string kPolicyLatest = "policy/latest";
inline const std::string kPolicyTarget = "policy/target";
std::string trajectory(std::uint64_t id);
std::string gradient(std::uint64_t id);
}  // namespace keys

/// Encode flat policy weights with their version.
std::vector<std::uint8_t> encode_policy(const std::vector<float>& params,
                                        std::uint64_t version);

/// Decode (params, version).
std::pair<std::vector<float>, std::uint64_t> decode_policy(
    const std::vector<std::uint8_t>& bytes);

}  // namespace stellaris::core
