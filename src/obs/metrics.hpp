// Metrics registry — named counters, gauges, and fixed-bucket histograms
// with lock-cheap updates.
//
// Registration (name → instrument) takes the registry mutex once; the
// returned references are stable for the life of the process, so call
// sites look instruments up at construction time and every subsequent
// update is a handful of relaxed atomics — cheap enough to leave on in the
// hot paths without perturbing the virtual-time results.
//
// Snapshots export as JSON (machine-readable, round-trips through the
// tests' parser) or CSV (for quick spreadsheet/plot use).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace stellaris::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double dx);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-width binned histogram over [lo, hi]; out-of-range observations
/// clamp into the edge bins (mirroring util/stats.hpp's Histogram), while
/// sum/min/max track the exact values. All updates are relaxed atomics.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t bins);

  void observe(double x);

  std::uint64_t count() const { return n_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Exact min/max of observed values (0 when empty).
  double min() const;
  double max() const;

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
  std::uint64_t bin_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// q-quantile (q in [0,1]) estimated from the buckets with linear
  /// interpolation inside the containing bucket — accurate to one bucket
  /// width. Returns 0 when empty.
  double quantile(double q) const;

  void reset();

 private:
  double lo_, hi_, width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> n_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Look up or create. References stay valid for the registry's lifetime;
  /// reset() zeroes values but never invalidates them. Re-registering a
  /// histogram with different bounds keeps the original bounds.
  Counter& counter(const std::string& name) EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) EXCLUDES(mu_);
  FixedHistogram& histogram(const std::string& name, double lo, double hi,
                            std::size_t bins) EXCLUDES(mu_);

  /// Zero every instrument in place (handles stay valid).
  void reset() EXCLUDES(mu_);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{lo,hi,count,sum,
  /// min,max,buckets:[...]}}}
  void write_json(std::ostream& os) const EXCLUDES(mu_);

  /// Flat rows: kind,name,field,value (one row per scalar; histograms emit
  /// count/sum/mean/min/max/p50/p95/p99).
  void write_csv(std::ostream& os) const EXCLUDES(mu_);

  /// Dump to `path` — CSV when the extension is .csv, JSON otherwise.
  bool write_file(const std::string& path) const EXCLUDES(mu_);

  /// The process-wide registry used by the instrumented subsystems.
  static MetricsRegistry& global();

 private:
  // Reader/writer split: registration (rare, at component construction)
  // takes the mutex exclusively; exporters take it shared, so concurrent
  // JSON/CSV snapshots never serialize against each other. Instrument
  // *values* are relaxed atomics and not guarded at all.
  mutable SharedMutex mu_{"obs/metrics-registry", lock_rank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace stellaris::obs
