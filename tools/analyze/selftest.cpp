// Self-test over the checked-in corpus (tools/analyze/selftest/): a
// miniature project tree with at least one passing and one failing
// translation unit per rule family. Failing lines carry `// expect: <rule>`
// annotations (same line or the line above); findings that cannot be
// annotated inline (DESIGN.md rows, config errors) are listed by id in the
// corpus's expected.txt. The test fails symmetrically: an expected finding
// that does not fire is as fatal as an unexpected one that does — the
// corpus pins the analyzer's sensitivity, not just its specificity.
#include "analyzer.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>

namespace stellaris::analyze {

int run_selftest(const std::string& corpus_root,
                 const std::string& rule_filter) {
  const std::string layers = corpus_root + "/layers.toml";
  std::vector<Finding> findings = analyze_tree(corpus_root, layers);
  if (!rule_filter.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return f.rule != rule_filter;
                                  }),
                   findings.end());
  }

  // Reload the corpus for the expectation annotations (analyze_tree does
  // not expose its project); the corpus is tiny so the second load is free.
  const Project project = load_project(corpus_root, {"src", "tools", "bench"});

  // Ids expected via the side file (findings in .md/.toml files).
  std::map<std::string, bool> side_expected;  // id -> matched
  {
    std::ifstream in(corpus_root + "/expected.txt");
    std::string raw;
    while (std::getline(in, raw)) {
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw = raw.substr(0, hash);
      const std::size_t a = raw.find_first_not_of(" \t\r");
      if (a == std::string::npos) continue;
      const std::size_t b = raw.find_last_not_of(" \t\r");
      const std::string id = raw.substr(a, b - a + 1);
      if (!rule_filter.empty() && id.rfind(rule_filter + " ", 0) != 0) continue;
      side_expected.emplace(id, false);
    }
  }

  // Inline expectations: (file, line, rule) -> matched.
  struct Inline {
    std::string file;
    int line;
    std::string rule;
    bool matched = false;
  };
  std::vector<Inline> inline_expected;
  for (const auto& file : project.files)
    for (const auto& [line, rules] : file.expects)
      for (const auto& rule : rules) {
        if (!rule_filter.empty() && rule != rule_filter) continue;
        inline_expected.push_back({file.rel, line, rule});
      }

  int failures = 0;
  auto fail = [&](const std::string& what) {
    std::cout << "self-test FAIL: " << what << "\n";
    ++failures;
  };

  for (const auto& f : findings) {
    bool matched = false;
    // An `// expect:` annotation covers its own line and the line below
    // (annotation-above-code style).
    for (auto& e : inline_expected) {
      if (e.matched || e.rule != f.rule || e.file != f.file) continue;
      if (e.line != f.line && e.line != f.line - 1) continue;
      e.matched = true;
      matched = true;
      break;
    }
    if (!matched) {
      auto it = side_expected.find(f.id());
      if (it != side_expected.end()) {
        it->second = true;
        matched = true;
      }
    }
    if (!matched) fail("unexpected finding: " + f.render());
  }
  for (const auto& e : inline_expected)
    if (!e.matched)
      fail("expected [" + e.rule + "] finding at " + e.file + ":" +
           std::to_string(e.line) + " did not fire");
  for (const auto& [id, matched] : side_expected)
    if (!matched) fail("expected finding id `" + id + "` did not fire");

  if (failures == 0) {
    std::cout << "self-test OK: " << findings.size() << " expected finding(s)"
              << (rule_filter.empty() ? "" : " [" + rule_filter + "]")
              << ", all matched\n";
    return 0;
  }
  std::cout << "self-test: " << failures << " failure(s)\n";
  return 1;
}

}  // namespace stellaris::analyze
