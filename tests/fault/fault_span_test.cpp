// Telemetry under fault injection (satellite of the run-telemetry PR):
// invocations killed by a crash or a spot reclamation must still settle
// their trace spans and ledger events — ending at the kill time, never at
// the originally predicted completion, and never left dangling open.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/stellaris_trainer.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "serverless/platform.hpp"
#include "util/mini_json.hpp"

namespace stellaris::serverless {
namespace {

ClusterSpec one_gpu_vm() {
  ClusterSpec spec;
  spec.vms = {{VmType::p3_2xlarge(), 1}};  // 1 host -> deterministic victim
  return spec;
}

struct Fixture {
  sim::Engine engine;
  ServerlessPlatform platform;
  fault::FaultInjector injector;

  explicit Fixture(fault::FaultPlan plan,
                   ClusterSpec cluster = ClusterSpec::regular())
      : platform(engine, std::move(cluster), LatencyModel{}, 1),
        injector(engine, std::move(plan)) {
    platform.set_fault_injector(&injector);
  }
};

/// RAII trace + ledger capture for one test body.
struct Capture {
  obs::TraceRecorder trace;
  obs::LedgerRecorder ledger;
  Capture() {
    obs::install_trace(&trace);
    obs::install_ledger(&ledger);
  }
  ~Capture() {
    obs::install_trace(nullptr);
    obs::install_ledger(nullptr);
  }
};

minijson::Value trace_events(const obs::TraceRecorder& rec) {
  std::ostringstream os;
  rec.write_json(os);
  minijson::Value root = minijson::parse(os.str());
  return root.at("traceEvents");
}

/// All complete ("X") spans, optionally excluding the nested phase spans.
std::vector<const minijson::Value*> spans_of(const minijson::Value& evs,
                                             bool include_phases = false) {
  std::vector<const minijson::Value*> out;
  for (const auto& ev : evs.arr) {
    if (ev.at("ph").string() != "X") continue;
    if (!include_phases && ev.at("cat").string() == "phase") continue;
    out.push_back(&ev);
  }
  return out;
}

TEST(FaultSpan, ReclaimedInvocationSpanEndsAtReclaim) {
  fault::FaultPlan plan;
  plan.schedule.push_back({0.2, fault::FaultKind::kVmReclaim, -1, 0.0});
  Capture cap;
  Fixture f(plan, one_gpu_vm());

  ServerlessPlatform::InvokeOptions opts;
  opts.kind = FnKind::kLearner;
  opts.compute_s = 10.0;  // would run far past the reclaim
  opts.ledger_id = 42;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke(opts, [&](const auto& r) { result = r; });
  f.engine.run();

  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error, fault::ErrorKind::kVmReclaim);
  // The span exists (not dangling) and ends exactly at the kill, not at
  // the ~10 s the invocation would have taken.
  const auto evs = trace_events(cap.trace);
  const auto spans = spans_of(evs);
  ASSERT_EQ(spans.size(), 1u);
  const auto& span = *spans[0];
  EXPECT_EQ(span.at("cat").string(), "learner");
  const double end_us =
      span.at("ts").number() + span.at("dur").number();
  // 0.1 µs tolerance: ts/dur are rendered at %.9g microseconds.
  EXPECT_NEAR(end_us, result.end_time_s * 1e6, 0.1);
  EXPECT_LT(result.end_time_s, 1.0);
  EXPECT_EQ(span.at("args").at("error").string(), "vm_reclaim");
  // Nested phase spans are clipped to the kill.
  for (const auto* ph : spans_of(evs, /*include_phases=*/true)) {
    EXPECT_LE(ph->at("ts").number() + ph->at("dur").number(),
              end_us + 0.1);
  }

  // The ledger invoke event settles at the same instant with the same
  // verdict and the propagated ledger id.
  ASSERT_EQ(cap.ledger.size(), 2u);  // invoke + reclaim
  bool saw_invoke = false, saw_reclaim = false;
  for (const auto& line : cap.ledger.lines()) {
    const minijson::Value v = minijson::parse(line);
    if (v.at("ev").string() == "invoke") {
      saw_invoke = true;
      EXPECT_DOUBLE_EQ(v.at("t").number(), result.end_time_s);
      EXPECT_DOUBLE_EQ(v.at("lid").number(), 42.0);
      EXPECT_EQ(v.at("ok").kind, minijson::Value::Kind::kBool);
      EXPECT_EQ(v.at("error").string(), "vm_reclaim");
    } else if (v.at("ev").string() == "reclaim") {
      saw_reclaim = true;
      EXPECT_DOUBLE_EQ(v.at("killed").number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_invoke);
  EXPECT_TRUE(saw_reclaim);
}

TEST(FaultSpan, CrashedInvocationSpanEndsAtCrash) {
  fault::FaultPlan plan;
  plan.schedule.push_back(
      {0.0, fault::FaultKind::kCrash, int(FnKind::kLearner), 0.25});
  Capture cap;
  Fixture f(plan);

  ServerlessPlatform::InvokeOptions opts;
  opts.kind = FnKind::kLearner;
  opts.compute_s = 4.0;
  ServerlessPlatform::InvokeResult result;
  f.platform.invoke(opts, [&](const auto& r) { result = r; });
  f.engine.run();

  ASSERT_FALSE(result.ok);
  const auto evs = trace_events(cap.trace);
  const auto spans = spans_of(evs);
  ASSERT_EQ(spans.size(), 1u);
  // 0.1 µs tolerance: ts/dur are rendered at %.9g microseconds.
  EXPECT_NEAR(spans[0]->at("ts").number() + spans[0]->at("dur").number(),
              result.end_time_s * 1e6, 0.1);
  EXPECT_EQ(spans[0]->at("args").at("error").string(), "crash");
}

// fig_faults-style end-to-end regression: a full faulty training run (random
// crashes + stragglers + a scripted mid-run reclaim) must leave the trace
// and ledger settle-consistent — every span closed within the run, no two
// invocation spans overlapping on one container track, and exactly one
// ledger invoke event per trace invocation span.
TEST(FaultSpan, FaultyTrainingRunLeavesNoDanglingSpans) {
  core::TrainConfig cfg;
  cfg.env_name = "Hopper";
  cfg.rounds = 6;
  cfg.num_actors = 4;
  cfg.horizon = 32;
  cfg.trajs_per_learner = 2;
  cfg.network_width = 8;
  cfg.eval_episodes = 1;
  cfg.seed = 7;
  cfg.faults.config.crash_prob = 0.15;
  cfg.faults.config.straggler_prob = 0.1;
  cfg.faults.config.straggler_mult = 3.0;
  cfg.faults.schedule.push_back({0.2, fault::FaultKind::kVmReclaim, -1, 0.0});

  Capture cap;
  const auto result = core::run_training(cfg);
  ASSERT_GT(result.faults.failed_invocations, 0u);

  const auto evs = trace_events(cap.trace);
  // Group invocation spans (category actor/learner/parameter) by track.
  struct Span {
    double t0, t1;
  };
  std::map<double, std::vector<Span>> by_track;  // keyed by tid
  std::size_t invocation_spans = 0;
  const double end_us = result.total_time_s * 1e6;
  for (const auto* sp : spans_of(evs)) {
    const std::string& cat = sp->at("cat").string();
    if (cat != "actor" && cat != "learner" && cat != "parameter") continue;
    ++invocation_spans;
    const double t0 = sp->at("ts").number();
    const double t1 = t0 + sp->at("dur").number();
    EXPECT_GE(t0, 0.0);
    // No span may extend past the end of the run: killed invocations were
    // settled at the kill, not at their predicted completion (0.1 µs slack
    // for the %.9g microsecond rendering).
    EXPECT_LE(t1, end_us + 0.1);
    by_track[sp->at("tid").number()].push_back({t0, t1});
  }
  ASSERT_GT(invocation_spans, 0u);
  // A container runs one invocation at a time, so its settled spans must
  // not overlap — a dangling open span rewritten at settle would.
  for (auto& [tid, spans] : by_track) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.t0 < b.t0; });
    // Back-to-back spans abut exactly in virtual seconds; after the %.9g
    // microsecond rendering they may "overlap" by rendering noise only. A
    // genuinely rewritten dangling span would overlap by a full duration.
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].t1, spans[i].t0 + 0.1)
          << "overlapping spans on track " << tid;
  }

  // Ledger/trace settle consistency: one invoke event per invocation span,
  // every event timestamped within the run.
  std::size_t invoke_events = 0;
  for (const auto& line : cap.ledger.lines()) {
    const minijson::Value v = minijson::parse(line);
    EXPECT_LE(v.at("t").number(), result.total_time_s + 1e-9);
    if (v.at("ev").string() == "invoke") ++invoke_events;
  }
  EXPECT_EQ(invoke_events, invocation_spans);
}

}  // namespace
}  // namespace stellaris::serverless
