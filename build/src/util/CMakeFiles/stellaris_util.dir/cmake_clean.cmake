file(REMOVE_RECURSE
  "CMakeFiles/stellaris_util.dir/csv.cpp.o"
  "CMakeFiles/stellaris_util.dir/csv.cpp.o.d"
  "CMakeFiles/stellaris_util.dir/logging.cpp.o"
  "CMakeFiles/stellaris_util.dir/logging.cpp.o.d"
  "CMakeFiles/stellaris_util.dir/rng.cpp.o"
  "CMakeFiles/stellaris_util.dir/rng.cpp.o.d"
  "CMakeFiles/stellaris_util.dir/serialize.cpp.o"
  "CMakeFiles/stellaris_util.dir/serialize.cpp.o.d"
  "CMakeFiles/stellaris_util.dir/stats.cpp.o"
  "CMakeFiles/stellaris_util.dir/stats.cpp.o.d"
  "CMakeFiles/stellaris_util.dir/thread_pool.cpp.o"
  "CMakeFiles/stellaris_util.dir/thread_pool.cpp.o.d"
  "libstellaris_util.a"
  "libstellaris_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
