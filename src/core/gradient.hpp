// Gradient message: what a learner function submits to the distributed
// cache for the parameter function to aggregate. Carries the metadata the
// two Stellaris mechanisms need — the policy version the learner pulled
// (staleness bookkeeping, §V-C) and the batch-mean importance ratio against
// the actor policy (global truncation, §V-A) — plus diagnostics.
#pragma once

#include <cstdint>
#include <vector>

#include "util/serialize.hpp"

namespace stellaris::core {

struct GradientMsg {
  std::vector<float> grad;          ///< flat gradient over all parameters
  std::uint64_t learner_id = 0;
  std::uint64_t pulled_version = 0; ///< policy version the learner trained on
  double mean_ratio = 1.0;          ///< batch mean π_learner/μ_actor
  std::size_t batch_size = 0;
  double kl = 0.0;                  ///< sample KL(μ ‖ π) diagnostic
  double compute_time_s = 0.0;      ///< virtual seconds spent computing

  std::vector<std::uint8_t> serialize() const;
  static GradientMsg deserialize(ByteSpan bytes);
  /// Decode into an existing message, reusing its grad buffer's capacity.
  static void deserialize_into(ByteSpan bytes, GradientMsg& out);
};

}  // namespace stellaris::core
