// Parameter Function — the serverless function that owns the authoritative
// policy, applies Stellaris' staleness-aware aggregation rule (§V-C):
//
//   g_c = (1/H_c) Σ_i  (α₀/δ_j^{1/v}) · s_i · g_{i,j},   θ_{c+1} = θ_c − g_c
//
// where s_i is the global importance-sampling truncation scale (Eq. 2) and
// the learning-rate factor follows Eq. 4. The descent itself runs through a
// pluggable optimizer (Adam per Table III) so the convergence property of
// the underlying optimizer is preserved (§VI-A).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy_io.hpp"
#include "core/staleness.hpp"
#include "core/truncation.hpp"
#include "nn/optimizer.hpp"

namespace stellaris::core {

class ParameterFunction {
 public:
  struct Config {
    double alpha0 = 5e-5;        ///< base learning rate (Table III)
    double smooth_v = 3.0;       ///< Eq. 4 root factor
    double rho = 1.0;            ///< Eq. 2 truncation threshold
    bool enable_truncation = true;
    bool enable_staleness_lr = true;
    std::string optimizer = "adam";
    double max_grad_norm = 10.0;
    /// Optional clamp segment (continuous policies' log-std): after each
    /// update, params[clamp_offset .. +clamp_len) is clamped to
    /// [clamp_lo, clamp_hi]. clamp_len = 0 disables.
    std::size_t clamp_offset = 0;
    std::size_t clamp_len = 0;
    float clamp_lo = -2.5f;
    float clamp_hi = 0.0f;
  };

  ParameterFunction(std::vector<float> initial_params, Config cfg);

  struct AggregateStats {
    std::uint64_t new_version = 0;
    std::size_t group_size = 0;
    double mean_staleness = 0.0;
    double max_staleness = 0.0;
    double mean_lr_factor = 1.0;    ///< mean δ^{-1/v} applied
    double mean_trunc_scale = 1.0;  ///< mean Eq. 2 rescale applied
    double grad_norm = 0.0;         ///< post-aggregation gradient norm
  };

  /// Aggregate a drained gradient group and update the policy. Staleness of
  /// each gradient is measured against the *current* version.
  AggregateStats aggregate(const std::vector<GradientQueue::Item>& group);

  const std::vector<float>& params() const { return params_; }
  std::uint64_t version() const { return version_; }
  std::size_t param_dim() const { return params_.size(); }

  /// Per-gradient staleness values of every aggregation so far — the data
  /// behind the paper's Fig. 3(b) staleness PDF.
  const std::vector<double>& staleness_history() const {
    return staleness_history_;
  }

  /// Snapshot the recoverable state (params, version, applied-gradient
  /// count, optimizer moments) as a Checkpoint for the cache.
  Checkpoint serialize_state() const;

  /// Restore from a checkpoint after a crash. The version counter is kept
  /// MONOTONE — max(current, checkpoint) — modelling a version sequence
  /// that survives the crash (e.g. cache-side INCR): gradients already in
  /// flight carry pulled_version values aggregate() must never see exceed
  /// version_. Weights, moments, and the gradient count roll back to the
  /// checkpoint; the staleness history is not reconstructed.
  void restore_state(const Checkpoint& ckpt);

  /// Gradients aggregated since construction (survives restore).
  std::uint64_t applied_gradients() const { return applied_gradients_; }

 private:
  std::vector<float> params_;
  Config cfg_;
  std::unique_ptr<nn::FlatOptimizer> optimizer_;
  std::uint64_t version_ = 0;
  std::uint64_t applied_gradients_ = 0;
  std::vector<double> staleness_history_;
};

}  // namespace stellaris::core
