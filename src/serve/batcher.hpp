// Dynamic request batching for one tenant (DESIGN.md §15).
//
// Requests queue into per-policy-version LANES (a batch must be a single
// forward through a single version, so versions cannot share a batch during
// a canary). A lane becomes dispatchable when it holds `max_batch` requests
// or when its oldest request has waited `max_wait_s` of virtual time. The
// batcher is pure bookkeeping over values the caller passes in — it never
// touches the engine; ServeEngine owns the cutoff timers and asks
// `ready_version(now)` at each pump.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "serve/serve_config.hpp"

namespace stellaris::serve {

/// One client inference request, from arrival to batch settlement.
struct ServeRequest {
  std::uint64_t id = 0;        ///< process-unique; doubles as the ledger id
  std::size_t tenant = 0;      ///< tenant index in ServeConfig::tenants
  std::uint64_t version = 0;   ///< policy version assigned at admission
  double arrival_s = 0.0;      ///< virtual arrival time (latency epoch)
  std::uint64_t client = 0;    ///< closed-loop client id (open loop: 0)
  std::vector<float> obs;      ///< observation vector (obs_dim floats)
};

class Batcher {
 public:
  explicit Batcher(BatchConfig cfg) : cfg_(cfg) {}

  const BatchConfig& config() const { return cfg_; }

  /// Queue a request into its version lane. Returns true if the lane was
  /// empty before (the caller arms that lane's cutoff timer).
  bool enqueue(ServeRequest req);

  /// Requests currently queued across all lanes.
  std::size_t queued() const { return queued_; }

  /// Dispatchable lane (full or expired) whose HEAD request has waited
  /// longest; ties break toward the lower version. nullopt when none.
  std::optional<std::uint64_t> ready_version(double now) const;

  /// Arrival time of the oldest head among dispatchable lanes (the
  /// cross-tenant fairness key ServeEngine sorts on). nullopt when none.
  std::optional<double> ready_head_arrival(double now) const;

  /// Pop up to `max_batch` requests from lane `version`, FIFO.
  std::vector<ServeRequest> take(std::uint64_t version);

  /// Head arrival time of a lane, if it still holds requests — used to
  /// re-arm the cutoff for the remainder after a take().
  std::optional<double> head_arrival(std::uint64_t version) const;

  /// Versions of all non-empty lanes, ascending (cutoff re-arm sweep).
  std::vector<std::uint64_t> pending_versions() const;

 private:
  bool lane_ready(const std::deque<ServeRequest>& lane, double now) const;

  BatchConfig cfg_;
  std::map<std::uint64_t, std::deque<ServeRequest>> lanes_;
  std::size_t queued_ = 0;
};

}  // namespace stellaris::serve
