// Container pool: the serverless function substrate.
//
// Models the lifecycle the paper implements with Docker on EC2 (§VII):
// a fixed slot capacity per pool (learner slots per GPU, actor slots per
// core), cold starts when no warm container exists, pre-warming ahead of
// predicted invocations, and a keep-alive window (10 minutes, as in
// OpenWhisk) after release before a container goes cold. Runs in virtual
// time: callers pass `now` explicitly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serverless/latency_model.hpp"
#include "util/annotated_mutex.hpp"

namespace stellaris::serverless {

class ContainerPool {
 public:
  /// `capacity` = maximum concurrently running containers. `name` labels
  /// the pool's metrics ("containers.<name>.cold_starts", ...).
  ContainerPool(std::size_t capacity, const LatencyModel& lat,
                std::uint64_t seed, std::string name = "pool");

  const std::string& name() const { return name_; }

  struct Acquisition {
    std::size_t container_id = 0;
    double start_latency_s = 0.0;
    bool cold = false;
  };

  /// Claim a container at virtual time `now`; nullopt if the pool is full.
  std::optional<Acquisition> acquire(double now) EXCLUDES(mu_);

  /// Return a container to the warm pool at `now`; it stays warm for the
  /// keep-alive window.
  void release(std::size_t container_id, double now) EXCLUDES(mu_);

  /// Kill a container outright (crash or spot reclamation): whatever its
  /// state, it goes cold immediately — no keep-alive, the runtime is gone.
  /// Capacity is unchanged (the platform models replacement provisioning as
  /// instantly available cold capacity). Safe on already-cold slots.
  void kill(std::size_t container_id) EXCLUDES(mu_);

  std::uint64_t kills() const EXCLUDES(mu_);

  /// Warm up to `n` idle containers at `now` (subject to capacity). Returns
  /// how many were actually warmed. Pre-warm time is excluded from cost,
  /// matching the paper's cost model.
  std::size_t prewarm(std::size_t n, double now) EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::size_t busy() const EXCLUDES(mu_);
  std::size_t warm_idle(double now) const EXCLUDES(mu_);

  std::uint64_t cold_starts() const EXCLUDES(mu_);
  std::uint64_t warm_starts() const EXCLUDES(mu_);

 private:
  enum class State { kCold, kWarmIdle, kBusy };
  struct Slot {
    State state = State::kCold;
    double warm_until = -1.0;
  };

  // The sim driver is single-threaded, but the pool is shared state the
  // real-concurrency driver (and tests) may hit from pool threads; the
  // annotation audit found every field here mutated with no guard at all.
  // Leaf-ranked: nothing else is acquired while held (metrics updates are
  // relaxed atomics, the latency jitter draw is pure computation).
  mutable Mutex mu_{"serverless/container-pool", lock_rank::kContainerPool};
  const std::size_t capacity_;  ///< fixed at construction, lock-free reads
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  LatencyModel lat_;
  Rng rng_ GUARDED_BY(mu_);
  std::string name_;
  std::size_t busy_count_ GUARDED_BY(mu_) = 0;
  std::uint64_t cold_starts_ GUARDED_BY(mu_) = 0;
  std::uint64_t warm_starts_ GUARDED_BY(mu_) = 0;
  std::uint64_t kills_ GUARDED_BY(mu_) = 0;
  obs::Counter* m_cold_;      // process-wide mirrors of the per-pool counts
  obs::Counter* m_warm_;
  obs::Counter* m_prewarmed_;
  obs::Counter* m_kills_;
  obs::Gauge* m_busy_;
};

}  // namespace stellaris::serverless
