file(REMOVE_RECURSE
  "CMakeFiles/stellaris_core.dir/config.cpp.o"
  "CMakeFiles/stellaris_core.dir/config.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/gradient.cpp.o"
  "CMakeFiles/stellaris_core.dir/gradient.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/kl_probe.cpp.o"
  "CMakeFiles/stellaris_core.dir/kl_probe.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/learner_update.cpp.o"
  "CMakeFiles/stellaris_core.dir/learner_update.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/metrics.cpp.o"
  "CMakeFiles/stellaris_core.dir/metrics.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/parameter_function.cpp.o"
  "CMakeFiles/stellaris_core.dir/parameter_function.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/policy_io.cpp.o"
  "CMakeFiles/stellaris_core.dir/policy_io.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/staleness.cpp.o"
  "CMakeFiles/stellaris_core.dir/staleness.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/stellaris_trainer.cpp.o"
  "CMakeFiles/stellaris_core.dir/stellaris_trainer.cpp.o.d"
  "CMakeFiles/stellaris_core.dir/truncation.cpp.o"
  "CMakeFiles/stellaris_core.dir/truncation.cpp.o.d"
  "libstellaris_core.a"
  "libstellaris_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellaris_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
