#include "serverless/cluster.hpp"

#include "util/error.hpp"

namespace stellaris::serverless {

VmType VmType::p3_2xlarge() {
  return {"p3.2xlarge", 3.06, 1, 8, 14.0};
}

VmType VmType::c6a_32xlarge() {
  return {"c6a.32xlarge", 4.896, 0, 128, 0.0};
}

VmType VmType::c6a_8xlarge() {
  return {"c6a.8xlarge", 1.224, 0, 32, 0.0};
}

VmType VmType::p3_16xlarge() {
  return {"p3.16xlarge", 24.48, 8, 64, 14.0};
}

VmType VmType::hpc7a_96xlarge() {
  return {"hpc7a.96xlarge", 7.2, 0, 192, 0.0};
}

std::size_t ClusterSpec::total_gpus() const {
  std::size_t n = 0;
  for (const auto& g : vms) n += g.type.gpus * g.count;
  return n;
}

std::size_t ClusterSpec::total_cpus() const {
  std::size_t n = 0;
  for (const auto& g : vms) n += g.type.vcpus * g.count;
  return n;
}

std::size_t ClusterSpec::learner_slots() const {
  return total_gpus() * learner_slots_per_gpu;
}

std::size_t ClusterSpec::actor_slots() const {
  std::size_t n = 0;
  for (const auto& g : vms)
    if (g.type.gpus == 0) n += g.type.vcpus * g.count;
  return n;
}

double ClusterSpec::learner_unit_price() const {
  // Price of the cheapest GPU-bearing VM divided by its learner capacity.
  for (const auto& g : vms) {
    if (g.type.gpus == 0) continue;
    const double slots =
        static_cast<double>(g.type.gpus * learner_slots_per_gpu);
    return g.type.hourly_price_usd / 3600.0 / slots;
  }
  throw ConfigError("cluster has no GPU VMs for learners");
}

double ClusterSpec::actor_unit_price() const {
  for (const auto& g : vms) {
    if (g.type.gpus != 0) continue;
    return g.type.hourly_price_usd / 3600.0 /
           static_cast<double>(g.type.vcpus);
  }
  throw ConfigError("cluster has no CPU VMs for actors");
}

double ClusterSpec::per_slot_tflops() const {
  for (const auto& g : vms)
    if (g.type.gpus > 0)
      return g.type.gpu_tflops /
             static_cast<double>(learner_slots_per_gpu);
  throw ConfigError("cluster has no GPU VMs");
}

ClusterSpec ClusterSpec::regular() {
  ClusterSpec spec;
  spec.vms = {{VmType::p3_2xlarge(), 2}, {VmType::c6a_32xlarge(), 1}};
  return spec;
}

ClusterSpec ClusterSpec::regular_small() {
  ClusterSpec spec;
  spec.vms = {{VmType::p3_2xlarge(), 2}, {VmType::c6a_8xlarge(), 1}};
  return spec;
}

ClusterSpec ClusterSpec::hpc() {
  ClusterSpec spec;
  spec.vms = {{VmType::p3_16xlarge(), 2}, {VmType::hpc7a_96xlarge(), 5}};
  return spec;
}

}  // namespace stellaris::serverless
