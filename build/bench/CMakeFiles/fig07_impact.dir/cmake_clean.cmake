file(REMOVE_RECURSE
  "CMakeFiles/fig07_impact.dir/fig07_impact.cpp.o"
  "CMakeFiles/fig07_impact.dir/fig07_impact.cpp.o.d"
  "fig07_impact"
  "fig07_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
