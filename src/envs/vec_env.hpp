// Vectorized environment driver: N environment copies stepped as a batch,
// optionally across real threads.
//
// The paper's actors each own one environment; this wrapper is the
// substrate for *serverful* multi-core actors (one process driving many
// envs, as RLlib's rollout workers do) and for the vectorized VecActor
// (DESIGN.md §17) that batches policy inference across envs. Stepping is
// deterministic in serial mode; the threaded mode partitions envs
// statically across the pool so results are identical to serial for the
// same seeds.
//
// RNG discipline: every method that draws auto-reset seeds exists in two
// forms — a legacy form drawing from the member stream (constructor seed),
// and an overload taking a caller-supplied `Rng&`. Driver bodies MUST use
// the caller-`Rng` overloads with the per-invocation keyed stream: the
// member stream is cross-invocation state, and drawing it inside a body
// breaks replay identity (enforced by the driver-purity analyzer, which
// flags member-`rng_` draws in this class).
#pragma once

#include <memory>
#include <vector>

#include "envs/env.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace stellaris::envs {

class VecEnv {
 public:
  /// Construct `n` copies of `name`. `threads` > 0 enables a thread pool
  /// (each env is still stepped by exactly one thread per call).
  VecEnv(const std::string& name, std::size_t n, std::uint64_t seed,
         std::size_t threads = 0);

  std::size_t size() const { return envs_.size(); }
  const EnvSpec& spec() const { return spec_; }

  /// Reset every environment; returns stacked observations (n, obs_dim).
  /// Reset seeds are drawn from `rng` (one per env, in index order); the
  /// no-argument form draws from the member stream.
  Tensor reset_all();
  Tensor reset_all(Rng& rng);
  /// Allocation-free form: `obs` is reshaped to (n, obs_dim) reusing its
  /// capacity.
  void reset_all_into(Rng& rng, Tensor& obs);

  /// Step every environment with the given batch of actions. Continuous:
  /// `actions` is (n, act_dim). Environments that finish are auto-reset;
  /// their `done` flag is reported and the returned observation is the
  /// first of the new episode (the standard Gym vector-env contract).
  struct StepBatch {
    Tensor obs;                    ///< (n, obs_dim)
    std::vector<double> rewards;   ///< (n)
    std::vector<bool> dones;       ///< (n)
    std::vector<double> episode_returns;  ///< completed this step
  };
  StepBatch step(const Tensor& actions);
  StepBatch step(const Tensor& actions, Rng& rng);
  StepBatch step_discrete(const std::vector<std::size_t>& actions);
  StepBatch step_discrete(const std::vector<std::size_t>& actions, Rng& rng);
  /// Allocation-free forms: `out` buffers are reshaped in place; steady
  /// state performs zero heap allocations.
  void step_into(const Tensor& actions, Rng& rng, StepBatch& out);
  void step_discrete_into(const std::vector<std::size_t>& actions, Rng& rng,
                          StepBatch& out);

  // -- single-env forwards ---------------------------------------------------
  // Thin pass-throughs to env `i` for callers that manage episode
  // bookkeeping themselves (VecActor's lazy-reset semantics). They do NOT
  // auto-reset and do NOT touch the batch API's running-return state; only
  // total_steps() advances on steps.
  void reset_env_into(std::size_t i, std::uint64_t seed, std::span<float> obs);
  StepOut step_env_into(std::size_t i, std::span<const float> action,
                        std::span<float> obs);
  StepOut step_env_discrete_into(std::size_t i, std::size_t action,
                                 std::span<float> obs);

  /// Total environment steps taken across all copies.
  std::uint64_t total_steps() const { return total_steps_; }

 private:
  template <typename StepFn>
  void step_impl(const StepFn& fn, Rng& rng, StepBatch& out);

  EnvSpec spec_;
  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<std::uint64_t> env_seeds_;
  std::vector<double> running_returns_;
  // Worker-written scratch for the batch step: plain structs per env (NOT
  // vector<bool>, whose packed bits would race across threads).
  std::vector<StepOut> step_scratch_;
  std::vector<std::uint64_t> reset_seed_scratch_;
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  std::uint64_t total_steps_ = 0;
};

}  // namespace stellaris::envs
