#include "serverless/cluster.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace stellaris::serverless {
namespace {

TEST(VmCatalog, PaperPrices) {
  EXPECT_DOUBLE_EQ(VmType::p3_2xlarge().hourly_price_usd, 3.06);
  EXPECT_DOUBLE_EQ(VmType::c6a_32xlarge().hourly_price_usd, 4.896);
  EXPECT_DOUBLE_EQ(VmType::p3_16xlarge().hourly_price_usd, 24.48);
  EXPECT_DOUBLE_EQ(VmType::hpc7a_96xlarge().hourly_price_usd, 7.2);
}

TEST(Cluster, RegularTestbedMatchesPaper) {
  // §VIII-A: two p3.2xlarge + one c6a.32xlarge → 2 V100s, 128 actor cores.
  const auto spec = ClusterSpec::regular();
  EXPECT_EQ(spec.total_gpus(), 2u);
  EXPECT_EQ(spec.actor_slots(), 128u);
  EXPECT_EQ(spec.learner_slots(), 8u);  // 4 per V100
}

TEST(Cluster, HpcTestbedMatchesPaper) {
  // §VIII-A: two p3.16xlarge + five hpc7a.96xlarge → 16 V100s, 960 cores.
  const auto spec = ClusterSpec::hpc();
  EXPECT_EQ(spec.total_gpus(), 16u);
  EXPECT_EQ(spec.actor_slots(), 960u);
  EXPECT_EQ(spec.learner_slots(), 64u);
}

TEST(Cluster, LearnerUnitPriceIsPaperCostModel) {
  // §VIII-A example: p3.2xlarge at capacity 4 → price / 4 / 3600 per sec.
  const auto spec = ClusterSpec::regular();
  EXPECT_NEAR(spec.learner_unit_price(), 3.06 / 3600.0 / 4.0, 1e-12);
}

TEST(Cluster, ActorUnitPriceIsPerCore) {
  const auto spec = ClusterSpec::regular();
  EXPECT_NEAR(spec.actor_unit_price(), 4.896 / 3600.0 / 128.0, 1e-12);
}

TEST(Cluster, SlotsScaleWithCapacityKnob) {
  auto spec = ClusterSpec::regular();
  spec.learner_slots_per_gpu = 8;
  EXPECT_EQ(spec.learner_slots(), 16u);
  EXPECT_NEAR(spec.learner_unit_price(), 3.06 / 3600.0 / 8.0, 1e-12);
}

TEST(Cluster, PerSlotTflopsSplitsTheGpu) {
  const auto spec = ClusterSpec::regular();
  EXPECT_NEAR(spec.per_slot_tflops(), 14.0 / 4.0, 1e-12);
}

TEST(Cluster, CpuOnlyClusterThrowsForLearnerQueries) {
  ClusterSpec spec;
  spec.vms = {{VmType::c6a_32xlarge(), 1}};
  EXPECT_THROW(spec.learner_unit_price(), ConfigError);
  EXPECT_THROW(spec.per_slot_tflops(), ConfigError);
  EXPECT_EQ(spec.learner_slots(), 0u);
}

TEST(Cluster, RegularSmallIsRightSized) {
  const auto spec = ClusterSpec::regular_small();
  EXPECT_EQ(spec.actor_slots(), 32u);
  EXPECT_EQ(spec.total_gpus(), 2u);
}

}  // namespace
}  // namespace stellaris::serverless
