// Wire encoding for policy snapshots in the distributed cache, plus the
// key-naming conventions shared by actors, learners, and the parameter
// function.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/serialize.hpp"

namespace stellaris::core {

/// Cache key layout:
///   policy/latest            — current policy weights + version
///   policy/target            — IMPACT target network weights
///   ckpt/latest              — parameter-function checkpoint (recovery)
///   traj/<id>                — serialized SampleBatch from an actor
///   grad/<id>                — serialized GradientMsg from a learner
namespace keys {
inline const std::string kPolicyLatest = "policy/latest";
inline const std::string kPolicyTarget = "policy/target";
inline const std::string kCheckpoint = "ckpt/latest";
std::string trajectory(std::uint64_t id);
std::string gradient(std::uint64_t id);
}  // namespace keys

/// A parameter-function checkpoint: everything needed to restore training
/// after a crash — policy weights, version counter, applied-gradient count,
/// and the full optimizer state blob (written by FlatOptimizer::save_state).
struct Checkpoint {
  std::vector<float> params;
  std::uint64_t version = 0;
  std::uint64_t applied_gradients = 0;
  std::vector<std::uint8_t> optimizer_state;
};

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt);
Checkpoint decode_checkpoint(ByteSpan bytes);
/// Decode into an existing Checkpoint, reusing its buffers' capacity.
void decode_checkpoint_into(ByteSpan bytes, Checkpoint& out);

/// Encode flat policy weights with their version.
std::vector<std::uint8_t> encode_policy(const std::vector<float>& params,
                                        std::uint64_t version);

/// Decode (params, version).
std::pair<std::vector<float>, std::uint64_t> decode_policy(ByteSpan bytes);
/// Decode into an existing params buffer (capacity reuse); returns version.
std::uint64_t decode_policy_into(ByteSpan bytes, std::vector<float>& params);

}  // namespace stellaris::core
