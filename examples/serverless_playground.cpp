// Example: the serverless substrate on its own.
//
// Uses the virtual-time platform directly — no RL — to show how invocation
// queueing, cold starts, pre-warming, keep-alive, and the paper's
// dollar-per-resource-second cost model interact. Useful for understanding
// (and unit-costing) any workload shape before attaching learners to it.
//
//   ./build/examples/serverless_playground
//
// Pass `--faults=<rate>` to switch to the fault-injection demo: the same
// invocation burst runs on an unreliable substrate (per-invocation crash
// probability `rate`, stragglers at rate/2, spot-style VM reclamations)
// with bounded exponential-backoff retries, and the table reports the
// injected faults, retry traffic, and wasted-work cost.
#include <cstdlib>
#include <iostream>
#include <string>

#include "fault/fault_injector.hpp"
#include "fault/retry_policy.hpp"
#include "serverless/platform.hpp"
#include "util/csv.hpp"

namespace {

int run_fault_demo(double rate) {
  using namespace stellaris;
  using serverless::FnKind;

  Table t({"scenario", "ok", "failed", "retries", "giveups", "crashes",
           "stragglers", "reclaims", "makespan_s", "cost_usd",
           "wasted_usd"});

  auto run_scenario = [&](const std::string& name, double crash_prob,
                          double reclaim_per_hour) {
    sim::Engine engine;
    serverless::ServerlessPlatform platform(
        engine, serverless::ClusterSpec::regular(), serverless::LatencyModel{},
        7);
    fault::FaultPlan plan;
    plan.config.crash_prob = crash_prob;
    plan.config.straggler_prob = crash_prob / 2.0;
    plan.config.straggler_mult = 4.0;
    plan.config.reclaim_rate_per_hour = reclaim_per_hour;
    fault::FaultInjector injector(engine, plan);
    platform.set_fault_injector(&injector);

    fault::RetryPolicy retry;
    retry.max_retries = 3;
    retry.base_backoff_s = 0.05;

    platform.prewarm_learners(platform.cluster().learner_slots());
    constexpr std::size_t kBurst = 32;
    std::size_t ok = 0, failed = 0;
    for (std::size_t i = 0; i < kBurst; ++i) {
      serverless::ServerlessPlatform::InvokeOptions opts;
      opts.kind = FnKind::kLearner;
      opts.compute_s = 0.5;
      opts.payload_in_bytes = 1 << 20;
      platform.invoke_retrying(opts, retry, [&](const auto& r) {
        if (r.ok) ++ok; else ++failed;
        // The Poisson reclamation process reschedules itself forever;
        // stop it once the workload is done or the engine never drains.
        if (ok + failed == kBurst) injector.disarm();
      });
    }
    engine.run();
    t.row()
        .add(name)
        .add(ok)
        .add(failed)
        .add(static_cast<std::size_t>(platform.retries()))
        .add(static_cast<std::size_t>(platform.giveups()))
        .add(static_cast<std::size_t>(injector.crashes_injected()))
        .add(static_cast<std::size_t>(injector.stragglers_injected()))
        .add(static_cast<std::size_t>(injector.reclaims_fired()))
        .add(engine.now(), 3)
        .add(platform.costs().total_cost(), 6)
        .add(platform.costs().total_wasted_cost(), 6);
  };

  run_scenario("32 invocations, reliable", 0.0, 0.0);
  run_scenario("32 invocations, crashes", rate, 0.0);
  run_scenario("32 invocations, crashes + spot reclaims", rate, 1200.0);

  t.emit("fault injection demo (crash_prob = " + std::to_string(rate) + ")");
  std::cout <<
      "\nReading the table:\n"
      " - crashed attempts still bill for the seconds they consumed\n"
      "   (wasted_usd), and each retry re-queues at the back, so the\n"
      "   makespan stretches with the failure rate;\n"
      " - a spot reclamation kills every container on the victim VM at\n"
      "   once: all its in-flight invocations fail together and re-run;\n"
      " - the same plan + seed reproduces this table bit-for-bit; rerun\n"
      "   with a different --faults= rate to move the failure knob.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stellaris;
  using serverless::FnKind;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--faults=", 0) == 0) {
      const double rate = std::atof(arg.c_str() + 9);
      if (rate < 0.0 || rate >= 1.0) {
        std::cerr << "--faults= rate must lie in [0, 1)\n";
        return 1;
      }
      return run_fault_demo(rate);
    }
  }

  Table t({"scenario", "invocations", "cold_starts", "makespan_s",
           "gpu_util_pct", "cost_usd"});

  auto run_scenario = [&](const std::string& name, bool prewarm,
                          std::size_t burst, double compute_s) {
    sim::Engine engine;
    serverless::ServerlessPlatform platform(
        engine, serverless::ClusterSpec::regular(), serverless::LatencyModel{},
        7);
    if (prewarm) platform.prewarm_learners(platform.cluster().learner_slots());
    for (std::size_t i = 0; i < burst; ++i) {
      serverless::ServerlessPlatform::InvokeOptions opts;
      opts.kind = FnKind::kLearner;
      opts.compute_s = compute_s;
      opts.payload_in_bytes = 1 << 20;
      platform.invoke(opts, [](const auto&) {});
    }
    engine.run();
    t.row()
        .add(name)
        .add(static_cast<std::size_t>(
            platform.costs().invocations(FnKind::kLearner)))
        .add(static_cast<std::size_t>(platform.learner_cold_starts()))
        .add(engine.now(), 3)
        .add(platform.gpu_utilization() * 100.0, 1)
        .add(platform.costs().total_cost(), 6);
  };

  // The regular testbed has 8 learner slots (2 V100s × 4).
  run_scenario("8 invocations, cold", false, 8, 0.5);
  run_scenario("8 invocations, prewarmed", true, 8, 0.5);
  run_scenario("32 invocations (queueing), prewarmed", true, 32, 0.5);
  run_scenario("32 short tasks, prewarmed", true, 32, 0.05);

  t.emit("serverless platform scenarios");
  std::cout <<
      "\nReading the table:\n"
      " - pre-warming removes the ~1.2 s cold start from the makespan and\n"
      "   (per the paper's cost model) is itself free of charge;\n"
      " - 32 invocations on 8 slots queue 4-deep: makespan ~4x, cost equal\n"
      "   (you pay busy seconds, not wall clock);\n"
      " - short tasks lower utilization because start/transfer overheads\n"
      "   dominate.\n";
  return 0;
}
