file(REMOVE_RECURSE
  "libstellaris_sim.a"
)
