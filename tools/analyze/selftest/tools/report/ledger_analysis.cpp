// Corpus stand-in for the report parser: the same `type == "..."` dispatch
// chain and num_or/str_or/has/at access idioms the ledger-schema pass
// rebuilds the parser-side contract from.
#include "util/helper.hpp"

namespace stellaris::report {

void analyze_one(const Value& ev) {
  const std::string type = str_or(ev, "ev", "");
  if (type == "alpha") {
    num_or(ev, "x", 0.0);
  // expect: ledger-schema
  } else if (type == "beta") {
    ev.at("req");                       // unconditional: every site needs it
    if (ev.has("ys")) ev.at("ys");      // guarded: optional
    num_or(ev, "ghost", 0.0);           // no emit site sets "ghost"
  // expect: ledger-schema
  } else if (type == "gone") {
    str_or(ev, "who", "");              // branch for an event nothing emits
  }
  // ledger-schema:ignore meta — run-config echo for humans reading the raw
  // JSONL; the report deliberately aggregates nothing from it.
}

}  // namespace stellaris::report
