#include "serve/serve_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/obs.hpp"
#include "serverless/cluster.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/percentile.hpp"

namespace stellaris::serve {

namespace {

/// Derive an independent child seed from the run seed and a stream tag —
/// the same SplitMix64 expansion the Rng itself seeds with.
std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t tag) {
  SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (tag + 1)));
  return sm.next();
}

}  // namespace

std::vector<float> make_policy_params(const TenantConfig& tenant,
                                      std::uint64_t seed) {
  return ServeContext(tenant, seed).model.flat_params();
}

/// Output box a batch body writes and the merge event reads after join():
/// per-request predicted values plus an order-independent action checksum.
struct ServeEngine::BatchResult {
  std::vector<double> values;
  double checksum = 0.0;
};

/// Everything the virtual completion event needs to settle one batch.
struct ServeEngine::InflightBatch {
  std::size_t tenant = 0;
  std::uint64_t version = 0;
  std::uint64_t lid = 0;
  std::size_t container = 0;
  bool cold = false;
  std::vector<ServeRequest> reqs;  ///< obs moved out into the body capture
  sim::Driver::Job job;            ///< null when the batch is doomed
  std::shared_ptr<BatchResult> box;
  bool ok = true;
  fault::ErrorKind error = fault::ErrorKind::kNone;
  double compute_s = 0.0;
  double billed_s = 0.0;
};

ServeEngine::TenantState::TenantState(const TenantConfig& tenant_cfg,
                                      sim::Engine& engine, std::uint64_t seed)
    : cfg(tenant_cfg),
      batcher(tenant_cfg.batch),
      admission(tenant_cfg.admission),
      rollout(tenant_cfg.rollout, tenant_cfg.initial_version),
      traffic(engine, tenant_cfg.traffic, sub_seed(seed, 0)),
      contexts(tenant_cfg, sub_seed(seed, 1)),
      obs_rng(sub_seed(seed, 2)),
      assign_rng(sub_seed(seed, 3)) {}

ServeEngine::ServeEngine(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      driver_(sim::make_driver(cfg_.driver, cfg_.driver_threads)),
      pool_(cfg_.worker_capacity, cfg_.latency, sub_seed(cfg_.seed, 0xb001),
            "serve"),
      injector_(engine_, cfg_.faults),
      store_(cache_),
      autoscaler_(cfg_.autoscale),
      jitter_rng_(sub_seed(cfg_.seed, 0xd177)) {
  STELLARIS_CHECK_MSG(!cfg_.tenants.empty(), "serve config needs >= 1 tenant");
  STELLARIS_CHECK_MSG(cfg_.autoscale.max_workers <= cfg_.worker_capacity,
                      "autoscale max_workers exceeds pool capacity");
  engine_.set_driver(driver_.get());
  unit_price_ = cfg_.unit_price_per_s > 0.0
                    ? cfg_.unit_price_per_s
                    : serverless::ClusterSpec::regular_small()
                          .actor_unit_price();
  tenants_.reserve(cfg_.tenants.size());
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t)
    tenants_.push_back(std::make_unique<TenantState>(
        cfg_.tenants[t], engine_, sub_seed(cfg_.seed, 0x10000 + t)));
}

void ServeEngine::publish_policy(std::size_t t,
                                 const std::vector<float>& params,
                                 std::uint64_t version, double cost_mult) {
  STELLARIS_CHECK(t < tenants_.size());
  store_.publish(tenants_[t]->cfg.name, params, version, cost_mult);
}

void ServeEngine::schedule_canary(std::size_t t, std::uint64_t version,
                                  double fraction, double at_s) {
  STELLARIS_CHECK(t < tenants_.size());
  engine_.schedule_at(at_s, [this, t, version, fraction] {
    tenants_[t]->rollout.start(version, fraction);
    if (auto* led = obs::ledger())
      led->append(obs::LedgerEvent("serve_rollout", engine_.now())
                      .field("tenant", tenants_[t]->cfg.name)
                      .field("action", "start")
                      .field("version", version)
                      .field("fraction", fraction)
                      .finish());
  });
}

void ServeEngine::on_arrival(std::size_t t, std::uint64_t client) {
  auto& ts = *tenants_[t];
  if (!ts.admission.admit(ts.batcher.queued())) {
    if (auto* led = obs::ledger())
      led->append(obs::LedgerEvent("serve_reject", engine_.now())
                      .field("tenant", ts.cfg.name)
                      .field("queued", ts.batcher.queued())
                      .finish());
    ts.traffic.on_complete(client);
    maybe_finish();
    return;
  }
  ServeRequest req;
  req.id = next_req_++;
  req.tenant = t;
  req.version = ts.rollout.assign(ts.assign_rng);
  req.arrival_s = engine_.now();
  req.client = client;
  req.obs.reserve(ts.cfg.obs_dim);
  for (std::size_t d = 0; d < ts.cfg.obs_dim; ++d)
    req.obs.push_back(static_cast<float>(ts.obs_rng.uniform(-1.0, 1.0)));
  const std::uint64_t version = req.version;
  ts.batcher.enqueue(std::move(req));
  pump();
  arm_lane_cutoff(t, version);
  maybe_finish();
}

std::size_t ServeEngine::total_queued() const {
  std::size_t q = 0;
  for (const auto& ts : tenants_) q += ts->batcher.queued();
  return q;
}

void ServeEngine::pump() {
  const double now = engine_.now();
  while (busy_workers_ < autoscaler_.active()) {
    // Oldest ready head across tenants; ties break toward the lower tenant
    // index (strict <), then the batcher's own lower-version tie-break.
    std::optional<std::size_t> best_t;
    double best_arrival = 0.0;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      const auto head = tenants_[t]->batcher.ready_head_arrival(now);
      if (!head) continue;
      if (!best_t || *head < best_arrival) {
        best_t = t;
        best_arrival = *head;
      }
    }
    if (!best_t) return;
    const auto version = tenants_[*best_t]->batcher.ready_version(now);
    dispatch_batch(*best_t, *version);
  }
}

void ServeEngine::dispatch_batch(std::size_t t, std::uint64_t version) {
  auto& ts = *tenants_[t];
  const double now = engine_.now();
  auto batch = ts.batcher.take(version);
  const std::size_t n = batch.size();
  // The remainder lane (if any) has a new head; move its cutoff.
  arm_lane_cutoff(t, version);

  auto acq = pool_.acquire(now);
  STELLARIS_CHECK_MSG(acq.has_value(),
                      "serve pool exhausted below autoscale ceiling");
  ++busy_workers_;
  ++ts.batches;
  ts.batched_requests += n;

  // -- capture (engine thread): fate, snapshot, flattened inputs -----------
  const auto fate =
      injector_.on_invocation(static_cast<int>(serverless::FnKind::kServe));
  auto snap = store_.load(ts.cfg.name, version);
  const double cost_mult = store_.cost_mult(ts.cfg.name, version);

  const auto& lat = cfg_.latency;
  const double transfer_s =
      lat.transfer_s(serverless::DataTier::kRpc,
                     n * ts.cfg.obs_dim * sizeof(float)) +
      lat.transfer_s(serverless::DataTier::kRpc,
                     n * ts.cfg.act_dim * sizeof(float)) +
      fate.cache_delay_s;
  const double compute_s =
      lat.jittered(lat.serve_compute_s(n, snap->params.size()) * cost_mult,
                   jitter_rng_) *
      fate.straggler_mult;
  const double full_s = lat.invoke_overhead_s + acq->start_latency_s +
                        transfer_s + compute_s;

  auto b = std::make_shared<InflightBatch>();
  b->tenant = t;
  b->version = version;
  b->lid = next_lid_++;
  b->container = acq->container_id;
  b->cold = acq->cold;
  b->ok = fate.fail == fault::ErrorKind::kNone;
  b->error = fate.fail;
  b->compute_s = compute_s;
  // Crashes bill the fraction of the work done before dying; everything
  // else (including cache errors, discovered at the end) bills in full.
  b->billed_s = fate.fail == fault::ErrorKind::kCrash ? full_s * fate.fail_frac
                                                      : full_s;
  b->reqs = std::move(batch);

  if (b->ok) {
    // Flatten the batch's observations into one (n, obs_dim) matrix.
    std::vector<float> flat;
    flat.reserve(n * ts.cfg.obs_dim);
    for (auto& req : b->reqs) {
      flat.insert(flat.end(), req.obs.begin(), req.obs.end());
      req.obs.clear();
      req.obs.shrink_to_fit();
    }
    b->box = std::make_shared<BatchResult>();
    auto* contexts = &ts.contexts;
    const std::size_t obs_dim = ts.cfg.obs_dim;
    // -- body: pure function of the capture; runs wherever the driver says.
    b->job = engine_.driver().submit(
        [contexts, snap, flat = std::move(flat), n, obs_dim,
         box = b->box]() mutable {
          auto ctx = contexts->lease();
          ctx->model.set_flat_params(
              std::span<const float>(snap->params.data(),
                                     snap->params.size()));
          Tensor obs({n, obs_dim}, std::move(flat));
          const Tensor& acts = ctx->model.policy_forward(obs);
          double checksum = 0.0;
          for (const float a : acts.vec()) checksum += static_cast<double>(a);
          const Tensor& values = ctx->model.value_forward(obs);
          box->values.assign(values.vec().begin(), values.vec().end());
          box->checksum = checksum;
        });
  }

  engine_.schedule_after(b->billed_s, [this, b] { settle_batch(b); });
}

void ServeEngine::settle_batch(const std::shared_ptr<InflightBatch>& b) {
  auto& ts = *tenants_[b->tenant];
  const double now = engine_.now();

  if (b->error == fault::ErrorKind::kCrash) {
    // The runtime died; its in-flight requests die with it (and only them).
    pool_.kill(b->container);
  } else {
    pool_.release(b->container, now);
  }
  costs_.record(serverless::FnKind::kServe, unit_price_, b->billed_s, !b->ok);

  const std::size_t n = b->reqs.size();
  std::vector<double> latencies;
  if (b->ok) {
    // -- merge (engine thread): join the body, publish its outputs.
    sim::Driver::join(b->job);
    latencies.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double latency = now - b->reqs[i].arrival_s;
      latencies.push_back(latency);
      ts.latencies.push_back(latency);
      ts.latency_sum_s += latency;
      ts.rollout.observe(b->version, latency, b->box->values[i]);
    }
    ts.completed += n;
    ts.value_checksum += b->box->checksum;
  } else {
    ts.failed += n;
  }

  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("serve_batch", now)
                    .field("tenant", ts.cfg.name)
                    .field("lid", b->lid)
                    .field("container", b->container)
                    .field("version", b->version)
                    .field("n", n)
                    .field("cold", b->cold)
                    .field("compute_s", b->compute_s)
                    .field("billed_s", b->billed_s)
                    .field("cost_usd", unit_price_ * b->billed_s)
                    .field("ok", b->ok)
                    .field("error", fault::error_kind_name(b->error))
                    .raw("lat", obs::render_number_array(latencies))
                    .finish());

  // Closed-loop clients continue whether their request succeeded or died.
  for (const auto& req : b->reqs) ts.traffic.on_complete(req.client);

  --busy_workers_;
  pump();
  maybe_finish();
}

void ServeEngine::arm_lane_cutoff(std::size_t t, std::uint64_t version) {
  auto& ts = *tenants_[t];
  const auto head = ts.batcher.head_arrival(version);
  if (!head) {
    cancel_lane_cutoff(ts, version);
    return;
  }
  const double deadline = *head + ts.cfg.batch.max_wait_s;
  if (deadline <= engine_.now()) {
    // Already expired: the lane is dispatchable now; pump()s triggered by
    // worker-free and autoscale events will take it. No timer needed.
    cancel_lane_cutoff(ts, version);
    return;
  }
  auto& timer = ts.cutoffs[version];
  if (timer.handle && timer.head_arrival == *head) return;  // still right
  if (timer.handle) timer.handle->store(true);
  timer.head_arrival = *head;
  timer.handle = engine_.schedule_cancellable_at(deadline, [this, t, version] {
    auto& state = *tenants_[t];
    state.cutoffs.erase(version);
    pump();
    // If no worker was free the lane stays expired; the next worker-free or
    // scale-up pump dispatches it (no re-arm at a past deadline).
  });
}

void ServeEngine::cancel_lane_cutoff(TenantState& ts, std::uint64_t version) {
  auto it = ts.cutoffs.find(version);
  if (it == ts.cutoffs.end()) return;
  if (it->second.handle) it->second.handle->store(true);
  ts.cutoffs.erase(it);
}

void ServeEngine::arm_autoscale_timer() {
  if (finished_) return;
  autoscale_timer_ =
      engine_.schedule_cancellable_after(cfg_.autoscale.eval_period_s, [this] {
        const auto d = autoscaler_.evaluate(total_queued(), busy_workers_);
        if (d.changed()) {
          if (d.to > d.from) pool_.prewarm(d.to - d.from, engine_.now());
          if (auto* led = obs::ledger())
            led->append(obs::LedgerEvent("serve_scale", engine_.now())
                            .field("from", d.from)
                            .field("to", d.to)
                            .field("queued", total_queued())
                            .field("busy", busy_workers_)
                            .finish());
          pump();
        }
        arm_autoscale_timer();
      });
}

void ServeEngine::arm_rollout_timer(std::size_t t) {
  if (finished_) return;
  auto& ts = *tenants_[t];
  ts.rollout_timer = engine_.schedule_cancellable_after(
      ts.cfg.rollout.eval_period_s, [this, t] {
        evaluate_rollout(t);
        arm_rollout_timer(t);
      });
}

void ServeEngine::evaluate_rollout(std::size_t t) {
  auto& ts = *tenants_[t];
  if (!ts.rollout.canary_active()) return;
  const auto out = ts.rollout.evaluate();
  if (out.action == RolloutController::Action::kNone) return;
  const char* action =
      out.action == RolloutController::Action::kPromote    ? "promote"
      : out.action == RolloutController::Action::kRollback ? "rollback"
                                                           : "continue";
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("serve_rollout", engine_.now())
                    .field("tenant", ts.cfg.name)
                    .field("action", action)
                    .field("version", ts.rollout.stable_version())
                    .field("reason", out.reason)
                    .field("canary_p99_s", out.canary_p99)
                    .field("stable_p99_s", out.stable_p99)
                    .field("drift", out.drift)
                    .field("canary_n", out.canary_n)
                    .finish());
}

void ServeEngine::maybe_finish() {
  if (finished_) return;
  for (const auto& ts : tenants_)
    if (!ts->traffic.done()) return;
  if (busy_workers_ > 0 || total_queued() > 0) return;
  finished_ = true;
  // Cancel every pending timer so dead periodic events do not stretch the
  // run's virtual makespan (DESIGN.md §14 teardown discipline).
  if (autoscale_timer_) autoscale_timer_->store(true);
  for (auto& ts : tenants_) {
    if (ts->rollout_timer) ts->rollout_timer->store(true);
    for (auto& [version, timer] : ts->cutoffs)
      if (timer.handle) timer.handle->store(true);
    ts->cutoffs.clear();
  }
  injector_.disarm();
}

ServeResult ServeEngine::run() {
  STELLARIS_CHECK_MSG(!ran_, "ServeEngine::run() may be called once");
  ran_ = true;
  obs::begin_run();
  // Concurrent bodies each run kernels; keep the product under the machine.
  ops::apply_driver_thread_budget(driver_->worker_threads(),
                                  cfg_.hardware_threads);
  pool_.prewarm(cfg_.autoscale.min_workers, 0.0);
  if (auto* led = obs::ledger())
    led->append(obs::LedgerEvent("serve_start", 0.0)
                    .field("workers", cfg_.autoscale.min_workers)
                    .field("tenants", tenants_.size())
                    .finish());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    tenants_[t]->traffic.start(
        [this, t](std::uint64_t client) { on_arrival(t, client); });
    arm_rollout_timer(t);
  }
  arm_autoscale_timer();
  engine_.run();
  driver_->drain();

  ServeResult res;
  res.duration_s = engine_.now();
  for (auto& ts : tenants_) {
    TenantResult tr;
    tr.name = ts->cfg.name;
    tr.issued = ts->traffic.issued();
    tr.admitted = ts->admission.admitted();
    tr.rejected = ts->admission.rejected();
    tr.completed = ts->completed;
    tr.failed = ts->failed;
    tr.batches = ts->batches;
    tr.mean_batch = ts->batches > 0 ? static_cast<double>(ts->batched_requests) /
                                          static_cast<double>(ts->batches)
                                    : 0.0;
    std::sort(ts->latencies.begin(), ts->latencies.end());
    tr.p50_s = nearest_rank_sorted(ts->latencies, 0.50);
    tr.p99_s = nearest_rank_sorted(ts->latencies, 0.99);
    tr.p999_s = nearest_rank_sorted(ts->latencies, 0.999);
    tr.latency_sum_s = ts->latency_sum_s;
    tr.value_checksum = ts->value_checksum;
    tr.final_stable_version = ts->rollout.stable_version();
    tr.promotions = ts->rollout.promotions();
    tr.rollbacks = ts->rollout.rollbacks();
    res.issued += tr.issued;
    res.completed += tr.completed;
    res.failed += tr.failed;
    res.rejected += tr.rejected;
    res.tenants.push_back(std::move(tr));
  }
  res.cost_usd = costs_.total_cost();
  res.wasted_cost_usd = costs_.total_wasted_cost();
  res.requests_per_hour = res.duration_s > 0.0
                              ? static_cast<double>(res.completed) /
                                    res.duration_s * 3600.0
                              : 0.0;
  res.cost_per_million = res.completed > 0
                             ? res.cost_usd * 1e6 /
                                   static_cast<double>(res.completed)
                             : 0.0;
  res.peak_workers = autoscaler_.peak();
  res.scale_ups = autoscaler_.scale_ups();
  res.scale_downs = autoscaler_.scale_downs();
  res.cold_starts = pool_.cold_starts();
  res.warm_starts = pool_.warm_starts();
  res.policy_decodes = store_.decodes();
  res.policy_reuses = store_.reuses();
  res.crashes_injected = injector_.crashes_injected();
  return res;
}

}  // namespace stellaris::serve
