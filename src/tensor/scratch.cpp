#include "tensor/scratch.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace stellaris::ops {
namespace {

obs::Counter& bytes_reused() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.scratch_bytes_reused");
  return c;
}

obs::Counter& bytes_allocated() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("kernel.scratch_bytes_allocated");
  return c;
}

}  // namespace

ScratchPool::Lease::~Lease() {
  if (pool_ != nullptr && t_ != nullptr) pool_->give_back(std::move(t_));
}

ScratchPool::Lease ScratchPool::take(const Shape& shape) {
  const std::size_t n = shape_numel(shape);
  // Smallest sufficient buffer, so one oversized lease doesn't get pinned
  // to every small request.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const std::size_t cap = free_[i]->vec().capacity();
    if (cap < n) continue;
    if (best == free_.size() || cap < free_[best]->vec().capacity()) best = i;
  }
  std::unique_ptr<Tensor> t;
  if (best < free_.size()) {
    t = std::move(free_[best]);
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    bytes_reused().add(n * sizeof(float));
  } else {
    t = std::make_unique<Tensor>();
    bytes_allocated().add(n * sizeof(float));
  }
  t->ensure_shape(shape);
  return Lease(this, std::move(t));
}

void ScratchPool::give_back(std::unique_ptr<Tensor> t) {
  free_.push_back(std::move(t));
}

ScratchPool& ScratchPool::local() {
  thread_local ScratchPool pool;
  return pool;
}

}  // namespace stellaris::ops
