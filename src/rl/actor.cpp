#include "rl/actor.hpp"

#include "nn/distributions.hpp"

namespace stellaris::rl {

Actor::Actor(std::unique_ptr<envs::Env> env, std::uint64_t seed)
    : env_(std::move(env)), rng_(seed) {}

void Actor::ensure_episode(Rng& rng) {
  if (!episode_active_) {
    current_obs_.resize(env_->spec().obs.flat_dim);
    env_->reset_into(rng.next(), current_obs_);
    episode_active_ = true;
    episode_return_ = 0.0;
    ++episode_counter_;
  }
}

SampleBatch Actor::sample(nn::ActorCritic& policy, std::size_t horizon,
                          std::uint64_t policy_version) {
  return sample(policy, horizon, policy_version, rng_);
}

SampleBatch Actor::sample(nn::ActorCritic& policy, std::size_t horizon,
                          std::uint64_t policy_version, Rng& rng) {
  STELLARIS_CHECK_MSG(horizon > 0, "sample horizon must be positive");
  const auto& spec = env_->spec();
  const std::size_t obs_dim = spec.obs.flat_dim;
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;

  SampleBatch batch;
  batch.action_kind = spec.action_kind;
  batch.policy_version = policy_version;
  batch.obs = Tensor({horizon, obs_dim});
  if (continuous) batch.actions_cont = Tensor({horizon, spec.act_dim});
  batch.rewards = Tensor({horizon});
  batch.dones = Tensor({horizon});
  batch.behaviour_log_probs = Tensor({horizon});
  batch.values = Tensor({horizon});

  for (std::size_t t = 0; t < horizon; ++t) {
    ensure_episode(rng);
    // Single-row forward; learner-side batching happens over whole batches.
    // All per-step buffers are persistent members, so the warmed-up loop
    // performs zero tensor allocations.
    obs_row_.ensure_shape({1, obs_dim});
    std::copy(current_obs_.begin(), current_obs_.end(),
              obs_row_.row(0).begin());
    const Tensor& pol_out = policy.policy_forward(obs_row_);
    const Tensor& value = policy.value_forward(obs_row_);

    std::copy(current_obs_.begin(), current_obs_.end(),
              batch.obs.row(t).begin());
    batch.values[t] = value[0];

    envs::StepOut result;
    if (continuous) {
      nn::gaussian_sample_into(action_scratch_, pol_out, *policy.log_std(),
                               rng);
      nn::gaussian_log_prob_into(logp_scratch_, pol_out, *policy.log_std(),
                                 action_scratch_);
      batch.behaviour_log_probs[t] = logp_scratch_[0];
      std::copy(action_scratch_.vec().begin(), action_scratch_.vec().end(),
                batch.actions_cont.row(t).begin());
      result = env_->step_into(action_scratch_.row(0), current_obs_);
    } else {
      nn::categorical_sample_into(disc_actions_scratch_, probs_scratch_,
                                  pol_out, rng);
      nn::categorical_log_prob_into(logp_scratch_, probs_scratch_, pol_out,
                                    disc_actions_scratch_);
      batch.behaviour_log_probs[t] = logp_scratch_[0];
      batch.actions_disc.push_back(disc_actions_scratch_[0]);
      result = env_->step_discrete_into(disc_actions_scratch_[0],
                                        current_obs_);
    }

    batch.rewards[t] = static_cast<float>(result.reward);
    episode_return_ += result.reward;
    batch.dones[t] = result.done ? 1.0f : 0.0f;
    if (result.done) {
      // Lazy reset: current_obs_ holds the terminal observation until the
      // next ensure_episode overwrites it.
      batch.episode_returns.push_back(episode_return_);
      episode_active_ = false;
    }
  }

  // Bootstrap value for a truncated final transition.
  if (batch.dones[horizon - 1] < 0.5f) {
    obs_row_.ensure_shape({1, obs_dim});
    std::copy(current_obs_.begin(), current_obs_.end(),
              obs_row_.row(0).begin());
    batch.bootstrap_value = policy.value_forward(obs_row_)[0];
  }
  return batch;
}

double Actor::evaluate_episode(nn::ActorCritic& policy, std::uint64_t seed) {
  const auto& spec = env_->spec();
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;
  current_obs_.resize(spec.obs.flat_dim);
  env_->reset_into(seed, current_obs_);
  Rng eval_rng(seed ^ 0xeba1eba1eba1ULL);
  double total = 0.0;
  for (;;) {
    obs_row_.ensure_shape({1, spec.obs.flat_dim});
    std::copy(current_obs_.begin(), current_obs_.end(),
              obs_row_.row(0).begin());
    const Tensor& pol_out = policy.policy_forward(obs_row_);
    envs::StepOut result;
    if (continuous) {
      nn::gaussian_sample_into(action_scratch_, pol_out, *policy.log_std(),
                               eval_rng);
      result = env_->step_into(action_scratch_.row(0), current_obs_);
    } else {
      nn::categorical_sample_into(disc_actions_scratch_, probs_scratch_,
                                  pol_out, eval_rng);
      result = env_->step_discrete_into(disc_actions_scratch_[0],
                                        current_obs_);
    }
    total += result.reward;
    if (result.done) break;
  }
  // Evaluation interrupts any in-flight sampling episode.
  episode_active_ = false;
  return total;
}

double evaluate_policy(envs::Env& env, nn::ActorCritic& policy,
                       std::size_t episodes, std::uint64_t seed) {
  const auto& spec = env.spec();
  const bool continuous = spec.action_kind == nn::ActionKind::kContinuous;
  Rng eval_rng(seed);
  double total = 0.0;
  // Buffers hoisted out of the episode loop: the rollout is allocation-free
  // after the first step.
  std::vector<float> obs(spec.obs.flat_dim);
  Tensor obs_row, action, probs;
  std::vector<std::size_t> disc_actions;
  for (std::size_t e = 0; e < episodes; ++e) {
    env.reset_into(eval_rng.next(), obs);
    for (;;) {
      obs_row.ensure_shape({1, spec.obs.flat_dim});
      std::copy(obs.begin(), obs.end(), obs_row.row(0).begin());
      const Tensor& pol_out = policy.policy_forward(obs_row);
      envs::StepOut result;
      if (continuous) {
        nn::gaussian_sample_into(action, pol_out, *policy.log_std(),
                                 eval_rng);
        result = env.step_into(action.row(0), obs);
      } else {
        nn::categorical_sample_into(disc_actions, probs, pol_out, eval_rng);
        result = env.step_discrete_into(disc_actions[0], obs);
      }
      total += result.reward;
      if (result.done) break;
    }
  }
  return total / static_cast<double>(episodes);
}

}  // namespace stellaris::rl
