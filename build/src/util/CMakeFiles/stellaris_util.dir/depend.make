# Empty dependencies file for stellaris_util.
# This may be replaced when dependencies are built.
