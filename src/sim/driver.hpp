// Execution drivers: where invocation *bodies* run.
//
// The engine owns virtual time; a Driver owns real compute. An invocation's
// lifecycle is split into three sections (DESIGN.md §14):
//
//   capture   on the engine thread, at dispatch: every input the body needs
//             (policy snapshot, payload views, the keyed RNG seed) is read
//             from shared state and bound into the body closure;
//   body      a pure function of the captured inputs — no engine, cache,
//             ledger, or trainer state. This is what a Driver executes,
//             inline (InlineDriver) or on a worker thread (the concurrent
//             ThreadPoolDriver);
//   merge     on the engine thread, at the invocation's virtual completion
//             event: join() the job, then publish its outputs into shared
//             state. Because the engine alone decides event order, merges
//             are totally ordered by virtual time — results are therefore
//             byte-identical across drivers, by construction.
//
// Submission-order FIFO dequeue plus the `after` chain (a job may name one
// EARLIER-submitted predecessor it must run after, e.g. consecutive
// invocations of the same stateful actor) guarantees progress: a body only
// ever waits on a job dequeued strictly before it, so no worker-count
// starves and no cycle can form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "util/annotated_mutex.hpp"

namespace stellaris::sim {

/// Which Driver a run executes bodies on (`--driver=` in the benches).
enum class DriverKind {
  kVirtual,     ///< bodies run inline on the engine thread (the default)
  kConcurrent,  ///< bodies run on a worker pool; merge order unchanged
};

const char* driver_kind_name(DriverKind kind);
std::optional<DriverKind> parse_driver_kind(std::string_view name);

/// Resolve a `--driver-threads` request: 0 means "one per hardware thread".
std::size_t resolve_driver_threads(std::size_t requested);

/// Derive the seed of an invocation's private RNG stream from
/// (run seed, ledger/invocation id, attempt). Worker-thread bodies draw
/// ONLY from streams keyed this way — never from a shared generator — so
/// the draws an invocation sees are independent of which thread runs it and
/// of how bodies interleave in real time.
std::uint64_t invocation_stream(std::uint64_t run_seed,
                                std::uint64_t invocation_id,
                                std::uint64_t attempt);

class Driver {
 public:
  /// One submitted body. Shared between the submitter (who joins or
  /// abandons it) and the executing thread.
  class JobState {
   public:
    JobState(std::function<void()> body, std::shared_ptr<JobState> after);
    ~JobState();
    JobState(const JobState&) = delete;
    JobState& operator=(const JobState&) = delete;

    /// Execute: wait for the predecessor (if any), run the body capturing
    /// any exception, mark finished, wake waiters. Called exactly once, by
    /// whichever thread the Driver hands the job to.
    void run();

    /// Block until run() has completed. Does not rethrow.
    void wait_finished();

    /// Rethrow the body's exception, if it threw. Engine-thread merge path.
    void rethrow_if_error();

   private:
    bool finished_locked() const REQUIRES(mu_) { return finished_; }

    mutable Mutex mu_{"sim/driver-job", lock_rank::kDriverJob};
    CondVar cv_;
    bool finished_ GUARDED_BY(mu_) = false;
    bool error_consumed_ GUARDED_BY(mu_) = false;
    std::exception_ptr error_ GUARDED_BY(mu_);
    std::function<void()> body_;
    std::shared_ptr<JobState> after_;
  };
  using Job = std::shared_ptr<JobState>;

  virtual ~Driver() = default;

  virtual const char* name() const = 0;

  /// Worker threads executing bodies; 0 = bodies run inline at submit().
  virtual std::size_t worker_threads() const = 0;

  /// Hand a body to the driver. `after`, when set, must be a job submitted
  /// strictly earlier to this driver; the body will not start before it
  /// finishes (serializes same-actor invocations in dispatch order).
  virtual Job submit(std::function<void()> body, const Job& after = {}) = 0;

  /// Merge point: block until the job's body finished, then rethrow its
  /// exception (if any) on the calling (engine) thread.
  static void join(const Job& job);

  /// Block until every submitted body — joined or abandoned — has finished.
  /// Called once at end of run (and from the concurrent driver's dtor).
  virtual void drain() = 0;
};

/// Runs bodies inline at submit(): the virtual-clock driver, semantically
/// identical to pre-driver builds (the body just runs a little earlier in
/// the same event — capture and body see the same state either way, since
/// both happen before the dispatch event returns).
class InlineDriver final : public Driver {
 public:
  const char* name() const override { return "virtual"; }
  std::size_t worker_threads() const override { return 0; }
  Job submit(std::function<void()> body, const Job& after = {}) override;
  void drain() override {}
};

/// Process-wide InlineDriver used when no driver is installed on an Engine.
Driver& inline_driver();

/// Worker-pool driver (src/sim/concurrent_driver.cpp).
std::unique_ptr<Driver> make_concurrent_driver(std::size_t threads);

/// Factory over DriverKind; `threads` is ignored for kVirtual.
std::unique_ptr<Driver> make_driver(DriverKind kind, std::size_t threads);

}  // namespace stellaris::sim
